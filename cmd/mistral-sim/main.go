// Command mistral-sim replays the paper's workload scenario on the virtual
// testbed under a chosen control strategy, streaming per-window metrics.
//
// Usage:
//
//	mistral-sim [-strategy mistral|naive|perf-pwr|perf-cost|pwr-cost]
//	            [-apps N] [-duration 6h30m] [-seed N] [-zones N] [-workers N]
//	            [-dvfs] [-csv] [-fault-rate P] [-fault-seed N]
//	            [-provenance FILE] [-trace FILE] [-metrics FILE]
//	            [-log-level LEVEL] [-pprof ADDR] [-bench-json FILE]
//	            [-slo] [-slo-exit] [-profile-dir DIR] [-profile-budget D]
//	            [-profile-max N] [-checkpoint FILE] [-resume FILE]
//	            [-exec-policy fail-forward|rollback] [-guard] [-step-provenance]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/checkpoint"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/guard"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/slo"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
	"github.com/mistralcloud/mistral/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-sim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		strategyName = flag.String("strategy", "mistral", "control strategy: mistral, naive, perf-pwr, perf-cost, pwr-cost")
		numApps      = flag.Int("apps", 2, "number of RUBiS applications (1-4)")
		duration     = flag.Duration("duration", 0, "replay duration (0 = full 6.5h scenario)")
		seed         = flag.Uint64("seed", 42, "random seed")
		zones        = flag.Int("zones", 1, "number of data centers (>1 enables the WAN extension; mistral/naive only)")
		workers      = flag.Int("workers", 0, "evaluation concurrency for mistral/naive: sweep arms, search children, and 1st-level controllers (0 = min(GOMAXPROCS, 8), 1 = serial; decisions are identical either way)")
		dvfs         = flag.Bool("dvfs", false, "equip hosts with 60/80% DVFS levels (the §VI extension)")
		faultRate    = flag.Float64("fault-rate", 0, "action-failure probability in [0,1]; >0 enables the fault plane (delays, host crashes, and sensor faults scale with it)")
		faultSeed    = flag.Uint64("fault-seed", 0, "fault schedule seed (0 = use -seed)")
		provPath     = flag.String("provenance", "", "write one decision-provenance record per window as JSONL to FILE (inspect with mistral-explain)")
		asCSV        = flag.Bool("csv", false, "emit CSV instead of aligned columns")
		tracePath    = flag.String("trace", "", "write span trace to FILE (.json = Chrome trace_event for Perfetto, else JSONL)")
		metricsPath  = flag.String("metrics", "", `write metrics registry dump to FILE at exit ("-" = stderr)`)
		logLevel     = flag.String("log-level", "", "structured logging to stderr: debug, info, warn, error")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar (/debug/vars) on ADDR, e.g. localhost:6060")
		benchJSON    = flag.String("bench-json", "", "write the run's perf counters as JSON to FILE (BENCH_search.json schema: expansions, ns/expansion, allocs/expansion, cache hit %, decide latency percentiles)")
		sloReport    = flag.Bool("slo", false, "run the SLO self-monitoring engine and print the objective/error-budget report to stderr at exit")
		profileDir   = flag.String("profile-dir", "", "capture pprof CPU/heap artifacts into DIR when a decide blows its wall-clock latency budget")
		profileBud   = flag.Duration("profile-budget", 500*time.Millisecond, "wall-clock decide budget that triggers pprof capture (with -profile-dir)")
		profileMax   = flag.Int("profile-max", 8, "maximum pprof artifacts written (with -profile-dir)")
		sloExit      = flag.Bool("slo-exit", false, "exit nonzero when any SLO objective's error budget is exhausted at the end of the run (for CI gates; implies the SLO engine)")
		ckptPath     = flag.String("checkpoint", "", "write an engine checkpoint to FILE when the run completes (resume with -resume)")
		resumePath   = flag.String("resume", "", "restore the engine from a checkpoint FILE and continue the replay; the checkpoint's recorded environment (apps, seed, strategy, workers, fault profile) overrides the corresponding flags")
		execPolicy   = flag.String("exec-policy", "fail-forward", "plan execution policy: fail-forward (keep the applied prefix on failure) or rollback (compensate it, restoring the pre-plan configuration)")
		guardOn      = flag.Bool("guard", false, "run every plan through the admission guard and adaptation circuit breaker before execution")
		stepProv     = flag.Bool("step-provenance", false, "include per-step execution outcomes (applied/failed/skipped/rolled-back, with causes) in each provenance record (with -provenance)")
	)
	flag.Parse()

	ob, closeObs, err := obs.CLI{TracePath: *tracePath, MetricsPath: *metricsPath, LogLevel: *logLevel, PprofAddr: *pprofAddr}.Build()
	if err != nil {
		return err
	}
	if *benchJSON != "" || *sloReport || *sloExit {
		// The perf counters and SLO gauges ride the metrics registry; make
		// sure one exists even when no other observability knob is set.
		if ob == nil {
			ob = &obs.Observer{Metrics: obs.NewRegistry()}
		} else if ob.Metrics == nil {
			ob.Metrics = obs.NewRegistry()
		}
	}
	obs.SetDefault(ob)
	defer func() {
		if cerr := closeObs(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// A checkpoint records the environment it was built from; resuming
	// adopts that recipe wholesale so the rebuilt lab, strategy, and fault
	// plane match the snapshot exactly.
	var ckFile *checkpoint.File
	if *resumePath != "" {
		ckFile, err = checkpoint.Read(*resumePath)
		if err != nil {
			return err
		}
		*strategyName = ckFile.Strategy
		*workers = ckFile.Workers
		*faultRate = ckFile.FaultRate
		*faultSeed = ckFile.FaultSeed
		*execPolicy = ckFile.ExecPolicy
		*guardOn = ckFile.Guard
	}
	exec, err := testbed.ParseExecPolicy(*execPolicy)
	if err != nil {
		return err
	}

	labOpts := experiments.LabOptions{NumApps: *numApps, Seed: *seed, Zones: *zones}
	if *dvfs {
		labOpts.DVFSLevels = []float64{0.6, 0.8}
	}
	if ckFile != nil {
		labOpts = ckFile.Lab
	}
	lab, err := experiments.NewLab(labOpts)
	if err != nil {
		return err
	}
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("-fault-rate %v out of [0,1]", *faultRate)
	}
	if *faultSeed == 0 {
		*faultSeed = *seed
	}
	inj := fault.New(fault.Profile(*faultRate, *faultSeed))
	tb, err := lab.NewTestbedExec(inj, exec)
	if err != nil {
		return err
	}
	var grd *guard.Guard
	if *guardOn {
		grd = guard.New(guard.Config{Obs: ob}, lab.Cat)
	}
	var rec *provenance.Recorder
	if *provPath != "" {
		f, ferr := os.Create(*provPath)
		if ferr != nil {
			return ferr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		rec = provenance.NewRecorder(f)
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		return err
	}
	var decider mistral.Decider
	switch strings.ToLower(*strategyName) {
	case "mistral", "naive":
		decider, err = strategy.NewMistral(eval, strategy.MistralConfig{
			HostGroups:         lab.HostGroups(),
			Naive:              strings.EqualFold(*strategyName, "naive"),
			MonitoringInterval: lab.Util.MonitoringInterval,
			Workers:            *workers,
			Provenance:         rec.Enabled(),
		})
	case "perf-pwr":
		decider = strategy.NewPerfPwr(eval)
	case "perf-cost":
		decider, err = strategy.NewPerfCost(eval, lab.Util)
	case "pwr-cost":
		decider = strategy.NewPwrCost(eval)
	default:
		return fmt.Errorf("unknown strategy %q", *strategyName)
	}
	if err != nil {
		return err
	}

	// Self-monitoring: an explicit engine when -slo asked for the report
	// (scenario.Run otherwise builds its own whenever an observer is
	// active), plus optional latency-triggered pprof capture.
	var eng *slo.Engine
	if *sloReport || *sloExit {
		eng = slo.New(slo.Config{Interval: lab.Util.MonitoringInterval}, ob)
	}
	var prof *obs.Profiler
	if *profileDir != "" {
		prof, err = obs.NewProfiler(*profileDir, *profileBud, *profileMax)
		if err != nil {
			return err
		}
		defer prof.Close()
	}

	var mem0 runtime.MemStats
	if *benchJSON != "" {
		runtime.GC()
		runtime.ReadMemStats(&mem0)
	}
	engine, err := scenario.NewEngine(tb, decider, scenario.RunConfig{
		Traces:         lab.Traces,
		Duration:       *duration,
		Interval:       lab.Util.MonitoringInterval,
		Utility:        lab.Util,
		Workers:        *workers,
		Fault:          inj,
		Guard:          grd,
		Provenance:     rec,
		StepProvenance: *stepProv,
		SLO:            eng,
		Profile:        prof,
	})
	if err != nil {
		return err
	}
	if ckFile != nil {
		if err := engine.Restore(ckFile.Scenario); err != nil {
			return err
		}
	}
	for !engine.Done() {
		if _, err := engine.Step(); err != nil {
			return err
		}
	}
	if err := engine.Close(); err != nil {
		return err
	}
	res := engine.Result()
	if *ckptPath != "" {
		snap, err := engine.Snapshot()
		if err != nil {
			return err
		}
		if err := checkpoint.Write(*ckptPath, &checkpoint.File{
			Schema:     checkpoint.Schema,
			Strategy:   strings.ToLower(*strategyName),
			Workers:    *workers,
			Lab:        labOpts,
			FaultRate:  *faultRate,
			FaultSeed:  *faultSeed,
			ExecPolicy: exec.String(),
			Guard:      *guardOn,
			Scenario:   snap,
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "checkpoint: wrote %s (window %d, t=%s)\n", *ckptPath, engine.WindowIndex(), engine.Now())
	}

	appNames := make([]string, len(lab.AppNames))
	copy(appNames, lab.AppNames)
	sort.Strings(appNames)

	if *asCSV {
		fmt.Print("time")
		for _, n := range appNames {
			fmt.Printf(",%s_reqs,%s_rt_ms", n, n)
		}
		fmt.Println(",watts,actions,utility,cum_utility")
		for _, w := range res.Windows {
			fmt.Printf("%.0f", w.Time.Seconds())
			for _, n := range appNames {
				fmt.Printf(",%.1f,%.0f", w.Rates[n], w.RTSec[n]*1000)
			}
			fmt.Printf(",%.0f,%d,%.3f,%.3f\n", w.Watts, w.Actions, w.Utility, w.CumUtility)
		}
	} else {
		fmt.Printf("%-9s", "window")
		for _, n := range appNames {
			fmt.Printf("  %8s  %9s", n, "rt(ms)")
		}
		fmt.Printf("  %6s  %4s  %8s\n", "watts", "act", "cum")
		for _, w := range res.Windows {
			fmt.Printf("%-9s", w.Time)
			for _, n := range appNames {
				fmt.Printf("  %8.1f  %9.0f", w.Rates[n], w.RTSec[n]*1000)
			}
			fmt.Printf("  %6.0f  %4d  %8.1f\n", w.Watts, w.Actions, w.CumUtility)
		}
	}

	fmt.Fprintf(os.Stderr, "\n%s: cumulative utility $%.1f, %d actions, %d decision runs (mean search %v), %d target violations\n",
		res.Strategy, res.CumUtility, res.TotalActions, res.Invocations, res.MeanSearchTime, res.TargetViolations)
	if rec.Enabled() {
		fmt.Fprintf(os.Stderr, "provenance: %d records written to %s (inspect with mistral-explain %[2]s)\n", rec.Count(), *provPath)
	}
	if inj.Enabled() {
		counts := inj.Counts()
		fmt.Fprintf(os.Stderr, "faults (rate %.0f%%, seed %d): %d injected — %d degraded windows, %d failed actions (%d retries, %d skipped), %d host crashes, %d sensor drops\n",
			*faultRate*100, *faultSeed, counts.Injected,
			res.DegradedWindows, res.FailedActions, res.Retries, res.SkippedActions,
			res.HostCrashes, res.SensorDrops)
	}
	// These lines only appear when their (default-off) planes are on, so a
	// default invocation's stderr stays byte-identical across versions.
	if exec == testbed.RollbackOnFailure {
		fmt.Fprintf(os.Stderr, "rollback: %d plan(s) compensated, %d rollback action(s) executed\n",
			res.CompensatedPlans, res.RolledBackActions)
	}
	if grd != nil {
		adm, rej, opens := grd.Stats()
		fmt.Fprintf(os.Stderr, "guard: %d plan(s) admitted, %d rejected, breaker opened %d time(s) (final state %s)\n",
			adm, rej, opens, grd.Breaker())
	}
	if eng != nil && *sloReport {
		snap := eng.Snapshot()
		fmt.Fprintf(os.Stderr, "slo: %d windows observed, %d alerts\n", snap.Windows, snap.TotalAlerts)
		for _, o := range snap.Objectives {
			status := "ok"
			if !o.Healthy {
				status = "BUDGET EXHAUSTED"
			}
			last := ""
			if o.LastBreachWindow >= 0 {
				last = fmt.Sprintf(", last breach %s", o.LastBreachTrace)
			}
			fmt.Fprintf(os.Stderr, "  %-16s %s: %d/%d windows breached (budget %.0f%%, used %.0f%%, burn %.2f)%s\n",
				o.Name, status, o.Breaches, o.Windows, o.Budget*100, o.BudgetUsed*100, o.BurnRate, last)
		}
	}
	if prof != nil {
		if arts := prof.Artifacts(); len(arts) > 0 {
			fmt.Fprintf(os.Stderr, "profiling: %d pprof artifact(s) in %s (budget %v)\n", len(arts), *profileDir, *profileBud)
		}
	}
	if *benchJSON != "" {
		var mem1 runtime.MemStats
		runtime.ReadMemStats(&mem1)
		st := eval.CacheStats() // the last window's counters, not yet flushed
		hits := int(ob.Metrics.CounterValue("eval_cache_hits_total")) + st.Hits
		misses := int(ob.Metrics.CounterValue("eval_cache_misses_total")) + st.Misses
		var decideWall time.Duration
		for _, d := range res.DecideWall {
			decideWall += d
		}
		br := &experiments.BenchResult{
			Seed:       *seed,
			Apps:       *numApps,
			Hosts:      lab.Opts.NumHosts,
			Windows:    len(res.Windows),
			Workers:    *workers,
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Expansions: int(ob.Metrics.CounterValue("search_expansions_total")),
			Generated:  int(ob.Metrics.CounterValue("search_generated_total")),
			WallSec:    decideWall.Seconds(),
		}
		if br.Expansions > 0 && decideWall > 0 {
			br.ExpansionsPerSec = float64(br.Expansions) / decideWall.Seconds()
			br.NsPerExpansion = float64(decideWall.Nanoseconds()) / float64(br.Expansions)
			// Allocation counts cover the whole replay (testbed included),
			// unlike mistral-exp -run bench, which isolates the decide path.
			br.AllocsPerExpansion = float64(mem1.Mallocs-mem0.Mallocs) / float64(br.Expansions)
			br.BytesPerExpansion = float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(br.Expansions)
		}
		if hits+misses > 0 {
			br.CacheHitPct = 100 * float64(hits) / float64(hits+misses)
		}
		br.DecideP50Ms = experiments.QuantileMs(res.DecideWall, 0.50)
		br.DecideP99Ms = experiments.QuantileMs(res.DecideWall, 0.99)
		if err := br.WriteJSON(*benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *benchJSON)
	}
	if *sloExit && eng != nil {
		snap := eng.Snapshot()
		var exhausted []string
		for _, o := range snap.Objectives {
			if !o.Healthy {
				exhausted = append(exhausted, o.Name)
			}
		}
		if len(exhausted) > 0 {
			return fmt.Errorf("slo: error budget exhausted: %s", strings.Join(exhausted, ", "))
		}
	}
	return nil
}
