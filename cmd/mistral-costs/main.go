// Command mistral-costs runs the paper's offline adaptation-cost
// measurement campaign (§III-C) against the request-level testbed and
// prints the resulting cost table next to the paper-anchored one.
//
// Usage:
//
//	mistral-costs [-trials N] [-sessions 100,400,800] [-seed N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-costs:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trials   = flag.Int("trials", 3, "trials per (action, workload) cell")
		sessions = flag.String("sessions", "100,200,400,800", "comma-separated session levels")
		seed     = flag.Uint64("seed", 42, "random seed")
		asCSV    = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	var levels []float64
	for _, s := range strings.Split(*sessions, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("invalid session level %q: %w", s, err)
		}
		levels = append(levels, v)
	}

	paper := experiments.Fig7Table(mistral.RunFig7())
	rows, err := experiments.Fig7MeasuredCampaign(*seed, *trials, levels)
	if err != nil {
		return err
	}
	measured := experiments.Fig7Table(rows)
	measured.Title = "Measured campaign (request-level testbed)"

	for _, t := range []experiments.Table{paper, measured} {
		if *asCSV {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.ASCII())
		}
	}
	return nil
}
