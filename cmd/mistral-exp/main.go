// Command mistral-exp regenerates the paper's tables and figures from the
// reproduction, rendering each as an ASCII table (or CSV) on stdout or
// into an output directory.
//
// Usage:
//
//	mistral-exp [-run all|fig1|...|table1|faultsweep|ablations|chaossweep|bench]
//	            [-seed N] [-fault-seed N] [-csv] [-outdir DIR] [-quick] [-workers N]
//	            [-provenance FILE] [-trace FILE] [-metrics FILE]
//	            [-log-level LEVEL] [-pprof ADDR]
//	            [-bench-out FILE] [-bench-baseline FILE] [-bench-tolerance PCT]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/provenance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-exp:", err)
		os.Exit(1)
	}
}

type emitter struct {
	csv    bool
	outdir string
}

func (e *emitter) emit(name string, tables []experiments.Table) error {
	for i := range tables {
		t := &tables[i]
		body := t.ASCII()
		ext := "txt"
		if e.csv {
			body = t.CSV()
			ext = "csv"
		}
		if e.outdir == "" {
			fmt.Println(body)
			continue
		}
		file := filepath.Join(e.outdir, fmt.Sprintf("%s_%d.%s", name, i, ext))
		if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", file)
	}
	return nil
}

func run() (err error) {
	var (
		which       = flag.String("run", "all", "which experiment: all, fig1, fig3, fig4, fig5, fig6, fig7, fig7m, fig89, fig10, table1, faultsweep, ablations, chaossweep, bench (chaossweep and bench are not part of all)")
		seed        = flag.Uint64("seed", 42, "random seed")
		faultSeed   = flag.Uint64("fault-seed", 0, "fault schedule seed for faultsweep/chaossweep (0 = use -seed)")
		asCSV       = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
		outdir      = flag.String("outdir", "", "write outputs to this directory instead of stdout")
		quick       = flag.Bool("quick", false, "cheaper variants of the slow experiments (shorter replays, fewer trials)")
		workers     = flag.Int("workers", 0, "evaluation concurrency for table1's hierarchies (0 = min(GOMAXPROCS, 8), 1 = serial; results are identical either way)")
		provPath    = flag.String("provenance", "", "write table1's decision-provenance records as JSONL to FILE (inspect with mistral-explain)")
		tracePath   = flag.String("trace", "", "write span trace to FILE (.json = Chrome trace_event for Perfetto, else JSONL)")
		metricsPath = flag.String("metrics", "", `write metrics registry dump to FILE at exit ("-" = stderr)`)
		logLevel    = flag.String("log-level", "", "structured logging to stderr: debug, info, warn, error")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar (/debug/vars) on ADDR, e.g. localhost:6060")
		benchOut    = flag.String("bench-out", "", "bench: write the perf snapshot as JSON to FILE (BENCH_search.json schema)")
		benchBase   = flag.String("bench-baseline", "", "bench: compare ns/expansion against this committed BENCH_search.json and fail on regression")
		benchTol    = flag.Float64("bench-tolerance", 20, "bench: allowed ns/expansion regression vs -bench-baseline, in percent")
	)
	flag.Parse()

	ob, closeObs, err := obs.CLI{TracePath: *tracePath, MetricsPath: *metricsPath, LogLevel: *logLevel, PprofAddr: *pprofAddr}.Build()
	if err != nil {
		return err
	}
	obs.SetDefault(ob)
	defer func() {
		if cerr := closeObs(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	e := &emitter{csv: *asCSV, outdir: *outdir}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	want := func(name string) bool { return *which == "all" || strings.EqualFold(*which, name) }
	start := time.Now()

	if want("fig1") {
		r, err := mistral.RunFig1(*seed)
		if err != nil {
			return fmt.Errorf("fig1: %w", err)
		}
		if err := e.emit("fig1", r.Tables()); err != nil {
			return err
		}
	}
	if want("fig3") {
		if err := e.emit("fig3", []experiments.Table{experiments.Fig3Table(mistral.RunFig3())}); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := e.emit("fig4", []experiments.Table{mistral.RunFig4(*seed).Table()}); err != nil {
			return err
		}
	}
	if want("fig5") {
		r, err := mistral.RunFig5(*seed)
		if err != nil {
			return fmt.Errorf("fig5: %w", err)
		}
		if err := e.emit("fig5", []experiments.Table{r.Table()}); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := e.emit("fig6", []experiments.Table{mistral.RunFig6(*seed).Table()}); err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := e.emit("fig7", []experiments.Table{experiments.Fig7Table(mistral.RunFig7())}); err != nil {
			return err
		}
	}
	if want("fig7m") {
		trials := 3
		if *quick {
			trials = 1
		}
		rows, err := mistral.RunFig7Measured(*seed, trials)
		if err != nil {
			return fmt.Errorf("fig7m: %w", err)
		}
		t := experiments.Fig7Table(rows)
		t.Title = "Fig. 7 (measured campaign on the request-level testbed)"
		if err := e.emit("fig7_measured", []experiments.Table{t}); err != nil {
			return err
		}
	}
	if want("fig89") {
		r, err := mistral.RunFig89(*seed)
		if err != nil {
			return fmt.Errorf("fig89: %w", err)
		}
		if err := e.emit("fig8_9", r.Tables()); err != nil {
			return err
		}
	}
	if want("fig10") {
		r, err := mistral.RunFig10(*seed)
		if err != nil {
			return fmt.Errorf("fig10: %w", err)
		}
		if err := e.emit("fig10", r.Tables()); err != nil {
			return err
		}
	}
	if want("table1") {
		opts := experiments.Table1Options{Workers: *workers}
		if *quick {
			opts.Duration = 2 * time.Hour
		}
		if *provPath != "" {
			f, ferr := os.Create(*provPath)
			if ferr != nil {
				return ferr
			}
			defer func() {
				if cerr := f.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}()
			opts.Provenance = provenance.NewRecorder(f)
		}
		r, err := mistral.RunTable1(*seed, opts)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		if err := e.emit("table1", []experiments.Table{r.Table()}); err != nil {
			return err
		}
		if opts.Provenance.Enabled() {
			fmt.Fprintf(os.Stderr, "provenance: %d records written to %s\n", opts.Provenance.Count(), *provPath)
		}
	}
	if want("faultsweep") {
		opts := experiments.FaultSweepOptions{Seed: *faultSeed, Workers: *workers}
		if *faultSeed == 0 {
			opts.Seed = *seed
		}
		if *quick {
			opts.Rates = []float64{0, 0.15, 0.30}
			opts.Duration = time.Hour
		}
		r, err := mistral.RunFaultSweep(opts)
		if err != nil {
			return fmt.Errorf("faultsweep: %w", err)
		}
		if err := e.emit("faultsweep", r.Tables()); err != nil {
			return err
		}
	}
	// Like bench, chaossweep is opt-in: four full replays under maximum
	// chaos are too slow to ride along with every "all" run.
	if strings.EqualFold(*which, "chaossweep") {
		opts := experiments.ChaosSweepOptions{Seed: *faultSeed, Workers: *workers}
		if *faultSeed == 0 {
			opts.Seed = *seed
		}
		if *quick {
			opts.Rates = []float64{0.30}
			opts.Duration = time.Hour
		}
		r, err := mistral.RunChaosSweep(opts)
		if err != nil {
			return fmt.Errorf("chaossweep: %w", err)
		}
		if err := e.emit("chaossweep", r.Tables()); err != nil {
			return err
		}
		if v := r.Violations(); len(v) > 0 {
			return fmt.Errorf("chaossweep: %d safety invariant breach(es); first: %s", len(v), v[0])
		}
	}
	if want("ablations") {
		t := experiments.Table{
			Title:  "Ablations (beyond the paper)",
			Header: []string{"study", "variant", "utility($)", "actions", "mean search"},
		}
		prune, err := experiments.AblationPruneFraction(*seed)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		for _, r := range prune {
			t.Rows = append(t.Rows, []string{"prune fraction", r.Label, fmt.Sprintf("%.2f", r.Utility), fmt.Sprint(r.Actions), r.MeanSearch.String()})
		}
		band, err := experiments.AblationBandWidth(*seed)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		for _, r := range band {
			t.Rows = append(t.Rows, []string{"L2 band width", r.Label, fmt.Sprintf("%.2f", r.Utility), fmt.Sprint(r.Actions), r.MeanSearch.String()})
		}
		dvfs, err := experiments.AblationDVFS(*seed)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		for _, r := range dvfs {
			t.Rows = append(t.Rows, []string{"DVFS extension", r.Label, fmt.Sprintf("%.2f", r.Utility), fmt.Sprint(r.Actions), r.MeanSearch.String()})
		}
		for _, r := range experiments.AblationARMA(*seed) {
			t.Rows = append(t.Rows, []string{"ARMA estimator", r.Label, "-", "-", fmt.Sprintf("%.1f%% err", r.ErrorPct)})
		}
		fid, err := experiments.AblationFidelity(*seed)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		t.Rows = append(t.Rows, []string{"testbed fidelity", "analytic vs request", "-", "-",
			fmt.Sprintf("rt gap %.1f%%, watts gap %.2f%%", fid.RTGapPct, fid.WattsGapPct)})
		if err := e.emit("ablations", []experiments.Table{t}); err != nil {
			return err
		}
	}
	if strings.EqualFold(*which, "bench") {
		opts := experiments.BenchOptions{Workers: *workers}
		if *quick {
			opts.Windows = 16
		}
		r, err := mistral.RunBenchSearch(*seed, opts)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		if err := e.emit("bench", []experiments.Table{r.Table()}); err != nil {
			return err
		}
		if *benchOut != "" {
			if err := r.WriteJSON(*benchOut); err != nil {
				return fmt.Errorf("bench: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
		}
		if *benchBase != "" {
			verdict, err := r.CompareBaseline(*benchBase, *benchTol)
			if err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, verdict)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
