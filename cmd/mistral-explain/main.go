// Command mistral-explain answers "why did the controller do that?" from a
// decision-provenance stream recorded with mistral-sim/mistral-exp
// -provenance. Without -window it prints a one-line-per-window summary;
// with -window N it renders that window's full flight-recorder view: the
// prediction context, the chosen plan's annotated Eq. 3 utility ledger,
// and the top rejected frontier alternatives. With -check it validates the
// stream instead (schema, window sequencing, and every ledger's sums
// against the search's reported utility within the 1e-9 tolerance) and
// exits non-zero on the first inconsistency.
//
// Usage:
//
//	mistral-explain [-window N] [-top K] [-check] FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mistralcloud/mistral/internal/provenance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-explain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		window = flag.Int("window", -1, "explain this window in full (default: summary of all windows)")
		topK   = flag.Int("top", 3, "rejected alternatives to show with -window")
		check  = flag.Bool("check", false, "validate the stream (schema, sequencing, ledger arithmetic) and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: mistral-explain [-window N] [-top K] [-check] FILE")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := provenance.ReadAll(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no records", flag.Arg(0))
	}

	if *check {
		if err := provenance.CheckStream(recs); err != nil {
			return err
		}
		decisions, ledgers := 0, 0
		for i := range recs {
			decisions += len(recs[i].Decisions)
			for _, d := range recs[i].Decisions {
				if d.Search != nil {
					ledgers += 1 + len(d.Search.Rejected)
				}
			}
		}
		fmt.Printf("ok: %d records, %d decisions, %d ledgers consistent within %g\n",
			len(recs), decisions, ledgers, provenance.Tolerance)
		return nil
	}

	if *window >= 0 {
		for i := range recs {
			if recs[i].Window == *window {
				explain(&recs[i], *topK)
				return nil
			}
		}
		return fmt.Errorf("window %d not in stream (have %d records)", *window, len(recs))
	}

	summarize(recs)
	return nil
}

// summarize prints the one-line-per-window overview.
func summarize(recs []Record) {
	fmt.Printf("%-6s  %9s  %-22s  %-8s  %3s  %10s  %10s  %7s  %s\n",
		"window", "t", "strategy", "state", "act", "utility($)", "cum($)", "watts", "termination")
	for i := range recs {
		r := &recs[i]
		state := "idle"
		switch {
		case r.Degraded:
			state = "DEGRADED"
		case r.Busy:
			state = "busy"
		case r.Invoked:
			state = "invoked"
		}
		var terms []string
		for _, d := range r.Decisions {
			if d.Degraded {
				terms = append(terms, d.Controller+":degraded")
			} else if d.Search != nil {
				terms = append(terms, d.Controller+":"+d.Search.Termination)
			}
		}
		fmt.Printf("%-6d  %8.0fs  %-22s  %-8s  %3d  %10.3f  %10.1f  %7.0f  %s\n",
			r.Window, r.TimeSec, r.Strategy, state, r.Actions,
			r.UtilityDollars, r.CumUtilityDollars, r.Watts, strings.Join(terms, " "))
	}
}

// explain renders one window's full provenance.
func explain(r *Record, topK int) {
	fmt.Printf("window %d  t=%.0fs  strategy=%s\n", r.Window, r.TimeSec, r.Strategy)
	switch {
	case r.Busy:
		fmt.Println("state: busy — a previous plan was still executing; no decision this window")
	case r.Invoked:
		fmt.Printf("state: invoked — %d action(s), search %.3fs costing $%.4f\n",
			r.Actions, r.SearchTimeSec, r.SearchCostDollars)
	default:
		fmt.Println("state: idle — workload stayed inside the band; no controller ran")
	}
	if r.Degraded {
		fmt.Printf("DEGRADED: %s\n", r.DegradedReason)
	}
	fmt.Printf("window utility $%.4f (cum $%.2f), %.0f W\n", r.UtilityDollars, r.CumUtilityDollars, r.Watts)

	for _, d := range r.Decisions {
		fmt.Printf("\n── controller %s ", d.Controller)
		fmt.Println(strings.Repeat("─", max(0, 60-len(d.Controller))))
		if d.Degraded {
			fmt.Printf("degraded: %s\n", d.DegradedReason)
			continue
		}
		if p := d.Predict; p != nil {
			fmt.Printf("prediction: band ±%.0f req/s; stability interval measured %.0fs, ARMA predicted %.0fs (β=%.2f)\n",
				p.BandWidth, p.MeasuredSec, p.PredictedSec, p.Beta)
			if p.Floor != "" {
				fmt.Printf("control window: %.0fs (raised by the %s floor)\n", p.CWSec, p.Floor)
			} else {
				fmt.Printf("control window: %.0fs (raw prediction)\n", p.CWSec)
			}
		}
		s := d.Search
		if s == nil {
			continue
		}
		fmt.Printf("search: %s after %d expansions (%d generated, %d pruned, peak frontier %d), %.3fs costing $%.4f\n",
			s.Termination, s.Expanded, s.Generated, s.PrunedChildren, s.PeakFrontier,
			s.SearchTimeSec, s.SearchCostDollars)
		if s.Truncated {
			fmt.Println("search: TRUNCATED — budget exhausted before the frontier settled")
		}
		for _, ev := range s.Events {
			fmt.Printf("  event @%d: %s (%s, dropped %d)\n", ev.Expansion, ev.Kind, ev.Reason, ev.Dropped)
		}
		if s.DroppedEvents > 0 {
			fmt.Printf("  (+%d events past the digest cap)\n", s.DroppedEvents)
		}

		fmt.Printf("\nchosen plan — Eq. 3 ledger (utility $%.6f):\n", s.Utility)
		ledger(&s.Chosen, "  ")

		shown := min(topK, len(s.Rejected))
		for j := 0; j < shown; j++ {
			alt := &s.Rejected[j]
			kind := "prefix"
			if alt.Complete {
				kind = "complete plan"
			}
			fmt.Printf("\nrejected #%d — %s at depth %d (f=%.6f = g %.6f + h %.6f, distance %.2f):\n",
				j+1, kind, alt.Depth, alt.F, alt.G, alt.H, alt.Distance)
			ledger(&alt.Ledger, "  ")
		}
		if len(s.Rejected) == 0 {
			fmt.Println("\nno rejected alternatives: the frontier was empty when the search committed")
		}
	}
}

// ledger renders one plan's Eq. 3 decomposition.
func ledger(l *provenance.PlanLedger, pad string) {
	if l.Error != "" {
		fmt.Printf("%sledger replay failed: %s\n", pad, l.Error)
		return
	}
	if len(l.Actions) == 0 {
		fmt.Printf("%s(no actions: stay in the current configuration)\n", pad)
	}
	for i, a := range l.Actions {
		fmt.Printf("%s%2d. %-40s %6.1fs @ %+9.4f $/s = %+9.4f $\n",
			pad, i+1, a.Action, a.DurationSec, a.RateDollarsPerSec, a.CostDollars)
	}
	fmt.Printf("%stransient: %+.4f $ over %.1fs\n", pad, l.TransientDollars, l.PlanDurationSec)
	fmt.Printf("%ssteady:    %+.4f $ = (perf %+.4f + power %+.4f $/s) x %.1fs remaining\n",
		pad, l.SteadyDollars, l.SteadyPerfRate, l.SteadyPwrRate, l.SteadySec)
	fmt.Printf("%stotal:     %+.6f $\n", pad, l.Utility)
}

// Record aliases the provenance record for brevity in summarize.
type Record = provenance.Record
