// Command mistral-explain answers "why did the controller do that?" from a
// decision-provenance stream recorded with mistral-sim/mistral-exp
// -provenance. Without -window it prints a one-line-per-window summary;
// with -window N it renders that window's full flight-recorder view: the
// prediction context, the chosen plan's annotated Eq. 3 utility ledger,
// and the top rejected frontier alternatives. With -check it validates the
// stream instead (schema, window sequencing, and every ledger's sums
// against the search's reported utility within the 1e-9 tolerance) and
// exits non-zero on the first inconsistency.
//
// Every window carries a deterministic trace ID (obs.TraceID of its
// index, e.g. "w000042") shared with the span trace, SLO alerts, and the
// ops plane. Pass -trace FILE (the JSONL from mistral-sim -trace) and
// -window N to stitch the window's full causal chain — decide → perfpwr →
// search (with expansion batches and cache stats) → actions → retries —
// under the provenance record. -format json emits machine-readable output
// for the ops plane and scripts.
//
// With -series, FILE is a checkpoint file (mistral-sim -checkpoint /
// mistral-serve /v1/checkpoint) instead of a provenance stream: the
// telemetry history rings persisted in the checkpoint are rebuilt and
// printed — "-series all" lists every retained series with its digest,
// "-series utility,watts" dumps those series' retained samples window by
// window. -format json emits the same data machine-readably.
//
// Usage:
//
//	mistral-explain [-window N] [-top K] [-check] [-format text|json]
//	                [-trace SPANS.jsonl] FILE
//	mistral-explain -series all|NAME[,NAME...] [-format text|json] CHECKPOINT
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/mistralcloud/mistral/internal/checkpoint"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/provenance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-explain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		window    = flag.Int("window", -1, "explain this window in full (default: summary of all windows)")
		topK      = flag.Int("top", 3, "rejected alternatives to show with -window")
		check     = flag.Bool("check", false, "validate the stream (schema, sequencing, ledger arithmetic) and exit")
		format    = flag.String("format", "text", "output format: text or json")
		tracePath = flag.String("trace", "", "span JSONL (from mistral-sim -trace) to stitch the window's causal chain from")
		series    = flag.String("series", "", "print telemetry history from a CHECKPOINT file: 'all' lists every series, a comma list dumps those series' samples")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: mistral-explain [-window N] [-top K] [-check] [-format text|json] [-trace SPANS.jsonl] FILE")
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("-format %q: want text or json", *format)
	}
	if *series != "" {
		return explainSeries(flag.Arg(0), *series, *format)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := provenance.ReadAll(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no records", flag.Arg(0))
	}

	var spans []obs.SpanRecord
	if *tracePath != "" {
		tf, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		spans, err = obs.ReadSpans(tf)
		tf.Close()
		if err != nil {
			return err
		}
	}

	if *check {
		if err := provenance.CheckStream(recs); err != nil {
			return err
		}
		decisions, ledgers := 0, 0
		for i := range recs {
			decisions += len(recs[i].Decisions)
			for _, d := range recs[i].Decisions {
				if d.Search != nil {
					ledgers += 1 + len(d.Search.Rejected)
				}
			}
		}
		fmt.Printf("ok: %d records, %d decisions, %d ledgers consistent within %g\n",
			len(recs), decisions, ledgers, provenance.Tolerance)
		return nil
	}

	if *window >= 0 {
		for i := range recs {
			if recs[i].Window == *window {
				tid := obs.TraceID(recs[i].Window)
				wspans := obs.SpansForTrace(spans, tid)
				if *format == "json" {
					return writeJSON(windowDoc{Trace: tid, Record: &recs[i], Spans: wspans})
				}
				explain(&recs[i], *topK)
				if *tracePath != "" {
					causalChain(tid, wspans, *tracePath)
				}
				return nil
			}
		}
		return fmt.Errorf("window %d not in stream (have %d records)", *window, len(recs))
	}

	if *format == "json" {
		return writeJSON(summaryRows(recs))
	}
	summarize(recs)
	return nil
}

// writeJSON emits v as indented JSON on stdout.
func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// explainSeries prints the telemetry history persisted in a checkpoint
// file: the -series mode, where FILE is a checkpoint (not provenance).
func explainSeries(path, sel, format string) error {
	ck, err := checkpoint.Read(path)
	if err != nil {
		return err
	}
	if ck.Scenario == nil || ck.Scenario.History == nil {
		return fmt.Errorf("%s: checkpoint carries no telemetry history (pre-v2 checkpoint, or observability was off)", path)
	}
	store, err := tsdb.FromState(ck.Scenario.History)
	if err != nil {
		return err
	}

	if sel == "all" {
		sums := store.Summaries(0)
		if format == "json" {
			return writeJSON(tsdb.ListResponse{
				Schema:     tsdb.Schema,
				LastWindow: store.LastWindow(),
				Steps:      store.Steps(),
				Series:     sums,
			})
		}
		fmt.Printf("telemetry history from %s — %d series, last window %d\n",
			path, len(sums), store.LastWindow())
		fmt.Printf("%-18s %-8s %8s %12s %12s %12s\n", "series", "class", "windows", "last", "min", "max")
		for _, s := range sums {
			fmt.Printf("%-18s %-8s %8d %12.4g %12.4g %12.4g\n",
				s.Name, s.Class, s.Windows, s.Last, s.Min, s.Max)
		}
		return nil
	}

	names := strings.Split(sel, ",")
	resp, err := store.Query(names, 0, -1, 1)
	if err != nil {
		return err
	}
	if format == "json" {
		return writeJSON(resp)
	}
	for _, qs := range resp.Series {
		fmt.Printf("series %s (%s) — %d retained sample(s)\n", qs.Name, qs.Class, len(qs.Points))
		for _, p := range qs.Points {
			fmt.Printf("  %s  %g\n", obs.TraceID(p.Window), p.Value)
		}
	}
	return nil
}

// windowDoc is the -window -format json document: the provenance record
// joined with its trace ID and (when -trace was given) its spans.
type windowDoc struct {
	Trace  string             `json:"trace"`
	Record *provenance.Record `json:"record"`
	Spans  []obs.SpanRecord   `json:"spans,omitempty"`
}

// summaryRow is one window of the -format json summary.
type summaryRow struct {
	Window            int      `json:"window"`
	Trace             string   `json:"trace"`
	TimeSec           float64  `json:"t_sec"`
	Strategy          string   `json:"strategy"`
	State             string   `json:"state"`
	Actions           int      `json:"actions"`
	UtilityDollars    float64  `json:"utility_dollars"`
	CumUtilityDollars float64  `json:"cum_utility_dollars"`
	Watts             float64  `json:"watts"`
	Terminations      []string `json:"terminations,omitempty"`
	DegradedReason    string   `json:"degraded_reason,omitempty"`
}

// windowState classifies a record the way the text summary does.
func windowState(r *Record) string {
	switch {
	case r.Degraded:
		return "degraded"
	case r.Busy:
		return "busy"
	case r.Invoked:
		return "invoked"
	}
	return "idle"
}

// terminations lists each controller's outcome ("L2:goal", "L1-0:degraded").
func terminations(r *Record) []string {
	var terms []string
	for _, d := range r.Decisions {
		if d.Degraded {
			terms = append(terms, d.Controller+":degraded")
		} else if d.Search != nil {
			terms = append(terms, d.Controller+":"+d.Search.Termination)
		}
	}
	return terms
}

func summaryRows(recs []Record) []summaryRow {
	rows := make([]summaryRow, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		rows = append(rows, summaryRow{
			Window:            r.Window,
			Trace:             obs.TraceID(r.Window),
			TimeSec:           r.TimeSec,
			Strategy:          r.Strategy,
			State:             windowState(r),
			Actions:           r.Actions,
			UtilityDollars:    r.UtilityDollars,
			CumUtilityDollars: r.CumUtilityDollars,
			Watts:             r.Watts,
			Terminations:      terminations(r),
			DegradedReason:    r.DegradedReason,
		})
	}
	return rows
}

// summarize prints the one-line-per-window overview.
func summarize(recs []Record) {
	fmt.Printf("%-6s  %9s  %-22s  %-8s  %3s  %10s  %10s  %7s  %s\n",
		"window", "t", "strategy", "state", "act", "utility($)", "cum($)", "watts", "termination")
	for i := range recs {
		r := &recs[i]
		state := windowState(r)
		if state == "degraded" {
			state = "DEGRADED"
		}
		fmt.Printf("%-6d  %8.0fs  %-22s  %-8s  %3d  %10.3f  %10.1f  %7.0f  %s\n",
			r.Window, r.TimeSec, r.Strategy, state, r.Actions,
			r.UtilityDollars, r.CumUtilityDollars, r.Watts, strings.Join(terminations(r), " "))
	}
}

// explain renders one window's full provenance.
func explain(r *Record, topK int) {
	fmt.Printf("window %d  trace %s  t=%.0fs  strategy=%s\n",
		r.Window, obs.TraceID(r.Window), r.TimeSec, r.Strategy)
	switch {
	case r.Busy:
		fmt.Println("state: busy — a previous plan was still executing; no decision this window")
	case r.Invoked:
		fmt.Printf("state: invoked — %d action(s), search %.3fs costing $%.4f\n",
			r.Actions, r.SearchTimeSec, r.SearchCostDollars)
	default:
		fmt.Println("state: idle — workload stayed inside the band; no controller ran")
	}
	if r.Degraded {
		fmt.Printf("DEGRADED: %s\n", r.DegradedReason)
	}
	fmt.Printf("window utility $%.4f (cum $%.2f), %.0f W\n", r.UtilityDollars, r.CumUtilityDollars, r.Watts)

	for _, d := range r.Decisions {
		fmt.Printf("\n── controller %s ", d.Controller)
		fmt.Println(strings.Repeat("─", max(0, 60-len(d.Controller))))
		if d.Degraded {
			fmt.Printf("degraded: %s\n", d.DegradedReason)
			continue
		}
		if p := d.Predict; p != nil {
			fmt.Printf("prediction: band ±%.0f req/s; stability interval measured %.0fs, ARMA predicted %.0fs (β=%.2f)\n",
				p.BandWidth, p.MeasuredSec, p.PredictedSec, p.Beta)
			if p.Floor != "" {
				fmt.Printf("control window: %.0fs (raised by the %s floor)\n", p.CWSec, p.Floor)
			} else {
				fmt.Printf("control window: %.0fs (raw prediction)\n", p.CWSec)
			}
		}
		s := d.Search
		if s == nil {
			continue
		}
		fmt.Printf("search: %s after %d expansions (%d generated, %d pruned, peak frontier %d), %.3fs costing $%.4f\n",
			s.Termination, s.Expanded, s.Generated, s.PrunedChildren, s.PeakFrontier,
			s.SearchTimeSec, s.SearchCostDollars)
		if s.Truncated {
			fmt.Println("search: TRUNCATED — budget exhausted before the frontier settled")
		}
		for _, ev := range s.Events {
			fmt.Printf("  event @%d: %s (%s, dropped %d)\n", ev.Expansion, ev.Kind, ev.Reason, ev.Dropped)
		}
		if s.DroppedEvents > 0 {
			fmt.Printf("  (+%d events past the digest cap)\n", s.DroppedEvents)
		}

		fmt.Printf("\nchosen plan — Eq. 3 ledger (utility $%.6f):\n", s.Utility)
		ledger(&s.Chosen, "  ")

		shown := min(topK, len(s.Rejected))
		for j := 0; j < shown; j++ {
			alt := &s.Rejected[j]
			kind := "prefix"
			if alt.Complete {
				kind = "complete plan"
			}
			fmt.Printf("\nrejected #%d — %s at depth %d (f=%.6f = g %.6f + h %.6f, distance %.2f):\n",
				j+1, kind, alt.Depth, alt.F, alt.G, alt.H, alt.Distance)
			ledger(&alt.Ledger, "  ")
		}
		if len(s.Rejected) == 0 {
			fmt.Println("\nno rejected alternatives: the frontier was empty when the search committed")
		}
	}
}

// causalChain renders the window's spans as a parent/child tree in
// virtual-time order: decide → perfpwr → search (expansion batches,
// cache stats) → action/retry events, all sharing one trace ID.
func causalChain(tid string, spans []obs.SpanRecord, tracePath string) {
	fmt.Printf("\n── causal trace %s ", tid)
	fmt.Println(strings.Repeat("─", max(0, 60-len(tid))))
	if len(spans) == 0 {
		fmt.Printf("no spans for %s in %s (was the run traced with -trace?)\n", tid, tracePath)
		return
	}
	byID := make(map[uint64]int, len(spans))
	children := make(map[uint64][]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	var roots []int
	for i, s := range spans {
		if _, ok := byID[s.Parent]; ok && s.Parent != s.ID {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := spans[idx[a]], spans[idx[b]]
			if sa.VStartUS != sb.VStartUS {
				return sa.VStartUS < sb.VStartUS
			}
			return sa.ID < sb.ID
		})
	}
	order(roots)
	var render func(i, depth int)
	render = func(i, depth int) {
		s := spans[i]
		fmt.Printf("%s%s%s  [%.1fs → %.1fs", strings.Repeat("  ", depth+1), s.Name,
			spanAttrs(s), float64(s.VStartUS)/1e6, float64(s.VEndUS)/1e6)
		if s.WallUS > 0 {
			fmt.Printf(", wall %.1fms", float64(s.WallUS)/1e3)
		}
		fmt.Println("]")
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}

// spanAttrs formats a span's interesting attributes, skipping the join
// keys already displayed structurally.
func spanAttrs(s obs.SpanRecord) string {
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		if k == "trace" || k == "span" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, s.Attrs[k])
	}
	return b.String()
}

// ledger renders one plan's Eq. 3 decomposition.
func ledger(l *provenance.PlanLedger, pad string) {
	if l.Error != "" {
		fmt.Printf("%sledger replay failed: %s\n", pad, l.Error)
		return
	}
	if len(l.Actions) == 0 {
		fmt.Printf("%s(no actions: stay in the current configuration)\n", pad)
	}
	for i, a := range l.Actions {
		fmt.Printf("%s%2d. %-40s %6.1fs @ %+9.4f $/s = %+9.4f $\n",
			pad, i+1, a.Action, a.DurationSec, a.RateDollarsPerSec, a.CostDollars)
	}
	fmt.Printf("%stransient: %+.4f $ over %.1fs\n", pad, l.TransientDollars, l.PlanDurationSec)
	fmt.Printf("%ssteady:    %+.4f $ = (perf %+.4f + power %+.4f $/s) x %.1fs remaining\n",
		pad, l.SteadyDollars, l.SteadyPerfRate, l.SteadyPwrRate, l.SteadySec)
	fmt.Printf("%stotal:     %+.6f $\n", pad, l.Utility)
}

// Record aliases the provenance record for brevity in summarize.
type Record = provenance.Record
