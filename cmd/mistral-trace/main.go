// Command mistral-trace inspects the synthesized workload traces: ASCII
// sparkline plots of each application's request rate over the scenario
// day, the stability-interval series a given workload band produces, and
// the ARMA estimator's predictions against it — a quick way to see what
// the controllers will face before running a replay.
//
// Usage:
//
//	mistral-trace [-apps N] [-seed N] [-band 8] [-step 2m] [-width 130]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/predict"
	"github.com/mistralcloud/mistral/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-trace:", err)
		os.Exit(1)
	}
}

var sparks = []rune(" ▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-width unicode sparkline.
func sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	// Downsample by averaging buckets.
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range values[lo:min(hi, len(values))] {
			sum += v
		}
		buckets[i] = sum / float64(hi-lo)
	}
	var mn, mx = buckets[0], buckets[0]
	for _, v := range buckets {
		mn = min(mn, v)
		mx = max(mx, v)
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if mx > mn {
			idx = int((v - mn) / (mx - mn) * float64(len(sparks)-1))
		}
		b.WriteRune(sparks[idx])
	}
	return b.String()
}

func run() error {
	var (
		numApps = flag.Int("apps", 4, "number of applications (1-4)")
		seed    = flag.Uint64("seed", 42, "random seed")
		band    = flag.Float64("band", 8, "workload band width (req/s) for the stability analysis")
		step    = flag.Duration("step", 2*time.Minute, "stability sampling step (the monitoring interval)")
		width   = flag.Int("width", 130, "plot width in characters")
	)
	flag.Parse()

	names := make([]string, 0, *numApps)
	for i := 0; i < *numApps && i < 4; i++ {
		names = append(names, fmt.Sprintf("rubis%d", i+1))
	}
	set := mistral.PaperWorkloads(*seed, names)

	fmt.Printf("Workloads %s–%s (seed %d), 0–100 req/s per application:\n\n",
		workload.Clock(0), workload.Clock(workload.ScenarioDuration), *seed)
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)
	for _, n := range sorted {
		tr := set[n]
		peak, at := 0.0, time.Duration(0)
		for t := time.Duration(0); t <= tr.Duration(); t += time.Minute {
			if r := tr.RateAt(t); r > peak {
				peak, at = r, t
			}
		}
		fmt.Printf("%-8s │%s│\n", n, sparkline(tr.Rates, *width))
		fmt.Printf("         mean %5.1f req/s   peak %5.1f req/s at %s\n\n",
			tr.MeanRate(), peak, workload.Clock(at))
	}

	fmt.Printf("Stability intervals (band ±%.1f/2 req/s, sampled every %s):\n\n", *band, *step)
	for _, n := range sorted {
		ivs := workload.StabilityIntervals(set[n], *band, *step)
		if len(ivs) == 0 {
			continue
		}
		vals := make([]float64, len(ivs))
		var minIv, maxIv, sum time.Duration
		minIv = ivs[0]
		for i, iv := range ivs {
			vals[i] = iv.Seconds()
			sum += iv
			minIv = min(minIv, iv)
			maxIv = max(maxIv, iv)
		}
		est := predict.NewEstimator(0, 0, ivs[0])
		preds := predict.Replay(est, ivs)
		var absErr, mag float64
		for i := 1; i < len(ivs); i++ {
			d := preds[i].Seconds() - ivs[i].Seconds()
			if d < 0 {
				d = -d
			}
			absErr += d
			mag += ivs[i].Seconds()
		}
		errPct := 0.0
		if mag > 0 {
			errPct = absErr / mag * 100
		}
		fmt.Printf("%-8s │%s│\n", n, sparkline(vals, *width))
		fmt.Printf("         %d intervals   min %s   mean %s   max %s   ARMA error %.0f%%\n\n",
			len(ivs), minIv, (sum / time.Duration(len(ivs))).Round(time.Second), maxIv, errPct)
	}
	fmt.Println("Short intervals mean the band breaks every monitoring window (ramps and flash")
	fmt.Println("crowds): only quick actions pay off there. Long intervals are where migrations")
	fmt.Println("and host power cycling recoup their transient costs (Eq. 3).")
	return nil
}
