// Command mistral-top is the live ops view for a Mistral run: a
// refreshing terminal rendering of controller health, SLO error-budget
// state, recent alerts, and the slowest decision windows.
//
// Two sources, one view:
//
//   - Live: -addr HOST:PORT polls the /ops JSON endpoint that
//     mistral-sim/mistral-exp serve next to /metrics when -pprof is set.
//   - Recorded: a positional provenance JSONL file (mistral-sim
//     -provenance) is replayed through a fresh SLO engine each refresh,
//     so a still-growing file behaves like a live tail. Wall-clock
//     fields are unavailable in this mode (provenance records only
//     virtual time); the slowest-window board ranks by virtual search
//     time instead, the cache objective shows as unmeasured, and
//     retries replay as zero (the record does not carry them).
//
// -check validates the source against the published schemas
// (mistral.ops/v1, mistral.slo/v1) and exits non-zero on mismatch —
// the CI contract for the observability endpoints.
//
// Usage:
//
//	mistral-top -addr 127.0.0.1:6060 [-refresh 2s] [-once] [-check]
//	mistral-top [-refresh 2s] [-once] [-check] PROVENANCE.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/slo"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/provenance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-top:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "", "poll a live /ops endpoint at HOST:PORT (mistral-sim -pprof address)")
		refresh = flag.Duration("refresh", 2*time.Second, "refresh interval")
		once    = flag.Bool("once", false, "render one frame and exit")
		check   = flag.Bool("check", false, "validate the source against the ops/SLO schemas and exit")
	)
	flag.Parse()
	if (*addr == "") == (flag.NArg() != 1) {
		return fmt.Errorf("usage: mistral-top -addr HOST:PORT | mistral-top PROVENANCE.jsonl")
	}

	fetch := func() (*frame, error) { return fetchLive(*addr) }
	source := "live " + *addr
	if *addr == "" {
		path := flag.Arg(0)
		fetch = func() (*frame, error) { return replayFile(path) }
		source = "replay " + path
	}

	if *check {
		f, err := fetch()
		if err != nil {
			return err
		}
		if err := f.validate(); err != nil {
			return err
		}
		fmt.Printf("ok: %s — schemas %s + %s, %d windows, %d objectives, %d alerts\n",
			source, obs.OpsSchema, slo.Schema, f.ops.Windows, len(f.slo.Objectives), f.slo.TotalAlerts)
		return nil
	}

	for {
		f, err := fetch()
		if err != nil {
			return err
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		f.render(os.Stdout, source)
		if *once {
			return nil
		}
		time.Sleep(*refresh)
	}
}

// frame is one rendered snapshot: the ops document plus its decoded SLO
// sub-document.
type frame struct {
	ops obs.OpsSnapshot
	slo slo.Snapshot
}

// validate enforces the -check schema contract.
func (f *frame) validate() error {
	if f.ops.Schema != obs.OpsSchema {
		return fmt.Errorf("ops schema %q, want %q", f.ops.Schema, obs.OpsSchema)
	}
	if f.ops.Windows > 0 && f.ops.Window < 0 {
		return fmt.Errorf("ops snapshot has %d windows but no current window", f.ops.Windows)
	}
	if f.ops.Windows > 0 && f.ops.Trace == "" {
		return fmt.Errorf("ops snapshot window %d missing trace ID", f.ops.Window)
	}
	if len(f.ops.SLO) > 0 || f.slo.Schema != "" {
		if f.slo.Schema != slo.Schema {
			return fmt.Errorf("slo schema %q, want %q", f.slo.Schema, slo.Schema)
		}
		for _, ob := range f.slo.Objectives {
			if ob.Name == "" {
				return fmt.Errorf("slo objective with empty name")
			}
			if ob.Breaches > ob.Windows {
				return fmt.Errorf("slo objective %s: %d breaches over %d windows", ob.Name, ob.Breaches, ob.Windows)
			}
		}
		for _, a := range f.slo.Alerts {
			if a.Trace != obs.TraceID(a.Window) {
				return fmt.Errorf("alert window %d carries trace %q, want %q", a.Window, a.Trace, obs.TraceID(a.Window))
			}
			if a.Severity != slo.SeverityWarn && a.Severity != slo.SeverityPage {
				return fmt.Errorf("alert severity %q", a.Severity)
			}
		}
	}
	for _, h := range f.ops.History {
		if h.Name == "" {
			return fmt.Errorf("history series with empty name")
		}
		if h.Class != "virtual" && h.Class != "wall" {
			return fmt.Errorf("history series %s: class %q", h.Name, h.Class)
		}
		if h.Min > h.Max {
			return fmt.Errorf("history series %s: min %g > max %g", h.Name, h.Min, h.Max)
		}
	}
	return nil
}

// fetchLive pulls one /ops document from a running observer.
func fetchLive(addr string) (*frame, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/ops") {
		url = strings.TrimSuffix(url, "/") + "/ops"
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var f frame
	if err := json.Unmarshal(body, &f.ops); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	if len(f.ops.SLO) > 0 {
		if err := json.Unmarshal(f.ops.SLO, &f.slo); err != nil {
			return nil, fmt.Errorf("%s slo: %w", url, err)
		}
	}
	return &f, nil
}

// replayFile reconstructs the ops view from a recorded provenance
// stream, running every window through a fresh SLO engine. Re-reading
// the whole file per refresh keeps the replay deterministic and lets a
// growing file act as a live tail.
func replayFile(path string) (*frame, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	recs, err := provenance.ReadAll(fd)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no records", path)
	}

	eng := slo.New(slo.Config{}, nil)
	f := &frame{ops: obs.OpsSnapshot{Schema: obs.OpsSchema, Strategy: recs[0].Strategy, Window: -1}}
	for i := range recs {
		r := &recs[i]
		eng.ObserveWindow(slo.WindowObs{
			Window:     r.Window,
			Time:       time.Duration(r.TimeSec * float64(time.Second)),
			Invoked:    r.Invoked,
			Degraded:   r.Degraded,
			SearchTime: time.Duration(r.SearchTimeSec * float64(time.Second)),
		})
		f.ops.Window = r.Window
		f.ops.Trace = obs.TraceID(r.Window)
		f.ops.TimeSec = r.TimeSec
		f.ops.Windows++
		f.ops.CumUtility = r.CumUtilityDollars
		if r.Degraded {
			f.ops.DegradedWindows++
		}
		f.ops.SlowestWindows = append(f.ops.SlowestWindows, obs.SlowWindow{
			Window:        r.Window,
			Trace:         obs.TraceID(r.Window),
			SearchTimeSec: r.SearchTimeSec,
			Degraded:      r.Degraded,
		})
	}
	sort.SliceStable(f.ops.SlowestWindows, func(i, j int) bool {
		return f.ops.SlowestWindows[i].SearchTimeSec > f.ops.SlowestWindows[j].SearchTimeSec
	})
	if len(f.ops.SlowestWindows) > obs.DefaultSlowWindows {
		f.ops.SlowestWindows = f.ops.SlowestWindows[:obs.DefaultSlowWindows]
	}
	f.slo = eng.Snapshot()
	raw, err := json.Marshal(f.slo)
	if err != nil {
		return nil, err
	}
	f.ops.SLO = raw
	return f, nil
}

// render writes one terminal frame.
func (f *frame) render(w io.Writer, source string) {
	o := &f.ops
	fmt.Fprintf(w, "mistral-top — %s\n", source)
	fmt.Fprintf(w, "strategy %s  window %d (%s)  t=%.0fs  windows=%d  cum=$%.2f\n",
		orDash(o.Strategy), o.Window, orDash(o.Trace), o.TimeSec, o.Windows, o.CumUtility)
	fmt.Fprintf(w, "degraded=%d  decide_errors=%d  retries=%d  host_crashes=%d  last_decide_wall=%.1fms\n",
		o.DegradedWindows, o.DecideErrors, o.Retries, o.HostCrashes, o.LastDecideWallMS)

	fmt.Fprintf(w, "\nSLO objectives (%s)\n", orDash(f.slo.Schema))
	fmt.Fprintf(w, "  %-16s %-8s %9s %11s %8s  %s\n",
		"objective", "state", "breaches", "budget used", "burn", "last breach")
	for _, ob := range f.slo.Objectives {
		state := "ok"
		if !ob.Healthy {
			state = "PAGE"
		} else if ob.Breaches > 0 {
			state = "warn"
		}
		last := "-"
		if ob.LastBreachTrace != "" {
			last = ob.LastBreachTrace
		}
		fmt.Fprintf(w, "  %-16s %-8s %4d/%-4d %10.0f%% %8.2f  %s\n",
			ob.Name, state, ob.Breaches, ob.Windows, ob.BudgetUsed*100, ob.BurnRate, last)
	}
	if len(f.slo.Objectives) == 0 {
		fmt.Fprintln(w, "  (no SLO data)")
	}

	fmt.Fprintf(w, "\nalerts (%d total, last %d)\n", f.slo.TotalAlerts, min(len(f.slo.Alerts), 8))
	start := max(0, len(f.slo.Alerts)-8)
	for _, a := range f.slo.Alerts[start:] {
		fmt.Fprintf(w, "  [%s] %s t=%.0fs %s: %s\n", a.Severity, a.Trace, a.TimeSec, a.Objective, a.Message)
	}
	if len(f.slo.Alerts) == 0 {
		fmt.Fprintln(w, "  (none)")
	}

	if len(o.History) > 0 {
		fmt.Fprintf(w, "\ntrends (last %d windows)\n", opsSparkWidth(o.History))
		for _, h := range o.History {
			mark := ""
			if h.Class == "wall" {
				mark = " (wall)"
			}
			fmt.Fprintf(w, "  %-16s %s  last %-10s min %-10s max %-10s%s\n",
				h.Name, sparkline(h.Spark), fmtVal(h.Last), fmtVal(h.Min), fmtVal(h.Max), mark)
		}
	}

	fmt.Fprintf(w, "\nslowest windows (top %d)\n", len(o.SlowestWindows))
	for _, s := range o.SlowestWindows {
		mark := ""
		if s.Degraded {
			mark = "  DEGRADED"
		}
		if s.WallMS > 0 {
			fmt.Fprintf(w, "  %s  wall %7.1fms  search %6.2fs%s\n", s.Trace, s.WallMS, s.SearchTimeSec, mark)
		} else {
			fmt.Fprintf(w, "  %s  search %6.2fs%s\n", s.Trace, s.SearchTimeSec, mark)
		}
	}
	if len(o.SlowestWindows) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// sparkRamp is the 8-level block ramp trend sparklines render with.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a block-character trend, scaled to the
// vector's own min/max (a flat series renders as a low flat line).
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return "-"
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vs))
	for i, v := range vs {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRamp)-1))
		}
		out[i] = sparkRamp[idx]
	}
	return string(out)
}

// opsSparkWidth is the widest sparkline vector in the digests (they are
// all cut to the same cap; early windows are just shorter).
func opsSparkWidth(hist []tsdb.Summary) int {
	w := 0
	for _, h := range hist {
		if len(h.Spark) > w {
			w = len(h.Spark)
		}
	}
	return w
}

// fmtVal compacts a float for the fixed-width trend table.
func fmtVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	if av >= 1000 || (av > 0 && av < 0.01) {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.2f", v)
}
