package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/testbed"
)

// newTestServer builds a 1-app daemon on the cheap perf-pwr strategy and
// mounts the control API exactly as the obs plane would.
func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := &server{
		strategyName: "perf-pwr",
		workers:      1,
		execPolicy:   testbed.FailForward,
		labOpts:      experiments.LabOptions{NumApps: 1, Seed: 7},
	}
	if err := s.rebuild(); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	for path, h := range s.routes() {
		mux.Handle(path, h)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues a request and returns status, decoded error message (if the
// body carries one), and raw body.
func do(t *testing.T, req *http.Request) (int, string, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.Unmarshal(body, &e)
	return resp.StatusCode, e.Error, body
}

func post(t *testing.T, url, contentType, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return req
}

func TestServeMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/window", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/window = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("405 body not a structured error (err=%v, body=%+v)", err, e)
	}

	// Writes on a read endpoint are refused the same way.
	status, msg, _ := do(t, post(t, ts.URL+"/v1/provenance", "application/json", "{}"))
	if status != http.StatusMethodNotAllowed || msg == "" {
		t.Errorf("POST /v1/provenance = %d %q, want 405 with error", status, msg)
	}
	status, _, _ = do(t, post(t, ts.URL+"/v1/state", "application/json", "{}"))
	if status != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/state = %d, want 405", status)
	}
}

func TestServeContentTypeEnforced(t *testing.T) {
	_, ts := newTestServer(t)
	status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "text/plain", "{}"))
	if status != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain POST = %d, want 415", status)
	}
	if !strings.Contains(msg, "application/json") {
		t.Errorf("415 error %q does not name the expected type", msg)
	}
	// application/json with parameters and an absent Content-Type both pass.
	if status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "application/json; charset=utf-8", "{}")); status != http.StatusOK {
		t.Errorf("json-with-params POST = %d (%s), want 200", status, msg)
	}
	if status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "", "{}")); status != http.StatusOK {
		t.Errorf("no-content-type POST = %d (%s), want 200", status, msg)
	}
}

func TestServeStrictBodyValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown field", `{"ratez":{"rubis1":50}}`},
		{"trailing data", `{} {"windows":1}`},
		{"malformed", `{"windows":`},
		{"wrong type", `{"windows":"three"}`},
	}
	for _, tc := range cases {
		status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "application/json", tc.body))
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, status)
		}
		if msg == "" {
			t.Errorf("%s: no structured error message", tc.name)
		}
	}
}

func TestServeBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t)
	huge := `{"rates":{"` + strings.Repeat("x", maxBodyBytes) + `":1}}`
	status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "application/json", huge))
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize POST = %d (%s), want 413", status, msg)
	}
}

func TestServeWindowSequencing(t *testing.T) {
	s, ts := newTestServer(t)
	// The correct sequence number is accepted...
	status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "application/json", `{"window":0}`))
	if status != http.StatusOK {
		t.Fatalf(`{"window":0} = %d (%s), want 200`, status, msg)
	}
	// ...a duplicate of the consumed number conflicts...
	status, msg, _ = do(t, post(t, ts.URL+"/v1/window", "application/json", `{"window":0}`))
	if status != http.StatusConflict {
		t.Errorf("duplicate window = %d, want 409", status)
	}
	if !strings.Contains(msg, "out of sequence") {
		t.Errorf("409 error %q does not explain the conflict", msg)
	}
	// ...and so does skipping ahead.
	status, _, _ = do(t, post(t, ts.URL+"/v1/window", "application/json", `{"window":5}`))
	if status != http.StatusConflict {
		t.Errorf("future window = %d, want 409", status)
	}
	s.mu.Lock()
	if got := s.engine.WindowIndex(); got != 1 {
		t.Errorf("engine advanced to window %d, want 1 (conflicts must not step)", got)
	}
	s.mu.Unlock()
}

func TestServeStateReportsSafetyPlanes(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/state", nil)
	_, _, body := do(t, req)
	var st stateResp
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ExecPolicy != "fail-forward" {
		t.Errorf("exec_policy = %q, want fail-forward", st.ExecPolicy)
	}
	if st.Guard || st.Breaker != "" {
		t.Errorf("guard-off daemon reports guard=%v breaker=%q", st.Guard, st.Breaker)
	}
}

func TestServeGuardedStateAndBreaker(t *testing.T) {
	s := &server{
		strategyName: "perf-pwr",
		workers:      1,
		execPolicy:   testbed.RollbackOnFailure,
		guardOn:      true,
		labOpts:      experiments.LabOptions{NumApps: 1, Seed: 7},
	}
	if err := s.rebuild(); err != nil {
		t.Fatal(err)
	}
	st := s.stateLocked()
	if !st.Guard || st.Breaker != "closed" {
		t.Errorf("guarded daemon state guard=%v breaker=%q, want true/closed", st.Guard, st.Breaker)
	}
	if st.ExecPolicy != "rollback-on-failure" {
		t.Errorf("exec_policy = %q, want rollback-on-failure", st.ExecPolicy)
	}
}

func TestServeCheckpointRoundTripKeepsRecipe(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		if status, msg, _ := do(t, post(t, ts.URL+"/v1/window", "application/json", "{}")); status != http.StatusOK {
			t.Fatalf("window %d: %d (%s)", i, status, msg)
		}
	}
	ck := t.TempDir() + "/ck.json"
	body := fmt.Sprintf(`{"path":%q}`, ck)
	if status, msg, _ := do(t, post(t, ts.URL+"/v1/checkpoint", "application/json", body)); status != http.StatusOK {
		t.Fatalf("checkpoint: %d (%s)", status, msg)
	}
	// A fresh daemon restoring the checkpoint resumes at the same window
	// with the same recipe.
	status, _, out := do(t, post(t, ts.URL+"/v1/restore", "application/json", body))
	if status != http.StatusOK {
		t.Fatalf("restore: %d (%s)", status, out)
	}
	var st stateResp
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.Window != 3 || st.ExecPolicy != "fail-forward" {
		t.Errorf("restored state window=%d exec=%q, want 3/fail-forward", st.Window, st.ExecPolicy)
	}
	s.mu.Lock()
	if got := s.engine.WindowIndex(); got != 3 {
		t.Errorf("restored engine at window %d, want 3", got)
	}
	s.mu.Unlock()
}

func TestServeNotReady(t *testing.T) {
	s := &server{strategyName: "perf-pwr", execPolicy: testbed.FailForward}
	mux := http.NewServeMux()
	for path, h := range s.routes() {
		mux.Handle(path, h)
	}
	ts := httptest.NewServer(mux)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/state", nil)
	status, msg, _ := do(t, req)
	if status != http.StatusServiceUnavailable {
		t.Errorf("engine-less state = %d, want 503", status)
	}
	if msg == "" {
		t.Error("503 without structured error")
	}
}
