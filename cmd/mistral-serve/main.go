// Command mistral-serve runs the Mistral controller as a long-lived HTTP
// daemon instead of a batch replay: workload samples stream in over JSON,
// decisions and provenance stream out, the fleet can grow or shrink at
// runtime, and the whole engine checkpoints to disk so the process can
// restart mid-trace without losing calibration.
//
// The control API rides the same listener as the observability plane —
// /metrics (Prometheus), /ops (poll with mistral-top), and /debug/pprof —
// so one address serves both operators and automation:
//
//	POST /v1/window      {"rates":{"rubis1":55}} | {"windows":3} | {}
//	GET  /v1/state
//	GET  /v1/decisions?from=N
//	GET  /v1/provenance
//	POST /v1/fleet       {"apps":3,"hosts":6}
//	POST /v1/apps/admit    POST /v1/apps/remove
//	POST /v1/hosts/admit   POST /v1/hosts/remove
//	POST /v1/checkpoint  {"path":"ck.json"}
//	POST /v1/restore     {"path":"ck.json"}
//
// Admitting or removing capacity rebuilds the lab (catalog, models, cost
// tables) declaratively and resets control state — calibration is
// per-fleet. Checkpoint/restore, by contrast, preserves every byte of
// control state: a daemon restarted with -resume (or sent /v1/restore)
// continues the decision stream exactly where the checkpoint left it.
//
// Usage:
//
//	mistral-serve [-addr localhost:7070]
//	              [-strategy mistral|naive|perf-pwr|perf-cost|pwr-cost]
//	              [-apps N] [-hosts N] [-seed N] [-zones N] [-workers N]
//	              [-dvfs] [-fault-rate P] [-fault-seed N]
//	              [-exec-policy fail-forward|rollback] [-guard]
//	              [-log-level LEVEL] [-resume FILE] [-auto-checkpoint FILE]
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/checkpoint"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/guard"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
	"github.com/mistralcloud/mistral/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mistral-serve:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		addr         = flag.String("addr", "localhost:7070", "HTTP listen address for the control API, /metrics, /ops, and /debug/pprof")
		strategyName = flag.String("strategy", "mistral", "control strategy: mistral, naive, perf-pwr, perf-cost, pwr-cost")
		numApps      = flag.Int("apps", 2, "number of RUBiS applications admitted at start (1-4)")
		numHosts     = flag.Int("hosts", 0, "number of application hosts (0 = 2 per app)")
		seed         = flag.Uint64("seed", 42, "random seed")
		zones        = flag.Int("zones", 1, "number of data centers (>1 enables the WAN extension; mistral/naive only)")
		workers      = flag.Int("workers", 0, "evaluation concurrency (0 = min(GOMAXPROCS, 8), 1 = serial)")
		dvfs         = flag.Bool("dvfs", false, "equip hosts with 60/80% DVFS levels")
		faultRate    = flag.Float64("fault-rate", 0, "action-failure probability in [0,1]; >0 enables the fault plane")
		faultSeed    = flag.Uint64("fault-seed", 0, "fault schedule seed (0 = use -seed)")
		logLevel     = flag.String("log-level", "", "structured logging to stderr: debug, info, warn, error")
		resumePath   = flag.String("resume", "", "restore the engine from a checkpoint FILE at startup; the checkpoint's recorded environment overrides the corresponding flags")
		execPolicy   = flag.String("exec-policy", "fail-forward", "plan execution policy: fail-forward or rollback (compensate applied steps on non-retryable failure)")
		guardOn      = flag.Bool("guard", false, "enable the admission guard and adaptation circuit breaker")
		autoCkPath   = flag.String("auto-checkpoint", "", "on SIGTERM/SIGINT, drain the in-flight window and write a final checkpoint to FILE before exiting")
	)
	flag.Parse()
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("-fault-rate %v out of [0,1]", *faultRate)
	}
	if *faultSeed == 0 {
		*faultSeed = *seed
	}
	exec, err := testbed.ParseExecPolicy(*execPolicy)
	if err != nil {
		return err
	}

	s := &server{
		strategyName: strings.ToLower(*strategyName),
		workers:      *workers,
		faultRate:    *faultRate,
		faultSeed:    *faultSeed,
		execPolicy:   exec,
		guardOn:      *guardOn,
		labOpts:      experiments.LabOptions{NumApps: *numApps, NumHosts: *numHosts, Seed: *seed, Zones: *zones},
	}
	if *dvfs {
		s.labOpts.DVFSLevels = []float64{0.6, 0.8}
	}

	// The control API mounts next to /metrics//ops on one listener; the
	// handlers hold the server pointer, so they serve correctly once the
	// engine below is in place (requests beat it only during startup and
	// get a clean 503).
	ob, closeObs, err := obs.CLI{
		LogLevel:  *logLevel,
		PprofAddr: *addr,
		Handlers:  s.routes(),
	}.Build()
	if err != nil {
		return err
	}
	obs.SetDefault(ob)
	defer func() {
		if cerr := closeObs(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	s.ob = ob

	if *resumePath != "" {
		ck, err := checkpoint.Read(*resumePath)
		if err != nil {
			return err
		}
		if err := s.restoreFrom(ck); err != nil {
			return err
		}
	} else if err := s.rebuild(); err != nil {
		return err
	}

	s.mu.Lock()
	fmt.Fprintf(os.Stderr, "mistral-serve: %s strategy, %d apps on %d hosts, interval %s, window %d — control API on http://%s/v1/\n",
		s.engine.Result().Strategy, s.lab.Opts.NumApps, s.lab.Opts.NumHosts,
		s.engine.Interval(), s.engine.WindowIndex(), ob.HTTPAddr)
	s.mu.Unlock()

	// Serve until interrupted; the obs closer shuts the listener down.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(os.Stderr, "mistral-serve: draining")
	// Acquiring the engine lock waits for any in-flight window batch to
	// finish — a SIGTERM mid-window never truncates a decision. The lock is
	// deliberately held through exit so no request admitted during listener
	// shutdown can advance the engine past the final checkpoint.
	s.mu.Lock()
	if *autoCkPath != "" {
		if err := s.writeCheckpointLocked(*autoCkPath); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("auto-checkpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "mistral-serve: checkpoint written to %s (window %d)\n", *autoCkPath, s.engine.WindowIndex())
	}
	fmt.Fprintln(os.Stderr, "mistral-serve: shutting down")
	return nil
}

// server is the daemon: one engine plus the declarative fleet recipe it
// was built from, all guarded by a single mutex (control decisions are
// inherently serial — each window's decision depends on the last).
type server struct {
	mu sync.Mutex

	ob *obs.Observer

	// Environment recipe (what a checkpoint records).
	strategyName string
	workers      int
	faultRate    float64
	faultSeed    uint64
	execPolicy   testbed.ExecPolicy
	guardOn      bool
	labOpts      experiments.LabOptions

	// Live engine state, rebuilt on fleet changes and restores.
	lab     *experiments.Lab
	inj     *fault.Injector
	guard   *guard.Guard
	decider mistral.Decider
	engine  *scenario.Engine
	provBuf *lockedBuffer
	rec     *provenance.Recorder
	windows []windowResp
}

// lockedBuffer is the in-memory provenance sink: the recorder appends
// JSONL under the engine lock, GET /v1/provenance snapshots it under its
// own.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, b.buf.Len())
	copy(out, b.buf.Bytes())
	return out
}

// rebuild constructs a fresh lab, testbed, strategy, and engine from the
// current recipe, dropping all prior control state. Callers hold s.mu or
// are single-threaded startup.
func (s *server) rebuild() error {
	lab, err := experiments.NewLab(s.labOpts)
	if err != nil {
		return err
	}
	inj := fault.New(fault.Profile(s.faultRate, s.faultSeed))
	tb, err := lab.NewTestbedExec(inj, s.execPolicy)
	if err != nil {
		return err
	}
	var g *guard.Guard
	if s.guardOn {
		g = guard.New(guard.Config{Obs: s.ob}, lab.Cat)
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		return err
	}
	provBuf := &lockedBuffer{}
	rec := provenance.NewRecorder(provBuf)
	var decider mistral.Decider
	switch s.strategyName {
	case "mistral", "naive":
		decider, err = strategy.NewMistral(eval, strategy.MistralConfig{
			HostGroups:         lab.HostGroups(),
			Naive:              s.strategyName == "naive",
			MonitoringInterval: lab.Util.MonitoringInterval,
			Workers:            s.workers,
			Provenance:         true,
		})
	case "perf-pwr":
		decider = strategy.NewPerfPwr(eval)
	case "perf-cost":
		decider, err = strategy.NewPerfCost(eval, lab.Util)
	case "pwr-cost":
		decider = strategy.NewPwrCost(eval)
	default:
		return fmt.Errorf("unknown strategy %q", s.strategyName)
	}
	if err != nil {
		return err
	}
	engine, err := scenario.NewEngine(tb, decider, scenario.RunConfig{
		Traces:     lab.Traces,
		Interval:   lab.Util.MonitoringInterval,
		Utility:    lab.Util,
		Workers:    s.workers,
		Obs:        s.ob,
		Fault:      inj,
		Guard:      g,
		Provenance: rec,
		// The daemon's flight recorder always carries per-step outcomes:
		// a skipped or rolled-back step's cause is an operator question,
		// and the daemon has no byte-compat goldens to preserve.
		StepProvenance: true,
	})
	if err != nil {
		return err
	}
	s.lab, s.inj, s.guard, s.decider, s.engine = lab, inj, g, decider, engine
	s.provBuf, s.rec = provBuf, rec
	s.windows = nil
	return nil
}

// restoreFrom adopts a checkpoint's recipe, rebuilds the environment from
// it, and restores the engine state.
func (s *server) restoreFrom(ck *checkpoint.File) error {
	exec, err := testbed.ParseExecPolicy(ck.ExecPolicy)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.strategyName = ck.Strategy
	s.workers = ck.Workers
	s.faultRate = ck.FaultRate
	s.faultSeed = ck.FaultSeed
	s.execPolicy = exec
	s.guardOn = ck.Guard
	s.labOpts = ck.Lab
	if err := s.rebuild(); err != nil {
		return err
	}
	return s.engine.Restore(ck.Scenario)
}

// windowResp is one completed window in API form.
type windowResp struct {
	Window         int                `json:"window"`
	TimeSec        float64            `json:"time_sec"`
	Rates          map[string]float64 `json:"rates,omitempty"`
	RTSec          map[string]float64 `json:"rt_sec,omitempty"`
	Watts          float64            `json:"watts"`
	Utility        float64            `json:"utility"`
	CumUtility     float64            `json:"cum_utility"`
	Actions        int                `json:"actions"`
	Invoked        bool               `json:"invoked"`
	SearchTimeSec  float64            `json:"search_time_sec,omitempty"`
	ActiveHosts    int                `json:"active_hosts"`
	Degraded       bool               `json:"degraded,omitempty"`
	DegradedReason string             `json:"degraded_reason,omitempty"`
	ProvErr        string             `json:"prov_err,omitempty"`
}

func toResp(sr scenario.StepResult) windowResp {
	w := sr.Window
	r := windowResp{
		Window:         sr.Index,
		TimeSec:        w.Time.Seconds(),
		Rates:          w.Rates,
		RTSec:          w.RTSec,
		Watts:          w.Watts,
		Utility:        w.Utility,
		CumUtility:     w.CumUtility,
		Actions:        w.Actions,
		Invoked:        w.Invoked,
		SearchTimeSec:  w.SearchTime.Seconds(),
		ActiveHosts:    w.ActiveHosts,
		Degraded:       w.Degraded,
		DegradedReason: w.DegradedReason,
	}
	if sr.ProvErr != nil {
		r.ProvErr = sr.ProvErr.Error()
	}
	return r
}

// stateResp is GET /v1/state.
type stateResp struct {
	Strategy    string   `json:"strategy"`
	Apps        []string `json:"apps"`
	Hosts       int      `json:"hosts"`
	Window      int      `json:"window"`
	NowSec      float64  `json:"now_sec"`
	IntervalSec float64  `json:"interval_sec"`
	CumUtility  float64  `json:"cum_utility"`
	FaultRate   float64  `json:"fault_rate,omitempty"`
	Workers     int      `json:"workers"`
	ExecPolicy  string   `json:"exec_policy"`
	Guard       bool     `json:"guard,omitempty"`
	Breaker     string   `json:"breaker,omitempty"`
}

func (s *server) routes() map[string]http.Handler {
	return map[string]http.Handler{
		"/v1/state":        s.handler(http.MethodGet, s.handleState),
		"/v1/window":       s.handler(http.MethodPost, s.handleWindow),
		"/v1/decisions":    s.handler(http.MethodGet, s.handleDecisions),
		"/v1/provenance":   http.HandlerFunc(s.handleProvenance),
		"/v1/fleet":        s.handler(http.MethodPost, s.handleFleet),
		"/v1/apps/admit":   s.handler(http.MethodPost, s.deltaHandler(1, 0)),
		"/v1/apps/remove":  s.handler(http.MethodPost, s.deltaHandler(-1, 0)),
		"/v1/hosts/admit":  s.handler(http.MethodPost, s.deltaHandler(0, 1)),
		"/v1/hosts/remove": s.handler(http.MethodPost, s.deltaHandler(0, -1)),
		"/v1/checkpoint":   s.handler(http.MethodPost, s.handleCheckpoint),
		"/v1/restore":      s.handler(http.MethodPost, s.handleRestore),
	}
}

// apiError carries an HTTP status through the handler plumbing.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// maxBodyBytes bounds every control-API request body. The largest
// legitimate request is a rates map over four applications — a megabyte is
// orders of magnitude of headroom, and everything past it is abuse.
const maxBodyBytes = 1 << 20

// decodeJSON strictly decodes a bounded request body: unknown fields and
// trailing data are errors (they always indicate a malformed client, and
// silently ignoring them turns typos into no-ops), while an entirely empty
// body means "all defaults" and stays legal. The body is already wrapped
// in a MaxBytesReader by the handler plumbing.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON value")
	}
	return nil
}

// handler wraps an endpoint with method and media-type enforcement, the
// engine lock, a request-body cap, JSON encoding, and uniform structured
// error reporting.
func (s *server) handler(method string, fn func(r *http.Request) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeErr := func(status int, msg string) {
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": msg})
		}
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeErr(http.StatusMethodNotAllowed, method+" required")
			return
		}
		if method == http.MethodPost {
			// Accept application/json (with any parameters) or an absent
			// Content-Type; anything else is a client speaking the wrong
			// protocol.
			if ct := r.Header.Get("Content-Type"); ct != "" {
				if mt := strings.TrimSpace(strings.SplitN(ct, ";", 2)[0]); !strings.EqualFold(mt, "application/json") {
					writeErr(http.StatusUnsupportedMediaType, fmt.Sprintf("unsupported content type %q (want application/json)", mt))
					return
				}
			}
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.engine == nil {
			writeErr(http.StatusServiceUnavailable, "engine not ready")
			return
		}
		out, err := fn(r)
		if err != nil {
			status := http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				status = ae.status
			}
			writeErr(status, err.Error())
			return
		}
		json.NewEncoder(w).Encode(out)
	})
}

func (s *server) stateLocked() stateResp {
	st := stateResp{
		Strategy:    s.engine.Result().Strategy,
		Apps:        append([]string(nil), s.lab.AppNames...),
		Hosts:       s.lab.Opts.NumHosts,
		Window:      s.engine.WindowIndex(),
		NowSec:      s.engine.Now().Seconds(),
		IntervalSec: s.engine.Interval().Seconds(),
		CumUtility:  s.engine.Result().CumUtility,
		FaultRate:   s.faultRate,
		Workers:     s.workers,
		ExecPolicy:  s.execPolicy.String(),
	}
	if s.guardOn {
		st.Guard = true
		st.Breaker = s.guard.Breaker().String()
	}
	return st
}

func (s *server) handleState(r *http.Request) (any, error) {
	return s.stateLocked(), nil
}

// handleWindow advances the engine: {"rates":{...}} runs one window under
// the given rates, {"windows":N} runs N windows off the configured traces,
// and {} runs one trace window.
func (s *server) handleWindow(r *http.Request) (any, error) {
	var req struct {
		Rates   map[string]float64 `json:"rates"`
		Windows int                `json:"windows"`
		Window  *int               `json:"window"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Rates != nil && req.Windows > 1 {
		return nil, badRequest("rates and windows are mutually exclusive")
	}
	// An optional sequence number makes the step idempotent against retries:
	// a client that resends after a lost response (or races another client)
	// gets a conflict instead of silently double-advancing the replay.
	if req.Window != nil && *req.Window != s.engine.WindowIndex() {
		return nil, &apiError{status: http.StatusConflict,
			msg: fmt.Sprintf("window %d out of sequence (next window is %d)", *req.Window, s.engine.WindowIndex())}
	}
	n := req.Windows
	if n <= 0 {
		n = 1
	}
	out := make([]windowResp, 0, n)
	for i := 0; i < n; i++ {
		var sr scenario.StepResult
		var err error
		if req.Rates != nil {
			sr, err = s.engine.StepRates(req.Rates)
		} else {
			sr, err = s.engine.Step()
		}
		if err != nil {
			return nil, badRequest("window %d: %v", sr.Index, err)
		}
		resp := toResp(sr)
		s.windows = append(s.windows, resp)
		out = append(out, resp)
	}
	return out, nil
}

func (s *server) handleDecisions(r *http.Request) (any, error) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, badRequest("bad from=%q", v)
		}
		from = n
	}
	// Window indices are absolute; s.windows[0] is the first window this
	// process ran (a restored daemon's earlier windows live in the
	// checkpoint's result, served via /ops and the resumed provenance).
	base := 0
	if len(s.windows) > 0 {
		base = s.windows[0].Window
	}
	if from < base {
		from = base
	}
	i := from - base
	if i > len(s.windows) {
		i = len(s.windows)
	}
	return s.windows[i:], nil
}

func (s *server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMethodNotAllowed)
		json.NewEncoder(w).Encode(map[string]string{"error": "GET required"})
		return
	}
	s.mu.Lock()
	buf := s.provBuf
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	if buf != nil {
		w.Write(buf.Bytes())
	}
}

// handleFleet declaratively resizes the fleet: {"apps":N,"hosts":M}.
// Rebuilding resets control state — calibration is per-fleet.
func (s *server) handleFleet(r *http.Request) (any, error) {
	var req struct {
		Apps  int `json:"apps"`
		Hosts int `json:"hosts"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Apps == 0 {
		req.Apps = s.lab.Opts.NumApps
	}
	return s.resize(req.Apps, req.Hosts)
}

// deltaHandler returns an endpoint that admits or removes one app or host.
func (s *server) deltaHandler(dApps, dHosts int) func(r *http.Request) (any, error) {
	return func(r *http.Request) (any, error) {
		apps := s.lab.Opts.NumApps + dApps
		hosts := s.lab.Opts.NumHosts
		if dHosts != 0 {
			hosts += dHosts
		} else if dApps != 0 {
			// Growing the fleet by an app brings its host pair along, the
			// paper's 2-hosts-per-app sizing; removal gives them back.
			hosts += 2 * dApps
		}
		return s.resize(apps, hosts)
	}
}

func (s *server) resize(apps, hosts int) (any, error) {
	if apps < 1 || apps > 4 {
		return nil, badRequest("apps must be in 1..4 (got %d)", apps)
	}
	if hosts < 0 {
		return nil, badRequest("hosts must be positive (got %d)", hosts)
	}
	prev := s.labOpts
	s.labOpts.NumApps = apps
	s.labOpts.NumHosts = hosts
	if err := s.rebuild(); err != nil {
		s.labOpts = prev
		return nil, badRequest("fleet rejected: %v", err)
	}
	return s.stateLocked(), nil
}

// writeCheckpointLocked snapshots the engine and persists the full
// checkpoint envelope; callers hold s.mu.
func (s *server) writeCheckpointLocked(path string) error {
	snap, err := s.engine.Snapshot()
	if err != nil {
		return err
	}
	return checkpoint.Write(path, &checkpoint.File{
		Schema:     checkpoint.Schema,
		Strategy:   s.strategyName,
		Workers:    s.workers,
		Lab:        s.labOpts,
		FaultRate:  s.faultRate,
		FaultSeed:  s.faultSeed,
		ExecPolicy: s.execPolicy.String(),
		Guard:      s.guardOn,
		Scenario:   snap,
	})
}

func (s *server) handleCheckpoint(r *http.Request) (any, error) {
	var req struct {
		Path string `json:"path"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Path == "" {
		return nil, badRequest("path required")
	}
	if err := s.writeCheckpointLocked(req.Path); err != nil {
		return nil, err
	}
	return map[string]any{"path": req.Path, "window": s.engine.WindowIndex(), "time_sec": s.engine.Now().Seconds()}, nil
}

func (s *server) handleRestore(r *http.Request) (any, error) {
	var req struct {
		Path string `json:"path"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Path == "" {
		return nil, badRequest("path required")
	}
	ck, err := checkpoint.Read(req.Path)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if err := s.restoreFrom(ck); err != nil {
		return nil, badRequest("restore failed: %v", err)
	}
	return s.stateLocked(), nil
}
