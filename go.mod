module github.com/mistralcloud/mistral

go 1.22
