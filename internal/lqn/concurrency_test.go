package lqn

import (
	"reflect"
	"sync"
	"testing"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

// TestModelEvaluateConcurrent pins the Model's thread-safety contract: run
// under -race, many goroutines evaluating a mix of configurations and
// workloads on one shared Model must neither race nor diverge from the
// serially computed results.
func TestModelEvaluateConcurrent(t *testing.T) {
	a := singleTierApp("a", 8)
	b := singleTierApp("b", 12)
	specs := []*app.Spec{a, b}
	cat := twoHostCatalog(t, specs)
	m, err := NewModel(cat, specs, Options{})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}

	mkCfg := func(cpuA, cpuB float64, bHost string) cluster.Config {
		cfg := cluster.NewConfig()
		cfg.SetHostOn("h0", true)
		cfg.SetHostOn("h1", true)
		cfg.Place("a-t-0", "h0", cpuA)
		cfg.Place("b-t-0", bHost, cpuB)
		return cfg
	}
	type input struct {
		cfg   cluster.Config
		rates map[string]float64
	}
	inputs := []input{
		{mkCfg(40, 40, "h1"), map[string]float64{"a": 30, "b": 20}},
		{mkCfg(40, 40, "h0"), map[string]float64{"a": 30, "b": 20}},
		{mkCfg(60, 30, "h1"), map[string]float64{"a": 55, "b": 5}},
		{mkCfg(30, 60, "h1"), map[string]float64{"a": 5, "b": 40}},
	}

	// Serial reference results, one per input.
	want := make([]*Result, len(inputs))
	for i, in := range inputs {
		w, err := m.Evaluate(in.cfg, in.rates, nil)
		if err != nil {
			t.Fatalf("serial Evaluate(%d): %v", i, err)
		}
		want[i] = w
	}

	const goroutines = 16
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(inputs)
				got, err := m.Evaluate(inputs[i].cfg, inputs[i].rates, nil)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent Evaluate(%d) diverged from serial result", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Evaluate: %v", err)
	}
}
