package lqn

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

// singleTierApp builds a one-tier, one-transaction app with the given demand
// and no Dom-0 overhead, for closed-form comparisons.
func singleTierApp(name string, demandMS float64) *app.Spec {
	return &app.Spec{
		Name:     name,
		Tiers:    []app.TierSpec{{Name: "t", MaxReplicas: 2, VMMemoryMB: 200}},
		Txns:     []app.TxnSpec{{Name: "only", Weight: 1, DemandMS: map[string]float64{"t": demandMS}}},
		TargetRT: time.Second,
	}
}

func twoHostCatalog(t *testing.T, apps []*app.Spec) *cluster.Catalog {
	t.Helper()
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
	}, apps)
	if err != nil {
		t.Fatalf("BuildCatalog: %v", err)
	}
	return cat
}

func TestEvaluateMatchesMG1PSClosedForm(t *testing.T) {
	a := singleTierApp("a", 8) // 8 ms demand
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, err := NewModel(cat, []*app.Spec{a}, Options{BaseHostUtil: -1}) // -1 -> clamped to 0
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-t-0", "h0", 40)

	const lambda = 30.0
	res, err := m.Evaluate(cfg, map[string]float64{"a": lambda}, nil)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// M/G/1-PS at rate f=0.4: S = D/f = 20 ms, rho = lambda*D/f = 0.6,
	// RT = S/(1-rho) = 50 ms.
	want := 0.020 / (1 - 0.6)
	got := res.MeanRTSec("a")
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("MeanRT = %v, want %v", got, want)
	}
	ar := res.Apps["a"]
	if ar.Saturated {
		t.Error("unexpected saturation")
	}
	if got := ar.TierUtil["t"]; math.Abs(got-0.6) > 1e-9 {
		t.Errorf("TierUtil = %v, want 0.6", got)
	}
	if got := res.VMUtil["a-t-0"]; math.Abs(got-0.6) > 1e-9 {
		t.Errorf("VMUtil = %v, want 0.6", got)
	}
	// Host CPU: absolute demand lambda*D = 0.24 (no dom0, no base).
	if got := res.Hosts["h0"].CPUUtil; math.Abs(got-0.24) > 1e-9 {
		t.Errorf("host util = %v, want 0.24", got)
	}
	if got := res.Hosts["h1"].CPUUtil; got != 0 {
		t.Errorf("off host util = %v, want 0", got)
	}
}

func TestEvaluateTwoReplicasHalveLoad(t *testing.T) {
	a := singleTierApp("a", 8)
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	one := cluster.NewConfig()
	one.SetHostOn("h0", true)
	one.Place("a-t-0", "h0", 40)
	two := one.Clone()
	two.SetHostOn("h1", true)
	two.Place("a-t-1", "h1", 40)

	load := map[string]float64{"a": 40}
	r1, err := m.Evaluate(one, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Evaluate(two, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MeanRTSec("a") >= r1.MeanRTSec("a") {
		t.Errorf("adding a replica did not reduce RT: %v -> %v", r1.MeanRTSec("a"), r2.MeanRTSec("a"))
	}
	// Per-replica utilization halves with equal allocations.
	if got, want := r2.Apps["a"].TierUtil["t"], r1.Apps["a"].TierUtil["t"]/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("two-replica util = %v, want %v", got, want)
	}
}

func TestEvaluateMoreCPUReducesRT(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	lo, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{"a": 40}
	rLo, err := m.Evaluate(lo, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := m.Evaluate(hi, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rHi.MeanRTSec("a") >= rLo.MeanRTSec("a") {
		t.Errorf("more CPU did not reduce RT: %v -> %v", rLo.MeanRTSec("a"), rHi.MeanRTSec("a"))
	}
}

func TestEvaluateSaturationIsFlaggedAndFinite(t *testing.T) {
	a := singleTierApp("a", 8)
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-t-0", "h0", 40)
	// Capacity is f/D = 50 req/s; drive at 80.
	res, err := m.Evaluate(cfg, map[string]float64{"a": 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ar := res.Apps["a"]
	if !ar.Saturated {
		t.Error("saturation not flagged")
	}
	if math.IsInf(ar.MeanRTSec, 0) || math.IsNaN(ar.MeanRTSec) || ar.MeanRTSec <= 0 {
		t.Errorf("saturated RT = %v, want finite positive", ar.MeanRTSec)
	}
	// Host CPU is capped at the allocation despite excess demand.
	if got := res.Hosts["h0"].CPUUtil; got > 0.45 {
		t.Errorf("host util = %v, want capped near allocation 0.4", got)
	}
}

func TestEvaluateMissingTierSaturates(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-web-0", "h0", 40) // no app/db tier
	res, err := m.Evaluate(cfg, map[string]float64{"a": 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Apps["a"].Saturated {
		t.Error("app with unserved tiers not flagged saturated")
	}
	if res.MeanRTSec("a") < 1 {
		t.Errorf("unserved app RT = %v, want heavily penalized", res.MeanRTSec("a"))
	}
}

func TestEvaluateDom0BackgroundRaisesRTAndUtil(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	cfg, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{"a": 30}
	base, err := m.Evaluate(cfg, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := m.Evaluate(cfg, load, map[string]float64{"h0": 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if busy.MeanRTSec("a") <= base.MeanRTSec("a") {
		t.Errorf("dom0 background did not raise RT: %v -> %v", base.MeanRTSec("a"), busy.MeanRTSec("a"))
	}
	if busy.Hosts["h0"].CPUUtil <= base.Hosts["h0"].CPUUtil {
		t.Errorf("dom0 background did not raise host util: %v -> %v", base.Hosts["h0"].CPUUtil, busy.Hosts["h0"].CPUUtil)
	}
	if busy.Hosts["h0"].Dom0Util <= base.Hosts["h0"].Dom0Util {
		t.Error("dom0 util did not rise")
	}
}

func TestEvaluateUnknownAppInLoad(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	if _, err := m.Evaluate(cluster.NewConfig(), map[string]float64{"ghost": 1}, nil); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestEvaluateZeroLoad(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	cfg, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// At zero load the response time is the unloaded floor: the CPU-free
	// latency with no queueing contribution.
	floor := a.MeanLatencyMS() / 1000
	if got := res.MeanRTSec("a"); math.Abs(got-floor) > 1e-9 {
		t.Errorf("RT at zero load = %v, want latency floor %v", got, floor)
	}
	// Powered-on hosts still draw their base utilization.
	if res.Hosts["h0"].CPUUtil <= 0 {
		t.Error("idle powered-on host should report base utilization")
	}
}

func TestNewModelRejectsDuplicatesAndInvalid(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	if _, err := NewModel(cat, []*app.Spec{a, a}, Options{}); err == nil {
		t.Error("duplicate app accepted")
	}
	bad := app.RUBiS("b")
	bad.Txns = nil
	if _, err := NewModel(cat, []*app.Spec{bad}, Options{}); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestRTMonotoneInLoadProperty(t *testing.T) {
	a := app.RUBiS("a")
	cat := twoHostCatalog(t, []*app.Spec{a})
	m, _ := NewModel(cat, []*app.Spec{a}, Options{})
	cfg, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	rt := func(lambda float64) float64 {
		res, err := m.Evaluate(cfg, map[string]float64{"a": lambda}, nil)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.MeanRTSec("a")
	}
	prop := func(x, y uint8) bool {
		l1 := float64(x) / 255 * 100
		l2 := float64(y) / 255 * 100
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		return rt(l1) <= rt(l2)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateDemandsHitsTarget(t *testing.T) {
	apps := []*app.Spec{app.RUBiS("rubis1"), app.RUBiS("rubis2")}
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
		cluster.DefaultHostSpec("h2"), cluster.DefaultHostSpec("h3"),
	}, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{"rubis1": 50, "rubis2": 50}
	k, err := CalibrateDemands(cat, apps, cfg, load, "rubis1")
	if err != nil {
		t.Fatalf("CalibrateDemands: %v", err)
	}
	if k <= 0 {
		t.Fatalf("scale = %v", k)
	}
	m, _ := NewModel(cat, apps, Options{})
	res, err := m.Evaluate(cfg, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.MeanRTSec("rubis1")
	if math.Abs(got-0.4) > 0.004 {
		t.Errorf("calibrated RT = %v, want 0.400±0.004", got)
	}
	// The calibrated system must still have headroom at max replication for
	// the paper's top rate of 100 req/s.
	maxCfg := cluster.NewConfig()
	for _, h := range []string{"h0", "h1", "h2", "h3"} {
		maxCfg.SetHostOn(h, true)
	}
	maxCfg.Place("rubis1-web-0", "h0", 80)
	maxCfg.Place("rubis1-app-0", "h1", 80)
	maxCfg.Place("rubis1-app-1", "h2", 80)
	maxCfg.Place("rubis1-db-0", "h3", 80)
	maxCfg.Place("rubis1-db-1", "h0", 0) // placeholder replaced below
	maxCfg.Unplace("rubis1-db-1")
	maxCfg.Place("rubis1-db-1", "h1", 0)
	maxCfg.Unplace("rubis1-db-1")
	// Simplest: two hosts carry db replicas at 40 each alongside web/app.
	maxCfg.Place("rubis1-db-1", "h2", 0)
	maxCfg.Unplace("rubis1-db-1")
	res2, err := m.Evaluate(maxCfg, map[string]float64{"rubis1": 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Apps["rubis1"].Saturated {
		t.Errorf("calibrated app saturated at 100 req/s with near-max allocation; RT=%v", res2.MeanRTSec("rubis1"))
	}
	if res2.MeanRTSec("rubis1") > 0.4 {
		t.Errorf("max-allocation RT at 100 req/s = %v, want under target", res2.MeanRTSec("rubis1"))
	}
}

func TestCalibrateDemandsUnknownRef(t *testing.T) {
	apps := []*app.Spec{app.RUBiS("a")}
	cat := twoHostCatalog(t, apps)
	cfg, err := app.DefaultConfig(cat, apps, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibrateDemands(cat, apps, cfg, map[string]float64{"a": 50}, "ghost"); err == nil {
		t.Error("unknown reference app accepted")
	}
}
