package lqn

import (
	"fmt"
	"math"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

// CalibrateDemands scales the CPU demands of every application by a common
// factor so that refApp's mean response time under (cfg, load) equals its
// target response time. This mirrors the paper's derivation of the 400 ms
// target: the observed mean response time of RUBiS in the default
// configuration (all tiers at 40% CPU, 50 req/s).
//
// The specs are mutated in place. The applied factor is returned.
func CalibrateDemands(cat *cluster.Catalog, apps []*app.Spec, cfg cluster.Config, load map[string]float64, refApp string) (float64, error) {
	var ref *app.Spec
	for _, a := range apps {
		if a.Name == refApp {
			ref = a
		}
	}
	if ref == nil {
		return 0, fmt.Errorf("lqn: calibration reference app %q not found", refApp)
	}
	target := ref.TargetRT.Seconds()

	rtAtScale := func(k float64) (float64, error) {
		scaled := make([]*app.Spec, len(apps))
		for i, a := range apps {
			scaled[i] = a.Clone(a.Name)
			scaled[i].ScaleDemands(k)
		}
		m, err := NewModel(cat, scaled, Options{})
		if err != nil {
			return 0, err
		}
		res, err := m.Evaluate(cfg, load, nil)
		if err != nil {
			return 0, err
		}
		return res.MeanRTSec(refApp), nil
	}

	// Bracket the target: response time is monotone nondecreasing in the
	// demand scale.
	lo, hi := 1e-3, 1.0
	for i := 0; ; i++ {
		rt, err := rtAtScale(hi)
		if err != nil {
			return 0, fmt.Errorf("lqn: calibration: %w", err)
		}
		if rt >= target {
			break
		}
		hi *= 2
		if i > 40 {
			return 0, fmt.Errorf("lqn: calibration cannot reach target %.3fs (rt %.3fs at scale %g)", target, rt, hi)
		}
	}
	for i := 0; i < 80 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		rt, err := rtAtScale(mid)
		if err != nil {
			return 0, fmt.Errorf("lqn: calibration: %w", err)
		}
		if rt < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	if math.IsNaN(k) || k <= 0 {
		return 0, fmt.Errorf("lqn: calibration produced invalid scale %g", k)
	}
	for _, a := range apps {
		a.ScaleDemands(k)
	}
	return k, nil
}
