package lqn

import (
	"testing"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/power"
)

func TestDVFSSlowsServiceAndSavesPower(t *testing.T) {
	a := app.RUBiS("a")
	h0 := cluster.DefaultHostSpec("h0")
	h0.DVFSLevels = []float64{0.6, 0.8}
	h1 := cluster.DefaultHostSpec("h1")
	h1.DVFSLevels = []float64{0.6, 0.8}
	cat, err := app.BuildCatalog([]cluster.HostSpec{h0, h1}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(cat, []*app.Spec{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{"a": 20}

	nominal, err := m.Evaluate(cfg, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow := cfg.Clone()
	slow.SetHostFreq("h0", 0.6)
	slow.SetHostFreq("h1", 0.6)
	scaled, err := m.Evaluate(slow, load, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Lower frequency -> slower service -> higher response time.
	if scaled.MeanRTSec("a") <= nominal.MeanRTSec("a") {
		t.Errorf("RT at 60%% freq (%v) not above nominal (%v)", scaled.MeanRTSec("a"), nominal.MeanRTSec("a"))
	}
	// Utilization of the reduced capacity is higher.
	if scaled.Hosts["h0"].CPUUtil <= nominal.Hosts["h0"].CPUUtil {
		t.Errorf("util at 60%% freq (%v) not above nominal (%v)", scaled.Hosts["h0"].CPUUtil, nominal.Hosts["h0"].CPUUtil)
	}
	// But the system draws less power at the lower voltage/frequency.
	nomUtil := map[string]float64{"h0": nominal.Hosts["h0"].CPUUtil, "h1": nominal.Hosts["h1"].CPUUtil}
	slowUtil := map[string]float64{"h0": scaled.Hosts["h0"].CPUUtil, "h1": scaled.Hosts["h1"].CPUUtil}
	nomW := power.SystemWatts(cat, cfg, nomUtil)
	slowW := power.SystemWatts(cat, slow, slowUtil)
	if slowW >= nomW {
		t.Errorf("watts at 60%% freq (%v) not below nominal (%v)", slowW, nomW)
	}
}

func TestHostWattsAtFreqReducesToNominal(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	for _, u := range []float64{0, 0.3, 0.7, 1} {
		if got, want := power.HostWattsAtFreq(spec, u, 1), power.HostWatts(spec, u); got != want {
			t.Errorf("freq=1 watts = %v, want %v", got, want)
		}
		if power.HostWattsAtFreq(spec, u, 0.6) >= power.HostWatts(spec, u) {
			t.Errorf("freq=0.6 watts not below nominal at util %v", u)
		}
	}
}
