// Package lqn implements the layered queuing network performance model of
// §III-A: application tiers are software queues served by processor-sharing
// CPU stations whose rate is the VM's CPU allocation, inter-tier
// interactions are synchronous calls, and Xen's virtualization overhead is
// charged to a per-host Dom-0 station. Given a configuration and a workload
// the model predicts per-application mean response time, per-transaction
// response times, per-VM and per-host CPU utilization.
//
// The model is an open product-form approximation: each replica is an
// M/G/1-PS station with service rate proportional to its CPU allocation,
// load is balanced across replicas proportionally to allocation, and a
// request's end-to-end response time is the sum of its residence times at
// every tier it visits plus Dom-0 residence on each visited host.
//
// Overload does not produce infinities: utilizations are softly capped and
// an overload penalty grows linearly in the excess demand, mimicking the
// bounded response times a closed population of clients produces on a
// saturated testbed. Results flag saturation explicitly.
package lqn

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

// Options tunes the solver. The zero value selects the defaults below.
type Options struct {
	// Dom0CPUShare is the fraction of host CPU reserved for Dom-0
	// (default 0.20, matching the paper's 80% VM cap on 100% hosts).
	Dom0CPUShare float64
	// MaxRho is the utilization soft cap used in residence-time formulas
	// (default 0.97).
	MaxRho float64
	// OverloadPenaltySec is the response-time penalty per unit of demand
	// exceeding the soft cap (default 4 s), keeping overload finite and
	// monotone, as a closed client population does in practice.
	OverloadPenaltySec float64
	// BaseHostUtil is the utilization floor of a powered-on host from OS
	// housekeeping (default 0.02; set negative for an explicit zero).
	BaseHostUtil float64
	// CrossZoneLatencyMS is the round-trip penalty added per tier hop that
	// crosses data-center zones (default 40 ms; the §VI WAN extension).
	CrossZoneLatencyMS float64
}

func (o Options) withDefaults() Options {
	if o.Dom0CPUShare <= 0 {
		o.Dom0CPUShare = 0.20
	}
	if o.MaxRho <= 0 || o.MaxRho >= 1 {
		o.MaxRho = 0.97
	}
	if o.OverloadPenaltySec <= 0 {
		o.OverloadPenaltySec = 4.0
	}
	switch {
	case o.BaseHostUtil == 0:
		o.BaseHostUtil = 0.02
	case o.BaseHostUtil < 0:
		o.BaseHostUtil = 0
	}
	if o.CrossZoneLatencyMS == 0 {
		o.CrossZoneLatencyMS = 40
	} else if o.CrossZoneLatencyMS < 0 {
		o.CrossZoneLatencyMS = 0
	}
	return o
}

// Model evaluates the layered queuing network for a fixed set of
// applications. Construct with NewModel.
//
// Thread-safety contract: a Model is immutable after construction —
// Evaluate reads the application specs, catalog, and options but builds
// all iteration state (per-tier utilizations, response times, host
// aggregations) in call-local maps, so any number of goroutines may call
// Evaluate concurrently on one Model with distinct or identical inputs.
// The concurrent evaluation plane (core.Evaluator's sharded memo cache,
// the parallel A* child evaluation, and the Perf-Pwr sweep) relies on
// this; TestModelEvaluateConcurrent pins it under -race.
type Model struct {
	apps map[string]*app.Spec
	// names holds the application names in sorted order. Evaluate iterates
	// applications through it, never through the apps map: several passes
	// accumulate floating-point sums per host across applications, and map
	// iteration order would make those sums differ in their last bits from
	// run to run.
	names []string
	cat   *cluster.Catalog
	opts  Options

	// skel holds the per-application solver inputs that depend only on the
	// specs — mix probabilities, mean tier demands, per-transaction demand
	// vectors, VM identities — aligned with names. The solve is closed-form
	// (one pass per application, no fixed-point iteration), so once these
	// are precomputed the only per-call state left is the scratch below.
	skel []appSkel
	// scratch pools per-solve working state (host accumulation maps and
	// per-tier replica/factor buffers) so concurrent Evaluates allocate
	// only the Result they return.
	scratch sync.Pool
}

// appSkel is the precomputed, read-only solver input for one application.
type appSkel struct {
	spec  *app.Spec
	probs []float64 // normalized transaction mix, aligned with spec.Txns
	// dom0Sec is the Dom-0 CPU seconds consumed per tier visit.
	dom0Sec float64
	tiers   []tierSkel
	// txnDemandSec[i][ti] is transaction i's CPU demand in seconds on tier
	// ti (spec.Txns[i].DemandMS[tier]/1000, hoisted out of the hot loop).
	txnDemandSec [][]float64
}

// tierSkel is the fixed part of one tier: its mean demand and the identity
// of every potential replica VM.
type tierSkel struct {
	demandMS float64
	vmIDs    []cluster.VMID
}

// repFactor is the per-replica residence multiplier of pass 3.
type repFactor struct {
	weight   float64 // fraction of tier load on this replica
	frac     float64
	stretch  float64 // 1/(1-rho_eff)
	dom0Add  float64 // seconds per visit added by Dom-0
	overload float64 // extra seconds per request from overload
}

// tierScratch is the per-solve mutable state of one tier.
type tierScratch struct {
	replicas []replicaState
	sumFrac  float64
	rho      float64
	factors  []repFactor
}

// solveScratch is one Evaluate call's working state, pooled on the model.
type solveScratch struct {
	hostAlloc     map[string]float64
	hostScale     map[string]float64
	dom0DemandCPU map[string]float64
	hostVMUtil    map[string]float64
	dom0Util      map[string]float64
	tiers         [][]tierScratch // aligned with skel / spec.Tiers
}

func (m *Model) newScratch() *solveScratch {
	sc := &solveScratch{
		hostAlloc:     make(map[string]float64),
		hostScale:     make(map[string]float64),
		dom0DemandCPU: make(map[string]float64),
		hostVMUtil:    make(map[string]float64),
		dom0Util:      make(map[string]float64),
		tiers:         make([][]tierScratch, len(m.skel)),
	}
	for ai := range m.skel {
		sc.tiers[ai] = make([]tierScratch, len(m.skel[ai].tiers))
	}
	return sc
}

// NewModel builds a model over the given applications and catalog. The
// specs' demands, mix, and tier structure are baked into per-application
// solver skeletons here: mutating a spec after construction (ScaleDemands)
// is not observed — rebuild the model, as calibration does.
func NewModel(cat *cluster.Catalog, apps []*app.Spec, opts Options) (*Model, error) {
	m := &Model{
		apps: make(map[string]*app.Spec, len(apps)),
		cat:  cat,
		opts: opts.withDefaults(),
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("lqn: %w", err)
		}
		if _, dup := m.apps[a.Name]; dup {
			return nil, fmt.Errorf("lqn: duplicate application %q", a.Name)
		}
		m.apps[a.Name] = a
		m.names = append(m.names, a.Name)
	}
	sort.Strings(m.names)
	for _, name := range m.names {
		spec := m.apps[name]
		sk := appSkel{
			spec:    spec,
			probs:   spec.MixProbabilities(),
			dom0Sec: spec.Dom0OverheadMS / 1000,
			tiers:   make([]tierSkel, len(spec.Tiers)),
		}
		for ti, t := range spec.Tiers {
			ts := tierSkel{demandMS: spec.MeanDemandMS(t.Name)}
			for r := 0; r < t.MaxReplicas; r++ {
				ts.vmIDs = append(ts.vmIDs, spec.VMIDFor(t.Name, r))
			}
			sk.tiers[ti] = ts
		}
		sk.txnDemandSec = make([][]float64, len(spec.Txns))
		for i, txn := range spec.Txns {
			row := make([]float64, len(spec.Tiers))
			for ti, t := range spec.Tiers {
				row[ti] = txn.DemandMS[t.Name] / 1000
			}
			sk.txnDemandSec[i] = row
		}
		m.skel = append(m.skel, sk)
	}
	m.scratch.New = func() any { return m.newScratch() }
	return m, nil
}

// Apps returns the specs the model was built with, keyed by name.
func (m *Model) Apps() map[string]*app.Spec { return m.apps }

// Catalog returns the catalog the model was built with.
func (m *Model) Catalog() *cluster.Catalog { return m.cat }

// AppResult is the model's prediction for one application.
type AppResult struct {
	// MeanRTSec is the mix-weighted mean end-to-end response time in
	// seconds.
	MeanRTSec float64
	// TxnRTSec maps transaction name to its mean response time in seconds.
	TxnRTSec map[string]float64
	// Saturated reports that at least one tier exceeded the utilization
	// soft cap (demand beyond capacity).
	Saturated bool
	// TierUtil maps tier name to the utilization of its replicas (demand
	// over allocated capacity, may exceed 1 when saturated).
	TierUtil map[string]float64
}

// HostResult is the model's prediction for one host.
type HostResult struct {
	// CPUUtil is the total physical CPU utilization in [0,1], including
	// Dom-0 and the housekeeping floor. It drives the power model.
	CPUUtil float64
	// Dom0Util is the utilization of the Dom-0 share in [0,...], >1 when
	// the hypervisor domain itself saturates (e.g. during migrations).
	Dom0Util float64
}

// Result is a full model evaluation.
type Result struct {
	Apps  map[string]AppResult
	Hosts map[string]HostResult
	// VMUtil maps VM to the utilization of its own allocation in [0,...].
	VMUtil map[cluster.VMID]float64
}

// MeanRTSec returns the predicted mean response time for an application, or
// +Inf if the app is unknown.
func (r *Result) MeanRTSec(appName string) float64 {
	if a, ok := r.Apps[appName]; ok {
		return a.MeanRTSec
	}
	return math.Inf(1)
}

// replicaState captures one active replica's allocation for a tier.
type replicaState struct {
	vm   cluster.VMID
	host string
	frac float64 // CPU allocation as fraction of reference capacity
}

// Evaluate predicts performance for configuration cfg under the workload
// (requests/sec per application). dom0Background adds extra utilization (in
// fraction of the Dom-0 share) to specific hosts, modeling transient load
// such as live migrations. Unknown applications in load are an error;
// applications without load default to zero rate.
func (m *Model) Evaluate(cfg cluster.Config, load map[string]float64, dom0Background map[string]float64) (*Result, error) {
	for name := range load {
		if _, ok := m.apps[name]; !ok {
			return nil, fmt.Errorf("lqn: workload references unknown application %q", name)
		}
	}

	res := &Result{
		Apps:   make(map[string]AppResult, len(m.apps)),
		Hosts:  make(map[string]HostResult, len(m.cat.HostNames())),
		VMUtil: make(map[cluster.VMID]float64),
	}
	sc := m.scratch.Get().(*solveScratch)
	clear(sc.hostAlloc)
	clear(sc.hostScale)
	clear(sc.dom0DemandCPU)
	clear(sc.hostVMUtil)
	clear(sc.dom0Util)

	// Pass 0: hosts whose allocations are oversubscribed scale every VM's
	// effective rate proportionally, as Xen's credit scheduler would. This
	// keeps intermediate configurations (legal inputs during optimization)
	// from evaluating better than any physically feasible configuration.
	// The catalog's sorted VM universe visits each host's VMs in the same
	// order a sorted active-VM list would, so the per-host allocation folds
	// are bit-identical to that (allocating) formulation.
	hostScale := sc.hostScale
	{
		hostAlloc := sc.hostAlloc
		for _, id := range m.cat.VMIDs() {
			if p, ok := cfg.PlacementOf(id); ok {
				hostAlloc[p.Host] += p.CPUPct
			}
		}
		for h, alloc := range hostAlloc {
			spec, ok := m.cat.Host(h)
			if !ok {
				continue
			}
			if alloc > spec.UsableCPUPct {
				hostScale[h] = spec.UsableCPUPct / alloc
			}
		}
	}

	// Pass 1: per-tier replica states, utilizations, Dom-0 demand per host.
	dom0DemandCPU := sc.dom0DemandCPU // host -> absolute CPU fraction demanded by Dom-0 work
	hostVMUtil := sc.hostVMUtil       // host -> absolute CPU fraction used by VMs

	for ai, name := range m.names {
		sk := &m.skel[ai]
		lambda := load[name]
		for ti := range sk.tiers {
			tsk := &sk.tiers[ti]
			ts := &sc.tiers[ai][ti]
			ts.replicas = ts.replicas[:0]
			ts.sumFrac = 0
			ts.rho = 0
			for _, id := range tsk.vmIDs {
				if p, ok := cfg.PlacementOf(id); ok {
					// DVFS scales the host's compute: a VM's effective rate
					// is its allocation times the frequency fraction.
					frac := p.CPUPct / 100 * cfg.HostFreq(p.Host)
					if scale, over := hostScale[p.Host]; over {
						frac *= scale
					}
					ts.replicas = append(ts.replicas, replicaState{vm: id, host: p.Host, frac: frac})
					ts.sumFrac += frac
				}
			}
			if lambda <= 0 || tsk.demandMS <= 0 {
				continue
			}
			if ts.sumFrac <= 0 {
				// No active replica for a tier with demand: the app cannot
				// serve requests; handled in pass 2 as saturation.
				continue
			}
			// Weighted load balancing yields equal per-replica utilization:
			// rho_i = (lambda*f_i/sumF)*D/f_i = lambda*D/sumF.
			ts.rho = lambda * (tsk.demandMS / 1000) / ts.sumFrac
			for _, rep := range ts.replicas {
				lambdaI := lambda * rep.frac / ts.sumFrac
				used := lambdaI * (tsk.demandMS / 1000) // absolute CPU fraction
				if used > rep.frac {
					used = rep.frac // work-conserving cap at the allocation
				}
				hostVMUtil[rep.host] += used
				res.VMUtil[rep.vm] = ts.rho
				// Dom-0 demand: one visit per tier per request.
				dom0DemandCPU[rep.host] += lambdaI * sk.dom0Sec
			}
		}
	}

	// Pass 2: Dom-0 utilizations per host (shared by all apps on the host).
	// The Dom-0 share slows with the host's DVFS frequency too.
	dom0Util := sc.dom0Util
	for _, h := range m.cat.HostNames() {
		if !cfg.HostOn(h) {
			continue
		}
		share := m.opts.Dom0CPUShare * cfg.HostFreq(h)
		util := dom0DemandCPU[h]/share + dom0Background[h]
		dom0Util[h] = util
	}

	// Pass 3: per-application response times.
	for ai, name := range m.names {
		sk := &m.skel[ai]
		spec := sk.spec
		lambda := load[name]
		ar := AppResult{
			TxnRTSec: make(map[string]float64, len(spec.Txns)),
			TierUtil: make(map[string]float64, len(spec.Tiers)),
		}

		// Residence multiplier per tier replica: 1/(1-rho) with soft cap,
		// plus Dom-0 residence on the replica's host.
		for ti, t := range spec.Tiers {
			tsk := &sk.tiers[ti]
			ts := &sc.tiers[ai][ti]
			ts.factors = ts.factors[:0]
			ar.TierUtil[t.Name] = ts.rho
			if lambda <= 0 || tsk.demandMS <= 0 {
				continue
			}
			if ts.sumFrac <= 0 {
				ar.Saturated = true
				// Unserved tier: charge the full overload penalty.
				ts.factors = append(ts.factors, repFactor{weight: 1, frac: 1, stretch: 1, overload: m.opts.OverloadPenaltySec})
				continue
			}
			for _, rep := range ts.replicas {
				rho := ts.rho
				var overload float64
				if rho > m.opts.MaxRho {
					ar.Saturated = true
					overload = (rho - m.opts.MaxRho) * m.opts.OverloadPenaltySec
					rho = m.opts.MaxRho
				}
				d0 := dom0Util[rep.host]
				d0rho := d0
				if d0rho > m.opts.MaxRho {
					overload += (d0rho - m.opts.MaxRho) * m.opts.OverloadPenaltySec
					d0rho = m.opts.MaxRho
					ar.Saturated = true
				}
				dom0Visit := sk.dom0Sec / m.opts.Dom0CPUShare / (1 - d0rho)
				ts.factors = append(ts.factors, repFactor{
					weight:   rep.frac / ts.sumFrac,
					frac:     rep.frac,
					stretch:  1 / (1 - rho),
					dom0Add:  dom0Visit,
					overload: overload,
				})
			}
		}

		// WAN penalty: the expected number of tier hops crossing zones,
		// with replicas weighted by their share of tier load.
		var crossZoneSec float64
		if m.opts.CrossZoneLatencyMS > 0 && lambda > 0 {
			for i := 0; i+1 < len(spec.Tiers); i++ {
				up := &sc.tiers[ai][i]
				down := &sc.tiers[ai][i+1]
				if up.sumFrac <= 0 || down.sumFrac <= 0 {
					continue
				}
				var p float64
				for _, ra := range up.replicas {
					for _, rb := range down.replicas {
						if m.cat.ZoneOf(ra.host) != m.cat.ZoneOf(rb.host) {
							p += (ra.frac / up.sumFrac) * (rb.frac / down.sumFrac)
						}
					}
				}
				crossZoneSec += p * m.opts.CrossZoneLatencyMS / 1000
			}
		}

		var meanRT float64
		for i, txn := range spec.Txns {
			rt := txn.LatencyMS/1000 + crossZoneSec // CPU-free I/O and WAN waits
			for ti := range spec.Tiers {
				demand := sk.txnDemandSec[i][ti]
				fs := sc.tiers[ai][ti].factors
				if len(fs) == 0 {
					continue
				}
				for _, f := range fs {
					if f.frac <= 0 {
						continue
					}
					perVisit := (demand/f.frac)*f.stretch + f.dom0Add + f.overload
					rt += f.weight * perVisit
				}
			}
			ar.TxnRTSec[txn.Name] = rt
			meanRT += sk.probs[i] * rt
		}
		ar.MeanRTSec = meanRT
		res.Apps[name] = ar
	}

	// Pass 4: host utilizations for the power model, as the busy fraction
	// of the host's current (DVFS-scaled) capacity.
	for _, h := range m.cat.HostNames() {
		if !cfg.HostOn(h) {
			res.Hosts[h] = HostResult{}
			continue
		}
		freq := cfg.HostFreq(h)
		util := m.opts.BaseHostUtil + (hostVMUtil[h]+math.Min(dom0Util[h], 1)*m.opts.Dom0CPUShare*freq)/freq
		if util > 1 {
			util = 1
		}
		res.Hosts[h] = HostResult{CPUUtil: util, Dom0Util: dom0Util[h]}
	}
	m.scratch.Put(sc)
	return res, nil
}
