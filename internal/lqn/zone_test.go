package lqn

import (
	"math"
	"testing"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func TestCrossZoneLatencyPenalty(t *testing.T) {
	a := app.RUBiS("a")
	mk := func(name, zone string) cluster.HostSpec {
		h := cluster.DefaultHostSpec(name)
		h.Zone = zone
		return h
	}
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		mk("east0", "east"), mk("east1", "east"), mk("west0", "west"),
	}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(cat, []*app.Spec{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{"a": 20}

	// All tiers in one zone: no penalty.
	local := cluster.NewConfig()
	local.SetHostOn("east0", true)
	local.SetHostOn("east1", true)
	local.Place("a-web-0", "east0", 40)
	local.Place("a-app-0", "east0", 40)
	local.Place("a-db-0", "east1", 40)
	rLocal, err := m.Evaluate(local, load, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The db tier moved across the WAN: both app->db hops cross zones.
	split := local.Clone()
	split.SetHostOn("west0", true)
	split.Unplace("a-db-0")
	split.Place("a-db-0", "west0", 40)
	rSplit, err := m.Evaluate(split, load, nil)
	if err != nil {
		t.Fatal(err)
	}

	gap := rSplit.MeanRTSec("a") - rLocal.MeanRTSec("a")
	// One crossing hop (app->db) at the default 40 ms.
	if math.Abs(gap-0.040) > 0.010 {
		t.Errorf("cross-zone RT gap = %vs, want ≈0.040s", gap)
	}

	// The penalty is configurable and disabled with a negative value.
	mOff, err := NewModel(cat, []*app.Spec{a}, Options{CrossZoneLatencyMS: -1})
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := mOff.Evaluate(split, load, nil)
	if err != nil {
		t.Fatal(err)
	}
	offGap := rOff.MeanRTSec("a") - rLocal.MeanRTSec("a")
	if math.Abs(offGap) > 0.010 {
		t.Errorf("disabled penalty still shows gap %v", offGap)
	}
}
