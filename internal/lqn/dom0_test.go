package lqn

import (
	"testing"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

// TestDom0SaturationPenalizesAndFlags drives the Dom-0 station past its
// soft cap via heavy per-visit virtualization overhead: the model must
// flag saturation and keep response times finite.
func TestDom0SaturationPenalizesAndFlags(t *testing.T) {
	a := app.RUBiS("a")
	a.Dom0OverheadMS = 12 // pathological hypervisor overhead per visit
	cat, err := app.BuildCatalog([]cluster.HostSpec{cluster.DefaultHostSpec("h0")}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-web-0", "h0", 20)
	cfg.Place("a-app-0", "h0", 20)
	cfg.Place("a-db-0", "h0", 20)

	m, err := NewModel(cat, []*app.Spec{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Dom-0 demand: 3 visits × 12 ms × 20 req/s = 0.72 CPU against a 0.2
	// share — deeply saturated.
	res, err := m.Evaluate(cfg, map[string]float64{"a": 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ar := res.Apps["a"]
	if !ar.Saturated {
		t.Error("dom0 saturation not flagged")
	}
	if ar.MeanRTSec <= 0 || ar.MeanRTSec > 1000 {
		t.Errorf("RT under dom0 saturation = %v, want finite positive", ar.MeanRTSec)
	}
	if res.Hosts["h0"].Dom0Util <= 1 {
		t.Errorf("dom0 util = %v, want > 1", res.Hosts["h0"].Dom0Util)
	}
	// Host power utilization remains clamped to [0,1].
	if u := res.Hosts["h0"].CPUUtil; u < 0 || u > 1 {
		t.Errorf("host util = %v out of range", u)
	}
}

// TestDom0SharedAcrossApps verifies that co-located applications contend
// for the same Dom-0 station: adding a second app's traffic slows the
// first app even though their VMs are separate.
func TestDom0SharedAcrossApps(t *testing.T) {
	a := app.RUBiS("a")
	b := app.RUBiS("b")
	a.Dom0OverheadMS, b.Dom0OverheadMS = 2, 2
	cat, err := app.BuildCatalog([]cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1")}, []*app.Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.SetHostOn("h1", true)
	// Both apps' web tiers share h0; the rest live on h1.
	cfg.Place("a-web-0", "h0", 20)
	cfg.Place("b-web-0", "h0", 20)
	cfg.Place("a-app-0", "h1", 20)
	cfg.Place("a-db-0", "h1", 20)
	cfg.Place("b-app-0", "h1", 20)
	cfg.Place("b-db-0", "h1", 20)

	m, err := NewModel(cat, []*app.Spec{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := m.Evaluate(cfg, map[string]float64{"a": 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	together, err := m.Evaluate(cfg, map[string]float64{"a": 15, "b": 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if together.MeanRTSec("a") <= alone.MeanRTSec("a") {
		t.Errorf("co-located app traffic did not slow app a via dom0: %v -> %v",
			alone.MeanRTSec("a"), together.MeanRTSec("a"))
	}
}
