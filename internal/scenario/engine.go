package scenario

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/slo"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/par"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/testbed"
)

// Engine is the resumable heart of the replay loop: one instance owns the
// per-run controller state Run used to keep in local variables — window
// index, virtual clock, retry queue, accumulating Result, SLO engine —
// and advances it one monitoring window per Step. Run is now a thin loop
// over Step, so batch replays are byte-identical to the monolithic loop
// they replaced; a daemon can instead drive Step (or StepRates, with
// streamed workload samples) incrementally, Snapshot the engine to disk,
// and Restore it in a fresh process without losing calibration.
//
// The engine is not safe for concurrent use: one goroutine steps it. The
// observability sinks it feeds (metrics, ops plane, SLO snapshots) have
// their own synchronization and may be read concurrently.
type Engine struct {
	tb  *testbed.Testbed
	d   Decider
	cfg RunConfig

	res         *Result
	totalSearch time.Duration
	retries     []pendingRetry
	winIdx      int
	t           time.Duration

	o    *obs.Observer
	olog *slog.Logger
	reg  *obs.Registry
	slo  *slo.Engine
	ops  *obs.OpsState
	ta   TraceAware

	// Telemetry history plane (see history.go). hist is nil when
	// observability is fully off; histExp/histHits/histMisses are the
	// cumulative registry baselines the per-window fold diffs against.
	hist                          *tsdb.Store
	det                           *tsdb.Detector
	histExp, histHits, histMisses int64

	cWindows       *obs.Counter
	cViolations    *obs.Counter
	cDecideErr     *obs.Counter
	cDegraded      *obs.Counter
	cFailedActions *obs.Counter
	cRetries       *obs.Counter
	cExecRej       *obs.Counter
	cCrashes       *obs.Counter
	cRolledBack    *obs.Counter
	cAnomalies     *obs.Counter
	cWallDrift     *obs.Counter
	hWindowUtil    *obs.Histogram
	gCumUtil       *obs.Gauge

	// steps accumulates the current window's per-step execution outcomes
	// when RunConfig.StepProvenance is on; reset at each StepRates entry.
	steps []provenance.StepProv
}

// StepResult is what one completed monitoring window hands back to the
// engine's driver.
type StepResult struct {
	// Index is the 0-based index of the window just completed.
	Index int
	// Window is the completed window's log; the same value was appended to
	// Result().Windows.
	Window WindowLog
	// ProvErr surfaces the provenance recorder's sticky first write error
	// live, window by window — Run only reported it when the whole replay
	// ended, which let a daemon silently drop records for hours. Nil while
	// every append has succeeded (and always nil without a recorder).
	ProvErr error
}

// NewEngine validates the configuration and builds an engine positioned
// before window 0. The configuration defaults match Run's exactly.
func NewEngine(tb *testbed.Testbed, d Decider, cfg RunConfig) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		tb:  tb,
		d:   d,
		cfg: cfg,
		res: &Result{Strategy: d.Name(), ViolationsByApp: make(map[string]int)},
	}

	// Observability: the engine owns the root "decide" span of each control
	// opportunity, so controller-level children ("perfpwr", "search") and
	// testbed "action:*" events nest under it. All sinks are nil-safe
	// no-ops when observability is disabled.
	o := obs.Resolve(cfg.Obs)
	e.o = o
	e.olog = o.Logger()
	e.cWindows = o.Counter("scenario_windows_total")
	e.cViolations = o.Counter("scenario_target_violations_total")
	e.cDecideErr = o.Counter("scenario_decide_errors_total")
	e.cDegraded = o.Counter("scenario_degraded_windows_total")
	e.cFailedActions = o.Counter("scenario_failed_actions_total")
	e.cRetries = o.Counter("scenario_retries_total")
	e.cExecRej = o.Counter("scenario_exec_rejections_total")
	e.cCrashes = o.Counter("scenario_host_crashes_total")
	e.cRolledBack = o.Counter("scenario_rolledback_actions_total")
	e.cAnomalies = o.Counter("history_anomalies_total")
	e.cWallDrift = o.Counter("history_wall_drift_total")
	e.hWindowUtil = o.Histogram("scenario_window_utility_dollars", []float64{-10, -1, -0.1, 0, 0.1, 1, 10})
	e.gCumUtil = o.Gauge("scenario_cum_utility_dollars")
	o.Gauge("scenario_workers").Set(float64(par.Workers(cfg.Workers)))

	// Causal identity: each window gets a deterministic trace context
	// (obs.WindowTrace) shared by spans, SLO alerts, the ops plane, and —
	// by recomputation from Record.Window — provenance. The SLO engine
	// defaults on whenever an observer is active; it reads only
	// virtual-time quantities, so its state is deterministic and the
	// decision stream is untouched.
	if o != nil {
		e.reg = o.Metrics
	}
	e.slo = cfg.SLO
	if e.slo == nil && o != nil {
		e.slo = slo.New(slo.Config{Interval: cfg.Interval}, o)
	}
	e.ops = o.OpsState()
	e.ops.BeginRun(d.Name(), cfg.Interval)

	// Telemetry history defaults on with any observer, like the SLO
	// engine: an explicit store in the config wins, then the observer's
	// shared store (the one /v1/query serves), then a private one. The
	// store resets per engine — sequential runs over a shared observer
	// each re-begin, and a daemon restore repopulates it from the
	// checkpoint right after construction.
	e.hist = cfg.History
	if e.hist == nil && o != nil {
		if e.hist = o.HistoryStore(); e.hist == nil {
			e.hist = tsdb.New(tsdb.Options{})
		}
	}
	if e.hist != nil {
		e.hist.Reset()
		e.det = tsdb.NewDetector(tsdb.DetectorConfig{})
		e.histSyncBaselines()
	}
	e.ta, _ = d.(TraceAware)
	return e, nil
}

// Result returns the accumulating result. The same pointer is live for the
// engine's whole life: callers reading it concurrently with Step see torn
// state, so only inspect it between steps.
func (e *Engine) Result() *Result { return e.res }

// Now returns the virtual time at which the next window starts.
func (e *Engine) Now() time.Duration { return e.t }

// WindowIndex returns the index of the next window to run.
func (e *Engine) WindowIndex() int { return e.winIdx }

// Interval returns the monitoring interval in force (after defaulting).
func (e *Engine) Interval() time.Duration { return e.cfg.Interval }

// SLO returns the self-monitoring engine (nil when observability is off
// and none was injected).
func (e *Engine) SLO() *slo.Engine { return e.slo }

// Done reports whether the configured replay duration is exhausted. It
// bounds Run; StepRates ignores it, so a daemon streaming live samples can
// keep going past the trace horizon.
func (e *Engine) Done() bool { return e.t >= e.cfg.Duration }

// Step runs one monitoring window with the configured traces' rates.
func (e *Engine) Step() (StepResult, error) {
	return e.StepRates(e.cfg.Traces.At(e.t))
}

// countExec folds one ExecReport into the window and result totals and
// queues retryable failures. attempt is how many times the report's
// actions have now been executed.
func (e *Engine) countExec(log *WindowLog, rep testbed.ExecReport, attempt int, now time.Duration) {
	log.Actions += rep.Started()
	e.res.TotalActions += rep.Started()
	if rep.Failed > 0 {
		log.FailedActions += rep.Failed
		e.res.FailedActions += rep.Failed
		e.cFailedActions.Add(int64(rep.Failed))
		log.degrade(fmt.Sprintf("%d action(s) failed", rep.Failed))
		e.retries = queueRetries(e.retries, rep, attempt, now, e.cfg.Retry)
	}
	if rep.Skipped > 0 {
		e.res.SkippedActions += rep.Skipped
		log.degrade(fmt.Sprintf("%d action(s) skipped", rep.Skipped))
	}
	if rep.Compensated {
		// The plan aborted as a transaction and its applied prefix was
		// rolled back. FPRestored cross-checks the testbed's guarantee:
		// the scheduled final configuration's fingerprint returned to its
		// pre-plan value.
		log.RolledBack += rep.RolledBack
		e.res.RolledBackActions += rep.RolledBack
		e.cRolledBack.Add(int64(rep.RolledBack))
		e.res.CompensatedPlans++
		log.Compensated = true
		log.FPRestored = rep.FinalFP == rep.PrePlanFP
		log.degrade(fmt.Sprintf("plan rolled back (%d compensating step(s))", rep.RolledBack))
	}
	if e.cfg.StepProvenance && e.cfg.Provenance.Enabled() {
		for _, st := range rep.Steps {
			sp := provenance.StepProv{
				Action:      st.Action.String(),
				Status:      st.Status.String(),
				PlannedSec:  st.Planned.Seconds(),
				RealizedSec: st.Realized.Seconds(),
				Retryable:   st.Retryable,
			}
			if attempt > 1 {
				sp.Retry = attempt - 1
			}
			if st.Err != nil {
				sp.Err = st.Err.Error()
			}
			e.steps = append(e.steps, sp)
		}
	}
}

// record emits one provenance record for a completed (or aborted) window;
// window indices count every window, busy ones included. The same index
// seeds the window's trace context, so provenance readers recover the
// trace ID with obs.TraceID(Record.Window) — no new serialized field, no
// byte-level drift.
func (e *Engine) record(log *WindowLog, busy bool, searchCost float64, provs []*provenance.DecisionProv, gp *provenance.GuardProv) {
	if !e.cfg.Provenance.Enabled() {
		return
	}
	// Append's first error is sticky on the recorder, surfaced live on each
	// StepResult and finally by Close; the window itself never aborts over
	// a provenance write.
	rec := &provenance.Record{
		Window:            e.winIdx,
		TimeSec:           log.Time.Seconds(),
		Strategy:          e.res.Strategy,
		Invoked:           log.Invoked,
		Busy:              busy,
		Degraded:          log.Degraded,
		DegradedReason:    log.DegradedReason,
		Actions:           log.Actions,
		SearchTimeSec:     log.SearchTime.Seconds(),
		SearchCostDollars: searchCost,
		UtilityDollars:    log.Utility,
		CumUtilityDollars: log.CumUtility,
		Watts:             log.Watts,
		Decisions:         provs,
		Guard:             gp,
	}
	if e.cfg.StepProvenance {
		rec.Steps = e.steps
	}
	_ = e.cfg.Provenance.Append(rec)
}

// StepRates runs one monitoring window under the given per-application
// request rates, advancing the virtual clock by one interval.
//
// The window degrades rather than aborts: a decision error (or panic), a
// rejected plan, a failed or skipped action, a host crash, or a dropped
// sensor window marks the window Degraded, is counted on the Result, and
// the engine carries the reconciled testbed configuration into the next
// window so the strategy can replan against reality. Only infrastructure
// errors — invalid rates, a broken measurement pipeline — return an error,
// and even then the in-progress window (with its already-charged search
// cost) is recorded first.
func (e *Engine) StepRates(rates map[string]float64) (StepResult, error) {
	t := e.t
	cfg := e.cfg
	res := e.res
	tb := e.tb
	d := e.d
	tr := e.o.Tracer()
	olog := e.olog

	if err := tb.SetRates(rates); err != nil {
		return StepResult{Index: e.winIdx, ProvErr: cfg.Provenance.Err()}, fmt.Errorf("scenario: %w", err)
	}

	log := WindowLog{Time: t + cfg.Interval, Rates: rates}
	e.steps = nil

	// The window's causal identity: spans, alerts, ops entries, and
	// log lines below all carry tc's trace ID, and the provenance
	// record's Window field pins the same identity.
	tc := obs.WindowTrace(e.winIdx)
	if tr != nil {
		if e.ta != nil {
			e.ta.SetTraceContext(tc)
		}
		tb.SetTrace(tc)
	}

	// Host crashes land first, and only while no plan is in flight (so
	// executing phases stay consistent): the strategy plans against the
	// post-crash configuration.
	if cfg.Fault.Enabled() && !tb.Busy() {
		for _, h := range cfg.Fault.HostCrashes(tb.Config().ActiveHosts(), cfg.Interval) {
			rep, err := tb.CrashHost(h)
			if err != nil {
				olog.Warn("host crash not applied", "host", h, "err", err)
				continue
			}
			log.HostCrashes++
			log.degrade("host crash: " + h)
			res.HostCrashes++
			e.cCrashes.Inc()
			olog.Warn("host crashed",
				"host", h,
				"displaced", len(rep.Displaced),
				"stranded", len(rep.Stranded),
				"recovery", rep.Recovery)
		}
	}

	// Re-execute one due retry per window while idle; if its recovery
	// phase occupies the testbed, the decision naturally defers to the
	// next window via the Busy check below.
	if !tb.Busy() {
		if i := dueRetry(e.retries, t); i >= 0 {
			rt := e.retries[i]
			e.retries = append(e.retries[:i], e.retries[i+1:]...)
			res.Retries++
			e.cRetries.Inc()
			log.Retried++
			log.degrade(fmt.Sprintf("retry of failed %s", rt.action.Kind))
			tr.Event("retry", t, t, tc.Attr(),
				obs.Attr{Key: "span", Value: tc.SpanID("retry", fmt.Sprint(rt.action.Kind))},
				obs.Attr{Key: "kind", Value: fmt.Sprint(rt.action.Kind)},
				obs.Attr{Key: "attempt", Value: rt.attempt + 1})
			rep, err := tb.Execute([]cluster.Action{rt.action})
			if err != nil {
				// The cluster moved on (host crashed, VM re-placed);
				// the action no longer applies. Abandon it.
				olog.Warn("retry rejected", "kind", rt.action.Kind, "err", err)
			} else {
				e.countExec(&log, rep, rt.attempt+1, t)
			}
		}
	}

	// Invoke the strategy unless the testbed is still executing a
	// previously chosen plan.
	busy := tb.Busy()
	var searchCost float64
	var provs []*provenance.DecisionProv
	var gp *provenance.GuardProv
	var decideWall time.Duration
	decideErred := false
	if !busy {
		sp := tr.Start("decide", t,
			obs.Attr{Key: "strategy", Value: d.Name()},
			tc.Attr(),
			obs.Attr{Key: "span", Value: tc.SpanID("decide")})
		cfg.Profile.BeginDecide(e.winIdx)
		wallT0 := time.Now()
		dec, err := safeDecide(d, t, tb.Config(), rates)
		decideWall = time.Since(wallT0)
		res.DecideWall = append(res.DecideWall, decideWall)
		if paths := cfg.Profile.EndDecide(e.winIdx, decideWall); len(paths) > 0 {
			olog.Warn("decide blew latency budget; pprof captured",
				"trace", tc.ID(), "wall", decideWall,
				"budget", cfg.Profile.Budget(), "artifacts", paths)
		}
		if err != nil {
			decideErred = true
			sp.End(t, obs.Attr{Key: "error", Value: err.Error()})
			olog.Warn("decide failed; degrading to no adaptation",
				"strategy", d.Name(), "t", t, "err", err)
			res.DecideErrors++
			e.cDecideErr.Inc()
			log.degrade("decide: " + err.Error())
		} else {
			provs = dec.Provs
			if dec.Invoked {
				res.Invocations++
				e.totalSearch += dec.SearchTime
				log.Invoked = true
				log.SearchTime = dec.SearchTime
				searchCost = dec.SearchCost
			}
			if dec.Degraded {
				reason := dec.DegradedReason
				if reason == "" {
					reason = "strategy fallback"
				}
				log.degrade(reason)
				res.FallbackDecisions++
			}
			var planDur time.Duration
			if len(dec.Plan) > 0 {
				// Admission: the guard screens the plan against its
				// invariants (and the circuit breaker) before a single
				// action is scheduled. A nil guard admits everything.
				v := cfg.Guard.Admit(t, tb.FinalConfig(), dec.Plan)
				if cfg.Guard.Enabled() {
					gp = &provenance.GuardProv{
						Allowed: v.Allowed,
						Rule:    v.Rule,
						Reason:  v.Reason,
						Breaker: v.Breaker.String(),
					}
				}
				if !v.Allowed {
					res.GuardRejections++
					log.GuardRejected = true
					log.GuardRule = v.Rule
					log.degrade("guard rejected plan: " + v.Rule)
					olog.Warn("guard rejected plan",
						"strategy", d.Name(), "t", t,
						"rule", v.Rule, "reason", v.Reason,
						"breaker", v.Breaker.String())
				} else if rep, err := tb.Execute(dec.Plan); err != nil {
					// The whole plan was rejected — typically stale
					// against a crash-reconciled configuration. Replan
					// next window.
					olog.Warn("plan rejected", "strategy", d.Name(), "t", t, "err", err)
					res.ExecRejections++
					e.cExecRej.Inc()
					log.degrade("plan rejected: " + err.Error())
				} else {
					planDur = rep.Duration
					e.countExec(&log, rep, 1, t)
				}
			}
			// The root span covers the decision and the plan it launched:
			// search time and execution overlap on the virtual clock, so
			// the span ends when the longer of the two does.
			end := t + dec.SearchTime
			if pe := t + planDur; pe > end {
				end = pe
			}
			sp.End(end,
				obs.Attr{Key: "invoked", Value: dec.Invoked},
				obs.Attr{Key: "actions", Value: len(dec.Plan)},
				obs.Attr{Key: "search_cost", Value: dec.SearchCost})
			log.Utility -= dec.SearchCost
		}
	}

	w, err := tb.MeasureWindow(t + cfg.Interval)
	if err != nil {
		// Record the in-progress window — its search cost is already
		// charged — before surfacing the error.
		res.CumUtility += log.Utility
		log.CumUtility = res.CumUtility
		log.ActiveHosts = tb.Config().NumActiveHosts()
		log.degrade("measure: " + err.Error())
		res.Windows = append(res.Windows, log)
		e.record(&log, busy, searchCost, provs, gp)
		if res.Invocations > 0 {
			res.MeanSearchTime = e.totalSearch / time.Duration(res.Invocations)
		}
		return StepResult{Index: e.winIdx, Window: log, ProvErr: cfg.Provenance.Err()},
			fmt.Errorf("scenario: %w", err)
	}
	log.RTSec = w.RTSec
	log.Watts = w.Watts
	if w.SensorDropped {
		log.SensorDropped = true
		log.degrade("sensor window dropped")
		res.SensorDrops++
	}

	perfRate := cfg.Utility.PerfRateAll(rates, w.RTSec)
	pwrRate := cfg.Utility.PowerRate(w.Watts)
	log.Utility += cfg.Interval.Seconds() * (perfRate + pwrRate)
	res.CumUtility += log.Utility
	log.CumUtility = res.CumUtility
	d.RecordWindow(log.Utility, perfRate, pwrRate)

	violationsBefore := res.TargetViolations
	for name, a := range cfg.Utility.Apps {
		if rates[name] > 0 && w.RTSec[name] > a.TargetRT.Seconds() {
			res.TargetViolations++
			res.ViolationsByApp[name]++
		}
	}
	if log.Degraded {
		res.DegradedWindows++
		e.cDegraded.Inc()
		olog.Warn("window degraded",
			"strategy", d.Name(),
			"t", log.Time,
			"reason", log.DegradedReason)
	}
	e.cWindows.Inc()
	e.cViolations.Add(int64(res.TargetViolations - violationsBefore))
	e.hWindowUtil.ObserveExemplar(log.Utility, tc.ID())
	e.gCumUtil.Set(res.CumUtility)
	olog.Info("window",
		"strategy", d.Name(),
		"trace", tc.ID(),
		"t", log.Time,
		"watts", w.Watts,
		"utility", log.Utility,
		"cum_utility", res.CumUtility,
		"actions", log.Actions,
		"invoked", log.Invoked,
		"degraded", log.Degraded)
	log.ActiveHosts = tb.Config().NumActiveHosts()
	res.EnergyKWh += w.Watts * cfg.Interval.Hours() / 1000
	res.HostHours += float64(log.ActiveHosts) * cfg.Interval.Hours()
	res.Windows = append(res.Windows, log)
	e.record(&log, busy, searchCost, provs, gp)

	// The breaker consumes the window's health exactly once per window,
	// busy windows included (its cooldown is counted in windows): this
	// window's degraded status gates the next window's admission.
	cfg.Guard.ObserveWindow(log.Degraded)

	// Telemetry history: fold the window's canonical sample set into the
	// tsdb store and score it for anomalies. Runs before the SLO fold so
	// the history-anomaly objective sees this window's verdicts.
	histChecked, histAnomalies := e.observeHistory(&log, busy, searchCost, decideWall, tc)

	// Self-monitoring: the SLO engine folds the window's virtual-time
	// facts in; any alerts surface on the log with the window's trace
	// ID, and the ops plane gets the refreshed health snapshot.
	if e.slo != nil {
		alerts := e.slo.ObserveWindow(slo.WindowObs{
			Window:      e.winIdx,
			Time:        log.Time,
			Invoked:     log.Invoked,
			Degraded:    log.Degraded,
			SearchTime:  log.SearchTime,
			Retries:       log.Retried,
			CacheHits:     e.reg.CounterValue("eval_cache_hits_total"),
			CacheMisses:   e.reg.CounterValue("eval_cache_misses_total"),
			GuardChecked:  gp != nil,
			GuardRejected: log.GuardRejected,
			HistoryChecked: histChecked,
			Anomalies:      histAnomalies,
		})
		for _, a := range alerts {
			olog.Warn("slo alert",
				"objective", a.Objective,
				"severity", a.Severity,
				"trace", a.Trace,
				"msg", a.Message)
		}
	}
	if e.ops != nil {
		e.ops.RecordWindow(obs.OpsWindow{
			Window:        e.winIdx,
			Trace:         tc.ID(),
			TimeSec:       log.Time.Seconds(),
			CumUtility:    res.CumUtility,
			Degraded:      log.Degraded,
			Error:         decideErred,
			Retries:       log.Retried,
			Crashes:       log.HostCrashes,
			WallMS:        float64(decideWall.Microseconds()) / 1000,
			SearchTimeSec: log.SearchTime.Seconds(),
		})
		if e.slo != nil {
			if raw, err := json.Marshal(e.slo.Snapshot()); err == nil {
				e.ops.SetSLO(raw)
			}
		}
		if e.hist != nil {
			e.ops.SetHistory(e.hist.Summaries(opsSparkN))
		}
	}

	sr := StepResult{Index: e.winIdx, Window: log, ProvErr: cfg.Provenance.Err()}
	e.t = t + cfg.Interval
	e.winIdx++
	return sr, nil
}

// Close finalizes the result (mean search time over invocations) and
// surfaces the provenance recorder's sticky first write error, exactly as
// the end of the monolithic Run did. It does not release resources — the
// testbed and recorder belong to the caller — so an engine may be
// snapshotted after Close and its state restored elsewhere.
func (e *Engine) Close() error {
	if e.res.Invocations > 0 {
		e.res.MeanSearchTime = e.totalSearch / time.Duration(e.res.Invocations)
	}
	if err := e.cfg.Provenance.Err(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}
