package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/guard"
	"github.com/mistralcloud/mistral/internal/obs/slo"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/testbed"
)

// SnapshotSchema identifies the checkpoint format; Restore refuses any
// other value except listed legacy versions. Bump it when a field changes
// meaning — a version bump turns silent state corruption into a clean
// "unsupported schema" error.
//
// v2 added the telemetry history plane (History/Anomaly); every v1 field
// is unchanged, so v1 checkpoints restore with an empty history.
const SnapshotSchema = "mistral.checkpoint/v2"

// snapshotSchemaV1 is the pre-history checkpoint format, still accepted
// on restore: old checkpoints simply carry no trend history.
const snapshotSchemaV1 = "mistral.checkpoint/v1"

// Snapshotter is the optional Decider extension that makes a strategy
// checkpointable: SnapshotState serializes every piece of mutable decision
// state (estimator histories, utility bands, eval-cache contents, per-level
// invocation stats), and RestoreState rebuilds it in a freshly constructed
// strategy. The encoding is the strategy's own business — the engine stores
// it opaquely. A strategy that doesn't implement it can still be engine-
// driven, just not checkpointed.
type Snapshotter interface {
	SnapshotState() (json.RawMessage, error)
	RestoreState(json.RawMessage) error
}

// RetryState is one pending action retry in serializable form.
type RetryState struct {
	Action  cluster.Action `json:"action"`
	Attempt int            `json:"attempt"`
	AtNS    int64          `json:"at_ns"`
}

// Snapshot is a complete engine checkpoint: everything a fresh process
// needs to resume the replay mid-trace with zero decision drift. All
// durations are int64 nanoseconds (never float seconds — exactness is the
// whole point). Construction inputs (catalog, app specs, traces, utility
// params, fault rates) are NOT included: a checkpoint is restored into an
// engine rebuilt from the same configuration, and Restore cross-checks the
// parts it can see (schema, strategy name, fault-plane presence).
type Snapshot struct {
	Schema   string `json:"schema"`
	Strategy string `json:"strategy"`

	// Replay cursor.
	WindowIndex   int          `json:"window_index"`
	TimeNS        int64        `json:"time_ns"`
	TotalSearchNS int64        `json:"total_search_ns"`
	Retries       []RetryState `json:"retries,omitempty"`

	// Accumulated outputs.
	Result *Result `json:"result"`

	// Subsystem state.
	Testbed *testbed.State    `json:"testbed"`
	Fault   *fault.State      `json:"fault,omitempty"`
	SLO     *slo.PersistState `json:"slo,omitempty"`
	Guard   *guard.State      `json:"guard,omitempty"`
	Decider json.RawMessage   `json:"decider,omitempty"`

	// Cumulative registry counters the SLO engine's eval-cache-hit
	// objective diffs window over window. A fresh process's registry
	// starts at zero; without these the first post-restore diff would go
	// negative, the objective would mark windows unmeasurable, and the SLO
	// state would drift from an uninterrupted run's.
	RegCacheHits   int64 `json:"reg_cache_hits"`
	RegCacheMisses int64 `json:"reg_cache_misses"`

	// Telemetry history plane (v2): the tsdb store's complete ring
	// contents and the anomaly detector's wall-clock EWMA baselines, so
	// trends and drift detection survive a daemon restart. Absent from v1
	// checkpoints and from engines running without observability.
	History *tsdb.State         `json:"history,omitempty"`
	Anomaly *tsdb.DetectorState `json:"anomaly,omitempty"`
}

// Snapshot captures the engine's complete state between steps. The engine
// keeps running — snapshotting is non-destructive — so a daemon can
// checkpoint periodically while serving. Call it only between Step calls.
func (e *Engine) Snapshot() (*Snapshot, error) {
	tbState, err := e.tb.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	faultState, err := e.cfg.Fault.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("scenario: fault snapshot: %w", err)
	}
	s := &Snapshot{
		Schema:        SnapshotSchema,
		Strategy:      e.res.Strategy,
		WindowIndex:   e.winIdx,
		TimeNS:        int64(e.t),
		TotalSearchNS: int64(e.totalSearch),
		Testbed:       tbState,
		Fault:         faultState,
	}
	for _, r := range e.retries {
		s.Retries = append(s.Retries, RetryState{
			Action:  r.action,
			Attempt: r.attempt,
			AtNS:    int64(r.at),
		})
	}
	// Deep-copy the result through JSON: encoding/json round-trips float64
	// via shortest-representation exactly, and time.Duration as int64
	// nanoseconds, so the copy is bit-faithful and detached from the
	// engine's live pointer.
	raw, err := json.Marshal(e.res)
	if err != nil {
		return nil, fmt.Errorf("scenario: result snapshot: %w", err)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("scenario: result snapshot: %w", err)
	}
	s.Result = &res
	if sn, ok := e.d.(Snapshotter); ok {
		s.Decider, err = sn.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("scenario: decider snapshot: %w", err)
		}
	}
	if e.slo != nil {
		s.SLO = e.slo.Persist()
	}
	s.Guard = e.cfg.Guard.Snapshot()
	if e.reg != nil {
		s.RegCacheHits = e.reg.CounterValue("eval_cache_hits_total")
		s.RegCacheMisses = e.reg.CounterValue("eval_cache_misses_total")
	}
	s.History = e.hist.State()
	s.Anomaly = e.det.State()
	return s, nil
}

// Restore rewinds a freshly built engine to a checkpoint. The engine must
// have been constructed with the same inputs (testbed catalog and specs,
// strategy configuration, traces, utility params, fault options) as the
// one that produced the snapshot; Restore verifies what it can — schema
// version, strategy name, fault-plane presence — and trusts the caller for
// the rest. After Restore, Step continues the replay as if the process had
// never stopped.
func (e *Engine) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("scenario: nil snapshot")
	}
	if s.Schema != SnapshotSchema && s.Schema != snapshotSchemaV1 {
		return fmt.Errorf("scenario: unsupported checkpoint schema %q (want %q)", s.Schema, SnapshotSchema)
	}
	if s.Strategy != e.d.Name() {
		return fmt.Errorf("scenario: checkpoint is for strategy %q, engine runs %q", s.Strategy, e.d.Name())
	}
	if (s.Fault != nil) != e.cfg.Fault.Enabled() {
		return fmt.Errorf("scenario: checkpoint fault-injection state does not match engine configuration")
	}
	if (s.Guard != nil) != e.cfg.Guard.Enabled() {
		return fmt.Errorf("scenario: checkpoint guard state does not match engine configuration")
	}
	if s.Result == nil {
		return fmt.Errorf("scenario: checkpoint has no result")
	}
	if err := e.tb.Restore(s.Testbed); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := e.cfg.Fault.Restore(s.Fault); err != nil {
		return fmt.Errorf("scenario: fault restore: %w", err)
	}
	if len(s.Decider) > 0 {
		sn, ok := e.d.(Snapshotter)
		if !ok {
			return fmt.Errorf("scenario: checkpoint carries decider state but strategy %q cannot restore it", e.d.Name())
		}
		if err := sn.RestoreState(s.Decider); err != nil {
			return fmt.Errorf("scenario: decider restore: %w", err)
		}
	}
	// Detach the restored result from the snapshot via the same exact
	// JSON round-trip used on capture.
	raw, err := json.Marshal(s.Result)
	if err != nil {
		return fmt.Errorf("scenario: result restore: %w", err)
	}
	res := &Result{}
	if err := json.Unmarshal(raw, res); err != nil {
		return fmt.Errorf("scenario: result restore: %w", err)
	}
	if res.ViolationsByApp == nil {
		res.ViolationsByApp = make(map[string]int)
	}
	e.res = res
	e.winIdx = s.WindowIndex
	e.t = time.Duration(s.TimeNS)
	e.totalSearch = time.Duration(s.TotalSearchNS)
	e.retries = nil
	for _, r := range s.Retries {
		e.retries = append(e.retries, pendingRetry{
			action:  r.Action,
			attempt: r.Attempt,
			at:      time.Duration(r.AtNS),
		})
	}
	if e.slo != nil {
		e.slo.Restore(s.SLO)
	}
	if s.Guard != nil {
		if err := e.cfg.Guard.Restore(s.Guard); err != nil {
			return fmt.Errorf("scenario: guard restore: %w", err)
		}
	}
	// Re-seat the cumulative eval-cache counters the SLO engine diffs:
	// Add the shortfall so a fresh registry reads exactly what the
	// checkpointed one did (residual un-flushed evaluator stats were
	// restored separately with the decider's cache state).
	if e.reg != nil {
		if d := s.RegCacheHits - e.reg.CounterValue("eval_cache_hits_total"); d != 0 {
			e.reg.Counter("eval_cache_hits_total").Add(d)
		}
		if d := s.RegCacheMisses - e.reg.CounterValue("eval_cache_misses_total"); d != 0 {
			e.reg.Counter("eval_cache_misses_total").Add(d)
		}
	}
	// Telemetry history: repopulate the store's rings from the checkpoint
	// (a v1 checkpoint carries none — Restore(nil) just resets), restore
	// the wall-clock drift baselines, and re-sync the counter baselines
	// the per-window fold diffs — the registry was just re-seated above,
	// so "baseline == live counter value" holds again and the next
	// window's deltas cover exactly that window.
	if e.hist != nil {
		if err := e.hist.Restore(s.History); err != nil {
			return fmt.Errorf("scenario: history restore: %w", err)
		}
		e.det.Restore(s.Anomaly)
		e.histSyncBaselines()
		e.ops.SetHistory(e.hist.Summaries(opsSparkN))
	}
	// Republish the headline gauges so a freshly restored daemon's
	// /metrics reflects the checkpoint instead of zero.
	e.gCumUtil.Set(e.res.CumUtility)
	return nil
}
