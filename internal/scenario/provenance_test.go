package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/provenance"
)

// TestRunEmitsProvenanceRecords checks the one-record-per-window contract:
// every monitoring window lands in the JSONL stream — invoked, idle, and
// busy (plan still executing) windows alike — and the stream passes the
// same validation mistral-explain --check applies.
func TestRunEmitsProvenanceRecords(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &scripted{
		name: "mover",
		decisions: []Decision{{
			Invoked:    true,
			Plan:       []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0"}},
			SearchTime: 3 * time.Second,
			SearchCost: 0.05,
		}},
	}
	var buf bytes.Buffer
	rec := provenance.NewRecorder(&buf)
	res, err := Run(tb, d, RunConfig{
		Traces: traces, Duration: 30 * time.Minute, Utility: util, Provenance: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != len(res.Windows) {
		t.Fatalf("recorded %d windows, result has %d", rec.Count(), len(res.Windows))
	}
	recs, err := provenance.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := provenance.CheckStream(recs); err != nil {
		t.Errorf("stream fails validation: %v", err)
	}
	if !recs[0].Invoked || recs[0].Actions != 1 {
		t.Errorf("first record: invoked=%v actions=%d, want invoked with 1 action", recs[0].Invoked, recs[0].Actions)
	}
	if recs[0].SearchCostDollars != 0.05 {
		t.Errorf("first record search cost %v, want 0.05", recs[0].SearchCostDollars)
	}
	for i, r := range recs {
		if r.Strategy != "mover" {
			t.Fatalf("record %d strategy %q", i, r.Strategy)
		}
		if r.TimeSec != res.Windows[i].Time.Seconds() {
			t.Fatalf("record %d time %v != window %v", i, r.TimeSec, res.Windows[i].Time)
		}
		if r.UtilityDollars != res.Windows[i].Utility {
			t.Fatalf("record %d utility %v != window %v", i, r.UtilityDollars, res.Windows[i].Utility)
		}
	}
}

// TestRunProvenanceMarksDegradedWindows checks that a decider failure is
// recorded with its reason in both the WindowLog and the provenance record.
func TestRunProvenanceMarksDegradedWindows(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &scripted{name: "bad", errAt: 3}
	var buf bytes.Buffer
	rec := provenance.NewRecorder(&buf)
	res, err := Run(tb, d, RunConfig{
		Traces: traces, Duration: 30 * time.Minute, Utility: util, Provenance: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Windows[2]
	if !w.Degraded || !strings.HasPrefix(w.DegradedReason, "decide: ") {
		t.Errorf("window 2: degraded=%v reason=%q, want decide failure", w.Degraded, w.DegradedReason)
	}
	recs, err := provenance.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := recs[2]
	if !r.Degraded || r.DegradedReason != w.DegradedReason {
		t.Errorf("record 2: degraded=%v reason=%q, want %q", r.Degraded, r.DegradedReason, w.DegradedReason)
	}
	for i, r := range recs {
		if i != 2 && r.Degraded {
			t.Errorf("record %d unexpectedly degraded: %q", i, r.DegradedReason)
		}
	}
}

// TestRunProvenanceDisabledIsByteIdentical checks the zero-overhead
// contract at the replay level: a nil recorder leaves Results and
// WindowLogs identical to an unrecorded run.
func TestRunProvenanceDisabledIsByteIdentical(t *testing.T) {
	run := func(rec *provenance.Recorder) *Result {
		tb, util, traces, _ := setup(t)
		d := &scripted{
			name: "mover",
			decisions: []Decision{{
				Invoked:    true,
				Plan:       []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0"}},
				SearchTime: 3 * time.Second,
				SearchCost: 0.05,
			}},
		}
		res, err := Run(tb, d, RunConfig{
			Traces: traces, Duration: 30 * time.Minute, Utility: util, Provenance: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var buf bytes.Buffer
	plain, recorded := run(nil), run(provenance.NewRecorder(&buf))
	if !resultsEqual(plain, recorded) {
		t.Errorf("recording changed the replay:\nplain:    %+v\nrecorded: %+v", plain, recorded)
	}
}

// resultsEqual compares two results field by field (reflect.DeepEqual is
// too strict for nil-vs-empty map distinctions that JSON treats the same).
func resultsEqual(a, b *Result) bool {
	if a.Strategy != b.Strategy || a.CumUtility != b.CumUtility ||
		a.TotalActions != b.TotalActions || a.Invocations != b.Invocations ||
		a.MeanSearchTime != b.MeanSearchTime || len(a.Windows) != len(b.Windows) {
		return false
	}
	for i := range a.Windows {
		wa, wb := a.Windows[i], b.Windows[i]
		if wa.Time != wb.Time || wa.Utility != wb.Utility || wa.Watts != wb.Watts ||
			wa.Actions != wb.Actions || wa.Invoked != wb.Invoked ||
			wa.Degraded != wb.Degraded || wa.DegradedReason != wb.DegradedReason {
			return false
		}
	}
	return true
}
