// Package scenario drives the paper's evaluation loop: it replays workload
// traces against a virtual testbed under the control of a strategy
// (Mistral or one of the baselines), measuring per-monitoring-window
// response times, power, accrued utility, and adaptation activity — the raw
// material of Figures 8–10 and Table I.
package scenario

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/guard"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/slo"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Decision is what a strategy returns for one control opportunity.
type Decision struct {
	// Invoked reports whether the strategy actually ran its decision
	// procedure this window.
	Invoked bool
	// Plan is the action sequence to execute (may be empty).
	Plan []cluster.Action
	// SearchTime is the decision procedure's (simulated) duration.
	SearchTime time.Duration
	// SearchCost is the dollar cost of the decision itself (controller
	// host power over SearchTime); charged against the window's utility.
	SearchCost float64
	// Degraded reports the strategy fell back to a no-adaptation decision
	// (evaluation error, search deadline) instead of failing outright;
	// DegradedReason names the failing stage and error.
	Degraded       bool
	DegradedReason string
	// Provs carries one flight-recorder entry per controller invocation
	// behind this decision, in controller order (the Mistral hierarchy can
	// run several 1st-level controllers in one opportunity). Nil unless the
	// decider was built with provenance enabled.
	Provs []*provenance.DecisionProv
}

// TraceAware is an optional Decider extension: a strategy implementing it
// receives each window's trace context before Decide, so its spans and
// provenance-adjacent attributes share the window's causal identity. The
// replay loop detects it by type assertion — the Decider interface itself
// (re-exported from the root package) is unchanged, and strategies that
// don't care never see it.
type TraceAware interface {
	SetTraceContext(tc obs.TraceContext)
}

// Decider is a control strategy. Implementations: the Mistral hierarchy and
// the Perf-Pwr / Perf-Cost / Pwr-Cost baselines of §V-C.
type Decider interface {
	// Name labels the strategy in results.
	Name() string
	// Decide is called once per monitoring interval when the testbed is
	// not executing a previous plan.
	Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error)
	// RecordWindow feeds back each completed window's realized utility
	// (dollars) and its performance/power accrual rates (dollars/second).
	RecordWindow(utilityDollars, perfRate, pwrRate float64)
}

// RunConfig configures a scenario replay.
type RunConfig struct {
	// Traces drive each application's request rate.
	Traces workload.Set
	// Duration bounds the replay; zero uses the longest trace duration.
	Duration time.Duration
	// Interval is the unit monitoring interval M (default 2 minutes).
	Interval time.Duration
	// Utility computes window utilities (required).
	Utility *utility.Params
	// Workers records the evaluation concurrency the decider was built
	// with (see strategy.MistralConfig.Workers), purely for observability:
	// the replay loop itself is inherently sequential — each window's
	// decision depends on the previous window's testbed state — so the
	// value is exported as the scenario_workers gauge, not consumed here.
	Workers int
	// Obs overrides the process-default observer (obs.SetDefault) for the
	// replay loop's spans and window metrics; nil resolves the default.
	Obs *obs.Observer
	// Fault optionally injects host crashes into the replay. It should be
	// the same injector the testbed was built with, so fault classes share
	// one seeded schedule. Nil injects nothing.
	Fault *fault.Injector
	// Retry bounds the re-execution of retryable failed actions.
	Retry RetryPolicy
	// Provenance, when non-nil, receives one flight-recorder Record per
	// monitoring window — including Busy windows (a previous plan still
	// executing) and Degraded windows (with their failure reason). The
	// recorder's first write error aborts the replay at the end of the run.
	// Nil — the default — records nothing and leaves the replay
	// byte-identical to an unrecorded one.
	Provenance *provenance.Recorder
	// SLO overrides the self-monitoring engine. Nil builds a default
	// engine whenever an observer is active (SLO state is observational
	// and deterministic under virtual time); with observability fully
	// off, no engine runs.
	SLO *slo.Engine
	// History overrides the windowed telemetry store every completed
	// window folds its canonical sample set into. Nil uses the observer's
	// store (the one served at /v1/query), or a private one when the
	// observer has none; with observability fully off, no history is
	// kept. History is a pure observer: decisions, provenance bytes, and
	// stdout are identical with it on or off.
	History *tsdb.Store
	// Profile, when non-nil, captures pprof artifacts for decide calls
	// that blow their wall-clock latency budget. Observational only.
	Profile *obs.Profiler
	// Guard, when non-nil, screens every proposed plan against safety
	// invariants before execution and freezes adaptation via its circuit
	// breaker after runs of degraded windows. Its verdicts land on the
	// window log, the provenance record, and the SLO engine. Nil — the
	// default — admits everything, byte-identical to an unguarded run.
	Guard *guard.Guard
	// StepProvenance, when true, attaches each window's per-step execution
	// outcomes (applied/failed/skipped/rolled-back, realized durations,
	// errors) to the provenance record. Default-off: the extra fields
	// would change provenance bytes, and the golden-compat guarantee for
	// existing runs is byte-identical output.
	StepProvenance bool
}

// RetryPolicy bounds retry-with-backoff for actions the fault plane failed
// transiently. It only matters when faults are injected.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions per action including
	// the first (default 3; negative disables retries).
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling per attempt
	// (default: one monitoring interval).
	Backoff time.Duration
}

func (c RunConfig) withDefaults() (RunConfig, error) {
	if len(c.Traces) == 0 {
		return c, fmt.Errorf("scenario: no traces")
	}
	if c.Utility == nil {
		return c, fmt.Errorf("scenario: utility params required")
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Minute
	}
	if c.Duration <= 0 {
		for _, tr := range c.Traces {
			if d := tr.Duration(); d > c.Duration {
				c.Duration = d
			}
		}
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.Backoff <= 0 {
		c.Retry.Backoff = c.Interval
	}
	return c, nil
}

// WindowLog is one monitoring window's record.
type WindowLog struct {
	// Time is the window end, offset from scenario start.
	Time time.Duration
	// Rates are the offered request rates during the window.
	Rates map[string]float64
	// RTSec are measured mean response times per application.
	RTSec map[string]float64
	// Watts is the measured mean system power.
	Watts float64
	// Utility is the window's accrued utility in dollars, including the
	// decision cost.
	Utility float64
	// CumUtility is the running total.
	CumUtility float64
	// Actions counts adaptation actions started this window (applied or
	// failed; retries count again).
	Actions int
	// Invoked reports whether the strategy's decision procedure ran.
	Invoked bool
	// SearchTime is the decision procedure's (simulated) duration.
	SearchTime time.Duration
	// ActiveHosts is the number of powered-on hosts at the window's end.
	ActiveHosts int
	// Degraded marks a window that absorbed a failure instead of aborting:
	// a decide/execute error, a strategy fallback, a failed or skipped
	// action, a host crash, or a dropped sensor window. DegradedReason
	// names every cause that struck, semicolon-joined in the order they
	// landed.
	Degraded       bool
	DegradedReason string
	// FailedActions counts actions an injected fault aborted this window.
	FailedActions int
	// Retried counts re-executions of previously failed actions.
	Retried int
	// HostCrashes counts hosts that crashed this window.
	HostCrashes int
	// SensorDropped marks the window's measurements as a stale replay.
	SensorDropped bool
	// RolledBack counts compensating steps executed this window after a
	// non-retryable failure aborted a plan under
	// testbed.RollbackOnFailure.
	RolledBack int
	// Compensated marks a window whose plan aborted and was rolled back;
	// FPRestored then reports whether the testbed's scheduled final
	// configuration fingerprint returned to its pre-plan value (the
	// transactional guarantee — always true unless the rollback engine
	// itself is broken).
	Compensated bool
	FPRestored  bool
	// GuardRejected marks a window whose proposed plan the guard refused;
	// GuardRule names the invariant that fired.
	GuardRejected bool
	GuardRule     string
}

// degrade marks the window degraded and appends the cause to its reason.
func (w *WindowLog) degrade(reason string) {
	w.Degraded = true
	if reason == "" {
		return
	}
	if w.DegradedReason != "" {
		w.DegradedReason += "; "
	}
	w.DegradedReason += reason
}

// Result is a completed scenario replay.
type Result struct {
	Strategy string
	Windows  []WindowLog
	// CumUtility is the total accrued utility (Fig. 9's endpoint).
	CumUtility float64
	// TotalActions counts all adaptation actions executed.
	TotalActions int
	// Invocations counts decision-procedure runs.
	Invocations int
	// DecideWall records each decision procedure's wall-clock (not
	// virtual) duration, in call order — the raw samples behind
	// mistral-sim's -bench-json latency percentiles. Wall time is
	// observational only; it never feeds back into decisions.
	DecideWall []time.Duration
	// MeanSearchTime averages SearchTime over invocations.
	MeanSearchTime time.Duration
	// TargetViolations counts app-windows whose measured RT missed the
	// target.
	TargetViolations int
	// ViolationsByApp breaks TargetViolations down per application.
	ViolationsByApp map[string]int
	// EnergyKWh is the total electrical energy drawn over the replay.
	EnergyKWh float64
	// HostHours integrates powered-on hosts over time.
	HostHours float64

	// Degradation accounting (all zero when no faults are injected and
	// every decision succeeds).

	// DegradedWindows counts windows that absorbed at least one failure.
	DegradedWindows int
	// DecideErrors counts decision procedures that returned an error or
	// panicked; the loop logs, counts, and carries on.
	DecideErrors int
	// ExecRejections counts plans the testbed rejected outright.
	ExecRejections int
	// FallbackDecisions counts decisions the strategy itself degraded.
	FallbackDecisions int
	// FailedActions counts actions aborted by injected faults.
	FailedActions int
	// SkippedActions counts plan steps skipped as infeasible after an
	// earlier injected failure.
	SkippedActions int
	// Retries counts re-executions of retryable failed actions.
	Retries int
	// HostCrashes counts injected host crashes.
	HostCrashes int
	// SensorDrops counts windows whose measurements were stale replays.
	SensorDrops int
	// RolledBackActions counts compensating steps executed under
	// testbed.RollbackOnFailure.
	RolledBackActions int
	// CompensatedPlans counts plans that aborted and rolled back.
	CompensatedPlans int
	// GuardRejections counts plans the admission guard refused.
	GuardRejections int
}

// MeanWatts is the time-averaged power draw over the replay.
func (r *Result) MeanWatts() float64 {
	if len(r.Windows) == 0 {
		return 0
	}
	var sum float64
	for _, w := range r.Windows {
		sum += w.Watts
	}
	return sum / float64(len(r.Windows))
}

// pendingRetry is a retryable failed action awaiting re-execution.
type pendingRetry struct {
	action  cluster.Action
	attempt int           // executions so far
	at      time.Duration // earliest re-execution time
}

// dueRetry returns the index of the first due retry (FIFO), or -1.
func dueRetry(q []pendingRetry, now time.Duration) int {
	for i, r := range q {
		if r.at <= now {
			return i
		}
	}
	return -1
}

// queueRetries re-queues the report's retryable failed steps with doubling
// backoff, dropping actions whose attempt budget is exhausted.
func queueRetries(q []pendingRetry, rep testbed.ExecReport, attempt int, now time.Duration, pol RetryPolicy) []pendingRetry {
	if pol.MaxAttempts < 0 {
		return q
	}
	if rep.Compensated {
		// The plan aborted as a transaction and the testbed already rolled
		// the applied prefix back: re-executing any of its steps — even
		// ones that failed retryably before the abort — would re-apply
		// fragments of a plan the cluster no longer reflects. The strategy
		// replans from the compensated configuration instead.
		return q
	}
	for _, st := range rep.Steps {
		if st.Status != testbed.StepFailed || !st.Retryable || attempt+1 > pol.MaxAttempts {
			continue
		}
		q = append(q, pendingRetry{
			action:  st.Action,
			attempt: attempt,
			at:      now + pol.Backoff<<(attempt-1),
		})
	}
	return q
}

// safeDecide shields the replay from a panicking decision procedure: the
// panic becomes an error and the loop degrades to no adaptation.
func safeDecide(d Decider, now time.Duration, cfg cluster.Config, rates map[string]float64) (dec Decision, err error) {
	defer func() {
		if r := recover(); r != nil {
			dec = Decision{}
			err = fmt.Errorf("decide panicked: %v", r)
		}
	}()
	return d.Decide(now, cfg, rates)
}

// Run replays the traces on the testbed under the decider's control. It is
// a thin loop over Engine.Step — batch replay is just the resumable engine
// driven to the trace horizon — and its behaviour (decision stream, Result,
// provenance records, error semantics) is byte-identical to the monolithic
// loop it replaced.
//
// The loop degrades rather than aborts: a decision error (or panic), a
// rejected plan, a failed or skipped action, a host crash, or a dropped
// sensor window marks that window Degraded, is counted on the Result, and
// the replay carries the reconciled testbed configuration into the next
// window so the strategy can replan against reality. Only infrastructure
// errors — invalid rates, a broken measurement pipeline — still abort, and
// even then the in-progress window (with its already-charged search cost)
// is recorded before returning.
func Run(tb *testbed.Testbed, d Decider, cfg RunConfig) (*Result, error) {
	e, err := NewEngine(tb, d, cfg)
	if err != nil {
		return nil, err
	}
	for !e.Done() {
		if _, err := e.Step(); err != nil {
			return e.Result(), err
		}
	}
	return e.Result(), e.Close()
}
