// Package scenario drives the paper's evaluation loop: it replays workload
// traces against a virtual testbed under the control of a strategy
// (Mistral or one of the baselines), measuring per-monitoring-window
// response times, power, accrued utility, and adaptation activity — the raw
// material of Figures 8–10 and Table I.
package scenario

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/par"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Decision is what a strategy returns for one control opportunity.
type Decision struct {
	// Invoked reports whether the strategy actually ran its decision
	// procedure this window.
	Invoked bool
	// Plan is the action sequence to execute (may be empty).
	Plan []cluster.Action
	// SearchTime is the decision procedure's (simulated) duration.
	SearchTime time.Duration
	// SearchCost is the dollar cost of the decision itself (controller
	// host power over SearchTime); charged against the window's utility.
	SearchCost float64
}

// Decider is a control strategy. Implementations: the Mistral hierarchy and
// the Perf-Pwr / Perf-Cost / Pwr-Cost baselines of §V-C.
type Decider interface {
	// Name labels the strategy in results.
	Name() string
	// Decide is called once per monitoring interval when the testbed is
	// not executing a previous plan.
	Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error)
	// RecordWindow feeds back each completed window's realized utility
	// (dollars) and its performance/power accrual rates (dollars/second).
	RecordWindow(utilityDollars, perfRate, pwrRate float64)
}

// RunConfig configures a scenario replay.
type RunConfig struct {
	// Traces drive each application's request rate.
	Traces workload.Set
	// Duration bounds the replay; zero uses the longest trace duration.
	Duration time.Duration
	// Interval is the unit monitoring interval M (default 2 minutes).
	Interval time.Duration
	// Utility computes window utilities (required).
	Utility *utility.Params
	// Workers records the evaluation concurrency the decider was built
	// with (see strategy.MistralConfig.Workers), purely for observability:
	// the replay loop itself is inherently sequential — each window's
	// decision depends on the previous window's testbed state — so the
	// value is exported as the scenario_workers gauge, not consumed here.
	Workers int
	// Obs overrides the process-default observer (obs.SetDefault) for the
	// replay loop's spans and window metrics; nil resolves the default.
	Obs *obs.Observer
}

func (c RunConfig) withDefaults() (RunConfig, error) {
	if len(c.Traces) == 0 {
		return c, fmt.Errorf("scenario: no traces")
	}
	if c.Utility == nil {
		return c, fmt.Errorf("scenario: utility params required")
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Minute
	}
	if c.Duration <= 0 {
		for _, tr := range c.Traces {
			if d := tr.Duration(); d > c.Duration {
				c.Duration = d
			}
		}
	}
	return c, nil
}

// WindowLog is one monitoring window's record.
type WindowLog struct {
	// Time is the window end, offset from scenario start.
	Time time.Duration
	// Rates are the offered request rates during the window.
	Rates map[string]float64
	// RTSec are measured mean response times per application.
	RTSec map[string]float64
	// Watts is the measured mean system power.
	Watts float64
	// Utility is the window's accrued utility in dollars, including the
	// decision cost.
	Utility float64
	// CumUtility is the running total.
	CumUtility float64
	// Actions counts adaptation actions started this window.
	Actions int
	// Invoked reports whether the strategy's decision procedure ran.
	Invoked bool
	// SearchTime is the decision procedure's (simulated) duration.
	SearchTime time.Duration
	// ActiveHosts is the number of powered-on hosts at the window's end.
	ActiveHosts int
}

// Result is a completed scenario replay.
type Result struct {
	Strategy string
	Windows  []WindowLog
	// CumUtility is the total accrued utility (Fig. 9's endpoint).
	CumUtility float64
	// TotalActions counts all adaptation actions executed.
	TotalActions int
	// Invocations counts decision-procedure runs.
	Invocations int
	// MeanSearchTime averages SearchTime over invocations.
	MeanSearchTime time.Duration
	// TargetViolations counts app-windows whose measured RT missed the
	// target.
	TargetViolations int
	// ViolationsByApp breaks TargetViolations down per application.
	ViolationsByApp map[string]int
	// EnergyKWh is the total electrical energy drawn over the replay.
	EnergyKWh float64
	// HostHours integrates powered-on hosts over time.
	HostHours float64
}

// MeanWatts is the time-averaged power draw over the replay.
func (r *Result) MeanWatts() float64 {
	if len(r.Windows) == 0 {
		return 0
	}
	var sum float64
	for _, w := range r.Windows {
		sum += w.Watts
	}
	return sum / float64(len(r.Windows))
}

// Run replays the traces on the testbed under the decider's control.
func Run(tb *testbed.Testbed, d Decider, cfg RunConfig) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{Strategy: d.Name(), ViolationsByApp: make(map[string]int)}
	var totalSearch time.Duration

	// Observability: the replay loop owns the root "decide" span of each
	// control opportunity, so controller-level children ("perfpwr",
	// "search") and testbed "action:*" events nest under it. All sinks are
	// nil-safe no-ops when observability is disabled.
	o := obs.Resolve(cfg.Obs)
	tr := o.Tracer()
	olog := o.Logger()
	cWindows := o.Counter("scenario_windows_total")
	cViolations := o.Counter("scenario_target_violations_total")
	hWindowUtil := o.Histogram("scenario_window_utility_dollars", []float64{-10, -1, -0.1, 0, 0.1, 1, 10})
	gCumUtil := o.Gauge("scenario_cum_utility_dollars")
	o.Gauge("scenario_workers").Set(float64(par.Workers(cfg.Workers)))

	for t := time.Duration(0); t < cfg.Duration; t += cfg.Interval {
		rates := cfg.Traces.At(t)
		if err := tb.SetRates(rates); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}

		log := WindowLog{Time: t + cfg.Interval, Rates: rates}

		// Invoke the strategy unless the testbed is still executing a
		// previously chosen plan.
		if !tb.Busy() {
			sp := tr.Start("decide", t, obs.Attr{Key: "strategy", Value: d.Name()})
			dec, err := d.Decide(t, tb.Config(), rates)
			if err != nil {
				sp.End(t)
				return nil, fmt.Errorf("scenario: %s at %v: %w", d.Name(), t, err)
			}
			if dec.Invoked {
				res.Invocations++
				totalSearch += dec.SearchTime
				log.Invoked = true
				log.SearchTime = dec.SearchTime
			}
			var planDur time.Duration
			if len(dec.Plan) > 0 {
				planDur, err = tb.Execute(dec.Plan)
				if err != nil {
					sp.End(t)
					return nil, fmt.Errorf("scenario: %s executing plan at %v: %w", d.Name(), t, err)
				}
				log.Actions = len(dec.Plan)
				res.TotalActions += len(dec.Plan)
			}
			// The root span covers the decision and the plan it launched:
			// search time and execution overlap on the virtual clock, so
			// the span ends when the longer of the two does.
			end := t + dec.SearchTime
			if pe := t + planDur; pe > end {
				end = pe
			}
			sp.End(end,
				obs.Attr{Key: "invoked", Value: dec.Invoked},
				obs.Attr{Key: "actions", Value: len(dec.Plan)},
				obs.Attr{Key: "search_cost", Value: dec.SearchCost})
			log.Utility -= dec.SearchCost
		}

		w, err := tb.MeasureWindow(t + cfg.Interval)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		log.RTSec = w.RTSec
		log.Watts = w.Watts

		perfRate := cfg.Utility.PerfRateAll(rates, w.RTSec)
		pwrRate := cfg.Utility.PowerRate(w.Watts)
		log.Utility += cfg.Interval.Seconds() * (perfRate + pwrRate)
		res.CumUtility += log.Utility
		log.CumUtility = res.CumUtility
		d.RecordWindow(log.Utility, perfRate, pwrRate)

		violationsBefore := res.TargetViolations
		for name, a := range cfg.Utility.Apps {
			if rates[name] > 0 && w.RTSec[name] > a.TargetRT.Seconds() {
				res.TargetViolations++
				res.ViolationsByApp[name]++
			}
		}
		cWindows.Inc()
		cViolations.Add(int64(res.TargetViolations - violationsBefore))
		hWindowUtil.Observe(log.Utility)
		gCumUtil.Set(res.CumUtility)
		olog.Info("window",
			"strategy", d.Name(),
			"t", log.Time,
			"watts", w.Watts,
			"utility", log.Utility,
			"cum_utility", res.CumUtility,
			"actions", log.Actions,
			"invoked", log.Invoked)
		log.ActiveHosts = tb.Config().NumActiveHosts()
		res.EnergyKWh += w.Watts * cfg.Interval.Hours() / 1000
		res.HostHours += float64(log.ActiveHosts) * cfg.Interval.Hours()
		res.Windows = append(res.Windows, log)
	}
	if res.Invocations > 0 {
		res.MeanSearchTime = totalSearch / time.Duration(res.Invocations)
	}
	return res, nil
}
