// Package scenario drives the paper's evaluation loop: it replays workload
// traces against a virtual testbed under the control of a strategy
// (Mistral or one of the baselines), measuring per-monitoring-window
// response times, power, accrued utility, and adaptation activity — the raw
// material of Figures 8–10 and Table I.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/slo"
	"github.com/mistralcloud/mistral/internal/par"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Decision is what a strategy returns for one control opportunity.
type Decision struct {
	// Invoked reports whether the strategy actually ran its decision
	// procedure this window.
	Invoked bool
	// Plan is the action sequence to execute (may be empty).
	Plan []cluster.Action
	// SearchTime is the decision procedure's (simulated) duration.
	SearchTime time.Duration
	// SearchCost is the dollar cost of the decision itself (controller
	// host power over SearchTime); charged against the window's utility.
	SearchCost float64
	// Degraded reports the strategy fell back to a no-adaptation decision
	// (evaluation error, search deadline) instead of failing outright;
	// DegradedReason names the failing stage and error.
	Degraded       bool
	DegradedReason string
	// Provs carries one flight-recorder entry per controller invocation
	// behind this decision, in controller order (the Mistral hierarchy can
	// run several 1st-level controllers in one opportunity). Nil unless the
	// decider was built with provenance enabled.
	Provs []*provenance.DecisionProv
}

// TraceAware is an optional Decider extension: a strategy implementing it
// receives each window's trace context before Decide, so its spans and
// provenance-adjacent attributes share the window's causal identity. The
// replay loop detects it by type assertion — the Decider interface itself
// (re-exported from the root package) is unchanged, and strategies that
// don't care never see it.
type TraceAware interface {
	SetTraceContext(tc obs.TraceContext)
}

// Decider is a control strategy. Implementations: the Mistral hierarchy and
// the Perf-Pwr / Perf-Cost / Pwr-Cost baselines of §V-C.
type Decider interface {
	// Name labels the strategy in results.
	Name() string
	// Decide is called once per monitoring interval when the testbed is
	// not executing a previous plan.
	Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error)
	// RecordWindow feeds back each completed window's realized utility
	// (dollars) and its performance/power accrual rates (dollars/second).
	RecordWindow(utilityDollars, perfRate, pwrRate float64)
}

// RunConfig configures a scenario replay.
type RunConfig struct {
	// Traces drive each application's request rate.
	Traces workload.Set
	// Duration bounds the replay; zero uses the longest trace duration.
	Duration time.Duration
	// Interval is the unit monitoring interval M (default 2 minutes).
	Interval time.Duration
	// Utility computes window utilities (required).
	Utility *utility.Params
	// Workers records the evaluation concurrency the decider was built
	// with (see strategy.MistralConfig.Workers), purely for observability:
	// the replay loop itself is inherently sequential — each window's
	// decision depends on the previous window's testbed state — so the
	// value is exported as the scenario_workers gauge, not consumed here.
	Workers int
	// Obs overrides the process-default observer (obs.SetDefault) for the
	// replay loop's spans and window metrics; nil resolves the default.
	Obs *obs.Observer
	// Fault optionally injects host crashes into the replay. It should be
	// the same injector the testbed was built with, so fault classes share
	// one seeded schedule. Nil injects nothing.
	Fault *fault.Injector
	// Retry bounds the re-execution of retryable failed actions.
	Retry RetryPolicy
	// Provenance, when non-nil, receives one flight-recorder Record per
	// monitoring window — including Busy windows (a previous plan still
	// executing) and Degraded windows (with their failure reason). The
	// recorder's first write error aborts the replay at the end of the run.
	// Nil — the default — records nothing and leaves the replay
	// byte-identical to an unrecorded one.
	Provenance *provenance.Recorder
	// SLO overrides the self-monitoring engine. Nil builds a default
	// engine whenever an observer is active (SLO state is observational
	// and deterministic under virtual time); with observability fully
	// off, no engine runs.
	SLO *slo.Engine
	// Profile, when non-nil, captures pprof artifacts for decide calls
	// that blow their wall-clock latency budget. Observational only.
	Profile *obs.Profiler
}

// RetryPolicy bounds retry-with-backoff for actions the fault plane failed
// transiently. It only matters when faults are injected.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions per action including
	// the first (default 3; negative disables retries).
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling per attempt
	// (default: one monitoring interval).
	Backoff time.Duration
}

func (c RunConfig) withDefaults() (RunConfig, error) {
	if len(c.Traces) == 0 {
		return c, fmt.Errorf("scenario: no traces")
	}
	if c.Utility == nil {
		return c, fmt.Errorf("scenario: utility params required")
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Minute
	}
	if c.Duration <= 0 {
		for _, tr := range c.Traces {
			if d := tr.Duration(); d > c.Duration {
				c.Duration = d
			}
		}
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.Backoff <= 0 {
		c.Retry.Backoff = c.Interval
	}
	return c, nil
}

// WindowLog is one monitoring window's record.
type WindowLog struct {
	// Time is the window end, offset from scenario start.
	Time time.Duration
	// Rates are the offered request rates during the window.
	Rates map[string]float64
	// RTSec are measured mean response times per application.
	RTSec map[string]float64
	// Watts is the measured mean system power.
	Watts float64
	// Utility is the window's accrued utility in dollars, including the
	// decision cost.
	Utility float64
	// CumUtility is the running total.
	CumUtility float64
	// Actions counts adaptation actions started this window (applied or
	// failed; retries count again).
	Actions int
	// Invoked reports whether the strategy's decision procedure ran.
	Invoked bool
	// SearchTime is the decision procedure's (simulated) duration.
	SearchTime time.Duration
	// ActiveHosts is the number of powered-on hosts at the window's end.
	ActiveHosts int
	// Degraded marks a window that absorbed a failure instead of aborting:
	// a decide/execute error, a strategy fallback, a failed or skipped
	// action, a host crash, or a dropped sensor window. DegradedReason
	// names every cause that struck, semicolon-joined in the order they
	// landed.
	Degraded       bool
	DegradedReason string
	// FailedActions counts actions an injected fault aborted this window.
	FailedActions int
	// Retried counts re-executions of previously failed actions.
	Retried int
	// HostCrashes counts hosts that crashed this window.
	HostCrashes int
	// SensorDropped marks the window's measurements as a stale replay.
	SensorDropped bool
}

// degrade marks the window degraded and appends the cause to its reason.
func (w *WindowLog) degrade(reason string) {
	w.Degraded = true
	if reason == "" {
		return
	}
	if w.DegradedReason != "" {
		w.DegradedReason += "; "
	}
	w.DegradedReason += reason
}

// Result is a completed scenario replay.
type Result struct {
	Strategy string
	Windows  []WindowLog
	// CumUtility is the total accrued utility (Fig. 9's endpoint).
	CumUtility float64
	// TotalActions counts all adaptation actions executed.
	TotalActions int
	// Invocations counts decision-procedure runs.
	Invocations int
	// DecideWall records each decision procedure's wall-clock (not
	// virtual) duration, in call order — the raw samples behind
	// mistral-sim's -bench-json latency percentiles. Wall time is
	// observational only; it never feeds back into decisions.
	DecideWall []time.Duration
	// MeanSearchTime averages SearchTime over invocations.
	MeanSearchTime time.Duration
	// TargetViolations counts app-windows whose measured RT missed the
	// target.
	TargetViolations int
	// ViolationsByApp breaks TargetViolations down per application.
	ViolationsByApp map[string]int
	// EnergyKWh is the total electrical energy drawn over the replay.
	EnergyKWh float64
	// HostHours integrates powered-on hosts over time.
	HostHours float64

	// Degradation accounting (all zero when no faults are injected and
	// every decision succeeds).

	// DegradedWindows counts windows that absorbed at least one failure.
	DegradedWindows int
	// DecideErrors counts decision procedures that returned an error or
	// panicked; the loop logs, counts, and carries on.
	DecideErrors int
	// ExecRejections counts plans the testbed rejected outright.
	ExecRejections int
	// FallbackDecisions counts decisions the strategy itself degraded.
	FallbackDecisions int
	// FailedActions counts actions aborted by injected faults.
	FailedActions int
	// SkippedActions counts plan steps skipped as infeasible after an
	// earlier injected failure.
	SkippedActions int
	// Retries counts re-executions of retryable failed actions.
	Retries int
	// HostCrashes counts injected host crashes.
	HostCrashes int
	// SensorDrops counts windows whose measurements were stale replays.
	SensorDrops int
}

// MeanWatts is the time-averaged power draw over the replay.
func (r *Result) MeanWatts() float64 {
	if len(r.Windows) == 0 {
		return 0
	}
	var sum float64
	for _, w := range r.Windows {
		sum += w.Watts
	}
	return sum / float64(len(r.Windows))
}

// pendingRetry is a retryable failed action awaiting re-execution.
type pendingRetry struct {
	action  cluster.Action
	attempt int           // executions so far
	at      time.Duration // earliest re-execution time
}

// dueRetry returns the index of the first due retry (FIFO), or -1.
func dueRetry(q []pendingRetry, now time.Duration) int {
	for i, r := range q {
		if r.at <= now {
			return i
		}
	}
	return -1
}

// queueRetries re-queues the report's retryable failed steps with doubling
// backoff, dropping actions whose attempt budget is exhausted.
func queueRetries(q []pendingRetry, rep testbed.ExecReport, attempt int, now time.Duration, pol RetryPolicy) []pendingRetry {
	if pol.MaxAttempts < 0 {
		return q
	}
	for _, st := range rep.Steps {
		if st.Status != testbed.StepFailed || !st.Retryable || attempt+1 > pol.MaxAttempts {
			continue
		}
		q = append(q, pendingRetry{
			action:  st.Action,
			attempt: attempt,
			at:      now + pol.Backoff<<(attempt-1),
		})
	}
	return q
}

// safeDecide shields the replay from a panicking decision procedure: the
// panic becomes an error and the loop degrades to no adaptation.
func safeDecide(d Decider, now time.Duration, cfg cluster.Config, rates map[string]float64) (dec Decision, err error) {
	defer func() {
		if r := recover(); r != nil {
			dec = Decision{}
			err = fmt.Errorf("decide panicked: %v", r)
		}
	}()
	return d.Decide(now, cfg, rates)
}

// Run replays the traces on the testbed under the decider's control.
//
// The loop degrades rather than aborts: a decision error (or panic), a
// rejected plan, a failed or skipped action, a host crash, or a dropped
// sensor window marks that window Degraded, is counted on the Result, and
// the replay carries the reconciled testbed configuration into the next
// window so the strategy can replan against reality. Only infrastructure
// errors — invalid rates, a broken measurement pipeline — still abort, and
// even then the in-progress window (with its already-charged search cost)
// is recorded before returning.
func Run(tb *testbed.Testbed, d Decider, cfg RunConfig) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{Strategy: d.Name(), ViolationsByApp: make(map[string]int)}
	var totalSearch time.Duration
	var retries []pendingRetry

	// Observability: the replay loop owns the root "decide" span of each
	// control opportunity, so controller-level children ("perfpwr",
	// "search") and testbed "action:*" events nest under it. All sinks are
	// nil-safe no-ops when observability is disabled.
	o := obs.Resolve(cfg.Obs)
	tr := o.Tracer()
	olog := o.Logger()
	cWindows := o.Counter("scenario_windows_total")
	cViolations := o.Counter("scenario_target_violations_total")
	cDecideErr := o.Counter("scenario_decide_errors_total")
	cDegraded := o.Counter("scenario_degraded_windows_total")
	cFailedActions := o.Counter("scenario_failed_actions_total")
	cRetries := o.Counter("scenario_retries_total")
	cExecRej := o.Counter("scenario_exec_rejections_total")
	cCrashes := o.Counter("scenario_host_crashes_total")
	hWindowUtil := o.Histogram("scenario_window_utility_dollars", []float64{-10, -1, -0.1, 0, 0.1, 1, 10})
	gCumUtil := o.Gauge("scenario_cum_utility_dollars")
	o.Gauge("scenario_workers").Set(float64(par.Workers(cfg.Workers)))

	// Causal identity: each window gets a deterministic trace context
	// (obs.WindowTrace) shared by spans, SLO alerts, the ops plane, and —
	// by recomputation from Record.Window — provenance. The SLO engine
	// defaults on whenever an observer is active; it reads only
	// virtual-time quantities, so its state is deterministic and the
	// decision stream is untouched.
	var reg *obs.Registry
	if o != nil {
		reg = o.Metrics
	}
	eng := cfg.SLO
	if eng == nil && o != nil {
		eng = slo.New(slo.Config{Interval: cfg.Interval}, o)
	}
	ops := o.OpsState()
	ops.BeginRun(d.Name(), cfg.Interval)
	ta, _ := d.(TraceAware)

	// countExec folds one ExecReport into the window and result totals and
	// queues retryable failures. attempt is how many times the report's
	// actions have now been executed.
	countExec := func(log *WindowLog, rep testbed.ExecReport, attempt int, now time.Duration) {
		log.Actions += rep.Started()
		res.TotalActions += rep.Started()
		if rep.Failed > 0 {
			log.FailedActions += rep.Failed
			res.FailedActions += rep.Failed
			cFailedActions.Add(int64(rep.Failed))
			log.degrade(fmt.Sprintf("%d action(s) failed", rep.Failed))
			retries = queueRetries(retries, rep, attempt, now, cfg.Retry)
		}
		if rep.Skipped > 0 {
			res.SkippedActions += rep.Skipped
			log.degrade(fmt.Sprintf("%d action(s) skipped", rep.Skipped))
		}
	}

	// record emits one provenance record for a completed (or aborted)
	// window; window indices count every window, busy ones included. The
	// same index seeds the window's trace context, so provenance readers
	// recover the trace ID with obs.TraceID(Record.Window) — no new
	// serialized field, no byte-level drift.
	winIdx := 0
	record := func(log *WindowLog, busy bool, searchCost float64, provs []*provenance.DecisionProv) {
		if !cfg.Provenance.Enabled() {
			return
		}
		// Append's first error is sticky on the recorder and surfaced when
		// the replay ends; the replay itself never aborts mid-window over a
		// provenance write.
		_ = cfg.Provenance.Append(&provenance.Record{
			Window:            winIdx,
			TimeSec:           log.Time.Seconds(),
			Strategy:          res.Strategy,
			Invoked:           log.Invoked,
			Busy:              busy,
			Degraded:          log.Degraded,
			DegradedReason:    log.DegradedReason,
			Actions:           log.Actions,
			SearchTimeSec:     log.SearchTime.Seconds(),
			SearchCostDollars: searchCost,
			UtilityDollars:    log.Utility,
			CumUtilityDollars: log.CumUtility,
			Watts:             log.Watts,
			Decisions:         provs,
		})
	}

	for t := time.Duration(0); t < cfg.Duration; t, winIdx = t+cfg.Interval, winIdx+1 {
		rates := cfg.Traces.At(t)
		if err := tb.SetRates(rates); err != nil {
			return res, fmt.Errorf("scenario: %w", err)
		}

		log := WindowLog{Time: t + cfg.Interval, Rates: rates}

		// The window's causal identity: spans, alerts, ops entries, and
		// log lines below all carry tc's trace ID, and the provenance
		// record's Window field pins the same identity.
		tc := obs.WindowTrace(winIdx)
		if tr != nil {
			if ta != nil {
				ta.SetTraceContext(tc)
			}
			tb.SetTrace(tc)
		}

		// Host crashes land first, and only while no plan is in flight (so
		// executing phases stay consistent): the strategy plans against the
		// post-crash configuration.
		if cfg.Fault.Enabled() && !tb.Busy() {
			for _, h := range cfg.Fault.HostCrashes(tb.Config().ActiveHosts(), cfg.Interval) {
				rep, err := tb.CrashHost(h)
				if err != nil {
					olog.Warn("host crash not applied", "host", h, "err", err)
					continue
				}
				log.HostCrashes++
				log.degrade("host crash: " + h)
				res.HostCrashes++
				cCrashes.Inc()
				olog.Warn("host crashed",
					"host", h,
					"displaced", len(rep.Displaced),
					"stranded", len(rep.Stranded),
					"recovery", rep.Recovery)
			}
		}

		// Re-execute one due retry per window while idle; if its recovery
		// phase occupies the testbed, the decision naturally defers to the
		// next window via the Busy check below.
		if !tb.Busy() {
			if i := dueRetry(retries, t); i >= 0 {
				rt := retries[i]
				retries = append(retries[:i], retries[i+1:]...)
				res.Retries++
				cRetries.Inc()
				log.Retried++
				log.degrade(fmt.Sprintf("retry of failed %s", rt.action.Kind))
				tr.Event("retry", t, t, tc.Attr(),
					obs.Attr{Key: "span", Value: tc.SpanID("retry", fmt.Sprint(rt.action.Kind))},
					obs.Attr{Key: "kind", Value: fmt.Sprint(rt.action.Kind)},
					obs.Attr{Key: "attempt", Value: rt.attempt + 1})
				rep, err := tb.Execute([]cluster.Action{rt.action})
				if err != nil {
					// The cluster moved on (host crashed, VM re-placed);
					// the action no longer applies. Abandon it.
					olog.Warn("retry rejected", "kind", rt.action.Kind, "err", err)
				} else {
					countExec(&log, rep, rt.attempt+1, t)
				}
			}
		}

		// Invoke the strategy unless the testbed is still executing a
		// previously chosen plan.
		busy := tb.Busy()
		var searchCost float64
		var provs []*provenance.DecisionProv
		var decideWall time.Duration
		decideErred := false
		if !busy {
			sp := tr.Start("decide", t,
				obs.Attr{Key: "strategy", Value: d.Name()},
				tc.Attr(),
				obs.Attr{Key: "span", Value: tc.SpanID("decide")})
			cfg.Profile.BeginDecide(winIdx)
			wallT0 := time.Now()
			dec, err := safeDecide(d, t, tb.Config(), rates)
			decideWall = time.Since(wallT0)
			res.DecideWall = append(res.DecideWall, decideWall)
			if paths := cfg.Profile.EndDecide(winIdx, decideWall); len(paths) > 0 {
				olog.Warn("decide blew latency budget; pprof captured",
					"trace", tc.ID(), "wall", decideWall,
					"budget", cfg.Profile.Budget(), "artifacts", paths)
			}
			if err != nil {
				decideErred = true
				sp.End(t, obs.Attr{Key: "error", Value: err.Error()})
				olog.Warn("decide failed; degrading to no adaptation",
					"strategy", d.Name(), "t", t, "err", err)
				res.DecideErrors++
				cDecideErr.Inc()
				log.degrade("decide: " + err.Error())
			} else {
				provs = dec.Provs
				if dec.Invoked {
					res.Invocations++
					totalSearch += dec.SearchTime
					log.Invoked = true
					log.SearchTime = dec.SearchTime
					searchCost = dec.SearchCost
				}
				if dec.Degraded {
					reason := dec.DegradedReason
					if reason == "" {
						reason = "strategy fallback"
					}
					log.degrade(reason)
					res.FallbackDecisions++
				}
				var planDur time.Duration
				if len(dec.Plan) > 0 {
					rep, err := tb.Execute(dec.Plan)
					if err != nil {
						// The whole plan was rejected — typically stale
						// against a crash-reconciled configuration. Replan
						// next window.
						olog.Warn("plan rejected", "strategy", d.Name(), "t", t, "err", err)
						res.ExecRejections++
						cExecRej.Inc()
						log.degrade("plan rejected: " + err.Error())
					} else {
						planDur = rep.Duration
						countExec(&log, rep, 1, t)
					}
				}
				// The root span covers the decision and the plan it launched:
				// search time and execution overlap on the virtual clock, so
				// the span ends when the longer of the two does.
				end := t + dec.SearchTime
				if pe := t + planDur; pe > end {
					end = pe
				}
				sp.End(end,
					obs.Attr{Key: "invoked", Value: dec.Invoked},
					obs.Attr{Key: "actions", Value: len(dec.Plan)},
					obs.Attr{Key: "search_cost", Value: dec.SearchCost})
				log.Utility -= dec.SearchCost
			}
		}

		w, err := tb.MeasureWindow(t + cfg.Interval)
		if err != nil {
			// Record the in-progress window — its search cost is already
			// charged — before surfacing the error.
			res.CumUtility += log.Utility
			log.CumUtility = res.CumUtility
			log.ActiveHosts = tb.Config().NumActiveHosts()
			log.degrade("measure: " + err.Error())
			res.Windows = append(res.Windows, log)
			record(&log, busy, searchCost, provs)
			if res.Invocations > 0 {
				res.MeanSearchTime = totalSearch / time.Duration(res.Invocations)
			}
			return res, fmt.Errorf("scenario: %w", err)
		}
		log.RTSec = w.RTSec
		log.Watts = w.Watts
		if w.SensorDropped {
			log.SensorDropped = true
			log.degrade("sensor window dropped")
			res.SensorDrops++
		}

		perfRate := cfg.Utility.PerfRateAll(rates, w.RTSec)
		pwrRate := cfg.Utility.PowerRate(w.Watts)
		log.Utility += cfg.Interval.Seconds() * (perfRate + pwrRate)
		res.CumUtility += log.Utility
		log.CumUtility = res.CumUtility
		d.RecordWindow(log.Utility, perfRate, pwrRate)

		violationsBefore := res.TargetViolations
		for name, a := range cfg.Utility.Apps {
			if rates[name] > 0 && w.RTSec[name] > a.TargetRT.Seconds() {
				res.TargetViolations++
				res.ViolationsByApp[name]++
			}
		}
		if log.Degraded {
			res.DegradedWindows++
			cDegraded.Inc()
			olog.Warn("window degraded",
				"strategy", d.Name(),
				"t", log.Time,
				"reason", log.DegradedReason)
		}
		cWindows.Inc()
		cViolations.Add(int64(res.TargetViolations - violationsBefore))
		hWindowUtil.ObserveExemplar(log.Utility, tc.ID())
		gCumUtil.Set(res.CumUtility)
		olog.Info("window",
			"strategy", d.Name(),
			"trace", tc.ID(),
			"t", log.Time,
			"watts", w.Watts,
			"utility", log.Utility,
			"cum_utility", res.CumUtility,
			"actions", log.Actions,
			"invoked", log.Invoked,
			"degraded", log.Degraded)
		log.ActiveHosts = tb.Config().NumActiveHosts()
		res.EnergyKWh += w.Watts * cfg.Interval.Hours() / 1000
		res.HostHours += float64(log.ActiveHosts) * cfg.Interval.Hours()
		res.Windows = append(res.Windows, log)
		record(&log, busy, searchCost, provs)

		// Self-monitoring: the SLO engine folds the window's virtual-time
		// facts in; any alerts surface on the log with the window's trace
		// ID, and the ops plane gets the refreshed health snapshot.
		if eng != nil {
			alerts := eng.ObserveWindow(slo.WindowObs{
				Window:      winIdx,
				Time:        log.Time,
				Invoked:     log.Invoked,
				Degraded:    log.Degraded,
				SearchTime:  log.SearchTime,
				Retries:     log.Retried,
				CacheHits:   reg.CounterValue("eval_cache_hits_total"),
				CacheMisses: reg.CounterValue("eval_cache_misses_total"),
			})
			for _, a := range alerts {
				olog.Warn("slo alert",
					"objective", a.Objective,
					"severity", a.Severity,
					"trace", a.Trace,
					"msg", a.Message)
			}
		}
		if ops != nil {
			ops.RecordWindow(obs.OpsWindow{
				Window:        winIdx,
				Trace:         tc.ID(),
				TimeSec:       log.Time.Seconds(),
				CumUtility:    res.CumUtility,
				Degraded:      log.Degraded,
				Error:         decideErred,
				Retries:       log.Retried,
				Crashes:       log.HostCrashes,
				WallMS:        float64(decideWall.Microseconds()) / 1000,
				SearchTimeSec: log.SearchTime.Seconds(),
			})
			if eng != nil {
				if raw, err := json.Marshal(eng.Snapshot()); err == nil {
					ops.SetSLO(raw)
				}
			}
		}
	}
	if res.Invocations > 0 {
		res.MeanSearchTime = totalSearch / time.Duration(res.Invocations)
	}
	if err := cfg.Provenance.Err(); err != nil {
		return res, fmt.Errorf("scenario: %w", err)
	}
	return res, nil
}
