package scenario_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
)

// ckEnv is one independently constructed replay environment — its own lab,
// testbed, strategy, observer registry, and provenance sink — standing in
// for a separate process.
type ckEnv struct {
	engine *scenario.Engine
	prov   *bytes.Buffer
	hist   *tsdb.Store
}

func newCkEnv(t *testing.T, workers int) *ckEnv {
	t.Helper()
	lab, err := experiments.NewLab(experiments.LabOptions{NumApps: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := lab.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := strategy.NewMistral(eval, strategy.MistralConfig{
		HostGroups:         lab.HostGroups(),
		MonitoringInterval: lab.Util.MonitoringInterval,
		Workers:            workers,
		Provenance:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := &bytes.Buffer{}
	// A fresh metrics registry per environment: the restore path must
	// re-seat the cumulative counters the SLO engine diffs, exactly as a
	// restarted process would have to.
	ob := &obs.Observer{Metrics: obs.NewRegistry(), History: tsdb.New(tsdb.Options{})}
	e, err := scenario.NewEngine(tb, dec, scenario.RunConfig{
		Traces:     lab.Traces,
		Duration:   100 * lab.Util.MonitoringInterval,
		Interval:   lab.Util.MonitoringInterval,
		Utility:    lab.Util,
		Workers:    workers,
		Obs:        ob,
		Provenance: provenance.NewRecorder(buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &ckEnv{engine: e, prov: buf, hist: ob.History}
}

// histQueryJSON renders a raw-resolution trend query over the full window
// range for a fixed set of virtual series. Wall-clock series are excluded:
// they are observational and never identical across runs.
func histQueryJSON(t *testing.T, hist *tsdb.Store) []byte {
	t.Helper()
	resp, err := hist.Query([]string{"utility", "watts", "expansions", "guard_rejected"}, 0, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func stepN(t *testing.T, e *scenario.Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", e.WindowIndex(), err)
		}
	}
}

// resultJSON finalizes and serializes a result with the wall-clock decide
// samples stripped — they are the one observational field that legitimately
// differs between runs.
func resultJSON(t *testing.T, e *scenario.Engine) []byte {
	t.Helper()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	res := *e.Result()
	res.DecideWall = nil
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func sloJSON(t *testing.T, e *scenario.Engine) []byte {
	t.Helper()
	raw, err := json.Marshal(e.SLO().Persist())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCheckpointRoundTripDeterminism is the resumable engine's hard
// compatibility bar: a 100-window fixed-seed run and a checkpoint-at-50 +
// restore-into-a-fresh-environment run must produce byte-identical
// decisions, provenance streams, and SLO state. The checkpoint crosses a
// JSON serialization boundary, as it would a process boundary.
func TestCheckpointRoundTripDeterminism(t *testing.T) {
	for _, workers := range []int{0, 1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			full := newCkEnv(t, workers)
			stepN(t, full.engine, 100)

			half := newCkEnv(t, workers)
			stepN(t, half.engine, 50)
			snap, err := half.engine.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ckBytes, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}

			resumed := newCkEnv(t, workers)
			var restored scenario.Snapshot
			if err := json.Unmarshal(ckBytes, &restored); err != nil {
				t.Fatal(err)
			}
			if err := resumed.engine.Restore(&restored); err != nil {
				t.Fatal(err)
			}
			if got := resumed.engine.WindowIndex(); got != 50 {
				t.Fatalf("restored engine at window %d, want 50", got)
			}
			stepN(t, resumed.engine, 50)

			fullRes, resumedRes := resultJSON(t, full.engine), resultJSON(t, resumed.engine)
			if !bytes.Equal(fullRes, resumedRes) {
				t.Errorf("results diverge after restore:\nfull:    %s\nresumed: %s", fullRes, resumedRes)
			}

			cat := append(append([]byte(nil), half.prov.Bytes()...), resumed.prov.Bytes()...)
			if !bytes.Equal(full.prov.Bytes(), cat) {
				t.Errorf("provenance streams diverge: full %d bytes, pre+post-restore %d bytes",
					full.prov.Len(), len(cat))
			}

			if fullSLO, resumedSLO := sloJSON(t, full.engine), sloJSON(t, resumed.engine); !bytes.Equal(fullSLO, resumedSLO) {
				t.Errorf("SLO state diverges after restore:\nfull:    %s\nresumed: %s", fullSLO, resumedSLO)
			}

			// The trend API must answer identically across the restore
			// boundary: the same /v1/query over the overlapping window range
			// returns byte-identical virtual series from either engine.
			if fullHist, resumedHist := histQueryJSON(t, full.hist), histQueryJSON(t, resumed.hist); !bytes.Equal(fullHist, resumedHist) {
				t.Errorf("history query diverges after restore:\nfull:    %s\nresumed: %s", fullHist, resumedHist)
			}
		})
	}
}

// TestCheckpointMismatchRejected exercises the restore guard rails: wrong
// schema, wrong strategy, and a fault-plane mismatch must all fail cleanly
// instead of silently resuming into a different environment.
func TestCheckpointMismatchRejected(t *testing.T) {
	env := newCkEnv(t, 1)
	stepN(t, env.engine, 2)
	snap, err := env.engine.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh := newCkEnv(t, 1)

	bad := *snap
	bad.Schema = "mistral.checkpoint/v0"
	if err := fresh.engine.Restore(&bad); err == nil {
		t.Error("schema mismatch accepted")
	}

	bad = *snap
	bad.Strategy = "Perf-Pwr"
	if err := fresh.engine.Restore(&bad); err == nil {
		t.Error("strategy mismatch accepted")
	}

	// The checkpoint was taken without fault injection; an engine restoring
	// it must refuse a snapshot that claims fault-plane state (and vice
	// versa) — they were produced by a differently wired environment.
	bad = *snap
	bad.Fault = &fault.State{}
	if err := fresh.engine.Restore(&bad); err == nil {
		t.Error("fault-plane mismatch accepted")
	}
}
