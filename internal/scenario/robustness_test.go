package scenario

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/guard"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// setupExec mirrors setupFaulty with an explicit execution policy.
func setupExec(t *testing.T, opts fault.Options, exec testbed.ExecPolicy) (*testbed.Testbed, *utility.Params, workload.Set, *fault.Injector) {
	t.Helper()
	apps := []*app.Spec{app.RUBiS("rubis1")}
	hosts := []cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1")}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, map[string]float64{"rubis1": 50}, "rubis1"); err != nil {
		t.Fatal(err)
	}
	traces := workload.Set{"rubis1": &workload.Trace{
		Step: time.Minute,
		Rates: func() []float64 {
			r := make([]float64, 31)
			for i := range r {
				r[i] = 30
			}
			return r
		}(),
	}}
	inj := fault.New(opts)
	tb, err := testbed.New(cat, apps, cfg, traces.At(0), nil, testbed.Options{Seed: 1, Fault: inj, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	return tb, utility.PaperParams([]string{"rubis1"}), traces, inj
}

// twoStep plans two CPU bumps per window (on the first two active VMs), so
// a terminal failure on the second step leaves an applied prefix for the
// rollback to compensate.
type twoStep struct{ scripted }

func (d *twoStep) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	d.calls++
	vms := cfg.ActiveVMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	var plan []cluster.Action
	for _, vm := range vms[:2] {
		kind := cluster.ActionIncreaseCPU
		if p, _ := cfg.PlacementOf(vm); p.CPUPct > 40 {
			kind = cluster.ActionDecreaseCPU
		}
		plan = append(plan, cluster.Action{Kind: kind, VM: vm, DeltaCPUPct: 10})
	}
	return Decision{Invoked: true, Plan: plan}, nil
}

func TestRunRollbackCompensatesPlans(t *testing.T) {
	tb, util, traces, inj := setupExec(t, fault.Options{
		Seed:              11,
		ActionFailRate:    0.5,
		RetryableFraction: -1, // every failure terminal
	}, testbed.RollbackOnFailure)
	d := &twoStep{scripted{name: "twostep"}}
	res, err := Run(tb, d, RunConfig{
		Traces: traces, Duration: 30 * time.Minute, Utility: util, Fault: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompensatedPlans == 0 {
		t.Fatal("no plan was compensated at a 50% terminal-failure rate")
	}
	if res.RolledBackActions == 0 {
		t.Fatal("no compensating step executed; every abort hit the first step")
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d under all-terminal failures, want 0", res.Retries)
	}
	var rolled, compensated int
	for _, w := range res.Windows {
		if w.Compensated {
			compensated++
			if !w.FPRestored {
				t.Fatalf("window %v compensated without restoring the fingerprint", w.Time)
			}
			if !w.Degraded {
				t.Errorf("window %v compensated but not marked degraded", w.Time)
			}
		}
		rolled += w.RolledBack
	}
	if rolled != res.RolledBackActions {
		t.Errorf("window rollback ledger (%d) disagrees with RolledBackActions (%d)", rolled, res.RolledBackActions)
	}
	if compensated != res.CompensatedPlans {
		t.Errorf("compensated windows (%d) disagree with CompensatedPlans (%d)", compensated, res.CompensatedPlans)
	}
}

// TestRollbackDeterminismAcrossWorkers: the rollback path draws from the
// same fault stream regardless of evaluation concurrency, so the whole
// replay — windows, compensations, fingerprints — is worker-invariant.
func TestRollbackDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		tb, util, traces, inj := setupExec(t, fault.Options{
			Seed:              11,
			ActionFailRate:    0.5,
			RetryableFraction: -1,
		}, testbed.RollbackOnFailure)
		d := &twoStep{scripted{name: "twostep"}}
		res, err := Run(tb, d, RunConfig{
			Traces: traces, Duration: 30 * time.Minute, Utility: util,
			Fault: inj, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.DecideWall = nil // wall-clock, legitimately varies
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(0), run(1)
	if !bytes.Equal(a, b) {
		t.Fatalf("rollback replay diverged across workers:\n%s\n%s", a, b)
	}
}

// TestQueueRetriesSkipsCompensatedPlans pins the retry/rollback contract
// directly: a compensated report queues nothing, even for steps that
// failed retryably before the abort.
func TestQueueRetriesSkipsCompensatedPlans(t *testing.T) {
	rep := testbed.ExecReport{
		Compensated: true,
		Steps: []testbed.StepReport{
			{Action: cluster.Action{Kind: cluster.ActionIncreaseCPU, VM: "v"}, Status: testbed.StepFailed, Retryable: true},
		},
	}
	pol := RetryPolicy{MaxAttempts: 3, Backoff: time.Minute}
	if q := queueRetries(nil, rep, 1, 0, pol); len(q) != 0 {
		t.Fatalf("compensated plan queued %d retries", len(q))
	}
	rep.Compensated = false
	if q := queueRetries(nil, rep, 1, 0, pol); len(q) != 1 {
		t.Fatalf("uncompensated retryable failure queued %d retries, want 1", len(q))
	}
}

// rejectAll is a decider whose every plan trips the guard (unknown VM).
type rejectAll struct{ scripted }

func (d *rejectAll) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	d.calls++
	return Decision{Invoked: true, Plan: []cluster.Action{{Kind: cluster.ActionMigrate, VM: "no-such-vm", Host: "h0"}}}, nil
}

func TestRunGuardRejectionsAndBreaker(t *testing.T) {
	tb, util, traces, cat := setup(t)
	g := guard.New(guard.Config{BreakerThreshold: 3, BreakerCooldown: 100}, cat)
	d := &rejectAll{scripted{name: "rejected"}}
	var buf bytes.Buffer
	rec := provenance.NewRecorder(&buf)
	res, err := Run(tb, d, RunConfig{
		Traces: traces, Duration: 30 * time.Minute, Utility: util,
		Guard: g, Provenance: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardRejections != len(res.Windows) {
		t.Errorf("guard rejected %d of %d windows, want all", res.GuardRejections, len(res.Windows))
	}
	for i, w := range res.Windows {
		if !w.GuardRejected || !w.Degraded {
			t.Fatalf("window %d not marked guard-rejected+degraded: %+v", i, w)
		}
	}
	// Every rejected window is degraded, so the breaker trips at the
	// threshold and stays open through the long cooldown; later windows
	// are rejected by the breaker itself, before plan validation runs.
	if res.Windows[0].GuardRule != "invalid-plan" {
		t.Errorf("first rejection rule %q, want invalid-plan", res.Windows[0].GuardRule)
	}
	last := res.Windows[len(res.Windows)-1]
	if last.GuardRule != "breaker-open" {
		t.Errorf("final rejection rule %q, want breaker-open", last.GuardRule)
	}
	if g.Breaker() != guard.BreakerOpen {
		t.Errorf("breaker = %v at end, want open", g.Breaker())
	}
	admitted, rejected, opens := g.Stats()
	if admitted != 0 || rejected != int64(len(res.Windows)) || opens != 1 {
		t.Errorf("guard stats admitted/rejected/opens = %d/%d/%d, want 0/%d/1", admitted, rejected, opens, len(res.Windows))
	}
	// The verdicts ride the provenance stream.
	recs, err := provenance.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Windows) {
		t.Fatalf("provenance records = %d, windows = %d", len(recs), len(res.Windows))
	}
	for i, r := range recs {
		if r.Guard == nil {
			t.Fatalf("record %d has no guard verdict", i)
		}
		if r.Guard.Allowed {
			t.Fatalf("record %d guard verdict allowed, want rejected", i)
		}
	}
	if recs[len(recs)-1].Guard.Breaker != "open" {
		t.Errorf("final record breaker %q, want open", recs[len(recs)-1].Guard.Breaker)
	}
}

// TestRunStepProvenanceSurfacesSkipCauses: with the per-step flight
// recorder on, a failed step and its abandoned dependents land in the
// window record with status and cause.
func TestRunStepProvenanceSurfacesSkipCauses(t *testing.T) {
	tb, util, traces, inj := setupExec(t, fault.Options{
		Seed:              4,
		ActionFailRate:    1,
		RetryableFraction: -1,
	}, testbed.RollbackOnFailure)
	d := &twoStep{scripted{name: "twostep"}}
	var buf bytes.Buffer
	rec := provenance.NewRecorder(&buf)
	_, err := Run(tb, d, RunConfig{
		Traces: traces, Duration: 10 * time.Minute, Utility: util,
		Fault: inj, Provenance: rec, StepProvenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := provenance.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sawFailed, sawSkipped bool
	for _, r := range recs {
		for _, st := range r.Steps {
			switch st.Status {
			case "failed":
				sawFailed = true
				if st.Err == "" {
					t.Fatalf("failed step without cause: %+v", st)
				}
			case "skipped":
				sawSkipped = true
				if st.Err == "" {
					t.Fatalf("skipped step without cause: %+v", st)
				}
			}
		}
	}
	if !sawFailed || !sawSkipped {
		t.Fatalf("step provenance missed outcomes: failed=%v skipped=%v", sawFailed, sawSkipped)
	}
}
