package scenario

import (
	"time"

	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
)

// The telemetry history plane: every completed window folds a canonical
// sample set into the engine's tsdb store, keyed by window index. The
// fold reads only values already computed for the window log, the
// provenance record, and the registry, so decisions, provenance bytes,
// and stdout are untouched — history is a pure observer.
//
// Series classes follow the checkpoint discipline: everything below is
// ClassVirtual (deterministic at a fixed seed and worker setting; the
// expansion/cache counters additionally depend on the worker setting,
// like the SLO engine's cache objective always has) except
// decide_wall_ms, which is explicitly ClassWall.

// opsSparkN is how many trailing raw values the /ops history digests
// carry as sparkline vectors.
const opsSparkN = 32

// monitoredSeries are the continuous virtual series the anomaly detector
// scores with a rolling median/MAD z-score. Flag-like series (degraded,
// guard_rejected, ...) are excluded by design: their baselines are flat
// and carry no robust scale.
var monitoredSeries = []string{"utility", "watts", "expansions"}

// histSyncBaselines re-reads the cumulative registry counters the history
// fold diffs window over window. Called at construction and after a
// checkpoint restore: the invariant is baseline == live counter value, so
// the next window's delta covers exactly that window regardless of what
// the registry held before this engine (a prior run in the same process,
// a re-seated restore, or zero in a fresh one).
func (e *Engine) histSyncBaselines() {
	if e.hist == nil || e.reg == nil {
		return
	}
	e.histExp = e.reg.CounterValue("search_expansions_total")
	e.histHits = e.reg.CounterValue("eval_cache_hits_total")
	e.histMisses = e.reg.CounterValue("eval_cache_misses_total")
}

// observeHistory folds one completed window into the history store and
// scores it for anomalies. It reports whether the window was checked and
// how many virtual series the detector flagged — the inputs of the SLO
// engine's history-anomaly objective. Wall-clock drift verdicts surface
// as warnings and a counter only; they never reach deterministic state.
func (e *Engine) observeHistory(log *WindowLog, busy bool, searchCost float64, decideWall time.Duration, tc obs.TraceContext) (checked bool, anomalies int) {
	if e.hist == nil {
		return false, 0
	}
	w := e.winIdx
	t := log.Time

	var expD, hitD, missD int64
	if e.reg != nil {
		exp := e.reg.CounterValue("search_expansions_total")
		hits := e.reg.CounterValue("eval_cache_hits_total")
		misses := e.reg.CounterValue("eval_cache_misses_total")
		expD, hitD, missD = exp-e.histExp, hits-e.histHits, misses-e.histMisses
		e.histExp, e.histHits, e.histMisses = exp, hits, misses
	}
	hitPct := 0.0
	if hitD+missD > 0 {
		hitPct = 100 * float64(hitD) / float64(hitD+missD)
	}

	// Score before appending: the baseline is strictly prior windows.
	samples := map[string]float64{
		"utility":    log.Utility,
		"watts":      log.Watts,
		"expansions": float64(expD),
	}
	tr := e.o.Tracer()
	for _, name := range monitoredSeries {
		a := e.det.ScoreVirtual(e.hist, name, w, samples[name])
		if a == nil {
			continue
		}
		anomalies++
		e.cAnomalies.Inc()
		tr.Event("history:anomaly", t, t, tc.Attr(),
			obs.Attr{Key: "span", Value: tc.SpanID("history", a.Series)},
			obs.Attr{Key: "series", Value: a.Series},
			obs.Attr{Key: "kind", Value: a.Kind},
			obs.Attr{Key: "value", Value: a.Value},
			obs.Attr{Key: "score", Value: a.Score},
			obs.Attr{Key: "baseline", Value: a.Baseline})
		e.olog.Warn("history anomaly",
			"trace", tc.ID(),
			"series", a.Series,
			"kind", a.Kind,
			"value", a.Value,
			"score", a.Score,
			"baseline", a.Baseline)
	}

	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	app := func(name string, v float64) { e.hist.Append(name, tsdb.ClassVirtual, w, v) }
	app("utility", log.Utility)
	app("cum_utility", log.CumUtility)
	app("watts", log.Watts)
	app("search_cost", searchCost)
	app("search_time_sec", log.SearchTime.Seconds())
	app("active_hosts", float64(log.ActiveHosts))
	app("actions", float64(log.Actions))
	app("degraded", b2f(log.Degraded))
	app("retries", float64(log.Retried))
	app("failed_actions", float64(log.FailedActions))
	app("host_crashes", float64(log.HostCrashes))
	app("guard_rejected", b2f(log.GuardRejected))
	app("breaker_state", float64(e.cfg.Guard.Breaker()))
	app("expansions", float64(expD))
	app("cache_hit_pct", hitPct)

	// Wall-clock decide latency: busy windows ran no decide, so the
	// series only carries windows where a measurement exists.
	if !busy {
		ms := float64(decideWall.Microseconds()) / 1000
		e.hist.Append("decide_wall_ms", tsdb.ClassWall, w, ms)
		if a := e.det.ScoreWall("decide_wall_ms", w, ms); a != nil {
			e.cWallDrift.Inc()
			e.olog.Warn("decide wall-latency drift",
				"trace", tc.ID(),
				"wall_ms", a.Value,
				"score", a.Score,
				"ewma_ms", a.Baseline)
		}
	}
	return true, anomalies
}
