package scenario_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
)

// TestConcurrentScrapesWhileStepping hammers every read surface — the
// Prometheus exposition writer, the /ops document, and the /v1/query trend
// API — from parallel goroutines while the engine steps windows, and
// asserts no scrape ever observes a torn snapshot: every body parses as
// schema-valid JSON and the window counters only move forward. Under
// `go test -race` this also proves the locking across registry, ops state,
// and tsdb store.
func TestConcurrentScrapesWhileStepping(t *testing.T) {
	lab, err := experiments.NewLab(experiments.LabOptions{NumApps: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := lab.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := strategy.NewMistral(eval, strategy.MistralConfig{
		HostGroups:         lab.HostGroups(),
		MonitoringInterval: lab.Util.MonitoringInterval,
		Workers:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ob := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Ops:     obs.NewOpsState(),
		History: tsdb.New(tsdb.Options{}),
	}
	e, err := scenario.NewEngine(tb, dec, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: 60 * lab.Util.MonitoringInterval,
		Interval: lab.Util.MonitoringInterval,
		Utility:  lab.Util,
		Workers:  1,
		Obs:      ob,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(h http.Handler, target string) (int, []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		return rec.Code, rec.Body.Bytes()
	}

	// Exposition hammer: WritePrometheus walks the live registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ob.Metrics.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()

	// /ops hammer: every body must be a schema-valid snapshot and the
	// window cursor must never run backwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastWin := -2
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body := scrape(ob.Ops.Handler(), "/ops")
			if code != http.StatusOK {
				t.Errorf("/ops status %d", code)
				return
			}
			var snap obs.OpsSnapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Errorf("/ops body torn: %v\n%s", err, body)
				return
			}
			if snap.Schema != obs.OpsSchema {
				t.Errorf("/ops schema %q", snap.Schema)
				return
			}
			if snap.Window < lastWin {
				t.Errorf("/ops window ran backwards: %d after %d", snap.Window, lastWin)
				return
			}
			lastWin = snap.Window
		}
	}()

	// /v1/query hammer: the catalog must stay schema-valid with a
	// monotone last-window, and a live series range query must parse.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastWin := -2
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body := scrape(ob.History.Handler(), "/v1/query")
			if code != http.StatusOK {
				t.Errorf("/v1/query status %d", code)
				return
			}
			var list tsdb.ListResponse
			if err := json.Unmarshal(body, &list); err != nil {
				t.Errorf("/v1/query catalog torn: %v\n%s", err, body)
				return
			}
			if list.Schema != tsdb.Schema {
				t.Errorf("/v1/query schema %q", list.Schema)
				return
			}
			if list.LastWindow < lastWin {
				t.Errorf("/v1/query last_window ran backwards: %d after %d", list.LastWindow, lastWin)
				return
			}
			lastWin = list.LastWindow
			// Unknown-series 404s are expected only before the first
			// window lands.
			code, body = scrape(ob.History.Handler(), "/v1/query?series=utility,watts&k=8")
			switch code {
			case http.StatusOK:
				var resp tsdb.QueryResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Errorf("/v1/query range torn: %v\n%s", err, body)
					return
				}
			case http.StatusNotFound:
				if lastWin >= 0 {
					t.Errorf("series missing after window %d", lastWin)
					return
				}
			default:
				t.Errorf("/v1/query range status %d", code)
				return
			}
		}
	}()

	for i := 0; i < 60 && !t.Failed(); i++ {
		if _, err := e.Step(); err != nil {
			t.Errorf("step %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()

	if got := ob.History.LastWindow(); !t.Failed() && got != 59 {
		t.Errorf("history last window %d, want 59", got)
	}
}
