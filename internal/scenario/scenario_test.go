package scenario

import (
	"errors"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// scripted is a Decider replaying a fixed list of decisions.
type scripted struct {
	name      string
	decisions []Decision
	errAt     int // 1-based call index that errors; 0 = never
	calls     int
	windows   []float64 // recorded window utilities
}

func (s *scripted) Name() string { return s.name }

func (s *scripted) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	s.calls++
	if s.errAt > 0 && s.calls == s.errAt {
		return Decision{}, errors.New("scripted failure")
	}
	if len(s.decisions) == 0 {
		return Decision{}, nil
	}
	d := s.decisions[0]
	s.decisions = s.decisions[1:]
	return d, nil
}

func (s *scripted) RecordWindow(u, perfRate, pwrRate float64) { s.windows = append(s.windows, u) }

func setup(t *testing.T) (*testbed.Testbed, *utility.Params, workload.Set, *cluster.Catalog) {
	t.Helper()
	apps := []*app.Spec{app.RUBiS("rubis1")}
	hosts := []cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1")}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, map[string]float64{"rubis1": 50}, "rubis1"); err != nil {
		t.Fatal(err)
	}
	traces := workload.Set{"rubis1": &workload.Trace{
		Step: time.Minute,
		Rates: func() []float64 {
			r := make([]float64, 31)
			for i := range r {
				r[i] = 30
			}
			return r
		}(),
	}}
	tb, err := testbed.New(cat, apps, cfg, traces.At(0), nil, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tb, utility.PaperParams([]string{"rubis1"}), traces, cat
}

func TestRunBasicLoop(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &scripted{name: "noop"}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "noop" {
		t.Errorf("strategy = %q", res.Strategy)
	}
	if len(res.Windows) != 15 {
		t.Fatalf("windows = %d, want 15", len(res.Windows))
	}
	if d.calls != 15 {
		t.Errorf("Decide called %d times, want 15", d.calls)
	}
	if len(d.windows) != 15 {
		t.Errorf("RecordWindow called %d times", len(d.windows))
	}
	// Steady 30 req/s on a healthy config: positive utility every window.
	for _, w := range res.Windows {
		if w.Utility <= 0 {
			t.Errorf("window %v utility = %v, want positive", w.Time, w.Utility)
		}
		if w.Invoked {
			t.Error("no-op decisions must not count as invocations")
		}
	}
	if res.TotalActions != 0 || res.Invocations != 0 {
		t.Errorf("actions/invocations = %d/%d, want 0/0", res.TotalActions, res.Invocations)
	}
}

func TestRunExecutesPlansAndSkipsWhileBusy(t *testing.T) {
	tb, util, traces, _ := setup(t)
	// One migration (≈30-80s) in the first window; the second Decide call
	// must be skipped while the plan executes.
	d := &scripted{
		name: "mover",
		decisions: []Decision{{
			Invoked:    true,
			Plan:       []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0"}},
			SearchTime: 3 * time.Second,
			SearchCost: 0.05,
		}},
	}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 10 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalActions != 1 {
		t.Errorf("actions = %d, want 1", res.TotalActions)
	}
	if res.Invocations != 1 {
		t.Errorf("invocations = %d, want 1", res.Invocations)
	}
	if res.MeanSearchTime != 3*time.Second {
		t.Errorf("mean search = %v", res.MeanSearchTime)
	}
	// The search cost is charged against the first window.
	first := res.Windows[0]
	second := res.Windows[1]
	if first.Utility >= second.Utility {
		t.Errorf("first window (charged search cost) %v not below second %v", first.Utility, second.Utility)
	}
}

func TestRunDegradesOnDeciderErrors(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &scripted{name: "bad", errAt: 3}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util})
	if err != nil {
		t.Fatalf("decide error aborted the replay: %v", err)
	}
	if len(res.Windows) != 15 {
		t.Fatalf("windows = %d, want 15 despite the decide error", len(res.Windows))
	}
	if res.DecideErrors != 1 {
		t.Errorf("decide errors = %d, want 1", res.DecideErrors)
	}
	if res.DegradedWindows != 1 {
		t.Errorf("degraded windows = %d, want 1", res.DegradedWindows)
	}
	if !res.Windows[2].Degraded {
		t.Error("window absorbing the decide error not marked degraded")
	}
	if d.calls != 15 {
		t.Errorf("Decide called %d times, want 15 (loop keeps replanning)", d.calls)
	}
}

// panicker blows up on its first Decide call.
type panicker struct{ scripted }

func (p *panicker) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	p.calls++
	if p.calls == 1 {
		panic("decider bug")
	}
	return Decision{}, nil
}

func TestRunDegradesOnDeciderPanic(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &panicker{scripted{name: "panicky"}}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 10 * time.Minute, Utility: util})
	if err != nil {
		t.Fatalf("decider panic aborted the replay: %v", err)
	}
	if res.DecideErrors != 1 || !res.Windows[0].Degraded {
		t.Errorf("panic not absorbed as a decide error: %+v", res)
	}
	if d.calls != 5 {
		t.Errorf("Decide called %d times, want 5", d.calls)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	tb, util, traces, _ := setup(t)
	if _, err := Run(tb, &scripted{name: "x"}, RunConfig{Utility: util}); err == nil {
		t.Error("missing traces accepted")
	}
	if _, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces}); err == nil {
		t.Error("missing utility accepted")
	}
}

func TestRunDefaultsDurationToTraceLength(t *testing.T) {
	tb, util, traces, _ := setup(t)
	res, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	// 30-minute trace at 2-minute intervals.
	if len(res.Windows) != 15 {
		t.Errorf("windows = %d, want 15", len(res.Windows))
	}
}

func TestRunCountsViolations(t *testing.T) {
	tb, util, traces, _ := setup(t)
	// An impossible target forces every window into violation.
	util.Apps["rubis1"] = utility.AppParams{TargetRT: time.Millisecond}
	res, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces, Duration: 10 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetViolations != len(res.Windows) {
		t.Errorf("violations = %d, want %d", res.TargetViolations, len(res.Windows))
	}
	if res.ViolationsByApp["rubis1"] != res.TargetViolations {
		t.Errorf("per-app violations = %v", res.ViolationsByApp)
	}
}

func TestRunEnergyAndHostAccounting(t *testing.T) {
	tb, util, traces, _ := setup(t)
	res, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	// Two hosts for half an hour.
	if res.HostHours < 0.99 || res.HostHours > 1.01 {
		t.Errorf("host-hours = %v, want ~1.0", res.HostHours)
	}
	// Energy consistent with the mean power over the half hour.
	wantKWh := res.MeanWatts() * 0.5 / 1000
	if diff := res.EnergyKWh - wantKWh; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy = %v kWh, want %v", res.EnergyKWh, wantKWh)
	}
	for _, w := range res.Windows {
		if w.ActiveHosts != 2 {
			t.Errorf("active hosts = %d, want 2", w.ActiveHosts)
		}
	}
	if res.MeanWatts() <= 0 {
		t.Error("no mean watts")
	}
}

// setupFaulty builds the standard 1-app/2-host testbed with a live fault
// injector shared between the testbed and the replay loop.
func setupFaulty(t *testing.T, opts fault.Options) (*testbed.Testbed, *utility.Params, workload.Set, *fault.Injector) {
	t.Helper()
	apps := []*app.Spec{app.RUBiS("rubis1")}
	hosts := []cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1")}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, map[string]float64{"rubis1": 50}, "rubis1"); err != nil {
		t.Fatal(err)
	}
	traces := workload.Set{"rubis1": &workload.Trace{
		Step: time.Minute,
		Rates: func() []float64 {
			r := make([]float64, 31)
			for i := range r {
				r[i] = 30
			}
			return r
		}(),
	}}
	inj := fault.New(opts)
	tb, err := testbed.New(cat, apps, cfg, traces.At(0), nil, testbed.Options{Seed: 1, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	return tb, utility.PaperParams([]string{"rubis1"}), traces, inj
}

// flipflop alternates CPU-cap bumps so every window offers one always-valid
// action for the fault plane to chew on.
type flipflop struct{ scripted }

func (f *flipflop) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	f.calls++
	kind := cluster.ActionIncreaseCPU
	if p, _ := cfg.PlacementOf("rubis1-web-0"); p.CPUPct > 40 {
		kind = cluster.ActionDecreaseCPU
	}
	return Decision{
		Invoked: true,
		Plan:    []cluster.Action{{Kind: kind, VM: "rubis1-web-0", DeltaCPUPct: 10}},
	}, nil
}

func TestRunWithFaultsCompletesAndCounts(t *testing.T) {
	tb, util, traces, inj := setupFaulty(t, fault.Profile(0.5, 42))
	d := &flipflop{scripted{name: "flipflop"}}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util, Fault: inj})
	if err != nil {
		t.Fatalf("faulty replay aborted: %v", err)
	}
	if len(res.Windows) != 15 {
		t.Fatalf("windows = %d, want 15", len(res.Windows))
	}
	if res.DegradedWindows == 0 {
		t.Error("no degraded windows at a 50% fault profile")
	}
	if res.FailedActions == 0 {
		t.Error("no failed actions at a 50% fail rate")
	}
	if inj.Counts().Injected == 0 {
		t.Error("injector drew nothing")
	}
	var degraded int
	for _, w := range res.Windows {
		if w.Degraded {
			degraded++
		}
	}
	if degraded != res.DegradedWindows {
		t.Errorf("window flags (%d) disagree with DegradedWindows (%d)", degraded, res.DegradedWindows)
	}
}

func TestRunRetriesWithBackoffThenGivesUp(t *testing.T) {
	// Every action fails, every failure is retryable: the single planned
	// action is executed, then retried at +2min and +6min (doubling
	// backoff), then abandoned at the default 3-attempt budget.
	tb, util, traces, inj := setupFaulty(t, fault.Options{
		Seed: 9, ActionFailRate: 1, RetryableFraction: 1,
	})
	d := &scripted{
		name: "one-shot",
		decisions: []Decision{{
			Invoked: true,
			Plan:    []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0", DeltaCPUPct: 10}},
		}},
	}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want 2 (3 total attempts)", res.Retries)
	}
	if res.FailedActions != 3 {
		t.Errorf("failed actions = %d, want 3", res.FailedActions)
	}
	// The cap never actually moved: all three attempts failed.
	if p, _ := tb.Config().PlacementOf("rubis1-web-0"); p.CPUPct != 40 {
		t.Errorf("failed action mutated config: cap = %v, want 40", p.CPUPct)
	}
	// Retried windows are degraded: first execution at window 0, retries at
	// windows 1 (t=2min) and 3 (t=6min).
	for _, i := range []int{0, 1, 3} {
		if !res.Windows[i].Degraded {
			t.Errorf("window %d not degraded", i)
		}
	}
	if res.Windows[1].Retried != 1 || res.Windows[3].Retried != 1 {
		t.Errorf("retry windows = %d/%d, want 1/1", res.Windows[1].Retried, res.Windows[3].Retried)
	}
}

func TestRunRetryDisabled(t *testing.T) {
	tb, util, traces, inj := setupFaulty(t, fault.Options{
		Seed: 9, ActionFailRate: 1, RetryableFraction: 1,
	})
	d := &scripted{
		name: "one-shot",
		decisions: []Decision{{
			Invoked: true,
			Plan:    []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0", DeltaCPUPct: 10}},
		}},
	}
	res, err := Run(tb, d, RunConfig{
		Traces: traces, Duration: 10 * time.Minute, Utility: util,
		Fault: inj, Retry: RetryPolicy{MaxAttempts: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d with retries disabled", res.Retries)
	}
	if res.FailedActions != 1 {
		t.Errorf("failed actions = %d, want 1", res.FailedActions)
	}
}

func TestRunSurvivesHostCrashes(t *testing.T) {
	tb, util, traces, inj := setupFaulty(t, fault.Options{Seed: 3, HostCrashPerHour: 20})
	d := &scripted{name: "noop"}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util, Fault: inj})
	if err != nil {
		t.Fatalf("crashy replay aborted: %v", err)
	}
	if res.HostCrashes == 0 {
		t.Fatal("no crashes at ~0.5/window per host")
	}
	if len(res.Windows) != 15 {
		t.Errorf("windows = %d, want 15", len(res.Windows))
	}
	for _, w := range res.Windows {
		if w.ActiveHosts < 1 {
			t.Error("replay left zero active hosts")
		}
		if w.HostCrashes > 0 && !w.Degraded {
			t.Error("crash window not degraded")
		}
	}
}

func TestRunRecordsSensorDrops(t *testing.T) {
	tb, util, traces, inj := setupFaulty(t, fault.Options{Seed: 5, SensorDropRate: 1})
	d := &scripted{name: "noop"}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 10 * time.Minute, Utility: util, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	// The first window cannot drop (nothing to replay); the rest must.
	if res.SensorDrops != len(res.Windows)-1 {
		t.Errorf("sensor drops = %d, want %d", res.SensorDrops, len(res.Windows)-1)
	}
	for i, w := range res.Windows[1:] {
		if !w.SensorDropped || !w.Degraded {
			t.Errorf("window %d: dropped=%v degraded=%v", i+1, w.SensorDropped, w.Degraded)
		}
		if w.Watts != res.Windows[0].Watts {
			t.Errorf("dropped window %d watts %v differ from replayed %v", i+1, w.Watts, res.Windows[0].Watts)
		}
	}
}
