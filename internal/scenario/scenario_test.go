package scenario

import (
	"errors"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// scripted is a Decider replaying a fixed list of decisions.
type scripted struct {
	name      string
	decisions []Decision
	errAt     int // 1-based call index that errors; 0 = never
	calls     int
	windows   []float64 // recorded window utilities
}

func (s *scripted) Name() string { return s.name }

func (s *scripted) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	s.calls++
	if s.errAt > 0 && s.calls == s.errAt {
		return Decision{}, errors.New("scripted failure")
	}
	if len(s.decisions) == 0 {
		return Decision{}, nil
	}
	d := s.decisions[0]
	s.decisions = s.decisions[1:]
	return d, nil
}

func (s *scripted) RecordWindow(u, perfRate, pwrRate float64) { s.windows = append(s.windows, u) }

func setup(t *testing.T) (*testbed.Testbed, *utility.Params, workload.Set, *cluster.Catalog) {
	t.Helper()
	apps := []*app.Spec{app.RUBiS("rubis1")}
	hosts := []cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1")}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, map[string]float64{"rubis1": 50}, "rubis1"); err != nil {
		t.Fatal(err)
	}
	traces := workload.Set{"rubis1": &workload.Trace{
		Step: time.Minute,
		Rates: func() []float64 {
			r := make([]float64, 31)
			for i := range r {
				r[i] = 30
			}
			return r
		}(),
	}}
	tb, err := testbed.New(cat, apps, cfg, traces.At(0), nil, testbed.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tb, utility.PaperParams([]string{"rubis1"}), traces, cat
}

func TestRunBasicLoop(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &scripted{name: "noop"}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "noop" {
		t.Errorf("strategy = %q", res.Strategy)
	}
	if len(res.Windows) != 15 {
		t.Fatalf("windows = %d, want 15", len(res.Windows))
	}
	if d.calls != 15 {
		t.Errorf("Decide called %d times, want 15", d.calls)
	}
	if len(d.windows) != 15 {
		t.Errorf("RecordWindow called %d times", len(d.windows))
	}
	// Steady 30 req/s on a healthy config: positive utility every window.
	for _, w := range res.Windows {
		if w.Utility <= 0 {
			t.Errorf("window %v utility = %v, want positive", w.Time, w.Utility)
		}
		if w.Invoked {
			t.Error("no-op decisions must not count as invocations")
		}
	}
	if res.TotalActions != 0 || res.Invocations != 0 {
		t.Errorf("actions/invocations = %d/%d, want 0/0", res.TotalActions, res.Invocations)
	}
}

func TestRunExecutesPlansAndSkipsWhileBusy(t *testing.T) {
	tb, util, traces, _ := setup(t)
	// One migration (≈30-80s) in the first window; the second Decide call
	// must be skipped while the plan executes.
	d := &scripted{
		name: "mover",
		decisions: []Decision{{
			Invoked:    true,
			Plan:       []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0"}},
			SearchTime: 3 * time.Second,
			SearchCost: 0.05,
		}},
	}
	res, err := Run(tb, d, RunConfig{Traces: traces, Duration: 10 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalActions != 1 {
		t.Errorf("actions = %d, want 1", res.TotalActions)
	}
	if res.Invocations != 1 {
		t.Errorf("invocations = %d, want 1", res.Invocations)
	}
	if res.MeanSearchTime != 3*time.Second {
		t.Errorf("mean search = %v", res.MeanSearchTime)
	}
	// The search cost is charged against the first window.
	first := res.Windows[0]
	second := res.Windows[1]
	if first.Utility >= second.Utility {
		t.Errorf("first window (charged search cost) %v not below second %v", first.Utility, second.Utility)
	}
}

func TestRunPropagatesDeciderErrors(t *testing.T) {
	tb, util, traces, _ := setup(t)
	d := &scripted{name: "bad", errAt: 3}
	_, err := Run(tb, d, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util})
	if err == nil {
		t.Fatal("decider error not propagated")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	tb, util, traces, _ := setup(t)
	if _, err := Run(tb, &scripted{name: "x"}, RunConfig{Utility: util}); err == nil {
		t.Error("missing traces accepted")
	}
	if _, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces}); err == nil {
		t.Error("missing utility accepted")
	}
}

func TestRunDefaultsDurationToTraceLength(t *testing.T) {
	tb, util, traces, _ := setup(t)
	res, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	// 30-minute trace at 2-minute intervals.
	if len(res.Windows) != 15 {
		t.Errorf("windows = %d, want 15", len(res.Windows))
	}
}

func TestRunCountsViolations(t *testing.T) {
	tb, util, traces, _ := setup(t)
	// An impossible target forces every window into violation.
	util.Apps["rubis1"] = utility.AppParams{TargetRT: time.Millisecond}
	res, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces, Duration: 10 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetViolations != len(res.Windows) {
		t.Errorf("violations = %d, want %d", res.TargetViolations, len(res.Windows))
	}
	if res.ViolationsByApp["rubis1"] != res.TargetViolations {
		t.Errorf("per-app violations = %v", res.ViolationsByApp)
	}
}

func TestRunEnergyAndHostAccounting(t *testing.T) {
	tb, util, traces, _ := setup(t)
	res, err := Run(tb, &scripted{name: "x"}, RunConfig{Traces: traces, Duration: 30 * time.Minute, Utility: util})
	if err != nil {
		t.Fatal(err)
	}
	// Two hosts for half an hour.
	if res.HostHours < 0.99 || res.HostHours > 1.01 {
		t.Errorf("host-hours = %v, want ~1.0", res.HostHours)
	}
	// Energy consistent with the mean power over the half hour.
	wantKWh := res.MeanWatts() * 0.5 / 1000
	if diff := res.EnergyKWh - wantKWh; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy = %v kWh, want %v", res.EnergyKWh, wantKWh)
	}
	for _, w := range res.Windows {
		if w.ActiveHosts != 2 {
			t.Errorf("active hosts = %d, want 2", w.ActiveHosts)
		}
	}
	if res.MeanWatts() <= 0 {
		t.Error("no mean watts")
	}
}
