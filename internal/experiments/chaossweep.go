package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/guard"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/testbed"
)

// ChaosSweepOptions configures the transactional-robustness study: the
// Mistral strategy replayed under the hostile fault.ChaosProfile mix
// (simultaneous crashes, failures, and delays, mostly non-retryable) with
// the admission guard enabled, once per execution policy, while a set of
// safety invariants is asserted after every window.
type ChaosSweepOptions struct {
	// Seed drives the lab and the fault schedule.
	Seed uint64
	// Rates are the headline chaos rates (default 15% and 30%).
	Rates []float64
	// Duration bounds each replay (default 2 hours).
	Duration time.Duration
	// Workers is passed through to scenario.RunConfig.
	Workers int
}

func (o ChaosSweepOptions) withDefaults() ChaosSweepOptions {
	if len(o.Rates) == 0 {
		o.Rates = []float64{0.15, 0.30}
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Hour
	}
	return o
}

// ChaosSweepCell is one (rate, execution policy) replay.
type ChaosSweepCell struct {
	Rate   float64
	Exec   testbed.ExecPolicy
	Result *scenario.Result
	Faults fault.Counts
	// Guard admission totals and breaker trips over the replay.
	GuardAdmitted int64
	GuardRejected int64
	BreakerOpens  int64
	// Violations lists every broken safety invariant, labeled by window.
	// A correct implementation produces none; the chaossweep exists to
	// prove that under fire.
	Violations []string
}

// ChaosSweepResult holds the rate × policy grid.
type ChaosSweepResult struct {
	Rates []float64
	Cells []ChaosSweepCell
}

// Violations aggregates every invariant breach across the grid.
func (r *ChaosSweepResult) Violations() []string {
	var out []string
	for _, c := range r.Cells {
		out = append(out, c.Violations...)
	}
	return out
}

// chaosInvariants asserts the per-window safety contract and returns the
// breaches found:
//
//   - placement integrity: no VM is lost — every active VM sits on a known,
//     powered-on host, and the cluster never empties out. Capacity
//     violations (an oversubscribed host, an emptied required tier) are
//     deliberately NOT breaches: a partially applied plan or a host crash
//     legitimately leaves the cluster degraded until retries or the next
//     control window repair it;
//   - a rolled-back plan provably restored the pre-plan fingerprint;
//   - under fail-forward no compensation ever runs;
//   - the utility ledger stays consistent: the running sum of per-window
//     utility equals the reported cumulative utility.
func chaosInvariants(idx int, cat *cluster.Catalog, tb *testbed.Testbed, w scenario.WindowLog, exec testbed.ExecPolicy, utilSum float64) []string {
	var out []string
	cfg := tb.FinalConfig()
	for _, vm := range cfg.ActiveVMs() {
		if _, ok := cat.VM(vm); !ok {
			out = append(out, fmt.Sprintf("window %d: unknown VM %q active", idx, vm))
			continue
		}
		p, ok := cfg.PlacementOf(vm)
		if !ok {
			out = append(out, fmt.Sprintf("window %d: active VM %q has no placement", idx, vm))
			continue
		}
		if _, ok := cat.Host(p.Host); !ok {
			out = append(out, fmt.Sprintf("window %d: VM %q placed on unknown host %q", idx, vm, p.Host))
			continue
		}
		if !cfg.HostOn(p.Host) {
			out = append(out, fmt.Sprintf("window %d: VM %q placed on powered-off host %q", idx, vm, p.Host))
		}
	}
	if len(cfg.ActiveVMs()) == 0 {
		out = append(out, fmt.Sprintf("window %d: cluster lost every VM", idx))
	}
	if w.Compensated && !w.FPRestored {
		out = append(out, fmt.Sprintf("window %d: rollback did not restore the pre-plan fingerprint", idx))
	}
	if exec == testbed.FailForward && (w.Compensated || w.RolledBack > 0) {
		out = append(out, fmt.Sprintf("window %d: compensation ran under fail-forward", idx))
	}
	if diff := math.Abs(utilSum - w.CumUtility); diff > 1e-6*math.Max(1, math.Abs(w.CumUtility)) {
		out = append(out, fmt.Sprintf("window %d: utility ledger drift: sum %.9f vs cumulative %.9f", idx, utilSum, w.CumUtility))
	}
	return out
}

// runChaosCell replays the Mistral strategy under one (rate, policy) cell
// with guard and breaker active, stepping the engine window by window so
// the invariants are checked against live state, not a post-hoc summary.
func runChaosCell(opts ChaosSweepOptions, rate float64, exec testbed.ExecPolicy) (ChaosSweepCell, error) {
	cell := ChaosSweepCell{Rate: rate, Exec: exec}
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: opts.Seed})
	if err != nil {
		return cell, err
	}
	inj := fault.New(fault.ChaosProfile(rate, opts.Seed))
	tb, err := lab.NewTestbedExec(inj, exec)
	if err != nil {
		return cell, err
	}
	d, _, err := buildDecider(lab, StrategyMistral, false)
	if err != nil {
		return cell, err
	}
	g := guard.New(guard.Config{}, lab.Cat)
	sc := lab.ScenarioConfig()
	duration := opts.Duration
	if duration <= 0 || duration > sc.Duration {
		duration = sc.Duration
	}
	eng, err := scenario.NewEngine(tb, d, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: duration,
		Interval: sc.Interval,
		Utility:  lab.Util,
		Workers:  opts.Workers,
		Fault:    inj,
		Guard:    g,
	})
	if err != nil {
		return cell, err
	}
	utilSum := 0.0
	for !eng.Done() {
		sr, err := eng.Step()
		if err != nil {
			return cell, fmt.Errorf("window %d: %w", sr.Index, err)
		}
		utilSum += sr.Window.Utility
		cell.Violations = append(cell.Violations, chaosInvariants(sr.Index, lab.Cat, tb, sr.Window, exec, utilSum)...)
	}
	cell.Result = eng.Result()
	cell.Faults = inj.Counts()
	cell.GuardAdmitted, cell.GuardRejected, cell.BreakerOpens = g.Stats()
	return cell, nil
}

// ChaosSweep runs the full grid: every chaos rate under both execution
// policies, guard always on.
func ChaosSweep(opts ChaosSweepOptions) (*ChaosSweepResult, error) {
	opts = opts.withDefaults()
	out := &ChaosSweepResult{Rates: opts.Rates}
	for _, rate := range opts.Rates {
		for _, exec := range []testbed.ExecPolicy{testbed.FailForward, testbed.RollbackOnFailure} {
			cell, err := runChaosCell(opts, rate, exec)
			if err != nil {
				return nil, fmt.Errorf("experiments: chaos sweep %s @ %.0f%%: %w", exec, rate*100, err)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// Tables renders the sweep: a transactional-safety ledger per cell plus
// the invariant verdict.
func (r *ChaosSweepResult) Tables() []Table {
	ledger := Table{
		Title: "Chaos sweep — transactional safety ledger (Mistral, guard on)",
		Header: []string{"chaos rate", "exec policy", "cum utility", "degraded wins",
			"failed acts", "rolled back", "compensated", "guard rejects", "breaker opens", "invariant breaches"},
	}
	for _, c := range r.Cells {
		ledger.Rows = append(ledger.Rows, []string{
			fmt.Sprintf("%.0f%%", c.Rate*100), c.Exec.String(),
			f1(c.Result.CumUtility), fmt.Sprint(c.Result.DegradedWindows),
			fmt.Sprint(c.Result.FailedActions), fmt.Sprint(c.Result.RolledBackActions),
			fmt.Sprint(c.Result.CompensatedPlans), fmt.Sprint(c.Result.GuardRejections),
			fmt.Sprint(c.BreakerOpens), fmt.Sprint(len(c.Violations)),
		})
	}
	verdict := Table{Title: "Chaos sweep — invariant verdict", Header: []string{"verdict"}}
	if v := r.Violations(); len(v) > 0 {
		for _, msg := range v {
			verdict.Rows = append(verdict.Rows, []string{"BREACH: " + msg})
		}
	} else {
		verdict.Rows = append(verdict.Rows, []string{"all safety invariants held in every window"})
	}
	return []Table{ledger, verdict}
}
