package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/obs/tsdb"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
)

// runHistoryMistral replays the trimmed scenario with an explicit telemetry
// history store attached and returns the result plus the store.
func runHistoryMistral(t *testing.T, workers int, faultRate float64, hist *tsdb.Store) *scenario.Result {
	t.Helper()
	lab := shortLab(t, 11)
	eval, err := lab.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	m, err := strategy.NewMistral(eval, strategy.MistralConfig{
		HostGroups:         lab.HostGroups(),
		MonitoringInterval: lab.Util.MonitoringInterval,
		Search:             core.SearchOptions{TimePerChild: 300 * time.Microsecond},
		Workers:            workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Profile(faultRate, 99))
	tb, err := lab.NewTestbedWithFaults(inj)
	if err != nil {
		t.Fatal(err)
	}
	sc := lab.ScenarioConfig()
	res, err := scenario.Run(tb, m, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: sc.Duration,
		Interval: sc.Interval,
		Utility:  lab.Util,
		Workers:  workers,
		Fault:    inj,
		History:  hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// historyVirtualJSON runs one replay and serializes the store's virtual
// series state. Wall-clock series (decide_wall_ms) are observational by
// construction — same exemption as Result.DecideWall — and are stripped
// before any byte comparison.
func historyVirtualJSON(t *testing.T, workers int, faultRate float64) []byte {
	t.Helper()
	hist := tsdb.New(tsdb.Options{})
	runHistoryMistral(t, workers, faultRate, hist)
	st := hist.State()
	kept := st.Series[:0:0]
	for _, s := range st.Series {
		if s.Class == "virtual" {
			kept = append(kept, s)
		}
	}
	st.Series = kept
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestHistoryDeterminism pins the telemetry history plane's core contract:
// every virtual series — rings, downsampled tiers, totals — is a pure
// function of the replay, so the serialized store must be byte-identical
// across evaluation worker counts, run-to-run, and under a seeded fault
// schedule.
func TestHistoryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"fault=0", 0},
		{"fault=0.3", 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := historyVirtualJSON(t, 0, tc.rate)
			parallel := historyVirtualJSON(t, 1, tc.rate)
			again := historyVirtualJSON(t, 0, tc.rate)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("history diverges across worker counts:\nworkers=0: %s\nworkers=1: %s", serial, parallel)
			}
			if !bytes.Equal(serial, again) {
				t.Error("history diverges run-to-run at identical configuration")
			}
			var st tsdb.State
			if err := json.Unmarshal(serial, &st); err != nil {
				t.Fatal(err)
			}
			if st.LastWindow != 29 {
				t.Errorf("last window %d, want 29 (30-window replay)", st.LastWindow)
			}
			if len(st.Series) < 10 {
				t.Errorf("only %d virtual series folded, want the full canonical set", len(st.Series))
			}
		})
	}
}

// TestHistoryObserverDoesNotPerturbReplay pins the pure-observer contract:
// attaching a history store must leave the replay result byte-identical to
// the same run without one.
func TestHistoryObserverDoesNotPerturbReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	bare := runHistoryMistral(t, 1, 0.15, nil)
	hist := tsdb.New(tsdb.Options{})
	observed := runHistoryMistral(t, 1, 0.15, hist)
	bare.DecideWall, observed.DecideWall = nil, nil
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("history store perturbed the replay:\nbare:     %+v\nobserved: %+v", bare, observed)
	}
	if got := hist.LastWindow(); got != 29 {
		t.Errorf("observed run folded through window %d, want 29", got)
	}
}
