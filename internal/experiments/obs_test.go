package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// planRecorder wraps a decider and fingerprints every decision it makes.
type planRecorder struct {
	scenario.Decider
	log []string
}

func (p *planRecorder) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (scenario.Decision, error) {
	d, err := p.Decider.Decide(now, cfg, rates)
	if err == nil {
		p.log = append(p.log, fmt.Sprintf("%v st=%v cost=%.9f plan=%v", now, d.SearchTime, d.SearchCost, d.Plan))
	}
	return d, err
}

// runMistralRecorded replays a trimmed 1-app scenario under Mistral with
// the given process-default observer installed, returning the result and
// the decision fingerprints.
func runMistralRecorded(t *testing.T, o *obs.Observer) (*scenario.Result, []string) {
	t.Helper()
	obs.SetDefault(o)
	defer obs.SetDefault(nil)
	lab, err := NewLab(LabOptions{NumApps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := lab.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := buildDecider(lab, StrategyMistral, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := &planRecorder{Decider: d}
	res, err := scenario.Run(tb, rec, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: 90 * time.Minute,
		Interval: lab.Util.MonitoringInterval,
		Utility:  lab.Util,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.log
}

// TestTracingIsDeterministic replays the seeded 2-host scenario with
// observability fully disabled and fully enabled (metrics + JSONL spans +
// debug logging) and requires byte-identical decision plans and results:
// instrumentation must never perturb control behaviour.
func TestTracingIsDeterministic(t *testing.T) {
	baseRes, basePlans := runMistralRecorded(t, nil)

	var trace bytes.Buffer
	full := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(&trace, obs.FormatJSONL),
		Log:     slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
	}
	obsRes, obsPlans := runMistralRecorded(t, full)
	if err := full.Trace.Close(); err != nil {
		t.Fatal(err)
	}

	if a, b := strings.Join(basePlans, "\n"), strings.Join(obsPlans, "\n"); a != b {
		t.Fatalf("plans diverge with tracing enabled:\n--- disabled ---\n%s\n--- enabled ---\n%s", a, b)
	}
	if baseRes.CumUtility != obsRes.CumUtility {
		t.Errorf("cumulative utility diverged: %v vs %v", baseRes.CumUtility, obsRes.CumUtility)
	}
	if baseRes.TotalActions != obsRes.TotalActions {
		t.Errorf("action count diverged: %d vs %d", baseRes.TotalActions, obsRes.TotalActions)
	}

	// The metrics registry must have seen the run.
	if got := full.Metrics.CounterValue("scenario_windows_total"); got != int64(len(obsRes.Windows)) {
		t.Errorf("scenario_windows_total = %d, want %d", got, len(obsRes.Windows))
	}
	if full.Metrics.CounterValue("search_invocations_total") == 0 {
		t.Error("search_invocations_total = 0, want > 0")
	}

	// Span nesting: every perfpwr/search/action:* span must parent (via
	// its chain) to a "decide" root — the Decide → PerfPwr → Search →
	// Action hierarchy of the trace design.
	type rec struct {
		Name   string `json:"name"`
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
		VStart int64  `json:"v_start_us"`
		VEnd   int64  `json:"v_end_us"`
	}
	byID := map[uint64]rec{}
	var spans []rec
	sc := bufio.NewScanner(&trace)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("invalid JSONL span %q: %v", sc.Text(), err)
		}
		byID[r.ID] = r
		spans = append(spans, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	rootOf := func(r rec) rec {
		for r.Parent != 0 {
			r = byID[r.Parent]
		}
		return r
	}
	counts := map[string]int{}
	for _, r := range spans {
		switch {
		case r.Name == "decide":
			counts["decide"]++
			if r.Parent != 0 {
				t.Errorf("decide span %d has parent %d, want root", r.ID, r.Parent)
			}
		case r.Name == "perfpwr" || r.Name == "search" || strings.HasPrefix(r.Name, "action:"):
			counts[strings.SplitN(r.Name, ":", 2)[0]]++
			if root := rootOf(r); root.Name != "decide" {
				t.Errorf("%s span %d roots at %q, want decide", r.Name, r.ID, root.Name)
			}
			if r.VEnd < r.VStart {
				t.Errorf("%s span %d ends (%d) before it starts (%d)", r.Name, r.ID, r.VEnd, r.VStart)
			}
		}
	}
	for _, kind := range []string{"decide", "perfpwr", "search"} {
		if counts[kind] == 0 {
			t.Errorf("no %q spans in trace (counts %v)", kind, counts)
		}
	}
	if obsRes.TotalActions > 0 && counts["action"] == 0 {
		t.Errorf("plan executed %d actions but trace has no action spans", obsRes.TotalActions)
	}
}
