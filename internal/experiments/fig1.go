package experiments

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/stats"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Fig1Series is one workload level's transient trace during a live
// migration (Fig. 1): power and response-time deltas relative to the
// pre-migration baseline, in percent, sampled at 5-second intervals.
type Fig1Series struct {
	Sessions      float64
	BaselineWatts float64
	BaselineRTSec float64
	DeltaWattPct  []float64
	DeltaRTPct    []float64
}

// Fig1Result aggregates the three workload levels of Fig. 1.
type Fig1Result struct {
	// Interval is the sampling interval (5 s) and MigrationAt the window
	// index at which the migration was initiated (5 -> 25 s).
	Interval    time.Duration
	MigrationAt int
	Series      []Fig1Series
}

// Fig1MigrationCost reproduces Figure 1: the end-to-end power and
// response-time impact of a single live migration of a database VM of a
// 3-tier application, measured on the request-level testbed at 100, 400,
// and 800 concurrent sessions, at 5-second granularity over 110 intervals
// with the migration initiated at the 25 s mark.
func Fig1MigrationCost(seed uint64) (*Fig1Result, error) {
	const (
		nWindows    = 110
		migrationAt = 5 // window index: 5 × 5 s = 25 s
		warmup      = 2 * time.Minute
	)
	res := &Fig1Result{Interval: 5 * time.Second, MigrationAt: migrationAt}

	for _, sessions := range []float64{100, 400, 800} {
		lab, err := NewLab(LabOptions{NumApps: 1, NumHosts: 4, Seed: seed, Mode: testbed.ModeRequestLevel})
		if err != nil {
			return nil, err
		}
		rate := workload.RateForSessions(sessions)
		rates := map[string]float64{"rubis1": rate}

		// Baseline configuration: capacities adequate for the offered rate
		// (the testbed stays stationary so the transient is measurable).
		eval, err := lab.TrueEvaluator()
		if err != nil {
			return nil, err
		}
		ideal, err := core.PerfPwrMeetingTargets(eval, rates)
		if err != nil {
			ideal, err = core.PerfPwr(eval, rates, core.PerfPwrOptions{})
			if err != nil {
				return nil, err
			}
		}
		// Pick a db replica and a feasible destination, powering on a spare
		// host when the ideal configuration packed everything tight (the
		// paper's testbed likewise keeps a free host to migrate into).
		baseCfg := ideal.Config.Clone()
		vm, dst := pickMigration(lab, &baseCfg)
		if vm == "" {
			return nil, fmt.Errorf("experiments: fig1: no migratable db VM at %v sessions", sessions)
		}
		tb, err := testbed.New(lab.Cat, lab.Apps, baseCfg, rates, lab.Costs, testbed.Options{
			Mode:       testbed.ModeRequestLevel,
			ClosedLoop: true, // the paper's client emulator: fixed sessions
			Seed:       seed + uint64(sessions),
		})
		if err != nil {
			return nil, err
		}
		if _, err := tb.MeasureWindow(warmup); err != nil {
			return nil, err
		}

		series := Fig1Series{Sessions: sessions}
		var watts, rts []float64
		for w := 0; w < nWindows; w++ {
			if w == migrationAt {
				if _, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: vm, Host: dst}}); err != nil {
					return nil, err
				}
			}
			win, err := tb.MeasureWindow(tb.Now() + res.Interval)
			if err != nil {
				return nil, err
			}
			watts = append(watts, win.Watts)
			rts = append(rts, win.RTSec["rubis1"])
		}
		series.BaselineWatts = stats.Mean(watts[:migrationAt])
		series.BaselineRTSec = stats.Mean(rts[:migrationAt])
		for w := 0; w < nWindows; w++ {
			series.DeltaWattPct = append(series.DeltaWattPct, 100*(watts[w]-series.BaselineWatts)/series.BaselineWatts)
			rtBase := series.BaselineRTSec
			if rtBase <= 0 {
				rtBase = 1e-9
			}
			series.DeltaRTPct = append(series.DeltaRTPct, 100*(rts[w]-rtBase)/rtBase)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// pickMigration selects a db replica and a destination host with capacity,
// powering an off host on (mutating cfg) when every active host is full.
func pickMigration(lab *Lab, cfg *cluster.Config) (cluster.VMID, string) {
	fits := func(h string, cpu float64) bool {
		spec, _ := lab.Cat.Host(h)
		return cfg.AllocatedCPU(h)+cpu <= spec.UsableCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs
	}
	var dbVMs []cluster.VMID
	for _, id := range cfg.ActiveVMs() {
		if spec, _ := lab.Cat.VM(id); spec.Tier == "db" {
			dbVMs = append(dbVMs, id)
		}
	}
	for _, id := range dbVMs {
		p, _ := cfg.PlacementOf(id)
		for _, h := range cfg.ActiveHosts() {
			if h != p.Host && fits(h, p.CPUPct) {
				return id, h
			}
		}
	}
	// No active host has room: open a spare one.
	for _, h := range lab.Cat.HostNames() {
		if !cfg.HostOn(h) {
			cfg.SetHostOn(h, true)
			if len(dbVMs) > 0 {
				return dbVMs[0], h
			}
		}
	}
	return "", ""
}

// PeakDeltaWattPct returns the maximum power delta of a series.
func (s Fig1Series) PeakDeltaWattPct() float64 {
	var peak float64
	for _, v := range s.DeltaWattPct {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// PeakDeltaRTPct returns the maximum response-time delta of a series.
func (s Fig1Series) PeakDeltaRTPct() float64 {
	var peak float64
	for _, v := range s.DeltaRTPct {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Tables renders the result.
func (r *Fig1Result) Tables() []Table {
	power := Table{
		Title:  "Fig. 1a — Delta power (%) during a single VM live-migration (migration at t=25s)",
		Header: []string{"t(s)"},
	}
	rt := Table{
		Title:  "Fig. 1b — Delta response time (%) during a single VM live-migration",
		Header: []string{"t(s)"},
	}
	for _, s := range r.Series {
		power.Header = append(power.Header, fmt.Sprintf("%.0f sess", s.Sessions))
		rt.Header = append(rt.Header, fmt.Sprintf("%.0f sess", s.Sessions))
	}
	n := len(r.Series[0].DeltaWattPct)
	for w := 0; w < n; w++ {
		pRow := []string{f0(float64(w+1) * r.Interval.Seconds())}
		rRow := []string{f0(float64(w+1) * r.Interval.Seconds())}
		for _, s := range r.Series {
			pRow = append(pRow, f1(s.DeltaWattPct[w]))
			rRow = append(rRow, f1(s.DeltaRTPct[w]))
		}
		power.Rows = append(power.Rows, pRow)
		rt.Rows = append(rt.Rows, rRow)
	}
	return []Table{power, rt}
}
