package experiments

import (
	"fmt"
	"strings"
)

// Table is a generic tabular result, renderable as ASCII or CSV. Every
// experiment result can convert itself into one or more Tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
