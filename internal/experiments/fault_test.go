package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
)

// shortLab builds a 2-app lab with its traces trimmed to one hour.
func shortLab(t *testing.T, seed uint64) *Lab {
	t.Helper()
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for name := range lab.Traces {
		lab.Traces[name].Rates = lab.Traces[name].Rates[:61]
	}
	return lab
}

// TestFaultDisabledIsByteIdentical pins the opt-in contract: running the
// fault-aware path with an all-zero fault profile must reproduce the
// pre-existing fault-free path byte for byte.
func TestFaultDisabledIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	lab := shortLab(t, 7)
	base, _, err := RunStrategy(lab, StrategyMistral, false)
	if err != nil {
		t.Fatal(err)
	}
	viaFault, counts, err := RunStrategyWithFaults(lab, StrategyMistral, fault.Profile(0, 7), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if counts != (fault.Counts{}) {
		t.Errorf("disabled injector drew faults: %+v", counts)
	}
	// DecideWall carries wall-clock (not virtual) decide durations for
	// -bench-json; it is observational and never identical across runs.
	base.DecideWall, viaFault.DecideWall = nil, nil
	if !reflect.DeepEqual(base, viaFault) {
		t.Errorf("zero-rate fault path diverges from fault-free path:\nbase: %+v\nfault: %+v", base, viaFault)
	}
}

// TestFaultReplayDegradesGracefully is the headline robustness acceptance:
// a replay at 15% action-failure rate completes without aborting, records
// degraded windows, and the fault counters show injections happened.
func TestFaultReplayDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	lab := shortLab(t, 7)
	res, counts, err := RunStrategyWithFaults(lab, StrategyMistral, fault.Profile(0.15, 7), 0, 0)
	if err != nil {
		t.Fatalf("15%% fault replay aborted: %v", err)
	}
	if len(res.Windows) != 30 {
		t.Errorf("windows = %d, want 30 (the replay must run to completion)", len(res.Windows))
	}
	if counts.Injected == 0 {
		t.Error("injector drew no faults at 15%")
	}
	if res.DegradedWindows == 0 {
		t.Error("no degraded windows recorded under sustained faults")
	}
	if res.FailedActions+res.SensorDrops+res.HostCrashes == 0 {
		t.Errorf("no fault effects surfaced in the result: %+v", res)
	}
}

// runFaultyMistral replays the trimmed scenario under Mistral built with an
// explicit worker count and a 15% fault profile.
func runFaultyMistral(t *testing.T, workers int) *scenario.Result {
	t.Helper()
	lab := shortLab(t, 11)
	eval, err := lab.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	m, err := strategy.NewMistral(eval, strategy.MistralConfig{
		HostGroups:         lab.HostGroups(),
		MonitoringInterval: lab.Util.MonitoringInterval,
		Search:             core.SearchOptions{TimePerChild: 300 * time.Microsecond},
		Workers:            workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Profile(0.15, 99))
	tb, err := lab.NewTestbedWithFaults(inj)
	if err != nil {
		t.Fatal(err)
	}
	sc := lab.ScenarioConfig()
	res, err := scenario.Run(tb, m, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: sc.Duration,
		Interval: sc.Interval,
		Utility:  lab.Util,
		Workers:  workers,
		Fault:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultDeterminismAcrossWorkers pins the seeded fault schedule against
// the concurrent evaluation plane: the identical fault seed must yield
// byte-identical results whether the hierarchy evaluates serially or on 8
// workers. Fault draws happen only on the sequential replay path, so
// evaluation concurrency must never perturb them.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	serial := runFaultyMistral(t, 1)
	parallel := runFaultyMistral(t, 8)
	// Wall-clock decide samples (for -bench-json) differ by construction.
	serial.DecideWall, parallel.DecideWall = nil, nil
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("faulty replay diverges across worker counts:\nworkers=1: %+v\nworkers=8: %+v", serial, parallel)
	}
	if serial.DegradedWindows == 0 {
		t.Error("determinism run saw no degradation; fault schedule inert")
	}
}

// TestFaultHammer drives the full strategy set at a hostile 30% failure
// rate (with crashes, delays, and sensor faults scaled up accordingly).
// Run under -race in CI, it shakes out data races between the injector,
// the testbed, and the parallel evaluation plane; functionally it asserts
// the control loop survives and Mistral still beats at least one baseline.
func TestFaultHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep replay")
	}
	sweep, err := FaultSweep(FaultSweepOptions{
		Seed:     7,
		Rates:    []float64{0.30},
		Duration: time.Hour,
	})
	if err != nil {
		t.Fatalf("30%% fault sweep aborted: %v", err)
	}
	cum := sweep.CumUtility(0)
	if len(cum) != 4 {
		t.Fatalf("cum utilities = %v, want all 4 strategies", cum)
	}
	mistral := cum[StrategyMistral]
	beaten := 0
	for _, s := range []StrategyName{StrategyPerfPwr, StrategyPerfCost, StrategyPwrCost} {
		if mistral >= cum[s] {
			beaten++
		}
	}
	if beaten == 0 {
		t.Errorf("Mistral (%.1f) beats no baseline under 30%% faults: %v", mistral, cum)
	}
	for name, cells := range sweep.Cells {
		if cells[0].Faults.Injected == 0 {
			t.Errorf("%s: no faults injected at 30%%", name)
		}
	}
	if tables := sweep.Tables(); len(tables) != 3 {
		t.Errorf("Tables() = %d tables, want 3", len(tables))
	}
}
