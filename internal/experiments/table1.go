package experiments

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
)

// Table1Scenario is one scalability configuration's outcome.
type Table1Scenario struct {
	Apps, VMs, Hosts int
	// Mean search durations per invocation.
	SelfAwareMean, SelfAwareL1, SelfAwareL2 time.Duration
	NaiveMean, NaiveL1, NaiveL2             time.Duration
	// MistralUtility is the self-aware run's total utility; IdealUtility
	// is the simulated Perf-Pwr optimizer's upper bound ignoring
	// adaptation costs.
	MistralUtility float64
	NaiveUtility   float64
	IdealUtility   float64
}

// Table1Result aggregates the scalability study.
type Table1Result struct {
	Scenarios []Table1Scenario
}

// Table1Options bounds the study's cost.
type Table1Options struct {
	// Duration truncates the replay (zero = the full 6.5 h scenario).
	Duration time.Duration
	// NaiveMaxExpansions caps the naive search (default 2500, matching the
	// Fig. 10 runs so the two algorithms face the same budget; the naive
	// search's cost per expansion grows with the action space, so its
	// duration scales steeply with system size).
	NaiveMaxExpansions int
	// SkipNaive omits the naive runs (they dominate wall-clock time).
	SkipNaive bool
	// Workers bounds each hierarchy's evaluation concurrency (see
	// strategy.MistralConfig.Workers; 0 = min(GOMAXPROCS, 8), 1 = serial).
	// Decisions and utilities are identical at every setting.
	Workers int
	// Provenance, when non-nil and enabled, records one decision-provenance
	// record per window of every replay in the study (self-aware and naive,
	// all sizes) into a single JSONL stream; windows restart at 0 at each
	// run boundary. Nil leaves the replays byte-identical to unrecorded runs.
	Provenance *provenance.Recorder
}

// Table1Scalability reproduces Table I: 2/3/4 applications on 4/6/8 hosts
// (10/15/20 VMs) under the two-level hierarchy, reporting per-level mean
// search durations for the Self-Aware and Naive algorithms and total
// utility against the ideal (cost-free) utility.
func Table1Scalability(seed uint64, opts Table1Options) (*Table1Result, error) {
	if opts.NaiveMaxExpansions <= 0 {
		opts.NaiveMaxExpansions = 2500
	}
	res := &Table1Result{}
	for _, napps := range []int{2, 3, 4} {
		lab, err := NewLab(LabOptions{NumApps: napps, Seed: seed})
		if err != nil {
			return nil, err
		}
		if opts.Duration > 0 {
			// Shorten the replay window uniformly.
			for name := range lab.Traces {
				tr := lab.Traces[name]
				n := int(opts.Duration/tr.Step) + 1
				if n < len(tr.Rates) {
					tr.Rates = tr.Rates[:n]
				}
			}
		}
		sc := Table1Scenario{
			Apps:  napps,
			VMs:   len(lab.Cat.VMIDs()),
			Hosts: len(lab.Cat.HostNames()),
		}

		runMistral := func(naive bool, maxExp int) (*scenario.Result, *strategy.Mistral, error) {
			tb, err := lab.NewTestbed()
			if err != nil {
				return nil, nil, err
			}
			eval, err := lab.NewEvaluator()
			if err != nil {
				return nil, nil, err
			}
			m, err := strategy.NewMistral(eval, strategy.MistralConfig{
				HostGroups:         lab.HostGroups(),
				Naive:              naive,
				MonitoringInterval: lab.Util.MonitoringInterval,
				Workers:            opts.Workers,
				Provenance:         opts.Provenance.Enabled(),
				Search: core.SearchOptions{
					TimePerChild:  300 * time.Microsecond,
					MaxExpansions: maxExp,
				},
			})
			if err != nil {
				return nil, nil, err
			}
			r, err := scenario.Run(tb, m, scenario.RunConfig{
				Traces:     lab.Traces,
				Duration:   opts.Duration,
				Interval:   lab.Util.MonitoringInterval,
				Utility:    lab.Util,
				Workers:    opts.Workers,
				Provenance: opts.Provenance,
			})
			return r, m, err
		}

		aware, awareM, err := runMistral(false, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %d-app self-aware: %w", napps, err)
		}
		sc.SelfAwareMean = aware.MeanSearchTime
		l1, l2 := awareM.Stats()
		sc.SelfAwareL1, sc.SelfAwareL2 = l1.MeanSearch(), l2.MeanSearch()
		sc.MistralUtility = aware.CumUtility

		if !opts.SkipNaive {
			naive, naiveM, err := runMistral(true, opts.NaiveMaxExpansions)
			if err != nil {
				return nil, fmt.Errorf("experiments: table1 %d-app naive: %w", napps, err)
			}
			sc.NaiveMean = naive.MeanSearchTime
			nl1, nl2 := naiveM.Stats()
			sc.NaiveL1, sc.NaiveL2 = nl1.MeanSearch(), nl2.MeanSearch()
			sc.NaiveUtility = naive.CumUtility
		}

		ideal, err := IdealUtility(lab, opts.Duration)
		if err != nil {
			return nil, err
		}
		sc.IdealUtility = ideal
		res.Scenarios = append(res.Scenarios, sc)
	}
	return res, nil
}

// IdealUtility computes Table I's "Ideal" row: the utility the simulated
// Perf-Pwr optimizer would accrue if every window ran in its ideal
// configuration with adaptation costs ignored.
func IdealUtility(lab *Lab, duration time.Duration) (float64, error) {
	eval, err := lab.TrueEvaluator()
	if err != nil {
		return 0, err
	}
	if duration <= 0 {
		duration = lab.ScenarioConfig().Duration
	}
	interval := lab.Util.MonitoringInterval
	var total float64
	for t := time.Duration(0); t < duration; t += interval {
		rates := lab.Traces.At(t)
		eval.BeginWindow()
		ideal, err := core.PerfPwr(eval, rates, core.PerfPwrOptions{})
		if err != nil {
			return 0, err
		}
		total += interval.Seconds() * ideal.Steady.NetRate()
	}
	return total, nil
}

// Table renders Table I.
func (r *Table1Result) Table() Table {
	t := Table{
		Title: "Table I — Search durations (ms) and utilities",
		Header: []string{
			"metric", "2-app", "3-app", "4-app",
		},
	}
	row := func(label string, get func(Table1Scenario) string) {
		cells := []string{label}
		for _, sc := range r.Scenarios {
			cells = append(cells, get(sc))
		}
		t.Rows = append(t.Rows, cells)
	}
	ms := func(d time.Duration) string { return f1(float64(d.Microseconds()) / 1000) }
	row("#VMs / #hosts", func(s Table1Scenario) string { return fmt.Sprintf("%d / %d", s.VMs, s.Hosts) })
	row("Self-Aware (avg duration)", func(s Table1Scenario) string { return ms(s.SelfAwareMean) })
	row("- 1st level", func(s Table1Scenario) string { return ms(s.SelfAwareL1) })
	row("- 2nd level", func(s Table1Scenario) string { return ms(s.SelfAwareL2) })
	row("Naive (avg duration)", func(s Table1Scenario) string { return ms(s.NaiveMean) })
	row("- 1st level", func(s Table1Scenario) string { return ms(s.NaiveL1) })
	row("- 2nd level", func(s Table1Scenario) string { return ms(s.NaiveL2) })
	row("Mistral (total utility)", func(s Table1Scenario) string { return f1(s.MistralUtility) })
	row("Naive (total utility)", func(s Table1Scenario) string { return f1(s.NaiveUtility) })
	row("Ideal (total utility)", func(s Table1Scenario) string { return f1(s.IdealUtility) })
	return t
}
