package experiments

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
	"github.com/mistralcloud/mistral/internal/workload"
)

// StrategyName identifies one of the four compared control strategies.
type StrategyName string

// The four strategies of §V-C.
const (
	StrategyPerfPwr  StrategyName = "Perf-Pwr"
	StrategyPerfCost StrategyName = "Perf-Cost"
	StrategyPwrCost  StrategyName = "Pwr-Cost"
	StrategyMistral  StrategyName = "Mistral"
)

// AllStrategies lists the comparison order used in the paper's figures.
func AllStrategies() []StrategyName {
	return []StrategyName{StrategyPerfPwr, StrategyPerfCost, StrategyPwrCost, StrategyMistral}
}

// buildDecider instantiates a strategy over a fresh evaluator.
func buildDecider(lab *Lab, name StrategyName, naive bool) (scenario.Decider, *strategy.Mistral, error) {
	eval, err := lab.NewEvaluator()
	if err != nil {
		return nil, nil, err
	}
	switch name {
	case StrategyPerfPwr:
		return strategy.NewPerfPwr(eval), nil, nil
	case StrategyPerfCost:
		d, err := strategy.NewPerfCost(eval, lab.Util)
		return d, nil, err
	case StrategyPwrCost:
		return strategy.NewPwrCost(eval), nil, nil
	case StrategyMistral:
		search := core.SearchOptions{TimePerChild: 300 * time.Microsecond}
		if naive {
			// Without the Self-Aware beam and deadline the naive search
			// grinds hard instances to the ε-margin or this cap; the cap
			// keeps full-scenario replays tractable while leaving the
			// paper's duration contrast (≈4×, Fig. 10b) visible.
			search.MaxExpansions = 2500
		}
		m, err := strategy.NewMistral(eval, strategy.MistralConfig{
			HostGroups:         lab.HostGroups(),
			Naive:              naive,
			MonitoringInterval: lab.Util.MonitoringInterval,
			Search:             search,
		})
		return m, m, err
	default:
		return nil, nil, fmt.Errorf("experiments: unknown strategy %q", name)
	}
}

// RunStrategy replays the lab's full scenario under one strategy.
func RunStrategy(lab *Lab, name StrategyName, naive bool) (*scenario.Result, *strategy.Mistral, error) {
	tb, err := lab.NewTestbed()
	if err != nil {
		return nil, nil, err
	}
	d, m, err := buildDecider(lab, name, naive)
	if err != nil {
		return nil, nil, err
	}
	sc := lab.ScenarioConfig()
	res, err := scenario.Run(tb, d, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: sc.Duration,
		Interval: sc.Interval,
		Utility:  lab.Util,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, m, nil
}

// Fig89Result is the four-strategy comparison of Figures 8 and 9: response
// times and power per strategy over the scenario, plus cumulative
// utilities.
type Fig89Result struct {
	Results map[StrategyName]*scenario.Result
}

// Fig89StrategyComparison reproduces Figures 8 and 9: the 2-application
// scenario (RUBiS-1 and RUBiS-2 on the World Cup workloads) replayed under
// Perf-Pwr, Perf-Cost, Pwr-Cost, and Mistral. The paper's headline is the
// cumulative utility ordering: Mistral (152.3) > Pwr-Cost (93.9) >
// Perf-Cost (26.3) > Perf-Pwr (−47.1).
func Fig89StrategyComparison(seed uint64) (*Fig89Result, error) {
	res := &Fig89Result{Results: make(map[StrategyName]*scenario.Result, 4)}
	for _, name := range AllStrategies() {
		lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
		if err != nil {
			return nil, err
		}
		r, _, err := RunStrategy(lab, name, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		res.Results[name] = r
	}
	return res, nil
}

// CumUtility returns the final cumulative utility per strategy.
func (r *Fig89Result) CumUtility() map[StrategyName]float64 {
	out := make(map[StrategyName]float64, len(r.Results))
	for name, res := range r.Results {
		out[name] = res.CumUtility
	}
	return out
}

// Tables renders the Fig. 8 series (RT per app, power) and Fig. 9
// (cumulative utility).
func (r *Fig89Result) Tables() []Table {
	order := AllStrategies()
	mkHeader := func() []string {
		h := []string{"time"}
		for _, s := range order {
			h = append(h, string(s))
		}
		return h
	}
	rt1 := Table{Title: "Fig. 8a — RUBiS-1 mean response time (ms)", Header: mkHeader()}
	rt2 := Table{Title: "Fig. 8b — RUBiS-2 mean response time (ms)", Header: mkHeader()}
	pwr := Table{Title: "Fig. 8c — System power (W)", Header: mkHeader()}
	cum := Table{Title: "Fig. 9 — Cumulative utility (dollars)", Header: mkHeader()}

	n := 0
	for _, res := range r.Results {
		if len(res.Windows) > n {
			n = len(res.Windows)
		}
	}
	for i := 0; i < n; i++ {
		var at time.Duration
		for _, res := range r.Results {
			if i < len(res.Windows) {
				at = res.Windows[i].Time
			}
		}
		rows := [][]string{
			{workload.Clock(at)}, {workload.Clock(at)}, {workload.Clock(at)}, {workload.Clock(at)},
		}
		for _, s := range order {
			res := r.Results[s]
			if i >= len(res.Windows) {
				for j := range rows {
					rows[j] = append(rows[j], "")
				}
				continue
			}
			w := res.Windows[i]
			rows[0] = append(rows[0], f0(w.RTSec["rubis1"]*1000))
			rows[1] = append(rows[1], f0(w.RTSec["rubis2"]*1000))
			rows[2] = append(rows[2], f0(w.Watts))
			rows[3] = append(rows[3], f1(w.CumUtility))
		}
		rt1.Rows = append(rt1.Rows, rows[0])
		rt2.Rows = append(rt2.Rows, rows[1])
		pwr.Rows = append(pwr.Rows, rows[2])
		cum.Rows = append(cum.Rows, rows[3])
	}

	summary := Table{
		Title:  "Fig. 9 summary — final cumulative utility (paper: Mistral 152.3, Pwr-Cost 93.9, Perf-Cost 26.3, Perf-Pwr -47.1)",
		Header: []string{"strategy", "cum. utility", "actions", "violations", "mean watts"},
	}
	for _, s := range order {
		res := r.Results[s]
		var watts float64
		for _, w := range res.Windows {
			watts += w.Watts
		}
		if len(res.Windows) > 0 {
			watts /= float64(len(res.Windows))
		}
		summary.Rows = append(summary.Rows, []string{
			string(s), f1(res.CumUtility), fmt.Sprint(res.TotalActions), fmt.Sprint(res.TargetViolations), f0(watts),
		})
	}
	return []Table{rt1, rt2, pwr, cum, summary}
}
