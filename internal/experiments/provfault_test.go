package experiments

import (
	"bytes"
	"testing"

	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// TestProvenanceUnderFaults validates the flight recorder on the
// faultsweep path: a replay at a 30% fault profile — action failures,
// host crashes, sensor drops — must still emit a provenance stream that
// passes the full validator (schema, window sequencing, every ledger's
// arithmetic within tolerance), with the degraded windows present and
// carrying their reasons. The crash path is the interesting one: a
// degraded window's record has no search digest, and the validator must
// accept that shape without relaxing the checks on healthy windows.
func TestProvenanceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	lab := shortLab(t, 13)
	inj := fault.New(fault.Profile(0.30, 13))
	tb, err := lab.NewTestbedWithFaults(inj)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := buildDecider(lab, StrategyMistral, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := provenance.NewRecorder(&buf)
	sc := lab.ScenarioConfig()
	if _, err := scenario.Run(tb, d, scenario.RunConfig{
		Traces:     lab.Traces,
		Duration:   sc.Duration,
		Interval:   sc.Interval,
		Utility:    lab.Util,
		Fault:      inj,
		Provenance: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := provenance.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	// The validator must hold on the degraded stream, not just the happy
	// path: schema, sequencing, and every ledger reconciling against the
	// search's reported utility.
	if err := provenance.CheckStream(recs); err != nil {
		t.Fatalf("fault-injected stream fails validation: %v", err)
	}

	degraded := 0
	for i := range recs {
		r := &recs[i]
		if r.Degraded {
			degraded++
			if r.DegradedReason == "" {
				t.Errorf("window %d degraded without a reason", r.Window)
			}
		}
		// Trace identity is recomputed, never stored: the record's window
		// index must round-trip through the canonical scheme.
		if got := obs.TraceID(r.Window); got != obs.WindowTrace(r.Window).TraceID {
			t.Fatalf("trace scheme drifted: %q", got)
		}
	}
	if degraded == 0 {
		t.Fatalf("30%% fault profile produced no degraded windows in %d records", len(recs))
	}
	counts := inj.Counts()
	if counts == (fault.Counts{}) {
		t.Error("injector drew no faults")
	}
	// Seed 13 deterministically injects a host crash, so the crash-window
	// record shape is exercised, not just action failures.
	if counts.HostCrashes == 0 {
		t.Error("profile drew no host crashes; crash-window records unexercised")
	}
	t.Logf("%d records, %d degraded, faults %+v", len(recs), degraded, inj.Counts())
}
