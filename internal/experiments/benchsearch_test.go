package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchSearchSnapshot runs the bench harness on a short cycle and
// checks the snapshot is sane, its work counters are deterministic for a
// seed, and the baseline gate trips exactly when it should.
func TestBenchSearchSnapshot(t *testing.T) {
	r, err := BenchSearch(42, BenchOptions{Windows: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Expansions <= 0 || r.Generated <= r.Expansions {
		t.Fatalf("implausible work counters: %d expansions, %d generated", r.Expansions, r.Generated)
	}
	if r.NsPerExpansion <= 0 || r.AllocsPerExpansion <= 0 {
		t.Fatalf("missing per-expansion figures: %+v", r)
	}
	if r.CacheHitPct < 0 || r.CacheHitPct > 100 {
		t.Fatalf("cache hit %% out of range: %v", r.CacheHitPct)
	}
	if r.DecideP99Ms < r.DecideP50Ms {
		t.Fatalf("p99 %vms below p50 %vms", r.DecideP99Ms, r.DecideP50Ms)
	}

	again, err := BenchSearch(42, BenchOptions{Windows: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.Expansions != r.Expansions || again.Generated != r.Generated {
		t.Errorf("work counters not deterministic: %d/%d vs %d/%d expansions/generated",
			r.Expansions, r.Generated, again.Expansions, again.Generated)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	// Against its own snapshot the run is exactly at 1.00x: inside any
	// non-negative tolerance.
	if verdict, err := r.CompareBaseline(path, 20); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	} else if !strings.Contains(verdict, "1.00x") {
		t.Errorf("unexpected verdict %q", verdict)
	}
	// An impossible baseline must trip the gate.
	tight := *r
	tight.NsPerExpansion = r.NsPerExpansion / 10
	tightPath := filepath.Join(t.TempDir(), "tight.json")
	if err := tight.WriteJSON(tightPath); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CompareBaseline(tightPath, 20); err == nil {
		t.Error("10x regression passed the 20% gate")
	}
}
