package experiments

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// FaultSweepOptions configures the robustness sweep: each strategy replays
// the 2-application scenario under increasingly hostile fault injection.
type FaultSweepOptions struct {
	// Seed drives the lab (workload synthesis, testbed noise) and the
	// fault schedule; the same seed reproduces the sweep byte for byte.
	Seed uint64
	// Rates are the action-failure probabilities to sweep (default
	// 0, 5, 15, and 30%); fault.Profile derives delay, sensor, and crash
	// rates from each.
	Rates []float64
	// Duration bounds each replay (default 2 hours — long enough for
	// retries, crashes, and degraded windows to show, short enough to keep
	// the 4×4 sweep tractable).
	Duration time.Duration
	// Workers is passed through to scenario.RunConfig for observability.
	Workers int
}

func (o FaultSweepOptions) withDefaults() FaultSweepOptions {
	if len(o.Rates) == 0 {
		o.Rates = []float64{0, 0.05, 0.15, 0.30}
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Hour
	}
	return o
}

// FaultSweepCell is one (strategy, rate) replay.
type FaultSweepCell struct {
	Rate   float64
	Result *scenario.Result
	// Faults snapshots the injector's draw counters after the replay
	// (all zero at rate 0, where no injector is attached).
	Faults fault.Counts
}

// FaultSweepResult holds the full strategy × rate grid.
type FaultSweepResult struct {
	Rates []float64
	// Cells maps each strategy to its per-rate replays, parallel to Rates.
	Cells map[StrategyName][]FaultSweepCell
}

// RunStrategyWithFaults replays the lab's scenario under one strategy with
// a fault injector wired into both the testbed and the replay loop. A
// disabled injector (nil, or all-zero rates) reproduces RunStrategy
// exactly.
func RunStrategyWithFaults(lab *Lab, name StrategyName, fo fault.Options, duration time.Duration, workers int) (*scenario.Result, fault.Counts, error) {
	inj := fault.New(fo)
	tb, err := lab.NewTestbedWithFaults(inj)
	if err != nil {
		return nil, fault.Counts{}, err
	}
	d, _, err := buildDecider(lab, name, false)
	if err != nil {
		return nil, fault.Counts{}, err
	}
	sc := lab.ScenarioConfig()
	if duration <= 0 || duration > sc.Duration {
		duration = sc.Duration
	}
	res, err := scenario.Run(tb, d, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: duration,
		Interval: sc.Interval,
		Utility:  lab.Util,
		Workers:  workers,
		Fault:    inj,
	})
	if err != nil {
		return nil, inj.Counts(), err
	}
	return res, inj.Counts(), nil
}

// FaultSweep reproduces the robustness study: Mistral and the three
// baselines replayed at every fault rate. At rate 0 the injector is absent
// and each replay is byte-identical to the fault-free Fig. 8/9 path; at
// higher rates the comparison shows how much utility each strategy
// preserves while actions fail, hosts crash, and sensors drop.
func FaultSweep(opts FaultSweepOptions) (*FaultSweepResult, error) {
	opts = opts.withDefaults()
	out := &FaultSweepResult{
		Rates: opts.Rates,
		Cells: make(map[StrategyName][]FaultSweepCell, 4),
	}
	for _, rate := range opts.Rates {
		for _, name := range AllStrategies() {
			// A fresh lab per cell: replays must not share testbed or
			// estimator state.
			lab, err := NewLab(LabOptions{NumApps: 2, Seed: opts.Seed})
			if err != nil {
				return nil, err
			}
			res, counts, err := RunStrategyWithFaults(lab, name, fault.Profile(rate, opts.Seed), opts.Duration, opts.Workers)
			if err != nil {
				return nil, fmt.Errorf("experiments: fault sweep %s @ %.0f%%: %w", name, rate*100, err)
			}
			out.Cells[name] = append(out.Cells[name], FaultSweepCell{
				Rate: rate, Result: res, Faults: counts,
			})
		}
	}
	return out, nil
}

// CumUtility returns each strategy's final cumulative utility at the given
// rate index.
func (r *FaultSweepResult) CumUtility(rateIdx int) map[StrategyName]float64 {
	out := make(map[StrategyName]float64, len(r.Cells))
	for name, cells := range r.Cells {
		if rateIdx < len(cells) {
			out[name] = cells[rateIdx].Result.CumUtility
		}
	}
	return out
}

// Tables renders the sweep: cumulative utility and target violations per
// strategy × rate, plus a degradation ledger per cell.
func (r *FaultSweepResult) Tables() []Table {
	order := AllStrategies()
	header := []string{"fault rate"}
	for _, s := range order {
		header = append(header, string(s))
	}
	cum := Table{Title: "Fault sweep — final cumulative utility (dollars)", Header: header}
	viol := Table{Title: "Fault sweep — target violations (app-windows)", Header: header}
	for i, rate := range r.Rates {
		rowU := []string{fmt.Sprintf("%.0f%%", rate*100)}
		rowV := []string{fmt.Sprintf("%.0f%%", rate*100)}
		for _, s := range order {
			cells := r.Cells[s]
			if i >= len(cells) {
				rowU, rowV = append(rowU, ""), append(rowV, "")
				continue
			}
			rowU = append(rowU, f1(cells[i].Result.CumUtility))
			rowV = append(rowV, fmt.Sprint(cells[i].Result.TargetViolations))
		}
		cum.Rows = append(cum.Rows, rowU)
		viol.Rows = append(viol.Rows, rowV)
	}

	ledger := Table{
		Title: "Fault sweep — degradation ledger",
		Header: []string{"strategy", "fault rate", "degraded wins", "decide errs",
			"failed acts", "skipped", "retries", "crashes", "sensor drops", "injected"},
	}
	for _, s := range order {
		for i, rate := range r.Rates {
			cells := r.Cells[s]
			if i >= len(cells) {
				continue
			}
			res, counts := cells[i].Result, cells[i].Faults
			ledger.Rows = append(ledger.Rows, []string{
				string(s), fmt.Sprintf("%.0f%%", rate*100),
				fmt.Sprint(res.DegradedWindows), fmt.Sprint(res.DecideErrors),
				fmt.Sprint(res.FailedActions), fmt.Sprint(res.SkippedActions),
				fmt.Sprint(res.Retries), fmt.Sprint(res.HostCrashes),
				fmt.Sprint(res.SensorDrops), fmt.Sprint(counts.Injected),
			})
		}
	}
	return []Table{cum, viol, ledger}
}
