package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/testbed"
)

// TestChaosSweepInvariantsAndDeterminism is the chaos-plane acceptance: a
// 30% chaos-profile sweep (crashes + failures + delays, mostly terminal)
// holds every safety invariant in every window under both execution
// policies, the rollback cell actually exercises compensation, and the
// whole grid is byte-identical across evaluation worker counts.
func TestChaosSweepInvariantsAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep replay")
	}
	run := func(workers int) *ChaosSweepResult {
		r, err := ChaosSweep(ChaosSweepOptions{
			Seed:     7,
			Rates:    []float64{0.30},
			Duration: time.Hour,
			Workers:  workers,
		})
		if err != nil {
			t.Fatalf("chaos sweep aborted: %v", err)
		}
		return r
	}
	sweep := run(0)
	if v := sweep.Violations(); len(v) > 0 {
		t.Fatalf("safety invariants breached:\n%v", v)
	}
	if len(sweep.Cells) != 2 {
		t.Fatalf("cells = %d, want fail-forward + rollback", len(sweep.Cells))
	}
	for _, c := range sweep.Cells {
		if c.Faults.Injected == 0 {
			t.Errorf("%s: no faults injected at 30%% chaos", c.Exec)
		}
		if c.Result.FailedActions == 0 {
			t.Errorf("%s: no failed actions at 30%% chaos", c.Exec)
		}
		if c.GuardAdmitted == 0 {
			t.Errorf("%s: guard admitted no plans; the sweep never adapted", c.Exec)
		}
		switch c.Exec {
		case testbed.FailForward:
			if c.Result.CompensatedPlans != 0 || c.Result.RolledBackActions != 0 {
				t.Errorf("fail-forward cell compensated: %+v", c.Result)
			}
		case testbed.RollbackOnFailure:
			if c.Result.CompensatedPlans == 0 {
				t.Error("rollback cell never compensated a plan; chaos profile inert")
			}
		}
	}
	if tables := sweep.Tables(); len(tables) != 2 {
		t.Errorf("Tables() = %d tables, want 2", len(tables))
	}

	// Determinism: evaluation concurrency must not perturb the chaos
	// schedule, the guard verdicts, or the rollback path.
	other := run(1)
	for i := range sweep.Cells {
		sweep.Cells[i].Result.DecideWall = nil // wall-clock, varies by construction
		other.Cells[i].Result.DecideWall = nil
	}
	if !reflect.DeepEqual(sweep, other) {
		t.Error("chaos sweep diverges across worker counts")
	}
}
