package experiments

import (
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Fig10Result compares the Naive and Self-Aware searches on the
// 2-application scenario: controller power overhead, per-invocation search
// durations, and utility.
type Fig10Result struct {
	// SearchPowerPct is the controller host's power draw while searching,
	// as a percentage over its idle draw (the paper measures up to ≈12%
	// over a 60 W idle host).
	SearchPowerPct float64
	SelfAware      *scenario.Result
	Naive          *scenario.Result
}

// Fig10SearchCost reproduces Figure 10: the cost of decision making itself.
// The Self-Aware search bounds its own duration and power; the naive search
// runs the same scenario without self-cost awareness. The paper reports
// naive searches up to ≈4× longer (≈24 s vs ≈5.5 s) and cumulative
// utilities of 135.3 (naive) vs 152.3 (self-aware).
func Fig10SearchCost(seed uint64) (*Fig10Result, error) {
	res := &Fig10Result{}

	lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	// Controller host: a default host running the optimizer flat out vs
	// idle.
	spec := cluster.DefaultHostSpec("controller")
	res.SearchPowerPct = (67 - spec.IdleWatts) / spec.IdleWatts * 100

	aware, _, err := RunStrategy(lab, StrategyMistral, false)
	if err != nil {
		return nil, err
	}
	res.SelfAware = aware

	labN, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	naive, _, err := RunStrategy(labN, StrategyMistral, true)
	if err != nil {
		return nil, err
	}
	res.Naive = naive
	return res, nil
}

// MeanSearch returns the mean per-invocation search durations.
func (r *Fig10Result) MeanSearch() (selfAware, naive time.Duration) {
	return r.SelfAware.MeanSearchTime, r.Naive.MeanSearchTime
}

// Tables renders Figure 10.
func (r *Fig10Result) Tables() []Table {
	dur := Table{
		Title:  "Fig. 10b — Search duration per invocation (ms)",
		Header: []string{"time", "Self-aware", "Naive"},
	}
	util := Table{
		Title:  "Fig. 10c — Cumulative utility (dollars; paper: self-aware 152.3 vs naive 135.3)",
		Header: []string{"time", "Self-aware", "Naive"},
	}
	n := len(r.SelfAware.Windows)
	if len(r.Naive.Windows) > n {
		n = len(r.Naive.Windows)
	}
	for i := 0; i < n; i++ {
		var at time.Duration
		row := make([]string, 0, 3)
		urow := make([]string, 0, 3)
		if i < len(r.SelfAware.Windows) {
			at = r.SelfAware.Windows[i].Time
		} else {
			at = r.Naive.Windows[i].Time
		}
		row = append(row, workload.Clock(at))
		urow = append(urow, workload.Clock(at))
		for _, res := range []*scenario.Result{r.SelfAware, r.Naive} {
			if i < len(res.Windows) {
				row = append(row, f0(float64(res.Windows[i].SearchTime.Milliseconds())))
				urow = append(urow, f1(res.Windows[i].CumUtility))
			} else {
				row = append(row, "")
				urow = append(urow, "")
			}
		}
		dur.Rows = append(dur.Rows, row)
		util.Rows = append(util.Rows, urow)
	}
	summary := Table{
		Title:  "Fig. 10 summary",
		Header: []string{"metric", "Self-aware", "Naive"},
		Rows: [][]string{
			{"search power over idle (%)", f1(r.SearchPowerPct), f1(r.SearchPowerPct)},
			{"mean search (ms)", f0(float64(r.SelfAware.MeanSearchTime.Milliseconds())), f0(float64(r.Naive.MeanSearchTime.Milliseconds()))},
			{"cumulative utility", f1(r.SelfAware.CumUtility), f1(r.Naive.CumUtility)},
			{"actions", f0(float64(r.SelfAware.TotalActions)), f0(float64(r.Naive.TotalActions))},
		},
	}
	return []Table{dur, util, summary}
}
