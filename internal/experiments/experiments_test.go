package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/workload"
)

func TestNewLabDefaults(t *testing.T) {
	lab, err := NewLab(LabOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Apps) != 2 || len(lab.Cat.HostNames()) != 4 {
		t.Errorf("defaults: %d apps, %d hosts; want 2/4", len(lab.Apps), len(lab.Cat.HostNames()))
	}
	if lab.CalibrationScale <= 0 {
		t.Error("no calibration scale")
	}
	if !lab.Initial.IsCandidate(lab.Cat) {
		t.Error("initial config invalid")
	}
	// Controller model must differ from ground truth (offline measurement
	// error) but only slightly.
	var diff int
	for i, a := range lab.Apps {
		c := lab.CtrlApps[i]
		for j := range a.Txns {
			for tier, d := range a.Txns[j].DemandMS {
				cd := c.Txns[j].DemandMS[tier]
				if cd != d {
					diff++
					if math.Abs(cd-d)/d > 0.25 {
						t.Errorf("model perturbation too large: %v vs %v", cd, d)
					}
				}
			}
		}
	}
	if diff == 0 {
		t.Error("controller model identical to ground truth")
	}
	// Host groups: single group for 2 apps, two groups for more.
	if got := len(lab.HostGroups()); got != 1 {
		t.Errorf("2-app host groups = %d, want 1", got)
	}
	lab4, err := NewLab(LabOptions{NumApps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lab4.HostGroups()); got != 2 {
		t.Errorf("4-app host groups = %d, want 2", got)
	}
}

func TestFig3Shape(t *testing.T) {
	points := Fig3UtilityFunction()
	if len(points) != 21 {
		t.Fatalf("points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.Reward != 1.0 || last.Reward != 3.5 {
		t.Errorf("reward endpoints = %v..%v", first.Reward, last.Reward)
	}
	if first.Penalty != -3.5 || last.Penalty != -1.0 {
		t.Errorf("penalty endpoints = %v..%v", first.Penalty, last.Penalty)
	}
	tbl := Fig3Table(points)
	if !strings.Contains(tbl.ASCII(), "reward") {
		t.Error("table missing header")
	}
	if !strings.Contains(tbl.CSV(), "req/s,reward,penalty") {
		t.Error("CSV missing header")
	}
}

func TestFig4Workloads(t *testing.T) {
	r := Fig4Workloads(42)
	if len(r.Names) != 4 {
		t.Fatalf("names = %v", r.Names)
	}
	if len(r.Times) != 40 {
		t.Errorf("times = %d, want 40 (10-min steps over 6.5h)", len(r.Times))
	}
	for _, n := range r.Names {
		var maxRate float64
		for _, v := range r.Rates[n] {
			if v < 0 || v > 100 {
				t.Fatalf("%s rate %v out of [0,100]", n, v)
			}
			maxRate = math.Max(maxRate, v)
		}
		if maxRate < 50 {
			t.Errorf("%s peaks at %v, suspiciously low", n, maxRate)
		}
	}
	tbl := r.Table()
	if len(tbl.Rows) != len(r.Times) {
		t.Error("table row mismatch")
	}
	if tbl.Rows[0][0] != "15:00" {
		t.Errorf("first row time = %q", tbl.Rows[0][0])
	}
}

func TestFig6Estimation(t *testing.T) {
	r := Fig6StabilityEstimation(42)
	if len(r.MeasuredMS) < 20 || len(r.MeasuredMS) != len(r.EstimatedMS) {
		t.Fatalf("series lengths %d/%d", len(r.MeasuredMS), len(r.EstimatedMS))
	}
	if r.ErrorPct <= 0 || r.ErrorPct > 100 {
		t.Errorf("error = %v%%", r.ErrorPct)
	}
	if got := r.Table(); len(got.Rows) != len(r.MeasuredMS) {
		t.Error("table row mismatch")
	}
}

func TestFig7Rows(t *testing.T) {
	rows := Fig7AdaptationCosts()
	if len(rows) != 5*8 {
		t.Fatalf("rows = %d, want 40", len(rows))
	}
	byAction := make(map[string][]Fig7Row)
	for _, r := range rows {
		byAction[r.Action] = append(byAction[r.Action], r)
	}
	for action, rs := range byAction {
		for i := 1; i < len(rs); i++ {
			if rs[i].DelayMS < rs[i-1].DelayMS {
				t.Errorf("%s: delay not nondecreasing", action)
			}
		}
	}
	// Fig. 7a ordering at 800 sessions.
	var db, web float64
	for _, r := range rows {
		if r.Sessions != 800 {
			continue
		}
		switch r.Action {
		case "Migration (MySQL)":
			db = r.DeltaWattPct
		case "Migration (Apache)":
			web = r.DeltaWattPct
		}
	}
	if db <= web {
		t.Errorf("MySQL migration watts %v not above Apache %v", db, web)
	}
}

func TestMigrationDurationModel(t *testing.T) {
	lo := MigrationDurationModel(200, 100)
	hi := MigrationDurationModel(200, 800)
	if lo < 10*time.Second || lo > 30*time.Second {
		t.Errorf("low-load duration = %v, want ~16-20s", lo)
	}
	if hi < 60*time.Second || hi > 100*time.Second {
		t.Errorf("high-load duration = %v, want ~80s", hi)
	}
	if hi <= lo {
		t.Error("duration not increasing with load")
	}
}

func TestFig1ShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("request-level experiment")
	}
	r, err := Fig1MigrationCost(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.DeltaWattPct) != 110 {
			t.Fatalf("windows = %d, want 110", len(s.DeltaWattPct))
		}
		if s.PeakDeltaWattPct() <= 2 {
			t.Errorf("%v sessions: no visible power transient (%.1f%%)", s.Sessions, s.PeakDeltaWattPct())
		}
		if s.PeakDeltaRTPct() <= 5 {
			t.Errorf("%v sessions: no visible RT transient (%.1f%%)", s.Sessions, s.PeakDeltaRTPct())
		}
		// Before the migration the deltas hover near zero.
		for w := 0; w < r.MigrationAt; w++ {
			if math.Abs(s.DeltaWattPct[w]) > 15 {
				t.Errorf("pre-migration watt delta %v at window %d", s.DeltaWattPct[w], w)
			}
		}
	}
	if got := r.Tables(); len(got) != 2 {
		t.Error("expected two tables (power, RT)")
	}
}

func TestFig5Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("request-level experiment")
	}
	r, err := Fig5ModelAccuracy(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d, want 12 (16:52..17:14)", len(r.Points))
	}
	// The paper reports ≈5% errors; ours should be in single digits.
	if r.RTErrPct > 12 {
		t.Errorf("RT error = %.1f%%, want single digits", r.RTErrPct)
	}
	if r.UtilErrPct > 12 {
		t.Errorf("util error = %.1f%%", r.UtilErrPct)
	}
	if r.WattsErrPct > 12 {
		t.Errorf("watts error = %.1f%%", r.WattsErrPct)
	}
}

func TestRunStrategyShortScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Trim the traces to one hour.
	for name := range lab.Traces {
		lab.Traces[name].Rates = lab.Traces[name].Rates[:61]
	}
	for _, s := range AllStrategies() {
		res, _, err := RunStrategy(lab, s, false)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(res.Windows) != 30 {
			t.Errorf("%s: %d windows", s, len(res.Windows))
		}
	}
	if _, _, err := RunStrategy(lab, StrategyName("bogus"), false); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestIdealUtilityPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizer sweep")
	}
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := IdealUtility(lab, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("ideal utility over the quiet first hour = %v, want positive", got)
	}
}

func TestWorkloadsStayServable(t *testing.T) {
	// The combined offered load must stay within what maximum replication
	// can serve for all but short flash overlaps, or the whole evaluation
	// degenerates (see DESIGN.md §5).
	set := workload.PaperWorkloads(42, []string{"rubis1", "rubis2"})
	over := 0
	total := 0
	for at := time.Duration(0); at <= workload.ScenarioDuration; at += 2 * time.Minute {
		rates := set.At(at)
		if rates["rubis1"]+rates["rubis2"] > 165 {
			over++
		}
		total++
	}
	if frac := float64(over) / float64(total); frac > 0.1 {
		t.Errorf("combined load exceeds 165 req/s in %.0f%% of windows", frac*100)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", `q"u`}},
	}
	ascii := tbl.ASCII()
	if !strings.Contains(ascii, "T\n") || !strings.Contains(ascii, "--") {
		t.Errorf("ascii = %q", ascii)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Errorf("csv quoting broken: %q", csv)
	}
}

func TestMeasuredCostTable(t *testing.T) {
	if testing.Short() {
		t.Skip("request-level campaign")
	}
	tbl, err := MeasuredCostTable(7, 1, []float64{200, 800})
	if err != nil {
		t.Fatal(err)
	}
	// All measured families present with both workload levels.
	for _, k := range []cost.Key{
		{Kind: cluster.ActionMigrate, Tier: "db"},
		{Kind: cluster.ActionMigrate, Tier: "web"},
		{Kind: cluster.ActionAddReplica, Tier: "db"},
		{Kind: cluster.ActionRemoveReplica, Tier: "app"},
	} {
		es := tbl.Entries(k)
		if len(es) != 2 {
			t.Fatalf("%v: %d entries, want 2", k, len(es))
		}
		if es[1].Duration <= es[0].Duration {
			t.Errorf("%v: duration not growing with sessions (%v -> %v)", k, es[0].Duration, es[1].Duration)
		}
	}
	// The published constants for non-measurable families carried over.
	if _, ok := tbl.Lookup(cost.Key{Kind: cluster.ActionStartHost}, 0); !ok {
		t.Error("host cycling constants missing")
	}
	if _, ok := tbl.Lookup(cost.Key{Kind: cluster.ActionIncreaseCPU}, 400); !ok {
		t.Error("CPU tuning constants missing")
	}
	// The measured table is drop-in usable by a cost manager.
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := cost.NewManager(lab.Cat, tbl, 8)
	if err != nil {
		t.Fatal(err)
	}
	pred := mgr.Predict(lab.Initial, cluster.Action{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: "h3"}, map[string]float64{"rubis1": 50, "rubis2": 50})
	if pred.Duration <= 0 {
		t.Error("measured table produced no duration")
	}
}

func TestFig89AndFig10Rendering(t *testing.T) {
	// Synthetic results exercise the rendering paths without full replays.
	mk := func(name string, cum float64) *scenario.Result {
		return &scenario.Result{
			Strategy: name,
			Windows: []scenario.WindowLog{
				{
					Time:       2 * time.Minute,
					Rates:      map[string]float64{"rubis1": 10, "rubis2": 20},
					RTSec:      map[string]float64{"rubis1": 0.1, "rubis2": 0.2},
					Watts:      200,
					Utility:    cum,
					CumUtility: cum,
					SearchTime: time.Second,
				},
			},
			CumUtility: cum,
		}
	}
	r89 := &Fig89Result{Results: map[StrategyName]*scenario.Result{
		StrategyPerfPwr:  mk("Perf-Pwr", -1),
		StrategyPerfCost: mk("Perf-Cost", 1),
		StrategyPwrCost:  mk("Pwr-Cost", 2),
		StrategyMistral:  mk("Mistral", 3),
	}}
	tables := r89.Tables()
	if len(tables) != 5 {
		t.Fatalf("fig89 tables = %d, want 5", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 || tbl.ASCII() == "" || tbl.CSV() == "" {
			t.Errorf("table %q renders empty", tbl.Title)
		}
	}
	cums := r89.CumUtility()
	if cums[StrategyMistral] != 3 {
		t.Errorf("CumUtility = %v", cums)
	}

	r10 := &Fig10Result{SearchPowerPct: 11.7, SelfAware: mk("Mistral", 3), Naive: mk("Mistral-Naive", 1)}
	tables = r10.Tables()
	if len(tables) != 3 {
		t.Fatalf("fig10 tables = %d, want 3", len(tables))
	}
	a, n := r10.MeanSearch()
	_ = a
	_ = n
}

func TestTable1Rendering(t *testing.T) {
	r := &Table1Result{Scenarios: []Table1Scenario{
		{Apps: 2, VMs: 10, Hosts: 4, SelfAwareMean: time.Second, NaiveMean: 4 * time.Second, MistralUtility: 100, NaiveUtility: 50, IdealUtility: 150},
		{Apps: 4, VMs: 20, Hosts: 8, SelfAwareMean: 2 * time.Second, NaiveMean: 30 * time.Second, MistralUtility: 200, NaiveUtility: 20, IdealUtility: 300},
	}}
	tbl := r.Table()
	if len(tbl.Rows) != 10 {
		t.Fatalf("table1 rows = %d, want 10", len(tbl.Rows))
	}
	if !strings.Contains(tbl.ASCII(), "10 / 4") {
		t.Error("VM/host row missing")
	}
}
