package experiments

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/predict"
	"github.com/mistralcloud/mistral/internal/stats"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Fig3Point is one sample of the performance utility function.
type Fig3Point struct {
	Rate    float64
	Reward  float64
	Penalty float64
}

// Fig3UtilityFunction reproduces Figure 3: the reward and penalty per
// monitoring period as functions of the request rate.
func Fig3UtilityFunction() []Fig3Point {
	points := make([]Fig3Point, 0, 21)
	for rate := 0.0; rate <= 100; rate += 5 {
		points = append(points, Fig3Point{
			Rate:    rate,
			Reward:  utility.PaperReward(rate),
			Penalty: utility.PaperPenalty(rate),
		})
	}
	return points
}

// Fig3Table renders Figure 3.
func Fig3Table(points []Fig3Point) Table {
	t := Table{
		Title:  "Fig. 3 — Performance utility function (dollars per monitoring period)",
		Header: []string{"req/s", "reward", "penalty"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{f0(p.Rate), f(p.Reward), f(p.Penalty)})
	}
	return t
}

// Fig4Result is the four scaled application workloads.
type Fig4Result struct {
	Step  time.Duration
	Names []string
	Times []time.Duration
	Rates map[string][]float64
}

// Fig4Workloads reproduces Figure 4: the four application workloads
// (RUBiS-1/2 from the World Cup shape, RUBiS-3/4 from the HP shape) scaled
// to 0–100 req/s over 15:00–21:30, sampled every 10 minutes as the figure
// ticks.
func Fig4Workloads(seed uint64) *Fig4Result {
	names := []string{"rubis1", "rubis2", "rubis3", "rubis4"}
	set := workload.PaperWorkloads(seed, names)
	res := &Fig4Result{
		Step:  10 * time.Minute,
		Names: names,
		Rates: make(map[string][]float64, len(names)),
	}
	for t := time.Duration(0); t <= workload.ScenarioDuration; t += res.Step {
		res.Times = append(res.Times, t)
		for _, n := range names {
			res.Rates[n] = append(res.Rates[n], set[n].RateAt(t))
		}
	}
	return res
}

// Table renders Figure 4.
func (r *Fig4Result) Table() Table {
	t := Table{
		Title:  "Fig. 4 — Application workloads (req/s), 15:00–21:30",
		Header: append([]string{"time"}, r.Names...),
	}
	for i, at := range r.Times {
		row := []string{workload.Clock(at)}
		for _, n := range r.Names {
			row = append(row, f1(r.Rates[n][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6Result compares measured stability intervals against the ARMA
// estimator's predictions.
type Fig6Result struct {
	MeasuredMS  []float64
	EstimatedMS []float64
	// ErrorPct is the normalized mean absolute error (the paper reports
	// ≈14% on its testbed traces).
	ErrorPct float64
}

// Fig6StabilityEstimation reproduces Figure 6: replaying the RUBiS-1
// workload's stability intervals (8 req/s band, sampled at the 2-minute
// monitoring interval) through the adaptive ARMA estimator of §III-D.
func Fig6StabilityEstimation(seed uint64) *Fig6Result {
	tr := workload.WorldCup(seed, 0)
	measured := workload.StabilityIntervals(tr, 8, 2*time.Minute)
	est := predict.NewEstimator(0, 0, measured[0])
	preds := predict.Replay(est, measured)

	res := &Fig6Result{}
	var a, p []float64
	for i := range measured {
		res.MeasuredMS = append(res.MeasuredMS, float64(measured[i].Milliseconds()))
		res.EstimatedMS = append(res.EstimatedMS, float64(preds[i].Milliseconds()))
		if i > 0 { // the first prediction is just the seed
			a = append(a, measured[i].Seconds())
			p = append(p, preds[i].Seconds())
		}
	}
	res.ErrorPct = stats.NormMeanAbsError(a, p)
	return res
}

// Table renders Figure 6.
func (r *Fig6Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 6 — Stability interval estimation (normalized mean abs error %.1f%%)", r.ErrorPct),
		Header: []string{"window", "measured(ms)", "model(ms)"},
	}
	for i := range r.MeasuredMS {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i + 1), f0(r.MeasuredMS[i]), f0(r.EstimatedMS[i])})
	}
	return t
}

// Fig7Row is one adaptation-cost table entry.
type Fig7Row struct {
	Action       string
	Sessions     float64
	DeltaWattPct float64
	DeltaRTMS    float64
	DelayMS      float64
}

// Fig7AdaptationCosts reproduces Figure 7: the offline-measured adaptation
// cost tables — power delta (as % of the affected two-host baseline),
// response-time delta, and adaptation delay versus concurrent sessions for
// migrations of each tier and db replica addition/removal.
func Fig7AdaptationCosts() []Fig7Row {
	tbl := cost.PaperTable()
	const baselineWatts = 160.0
	families := []struct {
		label string
		key   cost.Key
	}{
		{"Migration (MySQL)", cost.Key{Kind: cluster.ActionMigrate, Tier: "db"}},
		{"Migration (Tomcat)", cost.Key{Kind: cluster.ActionMigrate, Tier: "app"}},
		{"Migration (Apache)", cost.Key{Kind: cluster.ActionMigrate, Tier: "web"}},
		{"Add replica (MySQL)", cost.Key{Kind: cluster.ActionAddReplica, Tier: "db"}},
		{"Remove replica (MySQL)", cost.Key{Kind: cluster.ActionRemoveReplica, Tier: "db"}},
	}
	var rows []Fig7Row
	for _, fam := range families {
		for _, e := range tbl.Entries(fam.key) {
			rows = append(rows, Fig7Row{
				Action:       fam.label,
				Sessions:     e.Sessions,
				DeltaWattPct: e.DeltaWatts / baselineWatts * 100,
				DeltaRTMS:    e.DeltaRTTargetSec * 1000,
				DelayMS:      float64(e.Duration.Milliseconds()),
			})
		}
	}
	return rows
}

// Fig7Table renders Figure 7.
func Fig7Table(rows []Fig7Row) Table {
	t := Table{
		Title:  "Fig. 7 — Adaptation costs vs concurrent sessions",
		Header: []string{"action", "sessions", "dWatt(%)", "dRT(ms)", "delay(ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Action, f0(r.Sessions), f1(r.DeltaWattPct), f0(r.DeltaRTMS), f0(r.DelayMS)})
	}
	return t
}
