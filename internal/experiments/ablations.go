package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/stats"
	"github.com/mistralcloud/mistral/internal/strategy"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/workload"
)

// AblationRow is one configuration's outcome in a design-choice sweep.
type AblationRow struct {
	Label      string
	Utility    float64
	Actions    int
	MeanSearch time.Duration
}

// ablationDuration keeps sweeps affordable while covering the first flash
// crowd (the interesting control regime).
const ablationDuration = 3 * time.Hour

// runMistralVariant replays a shortened scenario under a Mistral variant.
func runMistralVariant(seed uint64, mutate func(*strategy.MistralConfig)) (*scenario.Result, error) {
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	tb, err := lab.NewTestbed()
	if err != nil {
		return nil, err
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		return nil, err
	}
	cfg := strategy.MistralConfig{
		HostGroups:         lab.HostGroups(),
		MonitoringInterval: lab.Util.MonitoringInterval,
		Search:             core.SearchOptions{TimePerChild: 300 * time.Microsecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := strategy.NewMistral(eval, cfg)
	if err != nil {
		return nil, err
	}
	return scenario.Run(tb, m, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: ablationDuration,
		Interval: lab.Util.MonitoringInterval,
		Utility:  lab.Util,
	})
}

// AblationPruneFraction sweeps the Self-Aware beam width (the paper fixes
// it at the top 5%).
func AblationPruneFraction(seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, frac := range []float64{0.01, 0.05, 0.20} {
		res, err := runMistralVariant(seed, func(c *strategy.MistralConfig) {
			c.Search.PruneFraction = frac
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: prune ablation %v: %w", frac, err)
		}
		rows = append(rows, AblationRow{
			Label:      fmt.Sprintf("%.0f%%", frac*100),
			Utility:    res.CumUtility,
			Actions:    res.TotalActions,
			MeanSearch: res.MeanSearchTime,
		})
	}
	return rows, nil
}

// AblationBandWidth sweeps the 2nd-level workload band (the paper uses
// 8 req/s): narrow bands re-plan constantly, wide bands react late.
func AblationBandWidth(seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, band := range []float64{2, 8, 16} {
		res, err := runMistralVariant(seed, func(c *strategy.MistralConfig) {
			c.L2Band = band
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: band ablation %v: %w", band, err)
		}
		rows = append(rows, AblationRow{
			Label:      fmt.Sprintf("%.0freq/s", band),
			Utility:    res.CumUtility,
			Actions:    res.TotalActions,
			MeanSearch: res.MeanSearchTime,
		})
	}
	return rows, nil
}

// ARMAAblationRow is one estimator variant's accuracy.
type ARMAAblationRow struct {
	Label    string
	ErrorPct float64
}

// AblationARMA compares the paper's adaptive-β stability-interval
// estimator against fixed-β exponential blends on the same measured
// interval series.
func AblationARMA(seed uint64) []ARMAAblationRow {
	tr := workload.WorldCup(seed, 0)
	measured := workload.StabilityIntervals(tr, 8, 2*time.Minute)

	evalPreds := func(preds []float64) float64 {
		var a, p []float64
		for i := 1; i < len(measured); i++ {
			a = append(a, measured[i].Seconds())
			p = append(p, preds[i])
		}
		return stats.NormMeanAbsError(a, p)
	}

	rows := []ARMAAblationRow{}

	// Adaptive β (the paper's §III-D estimator).
	{
		r := Fig6StabilityEstimation(seed)
		rows = append(rows, ARMAAblationRow{Label: "adaptive", ErrorPct: r.ErrorPct})
	}

	// Fixed-β blends of the last measurement and the 3-interval history.
	for _, beta := range []float64{0.2, 0.5, 0.8} {
		preds := make([]float64, len(measured))
		est := measured[0].Seconds()
		var hist []float64
		for i, m := range measured {
			preds[i] = est
			mv := m.Seconds()
			histMean := mv
			if len(hist) > 0 {
				lo := len(hist) - 3
				if lo < 0 {
					lo = 0
				}
				histMean = stats.Mean(hist[lo:])
			}
			est = (1-beta)*mv + beta*histMean
			hist = append(hist, mv)
		}
		rows = append(rows, ARMAAblationRow{
			Label:    fmt.Sprintf("beta=%.1f", beta),
			ErrorPct: evalPreds(preds),
		})
	}
	return rows
}

// AblationDVFS contrasts Mistral with and without the §VI DVFS extension:
// hosts that can downclock shave watts during quiet phases without
// migrations or power cycling.
func AblationDVFS(seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, levels := range [][]float64{nil, {0.6, 0.8}} {
		label := "no-dvfs"
		if levels != nil {
			label = "dvfs-60/80"
		}
		lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed, DVFSLevels: levels})
		if err != nil {
			return nil, err
		}
		tb, err := lab.NewTestbed()
		if err != nil {
			return nil, err
		}
		eval, err := lab.NewEvaluator()
		if err != nil {
			return nil, err
		}
		m, err := strategy.NewMistral(eval, strategy.MistralConfig{
			HostGroups:         lab.HostGroups(),
			MonitoringInterval: lab.Util.MonitoringInterval,
			Search:             core.SearchOptions{TimePerChild: 300 * time.Microsecond},
		})
		if err != nil {
			return nil, err
		}
		res, err := scenario.Run(tb, m, scenario.RunConfig{
			Traces:   lab.Traces,
			Duration: ablationDuration,
			Interval: lab.Util.MonitoringInterval,
			Utility:  lab.Util,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: DVFS ablation %s: %w", label, err)
		}
		rows = append(rows, AblationRow{
			Label:      label,
			Utility:    res.CumUtility,
			Actions:    res.TotalActions,
			MeanSearch: res.MeanSearchTime,
		})
	}
	return rows, nil
}

// AblationMultiZone quantifies the structural cost of splitting the same
// cluster across data centers (the §VI WAN extension): each application is
// pinned to a home zone, cross-zone traffic pays WAN latency, and only the
// 3rd hierarchy level may move VMs between zones — so flash crowds that a
// single-zone cluster absorbs by borrowing any host cost real utility.
func AblationMultiZone(seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, zones := range []int{1, 2} {
		label := "single-zone"
		if zones > 1 {
			label = fmt.Sprintf("%d-zones", zones)
		}
		lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed, Zones: zones})
		if err != nil {
			return nil, err
		}
		tb, err := lab.NewTestbed()
		if err != nil {
			return nil, err
		}
		eval, err := lab.NewEvaluator()
		if err != nil {
			return nil, err
		}
		m, err := strategy.NewMistral(eval, strategy.MistralConfig{
			HostGroups:         lab.HostGroups(),
			MonitoringInterval: lab.Util.MonitoringInterval,
			Search:             core.SearchOptions{TimePerChild: 300 * time.Microsecond},
		})
		if err != nil {
			return nil, err
		}
		res, err := scenario.Run(tb, m, scenario.RunConfig{
			Traces:   lab.Traces,
			Duration: ablationDuration,
			Interval: lab.Util.MonitoringInterval,
			Utility:  lab.Util,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: multizone ablation %s: %w", label, err)
		}
		rows = append(rows, AblationRow{
			Label:      label,
			Utility:    res.CumUtility,
			Actions:    res.TotalActions,
			MeanSearch: res.MeanSearchTime,
		})
	}
	return rows, nil
}

// FidelityResult compares the analytic and request-level testbeds
// measuring the same steady configuration.
type FidelityResult struct {
	AnalyticRTSec, RequestRTSec float64
	AnalyticWatts, RequestWatts float64
	RTGapPct, WattsGapPct       float64
}

// AblationFidelity measures the same configuration and workload in both
// testbed modes; a small gap certifies that the fast analytic mode used in
// the long replays agrees with the request-level ground truth.
func AblationFidelity(seed uint64) (*FidelityResult, error) {
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	rates := map[string]float64{"rubis1": 50, "rubis2": 50}
	measure := func(mode testbed.Mode) (float64, float64, error) {
		tb, err := testbed.New(lab.Cat, lab.Apps, lab.Initial, rates, lab.Costs, testbed.Options{
			Mode: mode, Seed: seed, RTNoise: -1, WattsNoise: -1,
		})
		if err != nil {
			return 0, 0, err
		}
		if _, err := tb.MeasureWindow(time.Minute); err != nil { // warm-up
			return 0, 0, err
		}
		w, err := tb.MeasureWindow(tb.Now() + 4*time.Minute)
		if err != nil {
			return 0, 0, err
		}
		return w.RTSec["rubis1"], w.Watts, nil
	}
	aRT, aW, err := measure(testbed.ModeAnalytic)
	if err != nil {
		return nil, err
	}
	rRT, rW, err := measure(testbed.ModeRequestLevel)
	if err != nil {
		return nil, err
	}
	return &FidelityResult{
		AnalyticRTSec: aRT, RequestRTSec: rRT,
		AnalyticWatts: aW, RequestWatts: rW,
		RTGapPct:    100 * math.Abs(aRT-rRT) / rRT,
		WattsGapPct: 100 * math.Abs(aW-rW) / rW,
	}, nil
}
