package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/stats"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/workload"
)

// MigrationDurationModel estimates a live migration's duration from first
// principles on the paper's testbed fabric: the VM's memory is pushed over
// a 100 Mbps segment in iterative pre-copy rounds whose count grows with
// the page-dirtying rate, i.e. with workload.
func MigrationDurationModel(memMB int, sessions float64) time.Duration {
	base := float64(memMB) * 8 / 100 // seconds at wire speed
	dirty := 0.8 * stats.Clamp(sessions/800, 0, 1)
	rounds := 1 / (1 - dirty)
	return time.Duration(base * rounds * float64(time.Second))
}

// campaignTable builds the cost table used while *measuring* costs: action
// durations from the duration model (deltas are emergent in request-level
// mode and therefore zeroed here).
func campaignTable(memMB int) *cost.Table {
	t := cost.NewTable()
	for s := 100.0; s <= 800; s += 100 {
		d := MigrationDurationModel(memMB, s)
		for _, tier := range []string{"web", "app", "db"} {
			t.Add(cost.Key{Kind: cluster.ActionMigrate, Tier: tier}, cost.Entry{Sessions: s, Duration: d})
			t.Add(cost.Key{Kind: cluster.ActionAddReplica, Tier: tier}, cost.Entry{Sessions: s, Duration: d + 10*time.Second})
			t.Add(cost.Key{Kind: cluster.ActionRemoveReplica, Tier: tier}, cost.Entry{Sessions: s, Duration: d})
		}
	}
	return t
}

// Fig7MeasuredCampaign reruns the paper's offline cost-measurement
// protocol (§III-C) against the request-level testbed: a target and a
// background application with all replicas at 40% CPU, random VM
// placements, a 1-minute warm-up, baseline measurement, one adaptation
// action, and measurement of its duration and response-time/power deltas.
// Results are averaged across trials and indexed by workload, yielding a
// measured counterpart to the Fig. 7 tables.
func Fig7MeasuredCampaign(seed uint64, trials int, sessionLevels []float64) ([]Fig7Row, error) {
	if trials <= 0 {
		trials = 3
	}
	if len(sessionLevels) == 0 {
		sessionLevels = []float64{100, 200, 400, 800}
	}
	tiers := []struct{ tier, label string }{
		{"db", "Migration (MySQL)"},
		{"app", "Migration (Tomcat)"},
		{"web", "Migration (Apache)"},
	}
	rng := sim.NewRNG(seed, 0xca3b)
	var rows []Fig7Row
	for _, sessions := range sessionLevels {
		rate := workload.RateForSessions(sessions)
		for _, tc := range tiers {
			var dW, dRT, dur stats.Welford
			for trial := 0; trial < trials; trial++ {
				m, err := measureOneAction(rng.Split(), cluster.ActionMigrate, tc.tier, rate)
				if err != nil {
					return nil, fmt.Errorf("experiments: campaign %s at %v sessions: %w", tc.tier, sessions, err)
				}
				dW.Add(m.dWPct)
				dRT.Add(m.dRT)
				dur.Add(m.duration.Seconds())
			}
			rows = append(rows, Fig7Row{
				Action:       tc.label,
				Sessions:     sessions,
				DeltaWattPct: dW.Mean(),
				DeltaRTMS:    dRT.Mean() * 1000,
				DelayMS:      dur.Mean() * 1000,
			})
		}
	}
	return rows, nil
}

// measurement is one campaign trial's outcome.
type measurement struct {
	dWPct    float64 // power delta, percent of baseline
	dWatts   float64 // power delta, absolute
	dRT      float64 // target app response-time delta, seconds
	dRTCoLoc float64 // background app response-time delta, seconds
	duration time.Duration
}

// measureOneAction runs one trial of the campaign: random placement,
// warm-up, baseline window, one adaptation action, action window.
func measureOneAction(rng *sim.RNG, kind cluster.ActionKind, tier string, rate float64) (measurement, error) {
	lab, err := NewLab(LabOptions{NumApps: 2, NumHosts: 4, Seed: rng.Uint64()})
	if err != nil {
		return measurement{}, err
	}
	cfg, vm, dst, err := randomCampaignPlacement(lab, rng, tier)
	if err != nil {
		return measurement{}, err
	}
	action := cluster.Action{Kind: kind, VM: vm, Host: dst}
	switch kind {
	case cluster.ActionMigrate:
	case cluster.ActionAddReplica:
		// Add the dormant second replica of the tier to the destination.
		action.VM = cluster.VMID("rubis1-" + tier + "-1")
	case cluster.ActionRemoveReplica:
		// Activate the second replica first so there is one to remove.
		second := cluster.VMID("rubis1-" + tier + "-1")
		cfg.Place(second, dst, 40)
		if !cfg.IsCandidate(lab.Cat) {
			return measurement{}, fmt.Errorf("replica setup invalid")
		}
		action = cluster.Action{Kind: kind, VM: second}
	default:
		return measurement{}, fmt.Errorf("unsupported campaign action %v", kind)
	}

	rates := map[string]float64{"rubis1": rate, "rubis2": rate}
	memMB := 200
	if spec, ok := lab.Cat.VM(vm); ok {
		memMB = spec.MemoryMB
	}
	tb, err := testbed.New(lab.Cat, lab.Apps, cfg, rates, campaignTable(memMB), testbed.Options{
		Mode:       testbed.ModeRequestLevel,
		ClosedLoop: true,
		Seed:       rng.Uint64(),
	})
	if err != nil {
		return measurement{}, err
	}
	// Warm-up (1 minute, as in the paper), then the baseline window.
	if _, err := tb.MeasureWindow(time.Minute); err != nil {
		return measurement{}, err
	}
	base, err := tb.MeasureWindow(tb.Now() + time.Minute)
	if err != nil {
		return measurement{}, err
	}
	rep, err := tb.Execute([]cluster.Action{action})
	if err != nil {
		return measurement{}, err
	}
	during, err := tb.MeasureWindow(tb.Now() + rep.Duration)
	if err != nil {
		return measurement{}, err
	}
	m := measurement{
		dWatts:   during.Watts - base.Watts,
		dRT:      during.RTSec["rubis1"] - base.RTSec["rubis1"],
		dRTCoLoc: during.RTSec["rubis2"] - base.RTSec["rubis2"],
		duration: rep.Duration,
	}
	if base.Watts > 0 {
		m.dWPct = m.dWatts / base.Watts * 100
	}
	return m, nil
}

// MeasuredCostTable runs the full §III-C campaign and assembles a
// cost.Table from the measurements — the closed loop the paper describes:
// measure offline, consult at runtime. Controllers and testbeds accept the
// result anywhere PaperTable is accepted. Host power cycling and CPU
// tuning keep their published constants (they are not campaign-measurable
// at request level).
func MeasuredCostTable(seed uint64, trials int, sessionLevels []float64) (*cost.Table, error) {
	if trials <= 0 {
		trials = 3
	}
	if len(sessionLevels) == 0 {
		sessionLevels = []float64{100, 200, 400, 800}
	}
	rng := sim.NewRNG(seed, 0x7ab1e)
	table := cost.NewTable()
	families := []struct {
		kind cluster.ActionKind
		tier string
	}{
		{cluster.ActionMigrate, "db"}, {cluster.ActionMigrate, "app"}, {cluster.ActionMigrate, "web"},
		{cluster.ActionAddReplica, "db"}, {cluster.ActionAddReplica, "app"},
		{cluster.ActionRemoveReplica, "db"}, {cluster.ActionRemoveReplica, "app"},
	}
	for _, fam := range families {
		for _, sessions := range sessionLevels {
			rate := workload.RateForSessions(sessions)
			var dW, dRT, dRTCo, dur stats.Welford
			for trial := 0; trial < trials; trial++ {
				m, err := measureOneAction(rng.Split(), fam.kind, fam.tier, rate)
				if err != nil {
					return nil, fmt.Errorf("experiments: campaign %v(%s) at %v sessions: %w", fam.kind, fam.tier, sessions, err)
				}
				dW.Add(m.dWatts)
				dRT.Add(m.dRT)
				dRTCo.Add(m.dRTCoLoc)
				dur.Add(m.duration.Seconds())
			}
			table.Add(cost.Key{Kind: fam.kind, Tier: fam.tier}, cost.Entry{
				Sessions:            sessions,
				Duration:            time.Duration(dur.Mean() * float64(time.Second)),
				DeltaRTTargetSec:    math.Max(0, dRT.Mean()),
				DeltaRTColocatedSec: math.Max(0, dRTCo.Mean()),
				DeltaWatts:          math.Max(0, dW.Mean()),
			})
		}
	}
	// Published constants for the families the request-level campaign
	// cannot measure.
	paper := cost.PaperTable()
	for _, kind := range []cluster.ActionKind{
		cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU,
		cluster.ActionStartHost, cluster.ActionStopHost, cluster.ActionSetDVFS,
	} {
		for _, e := range paper.Entries(cost.Key{Kind: kind}) {
			table.Add(cost.Key{Kind: kind}, e)
		}
	}
	return table, nil
}

// randomCampaignPlacement places one replica per tier of both applications
// at 40% CPU on random hosts (the §III-C protocol) and picks the rubis1 VM
// of the requested tier plus a feasible migration destination.
func randomCampaignPlacement(lab *Lab, rng *sim.RNG, tier string) (cluster.Config, cluster.VMID, string, error) {
	hosts := lab.Cat.HostNames()
	for attempt := 0; attempt < 200; attempt++ {
		cfg := cluster.NewConfig()
		for _, h := range hosts {
			cfg.SetHostOn(h, true)
		}
		ok := true
		for _, a := range lab.Apps {
			for _, t := range a.Tiers {
				id := a.VMIDFor(t.Name, 0)
				placed := false
				start := rng.IntN(len(hosts))
				for i := 0; i < len(hosts); i++ {
					h := hosts[(start+i)%len(hosts)]
					spec, _ := lab.Cat.Host(h)
					if cfg.AllocatedCPU(h)+40 <= spec.UsableCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs {
						cfg.Place(id, h, 40)
						placed = true
						break
					}
				}
				if !placed {
					ok = false
				}
			}
		}
		if !ok || !cfg.IsCandidate(lab.Cat) {
			continue
		}
		vm := cluster.VMID("rubis1-" + tier + "-0")
		p, active := cfg.PlacementOf(vm)
		if !active {
			continue
		}
		for _, h := range cfg.ActiveHosts() {
			spec, _ := lab.Cat.Host(h)
			if h != p.Host && cfg.AllocatedCPU(h)+p.CPUPct <= spec.UsableCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs {
				return cfg, vm, h, nil
			}
		}
	}
	return cluster.Config{}, "", "", fmt.Errorf("no feasible random placement found")
}
