package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
)

// BenchResult is the machine-readable search-performance snapshot emitted
// by `mistral-exp -run bench` (and, for whole replays, by
// `mistral-sim -bench-json`). The committed BENCH_search.json at the repo
// root is one of these, and the CI benchmark leg compares a fresh run's
// NsPerExpansion against it. Wall-clock figures are machine-dependent;
// Expansions, Generated, and CacheHitPct are deterministic for a seed and
// double as a cheap drift check between runs.
type BenchResult struct {
	// Fixture provenance.
	Seed      uint64 `json:"seed"`
	Apps      int    `json:"apps"`
	Hosts     int    `json:"hosts"`
	Windows   int    `json:"windows"`
	Workers   int    `json:"workers"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Deterministic work counters.
	Expansions int `json:"expansions"`
	Generated  int `json:"generated"`

	// Wall-clock performance (decide path only: ideal + search).
	WallSec            float64 `json:"wall_sec"`
	ExpansionsPerSec   float64 `json:"expansions_per_sec"`
	NsPerExpansion     float64 `json:"ns_per_expansion"`
	AllocsPerExpansion float64 `json:"allocs_per_expansion"`
	BytesPerExpansion  float64 `json:"bytes_per_expansion"`
	CacheHitPct        float64 `json:"cache_hit_pct"`
	DecideP50Ms        float64 `json:"decide_p50_ms"`
	DecideP99Ms        float64 `json:"decide_p99_ms"`
}

// benchCycle is the workload cycle driven through the decide path: each
// window assigns rubis1 the point and rubis2 its mirror (80−point), so
// every window needs a different ideal and a non-trivial plan. Revisited
// points land in the same 0.01 req/s rate band, which is what gives the
// cross-window cache something to reuse — exactly like a diurnal workload
// returning to a familiar operating point.
var benchCycle = []float64{10, 25, 40, 55, 70, 55, 40, 25}

// BenchOptions configures BenchSearch.
type BenchOptions struct {
	// Workers is the search's evaluation concurrency (0 = default).
	Workers int
	// Windows overrides the number of control windows measured (default
	// 64; -quick uses 16).
	Windows int
}

// BenchSearch measures the decide hot path — per-window cache boundary,
// Perf-Pwr ideal, Self-Aware A* search — over a cycle of workload bands,
// always planning from the default configuration. Searching from the same
// distant start every window is the controller's worst case for
// per-expansion allocation (deep frontiers, long plans) and therefore the
// quantity Eq. 3 charges back to utility. It deliberately excludes the
// testbed so the numbers isolate the controller's own cost.
func BenchSearch(seed uint64, opts BenchOptions) (*BenchResult, error) {
	lab, err := NewLab(LabOptions{NumApps: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		return nil, err
	}
	searcher := core.NewSearcher(eval, core.SearchOptions{SelfAware: true, Workers: opts.Workers})
	windows := opts.Windows
	if windows <= 0 {
		windows = 64
	}
	cw := 2 * time.Hour // long window: disruptive plans stay worthwhile

	r := &BenchResult{
		Seed:      seed,
		Apps:      lab.Opts.NumApps,
		Hosts:     lab.Opts.NumHosts,
		Windows:   windows,
		Workers:   opts.Workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	var hits, misses int
	harvest := func() {
		st := eval.CacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	lats := make([]time.Duration, 0, windows)
	var wall time.Duration

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < windows; i++ {
		point := benchCycle[i%len(benchCycle)]
		rates := map[string]float64{"rubis1": point, "rubis2": 80 - point}
		harvest()
		eval.BeginWindow()
		t0 := time.Now()
		ideal, err := core.PerfPwr(eval, rates, core.PerfPwrOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: window %d ideal: %w", i, err)
		}
		res, err := searcher.Search(lab.Initial, rates, cw, ideal, core.ExpectedUtility{}, cluster.ActionSpace{})
		if err != nil {
			return nil, fmt.Errorf("bench: window %d search: %w", i, err)
		}
		lat := time.Since(t0)
		wall += lat
		lats = append(lats, lat)
		r.Expansions += res.Expanded
		r.Generated += res.Generated
	}
	runtime.ReadMemStats(&m1)
	harvest()

	r.WallSec = wall.Seconds()
	if r.Expansions > 0 {
		r.ExpansionsPerSec = float64(r.Expansions) / wall.Seconds()
		r.NsPerExpansion = float64(wall.Nanoseconds()) / float64(r.Expansions)
		r.AllocsPerExpansion = float64(m1.Mallocs-m0.Mallocs) / float64(r.Expansions)
		r.BytesPerExpansion = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(r.Expansions)
	}
	if hits+misses > 0 {
		r.CacheHitPct = 100 * float64(hits) / float64(hits+misses)
	}
	r.DecideP50Ms = QuantileMs(lats, 0.50)
	r.DecideP99Ms = QuantileMs(lats, 0.99)
	return r, nil
}

// QuantileMs returns the q-quantile of the samples in milliseconds
// (nearest-rank on a sorted copy).
func QuantileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx].Nanoseconds()) / 1e6
}

// WriteJSON writes the result as indented JSON to path.
func (r *BenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareBaseline checks the run against a committed BenchResult JSON:
// NsPerExpansion may not regress by more than tolerancePct percent. It
// returns a human-readable verdict line, or an error when the regression
// gate trips (or the baseline is unreadable).
func (r *BenchResult) CompareBaseline(path string, tolerancePct float64) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("bench baseline: %w", err)
	}
	var base BenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return "", fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if base.NsPerExpansion <= 0 {
		return "", fmt.Errorf("bench baseline %s: ns_per_expansion missing", path)
	}
	limit := base.NsPerExpansion * (1 + tolerancePct/100)
	ratio := r.NsPerExpansion / base.NsPerExpansion
	if r.NsPerExpansion > limit {
		return "", fmt.Errorf("bench regression: %.0f ns/expansion vs baseline %.0f (%.2fx, tolerance %+.0f%%)",
			r.NsPerExpansion, base.NsPerExpansion, ratio, tolerancePct)
	}
	return fmt.Sprintf("bench ok: %.0f ns/expansion vs baseline %.0f (%.2fx, tolerance %+.0f%%)",
		r.NsPerExpansion, base.NsPerExpansion, ratio, tolerancePct), nil
}

// Table renders the snapshot for the mistral-exp emitter.
func (r *BenchResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Search hot-path benchmark (seed %d, %d windows, %d apps on %d hosts, workers %d, %s %s/%s)",
			r.Seed, r.Windows, r.Apps, r.Hosts, r.Workers, r.GoVersion, r.GOOS, r.GOARCH),
		Header: []string{"metric", "value"},
	}
	row := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	row("expansions", fmt.Sprint(r.Expansions))
	row("generated children", fmt.Sprint(r.Generated))
	row("decide wall", fmt.Sprintf("%.2fs", r.WallSec))
	row("expansions/s", fmt.Sprintf("%.0f", r.ExpansionsPerSec))
	row("ns/expansion", fmt.Sprintf("%.0f", r.NsPerExpansion))
	row("allocs/expansion", fmt.Sprintf("%.0f", r.AllocsPerExpansion))
	row("bytes/expansion", fmt.Sprintf("%.0f", r.BytesPerExpansion))
	row("cache hit %", fmt.Sprintf("%.1f", r.CacheHitPct))
	row("decide p50", fmt.Sprintf("%.1fms", r.DecideP50Ms))
	row("decide p99", fmt.Sprintf("%.1fms", r.DecideP99Ms))
	return t
}
