// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): the migration-cost transients of Fig. 1, the utility
// function of Fig. 3, the workloads of Fig. 4, the model validation of
// Fig. 5, the stability-interval estimation of Fig. 6, the adaptation-cost
// tables of Fig. 7, the four-strategy comparison of Figs. 8–9, the
// search-cost analysis of Fig. 10, and the scalability study of Table I —
// plus ablations beyond the paper. Each experiment is a pure function from
// a Lab (the assembled environment) to a typed result that renders as an
// ASCII table or CSV.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// LabOptions configures a reproduction environment.
type LabOptions struct {
	// NumApps is the number of RUBiS instances (1–4; the paper names them
	// RUBiS-1..4). Default 2.
	NumApps int
	// NumHosts is the number of application hosts (the paper pairs 2 hosts
	// per application). Default 2×NumApps.
	NumHosts int
	// Seed drives workload synthesis, noise, and the request-level
	// simulator.
	Seed uint64
	// ModelErrorPct perturbs the controller's model demands relative to the
	// ground truth, reproducing offline-measurement error (default 4; set
	// negative for a perfect model).
	ModelErrorPct float64
	// Mode selects the testbed fidelity (default analytic).
	Mode testbed.Mode
	// DVFSLevels, when set, equips every host with these frequency levels
	// (the §VI extension); the 1st-level controllers then use SetDVFS as a
	// near-free power knob.
	DVFSLevels []float64
	// Zones, when above 1, spreads the hosts evenly across this many data
	// centers named dc0..dcN-1 (the §VI WAN extension); Mistral then adds
	// a 3rd hierarchy level owning WAN migration.
	Zones int
	// PlanningHeadroom tightens the response-time target the controllers
	// plan against, as a fraction of the scored target (default 0.9):
	// predictor error and measurement noise would otherwise flip windows
	// sitting exactly on the reward/penalty cliff. Set to 1 for no
	// headroom.
	PlanningHeadroom float64
}

func (o LabOptions) withDefaults() LabOptions {
	if o.NumApps <= 0 {
		o.NumApps = 2
	}
	if o.NumHosts <= 0 {
		o.NumHosts = 2 * o.NumApps
	}
	if o.ModelErrorPct == 0 {
		o.ModelErrorPct = 4
	} else if o.ModelErrorPct < 0 {
		o.ModelErrorPct = 0
	}
	if o.Mode == 0 {
		o.Mode = testbed.ModeAnalytic
	}
	if o.PlanningHeadroom <= 0 || o.PlanningHeadroom > 1 {
		o.PlanningHeadroom = 0.9
	}
	return o
}

// Lab is a fully assembled reproduction environment: calibrated application
// models (ground truth and the controller's imperfect copy), catalog,
// utility parameters, cost tables, workloads, and the initial
// configuration.
type Lab struct {
	Opts     LabOptions
	Cat      *cluster.Catalog
	Apps     []*app.Spec // ground truth (drives the testbed)
	CtrlApps []*app.Spec // controller's imperfect model parameters
	AppNames []string
	Util     *utility.Params
	Costs    *cost.Table
	Traces   workload.Set
	Initial  cluster.Config
	// CalibrationScale is the demand scale applied to hit the paper's
	// 400 ms @ 50 req/s default operating point.
	CalibrationScale float64
}

// NewLab builds a Lab.
func NewLab(opts LabOptions) (*Lab, error) {
	opts = opts.withDefaults()
	names := make([]string, opts.NumApps)
	apps := make([]*app.Spec, opts.NumApps)
	for i := range apps {
		names[i] = fmt.Sprintf("rubis%d", i+1)
		apps[i] = app.RUBiS(names[i])
	}
	hosts := make([]cluster.HostSpec, opts.NumHosts)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec(fmt.Sprintf("h%d", i))
		hosts[i].DVFSLevels = opts.DVFSLevels
		if opts.Zones > 1 {
			hosts[i].Zone = fmt.Sprintf("dc%d", i*opts.Zones/opts.NumHosts)
		}
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var initial cluster.Config
	if opts.Zones > 1 {
		// Zone-aware default placement: each application is pinned to a
		// home data center (apps split across DCs would pay permanent WAN
		// latency and could only be repaired by the 3rd level).
		initial, err = zonedDefaultConfig(cat, apps, 40)
	} else {
		initial, err = app.DefaultConfig(cat, apps, opts.NumHosts, 40)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	load := make(map[string]float64, len(names))
	for _, n := range names {
		load[n] = 50
	}
	scale, err := lqn.CalibrateDemands(cat, apps, initial, load, names[0])
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	// The controller's model parameters come from an offline measurement
	// phase; perturb them against the ground truth accordingly.
	rng := sim.NewRNG(opts.Seed, 0xfeed)
	ctrlApps := make([]*app.Spec, len(apps))
	for i, a := range apps {
		c := a.Clone(a.Name)
		if opts.ModelErrorPct > 0 {
			for j := range c.Txns {
				// Perturb tiers in sorted order: map iteration order would
				// make the "offline measurement error" irreproducible.
				tiers := make([]string, 0, len(c.Txns[j].DemandMS))
				for tier := range c.Txns[j].DemandMS {
					tiers = append(tiers, tier)
				}
				sort.Strings(tiers)
				scaled := make(map[string]float64, len(tiers))
				for _, tier := range tiers {
					scaled[tier] = rng.Jitter(c.Txns[j].DemandMS[tier], opts.ModelErrorPct/100)
				}
				c.Txns[j].DemandMS = scaled
			}
		}
		ctrlApps[i] = c
	}

	return &Lab{
		Opts:             opts,
		Cat:              cat,
		Apps:             apps,
		CtrlApps:         ctrlApps,
		AppNames:         names,
		Util:             utility.PaperParams(names),
		Costs:            cost.PaperTable(),
		Traces:           workload.PaperWorkloads(opts.Seed, names),
		Initial:          initial,
		CalibrationScale: scale,
	}, nil
}

// zonedDefaultConfig places each application's tiers within a single home
// zone (round-robin over zones), powering on every host.
func zonedDefaultConfig(cat *cluster.Catalog, apps []*app.Spec, cpuPct float64) (cluster.Config, error) {
	zones := cat.Zones()
	cfg := cluster.NewConfig()
	for _, h := range cat.HostNames() {
		cfg.SetHostOn(h, true)
	}
	for i, a := range apps {
		zone := zones[i%len(zones)]
		zoneHosts := cat.HostsInZone(zone)
		for _, t := range a.Tiers {
			placed := false
			best, bestFree := "", 0.0
			for _, h := range zoneHosts {
				spec, _ := cat.Host(h)
				free := spec.UsableCPUPct - cfg.AllocatedCPU(h)
				if free >= cpuPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs && free > bestFree {
					best, bestFree = h, free
				}
			}
			if best != "" {
				cfg.Place(a.VMIDFor(t.Name, 0), best, cpuPct)
				placed = true
			}
			if !placed {
				return cluster.Config{}, fmt.Errorf("experiments: cannot place %s/%s in zone %s", a.Name, t.Name, zone)
			}
		}
	}
	if vs := cfg.Validate(cat); len(vs) > 0 {
		return cluster.Config{}, fmt.Errorf("experiments: zoned default config invalid: %v", vs[0])
	}
	return cfg, nil
}

// NewTestbed builds a fresh virtual testbed in the lab's initial
// configuration with the traces' rates at time zero.
func (l *Lab) NewTestbed() (*testbed.Testbed, error) {
	return l.NewTestbedWithFaults(nil)
}

// NewTestbedWithFaults is NewTestbed with a fault injector wired into the
// testbed's execution and measurement paths; a nil (or disabled) injector
// reproduces NewTestbed exactly.
func (l *Lab) NewTestbedWithFaults(inj *fault.Injector) (*testbed.Testbed, error) {
	return l.NewTestbedExec(inj, testbed.FailForward)
}

// NewTestbedExec is NewTestbedWithFaults with an explicit execution
// policy; RollbackOnFailure makes plans transactional (compensating
// inverse actions on non-retryable failure).
func (l *Lab) NewTestbedExec(inj *fault.Injector, exec testbed.ExecPolicy) (*testbed.Testbed, error) {
	tb, err := testbed.New(l.Cat, l.Apps, l.Initial, l.Traces.At(0), l.Costs, testbed.Options{
		Mode:  l.Opts.Mode,
		Seed:  l.Opts.Seed,
		Fault: inj,
		Exec:  exec,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return tb, nil
}

// NewEvaluator builds a controller evaluator over the lab's (imperfect)
// controller model. The evaluator plans against response-time targets
// tightened by the planning headroom; scenario scoring uses the untouched
// targets in l.Util.
func (l *Lab) NewEvaluator() (*core.Evaluator, error) {
	model, err := lqn.NewModel(l.Cat, l.CtrlApps, lqn.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	costMgr, err := cost.NewManager(l.Cat, l.Costs, workload.SessionsPerReqSec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	planUtil := &utility.Params{
		MonitoringInterval:       l.Util.MonitoringInterval,
		PowerCostPerWattInterval: l.Util.PowerCostPerWattInterval,
		Apps:                     make(map[string]utility.AppParams, len(l.Util.Apps)),
	}
	for name, a := range l.Util.Apps {
		a.TargetRT = time.Duration(float64(a.TargetRT) * l.Opts.PlanningHeadroom)
		// Plan with a graded penalty: when no configuration can meet a
		// target, prefer the least-degraded service instead of shedding
		// capacity for power. Scoring (l.Util) keeps the paper's flat Eq. 1.
		a.PenaltyGradient = 1.5
		planUtil.Apps[name] = a
	}
	eval, err := core.NewEvaluator(l.Cat, model, planUtil, costMgr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return eval, nil
}

// TrueEvaluator builds an evaluator over the ground-truth model (used to
// compute ideal utilities for Table I).
func (l *Lab) TrueEvaluator() (*core.Evaluator, error) {
	model, err := lqn.NewModel(l.Cat, l.Apps, lqn.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	costMgr, err := cost.NewManager(l.Cat, l.Costs, workload.SessionsPerReqSec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	eval, err := core.NewEvaluator(l.Cat, model, l.Util, costMgr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return eval, nil
}

// HostGroups partitions the lab's hosts for the 1st-level controllers,
// following the paper: the 2-app scenario uses one group with all hosts;
// larger scenarios split hosts into two groups. Multi-zone labs group per
// zone so 1st-level migrations never cross a WAN boundary.
func (l *Lab) HostGroups() [][]string {
	if zones := l.Cat.Zones(); len(zones) > 1 {
		groups := make([][]string, 0, len(zones))
		for _, z := range zones {
			groups = append(groups, l.Cat.HostsInZone(z))
		}
		return groups
	}
	hosts := l.Cat.HostNames()
	if l.Opts.NumApps <= 2 {
		return [][]string{hosts}
	}
	mid := (len(hosts) + 1) / 2
	return [][]string{hosts[:mid], hosts[mid:]}
}

// ScenarioConfig is the standard replay configuration: the monitoring
// interval plus the duration of the (possibly trimmed) traces.
func (l *Lab) ScenarioConfig() ScenarioConfig {
	var duration time.Duration
	for _, tr := range l.Traces {
		if d := tr.Duration(); d > duration {
			duration = d
		}
	}
	if duration == 0 {
		duration = workload.ScenarioDuration
	}
	return ScenarioConfig{
		Interval: l.Util.MonitoringInterval,
		Duration: duration,
	}
}

// ScenarioConfig carries replay bounds shared by experiments.
type ScenarioConfig struct {
	Interval time.Duration
	Duration time.Duration
}
