package testbed

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
)

// PhaseState is one scheduled action execution in serializable form.
type PhaseState struct {
	StartNS      int64               `json:"start_ns"`
	EndNS        int64               `json:"end_ns"`
	Action       cluster.Action      `json:"action"`
	PredState    PredState           `json:"pred"`
	CfgAfter     cluster.ConfigState `json:"cfg_after"`
	ApplyAtStart bool                `json:"apply_at_start,omitempty"`
	Applied      bool                `json:"applied,omitempty"`
	Failed       bool                `json:"failed,omitempty"`
	Rollback     bool                `json:"rollback,omitempty"`
}

// PredState is a cost.Prediction in serializable form.
type PredState struct {
	DurationNS int64              `json:"duration_ns"`
	DeltaRTSec map[string]float64 `json:"delta_rt_sec,omitempty"`
	DeltaWatts float64            `json:"delta_watts"`
}

// State is the testbed's complete mutable state in serializable form: the
// virtual clock, the in-effect and final configurations, the current
// workload, the in-flight phases, the measurement-noise stream position,
// the sensor-drop replay cache, and the cost table in force. Construction
// inputs (catalog, app specs, options) are not included — state is restored
// into a testbed freshly built with the same inputs. Only ModeAnalytic is
// supported: the request-level discrete-event simulator's heap of pending
// events is not serializable.
type State struct {
	NowNS    int64               `json:"now_ns"`
	Cfg      cluster.ConfigState `json:"cfg"`
	CfgFinal cluster.ConfigState `json:"cfg_final"`
	Rates    map[string]float64  `json:"rates,omitempty"`
	Phases   []PhaseState        `json:"phases,omitempty"`
	Noise    []byte              `json:"noise"`
	LastMeas *Window             `json:"last_meas,omitempty"`
	Costs    cost.TableState     `json:"costs"`
}

// Snapshot captures the testbed's mutable state. Only supported in
// analytic mode.
func (tb *Testbed) Snapshot() (*State, error) {
	if tb.opts.Mode != ModeAnalytic {
		return nil, fmt.Errorf("testbed: snapshot is only supported in analytic mode")
	}
	noise, err := tb.noise.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	s := &State{
		NowNS:    int64(tb.now),
		Cfg:      tb.cfg.Snapshot(),
		CfgFinal: tb.cfgFinal.Snapshot(),
		Noise:    noise,
		Costs:    tb.costMgr.Table().Snapshot(),
	}
	if len(tb.rates) > 0 {
		s.Rates = make(map[string]float64, len(tb.rates))
		for k, v := range tb.rates {
			s.Rates[k] = v
		}
	}
	for _, ph := range tb.phases {
		ps := PhaseState{
			StartNS:      int64(ph.start),
			EndNS:        int64(ph.end),
			Action:       ph.action,
			CfgAfter:     ph.cfgAfter.Snapshot(),
			ApplyAtStart: ph.applyAtStart,
			Applied:      ph.applied,
			Failed:       ph.failed,
			Rollback:     ph.rollback,
		}
		ps.PredState.DurationNS = int64(ph.pred.Duration)
		ps.PredState.DeltaWatts = ph.pred.DeltaWatts
		if len(ph.pred.DeltaRTSec) > 0 {
			ps.PredState.DeltaRTSec = make(map[string]float64, len(ph.pred.DeltaRTSec))
			for k, v := range ph.pred.DeltaRTSec {
				ps.PredState.DeltaRTSec[k] = v
			}
		}
		s.Phases = append(s.Phases, ps)
	}
	if tb.lastMeas != nil {
		lm := cloneWindow(*tb.lastMeas)
		s.LastMeas = &lm
	}
	return s, nil
}

// Restore overwrites the testbed's mutable state with a captured one. The
// testbed must have been built with the same construction inputs (catalog,
// app specs, options) as the one that produced the snapshot.
func (tb *Testbed) Restore(s *State) error {
	if tb.opts.Mode != ModeAnalytic {
		return fmt.Errorf("testbed: restore is only supported in analytic mode")
	}
	if s == nil {
		return fmt.Errorf("testbed: nil snapshot")
	}
	if err := tb.noise.Restore(s.Noise); err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	costMgr, err := cost.NewManager(tb.cat, cost.RestoreTable(s.Costs), 8)
	if err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	tb.costMgr = costMgr
	tb.now = time.Duration(s.NowNS)
	tb.cfg = cluster.RestoreConfig(s.Cfg)
	tb.cfgFinal = cluster.RestoreConfig(s.CfgFinal)
	tb.rates = make(map[string]float64, len(s.Rates))
	for k, v := range s.Rates {
		tb.rates[k] = v
	}
	tb.phases = nil
	for _, ps := range s.Phases {
		ph := phase{
			start:        time.Duration(ps.StartNS),
			end:          time.Duration(ps.EndNS),
			action:       ps.Action,
			cfgAfter:     cluster.RestoreConfig(ps.CfgAfter),
			applyAtStart: ps.ApplyAtStart,
			applied:      ps.Applied,
			failed:       ps.Failed,
			rollback:     ps.Rollback,
		}
		ph.pred.Duration = time.Duration(ps.PredState.DurationNS)
		ph.pred.DeltaWatts = ps.PredState.DeltaWatts
		if len(ps.PredState.DeltaRTSec) > 0 {
			ph.pred.DeltaRTSec = make(map[string]float64, len(ps.PredState.DeltaRTSec))
			for k, v := range ps.PredState.DeltaRTSec {
				ph.pred.DeltaRTSec[k] = v
			}
		}
		tb.phases = append(tb.phases, ph)
	}
	tb.lastMeas = nil
	if s.LastMeas != nil {
		lm := cloneWindow(*s.LastMeas)
		tb.lastMeas = &lm
	}
	return nil
}

// cloneWindow deep-copies a measurement window's maps.
func cloneWindow(w Window) Window {
	if w.RTSec != nil {
		m := make(map[string]float64, len(w.RTSec))
		for k, v := range w.RTSec {
			m[k] = v
		}
		w.RTSec = m
	}
	if w.HostUtil != nil {
		m := make(map[string]float64, len(w.HostUtil))
		for k, v := range w.HostUtil {
			m[k] = v
		}
		w.HostUtil = m
	}
	if w.Completed != nil {
		m := make(map[string]uint64, len(w.Completed))
		for k, v := range w.Completed {
			m[k] = v
		}
		w.Completed = m
	}
	return w
}
