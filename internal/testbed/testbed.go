// Package testbed is the virtual counterpart of the paper's physical
// testbed: it executes adaptation-action plans against a configuration on a
// virtual clock, charges their measured durations and transient
// response-time/power deltas, and produces per-window "measured" metrics
// (mean response time per application, mean system watts, per-host CPU
// utilization).
//
// Two fidelity modes are offered:
//
//   - ModeAnalytic (default): steady-state behaviour comes from the LQN
//     model evaluated with ground-truth parameters plus calibrated
//     measurement noise, and action transients come from the cost tables.
//     This mode is fast enough to replay the full 6.5 h scenarios of the
//     evaluation hundreds of times.
//
//   - ModeRequestLevel: a request-level discrete-event simulation
//     (package queueing) serves every request; migrations inject Dom-0
//     background load and a stop-and-copy pause so transient costs are
//     emergent rather than table-driven. Used for model validation
//     (Fig. 5), migration-cost measurement (Fig. 1), and the offline
//     cost-measurement campaign (Fig. 7).
package testbed

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/power"
	"github.com/mistralcloud/mistral/internal/queueing"
	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/stats"
)

// Mode selects the testbed fidelity.
type Mode int

// Fidelity modes.
const (
	ModeAnalytic Mode = iota + 1
	ModeRequestLevel
)

// ExecPolicy selects what Execute does with the already-applied prefix of
// a plan when a step suffers a non-retryable injected failure.
type ExecPolicy int

// Execution policies.
const (
	// FailForward keeps the partially applied prefix in place: the cluster
	// stays in the intermediate configuration the failure left it in and
	// the controller replans from there. This is the golden default — a
	// testbed built with the zero Options value behaves byte-identically
	// to one built before ExecPolicy existed.
	FailForward ExecPolicy = iota
	// RollbackOnFailure treats each plan as a transaction: on a
	// non-retryable failure the testbed synthesizes the compensating
	// inverse plan for the applied prefix and executes it on the timeline,
	// charging real rollback costs, so the cluster provably returns to the
	// pre-plan configuration fingerprint. Retryable failures still fail
	// forward (the retry queue may yet complete the step).
	RollbackOnFailure
)

func (p ExecPolicy) String() string {
	switch p {
	case FailForward:
		return "fail-forward"
	case RollbackOnFailure:
		return "rollback-on-failure"
	}
	return fmt.Sprintf("ExecPolicy(%d)", int(p))
}

// ParseExecPolicy maps a policy name (a flag value or a checkpoint recipe
// field) onto its ExecPolicy. The empty string is FailForward, matching
// checkpoints written before the field existed; "rollback" is accepted as
// shorthand for "rollback-on-failure".
func ParseExecPolicy(s string) (ExecPolicy, error) {
	switch strings.ToLower(s) {
	case "", "fail-forward":
		return FailForward, nil
	case "rollback", "rollback-on-failure":
		return RollbackOnFailure, nil
	}
	return 0, fmt.Errorf("testbed: unknown exec policy %q (want fail-forward or rollback)", s)
}

// Options configures a Testbed.
type Options struct {
	// Mode defaults to ModeAnalytic.
	Mode Mode
	// Seed drives measurement noise and the request-level simulator.
	Seed uint64
	// RTNoise is the relative stddev of per-window response-time
	// measurement noise in analytic mode (default 0.03; negative for 0).
	RTNoise float64
	// WattsNoise is the relative stddev of per-window power measurement
	// noise in analytic mode (default 0.015; negative for 0).
	WattsNoise float64
	// MigrationDom0Load is the fraction of the Dom-0 share consumed on the
	// source and destination hosts while a live migration copies pages in
	// request-level mode (default 0.6).
	MigrationDom0Load float64
	// MigrationVMSlowdown is the fraction of the migrating VM's CPU lost to
	// shadow page-table maintenance and page dirtying while the migration
	// runs in request-level mode (default 0.15).
	MigrationVMSlowdown float64
	// MigrationDowntime is the stop-and-copy pause at the end of a live
	// migration in request-level mode (default 300 ms).
	MigrationDowntime time.Duration
	// MigrationNetWatts is the per-involved-host power draw of the NIC,
	// chipset, and memory subsystem while migration traffic flows — power
	// that CPU utilization alone does not capture (default 8 W).
	MigrationNetWatts float64
	// LQN configures the analytic model.
	LQN lqn.Options
	// ClosedLoop drives request-level traffic with the paper's client
	// emulator model — a fixed population of sessions (8 per req/s of
	// offered rate) with exponential think times — instead of an open
	// Poisson stream. Closed loops bound queue growth under transient
	// overload exactly as real user populations do.
	ClosedLoop bool
	// ClosedLoopThink is the mean think time of emulated sessions
	// (default 7.6 s, which makes 8 sessions offer ≈1 req/s at the 400 ms
	// operating point).
	ClosedLoopThink time.Duration
	// Queue configures the request-level simulator.
	Queue queueing.Options
	// Fault optionally injects action failures, transient delays, and sensor
	// faults (package fault). Nil — the default — executes every plan
	// infallibly, byte-identical to a testbed built without the fault plane.
	Fault *fault.Injector
	// Exec selects how Execute treats a non-retryable mid-plan failure:
	// FailForward (the zero value, today's behavior) keeps the partially
	// applied prefix; RollbackOnFailure compensates it back to the pre-plan
	// configuration. See ExecPolicy.
	Exec ExecPolicy
	// Obs overrides the process-default observer (obs.SetDefault) for
	// action-execution metrics and trace events; nil resolves the default.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Mode == 0 {
		o.Mode = ModeAnalytic
	}
	switch {
	case o.RTNoise == 0:
		o.RTNoise = 0.03
	case o.RTNoise < 0:
		o.RTNoise = 0
	}
	switch {
	case o.WattsNoise == 0:
		o.WattsNoise = 0.015
	case o.WattsNoise < 0:
		o.WattsNoise = 0
	}
	if o.MigrationDom0Load <= 0 {
		o.MigrationDom0Load = 0.6
	}
	if o.MigrationVMSlowdown <= 0 {
		o.MigrationVMSlowdown = 0.15
	}
	if o.MigrationDowntime <= 0 {
		o.MigrationDowntime = 300 * time.Millisecond
	}
	if o.MigrationNetWatts <= 0 {
		o.MigrationNetWatts = 8
	}
	if o.ClosedLoopThink <= 0 {
		o.ClosedLoopThink = 7600 * time.Millisecond
	}
	return o
}

// phase is one scheduled action execution on the timeline.
type phase struct {
	start, end   time.Duration
	action       cluster.Action
	pred         cost.Prediction
	cfgAfter     cluster.Config
	applyAtStart bool // stop-host applies its config when the phase begins
	applied      bool
	failed       bool // injected failure: cfgAfter is the unchanged config
	rollback     bool // compensating step undoing an applied step of an aborted plan
}

// Testbed executes plans and measures the resulting system.
type Testbed struct {
	opts    Options
	cat     *cluster.Catalog
	apps    []*app.Spec
	model   *lqn.Model
	costMgr *cost.Manager
	noise   *sim.RNG

	now      time.Duration
	cfg      cluster.Config // configuration currently in effect
	cfgFinal cluster.Config // configuration after all scheduled phases
	rates    map[string]float64
	phases   []phase

	qsys *queueing.System

	// lastMeas caches the previously reported window so an injected sensor
	// drop can replay it; only maintained when a fault injector is set.
	lastMeas *Window

	obsv     *obs.Observer
	cActions *obs.Counter
	cSkipped *obs.Counter
	hActionS *obs.Histogram
	cByKind  map[cluster.ActionKind]*obs.Counter
	trace    obs.TraceContext // current window's causal identity
}

// SetTrace installs the current monitoring window's trace context; the
// testbed's action and crash trace events carry its ID so they join the
// window's causal story. The scenario loop calls it once per window
// (the testbed is driven single-threaded).
func (tb *Testbed) SetTrace(tc obs.TraceContext) { tb.trace = tc }

// New builds a testbed in the given initial configuration and workload.
func New(cat *cluster.Catalog, apps []*app.Spec, initial cluster.Config, rates map[string]float64, costTable *cost.Table, opts Options) (*Testbed, error) {
	opts = opts.withDefaults()
	if vs := initial.Validate(cat); len(vs) > 0 {
		return nil, fmt.Errorf("testbed: initial config invalid: %v", vs[0])
	}
	model, err := lqn.NewModel(cat, apps, opts.LQN)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if costTable == nil {
		costTable = cost.PaperTable()
	}
	costMgr, err := cost.NewManager(cat, costTable, 8)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	tb := &Testbed{
		opts:     opts,
		cat:      cat,
		apps:     apps,
		model:    model,
		costMgr:  costMgr,
		noise:    sim.NewRNG(opts.Seed, 0x7e57bed),
		cfg:      initial.Clone(),
		cfgFinal: initial.Clone(),
		rates:    make(map[string]float64, len(rates)),
	}
	for k, v := range rates {
		tb.rates[k] = v
	}
	o := obs.Resolve(opts.Obs)
	tb.obsv = o
	tb.cActions = o.Counter("actions_total")
	tb.cSkipped = o.Counter("fault_steps_skipped_total")
	tb.hActionS = o.Histogram("action_duration_s", []float64{1, 5, 15, 30, 60, 120, 300, 600})
	if tb.cActions != nil {
		tb.cByKind = make(map[cluster.ActionKind]*obs.Counter)
	}
	if opts.Mode == ModeRequestLevel {
		q := opts.Queue
		if q.Seed == 0 {
			q.Seed = opts.Seed + 1
		}
		tb.qsys, err = queueing.New(cat, apps, initial, q)
		if err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
		for name, r := range tb.rates {
			if err := tb.applyRate(name, r); err != nil {
				return nil, fmt.Errorf("testbed: %w", err)
			}
		}
	}
	return tb, nil
}

// applyRate propagates one application's offered rate to the request-level
// simulator, as a Poisson stream or a closed session population.
func (tb *Testbed) applyRate(name string, r float64) error {
	if tb.opts.ClosedLoop {
		sessions := int(r*8 + 0.5)
		return tb.qsys.SetSessions(name, sessions, tb.opts.ClosedLoopThink)
	}
	return tb.qsys.SetRate(name, r)
}

// Now returns the virtual clock.
func (tb *Testbed) Now() time.Duration { return tb.now }

// Mode returns the testbed's fidelity mode.
func (tb *Testbed) Mode() Mode { return tb.opts.Mode }

// Fault returns the fault injector (nil when the fault plane is disabled).
func (tb *Testbed) Fault() *fault.Injector { return tb.opts.Fault }

// Config returns the configuration currently in effect (transitions apply
// as phases complete). The returned value is a clone.
func (tb *Testbed) Config() cluster.Config { return tb.cfg.Clone() }

// FinalConfig returns the configuration the system will reach once all
// scheduled phases complete. The returned value is a clone.
func (tb *Testbed) FinalConfig() cluster.Config { return tb.cfgFinal.Clone() }

// Rates returns the current per-application request rates (a copy).
func (tb *Testbed) Rates() map[string]float64 {
	out := make(map[string]float64, len(tb.rates))
	for k, v := range tb.rates {
		out[k] = v
	}
	return out
}

// Catalog exposes the managed catalog.
func (tb *Testbed) Catalog() *cluster.Catalog { return tb.cat }

// Apps exposes the application specs.
func (tb *Testbed) Apps() []*app.Spec { return tb.apps }

// CostManager exposes the cost manager (shared with controllers that want
// the same tables the testbed charges).
func (tb *Testbed) CostManager() *cost.Manager { return tb.costMgr }

// SetRates changes the offered request rates from the current instant.
func (tb *Testbed) SetRates(rates map[string]float64) error {
	for k, v := range rates {
		tb.rates[k] = v
		if tb.qsys != nil {
			if err := tb.applyRate(k, v); err != nil {
				return fmt.Errorf("testbed: %w", err)
			}
		}
	}
	return nil
}

// BusyUntil returns the completion time of the last scheduled phase, or the
// current time when idle.
func (tb *Testbed) BusyUntil() time.Duration {
	if len(tb.phases) == 0 {
		return tb.now
	}
	return tb.phases[len(tb.phases)-1].end
}

// Busy reports whether actions are still executing or scheduled.
func (tb *Testbed) Busy() bool { return tb.BusyUntil() > tb.now }

// StepStatus is the outcome of one plan step.
type StepStatus int

// Step outcomes.
const (
	// StepApplied: the action completed and its configuration change took
	// (or will take) effect.
	StepApplied StepStatus = iota + 1
	// StepFailed: an injected failure aborted the action mid-flight; the
	// configuration is unchanged but the sunk transient cost is charged.
	StepFailed
	// StepSkipped: the step was infeasible against the realized
	// configuration (its precondition was destroyed by an earlier injected
	// failure) and consumed no time.
	StepSkipped
	// StepRolledBack: a compensating step executed under RollbackOnFailure
	// to undo a previously applied step of the same plan. Its Action is
	// the inverse action, and its cost is charged on the timeline.
	StepRolledBack
)

func (s StepStatus) String() string {
	switch s {
	case StepApplied:
		return "applied"
	case StepFailed:
		return "failed"
	case StepSkipped:
		return "skipped"
	case StepRolledBack:
		return "rolled-back"
	}
	return fmt.Sprintf("StepStatus(%d)", int(s))
}

// StepReport records one plan step's realized outcome.
type StepReport struct {
	// Action is the step with derived fields filled in (FromHost, CPUPct) —
	// for failed and skipped steps, as it would have executed.
	Action cluster.Action
	Status StepStatus
	// Planned is the cost-table duration; Realized is the time actually
	// consumed on the timeline (longer under an injected delay, the sunk
	// fraction under a failure, zero when skipped).
	Planned, Realized time.Duration
	// Retryable marks an injected failure as transient — re-executing the
	// action may succeed.
	Retryable bool
	// Err describes the failure or skip.
	Err error
}

// ExecReport is the per-step outcome of an executed plan.
type ExecReport struct {
	Steps []StepReport
	// Duration is the plan's total timeline occupancy (the testbed stays
	// Busy this long).
	Duration time.Duration
	// Applied, Failed, and Skipped count steps by status.
	Applied, Failed, Skipped int
	// RolledBack counts compensating steps executed after a non-retryable
	// failure under RollbackOnFailure.
	RolledBack int
	// Compensated reports that a non-retryable failure aborted the plan
	// and the applied prefix was rolled back; FinalFP equals PrePlanFP.
	Compensated bool
	// PrePlanFP and FinalFP fingerprint the scheduled final configuration
	// before the plan and after it completes (or rolls back), so callers
	// can verify the transactional guarantee without re-deriving configs.
	PrePlanFP, FinalFP cluster.Fingerprint
}

// Started counts steps that consumed timeline time (applied + failed).
func (r ExecReport) Started() int { return r.Applied + r.Failed }

// Execute schedules a plan of adaptation actions to run sequentially
// starting when all previously scheduled work completes, and reports each
// step's realized outcome. Without a fault injector every step applies and
// the plan is validated against the final scheduled configuration — an
// invalid step rejects the whole plan with an error, exactly as before the
// fault plane existed. With an injector, steps may fail mid-flight (the
// configuration change is lost but the sunk transient cost is charged —
// a migration that dies at 80% has already copied 80% of the pages), run
// long, or be skipped when an earlier failure destroyed their
// precondition.
func (tb *Testbed) Execute(plan []cluster.Action) (ExecReport, error) {
	startAt := tb.BusyUntil()
	cur := tb.cfgFinal.Clone()
	inj := tb.opts.Fault
	var rep ExecReport
	var newPhases []phase
	// undo records the applied prefix so RollbackOnFailure can compensate
	// it: each entry pairs the filled forward action with the configuration
	// it was applied to.
	type undoRec struct {
		action cluster.Action
		before cluster.Config
	}
	var undo []undoRec
	rep.PrePlanFP = cur.Fingerprint()
	at := startAt
	for i, a := range plan {
		next, filled, err := cluster.Apply(tb.cat, cur, a)
		if err != nil {
			if inj.Enabled() {
				// An earlier injected failure may have invalidated this
				// step's precondition (e.g. the replica its migration would
				// move never started). Degrade: skip the step, execute the
				// rest.
				rep.Steps = append(rep.Steps, StepReport{
					Action: a,
					Status: StepSkipped,
					Err:    fmt.Errorf("testbed: plan step %d: %w", i, err),
				})
				rep.Skipped++
				tb.cSkipped.Inc()
				continue
			}
			return ExecReport{}, fmt.Errorf("testbed: plan step %d: %w", i, err)
		}
		if tb.opts.Mode == ModeRequestLevel {
			switch filled.Kind {
			case cluster.ActionStartHost, cluster.ActionStopHost:
				return ExecReport{}, fmt.Errorf("testbed: plan step %d: host power cycling is not supported in request-level mode", i)
			}
		}
		pred := tb.costMgr.Predict(cur, filled, tb.rates)
		f := inj.Action(filled.Kind)
		dur := pred.Duration
		if f.DelayMult > 1 {
			dur = time.Duration(float64(dur) * f.DelayMult)
		}
		step := StepReport{Action: filled, Planned: pred.Duration}
		ph := phase{start: at, action: filled, pred: pred}
		if f.Fail {
			sunk := time.Duration(float64(dur) * f.SunkFraction)
			ph.end = at + sunk
			ph.cfgAfter = cur.Clone() // the change is lost
			ph.failed = true
			step.Status = StepFailed
			step.Realized = sunk
			step.Retryable = f.Retryable
			step.Err = fmt.Errorf("testbed: injected %s failure after %v of %v", filled.Kind, sunk.Round(time.Millisecond), dur.Round(time.Millisecond))
			rep.Failed++
			if tb.opts.Exec == RollbackOnFailure && !f.Retryable {
				// Transaction abort: the sunk cost of the doomed step is
				// already charged; abandon the rest of the plan and unwind
				// the applied prefix.
				newPhases = append(newPhases, ph)
				at = ph.end
				rep.Steps = append(rep.Steps, step)
				for j := i + 1; j < len(plan); j++ {
					rep.Steps = append(rep.Steps, StepReport{
						Action: plan[j],
						Status: StepSkipped,
						Err:    fmt.Errorf("testbed: plan step %d abandoned: plan rolled back", j),
					})
					rep.Skipped++
					tb.cSkipped.Inc()
				}
				for k := len(undo) - 1; k >= 0; k-- {
					u := undo[k]
					inv, err := cluster.Inverse(u.action, u.before)
					if err != nil {
						// Cannot happen for actions Stage accepted; guard
						// anyway so a future kind fails loudly.
						return ExecReport{}, fmt.Errorf("testbed: rollback step %d: %w", k, err)
					}
					// Compensation executes infallibly — no injector draws —
					// so the cluster deterministically reaches the recorded
					// pre-step configuration; the rollback cost is the cost
					// table's real price for the inverse action.
					ipred := tb.costMgr.Predict(cur, inv, tb.rates)
					iph := phase{
						start:        at,
						end:          at + ipred.Duration,
						action:       inv,
						pred:         ipred,
						cfgAfter:     u.before,
						applyAtStart: inv.Kind == cluster.ActionStopHost,
						rollback:     true,
					}
					newPhases = append(newPhases, iph)
					at = iph.end
					rep.Steps = append(rep.Steps, StepReport{
						Action:   inv,
						Status:   StepRolledBack,
						Planned:  ipred.Duration,
						Realized: ipred.Duration,
					})
					rep.RolledBack++
					cur = u.before
				}
				rep.Compensated = true
				break
			}
		} else {
			ph.end = at + dur
			ph.cfgAfter = next
			ph.applyAtStart = filled.Kind == cluster.ActionStopHost
			step.Status = StepApplied
			step.Realized = dur
			rep.Applied++
			undo = append(undo, undoRec{action: filled, before: cur})
			cur = next
		}
		if step.Status == StepFailed || step.Status == StepApplied {
			newPhases = append(newPhases, ph)
			at = ph.end
			rep.Steps = append(rep.Steps, step)
		}
	}
	rep.Duration = at - startAt
	rep.FinalFP = cur.Fingerprint()
	tb.phases = append(tb.phases, newPhases...)
	tb.cfgFinal = cur
	if tb.qsys != nil {
		tb.injectPhases(newPhases)
	}
	if tb.cActions != nil {
		tb.recordPhases(newPhases)
	}
	return rep, nil
}

// recordPhases emits metrics and trace events for newly scheduled phases.
// Only called when observability is enabled (tb.cActions != nil), so the
// disabled path stays allocation-free.
func (tb *Testbed) recordPhases(phases []phase) {
	tr := tb.obsv.Tracer()
	for _, ph := range phases {
		kind := ph.action.Kind
		c := tb.cByKind[kind]
		if c == nil {
			c = tb.obsv.Counter("actions_" + strings.ReplaceAll(kind.String(), "-", "_") + "_total")
			tb.cByKind[kind] = c
		}
		tb.cActions.Inc()
		c.Inc()
		tb.hActionS.Observe(ph.pred.Duration.Seconds())
		attrs := []obs.Attr{
			{Key: "vm", Value: ph.action.VM},
			{Key: "host", Value: ph.action.Host},
		}
		if ph.failed {
			attrs = append(attrs, obs.Attr{Key: "failed", Value: true})
		}
		if ph.rollback {
			attrs = append(attrs, obs.Attr{Key: "rollback", Value: true})
		}
		if tb.trace.Enabled() {
			attrs = append(attrs, tb.trace.Attr())
		}
		tr.Event("action:"+kind.String(), ph.start, ph.end, attrs...)
	}
}

// injectPhases schedules the request-level side effects of newly planned
// phases on the simulation engine.
func (tb *Testbed) injectPhases(phases []phase) {
	eng := tb.qsys.Engine()
	for i := range phases {
		ph := phases[i]
		if ph.failed {
			tb.injectFailedPhase(ph)
			continue
		}
		switch ph.action.Kind {
		case cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU:
			eng.ScheduleAt(ph.end, func() {
				if p, ok := ph.cfgAfter.PlacementOf(ph.action.VM); ok {
					_ = tb.qsys.SetVMRate(ph.action.VM, p.CPUPct)
				}
			})
		case cluster.ActionMigrate:
			load := tb.opts.MigrationDom0Load
			cpuPct := ph.action.CPUPct
			eng.ScheduleAt(ph.start, func() {
				_ = tb.qsys.SetDom0Background(ph.action.FromHost, load)
				_ = tb.qsys.SetDom0Background(ph.action.Host, load)
				// The migrating VM loses part of its CPU to shadow paging.
				_ = tb.qsys.SetVMRate(ph.action.VM, cpuPct*(1-tb.opts.MigrationVMSlowdown))
			})
			// Stop-and-copy: the VM is frozen for the final downtime, then
			// resumes at full allocation on the destination (the explicit
			// rate-set at ph.end below, which runs after this freeze).
			eng.ScheduleAt(ph.end-tb.opts.MigrationDowntime, func() {
				_ = tb.qsys.SetVMRate(ph.action.VM, 0)
			})
			eng.ScheduleAt(ph.end, func() {
				_ = tb.qsys.SetDom0Background(ph.action.FromHost, 0)
				_ = tb.qsys.SetDom0Background(ph.action.Host, 0)
				_ = tb.qsys.MoveVM(ph.action.VM, ph.action.Host)
				_ = tb.qsys.SetVMRate(ph.action.VM, cpuPct)
			})
		case cluster.ActionAddReplica:
			load := tb.opts.MigrationDom0Load * 0.8
			eng.ScheduleAt(ph.start, func() {
				_ = tb.qsys.SetDom0Background(ph.action.Host, load)
			})
			eng.ScheduleAt(ph.end, func() {
				_ = tb.qsys.SetDom0Background(ph.action.Host, 0)
				if p, ok := ph.cfgAfter.PlacementOf(ph.action.VM); ok {
					_ = tb.qsys.AddVM(ph.action.VM, p.Host, p.CPUPct)
				}
			})
		case cluster.ActionWANMigrate:
			// Sustained but lighter background copy over the WAN link, a
			// longer stop-and-copy pause, and the same endpoint slowdown.
			load := tb.opts.MigrationDom0Load * 0.5
			cpuPct := ph.action.CPUPct
			downtime := 4 * tb.opts.MigrationDowntime
			eng.ScheduleAt(ph.start, func() {
				_ = tb.qsys.SetDom0Background(ph.action.FromHost, load)
				_ = tb.qsys.SetDom0Background(ph.action.Host, load)
				_ = tb.qsys.SetVMRate(ph.action.VM, cpuPct*(1-tb.opts.MigrationVMSlowdown))
			})
			eng.ScheduleAt(ph.end-downtime, func() {
				_ = tb.qsys.SetVMRate(ph.action.VM, 0)
			})
			eng.ScheduleAt(ph.end, func() {
				_ = tb.qsys.SetDom0Background(ph.action.FromHost, 0)
				_ = tb.qsys.SetDom0Background(ph.action.Host, 0)
				_ = tb.qsys.MoveVM(ph.action.VM, ph.action.Host)
				_ = tb.qsys.SetVMRate(ph.action.VM, cpuPct)
			})
		case cluster.ActionSetDVFS:
			eng.ScheduleAt(ph.end, func() {
				allocs := make(map[cluster.VMID]float64)
				for _, id := range ph.cfgAfter.VMsOnHost(ph.action.Host) {
					if p, ok := ph.cfgAfter.PlacementOf(id); ok {
						allocs[id] = p.CPUPct
					}
				}
				_ = tb.qsys.SetHostFreq(ph.action.Host, ph.action.Freq, allocs)
			})
		case cluster.ActionRemoveReplica:
			load := tb.opts.MigrationDom0Load * 0.6
			eng.ScheduleAt(ph.start, func() {
				_ = tb.qsys.SetDom0Background(ph.action.FromHost, load)
				_ = tb.qsys.RemoveVM(ph.action.VM)
			})
			eng.ScheduleAt(ph.end, func() {
				_ = tb.qsys.SetDom0Background(ph.action.FromHost, 0)
			})
		}
	}
}

// injectFailedPhase schedules the request-level side effects of an action
// that fails mid-flight: the transient churn (Dom-0 copy load, shadow-paging
// slowdown) runs for the sunk window, but the configuration change itself —
// the VM move, the replica add/remove — never commits.
func (tb *Testbed) injectFailedPhase(ph phase) {
	eng := tb.qsys.Engine()
	switch ph.action.Kind {
	case cluster.ActionMigrate, cluster.ActionWANMigrate:
		load := tb.opts.MigrationDom0Load
		if ph.action.Kind == cluster.ActionWANMigrate {
			load *= 0.5
		}
		cpuPct := ph.action.CPUPct
		eng.ScheduleAt(ph.start, func() {
			_ = tb.qsys.SetDom0Background(ph.action.FromHost, load)
			_ = tb.qsys.SetDom0Background(ph.action.Host, load)
			_ = tb.qsys.SetVMRate(ph.action.VM, cpuPct*(1-tb.opts.MigrationVMSlowdown))
		})
		eng.ScheduleAt(ph.end, func() {
			_ = tb.qsys.SetDom0Background(ph.action.FromHost, 0)
			_ = tb.qsys.SetDom0Background(ph.action.Host, 0)
			// The VM stays at its source and recovers full speed.
			_ = tb.qsys.SetVMRate(ph.action.VM, cpuPct)
		})
	case cluster.ActionAddReplica:
		load := tb.opts.MigrationDom0Load * 0.8
		eng.ScheduleAt(ph.start, func() {
			_ = tb.qsys.SetDom0Background(ph.action.Host, load)
		})
		eng.ScheduleAt(ph.end, func() {
			_ = tb.qsys.SetDom0Background(ph.action.Host, 0)
		})
	case cluster.ActionRemoveReplica:
		load := tb.opts.MigrationDom0Load * 0.6
		eng.ScheduleAt(ph.start, func() {
			_ = tb.qsys.SetDom0Background(ph.action.FromHost, load)
		})
		eng.ScheduleAt(ph.end, func() {
			_ = tb.qsys.SetDom0Background(ph.action.FromHost, 0)
		})
	}
	// CPU-cap and DVFS failures have no transient side effects to model.
}

// advanceTo moves the clock forward, applying phase transitions.
func (tb *Testbed) advanceTo(t time.Duration) error {
	if t < tb.now {
		return fmt.Errorf("testbed: cannot advance backwards from %v to %v", tb.now, t)
	}
	for i := range tb.phases {
		ph := &tb.phases[i]
		if ph.applied {
			continue
		}
		boundary := ph.end
		if ph.applyAtStart {
			boundary = ph.start
		}
		if boundary <= t {
			tb.cfg = ph.cfgAfter.Clone()
			ph.applied = true
		}
	}
	// Drop fully elapsed phases.
	kept := tb.phases[:0]
	for _, ph := range tb.phases {
		if ph.end > t {
			kept = append(kept, ph)
		}
	}
	tb.phases = kept
	tb.now = t
	if tb.qsys != nil {
		if err := tb.qsys.Run(t); err != nil {
			return fmt.Errorf("testbed: %w", err)
		}
	}
	return nil
}

// Window is one measurement window's aggregated "measured" metrics.
type Window struct {
	From, To time.Duration
	// RTSec is the time-weighted mean response time per application. Apps
	// with zero offered load report zero.
	RTSec map[string]float64
	// Watts is the time-weighted mean system power draw.
	Watts float64
	// HostUtil is the time-weighted mean CPU utilization per powered host.
	HostUtil map[string]float64
	// Completed counts completed requests per app (request-level mode).
	Completed map[string]uint64
	// SensorDropped marks an injected sensor drop: RTSec and Watts replay
	// the previous window's reported values (HostUtil and Completed stay
	// true — they come from a different collection path).
	SensorDropped bool
}

// MeasureWindow advances the clock to 'to' and returns metrics aggregated
// over (Now, to]. In analytic mode the window integrates the piecewise-
// constant model exactly across phase boundaries; in request-level mode it
// is measured from simulated requests.
func (tb *Testbed) MeasureWindow(to time.Duration) (Window, error) {
	if to <= tb.now {
		return Window{}, fmt.Errorf("testbed: window end %v not after now %v", to, tb.now)
	}
	var w Window
	var err error
	if tb.opts.Mode == ModeRequestLevel {
		w, err = tb.measureWindowRequestLevel(to)
	} else {
		w, err = tb.measureWindowAnalytic(to)
	}
	if err != nil {
		return w, err
	}
	if inj := tb.opts.Fault; inj.Enabled() {
		w = tb.applySensorFaults(inj, w)
	}
	return w, nil
}

// applySensorFaults layers injected sensor faults over a measured window: a
// dropped window replays the previous window's reported RT/power values (a
// stale sensor read — the first window cannot drop), and otherwise extra
// noise perturbs the measurements. Either way the reported window is cached
// for the next drop.
func (tb *Testbed) applySensorFaults(inj *fault.Injector, w Window) Window {
	if inj.Sensor().Drop && tb.lastMeas != nil {
		w.RTSec = make(map[string]float64, len(tb.lastMeas.RTSec))
		for name, rt := range tb.lastMeas.RTSec {
			w.RTSec[name] = rt
		}
		w.Watts = tb.lastMeas.Watts
		w.SensorDropped = true
	} else {
		// Extra noise, applied in sorted app order so draws are reproducible.
		names := make([]string, 0, len(w.RTSec))
		for name := range w.RTSec {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			w.RTSec[name] = inj.SensorJitter(w.RTSec[name])
		}
		w.Watts = inj.SensorJitter(w.Watts)
	}
	snap := w
	tb.lastMeas = &snap
	return w
}

func (tb *Testbed) measureWindowAnalytic(to time.Duration) (Window, error) {
	from := tb.now
	w := Window{
		From:     from,
		To:       to,
		RTSec:    make(map[string]float64),
		HostUtil: make(map[string]float64),
	}

	// Breakpoints: every phase start/end (and apply boundary) inside the
	// window splits it into segments with constant behaviour.
	cuts := []time.Duration{from, to}
	for _, ph := range tb.phases {
		for _, b := range []time.Duration{ph.start, ph.end} {
			if b > from && b < to {
				cuts = append(cuts, b)
			}
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	total := (to - from).Seconds()
	for i := 0; i+1 < len(cuts); i++ {
		segFrom, segTo := cuts[i], cuts[i+1]
		if segTo <= segFrom {
			continue
		}
		mid := segFrom + (segTo-segFrom)/2
		cfg, deltaRT, deltaWatts := tb.stateAt(mid)
		res, err := tb.model.Evaluate(cfg, tb.rates, nil)
		if err != nil {
			return Window{}, fmt.Errorf("testbed: %w", err)
		}
		weight := (segTo - segFrom).Seconds() / total
		hostUtil := make(map[string]float64, len(res.Hosts))
		for h, hr := range res.Hosts {
			hostUtil[h] = hr.CPUUtil
			w.HostUtil[h] += weight * hr.CPUUtil
		}
		watts := power.SystemWatts(tb.cat, cfg, hostUtil) + deltaWatts
		w.Watts += weight * watts
		for name := range tb.model.Apps() {
			if tb.rates[name] <= 0 {
				continue
			}
			rt := res.MeanRTSec(name) + deltaRT[name]
			w.RTSec[name] += weight * rt
		}
	}

	// Measurement noise, applied once per window. Apps are visited in
	// sorted order so noise draws are reproducible across runs (map
	// iteration order would otherwise shuffle them).
	names := make([]string, 0, len(w.RTSec))
	for name := range w.RTSec {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w.RTSec[name] = tb.noise.Jitter(w.RTSec[name], tb.opts.RTNoise)
	}
	w.Watts = tb.noise.Jitter(w.Watts, tb.opts.WattsNoise)

	if err := tb.advanceTo(to); err != nil {
		return Window{}, err
	}
	return w, nil
}

// stateAt returns the configuration in effect at time t plus the transient
// deltas of phases active at t.
func (tb *Testbed) stateAt(t time.Duration) (cluster.Config, map[string]float64, float64) {
	cfg := tb.cfg
	deltaRT := make(map[string]float64)
	var deltaWatts float64
	for _, ph := range tb.phases {
		boundary := ph.end
		if ph.applyAtStart {
			boundary = ph.start
		}
		if boundary <= t {
			cfg = ph.cfgAfter
		}
		if ph.start <= t && t < ph.end {
			deltaWatts += ph.pred.DeltaWatts
			for name, d := range ph.pred.DeltaRTSec {
				deltaRT[name] += d
			}
		}
	}
	return cfg, deltaRT, deltaWatts
}

func (tb *Testbed) measureWindowRequestLevel(to time.Duration) (Window, error) {
	from := tb.now
	// Compute transient network power before advanceTo drops elapsed phases.
	netWatts := tb.windowNetWatts(from, to)
	tb.qsys.ResetWindow()
	if err := tb.advanceTo(to); err != nil {
		return Window{}, err
	}
	snap := tb.qsys.Snapshot()
	w := Window{
		From:      from,
		To:        to,
		RTSec:     make(map[string]float64, len(snap.Apps)),
		HostUtil:  snap.HostUtil,
		Completed: make(map[string]uint64, len(snap.Apps)),
	}
	for name, aw := range snap.Apps {
		w.RTSec[name] = aw.MeanRTSec
		w.Completed[name] = aw.Completed
	}
	// Watts from measured utilization plus the host-cycling transients that
	// analytic phases would charge (none in request mode) — here the
	// migration overhead is already inside HostUtil.
	baseCfg, _, _ := tb.stateAt(to)
	util := make(map[string]float64, len(snap.HostUtil))
	for h, u := range snap.HostUtil {
		util[h] = stats.Clamp(u+0.02, 0, 1) // housekeeping floor, as in the LQN
	}
	w.Watts = power.SystemWatts(tb.cat, baseCfg, util) + netWatts
	return w, nil
}

// CrashReport describes one injected host crash and its emergency recovery.
type CrashReport struct {
	// Host is the crashed host.
	Host string
	// Displaced lists the VMs that were running on the host when it died.
	Displaced []cluster.VMID
	// Restarted maps each displaced VM the HA restart could re-place to its
	// recovery host.
	Restarted map[cluster.VMID]string
	// Stranded lists displaced VMs no surviving host had room for; they stay
	// dormant until a controller re-adds them.
	Stranded []cluster.VMID
	// Recovery is the duration of the restart transient (the testbed stays
	// Busy this long).
	Recovery time.Duration
}

// CrashHost fails a powered-on host immediately: its VMs are dropped, the
// host goes dark, and a deterministic HA restart re-places each displaced
// VM on the surviving host with the most free CPU (greedy best-fit in
// sorted VM order; ties break to the lexicographically first host). Each
// restart charges replica-start transients, so the window after a crash
// pays both the lost capacity and the recovery churn. VMs that fit nowhere
// stay dormant — the analytic model degrades them to saturation rather
// than erroring — and when the crashed host was the last one powered on it
// reboots with its VMs restored (the "cold HA" path) so the system never
// wedges. Only supported in analytic mode while the testbed is idle.
func (tb *Testbed) CrashHost(host string) (CrashReport, error) {
	if tb.opts.Mode == ModeRequestLevel {
		return CrashReport{}, fmt.Errorf("testbed: host crashes are not supported in request-level mode")
	}
	if tb.Busy() {
		return CrashReport{}, fmt.Errorf("testbed: cannot crash %q while actions execute", host)
	}
	if !tb.cfg.HostOn(host) {
		return CrashReport{}, fmt.Errorf("testbed: host %q is not powered on", host)
	}
	cfg := tb.cfg.Clone()
	rep := CrashReport{Host: host, Restarted: make(map[cluster.VMID]string)}
	rep.Displaced = cfg.VMsOnHost(host)
	prev := make(map[cluster.VMID]cluster.Placement, len(rep.Displaced))
	for _, id := range rep.Displaced {
		p, _ := cfg.PlacementOf(id)
		prev[id] = p
		cfg.Unplace(id)
	}
	cfg.SetHostOn(host, false)
	cfg.SetHostFreq(host, 1)

	merged := cost.Prediction{DeltaRTSec: make(map[string]float64)}
	restart := func(id cluster.VMID, target string, cpuPct float64) {
		a := cluster.Action{Kind: cluster.ActionAddReplica, VM: id, Host: target, CPUPct: cpuPct}
		pred := tb.costMgr.Predict(cfg, a, tb.rates)
		cfg.Place(id, target, cpuPct)
		rep.Restarted[id] = target
		if pred.Duration > merged.Duration {
			merged.Duration = pred.Duration
		}
		merged.DeltaWatts += pred.DeltaWatts
		for name, d := range pred.DeltaRTSec {
			merged.DeltaRTSec[name] += d
		}
	}

	if cfg.NumActiveHosts() == 0 {
		// Last host standing: reboot it with its VMs restored, charging a
		// host start plus the replica restarts.
		cfg.SetHostOn(host, true)
		boot := tb.costMgr.Predict(cfg, cluster.Action{Kind: cluster.ActionStartHost, Host: host}, tb.rates)
		merged.Duration = boot.Duration
		merged.DeltaWatts = boot.DeltaWatts
		for name, d := range boot.DeltaRTSec {
			merged.DeltaRTSec[name] += d
		}
		for _, id := range rep.Displaced {
			restart(id, host, prev[id].CPUPct)
		}
	} else {
		for _, id := range rep.Displaced {
			target, free := "", 0.0
			for _, h := range cfg.ActiveHosts() {
				spec, ok := tb.cat.Host(h)
				if !ok {
					continue
				}
				f := spec.UsableCPUPct - cfg.AllocatedCPU(h)
				if f >= tb.cat.MinCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs && f > free {
					target, free = h, f
				}
			}
			if target == "" {
				rep.Stranded = append(rep.Stranded, id)
				continue
			}
			cpuPct := prev[id].CPUPct
			if cpuPct > free {
				cpuPct = free
			}
			restart(id, target, cpuPct)
		}
	}

	// The crash itself is instantaneous; the HA restart occupies the
	// timeline as one merged recovery phase whose configuration is already
	// in effect (restarting VMs run degraded, which the transient deltas
	// model).
	tb.cfg = cfg.Clone()
	tb.cfgFinal = cfg.Clone()
	rep.Recovery = merged.Duration
	if merged.Duration > 0 {
		tb.phases = append(tb.phases, phase{
			start:        tb.now,
			end:          tb.now + merged.Duration,
			pred:         merged,
			cfgAfter:     cfg.Clone(),
			applyAtStart: true,
			applied:      true,
		})
	}
	tb.obsv.Counter("testbed_host_crashes_total").Inc()
	crashAttrs := []obs.Attr{
		{Key: "host", Value: host},
		{Key: "displaced", Value: len(rep.Displaced)},
		{Key: "stranded", Value: len(rep.Stranded)},
	}
	if tb.trace.Enabled() {
		crashAttrs = append(crashAttrs, tb.trace.Attr())
	}
	tb.obsv.Tracer().Event("host-crash", tb.now, tb.now+merged.Duration, crashAttrs...)
	return rep, nil
}

// windowNetWatts returns the time-weighted NIC/chipset power of data-moving
// phases (migration, replica add/remove) overlapping the window.
func (tb *Testbed) windowNetWatts(from, to time.Duration) float64 {
	window := (to - from).Seconds()
	if window <= 0 {
		return 0
	}
	var watts float64
	for _, ph := range tb.phases {
		var hosts float64
		switch ph.action.Kind {
		case cluster.ActionMigrate, cluster.ActionWANMigrate:
			hosts = 2
		case cluster.ActionAddReplica, cluster.ActionRemoveReplica:
			hosts = 2 // target host plus the cold-store repository
		default:
			continue
		}
		lo, hi := ph.start, ph.end
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			watts += tb.opts.MigrationNetWatts * hosts * (hi - lo).Seconds() / window
		}
	}
	return watts
}
