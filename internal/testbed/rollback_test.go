package testbed

import (
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
	"github.com/mistralcloud/mistral/internal/sim"
)

// randomPlan builds a small random plan that stages cleanly against cfg, so
// any execution failure comes from the injector, never from validation.
func randomPlan(rng *sim.RNG, cat *cluster.Catalog, cfg cluster.Config) []cluster.Action {
	var plan []cluster.Action
	scratch := cfg
	want := 1 + rng.IntN(3)
	for attempts := 0; len(plan) < want && attempts < 24; attempts++ {
		vms := scratch.ActiveVMs()
		if len(vms) == 0 {
			break
		}
		vm := vms[rng.IntN(len(vms))]
		var a cluster.Action
		switch rng.IntN(4) {
		case 0: // migrate to any other host with room
			p, _ := scratch.PlacementOf(vm)
			dst := ""
			for _, h := range scratch.ActiveHosts() {
				if h == p.Host {
					continue
				}
				spec, _ := cat.Host(h)
				if scratch.AllocatedCPU(h)+p.CPUPct <= spec.UsableCPUPct && len(scratch.VMsOnHost(h)) < spec.MaxVMs {
					dst = h
					break
				}
			}
			if dst == "" {
				continue
			}
			a = cluster.Action{Kind: cluster.ActionMigrate, VM: vm, Host: dst}
		case 1:
			a = cluster.Action{Kind: cluster.ActionIncreaseCPU, VM: vm, DeltaCPUPct: 5}
		case 2:
			a = cluster.Action{Kind: cluster.ActionDecreaseCPU, VM: vm, DeltaCPUPct: 5}
		default: // power on a spare host, if any is off
			off := ""
			for _, h := range cat.HostNames() {
				if !scratch.HostOn(h) {
					off = h
					break
				}
			}
			if off == "" {
				continue
			}
			a = cluster.Action{Kind: cluster.ActionStartHost, Host: off}
		}
		next, _, err := cluster.Apply(cat, scratch, a)
		if err != nil {
			continue
		}
		plan = append(plan, a)
		scratch = next
	}
	return plan
}

// TestRollbackRestoresFingerprint is the transactional property test: under
// RollbackOnFailure with mostly non-retryable failures and host crashes
// interleaved between plans, every compensated plan must leave the
// scheduled configuration at exactly the pre-plan 128-bit fingerprint.
func TestRollbackRestoresFingerprint(t *testing.T) {
	compensations := 0
	for seed := uint64(1); seed <= 20; seed++ {
		cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
		opts := noiseless(ModeAnalytic)
		opts.Fault = fault.New(fault.Options{
			Seed:              seed,
			ActionFailRate:    0.5,
			RetryableFraction: -1, // every failure terminal
			HostCrashPerHour:  1,  // crash re-placements interleave with plans
		})
		opts.Exec = RollbackOnFailure
		tb, err := New(cat, apps, cfg, map[string]float64{"rubis1": 40, "rubis2": 40}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(seed, 99)
		for round := 0; round < 10; round++ {
			if _, err := tb.MeasureWindow(tb.Now() + 2*time.Minute); err != nil {
				t.Fatal(err)
			}
			plan := randomPlan(rng, cat, tb.FinalConfig())
			if len(plan) == 0 {
				continue
			}
			rep, err := tb.Execute(plan)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if !rep.Compensated {
				if rep.RolledBack != 0 {
					t.Fatalf("seed %d round %d: %d rolled-back steps without compensation", seed, round, rep.RolledBack)
				}
				continue
			}
			compensations++
			if rep.FinalFP != rep.PrePlanFP {
				t.Fatalf("seed %d round %d: rollback fingerprint %v != pre-plan %v", seed, round, rep.FinalFP, rep.PrePlanFP)
			}
			if got := tb.FinalConfig().Fingerprint(); got != rep.PrePlanFP {
				t.Fatalf("seed %d round %d: scheduled config fingerprint %v != pre-plan %v", seed, round, got, rep.PrePlanFP)
			}
			if rep.RolledBack != rep.Applied {
				t.Fatalf("seed %d round %d: %d applied but %d rolled back", seed, round, rep.Applied, rep.RolledBack)
			}
			// The report reads as a transaction log: applied prefix, one
			// failure, abandoned remainder, then the compensation steps.
			var failed, rolled int
			for _, st := range rep.Steps {
				switch st.Status {
				case StepFailed:
					failed++
					if st.Retryable {
						t.Fatalf("seed %d round %d: compensated plan aborted on a retryable failure", seed, round)
					}
				case StepRolledBack:
					rolled++
				case StepSkipped:
					if st.Err == nil || !strings.Contains(st.Err.Error(), "rolled back") {
						t.Fatalf("seed %d round %d: abandoned step lacks rollback cause: %+v", seed, round, st)
					}
				}
			}
			if failed != 1 || rolled != rep.RolledBack {
				t.Fatalf("seed %d round %d: step ledger failed=%d rolled=%d, want 1/%d", seed, round, failed, rolled, rep.RolledBack)
			}
		}
	}
	if compensations == 0 {
		t.Fatal("property run never exercised a rollback; raise the fail rate")
	}
}

// TestFailForwardNeverCompensates pins the golden default: the same chaos,
// executed under FailForward, never runs a compensating step.
func TestFailForwardNeverCompensates(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
	opts := noiseless(ModeAnalytic)
	opts.Fault = fault.New(fault.Options{Seed: 5, ActionFailRate: 0.6, RetryableFraction: -1, HostCrashPerHour: 1})
	tb, err := New(cat, apps, cfg, map[string]float64{"rubis1": 40, "rubis2": 40}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5, 99)
	sawFailure := false
	for round := 0; round < 20; round++ {
		if _, err := tb.MeasureWindow(tb.Now() + 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		plan := randomPlan(rng, cat, tb.FinalConfig())
		if len(plan) == 0 {
			continue
		}
		rep, err := tb.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed > 0 {
			sawFailure = true
		}
		if rep.Compensated || rep.RolledBack != 0 {
			t.Fatalf("round %d: fail-forward compensated: %+v", round, rep)
		}
		for _, st := range rep.Steps {
			if st.Status == StepRolledBack {
				t.Fatalf("round %d: fail-forward produced a rolled-back step", round)
			}
		}
	}
	if !sawFailure {
		t.Fatal("fail-forward run never saw a failure; the comparison is vacuous")
	}
}

// TestRetryableFailureFailsForwardUnderRollback: retryable failures are the
// retry queue's business even under RollbackOnFailure — the transaction
// only aborts on terminal failures.
func TestRetryableFailureFailsForwardUnderRollback(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	opts := noiseless(ModeAnalytic)
	opts.Fault = fault.New(fault.Options{Seed: 3, ActionFailRate: 1, RetryableFraction: 1})
	opts.Exec = RollbackOnFailure
	tb, err := New(cat, apps, cfg, map[string]float64{"rubis1": 40}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	rep, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Compensated || rep.RolledBack != 0 {
		t.Fatalf("report = %+v, want one retryable failure and no compensation", rep)
	}
	if !rep.Steps[0].Retryable {
		t.Fatalf("step not marked retryable: %+v", rep.Steps[0])
	}
}
