package testbed

import (
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/fault"
)

// faulty returns noiseless options with a live injector.
func faulty(mode Mode, opts fault.Options) Options {
	o := noiseless(mode)
	o.Fault = fault.New(opts)
	return o
}

func TestFailedMigrationLeavesVMAtSource(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	rates := map[string]float64{"rubis1": 40}
	tb, err := New(cat, apps, cfg, rates, nil, faulty(ModeAnalytic, fault.Options{Seed: 2, ActionFailRate: 1}))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	src, _ := tb.Config().PlacementOf("rubis1-db-0")
	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	rep, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Applied != 0 || rep.Skipped != 0 {
		t.Fatalf("report = %+v, want one failed step", rep)
	}
	st := rep.Steps[0]
	if st.Status != StepFailed || st.Err == nil {
		t.Errorf("step = %+v, want StepFailed with error", st)
	}
	// The abort happens partway through: sunk time is charged but shorter
	// than the planned copy.
	if st.Realized <= 0 || st.Realized >= st.Planned {
		t.Errorf("realized %v not in (0, planned %v)", st.Realized, st.Planned)
	}
	if rep.Duration != st.Realized {
		t.Errorf("report duration %v != sunk %v", rep.Duration, st.Realized)
	}
	if !tb.Busy() {
		t.Error("testbed not busy during the doomed copy")
	}
	// The VM never moves.
	if p, _ := tb.Config().PlacementOf("rubis1-db-0"); p.Host != src.Host {
		t.Errorf("failed migration moved VM to %s", p.Host)
	}
	// The window covering the failed copy still pays the transient churn.
	w1, err := tb.MeasureWindow(4 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("failed migration charged no transient: RT %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
	if w1.Watts <= w0.Watts {
		t.Errorf("failed migration charged no power: %v -> %v", w0.Watts, w1.Watts)
	}
}

func TestFailedStepSkipsDependents(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	rates := map[string]float64{"rubis1": 40}
	opts := fault.Options{
		Seed:           3,
		FailRateByKind: map[cluster.ActionKind]float64{cluster.ActionAddReplica: 1},
	}
	tb, err := New(cat, apps, cfg, rates, nil, faulty(ModeAnalytic, opts))
	if err != nil {
		t.Fatal(err)
	}
	// A powered-on host with room for the new replica.
	target := ""
	for _, h := range tb.Config().ActiveHosts() {
		spec, _ := cat.Host(h)
		if tb.Config().AllocatedCPU(h)+cat.MinCPUPct <= spec.UsableCPUPct && len(tb.Config().VMsOnHost(h)) < spec.MaxVMs {
			target = h
			break
		}
	}
	if target == "" {
		t.Fatal("no host with room for a replica")
	}
	rep, err := tb.Execute([]cluster.Action{
		{Kind: cluster.ActionAddReplica, VM: "rubis1-db-1", Host: target},
		{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-db-1", DeltaCPUPct: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Skipped != 1 || rep.Applied != 0 {
		t.Fatalf("report = %+v, want failed=1 skipped=1", rep)
	}
	if rep.Steps[1].Status != StepSkipped || rep.Steps[1].Err == nil {
		t.Errorf("dependent step = %+v, want StepSkipped", rep.Steps[1])
	}
	if _, ok := tb.Config().PlacementOf("rubis1-db-1"); ok {
		t.Error("failed add-replica still placed the VM")
	}
}

func TestDelayedActionStretchesDuration(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	rates := map[string]float64{"rubis1": 40}
	tb, err := New(cat, apps, cfg, rates, nil, faulty(ModeAnalytic, fault.Options{Seed: 4, DelayRate: 1, DelayMaxMult: 3}))
	if err != nil {
		t.Fatal(err)
	}
	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	rep, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Steps[0]
	if st.Status != StepApplied {
		t.Fatalf("delayed step = %+v, want applied", st)
	}
	if st.Realized <= st.Planned {
		t.Errorf("realized %v not stretched beyond planned %v", st.Realized, st.Planned)
	}
	// Once the stretched copy completes, the migration still lands.
	if _, err := tb.MeasureWindow(tb.BusyUntil() + time.Minute); err != nil {
		t.Fatal(err)
	}
	if p, _ := tb.Config().PlacementOf("rubis1-db-0"); p.Host != dst {
		t.Error("delayed migration did not land")
	}
}

func TestCrashHostReplacesVMs(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
	rates := map[string]float64{"rubis1": 40, "rubis2": 40}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	victim := tb.Config().ActiveHosts()[0]
	nVMs := len(tb.Config().VMsOnHost(victim))
	if nVMs == 0 {
		t.Fatalf("no VMs on %s", victim)
	}
	rep, err := tb.CrashHost(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Host != victim || len(rep.Displaced) != nVMs {
		t.Errorf("report = %+v, want %d displaced from %s", rep, nVMs, victim)
	}
	if len(rep.Restarted)+len(rep.Stranded) != len(rep.Displaced) {
		t.Errorf("restarted %d + stranded %d != displaced %d", len(rep.Restarted), len(rep.Stranded), len(rep.Displaced))
	}
	now := tb.Config()
	if now.HostOn(victim) {
		t.Error("crashed host still powered on")
	}
	for vm, h := range rep.Restarted {
		if p, ok := now.PlacementOf(vm); !ok || p.Host != h {
			t.Errorf("restarted VM %s not at %s", vm, h)
		}
	}
	for _, vm := range rep.Stranded {
		if _, ok := now.PlacementOf(vm); ok {
			t.Errorf("stranded VM %s still placed", vm)
		}
	}
	if len(rep.Restarted) > 0 {
		if rep.Recovery <= 0 || !tb.Busy() {
			t.Error("HA restart charged no recovery transient")
		}
	}
	// The cluster stays measurable after the crash.
	if _, err := tb.MeasureWindow(tb.BusyUntil() + 2*time.Minute); err != nil {
		t.Fatalf("post-crash window: %v", err)
	}
}

func TestCrashHostDeterministic(t *testing.T) {
	mk := func() (*Testbed, string) {
		cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
		rates := map[string]float64{"rubis1": 40, "rubis2": 40}
		tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
		if err != nil {
			t.Fatal(err)
		}
		return tb, tb.Config().ActiveHosts()[0]
	}
	a, ha := mk()
	b, hb := mk()
	ra, err := a.CrashHost(ha)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.CrashHost(hb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("identical crashes recovered differently:\n%+v\n%+v", ra, rb)
	}
}

func TestCrashLastHostReboots(t *testing.T) {
	cat, apps, cfg := setup(t, 2, "rubis1")
	rates := map[string]float64{"rubis1": 40}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	hosts := tb.Config().ActiveHosts()
	if len(hosts) != 2 {
		t.Fatalf("active hosts = %v", hosts)
	}
	for i := range hosts {
		if i > 0 {
			// Let the previous recovery finish first.
			if _, err := tb.MeasureWindow(tb.BusyUntil() + time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		// The second crash may target a host that is now off (its VMs moved
		// with the first crash) — find a live one.
		live := tb.Config().ActiveHosts()
		if len(live) == 0 {
			t.Fatal("no live hosts")
		}
		if _, err := tb.CrashHost(live[0]); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
	}
	// The cold-HA path keeps at least one host running with the VMs back.
	if tb.Config().NumActiveHosts() < 1 {
		t.Fatal("cluster wedged at zero hosts")
	}
	if _, err := tb.MeasureWindow(tb.BusyUntil() + 2*time.Minute); err != nil {
		t.Fatalf("post-reboot window: %v", err)
	}
}

func TestCrashHostRejections(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	rates := map[string]float64{"rubis1": 40}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CrashHost("h3"); err == nil {
		t.Error("crash of powered-off host accepted")
	}
	if _, err := tb.CrashHost("nope"); err == nil {
		t.Error("crash of unknown host accepted")
	}
	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	if _, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CrashHost(tb.Config().ActiveHosts()[0]); err == nil {
		t.Error("crash while busy accepted")
	}
}
