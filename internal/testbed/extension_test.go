package testbed

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/lqn"
)

// zonedSetup builds a 2-app environment across two zones with DVFS-capable
// hosts.
func zonedSetup(t *testing.T) (*cluster.Catalog, []*app.Spec, cluster.Config) {
	t.Helper()
	apps := []*app.Spec{app.RUBiS("rubis1"), app.RUBiS("rubis2")}
	hosts := make([]cluster.HostSpec, 4)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec("h" + string(rune('0'+i)))
		hosts[i].DVFSLevels = []float64{0.6, 0.8}
		if i < 2 {
			hosts[i].Zone = "east"
		} else {
			hosts[i].Zone = "west"
		}
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	for _, h := range cat.HostNames() {
		cfg.SetHostOn(h, true)
	}
	// rubis1 in east, rubis2 in west.
	cfg.Place("rubis1-web-0", "h0", 30)
	cfg.Place("rubis1-app-0", "h0", 40)
	cfg.Place("rubis1-db-0", "h1", 40)
	cfg.Place("rubis2-web-0", "h2", 30)
	cfg.Place("rubis2-app-0", "h2", 40)
	cfg.Place("rubis2-db-0", "h3", 40)
	if !cfg.IsCandidate(cat) {
		t.Fatalf("setup config invalid: %v", cfg.Validate(cat))
	}
	load := map[string]float64{"rubis1": 50, "rubis2": 50}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, load, "rubis1"); err != nil {
		t.Fatal(err)
	}
	return cat, apps, cfg
}

func TestAnalyticWANMigration(t *testing.T) {
	cat, apps, cfg := zonedSetup(t)
	rates := map[string]float64{"rubis1": 40, "rubis2": 40}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionWANMigrate, VM: "rubis1-db-0", Host: "h3"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration < 5*time.Minute {
		t.Errorf("WAN migration duration = %v, want minutes-scale", rep.Duration)
	}
	// Window during the WAN copy: elevated RT and watts.
	w1, err := tb.MeasureWindow(6 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("WAN migration did not raise RT: %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
	if w1.Watts <= w0.Watts {
		t.Errorf("WAN migration did not raise watts: %v -> %v", w0.Watts, w1.Watts)
	}
	// Let it complete; the VM is in the other zone and the app now pays
	// cross-zone latency permanently.
	for tb.Busy() {
		if _, err := tb.MeasureWindow(tb.Now() + 2*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if p, _ := tb.Config().PlacementOf("rubis1-db-0"); p.Host != "h3" {
		t.Errorf("VM on %s after WAN migration, want h3", p.Host)
	}
	wEnd, err := tb.MeasureWindow(tb.Now() + 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if gap := wEnd.RTSec["rubis1"] - w0.RTSec["rubis1"]; gap < 0.020 {
		t.Errorf("cross-zone placement RT gap = %v, want ≥ 20ms (WAN hop)", gap)
	}
}

func TestAnalyticDVFSAction(t *testing.T) {
	cat, apps, cfg := zonedSetup(t)
	rates := map[string]float64{"rubis1": 15, "rubis2": 15}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Downclock every host.
	var plan []cluster.Action
	for _, h := range cat.HostNames() {
		plan = append(plan, cluster.Action{Kind: cluster.ActionSetDVFS, Host: h, Freq: 0.6})
	}
	if _, err := tb.Execute(plan); err != nil {
		t.Fatal(err)
	}
	// DVFS actions are sub-second: the next window runs downclocked.
	w1, err := tb.MeasureWindow(4 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Watts >= w0.Watts {
		t.Errorf("downclocking did not save power: %v -> %v", w0.Watts, w1.Watts)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("downclocking did not slow service: %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
	for _, h := range cat.HostNames() {
		if got := tb.Config().HostFreq(h); got != 0.6 {
			t.Errorf("host %s freq = %v, want 0.6", h, got)
		}
	}
}

func TestRequestLevelDVFSAction(t *testing.T) {
	cat, apps, cfg := zonedSetup(t)
	rates := map[string]float64{"rubis1": 30, "rubis2": 30}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeRequestLevel))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MeasureWindow(time.Minute); err != nil { // warm-up
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var plan []cluster.Action
	for _, h := range cat.HostNames() {
		plan = append(plan, cluster.Action{Kind: cluster.ActionSetDVFS, Host: h, Freq: 0.6})
	}
	if _, err := tb.Execute(plan); err != nil {
		t.Fatal(err)
	}
	w1, err := tb.MeasureWindow(6 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("request-level downclock did not slow service: %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
}
