package testbed

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/power"
)

// feasibleDst finds a powered-on host (other than the VM's current one)
// with capacity for the VM's allocation.
func feasibleDst(t *testing.T, cat *cluster.Catalog, cfg cluster.Config, vm cluster.VMID) string {
	t.Helper()
	p, ok := cfg.PlacementOf(vm)
	if !ok {
		t.Fatalf("VM %s not placed", vm)
	}
	for _, h := range cfg.ActiveHosts() {
		if h == p.Host {
			continue
		}
		spec, _ := cat.Host(h)
		if cfg.AllocatedCPU(h)+p.CPUPct <= spec.UsableCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs {
			return h
		}
	}
	t.Fatal("no feasible destination host")
	return ""
}

// noiseless disables measurement noise for exact comparisons.
func noiseless(mode Mode) Options {
	return Options{Mode: mode, Seed: 1, RTNoise: -1, WattsNoise: -1}
}

func setup(t *testing.T, nHosts int, appNames ...string) (*cluster.Catalog, []*app.Spec, cluster.Config) {
	t.Helper()
	apps := make([]*app.Spec, len(appNames))
	for i, n := range appNames {
		apps[i] = app.RUBiS(n)
	}
	hosts := make([]cluster.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec("h" + string(rune('0'+i)))
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, min(nHosts, 2*len(apps)), 40)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate demands to the paper's operating point.
	load := map[string]float64{}
	for _, n := range appNames {
		load[n] = 50
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, load, appNames[0]); err != nil {
		t.Fatal(err)
	}
	return cat, apps, cfg
}

func TestSteadyWindowMatchesModel(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
	rates := map[string]float64{"rubis1": 40, "rubis2": 40}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	w, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	model, err := lqn.NewModel(cat, apps, lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(cfg, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rubis1", "rubis2"} {
		if got, want := w.RTSec[name], res.MeanRTSec(name); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s RT = %v, want model %v", name, got, want)
		}
	}
	util := map[string]float64{}
	for h, hr := range res.Hosts {
		util[h] = hr.CPUUtil
	}
	if got, want := w.Watts, power.SystemWatts(cat, cfg, util); math.Abs(got-want) > 1e-9 {
		t.Errorf("watts = %v, want %v", got, want)
	}
	if tb.Now() != 2*time.Minute {
		t.Errorf("clock = %v, want 2m", tb.Now())
	}
}

func TestExecuteMigrationChargesTransientsAndMovesVM(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
	rates := map[string]float64{"rubis1": 50, "rubis2": 50}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline steady window.
	w0, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// Migrate a db VM to another host with room for it.
	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	rep, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration <= 0 {
		t.Fatal("zero-duration migration")
	}
	if rep.Applied != 1 || rep.Failed != 0 || rep.Skipped != 0 {
		t.Errorf("report = %+v, want one applied step", rep)
	}
	if !tb.Busy() {
		t.Error("testbed not busy during scheduled migration")
	}

	// Window covering the migration must show elevated RT and watts.
	w1, err := tb.MeasureWindow(4 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("migration did not raise target RT: %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
	if w1.Watts <= w0.Watts {
		t.Errorf("migration did not raise watts: %v -> %v", w0.Watts, w1.Watts)
	}

	// After completion the VM has moved and the system is idle again.
	if err := func() error { _, err := tb.MeasureWindow(6 * time.Minute); return err }(); err != nil {
		t.Fatal(err)
	}
	if tb.Busy() {
		t.Error("still busy after migration should have completed")
	}
	if p, _ := tb.Config().PlacementOf("rubis1-db-0"); p.Host != dst {
		t.Errorf("VM on %s, want %s", p.Host, dst)
	}
}

func TestExecuteValidatesAgainstFinalConfig(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	rates := map[string]float64{"rubis1": 50}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	// First plan adds the second db replica.
	if _, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionAddReplica, VM: "rubis1-db-1", Host: cfg.ActiveHosts()[0]}}); err != nil {
		t.Fatal(err)
	}
	// Second plan adding the same replica must fail against cfgFinal even
	// though the current config does not yet contain it.
	if _, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionAddReplica, VM: "rubis1-db-1", Host: cfg.ActiveHosts()[0]}}); err == nil {
		t.Error("duplicate add accepted against stale config")
	}
	// An invalid step anywhere rejects the whole plan atomically.
	before := tb.FinalConfig()
	_, err = tb.Execute([]cluster.Action{
		{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0"},
		{Kind: cluster.ActionMigrate, VM: "ghost", Host: "h0"},
	})
	if err == nil || !strings.Contains(err.Error(), "step 1") {
		t.Errorf("err = %v, want step 1 failure", err)
	}
	if !tb.FinalConfig().Equal(before) {
		t.Error("failed plan mutated final config")
	}
}

func TestHostPowerCycling(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	// Only 2 hosts on initially.
	rates := map[string]float64{"rubis1": 30}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	var offHost string
	for _, h := range cat.HostNames() {
		if !cfg.HostOn(h) {
			offHost = h
			break
		}
	}
	if offHost == "" {
		t.Fatal("no off host available")
	}
	// Start the host and immediately use it: sequential phases make the
	// replica addition feasible.
	if _, err := tb.Execute([]cluster.Action{
		{Kind: cluster.ActionStartHost, Host: offHost},
		{Kind: cluster.ActionAddReplica, VM: "rubis1-db-1", Host: offHost},
	}); err != nil {
		t.Fatal(err)
	}
	// During boot (90s) the system draws +80W over baseline.
	w1, err := tb.MeasureWindow(2*time.Minute + 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Watts < w0.Watts+60 {
		t.Errorf("boot window watts = %v, want >= baseline+60 (%v)", w1.Watts, w0.Watts+60)
	}
	// Let everything complete; now 3 hosts draw power and the replica runs.
	for tb.Busy() {
		if _, err := tb.MeasureWindow(tb.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	final := tb.Config()
	if !final.HostOn(offHost) {
		t.Error("host not on after boot")
	}
	if p, ok := final.PlacementOf("rubis1-db-1"); !ok || p.Host != offHost {
		t.Errorf("replica placement = %+v ok=%v", p, ok)
	}

	// Now remove the replica and stop the host again.
	if _, err := tb.Execute([]cluster.Action{
		{Kind: cluster.ActionRemoveReplica, VM: "rubis1-db-1"},
		{Kind: cluster.ActionStopHost, Host: offHost},
	}); err != nil {
		t.Fatal(err)
	}
	for tb.Busy() {
		if _, err := tb.MeasureWindow(tb.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Config().HostOn(offHost) {
		t.Error("host still on after stop")
	}
	wEnd, err := tb.MeasureWindow(tb.Now() + 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if wEnd.Watts >= w1.Watts {
		t.Errorf("watts after consolidation = %v, want below boot-window %v", wEnd.Watts, w1.Watts)
	}
}

func TestMeasureWindowErrors(t *testing.T) {
	cat, apps, cfg := setup(t, 2, "rubis1")
	tb, err := New(cat, apps, cfg, map[string]float64{"rubis1": 10}, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MeasureWindow(0); err == nil {
		t.Error("zero-length window accepted")
	}
	if _, err := tb.MeasureWindow(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MeasureWindow(30 * time.Second); err == nil {
		t.Error("backwards window accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cat, apps, cfg := setup(t, 2, "rubis1")
	bad := cfg.Clone()
	bad.Place("rubis1-web-0", "h0", 5) // below minimum
	if _, err := New(cat, apps, bad, nil, nil, noiseless(ModeAnalytic)); err == nil {
		t.Error("invalid initial config accepted")
	}
}

func TestRequestLevelMigrationTransient(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1", "rubis2")
	rates := map[string]float64{"rubis1": 50, "rubis2": 50}
	tb, err := New(cat, apps, cfg, rates, nil, noiseless(ModeRequestLevel))
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up then baseline.
	if _, err := tb.MeasureWindow(time.Minute); err != nil {
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w0.Completed["rubis1"] == 0 {
		t.Fatal("no completions at request level")
	}

	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	if _, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}}); err != nil {
		t.Fatal(err)
	}
	w1, err := tb.MeasureWindow(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("request-level migration did not raise RT: %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
	if w1.Watts <= w0.Watts {
		t.Errorf("request-level migration did not raise watts: %v -> %v", w0.Watts, w1.Watts)
	}

	// Host cycling unsupported at request level.
	if _, err := tb.Execute([]cluster.Action{{Kind: cluster.ActionStartHost, Host: "h3"}}); err == nil {
		t.Error("host cycling accepted in request-level mode")
	}
}

func TestSetRatesPropagates(t *testing.T) {
	cat, apps, cfg := setup(t, 4, "rubis1")
	tb, err := New(cat, apps, cfg, map[string]float64{"rubis1": 10}, nil, noiseless(ModeAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := tb.MeasureWindow(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetRates(map[string]float64{"rubis1": 90}); err != nil {
		t.Fatal(err)
	}
	w1, err := tb.MeasureWindow(4 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w1.RTSec["rubis1"] <= w0.RTSec["rubis1"] {
		t.Errorf("higher rate did not raise RT: %v -> %v", w0.RTSec["rubis1"], w1.RTSec["rubis1"])
	}
	if got := tb.Rates()["rubis1"]; got != 90 {
		t.Errorf("Rates() = %v, want 90", got)
	}
}
