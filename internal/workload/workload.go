// Package workload synthesizes the application workloads of the paper's
// evaluation and provides the workload-band machinery the controllers use.
//
// The paper drives four RUBiS instances with a typical day from the 1998
// World Cup web trace (RUBiS-1, RUBiS-2) and from an HP customer web-server
// trace (RUBiS-3, RUBiS-4), scaled and shifted into 0–100 req/s over the
// window 15:00–21:30. Those public traces are not shipped here, so this
// package regenerates their published shapes synthetically: the World Cup
// day is a rising diurnal ramp punctuated by two flash crowds (the first at
// ≈16:52–17:14, exactly the interval §V-B validates models on), and the HP
// day is a smooth low-variance hump. Determinism comes from seeded RNG
// streams; variants decorrelate the instances.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/stats"
)

// ScenarioStart is the wall-clock label of trace offset zero (15:00).
const ScenarioStart = 15 * time.Hour

// ScenarioDuration is the paper's evaluation window 15:00–21:30.
const ScenarioDuration = 6*time.Hour + 30*time.Minute

// SessionsPerReqSec maps request rate to emulated concurrent user sessions;
// the paper's client emulator sustains 100 req/s with 800 sessions.
const SessionsPerReqSec = 8.0

// Sessions converts a request rate to concurrent sessions.
func Sessions(reqPerSec float64) float64 { return reqPerSec * SessionsPerReqSec }

// RateForSessions converts concurrent sessions to a request rate.
func RateForSessions(sessions float64) float64 { return sessions / SessionsPerReqSec }

// Trace is a request-rate time series with fixed step, starting at scenario
// offset zero.
type Trace struct {
	// Step is the spacing between consecutive rate samples.
	Step time.Duration
	// Rates holds req/s samples; Rates[i] applies at time i*Step.
	Rates []float64
}

// Duration returns the total span covered by the trace.
func (tr *Trace) Duration() time.Duration {
	if len(tr.Rates) == 0 {
		return 0
	}
	return time.Duration(len(tr.Rates)-1) * tr.Step
}

// RateAt returns the request rate at offset t using linear interpolation
// between samples; times outside the trace clamp to the endpoints.
func (tr *Trace) RateAt(t time.Duration) float64 {
	if len(tr.Rates) == 0 {
		return 0
	}
	if t <= 0 {
		return tr.Rates[0]
	}
	pos := float64(t) / float64(tr.Step)
	lo := int(pos)
	if lo >= len(tr.Rates)-1 {
		return tr.Rates[len(tr.Rates)-1]
	}
	frac := pos - float64(lo)
	return tr.Rates[lo]*(1-frac) + tr.Rates[lo+1]*frac
}

// Clock renders a trace offset as the paper's wall-clock label (e.g.
// "16:52").
func Clock(t time.Duration) string {
	abs := ScenarioStart + t
	h := int(abs.Hours())
	m := int(abs.Minutes()) % 60
	return fmt.Sprintf("%02d:%02d", h, m)
}

// Offset converts a wall-clock label hour:minute into a trace offset.
func Offset(hour, minute int) time.Duration {
	return time.Duration(hour)*time.Hour + time.Duration(minute)*time.Minute - ScenarioStart
}

// Rescale maps the trace's observed [min,max] onto [lo,hi], mirroring the
// paper's scaling of the raw traces into the testbed's 0–100 req/s range.
func (tr *Trace) Rescale(lo, hi float64) {
	if len(tr.Rates) == 0 {
		return
	}
	mn, mx := tr.Rates[0], tr.Rates[0]
	for _, r := range tr.Rates {
		mn = math.Min(mn, r)
		mx = math.Max(mx, r)
	}
	span := mx - mn
	for i, r := range tr.Rates {
		if span == 0 {
			tr.Rates[i] = lo
			continue
		}
		tr.Rates[i] = lo + (r-mn)/span*(hi-lo)
	}
}

// gaussianBump returns a bell bump of the given height centered at c with
// width sigma, evaluated at x (all in hours).
func gaussianBump(x, c, sigma, height float64) float64 {
	d := (x - c) / sigma
	return height * math.Exp(-d*d/2)
}

// WorldCup synthesizes a World Cup '98-like day over the scenario window:
// a rising base load with a sharp flash crowd shortly before 17:00 (peaking
// inside the 16:52–17:14 model-validation interval) and a broader evening
// peak around 19:45, rescaled to [0, 100] req/s. variant decorrelates
// multiple instances (RUBiS-1 uses 0, RUBiS-2 uses 1): later variants shift
// the crowds slightly and reshape the base ramp.
func WorldCup(seed uint64, variant int) *Trace {
	const step = time.Minute
	n := int(ScenarioDuration/step) + 1
	rng := sim.NewRNG(seed, 0x57c0+uint64(variant))
	v := float64(variant)
	tr := &Trace{Step: step, Rates: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := (ScenarioStart + time.Duration(i)*step).Hours() // 15.0 .. 21.5
		base := 14 + 16*(x-15)/6.5 + 5*math.Sin((x-15)*1.1+v)
		// Instances peak at offset times (as the paper's two scaled World
		// Cup traces do), keeping the combined load within what the
		// testbed's maximum replication can serve: sustained overload of
		// both applications at once never lasts more than a flash crowd.
		flash := gaussianBump(x, 16.95+0.45*v, 0.14, 58-8*v)
		evening := gaussianBump(x, 19.7+0.8*v, 0.35, 52-10*v)
		dip := gaussianBump(x, 18.3+0.1*v, 0.35, -10)
		noise := rng.Normal(0, 0.8)
		tr.Rates[i] = math.Max(0, base+flash+evening+dip+noise)
	}
	smooth(tr.Rates, 4)
	tr.Rescale(0, 100)
	return tr
}

// HP synthesizes an HP customer web-server-like day: a smooth low-variance
// hump (the raw trace spans only 2–4.5 req/s before scaling), rescaled to
// [0, 100] req/s. variant decorrelates instances (RUBiS-3 uses 0, RUBiS-4
// uses 1).
func HP(seed uint64, variant int) *Trace {
	const step = time.Minute
	n := int(ScenarioDuration/step) + 1
	rng := sim.NewRNG(seed, 0x4890+uint64(variant))
	v := float64(variant)
	tr := &Trace{Step: step, Rates: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := (ScenarioStart + time.Duration(i)*step).Hours()
		base := 2.4 + 1.5*math.Exp(-((x-18.2-0.4*v)*(x-18.2-0.4*v))/(2*1.8*1.8))
		wave := 0.25 * math.Sin((x-15)*2.2+v*1.3)
		noise := rng.Normal(0, 0.06)
		tr.Rates[i] = math.Max(0, base+wave+noise)
	}
	smooth(tr.Rates, 5)
	tr.Rescale(0, 100)
	return tr
}

// smooth applies a centered moving average of the given half-window in
// place.
func smooth(xs []float64, half int) {
	if half <= 0 || len(xs) == 0 {
		return
	}
	out := make([]float64, len(xs))
	for i := range xs {
		lo := max(0, i-half)
		hi := min(len(xs)-1, i+half)
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	copy(xs, out)
}

// Set is the overall system workload W: one trace per application.
type Set map[string]*Trace

// PaperWorkloads reproduces Figure 4: RUBiS-1/2 on the World Cup shape and
// RUBiS-3/4 on the HP shape, for the given application names (in order).
// Fewer names select a prefix (the 2-app scenario uses RUBiS-1 and -2).
func PaperWorkloads(seed uint64, appNames []string) Set {
	gens := []func() *Trace{
		func() *Trace { return WorldCup(seed, 0) },
		func() *Trace { return WorldCup(seed, 1) },
		func() *Trace { return HP(seed, 0) },
		func() *Trace { return HP(seed, 1) },
	}
	set := make(Set, len(appNames))
	for i, name := range appNames {
		set[name] = gens[i%len(gens)]()
	}
	return set
}

// At samples every trace at offset t, producing the workload vector the
// controllers consume.
func (s Set) At(t time.Duration) map[string]float64 {
	w := make(map[string]float64, len(s))
	for name, tr := range s {
		w[name] = tr.RateAt(t)
	}
	return w
}

// Band is the workload band of §II-B: the stability interval ends when the
// workload leaves [Center−Width/2, Center+Width/2].
type Band struct {
	Center float64
	Width  float64
}

// Contains reports whether rate lies within the band. A zero-width band
// contains only (approximately) its center, so any measurable change
// escapes it — the paper's level-1 controller setting.
func (b Band) Contains(rate float64) bool {
	return math.Abs(rate-b.Center) <= b.Width/2+1e-9
}

// NewBands centers a band of the given width on each application's rate.
func NewBands(rates map[string]float64, width float64) map[string]Band {
	bands := make(map[string]Band, len(rates))
	for name, r := range rates {
		bands[name] = Band{Center: r, Width: width}
	}
	return bands
}

// AnyOutside reports whether any application's rate escaped its band;
// applications without a band are always outside.
func AnyOutside(bands map[string]Band, rates map[string]float64) bool {
	for name, r := range rates {
		b, ok := bands[name]
		if !ok || !b.Contains(r) {
			return true
		}
	}
	return false
}

// StabilityIntervals replays a trace at the given sampling step and returns
// the sequence of measured stability intervals for a band of the given
// width: each interval is how long the workload stayed within the band
// centered at its value when the previous interval ended. This is the
// ground truth Figure 6 compares the ARMA estimator against.
func StabilityIntervals(tr *Trace, width float64, step time.Duration) []time.Duration {
	if step <= 0 || len(tr.Rates) == 0 {
		return nil
	}
	var out []time.Duration
	band := Band{Center: tr.RateAt(0), Width: width}
	start := time.Duration(0)
	for t := step; t <= tr.Duration(); t += step {
		if !band.Contains(tr.RateAt(t)) {
			out = append(out, t-start)
			band = Band{Center: tr.RateAt(t), Width: width}
			start = t
		}
	}
	if end := tr.Duration(); end > start {
		out = append(out, end-start)
	}
	return out
}

// MeanRate returns the time-averaged rate of the trace.
func (tr *Trace) MeanRate() float64 { return stats.Mean(tr.Rates) }
