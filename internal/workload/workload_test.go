package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTraceRateAtInterpolates(t *testing.T) {
	tr := &Trace{Step: time.Minute, Rates: []float64{0, 10, 20}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{-time.Minute, 0},
		{0, 0},
		{30 * time.Second, 5},
		{time.Minute, 10},
		{90 * time.Second, 15},
		{2 * time.Minute, 20},
		{time.Hour, 20},
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	empty := &Trace{Step: time.Minute}
	if empty.RateAt(0) != 0 || empty.Duration() != 0 {
		t.Error("empty trace should report zeros")
	}
}

func TestTraceDuration(t *testing.T) {
	tr := &Trace{Step: time.Minute, Rates: make([]float64, 391)}
	if got := tr.Duration(); got != 390*time.Minute {
		t.Errorf("Duration = %v, want 390m", got)
	}
}

func TestRescale(t *testing.T) {
	tr := &Trace{Step: time.Minute, Rates: []float64{5, 10, 15}}
	tr.Rescale(0, 100)
	want := []float64{0, 50, 100}
	for i := range want {
		if math.Abs(tr.Rates[i]-want[i]) > 1e-9 {
			t.Errorf("Rates[%d] = %v, want %v", i, tr.Rates[i], want[i])
		}
	}
	flat := &Trace{Step: time.Minute, Rates: []float64{7, 7}}
	flat.Rescale(3, 9)
	if flat.Rates[0] != 3 || flat.Rates[1] != 3 {
		t.Errorf("flat rescale = %v, want all lo", flat.Rates)
	}
}

func TestWorldCupShape(t *testing.T) {
	tr := WorldCup(42, 0)
	if got := tr.Duration(); got != ScenarioDuration {
		t.Fatalf("duration = %v, want %v", got, ScenarioDuration)
	}
	var mn, mx float64 = math.Inf(1), math.Inf(-1)
	for _, r := range tr.Rates {
		mn = math.Min(mn, r)
		mx = math.Max(mx, r)
	}
	if mn < 0 || mn > 1e-9 {
		t.Errorf("min rate = %v, want 0 after rescale", mn)
	}
	if math.Abs(mx-100) > 1e-9 {
		t.Errorf("max rate = %v, want 100", mx)
	}
	// The flash crowd must fall inside the validation interval 16:52–17:14
	// and be a strong local peak relative to its neighborhood.
	peak := tr.RateAt(Offset(17, 0))
	before := tr.RateAt(Offset(16, 20))
	after := tr.RateAt(Offset(17, 45))
	if peak < before+20 || peak < after+20 {
		t.Errorf("no flash crowd near 17:00: before=%v peak=%v after=%v", before, peak, after)
	}
	// Deterministic for the same seed, different across seeds/variants.
	same := WorldCup(42, 0)
	for i := range tr.Rates {
		if tr.Rates[i] != same.Rates[i] {
			t.Fatal("WorldCup not deterministic")
		}
	}
	other := WorldCup(42, 1)
	diff := 0
	for i := range tr.Rates {
		if tr.Rates[i] != other.Rates[i] {
			diff++
		}
	}
	if diff < len(tr.Rates)/2 {
		t.Error("variants barely differ")
	}
}

func TestHPShapeIsSmoother(t *testing.T) {
	wc := WorldCup(42, 0)
	hp := HP(42, 0)
	variation := func(tr *Trace) float64 {
		var sum float64
		for i := 1; i < len(tr.Rates); i++ {
			sum += math.Abs(tr.Rates[i] - tr.Rates[i-1])
		}
		return sum
	}
	if variation(hp) >= variation(wc) {
		t.Errorf("HP total variation %v not below WorldCup %v", variation(hp), variation(wc))
	}
	if got := hp.Duration(); got != ScenarioDuration {
		t.Errorf("duration = %v", got)
	}
}

func TestClockAndOffsetRoundTrip(t *testing.T) {
	if got := Clock(0); got != "15:00" {
		t.Errorf("Clock(0) = %q, want 15:00", got)
	}
	if got := Clock(Offset(16, 52)); got != "16:52" {
		t.Errorf("Clock(Offset(16:52)) = %q", got)
	}
	if got := Clock(ScenarioDuration); got != "21:30" {
		t.Errorf("Clock(end) = %q, want 21:30", got)
	}
}

func TestSessionsRoundTrip(t *testing.T) {
	if got := Sessions(100); got != 800 {
		t.Errorf("Sessions(100) = %v, want 800", got)
	}
	if got := RateForSessions(800); got != 100 {
		t.Errorf("RateForSessions(800) = %v, want 100", got)
	}
}

func TestPaperWorkloads(t *testing.T) {
	names := []string{"rubis1", "rubis2", "rubis3", "rubis4"}
	set := PaperWorkloads(7, names)
	if len(set) != 4 {
		t.Fatalf("set size = %d", len(set))
	}
	for _, n := range names {
		if set[n] == nil {
			t.Fatalf("missing trace for %s", n)
		}
	}
	w := set.At(Offset(17, 0))
	if len(w) != 4 {
		t.Fatalf("At() size = %d", len(w))
	}
	// World Cup instances should be in a flash crowd at 17:00; HP not.
	if w["rubis1"] < w["rubis3"] {
		t.Logf("note: rubis1=%v rubis3=%v", w["rubis1"], w["rubis3"])
	}
	two := PaperWorkloads(7, names[:2])
	if len(two) != 2 {
		t.Errorf("2-app set size = %d", len(two))
	}
}

func TestBandContains(t *testing.T) {
	b := Band{Center: 50, Width: 8}
	for _, c := range []struct {
		rate float64
		want bool
	}{{50, true}, {54, true}, {46, true}, {54.1, false}, {45.9, false}} {
		if got := b.Contains(c.rate); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.rate, got, c.want)
		}
	}
	zero := Band{Center: 50, Width: 0}
	if !zero.Contains(50) {
		t.Error("zero-width band must contain its center")
	}
	if zero.Contains(50.5) {
		t.Error("zero-width band must not contain other values")
	}
}

func TestNewBandsAndAnyOutside(t *testing.T) {
	rates := map[string]float64{"a": 10, "b": 20}
	bands := NewBands(rates, 8)
	if AnyOutside(bands, rates) {
		t.Error("fresh bands should contain their centers")
	}
	if !AnyOutside(bands, map[string]float64{"a": 15, "b": 20}) {
		t.Error("escaped rate not detected")
	}
	if !AnyOutside(bands, map[string]float64{"c": 1}) {
		t.Error("unknown app should count as outside")
	}
}

func TestStabilityIntervals(t *testing.T) {
	// Step trace: 10 for 5 min, then 50 for 5 min, then 10 again.
	rates := make([]float64, 16)
	for i := range rates {
		switch {
		case i < 5:
			rates[i] = 10
		case i < 10:
			rates[i] = 50
		default:
			rates[i] = 10
		}
	}
	tr := &Trace{Step: time.Minute, Rates: rates}
	ivs := StabilityIntervals(tr, 8, time.Minute)
	if len(ivs) < 3 {
		t.Fatalf("intervals = %v, want at least 3", ivs)
	}
	var total time.Duration
	for _, iv := range ivs {
		if iv <= 0 {
			t.Errorf("non-positive interval %v", iv)
		}
		total += iv
	}
	if total != tr.Duration() {
		t.Errorf("intervals sum to %v, want %v", total, tr.Duration())
	}
	if got := StabilityIntervals(tr, 8, 0); got != nil {
		t.Error("zero step should yield nil")
	}
}

// Property: stability intervals always partition the trace duration,
// regardless of band width.
func TestStabilityIntervalsProperty(t *testing.T) {
	tr := WorldCup(9, 0)
	prop := func(w8 uint8) bool {
		width := float64(w8) / 4
		ivs := StabilityIntervals(tr, width, time.Minute)
		var total time.Duration
		for _, iv := range ivs {
			if iv <= 0 {
				return false
			}
			total += iv
		}
		return total == tr.Duration()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMeanRate(t *testing.T) {
	tr := &Trace{Step: time.Minute, Rates: []float64{0, 10, 20}}
	if got := tr.MeanRate(); math.Abs(got-10) > 1e-9 {
		t.Errorf("MeanRate = %v, want 10", got)
	}
}
