package queueing

import (
	"math"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func testSetup(t *testing.T, apps []*app.Spec) (*cluster.Catalog, cluster.Config) {
	t.Helper()
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
	}, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	return cat, cfg
}

// oneTier returns an app with a single tier, one transaction, no Dom-0
// overhead, for closed-form comparisons.
func oneTier(name string, demandMS float64) *app.Spec {
	return &app.Spec{
		Name:     name,
		Tiers:    []app.TierSpec{{Name: "t", MaxReplicas: 2, VMMemoryMB: 200}},
		Txns:     []app.TxnSpec{{Name: "x", Weight: 1, DemandMS: map[string]float64{"t": demandMS}}},
		TargetRT: time.Second,
	}
}

func TestSystemMatchesPSTheory(t *testing.T) {
	a := oneTier("a", 8)
	cat, err := app.BuildCatalog([]cluster.HostSpec{cluster.DefaultHostSpec("h0")}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-t-0", "h0", 40)
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const lambda = 30.0
	if err := sys.SetRate("a", lambda); err != nil {
		t.Fatal(err)
	}
	// Warm up, then measure a long window.
	if err := sys.Run(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(4200 * time.Second); err != nil {
		t.Fatal(err)
	}
	w := sys.Snapshot()
	// Theory: S = 8ms/0.4 = 20ms, rho = 0.6, RT = 50ms.
	got := w.Apps["a"].MeanRTSec
	if math.Abs(got-0.050)/0.050 > 0.08 {
		t.Errorf("mean RT = %v, want 0.050 ±8%%", got)
	}
	// Host util ~ lambda*D = 0.24 (no dom0 overhead in this app).
	if u := w.HostUtil["h0"]; math.Abs(u-0.24) > 0.02 {
		t.Errorf("host util = %v, want ~0.24", u)
	}
	if w.Apps["a"].Completed < 100000 {
		t.Errorf("completed = %d, want ~126k", w.Apps["a"].Completed)
	}
	if w.Apps["a"].P95RTSec <= got {
		t.Error("p95 should exceed mean")
	}
}

func TestSystemDeterministicAcrossRuns(t *testing.T) {
	mk := func() Window {
		a := app.RUBiS("a")
		cat, cfg := testSetup(t, []*app.Spec{a})
		sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetRate("a", 40); err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(300 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sys.Snapshot()
	}
	w1, w2 := mk(), mk()
	if w1.Apps["a"].MeanRTSec != w2.Apps["a"].MeanRTSec || w1.Apps["a"].Completed != w2.Apps["a"].Completed {
		t.Errorf("same seed produced different results: %+v vs %+v", w1.Apps["a"], w2.Apps["a"])
	}
}

func TestSystemDom0BackgroundDegradesRT(t *testing.T) {
	a := app.RUBiS("a")
	a.ScaleDemands(2.0) // moderate load
	cat, cfg := testSetup(t, []*app.Spec{a})
	run := func(bg float64) float64 {
		sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetRate("a", 30); err != nil {
			t.Fatal(err)
		}
		if bg > 0 {
			if err := sys.SetDom0Background("h0", bg); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Run(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		sys.ResetWindow()
		if err := sys.Run(600 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sys.Snapshot().Apps["a"].MeanRTSec
	}
	base, busy := run(0), run(0.85)
	if busy <= base {
		t.Errorf("dom0 background did not degrade RT: %v -> %v", base, busy)
	}
}

func TestSystemDom0BackgroundCountsAsUtil(t *testing.T) {
	a := oneTier("a", 8)
	cat, err := app.BuildCatalog([]cluster.HostSpec{cluster.DefaultHostSpec("h0")}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-t-0", "h0", 40)
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetDom0Background("h0", 0.5); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No traffic: util is exactly the background 0.5 * 0.2 share = 0.1.
	if u := sys.Snapshot().HostUtil["h0"]; math.Abs(u-0.1) > 1e-9 {
		t.Errorf("idle util with background = %v, want 0.1", u)
	}
	if err := sys.SetDom0Background("ghost", 0.5); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestSystemPauseVM(t *testing.T) {
	a := oneTier("a", 8)
	cat, err := app.BuildCatalog([]cluster.HostSpec{cluster.DefaultHostSpec("h0")}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-t-0", "h0", 40)
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRate("a", 20); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.PauseVM("a-t-0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := sys.vmStations["a-t-0"]
	if st.Rate() != 0 {
		t.Errorf("rate during pause = %v, want 0", st.Rate())
	}
	if err := sys.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st.Rate() != 0.4 {
		t.Errorf("rate after pause = %v, want 0.4 restored", st.Rate())
	}
	if err := sys.PauseVM("ghost", time.Second); err == nil {
		t.Error("unknown VM accepted")
	}
}

func TestSystemSetVMRateAndMove(t *testing.T) {
	a := app.RUBiS("a")
	cat, cfg := testSetup(t, []*app.Spec{a})
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetVMRate("a-web-0", 60); err != nil {
		t.Fatal(err)
	}
	if got := sys.vmStations["a-web-0"].Rate(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("rate = %v, want 0.6", got)
	}
	if err := sys.SetVMRate("ghost", 10); err == nil {
		t.Error("unknown VM accepted")
	}
	from := sys.vmHost["a-web-0"]
	dst := "h1"
	if from == "h1" {
		dst = "h0"
	}
	if err := sys.MoveVM("a-web-0", dst); err != nil {
		t.Fatal(err)
	}
	if sys.vmHost["a-web-0"] != dst {
		t.Error("MoveVM did not reassign host")
	}
	if err := sys.MoveVM("ghost", "h0"); err == nil {
		t.Error("unknown VM accepted for move")
	}
	if err := sys.MoveVM("a-web-0", "ghost"); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestSystemReplicaWeighting(t *testing.T) {
	a := oneTier("a", 4)
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
	}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.SetHostOn("h1", true)
	cfg.Place("a-t-0", "h0", 60)
	cfg.Place("a-t-1", "h1", 20)
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRate("a", 50); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(2000 * time.Second); err != nil {
		t.Fatal(err)
	}
	w := sys.Snapshot()
	// Load split 3:1 -> absolute host CPU use ratio also 3:1.
	u0, u1 := w.HostUtil["h0"], w.HostUtil["h1"]
	if u0 < 2*u1 {
		t.Errorf("utilization ratio h0/h1 = %v/%v, want ~3:1", u0, u1)
	}
}

func TestSystemValidation(t *testing.T) {
	a := app.RUBiS("a")
	cat, cfg := testSetup(t, []*app.Spec{a})

	if _, err := New(cat, []*app.Spec{a}, cfg, Options{}); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	bad := app.RUBiS("bad")
	bad.Txns = nil
	if _, err := New(cat, []*app.Spec{bad}, cfg, Options{}); err == nil {
		t.Error("invalid app accepted")
	}
	// VM on an inactive host.
	broken := cfg.Clone()
	broken.SetHostOn("h1", false)
	if _, err := New(cat, []*app.Spec{a}, broken, Options{}); err == nil {
		t.Error("VM on off host accepted")
	}
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRate("ghost", 5); err == nil {
		t.Error("unknown app rate accepted")
	}
}

func TestSystemZeroRateStopsArrivals(t *testing.T) {
	a := app.RUBiS("a")
	cat, cfg := testSetup(t, []*app.Spec{a})
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRate("a", 50); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRate("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.Snapshot().Apps["a"].Completed; got != 0 {
		t.Errorf("completions after rate 0 = %d, want 0", got)
	}
}
