package queueing

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func hostOpsSystem(t *testing.T) *System {
	t.Helper()
	a := app.RUBiS("a")
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"), cluster.DefaultHostSpec("h2"),
	}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.SetHostOn("h1", true)
	cfg.Place("a-web-0", "h0", 30)
	cfg.Place("a-app-0", "h0", 30)
	cfg.Place("a-db-0", "h1", 30)
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAddRemoveHost(t *testing.T) {
	sys := hostOpsSystem(t)

	if err := sys.AddHost("h2"); err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	if err := sys.AddHost("h2"); err == nil {
		t.Error("double AddHost accepted")
	}
	if err := sys.AddHost("ghost"); err == nil {
		t.Error("unknown host accepted")
	}

	// A VM can now be placed on the new host and serve traffic.
	if err := sys.AddVM("a-db-1", "h2", 40); err != nil {
		t.Fatalf("AddVM on new host: %v", err)
	}
	if err := sys.SetRate("a", 30); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	w := sys.Snapshot()
	if w.Apps["a"].Completed == 0 {
		t.Fatal("no completions")
	}
	if w.HostUtil["h2"] <= 0 {
		t.Error("new host shows no utilization despite hosting a db replica")
	}

	// Removing a host with a VM fails; after evicting the VM it succeeds.
	if err := sys.RemoveHost("h2"); err == nil {
		t.Error("RemoveHost with resident VM accepted")
	}
	if err := sys.RemoveVM("a-db-1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveHost("h2"); err != nil {
		t.Fatalf("RemoveHost after eviction: %v", err)
	}
	if err := sys.RemoveHost("h2"); err == nil {
		t.Error("double RemoveHost accepted")
	}
}

func TestAddVMValidation(t *testing.T) {
	sys := hostOpsSystem(t)
	if err := sys.AddVM("a-web-0", "h0", 30); err == nil {
		t.Error("adding an already-active VM accepted")
	}
	if err := sys.AddVM("a-db-1", "h2", 30); err == nil {
		t.Error("adding to inactive host accepted")
	}
	if err := sys.RemoveVM("ghost"); err == nil {
		t.Error("removing unknown VM accepted")
	}
}

func TestSetHostFreqValidation(t *testing.T) {
	sys := hostOpsSystem(t)
	allocs := map[cluster.VMID]float64{"a-web-0": 30, "a-app-0": 30}
	if err := sys.SetHostFreq("h0", 0.6, allocs); err != nil {
		t.Fatalf("SetHostFreq: %v", err)
	}
	if got := sys.vmStations["a-web-0"].Rate(); got != 0.18 {
		t.Errorf("web rate after downclock = %v, want 0.18", got)
	}
	if err := sys.SetHostFreq("ghost", 0.6, nil); err == nil {
		t.Error("unknown host accepted")
	}
	if err := sys.SetHostFreq("h0", 0, nil); err == nil {
		t.Error("zero frequency accepted")
	}
	if err := sys.SetHostFreq("h0", 1.5, nil); err == nil {
		t.Error("super-nominal frequency accepted")
	}
	// Restoring nominal restores full rates.
	if err := sys.SetHostFreq("h0", 1.0, allocs); err != nil {
		t.Fatal(err)
	}
	if got := sys.vmStations["a-app-0"].Rate(); got != 0.30 {
		t.Errorf("app rate after restore = %v, want 0.30", got)
	}
}
