// Package queueing is a request-level discrete-event simulator of
// consolidated multi-tier applications. It plays the role of the paper's
// physical testbed: an independent source of "measured" response times,
// utilizations, and (via the power model) watts against which the LQN
// predictions are validated (Fig. 5), transient migration costs observed
// (Fig. 1), and the offline cost-measurement campaign run (Fig. 7).
//
// Each VM is a processor-sharing CPU station whose service rate is its CPU
// allocation; each host has a Dom-0 station handling per-visit
// virtualization overhead and transient background work such as live
// migrations. Requests arrive in Poisson streams per application, sample a
// transaction type from the mix, and traverse web → app → db sequentially,
// passing through Dom-0 on every tier visit.
package queueing

import (
	"time"

	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/stats"
)

// psJob is one job in service at a processor-sharing station.
type psJob struct {
	remaining float64 // CPU-seconds at reference speed still needed
	done      func()
}

// Station is a processor-sharing CPU station: with n jobs present and
// service rate r (CPU fraction of reference speed), every job progresses at
// r/n. The station is work-conserving: whenever jobs are present it
// consumes exactly its full rate.
type Station struct {
	eng  *sim.Engine
	rate float64
	jobs []*psJob

	next       sim.Handle
	hasNext    bool
	lastUpdate time.Duration

	// usage accumulates the CPU actually consumed (rate × busy time).
	usage stats.TimeWeighted
}

// NewStation creates a station with the given service rate (CPU fraction,
// e.g. 0.4 for a 40% allocation).
func NewStation(eng *sim.Engine, rate float64) *Station {
	s := &Station{eng: eng, rate: rate, lastUpdate: eng.Now()}
	s.usage.Set(eng.Now(), 0)
	return s
}

// advance applies service progress accrued since the last update.
func (s *Station) advance() {
	now := s.eng.Now()
	if now > s.lastUpdate && len(s.jobs) > 0 && s.rate > 0 {
		progress := (now - s.lastUpdate).Seconds() * s.rate / float64(len(s.jobs))
		for _, j := range s.jobs {
			j.remaining -= progress
		}
	}
	s.lastUpdate = now
}

// reschedule cancels any pending completion and schedules the next one.
func (s *Station) reschedule() {
	if s.hasNext {
		s.eng.Cancel(s.next)
		s.hasNext = false
	}
	if len(s.jobs) == 0 || s.rate <= 0 {
		return
	}
	minRem := s.jobs[0].remaining
	for _, j := range s.jobs[1:] {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	delay := time.Duration(minRem * float64(len(s.jobs)) / s.rate * float64(time.Second))
	if delay <= 0 {
		// Sub-nanosecond residual work: advance the clock by one tick so
		// the completion event always makes progress.
		delay = time.Nanosecond
	}
	s.next = s.eng.Schedule(delay, s.complete)
	s.hasNext = true
}

// complete fires when the job with least remaining demand finishes.
func (s *Station) complete() {
	s.hasNext = false
	s.advance()
	// A job is finished when its residual work would complete within the
	// engine's 1 ns clock resolution; plain epsilon alone can strand a
	// floating-point residue that reschedules a zero-delay event forever.
	eps := 1e-12
	if n := len(s.jobs); n > 0 && s.rate > 0 {
		if res := 1e-9 * s.rate / float64(n); res > eps {
			eps = res
		}
	}
	// Collect all jobs that finished (ties complete together).
	var finished []*psJob
	kept := s.jobs[:0]
	for _, j := range s.jobs {
		if j.remaining <= eps {
			finished = append(finished, j)
		} else {
			kept = append(kept, j)
		}
	}
	s.jobs = kept
	s.noteUsage()
	s.reschedule()
	for _, j := range finished {
		if j.done != nil {
			j.done()
		}
	}
}

// noteUsage records the station's instantaneous CPU consumption.
func (s *Station) noteUsage() {
	used := 0.0
	if len(s.jobs) > 0 {
		used = s.rate
	}
	s.usage.Set(s.eng.Now(), used)
}

// Submit enqueues a job with the given CPU demand (seconds at reference
// speed); done runs at completion. Zero or negative demand completes at the
// current instant (scheduled, preserving event ordering).
func (s *Station) Submit(demand float64, done func()) {
	if demand <= 0 {
		s.eng.Schedule(0, func() {
			if done != nil {
				done()
			}
		})
		return
	}
	s.advance()
	s.jobs = append(s.jobs, &psJob{remaining: demand, done: done})
	s.noteUsage()
	s.reschedule()
}

// SetRate changes the service rate, e.g. after a CPU capacity action or
// while Dom-0 is burdened by a migration.
func (s *Station) SetRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	s.advance()
	s.rate = rate
	s.noteUsage()
	s.reschedule()
}

// Rate returns the current service rate.
func (s *Station) Rate() float64 { return s.rate }

// Len returns the number of jobs in service.
func (s *Station) Len() int { return len(s.jobs) }

// MeanUsageSince flushes usage accounting to now and returns the mean CPU
// consumption since the accumulator was last reset.
func (s *Station) MeanUsageSince() float64 {
	s.usage.Flush(s.eng.Now())
	return s.usage.Mean()
}

// ResetUsage restarts usage accounting at the current instant, preserving
// the station's present consumption level.
func (s *Station) ResetUsage() {
	used := 0.0
	if len(s.jobs) > 0 {
		used = s.rate
	}
	s.usage.Reset(s.eng.Now(), used)
}
