package queueing

import (
	"fmt"
	"sort"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/stats"
)

// Options tunes the request-level simulator.
type Options struct {
	// Seed drives all random streams; equal seeds reproduce runs exactly.
	Seed uint64
	// ServiceCV is the coefficient of variation of service demands
	// (log-normal); default 0.8, roughly what bursty CPU-bound servlet
	// work exhibits.
	ServiceCV float64
	// Dom0Share is the CPU fraction reserved for Dom-0 (default 0.20).
	Dom0Share float64
}

func (o Options) withDefaults() Options {
	if o.ServiceCV <= 0 {
		o.ServiceCV = 0.8
	}
	if o.Dom0Share <= 0 {
		o.Dom0Share = 0.20
	}
	return o
}

// System is a runnable request-level simulation of a configuration.
type System struct {
	eng  *sim.Engine
	opts Options
	cat  *cluster.Catalog
	apps []*app.Spec

	arrivalRNG *sim.RNG
	serviceRNG *sim.RNG
	routeRNG   *sim.RNG

	vmStations map[cluster.VMID]*Station
	vmHost     map[cluster.VMID]string
	dom0       map[string]*Station
	dom0BG     map[string]float64             // background fraction of Dom-0 share
	dom0BGUse  map[string]*stats.TimeWeighted // CPU consumed by background work

	rates      map[string]float64
	closed     map[string]*closedLoop
	collectors map[string]*collector
}

// collector accumulates per-application response times within a window.
type collector struct {
	rt        stats.Welford
	rts       []float64
	completed uint64
}

// New builds a system for the given configuration. Every active VM gets a
// PS station at its allocated rate; every powered-on host gets a Dom-0
// station.
func New(cat *cluster.Catalog, apps []*app.Spec, cfg cluster.Config, opts Options) (*System, error) {
	opts = opts.withDefaults()
	root := sim.NewRNG(opts.Seed, 0x9e3779b97f4a7c15)
	s := &System{
		eng:        sim.NewEngine(),
		opts:       opts,
		cat:        cat,
		apps:       apps,
		arrivalRNG: root.Split(),
		serviceRNG: root.Split(),
		routeRNG:   root.Split(),
		vmStations: make(map[cluster.VMID]*Station),
		vmHost:     make(map[cluster.VMID]string),
		dom0:       make(map[string]*Station),
		dom0BG:     make(map[string]float64),
		dom0BGUse:  make(map[string]*stats.TimeWeighted),
		rates:      make(map[string]float64),
		closed:     make(map[string]*closedLoop),
		collectors: make(map[string]*collector),
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("queueing: %w", err)
		}
		s.collectors[a.Name] = &collector{}
	}
	for _, h := range cfg.ActiveHosts() {
		if _, ok := cat.Host(h); !ok {
			return nil, fmt.Errorf("queueing: config references unknown host %q", h)
		}
		s.dom0[h] = NewStation(s.eng, opts.Dom0Share)
		tw := &stats.TimeWeighted{}
		tw.Set(0, 0)
		s.dom0BGUse[h] = tw
	}
	for _, id := range cfg.ActiveVMs() {
		p, _ := cfg.PlacementOf(id)
		if _, ok := s.dom0[p.Host]; !ok {
			return nil, fmt.Errorf("queueing: VM %q on inactive host %q", id, p.Host)
		}
		s.vmStations[id] = NewStation(s.eng, p.CPUPct/100)
		s.vmHost[id] = p.Host
	}
	return s, nil
}

// Engine exposes the simulation engine (for scheduling custom events such
// as action transients in tests and the testbed).
func (s *System) Engine() *sim.Engine { return s.eng }

// Now returns current virtual time.
func (s *System) Now() time.Duration { return s.eng.Now() }

// SetRate sets an application's Poisson arrival rate (req/s) and starts the
// arrival stream if needed.
func (s *System) SetRate(appName string, reqPerSec float64) error {
	c, ok := s.collectors[appName]
	if !ok {
		return fmt.Errorf("queueing: unknown application %q", appName)
	}
	_ = c
	starting := s.rates[appName] <= 0 && reqPerSec > 0
	s.rates[appName] = reqPerSec
	if starting {
		s.scheduleArrival(appName)
	}
	return nil
}

// scheduleArrival draws the next interarrival for an application.
func (s *System) scheduleArrival(appName string) {
	rate := s.rates[appName]
	if rate <= 0 {
		return
	}
	gap := s.arrivalRNG.Exp(1 / rate)
	s.eng.Schedule(time.Duration(gap*float64(time.Second)), func() {
		// Rate may have dropped to zero while this arrival was in flight.
		if s.rates[appName] <= 0 {
			return
		}
		s.startRequest(appName, nil)
		s.scheduleArrival(appName)
	})
}

// closedLoop tracks a closed-loop client population for one application.
type closedLoop struct {
	target int
	active int
	think  time.Duration
}

// SetSessions switches an application to closed-loop traffic: n emulated
// user sessions that issue a request, wait for the response, think for an
// exponentially distributed time with the given mean, and repeat — the
// paper's client emulator. Raising n spawns sessions (desynchronized by an
// initial random think); lowering n retires sessions as they finish
// thinking. Closed-loop and open-loop (SetRate) traffic are mutually
// exclusive per application: SetSessions stops the Poisson stream.
func (s *System) SetSessions(appName string, n int, think time.Duration) error {
	if s.spec(appName) == nil {
		return fmt.Errorf("queueing: unknown application %q", appName)
	}
	if n < 0 || think < 0 {
		return fmt.Errorf("queueing: invalid session count %d or think time %v", n, think)
	}
	s.rates[appName] = 0 // stop open-loop arrivals
	cl := s.closed[appName]
	if cl == nil {
		cl = &closedLoop{}
		s.closed[appName] = cl
	}
	cl.target = n
	cl.think = think
	for cl.active < cl.target {
		cl.active++
		// Stagger session starts uniformly across one think time.
		delay := time.Duration(s.arrivalRNG.Float64() * float64(think))
		s.eng.Schedule(delay, func() { s.sessionCycle(appName) })
	}
	return nil
}

// sessionCycle runs one request-think iteration of a closed-loop session.
func (s *System) sessionCycle(appName string) {
	cl := s.closed[appName]
	if cl == nil || cl.active > cl.target {
		if cl != nil {
			cl.active--
		}
		return
	}
	s.startRequest(appName, func() {
		thinkFor := time.Duration(s.arrivalRNG.Exp(cl.think.Seconds()) * float64(time.Second))
		s.eng.Schedule(thinkFor, func() { s.sessionCycle(appName) })
	})
}

// spec returns the app spec by name.
func (s *System) spec(appName string) *app.Spec {
	for _, a := range s.apps {
		if a.Name == appName {
			return a
		}
	}
	return nil
}

// pickReplica chooses an active replica of a tier weighted by allocation.
// It returns false if the tier has no active replica.
func (s *System) pickReplica(a *app.Spec, tier string) (cluster.VMID, bool) {
	t, ok := a.Tier(tier)
	if !ok {
		return "", false
	}
	var ids []cluster.VMID
	var weights []float64
	var total float64
	for r := 0; r < t.MaxReplicas; r++ {
		id := a.VMIDFor(tier, r)
		if st, ok := s.vmStations[id]; ok {
			ids = append(ids, id)
			w := st.Rate()
			if w <= 0 {
				w = 1e-6 // paused VMs still receive (and queue) requests
			}
			weights = append(weights, w)
			total += w
		}
	}
	if len(ids) == 0 {
		return "", false
	}
	x := s.routeRNG.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return ids[i], true
		}
	}
	return ids[len(ids)-1], true
}

// startRequest samples a transaction and walks it through the tiers. done,
// if non-nil, runs when the request completes or is dropped (used by
// closed-loop sessions).
func (s *System) startRequest(appName string, done func()) {
	a := s.spec(appName)
	if a == nil {
		if done != nil {
			done()
		}
		return
	}
	// Sample transaction by mix weight.
	probs := a.MixProbabilities()
	x := s.routeRNG.Float64()
	idx := len(a.Txns) - 1
	for i, p := range probs {
		x -= p
		if x <= 0 {
			idx = i
			break
		}
	}
	txn := a.Txns[idx]
	start := s.eng.Now()
	if txn.LatencyMS > 0 {
		// CPU-free I/O waits (disk, network) delay the response without
		// occupying any station; charging them up front keeps the
		// response-time sum identical and the drop path simple.
		latency := s.serviceRNG.LogNormal(txn.LatencyMS/1000, 0.3)
		s.eng.Schedule(time.Duration(latency*float64(time.Second)), func() {
			s.visitTier(a, txn, 0, start, done)
		})
		return
	}
	s.visitTier(a, txn, 0, start, done)
}

// visitTier routes the request through tier i; past the last tier the
// response time is recorded.
func (s *System) visitTier(a *app.Spec, txn app.TxnSpec, i int, start time.Duration, done func()) {
	if i >= len(a.Tiers) {
		c := s.collectors[a.Name]
		rt := (s.eng.Now() - start).Seconds()
		c.rt.Add(rt)
		c.rts = append(c.rts, rt)
		c.completed++
		if done != nil {
			done()
		}
		return
	}
	tier := a.Tiers[i].Name
	id, ok := s.pickReplica(a, tier)
	if !ok {
		// Unserved tier: the request cannot complete; it is dropped and not
		// counted, mirroring connection errors on a missing tier.
		if done != nil {
			done()
		}
		return
	}
	proceed := func() {
		demand := s.serviceRNG.LogNormal(txn.DemandMS[tier]/1000, s.opts.ServiceCV)
		s.vmStations[id].Submit(demand, func() {
			s.visitTier(a, txn, i+1, start, done)
		})
	}
	// Dom-0 handles the virtualization overhead of the visit first.
	if d0 := s.dom0[s.vmHost[id]]; d0 != nil && a.Dom0OverheadMS > 0 {
		overhead := s.serviceRNG.LogNormal(a.Dom0OverheadMS/1000, s.opts.ServiceCV)
		d0.Submit(overhead, proceed)
	} else {
		proceed()
	}
}

// SetVMRate changes a VM's CPU allocation (fraction of host, in percent).
func (s *System) SetVMRate(id cluster.VMID, cpuPct float64) error {
	st, ok := s.vmStations[id]
	if !ok {
		return fmt.Errorf("queueing: unknown VM %q", id)
	}
	st.SetRate(cpuPct / 100)
	return nil
}

// PauseVM stops a VM's CPU for the given duration (e.g. the stop-and-copy
// downtime at the end of a live migration), then restores its rate.
func (s *System) PauseVM(id cluster.VMID, d time.Duration) error {
	st, ok := s.vmStations[id]
	if !ok {
		return fmt.Errorf("queueing: unknown VM %q", id)
	}
	restore := st.Rate()
	st.SetRate(0)
	s.eng.Schedule(d, func() { st.SetRate(restore) })
	return nil
}

// MoveVM reassigns a VM's Dom-0 accounting to a new host (the completion of
// a live migration). The VM's rate is preserved.
func (s *System) MoveVM(id cluster.VMID, dstHost string) error {
	if _, ok := s.vmStations[id]; !ok {
		return fmt.Errorf("queueing: unknown VM %q", id)
	}
	if _, ok := s.dom0[dstHost]; !ok {
		return fmt.Errorf("queueing: destination host %q not active", dstHost)
	}
	s.vmHost[id] = dstHost
	return nil
}

// SetHostFreq rescales every station on a host for a DVFS transition: VM
// stations run at allocation × freq, Dom-0 at its share × freq. newAllocs
// supplies each VM's allocation in percent (from the configuration).
func (s *System) SetHostFreq(host string, freq float64, allocs map[cluster.VMID]float64) error {
	d0, ok := s.dom0[host]
	if !ok {
		return fmt.Errorf("queueing: host %q not active", host)
	}
	if freq <= 0 || freq > 1 {
		return fmt.Errorf("queueing: invalid frequency %v", freq)
	}
	for id, h := range s.vmHost {
		if h != host {
			continue
		}
		alloc, ok := allocs[id]
		if !ok {
			continue
		}
		s.vmStations[id].SetRate(alloc / 100 * freq)
	}
	d0.SetRate(s.opts.Dom0Share * freq * (1 - s.dom0BG[host]))
	return nil
}

// AddHost activates a host, creating its Dom-0 station. Adding an
// already-active host is an error.
func (s *System) AddHost(host string) error {
	if _, ok := s.cat.Host(host); !ok {
		return fmt.Errorf("queueing: unknown host %q", host)
	}
	if _, ok := s.dom0[host]; ok {
		return fmt.Errorf("queueing: host %q already active", host)
	}
	s.dom0[host] = NewStation(s.eng, s.opts.Dom0Share)
	tw := &stats.TimeWeighted{}
	tw.Set(s.eng.Now(), 0)
	s.dom0BGUse[host] = tw
	return nil
}

// RemoveHost deactivates an empty host. Removing a host that still has VMs
// is an error.
func (s *System) RemoveHost(host string) error {
	if _, ok := s.dom0[host]; !ok {
		return fmt.Errorf("queueing: host %q not active", host)
	}
	for id, h := range s.vmHost {
		if h == host {
			return fmt.Errorf("queueing: host %q still hosts VM %q", host, id)
		}
	}
	delete(s.dom0, host)
	delete(s.dom0BG, host)
	delete(s.dom0BGUse, host)
	return nil
}

// AddVM activates a VM on a host with the given CPU allocation (replica
// addition). The host must be active.
func (s *System) AddVM(id cluster.VMID, host string, cpuPct float64) error {
	if _, ok := s.vmStations[id]; ok {
		return fmt.Errorf("queueing: VM %q already active", id)
	}
	if _, ok := s.dom0[host]; !ok {
		return fmt.Errorf("queueing: host %q not active", host)
	}
	s.vmStations[id] = NewStation(s.eng, cpuPct/100)
	s.vmHost[id] = host
	return nil
}

// RemoveVM deactivates a VM (replica removal). In-flight requests at the
// VM are dropped, mirroring connection resets during deactivation.
func (s *System) RemoveVM(id cluster.VMID) error {
	st, ok := s.vmStations[id]
	if !ok {
		return fmt.Errorf("queueing: VM %q not active", id)
	}
	st.SetRate(0)
	delete(s.vmStations, id)
	delete(s.vmHost, id)
	return nil
}

// SetDom0Background sets the fraction of a host's Dom-0 share occupied by
// background work (live-migration page copying). It slows the Dom-0
// station and counts as consumed CPU.
func (s *System) SetDom0Background(host string, frac float64) error {
	d0, ok := s.dom0[host]
	if !ok {
		return fmt.Errorf("queueing: host %q not active", host)
	}
	frac = stats.Clamp(frac, 0, 1)
	s.dom0BG[host] = frac
	d0.SetRate(s.opts.Dom0Share * (1 - frac))
	s.dom0BGUse[host].Set(s.eng.Now(), s.opts.Dom0Share*frac)
	return nil
}

// Run advances the simulation to the given absolute virtual time.
func (s *System) Run(until time.Duration) error {
	if err := s.eng.Run(until); err != nil {
		return fmt.Errorf("queueing: %w", err)
	}
	return nil
}

// AppWindow summarizes one application over a measurement window.
type AppWindow struct {
	MeanRTSec float64
	P95RTSec  float64
	Completed uint64
}

// Window summarizes a measurement window.
type Window struct {
	Apps map[string]AppWindow
	// HostUtil is the mean CPU utilization per host over the window
	// (VM stations + Dom-0 + background), in [0,1] of host capacity.
	HostUtil map[string]float64
}

// ResetWindow clears all window accumulators, starting a new measurement
// window at the current instant.
func (s *System) ResetWindow() {
	for _, c := range s.collectors {
		c.rt.Reset()
		c.rts = c.rts[:0]
		c.completed = 0
	}
	for _, st := range s.vmStations {
		st.ResetUsage()
	}
	for h, st := range s.dom0 {
		st.ResetUsage()
		s.dom0BGUse[h].Reset(s.eng.Now(), s.opts.Dom0Share*s.dom0BG[h])
	}
}

// Snapshot returns the metrics accumulated since the last ResetWindow.
func (s *System) Snapshot() Window {
	w := Window{
		Apps:     make(map[string]AppWindow, len(s.collectors)),
		HostUtil: make(map[string]float64, len(s.dom0)),
	}
	for name, c := range s.collectors {
		w.Apps[name] = AppWindow{
			MeanRTSec: c.rt.Mean(),
			P95RTSec:  stats.Quantile(c.rts, 0.95),
			Completed: c.completed,
		}
	}
	// VM stations fold into per-host utilization in sorted ID order: the
	// sum is floating point and map order would shuffle its last bits.
	ids := make([]cluster.VMID, 0, len(s.vmStations))
	for id := range s.vmStations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for h := range s.dom0 {
		var util float64
		for _, id := range ids {
			if s.vmHost[id] == h {
				util += s.vmStations[id].MeanUsageSince()
			}
		}
		util += s.dom0[h].MeanUsageSince()
		bg := s.dom0BGUse[h]
		bg.Flush(s.eng.Now())
		util += bg.Mean()
		w.HostUtil[h] = stats.Clamp(util, 0, 1)
	}
	return w
}
