package queueing

import (
	"math"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func closedLoopSystem(t *testing.T) *System {
	t.Helper()
	a := app.RUBiS("a")
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
	}, []*app.Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, []*app.Spec{a}, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cat, []*app.Spec{a}, cfg, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestClosedLoopOffersExpectedRate(t *testing.T) {
	sys := closedLoopSystem(t)
	// 240 sessions with ~7.6s think and sub-second response: the offered
	// rate is n/(think+RT) ≈ 30 req/s.
	if err := sys.SetSessions("a", 240, 7600*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(60 * time.Second); err != nil { // warm-up
		t.Fatal(err)
	}
	sys.ResetWindow()
	const window = 600.0
	if err := sys.Run(time.Duration((60 + window) * float64(time.Second))); err != nil {
		t.Fatal(err)
	}
	w := sys.Snapshot()
	throughput := float64(w.Apps["a"].Completed) / window
	if math.Abs(throughput-30)/30 > 0.1 {
		t.Errorf("closed-loop throughput = %.1f req/s, want ~30", throughput)
	}
}

func TestClosedLoopBoundsBacklog(t *testing.T) {
	sys := closedLoopSystem(t)
	// Overload: with closed-loop clients, at most n requests are ever in
	// flight, so response times stay bounded by roughly n × service.
	if err := sys.SetSessions("a", 100, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(360 * time.Second); err != nil {
		t.Fatal(err)
	}
	w := sys.Snapshot()
	if w.Apps["a"].Completed == 0 {
		t.Fatal("no completions under overload")
	}
	if rt := w.Apps["a"].MeanRTSec; rt > 60 {
		t.Errorf("closed-loop overload RT = %vs: backlog not bounded", rt)
	}
}

func TestClosedLoopScalesDown(t *testing.T) {
	sys := closedLoopSystem(t)
	if err := sys.SetSessions("a", 160, 7600*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Shrink the population: throughput must fall accordingly. (Run takes
	// absolute virtual times.)
	if err := sys.SetSessions("a", 40, 7600*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(360 * time.Second); err != nil { // drain retiring sessions
		t.Fatal(err)
	}
	sys.ResetWindow()
	const window = 600.0
	if err := sys.Run(time.Duration((360 + window) * float64(time.Second))); err != nil {
		t.Fatal(err)
	}
	throughput := float64(sys.Snapshot().Apps["a"].Completed) / window
	if math.Abs(throughput-5)/5 > 0.2 {
		t.Errorf("after scale-down throughput = %.2f req/s, want ~5", throughput)
	}
}

func TestSetSessionsValidation(t *testing.T) {
	sys := closedLoopSystem(t)
	if err := sys.SetSessions("ghost", 10, time.Second); err == nil {
		t.Error("unknown app accepted")
	}
	if err := sys.SetSessions("a", -1, time.Second); err == nil {
		t.Error("negative sessions accepted")
	}
	if err := sys.SetSessions("a", 1, -time.Second); err == nil {
		t.Error("negative think accepted")
	}
}

func TestSetSessionsStopsOpenLoop(t *testing.T) {
	sys := closedLoopSystem(t)
	if err := sys.SetRate("a", 50); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSessions("a", 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	if err := sys.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.Snapshot().Apps["a"].Completed; got != 0 {
		t.Errorf("open-loop arrivals survived SetSessions: %d completions", got)
	}
}
