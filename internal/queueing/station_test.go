package queueing

import (
	"math"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/stats"
)

func TestStationSingleJob(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 0.5)
	var doneAt time.Duration
	st.Submit(1.0, func() { doneAt = eng.Now() }) // 1 CPU-sec at rate 0.5 -> 2 s
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doneAt.Seconds()-2.0) > 1e-9 {
		t.Errorf("completion at %v, want 2s", doneAt)
	}
}

func TestStationProcessorSharingTwoJobs(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 1.0)
	var first, second time.Duration
	st.Submit(1.0, func() { first = eng.Now() })
	st.Submit(2.0, func() { second = eng.Now() })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// Both share: job1 finishes at t=2 (each gets 0.5/s until then),
	// job2 then runs alone with 1.0 remaining -> t=3.
	if math.Abs(first.Seconds()-2.0) > 1e-9 {
		t.Errorf("first done at %v, want 2s", first)
	}
	if math.Abs(second.Seconds()-3.0) > 1e-9 {
		t.Errorf("second done at %v, want 3s", second)
	}
}

func TestStationLateArrivalShares(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 1.0)
	var first, second time.Duration
	st.Submit(1.0, func() { first = eng.Now() })
	eng.Schedule(500*time.Millisecond, func() {
		st.Submit(0.25, func() { second = eng.Now() })
	})
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// t=0..0.5: job1 alone, 0.5 remaining. Then sharing at 0.5/s each:
	// job2 (0.25) finishes at t=1.0; job1 has 0.25 left, alone -> t=1.25.
	if math.Abs(second.Seconds()-1.0) > 1e-9 {
		t.Errorf("second done at %v, want 1s", second)
	}
	if math.Abs(first.Seconds()-1.25) > 1e-9 {
		t.Errorf("first done at %v, want 1.25s", first)
	}
}

func TestStationRateChangeMidService(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 1.0)
	var doneAt time.Duration
	st.Submit(1.0, func() { doneAt = eng.Now() })
	eng.Schedule(500*time.Millisecond, func() { st.SetRate(0.25) })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// 0.5 done in first 0.5s; remaining 0.5 at rate 0.25 -> 2s more.
	if math.Abs(doneAt.Seconds()-2.5) > 1e-9 {
		t.Errorf("done at %v, want 2.5s", doneAt)
	}
}

func TestStationZeroRateFreezes(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 1.0)
	var doneAt time.Duration
	st.Submit(1.0, func() { doneAt = eng.Now() })
	eng.Schedule(200*time.Millisecond, func() { st.SetRate(0) })
	eng.Schedule(1200*time.Millisecond, func() { st.SetRate(1.0) })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// 0.2 done, frozen 1s, then 0.8 remaining at 1/s -> done at 2.0s.
	if math.Abs(doneAt.Seconds()-2.0) > 1e-9 {
		t.Errorf("done at %v, want 2.0s", doneAt)
	}
	if st.Rate() != 1.0 {
		t.Errorf("rate = %v", st.Rate())
	}
}

func TestStationZeroDemandCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 1.0)
	done := false
	st.Submit(0, func() { done = true })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !done || eng.Now() != 0 {
		t.Errorf("zero-demand job: done=%v at %v", done, eng.Now())
	}
}

func TestStationUsageAccounting(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 0.5)
	st.Submit(0.5, nil) // busy 1s at rate 0.5
	if err := eng.Run(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Busy 1s of 4s at 0.5 -> mean usage 0.125.
	if got := st.MeanUsageSince(); math.Abs(got-0.125) > 1e-9 {
		t.Errorf("mean usage = %v, want 0.125", got)
	}
	st.ResetUsage()
	if err := eng.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := st.MeanUsageSince(); got != 0 {
		t.Errorf("mean usage after reset = %v, want 0", got)
	}
}

// M/G/1-PS is insensitive to the service distribution: mean RT = S/(1-rho).
func TestStationMG1PSMeanResponseTime(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStation(eng, 1.0)
	rng := sim.NewRNG(7, 7)
	const (
		lambda = 0.6
		meanS  = 1.0
	)
	var w stats.Welford
	var arrive func()
	arrive = func() {
		start := eng.Now()
		st.Submit(rng.LogNormal(meanS, 0.8), func() {
			w.Add((eng.Now() - start).Seconds())
		})
		eng.Schedule(time.Duration(rng.Exp(1/lambda)*float64(time.Second)), arrive)
	}
	eng.Schedule(0, arrive)
	if err := eng.Run(200000 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := meanS / (1 - lambda*meanS) // 2.5
	got := w.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("M/G/1-PS mean RT = %v, want %v ±5%%", got, want)
	}
}
