package fault

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

func TestDisabledInjectorIsNil(t *testing.T) {
	if in := New(Options{Seed: 7}); in != nil {
		t.Fatal("zero-rate options built a live injector")
	}
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	f := in.Action(cluster.ActionMigrate)
	if f.Fail || f.DelayMult != 1 {
		t.Errorf("nil injector injected: %+v", f)
	}
	if got := in.HostCrashes([]string{"h0", "h1"}, time.Hour); got != nil {
		t.Errorf("nil injector crashed hosts: %v", got)
	}
	if in.Sensor().Drop {
		t.Error("nil injector dropped a sensor window")
	}
	if got := in.SensorJitter(1.5); got != 1.5 {
		t.Errorf("nil injector jittered: %v", got)
	}
	if in.Counts() != (Counts{}) {
		t.Errorf("nil injector counts: %+v", in.Counts())
	}
}

func TestProfileScalesRates(t *testing.T) {
	o := Profile(0.2, 9)
	if !o.Enabled() {
		t.Fatal("profile at 20% disabled")
	}
	if o.ActionFailRate != 0.2 || o.DelayRate != 0.1 || o.SensorDropRate != 0.05 {
		t.Errorf("profile rates: %+v", o)
	}
	if Profile(0, 9).Enabled() {
		t.Error("zero-rate profile enabled")
	}
}

// drawSchedule exercises every draw class and returns the full outcome
// sequence for determinism comparison.
func drawSchedule(in *Injector) []any {
	var out []any
	kinds := []cluster.ActionKind{
		cluster.ActionMigrate, cluster.ActionIncreaseCPU,
		cluster.ActionStartHost, cluster.ActionAddReplica,
	}
	for i := 0; i < 200; i++ {
		out = append(out, in.Action(kinds[i%len(kinds)]))
	}
	for i := 0; i < 50; i++ {
		out = append(out, in.HostCrashes([]string{"h0", "h1", "h2", "h3"}, 2*time.Minute))
		out = append(out, in.Sensor())
		out = append(out, in.SensorJitter(0.4))
	}
	return out
}

func TestSeededDeterminism(t *testing.T) {
	a := New(Profile(0.3, 1234))
	b := New(Profile(0.3, 1234))
	if !reflect.DeepEqual(drawSchedule(a), drawSchedule(b)) {
		t.Error("identical seeds produced different fault schedules")
	}
	c := New(Profile(0.3, 1235))
	if reflect.DeepEqual(drawSchedule(a), drawSchedule(c)) {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestActionFaultRates(t *testing.T) {
	in := New(Options{Seed: 5, ActionFailRate: 0.5, DelayRate: 0.5, DelayMaxMult: 4})
	var fails, delays int
	const n = 2000
	for i := 0; i < n; i++ {
		f := in.Action(cluster.ActionMigrate)
		if f.Fail {
			fails++
			if f.SunkFraction < 0.1 || f.SunkFraction > 0.9 {
				t.Fatalf("sunk fraction %v out of [0.1, 0.9]", f.SunkFraction)
			}
		}
		if f.DelayMult != 1 {
			delays++
			if f.DelayMult < 1 || f.DelayMult > 4 {
				t.Fatalf("delay mult %v out of [1, 4]", f.DelayMult)
			}
		}
	}
	if fails < n/3 || fails > 2*n/3 {
		t.Errorf("fails = %d of %d at p=0.5", fails, n)
	}
	if delays < n/3 || delays > 2*n/3 {
		t.Errorf("delays = %d of %d at p=0.5", delays, n)
	}
	c := in.Counts()
	if c.ActionsFailed != int64(fails) || c.ActionsDelayed != int64(delays) {
		t.Errorf("counts %+v, want fails=%d delays=%d", c, fails, delays)
	}
	if c.Injected != c.ActionsFailed+c.ActionsDelayed {
		t.Errorf("injected %d != failed+delayed %d", c.Injected, c.ActionsFailed+c.ActionsDelayed)
	}
}

func TestFailRateByKindOverrides(t *testing.T) {
	in := New(Options{
		Seed:           3,
		ActionFailRate: 1,
		FailRateByKind: map[cluster.ActionKind]float64{cluster.ActionDecreaseCPU: 0},
	})
	for i := 0; i < 50; i++ {
		if in.Action(cluster.ActionDecreaseCPU).Fail {
			t.Fatal("zero per-kind rate failed an action")
		}
		if !in.Action(cluster.ActionMigrate).Fail {
			t.Fatal("unit default rate passed an action")
		}
	}
}

func TestRetryableFraction(t *testing.T) {
	all := New(Options{Seed: 4, ActionFailRate: 1, RetryableFraction: 1})
	none := New(Options{Seed: 4, ActionFailRate: 1, RetryableFraction: -1})
	for i := 0; i < 50; i++ {
		if !all.Action(cluster.ActionMigrate).Retryable {
			t.Fatal("RetryableFraction=1 produced a permanent failure")
		}
		if none.Action(cluster.ActionMigrate).Retryable {
			t.Fatal("RetryableFraction<0 produced a retryable failure")
		}
	}
}

func TestHostCrashes(t *testing.T) {
	in := New(Options{Seed: 8, HostCrashPerHour: 1000}) // p ≈ 1 per window
	crashed := in.HostCrashes([]string{"h0", "h1"}, time.Hour)
	if len(crashed) != 2 {
		t.Errorf("crashed = %v at near-certain rate", crashed)
	}
	if got := in.HostCrashes([]string{"h0"}, 0); got != nil {
		t.Errorf("zero-length window crashed %v", got)
	}
	low := New(Options{Seed: 8, HostCrashPerHour: 1e-9})
	var n int
	for i := 0; i < 100; i++ {
		n += len(low.HostCrashes([]string{"h0", "h1"}, 2*time.Minute))
	}
	if n != 0 {
		t.Errorf("%d crashes at negligible rate", n)
	}
}

func TestSensorDropAndNoise(t *testing.T) {
	in := New(Options{Seed: 6, SensorDropRate: 1})
	if !in.Sensor().Drop {
		t.Error("unit drop rate kept the window")
	}
	noisy := New(Options{Seed: 6, SensorNoise: 0.2})
	var moved bool
	for i := 0; i < 20; i++ {
		if v := noisy.SensorJitter(1.0); v != 1.0 {
			moved = true
			if v <= 0 {
				t.Fatalf("jitter drove measurement non-positive: %v", v)
			}
		}
	}
	if !moved {
		t.Error("sensor noise never perturbed a measurement")
	}
}

// TestConcurrentDraws exists for the -race detector: the injector must be
// safe to query from parallel workers even though deterministic callers
// serialize their queries.
func TestConcurrentDraws(t *testing.T) {
	in := New(Profile(0.3, 11))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Action(cluster.ActionMigrate)
				in.Sensor()
				in.SensorJitter(1)
				in.HostCrashes([]string{"h0"}, time.Minute)
			}
		}()
	}
	wg.Wait()
	if in.Counts().Injected == 0 {
		t.Error("no injections under concurrent load")
	}
}
