// Package fault is the deterministic fault-injection plane: a seeded
// Injector that decides, reproducibly, which adaptation actions fail or
// stall, which hosts crash, and which measurement windows arrive late or
// extra-noisy. The paper's testbed executes every plan infallibly; real Xen
// clusters abort migrations, hang power-ons, and drop sensor samples, and a
// controller that "dynamically manages adaptation cost" must survive the
// adaptations it pays for.
//
// Design constraints, in order:
//
//   - Strictly opt-in: New returns nil when every rate is zero, and every
//     method is a nil-receiver-safe no-op that makes zero RNG draws, so a
//     run without faults is byte-identical to one built before this package
//     existed.
//   - Deterministic: all draws come from seeded PCG streams (one per
//     subsystem, derived via Split so draws in one never perturb another)
//     and are serialized under a mutex, so identical seeds yield identical
//     fault schedules at any Workers setting and under -race.
//   - Observable: injections surface as fault_* counters and as Counts()
//     for tests.
package fault

import (
	"math"
	"sync"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/sim"
)

// Options configures an Injector. The zero value disables everything.
type Options struct {
	// Seed drives every fault draw. Identical seeds reproduce identical
	// fault schedules (given identical query sequences).
	Seed uint64
	// ActionFailRate is the probability that an adaptation action fails
	// mid-flight (migration abort, VM start failure, stuck cap change).
	ActionFailRate float64
	// FailRateByKind overrides ActionFailRate per action kind (e.g. power-on
	// hangs more often than CPU-cap changes).
	FailRateByKind map[cluster.ActionKind]float64
	// RetryableFraction is the share of injected action failures that are
	// transient — worth retrying — rather than permanent (default 0.7;
	// negative for none).
	RetryableFraction float64
	// DelayRate is the probability that a (successful) action takes longer
	// than the cost tables predict.
	DelayRate float64
	// DelayMaxMult bounds the transient-delay multiplier: a delayed action's
	// duration is scaled by a uniform draw in [1, DelayMaxMult] (default 3).
	DelayMaxMult float64
	// HostCrashPerHour is the per-host crash rate (Poisson, so the per-window
	// probability is 1−exp(−rate·hours)).
	HostCrashPerHour float64
	// SensorDropRate is the probability that a measurement window's sensor
	// data is dropped (the previous window's values are reported instead).
	SensorDropRate float64
	// SensorNoise is the relative stddev of extra measurement noise layered
	// on top of the testbed's calibrated noise.
	SensorNoise float64
	// Obs overrides the process-default observer for fault counters; nil
	// resolves the default.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	switch {
	case o.RetryableFraction == 0:
		o.RetryableFraction = 0.7
	case o.RetryableFraction < 0:
		o.RetryableFraction = 0
	}
	if o.DelayMaxMult < 1 {
		o.DelayMaxMult = 3
	}
	return o
}

// Enabled reports whether any fault class has a positive rate.
func (o Options) Enabled() bool {
	if o.ActionFailRate > 0 || o.DelayRate > 0 || o.HostCrashPerHour > 0 ||
		o.SensorDropRate > 0 || o.SensorNoise > 0 {
		return true
	}
	for _, p := range o.FailRateByKind {
		if p > 0 {
			return true
		}
	}
	return false
}

// Profile returns the standard fault mix used by the -fault-rate flags and
// the fault-sweep experiment, scaled from a single headline rate p (the
// action failure probability): delays at p/2, sensor drops at p/4, extra
// sensor noise at p/10 relative stddev, and host crashes at p/10 per hour.
func Profile(rate float64, seed uint64) Options {
	if rate <= 0 {
		return Options{Seed: seed}
	}
	return Options{
		Seed:             seed,
		ActionFailRate:   rate,
		DelayRate:        rate / 2,
		SensorDropRate:   rate / 4,
		SensorNoise:      rate / 10,
		HostCrashPerHour: rate / 10,
	}
}

// ChaosProfile is Profile turned hostile: every fault class is active at
// once — delays as likely as failures, crashes at half the headline rate —
// and most injected failures are terminal (RetryableFraction 0.4), the
// regime the rollback execution policy and the admission guard exist for.
func ChaosProfile(rate float64, seed uint64) Options {
	if rate <= 0 {
		return Options{Seed: seed}
	}
	return Options{
		Seed:              seed,
		ActionFailRate:    rate,
		DelayRate:         rate,
		SensorDropRate:    rate / 4,
		SensorNoise:       rate / 10,
		HostCrashPerHour:  rate / 2,
		RetryableFraction: 0.4,
	}
}

// Counts is a snapshot of everything the injector has injected.
type Counts struct {
	Injected       int64 // total fault events of any class
	ActionsFailed  int64
	ActionsDelayed int64
	HostCrashes    int64
	SensorDrops    int64
}

// Injector draws fault events from seeded streams. A nil *Injector is valid
// and injects nothing — the strictly-opt-in fast path.
type Injector struct {
	opts Options

	mu      sync.Mutex
	actions *sim.RNG // action failure/delay draws
	hosts   *sim.RNG // host-crash draws
	sensors *sim.RNG // sensor drop/noise draws
	counts  Counts

	cInjected *obs.Counter
	cFailed   *obs.Counter
	cDelayed  *obs.Counter
	cCrashes  *obs.Counter
	cDrops    *obs.Counter
}

// New builds an injector, or returns nil when the options enable nothing —
// callers hold a nil *Injector and every method no-ops.
func New(opts Options) *Injector {
	if !opts.Enabled() {
		return nil
	}
	opts = opts.withDefaults()
	// One parent stream, split per subsystem: adding draws in one subsystem
	// (say, more actions failing) must not perturb another's schedule.
	parent := sim.NewRNG(opts.Seed, 0xfa017)
	in := &Injector{
		opts:    opts,
		actions: parent.Split(),
		hosts:   parent.Split(),
		sensors: parent.Split(),
	}
	o := obs.Resolve(opts.Obs)
	in.cInjected = o.Counter("fault_injected_total")
	in.cFailed = o.Counter("fault_actions_failed_total")
	in.cDelayed = o.Counter("fault_actions_delayed_total")
	in.cCrashes = o.Counter("fault_host_crashes_total")
	in.cDrops = o.Counter("fault_sensor_drops_total")
	return in
}

// Enabled reports whether the injector injects anything.
func (in *Injector) Enabled() bool { return in != nil }

// Counts returns a snapshot of injected-event totals.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// State is an Injector's complete mutable state in serializable form: the
// positions of the three fault streams and the injected-event totals.
// Options are not included — state is restored into an injector freshly
// built with the same options.
type State struct {
	Actions []byte `json:"actions"`
	Hosts   []byte `json:"hosts"`
	Sensors []byte `json:"sensors"`
	Counts  Counts `json:"counts"`
}

// Snapshot captures the injector's state; a nil injector yields a nil
// state pointer (nothing to persist).
func (in *Injector) Snapshot() (*State, error) {
	if in == nil {
		return nil, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var s State
	var err error
	if s.Actions, err = in.actions.Snapshot(); err != nil {
		return nil, err
	}
	if s.Hosts, err = in.hosts.Snapshot(); err != nil {
		return nil, err
	}
	if s.Sensors, err = in.sensors.Snapshot(); err != nil {
		return nil, err
	}
	s.Counts = in.counts
	return &s, nil
}

// Restore rewinds the injector's streams and totals to a captured state. A
// nil state is a no-op (matching the nil snapshot of a nil injector);
// restoring into a nil injector with a non-nil state is an error caught by
// the caller's configuration mismatch, so it just no-ops here too.
func (in *Injector) Restore(s *State) error {
	if in == nil || s == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if err := in.actions.Restore(s.Actions); err != nil {
		return err
	}
	if err := in.hosts.Restore(s.Hosts); err != nil {
		return err
	}
	if err := in.sensors.Restore(s.Sensors); err != nil {
		return err
	}
	in.counts = s.Counts
	return nil
}

func (in *Injector) failRate(kind cluster.ActionKind) float64 {
	if p, ok := in.opts.FailRateByKind[kind]; ok {
		return p
	}
	return in.opts.ActionFailRate
}

// ActionFault is the injector's verdict on one adaptation action.
type ActionFault struct {
	// Fail aborts the action: the configuration change does not happen, but
	// SunkFraction of the (possibly delayed) duration is still consumed and
	// its transient costs charged — a migration that dies at 80% has already
	// copied 80% of the pages.
	Fail bool
	// SunkFraction is the fraction of the duration elapsed before the abort,
	// in [0.1, 0.9].
	SunkFraction float64
	// Retryable marks a transient failure worth re-attempting.
	Retryable bool
	// DelayMult scales the action's duration (1 = on time; up to
	// Options.DelayMaxMult). Failures are also subject to it: a stalled
	// migration takes longer to die.
	DelayMult float64
}

// Action draws the fate of one adaptation action. Call order must be
// deterministic (the testbed serializes plan steps), and the injector
// serializes the underlying stream, so fault schedules are reproducible.
func (in *Injector) Action(kind cluster.ActionKind) ActionFault {
	f := ActionFault{DelayMult: 1}
	if in == nil {
		return f
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if p := in.opts.DelayRate; p > 0 && in.actions.Float64() < p {
		f.DelayMult = 1 + (in.opts.DelayMaxMult-1)*in.actions.Float64()
		in.counts.Injected++
		in.counts.ActionsDelayed++
		in.cInjected.Inc()
		in.cDelayed.Inc()
	}
	if p := in.failRate(kind); p > 0 && in.actions.Float64() < p {
		f.Fail = true
		f.SunkFraction = 0.1 + 0.8*in.actions.Float64()
		f.Retryable = in.opts.RetryableFraction > 0 && in.actions.Float64() < in.opts.RetryableFraction
		in.counts.Injected++
		in.counts.ActionsFailed++
		in.cInjected.Inc()
		in.cFailed.Inc()
	}
	return f
}

// HostCrashes draws which of the given hosts crash during a window of the
// given length. Pass hosts in sorted order (cluster.Config.ActiveHosts is)
// so per-host draws are reproducible.
func (in *Injector) HostCrashes(hosts []string, window time.Duration) []string {
	if in == nil || in.opts.HostCrashPerHour <= 0 || window <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p := 1 - math.Exp(-in.opts.HostCrashPerHour*window.Hours())
	var crashed []string
	for _, h := range hosts {
		if in.hosts.Float64() < p {
			crashed = append(crashed, h)
			in.counts.Injected++
			in.counts.HostCrashes++
			in.cInjected.Inc()
			in.cCrashes.Inc()
		}
	}
	return crashed
}

// SensorFault is the injector's verdict on one measurement window.
type SensorFault struct {
	// Drop replaces the window's RT/power measurements with the previous
	// window's (a stale sensor read); the very first window cannot drop.
	Drop bool
}

// Sensor draws the fate of one measurement window. One draw per window.
func (in *Injector) Sensor() SensorFault {
	if in == nil {
		return SensorFault{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if p := in.opts.SensorDropRate; p > 0 && in.sensors.Float64() < p {
		in.counts.Injected++
		in.counts.SensorDrops++
		in.cInjected.Inc()
		in.cDrops.Inc()
		return SensorFault{Drop: true}
	}
	return SensorFault{}
}

// SensorJitter perturbs a measurement with the injector's extra noise
// (multiplicative normal, relative stddev Options.SensorNoise). It draws
// from the sensor stream; callers must visit measurements in a
// deterministic order.
func (in *Injector) SensorJitter(v float64) float64 {
	if in == nil || in.opts.SensorNoise <= 0 {
		return v
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sensors.Jitter(v, in.opts.SensorNoise)
}
