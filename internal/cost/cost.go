// Package cost implements the transient adaptation-cost model of §III-C.
// Each of the six adaptation actions has, per workload level, a measured
// duration, response-time deltas for the adapted application and for
// applications co-located with it, and a power delta on the affected hosts.
// Costs are stored in tables indexed by workload (concurrent sessions) and
// looked up by nearest workload at runtime, exactly as the paper does.
//
// Tables come from two sources: PaperTable reproduces the published
// measurements (Fig. 7 shapes plus the host power-cycling constants), and
// the testbed package can regenerate a table by running the paper's offline
// measurement campaign against the request-level simulator.
package cost

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

// Key identifies a cost-table row family: the action kind plus, where it
// matters (migrations and replica changes), the tier of the affected VM.
type Key struct {
	Kind cluster.ActionKind
	Tier string
}

// String renders the key for diagnostics.
func (k Key) String() string {
	if k.Tier == "" {
		return k.Kind.String()
	}
	return fmt.Sprintf("%s(%s)", k.Kind, k.Tier)
}

// Entry is one measured cost point.
type Entry struct {
	// Sessions is the workload index (concurrent sessions on the affected
	// application).
	Sessions float64
	// Duration is the measured length of the action, d(a).
	Duration time.Duration
	// DeltaRTTargetSec is the response-time increase of the application
	// being adapted while the action runs (seconds).
	DeltaRTTargetSec float64
	// DeltaRTColocatedSec is the response-time increase of applications
	// co-located on the affected hosts (seconds).
	DeltaRTColocatedSec float64
	// DeltaWatts is the power increase on the affected hosts while the
	// action runs.
	DeltaWatts float64
}

// Table holds cost entries grouped by key, sorted by workload.
type Table struct {
	entries map[Key][]Entry
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[Key][]Entry)}
}

// Add inserts an entry, keeping the key's entries sorted by Sessions.
func (t *Table) Add(k Key, e Entry) {
	es := append(t.entries[k], e)
	sort.Slice(es, func(i, j int) bool { return es[i].Sessions < es[j].Sessions })
	t.entries[k] = es
}

// Keys returns all keys in deterministic order.
func (t *Table) Keys() []Key {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		return keys[i].Tier < keys[j].Tier
	})
	return keys
}

// Entries returns the sorted entries for a key. The slice is shared;
// callers must not mutate it.
func (t *Table) Entries(k Key) []Entry { return t.entries[k] }

// Lookup returns the entry whose workload is closest to sessions, as the
// paper's Cost Manager does. The second result reports whether the key has
// any entries; a tier-specific miss falls back to the tierless key.
func (t *Table) Lookup(k Key, sessions float64) (Entry, bool) {
	es := t.entries[k]
	if len(es) == 0 && k.Tier != "" {
		es = t.entries[Key{Kind: k.Kind}]
	}
	if len(es) == 0 {
		return Entry{}, false
	}
	best := es[0]
	bestDist := math.Abs(es[0].Sessions - sessions)
	for _, e := range es[1:] {
		if d := math.Abs(e.Sessions - sessions); d < bestDist {
			best, bestDist = e, d
		}
	}
	return best, true
}

// PaperTable builds the cost tables the paper measured offline (Fig. 7 for
// migrations and replica changes, §V-B for host power cycling, and
// §IV's description of CPU tuning as the quickest, cheapest action). The
// shapes — costs growing superlinearly with the number of concurrent
// sessions, MySQL migrations costlier than Tomcat costlier than Apache —
// match the published curves; magnitudes are anchored to the figures'
// axes (8–17% power delta over a ≈160 W two-host baseline, up to ≈800 ms
// response-time delta, 10–80 s durations at 100–800 sessions).
func PaperTable() *Table {
	t := NewTable()
	const baselineWatts = 160.0

	type shape struct {
		key        Key
		wattPctLo  float64 // delta watts % at 100 sessions
		wattPctHi  float64 // delta watts % at 800 sessions
		rtLoMS     float64
		rtHiMS     float64
		durLoSec   float64
		durHiSec   float64
		coLocFrac  float64 // co-located ΔRT as a fraction of target ΔRT
		rtExponent float64
	}
	shapes := []shape{
		{Key{cluster.ActionMigrate, "db"}, 10.0, 17.0, 60, 800, 12, 78, 0.45, 1.8},
		{Key{cluster.ActionMigrate, "app"}, 9.0, 14.5, 45, 520, 9, 55, 0.40, 1.8},
		{Key{cluster.ActionMigrate, "web"}, 8.0, 12.5, 30, 320, 7, 38, 0.35, 1.8},
		{Key{cluster.ActionAddReplica, "db"}, 9.5, 15.5, 40, 430, 14, 70, 0.35, 1.6},
		{Key{cluster.ActionAddReplica, "app"}, 8.5, 13.0, 30, 300, 10, 50, 0.30, 1.6},
		{Key{cluster.ActionRemoveReplica, "db"}, 8.5, 13.5, 25, 260, 10, 55, 0.25, 1.5},
		{Key{cluster.ActionRemoveReplica, "app"}, 8.0, 12.0, 20, 200, 8, 42, 0.22, 1.5},
	}
	for _, sh := range shapes {
		for s := 100.0; s <= 800; s += 100 {
			x := (s - 100) / 700 // 0..1 across the sweep
			wattPct := sh.wattPctLo + (sh.wattPctHi-sh.wattPctLo)*x
			rtMS := sh.rtLoMS + (sh.rtHiMS-sh.rtLoMS)*math.Pow(x, sh.rtExponent)
			durSec := sh.durLoSec + (sh.durHiSec-sh.durLoSec)*math.Pow(x, 1.3)
			t.Add(sh.key, Entry{
				Sessions:            s,
				Duration:            time.Duration(durSec * float64(time.Second)),
				DeltaRTTargetSec:    rtMS / 1000,
				DeltaRTColocatedSec: rtMS / 1000 * sh.coLocFrac,
				DeltaWatts:          wattPct / 100 * baselineWatts,
			})
		}
	}

	// CPU capacity tuning: milliseconds-scale hypervisor call; the paper
	// treats it as the quickest, near-free action.
	for _, kind := range []cluster.ActionKind{cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU} {
		for s := 100.0; s <= 800; s += 100 {
			t.Add(Key{Kind: kind}, Entry{
				Sessions:            s,
				Duration:            time.Second,
				DeltaRTTargetSec:    0.004 + 0.004*s/800,
				DeltaRTColocatedSec: 0,
				DeltaWatts:          0.5,
			})
		}
	}

	// WAN migration (§VI extension): memory plus disk image over a
	// wide-area link at a fraction of LAN bandwidth — tens of minutes, a
	// sustained response-time hit on the migrated application, and NIC
	// power at both ends. Costs again grow with workload (page dirtying
	// extends pre-copy rounds over the slow link).
	wanShapes := []struct {
		tier               string
		rtLoMS, rtHiMS     float64
		durLoMin, durHiMin float64
		wattLo, wattHi     float64
	}{
		{"db", 150, 1200, 12, 35, 14, 24},
		{"app", 110, 800, 10, 28, 12, 20},
		{"web", 80, 500, 8, 22, 10, 17},
	}
	for _, sh := range wanShapes {
		for s := 100.0; s <= 800; s += 100 {
			x := (s - 100) / 700
			t.Add(Key{Kind: cluster.ActionWANMigrate, Tier: sh.tier}, Entry{
				Sessions:            s,
				Duration:            time.Duration((sh.durLoMin + (sh.durHiMin-sh.durLoMin)*math.Pow(x, 1.3)) * float64(time.Minute)),
				DeltaRTTargetSec:    (sh.rtLoMS + (sh.rtHiMS-sh.rtLoMS)*math.Pow(x, 1.8)) / 1000,
				DeltaRTColocatedSec: (sh.rtLoMS + (sh.rtHiMS-sh.rtLoMS)*math.Pow(x, 1.8)) / 1000 * 0.3,
				DeltaWatts:          sh.wattLo + (sh.wattHi-sh.wattLo)*x,
			})
		}
	}

	// DVFS transitions (§VI extension): microsecond-scale voltage ramps,
	// charged as a 100 ms action with no measurable deltas.
	t.Add(Key{Kind: cluster.ActionSetDVFS}, Entry{
		Sessions: 0, Duration: 100 * time.Millisecond,
	})

	// Host power cycling (§V-B): start ≈90 s at ≈80 W, stop ≈30 s at
	// ≈20 W; response times on other machines are unaffected.
	t.Add(Key{Kind: cluster.ActionStartHost}, Entry{
		Sessions: 0, Duration: 90 * time.Second, DeltaWatts: 80,
	})
	t.Add(Key{Kind: cluster.ActionStopHost}, Entry{
		Sessions: 0, Duration: 30 * time.Second, DeltaWatts: 20,
	})
	return t
}

// KeyFor derives the table key for an action, resolving the affected VM's
// tier through the catalog.
func KeyFor(cat *cluster.Catalog, a cluster.Action) Key {
	switch a.Kind {
	case cluster.ActionMigrate, cluster.ActionWANMigrate, cluster.ActionAddReplica, cluster.ActionRemoveReplica:
		if vm, ok := cat.VM(a.VM); ok {
			return Key{Kind: a.Kind, Tier: vm.Tier}
		}
		return Key{Kind: a.Kind}
	default:
		return Key{Kind: a.Kind}
	}
}

// Manager is the paper's Cost Manager: it predicts the transient cost of an
// action given the current workload.
type Manager struct {
	cat   *cluster.Catalog
	table *Table
	// SessionsPerReqSec converts request rates to the session index of the
	// cost tables.
	sessionsPerReqSec float64
}

// NewManager builds a cost manager over a table. sessionsPerReqSec converts
// request rates into the tables' session index (8 in the paper's setup).
func NewManager(cat *cluster.Catalog, table *Table, sessionsPerReqSec float64) (*Manager, error) {
	if table == nil {
		return nil, fmt.Errorf("cost: nil table")
	}
	if sessionsPerReqSec <= 0 {
		return nil, fmt.Errorf("cost: non-positive sessions-per-req factor %v", sessionsPerReqSec)
	}
	return &Manager{cat: cat, table: table, sessionsPerReqSec: sessionsPerReqSec}, nil
}

// Prediction is the Cost Manager's estimate for one action.
type Prediction struct {
	Duration time.Duration
	// DeltaRTSec maps each application to its response-time increase while
	// the action runs.
	DeltaRTSec map[string]float64
	// DeltaWatts is the system power increase while the action runs.
	DeltaWatts float64
}

// Predict estimates the cost of executing action a in configuration cfg
// under the given per-application request rates. The adapted application
// suffers the target delta; applications sharing the action's source or
// destination hosts suffer the co-located delta.
func (m *Manager) Predict(cfg cluster.Config, a cluster.Action, rates map[string]float64) Prediction {
	deltaRT := make(map[string]float64)
	dur, watts := m.PredictInto(cfg, a, rates, deltaRT)
	return Prediction{Duration: dur, DeltaRTSec: deltaRT, DeltaWatts: watts}
}

// PredictInto is Predict with caller-owned scratch: deltaRT is cleared and
// refilled with the per-application response-time deltas, and the duration
// and power delta are returned directly. The search evaluates one action
// per generated child, so this path must not allocate.
func (m *Manager) PredictInto(cfg cluster.Config, a cluster.Action, rates map[string]float64, deltaRT map[string]float64) (time.Duration, float64) {
	clear(deltaRT)
	key := KeyFor(m.cat, a)
	targetApp := ""
	if vm, ok := m.cat.VM(a.VM); ok {
		targetApp = vm.App
	}
	sessions := 0.0
	if targetApp != "" {
		sessions = rates[targetApp] * m.sessionsPerReqSec
	}
	entry, ok := m.table.Lookup(key, sessions)
	if !ok {
		// Unmeasured action: assume instantaneous and free rather than
		// blocking the search; the optimizer treats it as cost-neutral.
		return 0, 0
	}
	if targetApp == "" {
		return entry.Duration, entry.DeltaWatts
	}
	deltaRT[targetApp] = entry.DeltaRTTargetSec
	if entry.DeltaRTColocatedSec > 0 {
		m.colocatedInto(cfg, a, targetApp, deltaRT, entry.DeltaRTColocatedSec)
	}
	return entry.Duration, entry.DeltaWatts
}

// colocatedInto charges the co-located delta to every application (other
// than targetApp) with a VM on a host the action touches: its source, its
// destination, and the adapted VM's current host. All charged applications
// receive the same delta, so insertion order is immaterial and the scan
// runs allocation-free over the catalog's fixed VM universe.
func (m *Manager) colocatedInto(cfg cluster.Config, a cluster.Action, targetApp string, deltaRT map[string]float64, delta float64) {
	h1, h2 := a.Host, a.FromHost
	h3 := ""
	if p, ok := cfg.PlacementOf(a.VM); ok {
		h3 = p.Host
	}
	for _, id := range m.cat.VMIDs() {
		p, ok := cfg.PlacementOf(id)
		if !ok || (p.Host != h1 && p.Host != h2 && p.Host != h3) || p.Host == "" {
			continue
		}
		vm, ok := m.cat.VM(id)
		if !ok || vm.App == targetApp {
			continue
		}
		deltaRT[vm.App] = delta
	}
}
