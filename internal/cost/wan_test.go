package cost

import (
	"testing"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func TestPredictWANMigration(t *testing.T) {
	apps := []*app.Spec{app.RUBiS("rubis1"), app.RUBiS("rubis2")}
	mk := func(name, zone string) cluster.HostSpec {
		h := cluster.DefaultHostSpec(name)
		h.Zone = zone
		return h
	}
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		mk("e0", "east"), mk("e1", "east"), mk("w0", "west"), mk("w1", "west"),
	}, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	for _, h := range cat.HostNames() {
		cfg.SetHostOn(h, true)
	}
	cfg.Place("rubis1-web-0", "e0", 30)
	cfg.Place("rubis1-app-0", "e0", 40)
	cfg.Place("rubis1-db-0", "e1", 40)
	cfg.Place("rubis2-web-0", "w0", 30)
	cfg.Place("rubis2-app-0", "w0", 40)
	cfg.Place("rubis2-db-0", "w1", 40)

	m, err := NewManager(cat, PaperTable(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{"rubis1": 50, "rubis2": 50}

	wan := m.Predict(cfg, cluster.Action{
		Kind: cluster.ActionWANMigrate, VM: "rubis1-db-0", Host: "w1", FromHost: "e1",
	}, rates)
	lan := m.Predict(cfg, cluster.Action{
		Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: "e0", FromHost: "e1",
	}, rates)

	if wan.Duration <= lan.Duration {
		t.Errorf("WAN duration %v not above LAN %v", wan.Duration, lan.Duration)
	}
	if wan.DeltaRTSec["rubis1"] <= lan.DeltaRTSec["rubis1"] {
		t.Errorf("WAN ΔRT %v not above LAN %v", wan.DeltaRTSec["rubis1"], lan.DeltaRTSec["rubis1"])
	}
	// The WAN move lands on rubis2's host: rubis2 suffers the co-located
	// delta.
	if wan.DeltaRTSec["rubis2"] <= 0 {
		t.Error("co-located app unaffected by WAN migration onto its host")
	}
	if wan.DeltaRTSec["rubis2"] >= wan.DeltaRTSec["rubis1"] {
		t.Error("co-located delta should stay below target delta")
	}
}

func TestKeyForWANResolvesTier(t *testing.T) {
	apps := []*app.Spec{app.RUBiS("rubis1")}
	cat, err := app.BuildCatalog([]cluster.HostSpec{cluster.DefaultHostSpec("h0")}, apps)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor(cat, cluster.Action{Kind: cluster.ActionWANMigrate, VM: "rubis1-app-0"})
	if k.Tier != "app" {
		t.Errorf("KeyFor wan-migrate = %v, want app tier", k)
	}
}
