package cost

import (
	"fmt"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func testCatalog(t *testing.T) (*cluster.Catalog, []*app.Spec) {
	t.Helper()
	apps := []*app.Spec{app.RUBiS("rubis1"), app.RUBiS("rubis2")}
	cat, err := app.BuildCatalog([]cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
		cluster.DefaultHostSpec("h2"), cluster.DefaultHostSpec("h3"),
	}, apps)
	if err != nil {
		t.Fatal(err)
	}
	return cat, apps
}

func TestTableAddAndLookupNearest(t *testing.T) {
	tbl := NewTable()
	k := Key{Kind: cluster.ActionMigrate, Tier: "db"}
	tbl.Add(k, Entry{Sessions: 400, Duration: 40 * time.Second})
	tbl.Add(k, Entry{Sessions: 100, Duration: 10 * time.Second})
	tbl.Add(k, Entry{Sessions: 800, Duration: 80 * time.Second})

	cases := []struct {
		sessions float64
		wantDur  time.Duration
	}{
		{0, 10 * time.Second},
		{120, 10 * time.Second},
		{260, 40 * time.Second},
		{550, 40 * time.Second},
		{700, 80 * time.Second},
		{5000, 80 * time.Second},
	}
	for _, c := range cases {
		e, ok := tbl.Lookup(k, c.sessions)
		if !ok {
			t.Fatalf("Lookup(%v) missed", c.sessions)
		}
		if e.Duration != c.wantDur {
			t.Errorf("Lookup(%v).Duration = %v, want %v", c.sessions, e.Duration, c.wantDur)
		}
	}
	// Entries sorted.
	es := tbl.Entries(k)
	for i := 1; i < len(es); i++ {
		if es[i].Sessions < es[i-1].Sessions {
			t.Error("entries not sorted")
		}
	}
}

func TestLookupFallsBackToTierlessKey(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Key{Kind: cluster.ActionMigrate}, Entry{Sessions: 100, Duration: 5 * time.Second})
	e, ok := tbl.Lookup(Key{Kind: cluster.ActionMigrate, Tier: "db"}, 100)
	if !ok || e.Duration != 5*time.Second {
		t.Errorf("fallback lookup = %+v ok=%v", e, ok)
	}
	if _, ok := tbl.Lookup(Key{Kind: cluster.ActionStopHost}, 1); ok {
		t.Error("empty key matched")
	}
}

func TestPaperTableShapes(t *testing.T) {
	tbl := PaperTable()

	// Costs grow with workload for every migration/replica family.
	for _, k := range []Key{
		{cluster.ActionMigrate, "db"}, {cluster.ActionMigrate, "app"}, {cluster.ActionMigrate, "web"},
		{cluster.ActionAddReplica, "db"}, {cluster.ActionRemoveReplica, "db"},
	} {
		es := tbl.Entries(k)
		if len(es) != 8 {
			t.Fatalf("%v: %d entries, want 8 (100..800 sessions)", k, len(es))
		}
		for i := 1; i < len(es); i++ {
			if es[i].Duration < es[i-1].Duration {
				t.Errorf("%v: duration not nondecreasing at %v", k, es[i].Sessions)
			}
			if es[i].DeltaRTTargetSec < es[i-1].DeltaRTTargetSec {
				t.Errorf("%v: delta RT not nondecreasing at %v", k, es[i].Sessions)
			}
			if es[i].DeltaWatts < es[i-1].DeltaWatts {
				t.Errorf("%v: delta watts not nondecreasing at %v", k, es[i].Sessions)
			}
		}
	}

	// Fig. 7 ordering: MySQL migration costlier than Tomcat than Apache.
	for s := 100.0; s <= 800; s += 100 {
		db, _ := tbl.Lookup(Key{cluster.ActionMigrate, "db"}, s)
		ap, _ := tbl.Lookup(Key{cluster.ActionMigrate, "app"}, s)
		web, _ := tbl.Lookup(Key{cluster.ActionMigrate, "web"}, s)
		if !(db.DeltaWatts > ap.DeltaWatts && ap.DeltaWatts > web.DeltaWatts) {
			t.Errorf("watt ordering broken at %v sessions: db=%v app=%v web=%v", s, db.DeltaWatts, ap.DeltaWatts, web.DeltaWatts)
		}
		if !(db.DeltaRTTargetSec > ap.DeltaRTTargetSec && ap.DeltaRTTargetSec > web.DeltaRTTargetSec) {
			t.Errorf("RT ordering broken at %v sessions", s)
		}
	}

	// Host cycling constants from §V-B.
	start, ok := tbl.Lookup(Key{Kind: cluster.ActionStartHost}, 300)
	if !ok || start.Duration != 90*time.Second || start.DeltaWatts != 80 {
		t.Errorf("start-host = %+v, want 90s/80W", start)
	}
	stop, ok := tbl.Lookup(Key{Kind: cluster.ActionStopHost}, 300)
	if !ok || stop.Duration != 30*time.Second || stop.DeltaWatts != 20 {
		t.Errorf("stop-host = %+v, want 30s/20W", stop)
	}
	if start.DeltaRTTargetSec != 0 || stop.DeltaRTTargetSec != 0 {
		t.Error("host cycling should not perturb response times")
	}

	// CPU tuning is the cheapest, fastest action.
	cpu, ok := tbl.Lookup(Key{Kind: cluster.ActionIncreaseCPU}, 400)
	if !ok {
		t.Fatal("no CPU entry")
	}
	mig, _ := tbl.Lookup(Key{cluster.ActionMigrate, "db"}, 400)
	if cpu.Duration >= mig.Duration/10 {
		t.Errorf("CPU tuning duration %v not much cheaper than migration %v", cpu.Duration, mig.Duration)
	}

	// Power deltas within Fig. 7a's 8–17%% of the 160 W baseline.
	for _, k := range tbl.Keys() {
		if k.Kind != cluster.ActionMigrate {
			continue
		}
		for _, e := range tbl.Entries(k) {
			pct := e.DeltaWatts / 160 * 100
			if pct < 7.9 || pct > 17.1 {
				t.Errorf("%v at %v sessions: %.1f%% outside Fig. 7a range", k, e.Sessions, pct)
			}
		}
	}
}

func TestKeyFor(t *testing.T) {
	cat, _ := testCatalog(t)
	k := KeyFor(cat, cluster.Action{Kind: cluster.ActionMigrate, VM: "rubis1-db-0"})
	if k.Tier != "db" {
		t.Errorf("KeyFor migrate = %v, want db tier", k)
	}
	k = KeyFor(cat, cluster.Action{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-db-0"})
	if k.Tier != "" {
		t.Errorf("KeyFor cpu = %v, want tierless", k)
	}
	k = KeyFor(cat, cluster.Action{Kind: cluster.ActionMigrate, VM: "ghost"})
	if k.Tier != "" {
		t.Errorf("KeyFor unknown VM = %v, want tierless fallback", k)
	}
	if s := (Key{Kind: cluster.ActionMigrate, Tier: "db"}).String(); s != "migrate(db)" {
		t.Errorf("Key.String = %q", s)
	}
}

func TestManagerPredict(t *testing.T) {
	cat, apps := testCatalog(t)
	cfg, err := app.DefaultConfig(cat, apps, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(cat, PaperTable(), 8)
	if err != nil {
		t.Fatal(err)
	}

	// Migrate a rubis1 db VM; rubis1 at 50 req/s -> 400 sessions.
	p1, _ := cfg.PlacementOf("rubis1-db-0")
	dst := "h0"
	if p1.Host == "h0" {
		dst = "h1"
	}
	a := cluster.Action{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst, FromHost: p1.Host}
	pred := m.Predict(cfg, a, map[string]float64{"rubis1": 50, "rubis2": 50})
	if pred.Duration <= 0 {
		t.Fatal("no duration predicted")
	}
	if pred.DeltaRTSec["rubis1"] <= 0 {
		t.Error("target app delta RT missing")
	}
	if pred.DeltaWatts <= 0 {
		t.Error("delta watts missing")
	}
	// Any rubis2 VM sharing src/dst hosts suffers the co-located delta.
	shared := false
	for _, h := range []string{p1.Host, dst} {
		for _, id := range cfg.VMsOnHost(h) {
			if vm, _ := cat.VM(id); vm.App == "rubis2" {
				shared = true
			}
		}
	}
	if shared && pred.DeltaRTSec["rubis2"] <= 0 {
		t.Error("co-located app delta RT missing")
	}
	if !shared && pred.DeltaRTSec["rubis2"] != 0 {
		t.Error("unexpected co-located delta")
	}
	if shared && pred.DeltaRTSec["rubis2"] >= pred.DeltaRTSec["rubis1"] {
		t.Error("co-located delta should be below target delta")
	}

	// Costs grow with workload.
	predHi := m.Predict(cfg, a, map[string]float64{"rubis1": 100, "rubis2": 50})
	if predHi.Duration < pred.Duration || predHi.DeltaRTSec["rubis1"] < pred.DeltaRTSec["rubis1"] {
		t.Error("higher workload did not raise predicted cost")
	}

	// Host actions carry no app deltas.
	hostPred := m.Predict(cfg, cluster.Action{Kind: cluster.ActionStartHost, Host: "h3"}, map[string]float64{"rubis1": 50})
	if len(hostPred.DeltaRTSec) != 0 {
		t.Errorf("host action deltas = %v, want none", hostPred.DeltaRTSec)
	}
	if hostPred.Duration != 90*time.Second {
		t.Errorf("host start duration = %v", hostPred.Duration)
	}
}

func TestManagerPredictUnmeasuredAction(t *testing.T) {
	cat, apps := testCatalog(t)
	cfg, err := app.DefaultConfig(cat, apps, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(cat, NewTable(), 8) // empty table
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(cfg, cluster.Action{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: "h0"}, map[string]float64{"rubis1": 50})
	if pred.Duration != 0 || pred.DeltaWatts != 0 || len(pred.DeltaRTSec) != 0 {
		t.Errorf("unmeasured action prediction = %+v, want zero", pred)
	}
}

func TestNewManagerValidation(t *testing.T) {
	cat, _ := testCatalog(t)
	if _, err := NewManager(cat, nil, 8); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewManager(cat, NewTable(), 0); err == nil {
		t.Error("zero session factor accepted")
	}
}

func TestTableKeysDeterministic(t *testing.T) {
	tbl := PaperTable()
	k1 := tbl.Keys()
	k2 := tbl.Keys()
	if fmt.Sprint(k1) != fmt.Sprint(k2) {
		t.Error("Keys not deterministic")
	}
	if len(k1) == 0 {
		t.Error("no keys")
	}
}
