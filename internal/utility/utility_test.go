package utility

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func paperParams(t *testing.T) *Params {
	t.Helper()
	p := PaperParams([]string{"a", "b"})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestPaperRewardPenaltyShape(t *testing.T) {
	// Fig. 3: reward increases 1.0 -> 3.5; penalty rises -3.5 -> -1.0.
	if got := PaperReward(0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("reward(0) = %v, want 1.0", got)
	}
	if got := PaperReward(100); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("reward(100) = %v, want 3.5", got)
	}
	if got := PaperPenalty(0); math.Abs(got+3.5) > 1e-9 {
		t.Errorf("penalty(0) = %v, want -3.5", got)
	}
	if got := PaperPenalty(100); math.Abs(got+1.0) > 1e-9 {
		t.Errorf("penalty(100) = %v, want -1.0", got)
	}
	// Monotone and clamped.
	for w := 0.0; w < 100; w += 5 {
		if PaperReward(w+5) < PaperReward(w) {
			t.Fatalf("reward not increasing at %v", w)
		}
		if PaperPenalty(w+5) < PaperPenalty(w) {
			t.Fatalf("penalty not increasing at %v", w)
		}
		if PaperPenalty(w) >= 0 {
			t.Fatalf("penalty not negative at %v", w)
		}
	}
	if PaperReward(-10) != PaperReward(0) || PaperReward(500) != PaperReward(100) {
		t.Error("reward not clamped")
	}
	if PaperPenalty(-10) != PaperPenalty(0) || PaperPenalty(500) != PaperPenalty(100) {
		t.Error("penalty not clamped")
	}
}

func TestPerfRateEq1(t *testing.T) {
	p := paperParams(t)
	m := p.MonitoringInterval.Seconds()
	// Meeting the target accrues reward/M.
	if got, want := p.PerfRate("a", 50, 0.3), PaperReward(50)/m; math.Abs(got-want) > 1e-12 {
		t.Errorf("meet rate = %v, want %v", got, want)
	}
	// Exactly at target counts as meeting (RT <= TRT).
	if got, want := p.PerfRate("a", 50, 0.4), PaperReward(50)/m; math.Abs(got-want) > 1e-12 {
		t.Errorf("at-target rate = %v, want reward %v", got, want)
	}
	// Missing accrues penalty/M (negative).
	if got, want := p.PerfRate("a", 50, 0.41), PaperPenalty(50)/m; math.Abs(got-want) > 1e-12 {
		t.Errorf("miss rate = %v, want %v", got, want)
	}
	// Unknown app accrues nothing.
	if got := p.PerfRate("ghost", 50, 0.1); got != 0 {
		t.Errorf("unknown app rate = %v, want 0", got)
	}
}

func TestPerfRateAllSums(t *testing.T) {
	p := paperParams(t)
	rates := map[string]float64{"a": 50, "b": 80}
	rts := map[string]float64{"a": 0.2, "b": 0.9}
	got := p.PerfRateAll(rates, rts)
	want := p.PerfRate("a", 50, 0.2) + p.PerfRate("b", 80, 0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PerfRateAll = %v, want %v", got, want)
	}
}

func TestPowerRateEq2(t *testing.T) {
	p := paperParams(t)
	// 100 W at $0.01/W-interval over 120 s -> -$1.00 per interval
	// -> rate -1/120 $/s.
	got := p.PowerRate(100)
	want := -100 * 0.01 / 120
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("PowerRate = %v, want %v", got, want)
	}
	if p.PowerRate(-5) != 0 {
		t.Error("negative watts should clamp to zero")
	}
	if p.PowerRate(100) >= 0 {
		t.Error("power utility must be negative")
	}
}

func TestOverallEq3(t *testing.T) {
	p := paperParams(t)
	rates := map[string]float64{"a": 50, "b": 50}
	goodRT := map[string]float64{"a": 0.2, "b": 0.2}
	badRT := map[string]float64{"a": 2.0, "b": 2.0}
	cw := 10 * time.Minute

	// No actions: pure steady accrual for the whole window.
	steady := p.Overall(rates, nil, 200, goodRT, cw)
	want := cw.Seconds() * p.NetRate(rates, goodRT, 200)
	if math.Abs(steady-want) > 1e-9 {
		t.Errorf("steady overall = %v, want %v", steady, want)
	}

	// One action degrading RT and raising power for 60s.
	phases := []Phase{{Duration: time.Minute, Watts: 260, RTSec: badRT}}
	with := p.Overall(rates, phases, 200, goodRT, cw)
	if with >= steady {
		t.Errorf("adaptation cost did not lower utility: %v >= %v", with, steady)
	}
	wantWith := time.Minute.Seconds()*(p.PowerRate(260)+p.PerfRateAll(rates, badRT)) +
		(cw-time.Minute).Seconds()*p.NetRate(rates, goodRT, 200)
	if math.Abs(with-wantWith) > 1e-9 {
		t.Errorf("overall with action = %v, want %v", with, wantWith)
	}
}

func TestOverallClampsWhenActionsExceedWindow(t *testing.T) {
	p := paperParams(t)
	rates := map[string]float64{"a": 50, "b": 50}
	rt := map[string]float64{"a": 0.2, "b": 0.2}
	phases := []Phase{{Duration: time.Hour, Watts: 300, RTSec: rt}}
	got := p.Overall(rates, phases, 100, rt, time.Minute)
	want := time.Hour.Seconds() * (p.PowerRate(300) + p.PerfRateAll(rates, rt))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("clamped overall = %v, want %v (no steady term)", got, want)
	}
	// Negative phase durations are ignored.
	neg := p.Overall(rates, []Phase{{Duration: -time.Minute, Watts: 300, RTSec: rt}}, 100, rt, time.Minute)
	pure := p.Overall(rates, nil, 100, rt, time.Minute)
	if math.Abs(neg-pure) > 1e-9 {
		t.Errorf("negative-duration phase changed utility: %v vs %v", neg, pure)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"bad interval", func(p *Params) { p.MonitoringInterval = 0 }},
		{"negative cost", func(p *Params) { p.PowerCostPerWattInterval = -1 }},
		{"no apps", func(p *Params) { p.Apps = nil }},
		{"bad target", func(p *Params) { p.Apps["a"] = AppParams{} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := PaperParams([]string{"a"})
			c.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestDefaultsWhenCurvesNil(t *testing.T) {
	p := &Params{
		MonitoringInterval:       2 * time.Minute,
		PowerCostPerWattInterval: 0.01,
		Apps:                     map[string]AppParams{"a": {TargetRT: 400 * time.Millisecond}},
	}
	if got, want := p.PerfRate("a", 40, 0.1), PaperReward(40)/120; math.Abs(got-want) > 1e-12 {
		t.Errorf("nil reward curve: rate = %v, want %v", got, want)
	}
	if got, want := p.PerfRate("a", 40, 1.0), PaperPenalty(40)/120; math.Abs(got-want) > 1e-12 {
		t.Errorf("nil penalty curve: rate = %v, want %v", got, want)
	}
}

// Property: Overall is monotone in response-time quality — meeting targets
// never yields less utility than missing them, all else equal.
func TestOverallMonotoneInRTProperty(t *testing.T) {
	p := paperParams(t)
	prop := func(rate8 uint8, watts16 uint16, cwMin uint8) bool {
		rate := float64(rate8) / 255 * 100
		watts := float64(watts16 % 500)
		cw := time.Duration(cwMin%60+1) * time.Minute
		rates := map[string]float64{"a": rate, "b": rate}
		good := map[string]float64{"a": 0.1, "b": 0.1}
		bad := map[string]float64{"a": 1.0, "b": 1.0}
		return p.Overall(rates, nil, watts, good, cw) >= p.Overall(rates, nil, watts, bad, cw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
