package utility

import (
	"math"
	"testing"
	"time"
)

func TestPenaltyGradientGradesMisses(t *testing.T) {
	p := &Params{
		MonitoringInterval:       2 * time.Minute,
		PowerCostPerWattInterval: 0.01,
		Apps: map[string]AppParams{
			"a": {TargetRT: 400 * time.Millisecond, PenaltyGradient: 1.5},
		},
	}
	m := p.MonitoringInterval.Seconds()
	base := PaperPenalty(50) / m

	// Barely missing: penalty close to the flat value.
	slight := p.PerfRate("a", 50, 0.41)
	if slight >= 0 {
		t.Fatal("miss should be negative")
	}
	if math.Abs(slight-base)/math.Abs(base) > 0.05 {
		t.Errorf("slight miss = %v, want near flat %v", slight, base)
	}

	// Missing badly: the penalty grows with the overshoot.
	bad := p.PerfRate("a", 50, 1.2) // 3x the target -> over = 2
	wantBad := base * (1 + 1.5*2)
	if math.Abs(bad-wantBad) > 1e-12 {
		t.Errorf("bad miss = %v, want %v", bad, wantBad)
	}
	if bad >= slight {
		t.Error("worse RT should accrue a worse penalty")
	}

	// The gradient caps at 3x overshoot.
	awful := p.PerfRate("a", 50, 100)
	wantCap := base * (1 + 1.5*3)
	if math.Abs(awful-wantCap) > 1e-12 {
		t.Errorf("capped miss = %v, want %v", awful, wantCap)
	}

	// Meeting the target is unaffected by the gradient.
	if got, want := p.PerfRate("a", 50, 0.3), PaperReward(50)/m; math.Abs(got-want) > 1e-12 {
		t.Errorf("meet = %v, want %v", got, want)
	}
}

func TestFlatPenaltyWhenGradientZero(t *testing.T) {
	p := PaperParams([]string{"a"})
	m := p.MonitoringInterval.Seconds()
	near := p.PerfRate("a", 50, 0.41)
	far := p.PerfRate("a", 50, 10)
	if near != far {
		t.Errorf("flat Eq. 1 penalty should not grade: %v vs %v", near, far)
	}
	if near != PaperPenalty(50)/m {
		t.Errorf("penalty = %v, want %v", near, PaperPenalty(50)/m)
	}
}
