// Package utility implements the paper's utility model (§II-B): per-
// application performance utility accrual (Eq. 1) with workload-dependent
// rewards and penalties (Fig. 3), power utility (Eq. 2), and the overall
// utility of an adaptation — transient action costs plus steady-state
// accrual over the stability interval (Eq. 3).
//
// All accrual rates are expressed in dollars per second so that durations
// in time.Duration multiply cleanly; cumulative utilities reported by the
// experiments are plain dollar sums, comparable to the paper's Figure 9.
package utility

import (
	"fmt"
	"sort"
	"time"
)

// AppParams defines one application's performance objective: a target mean
// response time and reward/penalty amounts per monitoring period as
// functions of the request rate (allowing arbitrary utility shapes; the
// paper's Fig. 3 instance is PaperReward/PaperPenalty).
type AppParams struct {
	// TargetRT is the response-time objective TRT (400 ms in the paper).
	// A nil RewardAt/PenaltyAt pair defaults to the paper's functions.
	TargetRT time.Duration
	// RewardAt returns the reward (dollars per monitoring period) for
	// meeting the target at the given request rate.
	RewardAt func(rate float64) float64
	// PenaltyAt returns the penalty (negative dollars per monitoring
	// period) for missing the target at the given request rate.
	PenaltyAt func(rate float64) float64
	// PenaltyGradient optionally grades the penalty by how badly the
	// target is missed: the penalty is multiplied by
	// 1 + PenaltyGradient·min((RT−TRT)/TRT, 3). The paper's Eq. 1 is flat
	// (gradient 0); controllers may plan with a graded penalty so that a
	// hopeless window still prefers less-degraded service over shedding
	// capacity for power ("you're failing anyway, save power" is rational
	// under a flat penalty but operationally absurd).
	PenaltyGradient float64
}

// PaperReward reproduces Figure 3's reward curve: increasing with request
// rate from $1.0 to $3.5 per monitoring period over 0–100 req/s.
func PaperReward(rate float64) float64 {
	if rate < 0 {
		rate = 0
	}
	if rate > 100 {
		rate = 100
	}
	return 1.0 + 2.5*rate/100
}

// PaperPenalty reproduces Figure 3's penalty curve: rising (shrinking in
// magnitude) from −$3.5 to −$1.0 per monitoring period over 0–100 req/s,
// reflecting the increasingly best-effort nature of service under load.
func PaperPenalty(rate float64) float64 {
	if rate < 0 {
		rate = 0
	}
	if rate > 100 {
		rate = 100
	}
	return -(3.5 - 2.5*rate/100)
}

// Params carries the full utility model configuration.
type Params struct {
	// MonitoringInterval is M, the application-defined monitoring window
	// over which rewards/penalties accrue once (2 minutes in the paper).
	MonitoringInterval time.Duration
	// PowerCostPerWattInterval is the dollar cost of one watt drawn for one
	// monitoring interval ($0.01 in the paper).
	PowerCostPerWattInterval float64
	// Apps maps application name to its performance objective.
	Apps map[string]AppParams
}

// PaperParams returns the evaluation settings of §V-A for the given
// applications: M = 2 min, $0.01 per watt-interval, 400 ms targets with the
// Fig. 3 reward/penalty curves.
func PaperParams(appNames []string) *Params {
	p := &Params{
		MonitoringInterval:       2 * time.Minute,
		PowerCostPerWattInterval: 0.01,
		Apps:                     make(map[string]AppParams, len(appNames)),
	}
	for _, name := range appNames {
		p.Apps[name] = AppParams{
			TargetRT:  400 * time.Millisecond,
			RewardAt:  PaperReward,
			PenaltyAt: PaperPenalty,
		}
	}
	return p
}

// Validate checks the parameters are usable.
func (p *Params) Validate() error {
	if p.MonitoringInterval <= 0 {
		return fmt.Errorf("utility: non-positive monitoring interval")
	}
	if p.PowerCostPerWattInterval < 0 {
		return fmt.Errorf("utility: negative power cost")
	}
	if len(p.Apps) == 0 {
		return fmt.Errorf("utility: no applications")
	}
	for name, a := range p.Apps {
		if a.TargetRT <= 0 {
			return fmt.Errorf("utility: app %q has non-positive target RT", name)
		}
	}
	return nil
}

// reward and penalty fall back to the paper's curves when unset.
func (a AppParams) reward(rate float64) float64 {
	if a.RewardAt == nil {
		return PaperReward(rate)
	}
	return a.RewardAt(rate)
}

func (a AppParams) penalty(rate float64) float64 {
	if a.PenaltyAt == nil {
		return PaperPenalty(rate)
	}
	return a.PenaltyAt(rate)
}

// PerfRate implements Eq. 1: the utility accrual rate (dollars/second) of
// one application given its request rate and mean response time. Unknown
// applications accrue nothing.
func (p *Params) PerfRate(appName string, rate, rtSec float64) float64 {
	a, ok := p.Apps[appName]
	if !ok {
		return 0
	}
	m := p.MonitoringInterval.Seconds()
	target := a.TargetRT.Seconds()
	if rtSec <= target {
		return a.reward(rate) / m
	}
	pen := a.penalty(rate)
	if a.PenaltyGradient > 0 && target > 0 {
		over := (rtSec - target) / target
		if over > 3 {
			over = 3
		}
		pen *= 1 + a.PenaltyGradient*over
	}
	return pen / m
}

// PerfRateAll sums Eq. 1 across all applications given per-app rates and
// response times. Applications are visited in sorted name order: the sum is
// a floating-point fold, and map iteration order would make its last bits
// differ from run to run, breaking bit-exact replay determinism.
func (p *Params) PerfRateAll(rates, rtSec map[string]float64) float64 {
	names := make([]string, 0, len(p.Apps))
	for name := range p.Apps {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum float64
	for _, name := range names {
		sum += p.PerfRate(name, rates[name], rtSec[name])
	}
	return sum
}

// PowerRate implements Eq. 2: the (negative) utility accrual rate in
// dollars/second of drawing the given watts.
func (p *Params) PowerRate(watts float64) float64 {
	if watts < 0 {
		watts = 0
	}
	return -watts * p.PowerCostPerWattInterval / p.MonitoringInterval.Seconds()
}

// NetRate is the combined steady-state accrual rate of a system state:
// performance utility plus power utility, dollars/second.
func (p *Params) NetRate(rates, rtSec map[string]float64, watts float64) float64 {
	return p.PerfRateAll(rates, rtSec) + p.PowerRate(watts)
}

// Phase describes the system during the execution of one adaptation action:
// its duration, the mean power draw, and per-application mean response
// times while the action runs (the transient costs of §III-C).
type Phase struct {
	Duration time.Duration
	Watts    float64
	RTSec    map[string]float64
}

// Overall implements Eq. 3: the utility accrued between two controller
// invocations. The actions run first (each charged at its transient rates),
// and the resulting configuration's steady-state rates accrue for the
// remainder of the stability interval cw. If the actions exceed cw, the
// steady-state term is zero (the adaptation never pays off within the
// window).
func (p *Params) Overall(rates map[string]float64, phases []Phase, steadyWatts float64, steadyRT map[string]float64, cw time.Duration) float64 {
	var total float64
	var spent time.Duration
	for _, ph := range phases {
		d := ph.Duration
		if d < 0 {
			d = 0
		}
		total += d.Seconds() * (p.PowerRate(ph.Watts) + p.PerfRateAll(rates, ph.RTSec))
		spent += d
	}
	remaining := cw - spent
	if remaining > 0 {
		total += remaining.Seconds() * p.NetRate(rates, steadyRT, steadyWatts)
	}
	return total
}
