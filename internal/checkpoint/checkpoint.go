// Package checkpoint is the on-disk envelope around a scenario engine
// snapshot: the engine state itself plus the construction recipe (lab
// options, strategy, fault profile) a fresh process needs to rebuild an
// identical environment before restoring into it. mistral-sim's
// -checkpoint/-resume flags and mistral-serve's /checkpoint endpoints both
// speak this format, so a batch run can be resumed by the daemon and vice
// versa.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// Schema identifies the envelope format; Read refuses any other value.
const Schema = "mistral.checkpoint-file/v1"

// File is a complete checkpoint: the recipe to rebuild the environment and
// the engine snapshot to restore into it. The recipe fields record exactly
// what the writing process was built from — a reader reconstructs the lab,
// strategy, and fault plane from them rather than trusting its own flags.
type File struct {
	Schema   string `json:"schema"`
	Strategy string `json:"strategy"`
	Workers  int    `json:"workers"`
	// Lab holds the options as given to experiments.NewLab (pre-default):
	// rebuilding applies the same defaulting the original construction did.
	Lab       experiments.LabOptions `json:"lab"`
	FaultRate float64                `json:"fault_rate,omitempty"`
	FaultSeed uint64                 `json:"fault_seed,omitempty"`
	// ExecPolicy records the testbed execution policy ("fail-forward" when
	// empty, for checkpoints written before the field existed).
	ExecPolicy string `json:"exec_policy,omitempty"`
	// Guard records whether the admission guard was enabled; the engine
	// snapshot carries its state when true.
	Guard    bool               `json:"guard,omitempty"`
	Scenario *scenario.Snapshot `json:"scenario"`
}

// Write atomically persists the checkpoint: the JSON lands in a temp file
// in the target directory and renames over path, so a crash mid-write
// never leaves a truncated checkpoint where a good one stood.
func Write(path string, f *File) error {
	if f.Schema == "" {
		f.Schema = Schema
	}
	raw, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Read loads and validates a checkpoint file.
func Read(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(raw)
}

// Decode parses a checkpoint from its JSON bytes.
func Decode(raw []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("checkpoint: unsupported schema %q (want %q)", f.Schema, Schema)
	}
	if f.Scenario == nil {
		return nil, fmt.Errorf("checkpoint: no engine snapshot")
	}
	return &f, nil
}
