// Package guard is the admission layer between the controller's Decide and
// the testbed's Execute: a set of safety invariants every proposed plan
// must satisfy before it touches the cluster, plus a circuit breaker that
// freezes adaptation entirely after a run of degraded windows. The paper's
// premise is that adaptation has real costs (§IV); the guard's premise is
// that a misbehaving controller — or a controller planning against a stale
// view after a crash — must not be allowed to spend them.
//
// A nil *Guard is a valid disabled guard: every Admit allows, every
// ObserveWindow is a no-op, and no state is kept, so callers thread it
// unconditionally exactly like a nil fault.Injector or obs.Observer.
package guard

import (
	"fmt"
	"sync"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
)

// Config tunes the admission invariants and the circuit breaker. The zero
// value of each field selects the documented default; negative values
// disable the corresponding rule.
type Config struct {
	// MaxMigrationsPerWindow caps live migrations (LAN + WAN) a single
	// plan may schedule (default 4; negative for unlimited). Each copy
	// saturates Dom-0 shares on two hosts, so a plan of many back-to-back
	// moves is a self-inflicted SLO violation.
	MaxMigrationsPerWindow int
	// PowerCycleCooldown is the minimum virtual time between power-state
	// changes of the same host (default 10m; negative for none). Rapid
	// on/off cycling burns the ~305 s boot transient for nothing and is
	// the classic oscillation failure of threshold controllers.
	PowerCycleCooldown time.Duration
	// MinReplicas is the floor of active replicas every required tier
	// must keep after the plan lands (default 1; negative for none).
	MinReplicas int
	// BreakerThreshold is K, the number of consecutive degraded windows
	// that opens the breaker (default 4; negative to disable the breaker).
	BreakerThreshold int
	// BreakerCooldown is how many windows the breaker stays open before
	// admitting a single probe plan half-open (default 8).
	BreakerCooldown int
	// Obs overrides the process-default observer for guard metrics.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.MaxMigrationsPerWindow == 0 {
		c.MaxMigrationsPerWindow = 4
	}
	if c.PowerCycleCooldown == 0 {
		c.PowerCycleCooldown = 10 * time.Minute
	}
	if c.MinReplicas == 0 {
		c.MinReplicas = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 8
	}
	return c
}

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: adaptation flows normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every plan is rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe plan is admitted; a clean window closes
	// the breaker, another degraded window re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

func breakerFromString(s string) (BreakerState, error) {
	switch s {
	case "closed":
		return BreakerClosed, nil
	case "open":
		return BreakerOpen, nil
	case "half-open":
		return BreakerHalfOpen, nil
	}
	return 0, fmt.Errorf("guard: unknown breaker state %q", s)
}

// Verdict is the outcome of one admission check.
type Verdict struct {
	Allowed bool
	// Rule names the invariant that rejected the plan ("" when allowed):
	// "invalid-plan", "target-invalid", "migration-cap",
	// "power-cycle-cooldown", "min-replica-floor", "breaker-open".
	Rule string
	// Reason is the human-readable explanation.
	Reason string
	// Breaker is the breaker state at decision time.
	Breaker BreakerState
}

// Guard holds the admission state. The control loop drives it
// single-threaded; the mutex keeps Snapshot and metric reads clean if
// taken concurrently.
type Guard struct {
	mu  sync.Mutex
	cfg Config
	cat *cluster.Catalog

	breaker      BreakerState
	consecDegr   int // consecutive degraded windows while closed
	cooldownLeft int // open windows remaining before half-open
	// lastCycle records the most recent power-state change per host so
	// the cooldown rule has a clock to compare against. A guard starts
	// with no history: the first cycle of each host is always admitted.
	lastCycle map[string]time.Duration
	opens     int64 // times the breaker tripped open
	admitted  int64
	rejected  int64

	cAdmitted *obs.Counter
	cRejected *obs.Counter
	cByRule   map[string]*obs.Counter
	cOpens    *obs.Counter
	gBreaker  *obs.Gauge
	obsv      *obs.Observer
}

// New builds a guard over the given catalog. The catalog is needed to
// validate target configurations and resolve required tiers.
func New(cfg Config, cat *cluster.Catalog) *Guard {
	cfg = cfg.withDefaults()
	g := &Guard{
		cfg:       cfg,
		cat:       cat,
		lastCycle: make(map[string]time.Duration),
	}
	o := obs.Resolve(cfg.Obs)
	g.obsv = o
	g.cAdmitted = o.Counter("guard_admitted_total")
	g.cRejected = o.Counter("guard_rejected_total")
	g.cOpens = o.Counter("guard_breaker_open_total")
	g.gBreaker = o.Gauge("guard_breaker_state")
	if g.cRejected != nil {
		g.cByRule = make(map[string]*obs.Counter)
	}
	return g
}

// Enabled reports whether the guard is active; false for nil.
func (g *Guard) Enabled() bool { return g != nil }

// Breaker returns the current breaker state (BreakerClosed for nil).
func (g *Guard) Breaker() BreakerState {
	if g == nil {
		return BreakerClosed
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.breaker
}

// Stats reports lifetime admission counts and breaker trips.
func (g *Guard) Stats() (admitted, rejected, opens int64) {
	if g == nil {
		return 0, 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted, g.rejected, g.opens
}

// Admit checks a proposed plan against every invariant and, when the plan
// passes, commits its power-cycle history so the cooldown rule sees it.
// cfg must be the configuration the plan will execute against (the
// testbed's scheduled final configuration); now is the virtual time of the
// admission. A nil guard admits everything.
func (g *Guard) Admit(now time.Duration, cfg cluster.Config, plan []cluster.Action) Verdict {
	if g == nil {
		return Verdict{Allowed: true}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.admitLocked(now, cfg, plan)
	if v.Allowed {
		g.admitted++
		g.cAdmitted.Inc()
	} else {
		g.rejected++
		g.cRejected.Inc()
		if g.cByRule != nil {
			c := g.cByRule[v.Rule]
			if c == nil {
				c = g.obsv.Counter("guard_rejected_" + ruleSlug(v.Rule) + "_total")
				g.cByRule[v.Rule] = c
			}
			c.Inc()
		}
	}
	return v
}

func ruleSlug(rule string) string {
	b := []byte(rule)
	for i, c := range b {
		if c == '-' {
			b[i] = '_'
		}
	}
	return string(b)
}

func (g *Guard) admitLocked(now time.Duration, cfg cluster.Config, plan []cluster.Action) Verdict {
	v := Verdict{Breaker: g.breaker}
	if g.breaker == BreakerOpen {
		v.Rule = "breaker-open"
		v.Reason = fmt.Sprintf("circuit breaker open for %d more window(s) after %d consecutive degraded windows", g.cooldownLeft, g.cfg.BreakerThreshold)
		return v
	}
	// Target validity: the plan must stage cleanly from the current
	// configuration and the configuration it lands on must satisfy every
	// allocation constraint. This catches plans computed against a stale
	// view — e.g. a decision already in flight when a host crashed.
	final, filled, err := cluster.ApplyAll(g.cat, cfg, plan)
	if err != nil {
		v.Rule = "invalid-plan"
		v.Reason = err.Error()
		return v
	}
	if vs := final.Validate(g.cat); len(vs) > 0 {
		v.Rule = "target-invalid"
		v.Reason = fmt.Sprintf("target config violates %d constraint(s): %v", len(vs), vs[0])
		return v
	}
	if g.cfg.MaxMigrationsPerWindow >= 0 {
		migs := 0
		for _, a := range filled {
			if a.Kind == cluster.ActionMigrate || a.Kind == cluster.ActionWANMigrate {
				migs++
			}
		}
		if migs > g.cfg.MaxMigrationsPerWindow {
			v.Rule = "migration-cap"
			v.Reason = fmt.Sprintf("plan schedules %d migrations, cap is %d per window", migs, g.cfg.MaxMigrationsPerWindow)
			return v
		}
	}
	var cycles []string
	if g.cfg.PowerCycleCooldown > 0 {
		for _, a := range filled {
			if a.Kind != cluster.ActionStartHost && a.Kind != cluster.ActionStopHost {
				continue
			}
			if last, ok := g.lastCycle[a.Host]; ok && now-last < g.cfg.PowerCycleCooldown {
				v.Rule = "power-cycle-cooldown"
				v.Reason = fmt.Sprintf("host %s power-cycled %v ago, cooldown is %v", a.Host, now-last, g.cfg.PowerCycleCooldown)
				return v
			}
			cycles = append(cycles, a.Host)
		}
	}
	if g.cfg.MinReplicas > 0 {
		for _, k := range g.cat.Tiers() {
			if !g.cat.TierRequired(k) {
				continue
			}
			if n := len(final.ActiveReplicas(g.cat, k)); n < g.cfg.MinReplicas {
				v.Rule = "min-replica-floor"
				v.Reason = fmt.Sprintf("tier %s/%s would keep %d active replica(s), floor is %d", k.App, k.Tier, n, g.cfg.MinReplicas)
				return v
			}
		}
	}
	// Admitted: commit the power-cycle history now — the caller executes
	// the plan immediately after a positive verdict.
	for _, h := range cycles {
		g.lastCycle[h] = now
	}
	v.Allowed = true
	return v
}

// ObserveWindow feeds one finished monitoring window's health into the
// circuit breaker. Call it exactly once per window, after degraded status
// is known.
func (g *Guard) ObserveWindow(degraded bool) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.breaker {
	case BreakerClosed:
		if g.cfg.BreakerThreshold <= 0 {
			return
		}
		if degraded {
			g.consecDegr++
			if g.consecDegr >= g.cfg.BreakerThreshold {
				g.openLocked()
			}
		} else {
			g.consecDegr = 0
		}
	case BreakerOpen:
		g.cooldownLeft--
		if g.cooldownLeft <= 0 {
			g.breaker = BreakerHalfOpen
			g.publishBreaker()
		}
	case BreakerHalfOpen:
		if degraded {
			g.openLocked()
		} else {
			g.breaker = BreakerClosed
			g.consecDegr = 0
			g.publishBreaker()
		}
	}
}

func (g *Guard) openLocked() {
	g.breaker = BreakerOpen
	g.cooldownLeft = g.cfg.BreakerCooldown
	g.consecDegr = 0
	g.opens++
	g.cOpens.Inc()
	g.publishBreaker()
}

func (g *Guard) publishBreaker() { g.gBreaker.Set(float64(g.breaker)) }

// State is the guard's mutable state in serializable form, for the
// scenario checkpoint plane.
type State struct {
	Breaker      string           `json:"breaker"`
	ConsecDegr   int              `json:"consec_degraded,omitempty"`
	CooldownLeft int              `json:"cooldown_left,omitempty"`
	LastCycleNS  map[string]int64 `json:"last_cycle_ns,omitempty"`
	Opens        int64            `json:"opens,omitempty"`
	Admitted     int64            `json:"admitted,omitempty"`
	Rejected     int64            `json:"rejected,omitempty"`
}

// Snapshot captures the guard's mutable state.
func (g *Guard) Snapshot() *State {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := &State{
		Breaker:      g.breaker.String(),
		ConsecDegr:   g.consecDegr,
		CooldownLeft: g.cooldownLeft,
		Opens:        g.opens,
		Admitted:     g.admitted,
		Rejected:     g.rejected,
	}
	if len(g.lastCycle) > 0 {
		s.LastCycleNS = make(map[string]int64, len(g.lastCycle))
		for h, t := range g.lastCycle {
			s.LastCycleNS[h] = int64(t)
		}
	}
	return s
}

// Restore overwrites the guard's mutable state with a captured one. The
// guard must have been built with the same Config as the one that
// produced the snapshot.
func (g *Guard) Restore(s *State) error {
	if g == nil {
		return fmt.Errorf("guard: restore into a nil guard")
	}
	if s == nil {
		return fmt.Errorf("guard: nil snapshot")
	}
	b, err := breakerFromString(s.Breaker)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.breaker = b
	g.consecDegr = s.ConsecDegr
	g.cooldownLeft = s.CooldownLeft
	g.opens = s.Opens
	g.admitted = s.Admitted
	g.rejected = s.Rejected
	g.lastCycle = make(map[string]time.Duration, len(s.LastCycleNS))
	for h, ns := range s.LastCycleNS {
		g.lastCycle[h] = time.Duration(ns)
	}
	g.publishBreaker()
	return nil
}
