package guard

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
)

func setup(t *testing.T, nHosts int, appNames ...string) (*cluster.Catalog, cluster.Config) {
	t.Helper()
	apps := make([]*app.Spec, len(appNames))
	for i, n := range appNames {
		apps[i] = app.RUBiS(n)
	}
	hosts := make([]cluster.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec("h" + string(rune('0'+i)))
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, min(nHosts, 2*len(apps)), 40)
	if err != nil {
		t.Fatal(err)
	}
	return cat, cfg
}

func feasibleDst(t *testing.T, cat *cluster.Catalog, cfg cluster.Config, vm cluster.VMID) string {
	t.Helper()
	p, ok := cfg.PlacementOf(vm)
	if !ok {
		t.Fatalf("VM %s not placed", vm)
	}
	for _, h := range cfg.ActiveHosts() {
		if h == p.Host {
			continue
		}
		spec, _ := cat.Host(h)
		if cfg.AllocatedCPU(h)+p.CPUPct <= spec.UsableCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs {
			return h
		}
	}
	t.Fatal("no feasible destination host")
	return ""
}

func TestNilGuardAdmitsEverything(t *testing.T) {
	var g *Guard
	v := g.Admit(0, cluster.Config{}, []cluster.Action{{Kind: cluster.ActionStartHost, Host: "h9"}})
	if !v.Allowed {
		t.Fatalf("nil guard rejected: %+v", v)
	}
	g.ObserveWindow(true) // must not panic
	if g.Enabled() {
		t.Error("nil guard reports enabled")
	}
	if g.Snapshot() != nil {
		t.Error("nil guard snapshot not nil")
	}
}

func TestAdmitValidPlan(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1")
	g := New(Config{}, cat)
	dst := feasibleDst(t, cat, cfg, "rubis1-db-0")
	v := g.Admit(0, cfg, []cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst}})
	if !v.Allowed {
		t.Fatalf("valid plan rejected: %+v", v)
	}
	if adm, rej, _ := g.Stats(); adm != 1 || rej != 0 {
		t.Errorf("stats = %d admitted, %d rejected", adm, rej)
	}
}

func TestRejectInvalidPlan(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1")
	g := New(Config{}, cat)
	v := g.Admit(0, cfg, []cluster.Action{{Kind: cluster.ActionMigrate, VM: "no-such-vm", Host: "h0"}})
	if v.Allowed || v.Rule != "invalid-plan" {
		t.Fatalf("verdict = %+v, want invalid-plan rejection", v)
	}
}

func TestRejectMigrationCap(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1", "rubis2")
	g := New(Config{MaxMigrationsPerWindow: 1}, cat)
	var plan []cluster.Action
	for _, vm := range []cluster.VMID{"rubis1-db-0", "rubis2-db-0"} {
		plan = append(plan, cluster.Action{Kind: cluster.ActionMigrate, VM: vm, Host: feasibleDst(t, cat, cfg, vm)})
	}
	v := g.Admit(0, cfg, plan)
	if v.Allowed || v.Rule != "migration-cap" {
		t.Fatalf("verdict = %+v, want migration-cap rejection", v)
	}
	// Unlimited cap admits the same plan.
	gu := New(Config{MaxMigrationsPerWindow: -1}, cat)
	if v := gu.Admit(0, cfg, plan); !v.Allowed {
		t.Fatalf("unlimited cap rejected: %+v", v)
	}
}

func TestRejectPowerCycleCooldown(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1")
	g := New(Config{PowerCycleCooldown: 10 * time.Minute}, cat)
	off := ""
	for _, h := range cat.HostNames() {
		if !cfg.HostOn(h) {
			off = h
			break
		}
	}
	if off == "" {
		t.Fatal("no powered-off host")
	}
	start := []cluster.Action{{Kind: cluster.ActionStartHost, Host: off}}
	if v := g.Admit(0, cfg, start); !v.Allowed {
		t.Fatalf("first cycle rejected: %+v", v)
	}
	after, _, err := cluster.ApplyAll(cat, cfg, start)
	if err != nil {
		t.Fatal(err)
	}
	stop := []cluster.Action{{Kind: cluster.ActionStopHost, Host: off}}
	if v := g.Admit(5*time.Minute, after, stop); v.Allowed || v.Rule != "power-cycle-cooldown" {
		t.Fatalf("verdict = %+v, want power-cycle-cooldown rejection", v)
	}
	if v := g.Admit(15*time.Minute, after, stop); !v.Allowed {
		t.Fatalf("post-cooldown cycle rejected: %+v", v)
	}
}

func TestRejectMinReplicaFloor(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1")
	g := New(Config{MinReplicas: 1}, cat)
	// Find a required tier with exactly one active replica and try to
	// remove it; ApplyAll stages it... Stage itself rejects removing the
	// last required replica, so this lands as invalid-plan. Use a 2-replica
	// tier and a floor of 2 instead to exercise the guard's own rule.
	var vm cluster.VMID
	for _, k := range cat.Tiers() {
		if !cat.TierRequired(k) {
			continue
		}
		reps := cfg.ActiveReplicas(cat, k)
		if len(reps) == 2 {
			vm = reps[1]
			break
		}
	}
	if vm == "" {
		t.Skip("no 2-replica required tier in this fixture")
	}
	g2 := New(Config{MinReplicas: 2}, cat)
	v := g2.Admit(0, cfg, []cluster.Action{{Kind: cluster.ActionRemoveReplica, VM: vm}})
	if v.Allowed || v.Rule != "min-replica-floor" {
		t.Fatalf("verdict = %+v, want min-replica-floor rejection", v)
	}
	if v := g.Admit(0, cfg, []cluster.Action{{Kind: cluster.ActionRemoveReplica, VM: vm}}); !v.Allowed {
		t.Fatalf("floor-1 removal rejected: %+v", v)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1")
	g := New(Config{BreakerThreshold: 3, BreakerCooldown: 2}, cat)
	plan := []cluster.Action{{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: feasibleDst(t, cat, cfg, "rubis1-db-0")}}

	// Two degraded windows: still closed (threshold 3).
	g.ObserveWindow(true)
	g.ObserveWindow(true)
	if g.Breaker() != BreakerClosed {
		t.Fatalf("breaker = %v after 2 degraded, want closed", g.Breaker())
	}
	// A clean window resets the run.
	g.ObserveWindow(false)
	g.ObserveWindow(true)
	g.ObserveWindow(true)
	if g.Breaker() != BreakerClosed {
		t.Fatalf("breaker = %v, want closed (run was reset)", g.Breaker())
	}
	// Third consecutive degraded window trips it open.
	g.ObserveWindow(true)
	if g.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v after threshold, want open", g.Breaker())
	}
	if v := g.Admit(0, cfg, plan); v.Allowed || v.Rule != "breaker-open" {
		t.Fatalf("verdict = %+v, want breaker-open rejection", v)
	}
	// Cooldown of 2 windows, then half-open.
	g.ObserveWindow(true)
	if g.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v mid-cooldown, want open", g.Breaker())
	}
	g.ObserveWindow(true)
	if g.Breaker() != BreakerHalfOpen {
		t.Fatalf("breaker = %v after cooldown, want half-open", g.Breaker())
	}
	// Half-open admits a probe.
	if v := g.Admit(0, cfg, plan); !v.Allowed {
		t.Fatalf("half-open probe rejected: %+v", v)
	}
	// A degraded probe window re-opens; a clean one closes.
	g.ObserveWindow(true)
	if g.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v after degraded probe, want open", g.Breaker())
	}
	g.ObserveWindow(false)
	g.ObserveWindow(false)
	if g.Breaker() != BreakerHalfOpen {
		t.Fatalf("breaker = %v after second cooldown, want half-open", g.Breaker())
	}
	g.ObserveWindow(false)
	if g.Breaker() != BreakerClosed {
		t.Fatalf("breaker = %v after clean probe, want closed", g.Breaker())
	}
	if _, _, opens := g.Stats(); opens != 2 {
		t.Errorf("opens = %d, want 2", opens)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cat, cfg := setup(t, 4, "rubis1")
	g := New(Config{BreakerThreshold: 2, BreakerCooldown: 3}, cat)
	off := ""
	for _, h := range cat.HostNames() {
		if !cfg.HostOn(h) {
			off = h
			break
		}
	}
	g.Admit(7*time.Minute, cfg, []cluster.Action{{Kind: cluster.ActionStartHost, Host: off}})
	g.ObserveWindow(true)
	g.ObserveWindow(true) // trips open
	s := g.Snapshot()

	// Round-trip through JSON, as the checkpoint plane does.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 State
	if err := json.Unmarshal(raw, &s2); err != nil {
		t.Fatal(err)
	}
	g2 := New(Config{BreakerThreshold: 2, BreakerCooldown: 3}, cat)
	if err := g2.Restore(&s2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Snapshot(), g2.Snapshot()) {
		t.Fatalf("snapshot mismatch:\n%+v\n%+v", g.Snapshot(), g2.Snapshot())
	}
	if g2.Breaker() != BreakerOpen {
		t.Errorf("restored breaker = %v, want open", g2.Breaker())
	}
	// The power-cycle history survives: an immediate re-cycle is rejected
	// once the breaker closes again.
	for i := 0; i < 3; i++ {
		g2.ObserveWindow(false)
	}
	g2.ObserveWindow(false) // half-open -> closed
	v := g2.Admit(12*time.Minute, cfg, []cluster.Action{{Kind: cluster.ActionStartHost, Host: off}})
	if v.Allowed || v.Rule != "power-cycle-cooldown" {
		t.Fatalf("verdict = %+v, want power-cycle-cooldown from restored history", v)
	}

	if err := g2.Restore(&State{Breaker: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown breaker state") {
		t.Errorf("bogus breaker restore err = %v", err)
	}
}
