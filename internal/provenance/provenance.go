// Package provenance is the decision flight recorder: a per-window record
// of *why* the controller chose an action sequence, capturing the Eq. 3
// utility decomposition of the chosen plan and of the rejected frontier
// heads, a bounded digest of the A* search tree (expanded vertices with
// their f/g/h values, pruning and termination events with their reasons),
// and the prediction context (workload band, measured vs. predicted
// stability interval, ARMA state).
//
// The package follows the same zero-dependency, nil-safe discipline as
// internal/obs: a nil *Recorder is a valid disabled recorder whose methods
// return immediately, so instrumented paths pay only a nil check when
// provenance is off — the default — and replays are byte-identical to an
// uninstrumented build. Records serialize as deterministic JSONL (struct
// fields in declaration order, map-free schema), so a fixed-seed replay
// produces byte-identical record streams at every Workers setting.
package provenance

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// SchemaV1 identifies the record format; every Record carries it so a
// stream is self-describing and mistral-explain can reject foreign files.
const SchemaV1 = "mistral.provenance/v1"

// Tolerance is the maximum absolute error allowed between a ledger's
// recomputed sums and the search's reported utility (the --check bound).
const Tolerance = 1e-9

// Termination reasons for a search digest, mirroring every return path of
// the A* search.
const (
	// TermNoChange: the ideal configuration equals the current one; no
	// search ran.
	TermNoChange = "no-change"
	// TermGoal: a finished vertex was popped first — the plan is optimal
	// under the shaped heuristic.
	TermGoal = "goal-popped"
	// TermEpsilon: the frontier's optimism decayed to within the epsilon
	// margin of the best complete plan.
	TermEpsilon = "epsilon"
	// TermDeadline: the Self-Aware decision deadline (2x the delay budget)
	// committed to the best complete plan.
	TermDeadline = "self-aware-deadline"
	// TermMaxExpansions: the expansion cap was hit (best-so-far returned).
	TermMaxExpansions = "max-expansions"
	// TermMaxSearchTime: the simulated search-time deadline was hit.
	TermMaxSearchTime = "max-search-time"
	// TermExhausted: the open set drained without a finished vertex.
	TermExhausted = "frontier-exhausted"
)

// Event kinds and width-prune reasons.
const (
	// EventWidthPrune: Self-Aware width restriction dropped children.
	EventWidthPrune = "width-prune"
	// ReasonUtilityBudget: the search's cost (power + forgone utility)
	// reached the expected utility UH of the coming window.
	ReasonUtilityBudget = "expected-utility-budget"
	// ReasonDelayThreshold: the search ran past its delay threshold T-bar.
	ReasonDelayThreshold = "delay-threshold"
)

// terminations is the closed set Validate accepts.
var terminations = map[string]bool{
	TermNoChange:      true,
	TermGoal:          true,
	TermEpsilon:       true,
	TermDeadline:      true,
	TermMaxExpansions: true,
	TermMaxSearchTime: true,
	TermExhausted:     true,
}

// Record is one monitoring window's provenance: what the strategy decided,
// why, and what the window realized. One Record is written per window,
// including windows where the testbed was busy executing a previous plan
// (Busy) and windows that absorbed a failure (Degraded, with the reason).
type Record struct {
	Schema   string  `json:"schema"`
	Window   int     `json:"window"` // 0-based window index within one replay
	TimeSec  float64 `json:"t_sec"`  // window end, seconds of virtual time
	Strategy string  `json:"strategy"`
	// Invoked reports whether the strategy's decision procedure ran.
	Invoked bool `json:"invoked"`
	// Busy marks a window skipped because a previous plan was executing.
	Busy bool `json:"busy,omitempty"`
	// Degraded marks a window that absorbed a failure; DegradedReason says
	// which (decide error, strategy fallback, failed action, host crash,
	// sensor drop), semicolon-joined when several struck.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Actions counts adaptation actions started this window.
	Actions int `json:"actions,omitempty"`
	// SearchTimeSec / SearchCostDollars are the decision procedure's
	// simulated duration and self-cost charged to this window.
	SearchTimeSec     float64 `json:"search_time_sec,omitempty"`
	SearchCostDollars float64 `json:"search_cost_dollars,omitempty"`
	// UtilityDollars is the window's accrued utility (decision cost
	// included); CumUtilityDollars the running total; Watts the measured
	// mean power.
	UtilityDollars    float64 `json:"utility_dollars"`
	CumUtilityDollars float64 `json:"cum_utility_dollars"`
	Watts             float64 `json:"watts"`
	// Decisions carries one entry per controller invocation this window
	// (the Mistral hierarchy can invoke several 1st-level controllers in
	// one control opportunity, in controller order).
	Decisions []*DecisionProv `json:"decisions,omitempty"`
	// Guard carries the admission verdict for the window's proposed plan.
	// Only populated when an admission guard is attached, so unguarded
	// runs stay byte-identical to pre-guard recordings.
	Guard *GuardProv `json:"guard,omitempty"`
	// Steps carries the window's per-step execution outcomes (main plan
	// and retries, in execution order). Only populated when the run opts
	// into step provenance (scenario.RunConfig.StepProvenance), so
	// existing recordings stay byte-identical.
	Steps []StepProv `json:"steps,omitempty"`
}

// GuardProv is the admission guard's verdict on the window's plan.
type GuardProv struct {
	Allowed bool `json:"allowed"`
	// Rule names the invariant that rejected the plan ("" when allowed);
	// Reason is its human-readable explanation.
	Rule   string `json:"rule,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Breaker is the circuit breaker's state at decision time
	// ("closed", "open", "half-open").
	Breaker string `json:"breaker"`
}

// StepProv is one executed (or skipped) plan step's realized outcome — the
// flight-recorder view of testbed.StepReport.
type StepProv struct {
	Action string `json:"action"`
	// Status is the step outcome: "applied", "failed", "skipped",
	// "rolled-back".
	Status string `json:"status"`
	// PlannedSec is the cost-table duration; RealizedSec the time actually
	// consumed on the timeline.
	PlannedSec  float64 `json:"planned_sec,omitempty"`
	RealizedSec float64 `json:"realized_sec,omitempty"`
	// Retry marks a re-execution of a previously failed action (with its
	// attempt number); Retryable marks a failure the retry queue may yet
	// complete.
	Retry     int  `json:"retry,omitempty"`
	Retryable bool `json:"retryable,omitempty"`
	Err       string `json:"err,omitempty"`
}

// DecisionProv is one controller invocation's provenance.
type DecisionProv struct {
	Controller string `json:"controller"`
	// Degraded marks a controller that fell back to no adaptation;
	// DegradedReason names the failing stage and error.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Predict is the prediction context the control window came from.
	Predict *PredictProv `json:"predict,omitempty"`
	// Search is the bounded search-tree digest with the utility ledgers.
	Search *SearchDigest `json:"search,omitempty"`
}

// PredictProv is the prediction context of one decision: the workload band
// the controller tracks, the just-measured stability interval against the
// ARMA prediction, the control window actually used (after floors), and
// the estimator's internal state.
type PredictProv struct {
	// BandWidth is the controller's workload band width in req/s (0 means
	// invoke on every monitoring interval).
	BandWidth float64 `json:"band_width"`
	// MeasuredSec is the just-completed stability interval; PredictedSec
	// the raw ARMA prediction for the next one; CWSec the control window
	// after the MinCW/CrisisCW floors.
	MeasuredSec  float64 `json:"measured_interval_sec"`
	PredictedSec float64 `json:"predicted_interval_sec"`
	CWSec        float64 `json:"cw_sec"`
	// Floor names the floor that raised the prediction to CWSec:
	// "min-cw", "crisis-cw", or empty when the raw prediction was used.
	Floor string `json:"floor,omitempty"`
	// Beta is the ARMA mixing weight used for the current prediction;
	// ARMAMeasured / ARMAErrors are the estimator's bounded histories
	// (newest last, seconds).
	Beta         float64   `json:"arma_beta"`
	ARMAMeasured []float64 `json:"arma_measured,omitempty"`
	ARMAErrors   []float64 `json:"arma_errors,omitempty"`
}

// SearchDigest is the bounded flight-recorder view of one A* search: the
// chosen plan's utility ledger, the top rejected frontier alternatives,
// every expanded vertex (up to a cap) with its f/g/h values, and every
// pruning/termination event with its reason.
type SearchDigest struct {
	// Termination names the return path that ended the search (one of the
	// Term* constants).
	Termination string `json:"termination"`
	// Utility is Eq. 3 for the chosen plan over the control window
	// (decision self-cost excluded, as in SearchResult.Utility).
	Utility           float64 `json:"utility"`
	SearchTimeSec     float64 `json:"search_time_sec"`
	SearchCostDollars float64 `json:"search_cost_dollars"`
	Expanded          int     `json:"expanded"`
	Generated         int     `json:"generated"`
	PrunedChildren    int     `json:"pruned_children,omitempty"`
	PeakFrontier      int     `json:"peak_frontier"`
	RootDistance      float64 `json:"root_distance"`
	Truncated         bool    `json:"truncated,omitempty"`
	// Chosen is the Eq. 3 decomposition of the winning plan; its sums must
	// match Utility within Tolerance (enforced by Validate).
	Chosen PlanLedger `json:"chosen"`
	// Rejected holds the best frontier alternatives still open when the
	// search committed, best first (bounded; the head is the plan the
	// search would have explored next).
	Rejected []Alternative `json:"rejected,omitempty"`
	// Vertices digests the expansion order (bounded; DroppedVertices
	// counts the tail that fell past the cap).
	Vertices        []VertexProv `json:"vertices,omitempty"`
	DroppedVertices int          `json:"dropped_vertices,omitempty"`
	// Events are pruning/deadline/truncation incidents in expansion order
	// (bounded; DroppedEvents counts past-cap incidents).
	Events        []EventProv `json:"events,omitempty"`
	DroppedEvents int         `json:"dropped_events,omitempty"`
}

// PlanLedger is the Eq. 3 utility decomposition of one action sequence:
// per-action transient costs, then the steady-state accrual of the final
// configuration over the rest of the control window.
type PlanLedger struct {
	Actions []ActionProv `json:"actions,omitempty"`
	// TransientDollars is the sum of the per-action costs (utility accrued
	// while executing, usually negative); PlanDurationSec the total
	// execution time.
	TransientDollars float64 `json:"transient_dollars"`
	PlanDurationSec  float64 `json:"plan_duration_sec"`
	// SteadyPerfRate / SteadyPwrRate are the final configuration's Eq. 1
	// and Eq. 2 accrual rates ($/s); SteadyDollars their sum times
	// SteadySec, the window time left after the plan.
	SteadyPerfRate float64 `json:"steady_perf_rate"`
	SteadyPwrRate  float64 `json:"steady_pwr_rate"`
	SteadySec      float64 `json:"steady_sec"`
	SteadyDollars  float64 `json:"steady_dollars"`
	// Utility = TransientDollars + SteadyDollars.
	Utility float64 `json:"utility"`
	// Error records a ledger replay failure (the plan could not be
	// re-evaluated); consistency checks skip errored ledgers.
	Error string `json:"error,omitempty"`
}

// ActionProv is one action's transient evaluation.
type ActionProv struct {
	Action            string  `json:"action"`
	DurationSec       float64 `json:"duration_sec"`
	RateDollarsPerSec float64 `json:"rate_dollars_per_sec"`
	// CostDollars = DurationSec * RateDollarsPerSec.
	CostDollars float64 `json:"cost_dollars"`
}

// Alternative is a rejected frontier vertex: the plan prefix the search
// left unexplored when it committed, with its A* bookkeeping (F is the
// shaped priority, G the utility accrued by the prefix, H = F − G the
// optimistic remainder) and the Eq. 3 ledger of stopping at the prefix.
type Alternative struct {
	Depth    int     `json:"depth"`
	F        float64 `json:"f"`
	G        float64 `json:"g"`
	H        float64 `json:"h"`
	Distance float64 `json:"distance"` // weighted distance to the ideal config
	// Complete marks a finished candidate (a full plan the search could
	// have returned) rather than an intermediate.
	Complete bool       `json:"complete,omitempty"`
	Ledger   PlanLedger `json:"ledger"`
}

// VertexProv is one expanded vertex in pop order.
type VertexProv struct {
	Seq      int     `json:"seq"` // 1-based expansion index
	Depth    int     `json:"depth"`
	F        float64 `json:"f"`
	G        float64 `json:"g"`
	H        float64 `json:"h"`
	Distance float64 `json:"distance"`
	Frontier int     `json:"frontier"` // open-set size after the pop
}

// EventProv is one pruning/termination incident.
type EventProv struct {
	Expansion  int     `json:"expansion"` // expansion index when it fired
	Kind       string  `json:"kind"`
	Reason     string  `json:"reason,omitempty"`
	Dropped    int     `json:"dropped,omitempty"` // children discarded
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
}

// Recorder serializes records as JSONL. All methods are safe for
// concurrent use; a nil *Recorder is a valid disabled recorder. The first
// write error is sticky: later appends return it without writing.
type Recorder struct {
	mu  sync.Mutex
	w   io.Writer
	n   int
	err error
}

// NewRecorder builds a recorder over w.
func NewRecorder(w io.Writer) *Recorder { return &Recorder{w: w} }

// Enabled reports whether the recorder captures anything; instrumented
// paths gate their record construction on it.
func (r *Recorder) Enabled() bool { return r != nil }

// Append serializes one record as a JSON line. The record's Schema is
// stamped if empty. A nil recorder or record is a no-op.
func (r *Recorder) Append(rec *Record) error {
	if r == nil || rec == nil {
		return nil
	}
	if rec.Schema == "" {
		rec.Schema = SchemaV1
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	if _, err := r.w.Write(append(b, '\n')); err != nil {
		r.err = fmt.Errorf("provenance: %w", err)
		return r.err
	}
	r.n++
	return nil
}

// Count returns how many records were appended.
func (r *Recorder) Count() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// ReadAll decodes a JSONL record stream, skipping blank lines. Errors name
// the offending line.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	return out, nil
}

// close reports whether two ledger sums agree within Tolerance.
func close2(a, b float64) bool { return math.Abs(a-b) <= Tolerance }

// validateLedger checks a ledger's internal arithmetic. want is the
// externally reported utility the ledger must reproduce; pass NaN to skip
// that comparison (alternatives have no external figure for their prefix).
func validateLedger(where string, l *PlanLedger, want float64) error {
	if l.Error != "" {
		return nil // replay failed; nothing to cross-check
	}
	var sum, dur float64
	for i, a := range l.Actions {
		if !close2(a.DurationSec*a.RateDollarsPerSec, a.CostDollars) {
			return fmt.Errorf("%s: action %d (%s): cost %v != duration %v * rate %v",
				where, i, a.Action, a.CostDollars, a.DurationSec, a.RateDollarsPerSec)
		}
		sum += a.CostDollars
		dur += a.DurationSec
	}
	if !close2(sum, l.TransientDollars) {
		return fmt.Errorf("%s: action costs sum to %v, ledger says transient %v", where, sum, l.TransientDollars)
	}
	if !close2(dur, l.PlanDurationSec) {
		return fmt.Errorf("%s: action durations sum to %vs, ledger says %vs", where, dur, l.PlanDurationSec)
	}
	if !close2((l.SteadyPerfRate+l.SteadyPwrRate)*l.SteadySec, l.SteadyDollars) {
		return fmt.Errorf("%s: steady dollars %v != (%v+%v)*%vs", where, l.SteadyDollars, l.SteadyPerfRate, l.SteadyPwrRate, l.SteadySec)
	}
	if !close2(l.TransientDollars+l.SteadyDollars, l.Utility) {
		return fmt.Errorf("%s: ledger utility %v != transient %v + steady %v", where, l.Utility, l.TransientDollars, l.SteadyDollars)
	}
	if !math.IsNaN(want) && !close2(l.Utility, want) {
		return fmt.Errorf("%s: ledger utility %v != reported utility %v (|diff| %g > %g)",
			where, l.Utility, want, math.Abs(l.Utility-want), Tolerance)
	}
	return nil
}

// Validate checks one record's schema and internal consistency: the chosen
// ledger's sums must reproduce the search's reported utility within
// Tolerance, every alternative's ledger must be internally consistent, and
// termination/event fields must come from the known vocabulary.
func (r *Record) Validate() error {
	if r.Schema != SchemaV1 {
		return fmt.Errorf("window %d: schema %q, want %q", r.Window, r.Schema, SchemaV1)
	}
	if r.Window < 0 {
		return fmt.Errorf("negative window index %d", r.Window)
	}
	for i, d := range r.Decisions {
		where := fmt.Sprintf("window %d decision %d (%s)", r.Window, i, d.Controller)
		if d.Degraded {
			if d.DegradedReason == "" {
				return fmt.Errorf("%s: degraded without a reason", where)
			}
			continue // degraded decisions carry no search digest to check
		}
		sd := d.Search
		if sd == nil {
			continue
		}
		if !terminations[sd.Termination] {
			return fmt.Errorf("%s: unknown termination %q", where, sd.Termination)
		}
		if err := validateLedger(where+" chosen", &sd.Chosen, sd.Utility); err != nil {
			return err
		}
		for j := range sd.Rejected {
			alt := &sd.Rejected[j]
			if !close2(alt.F-alt.G, alt.H) {
				return fmt.Errorf("%s rejected %d: f %v - g %v != h %v", where, j, alt.F, alt.G, alt.H)
			}
			if err := validateLedger(fmt.Sprintf("%s rejected %d", where, j), &alt.Ledger, math.NaN()); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckStream validates a whole record stream: per-record Validate plus
// window sequencing (indices increase by one within a replay segment and
// may reset to zero when a new replay starts, as mistral-exp's multi-run
// experiments do).
func CheckStream(recs []Record) error {
	for i := range recs {
		r := &recs[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		if i > 0 {
			prev := recs[i-1].Window
			if r.Window != prev+1 && r.Window != 0 {
				return fmt.Errorf("record %d: window %d does not follow %d (want %d or 0)",
					i, r.Window, prev, prev+1)
			}
		}
	}
	return nil
}
