package provenance

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleRecord builds a fully populated Record exercising every schema
// field, with arithmetic that passes Validate.
func sampleRecord() *Record {
	chosen := PlanLedger{
		Actions: []ActionProv{
			{Action: "migrate vm-a h0 -> h1", DurationSec: 45, RateDollarsPerSec: -0.002, CostDollars: 45 * -0.002},
			{Action: "stop-host h0", DurationSec: 30, RateDollarsPerSec: -0.001, CostDollars: 30 * -0.001},
		},
		PlanDurationSec: 75,
		SteadyPerfRate:  0.004,
		SteadyPwrRate:   -0.0015,
		SteadySec:       405,
	}
	chosen.TransientDollars = chosen.Actions[0].CostDollars + chosen.Actions[1].CostDollars
	chosen.SteadyDollars = (chosen.SteadyPerfRate + chosen.SteadyPwrRate) * chosen.SteadySec
	chosen.Utility = chosen.TransientDollars + chosen.SteadyDollars

	altLedger := PlanLedger{
		Actions: []ActionProv{
			{Action: "increase-cpu vm-b +10%", DurationSec: 1, RateDollarsPerSec: 0.001, CostDollars: 0.001},
		},
		TransientDollars: 0.001,
		PlanDurationSec:  1,
		SteadyPerfRate:   0.003,
		SteadyPwrRate:    -0.002,
		SteadySec:        479,
	}
	altLedger.SteadyDollars = (altLedger.SteadyPerfRate + altLedger.SteadyPwrRate) * altLedger.SteadySec
	altLedger.Utility = altLedger.TransientDollars + altLedger.SteadyDollars

	return &Record{
		Schema:            SchemaV1,
		Window:            7,
		TimeSec:           960,
		Strategy:          "Mistral",
		Invoked:           true,
		Actions:           2,
		SearchTimeSec:     0.012,
		SearchCostDollars: 2.5e-7,
		UtilityDollars:    0.91,
		CumUtilityDollars: 6.4,
		Watts:             512,
		Decisions: []*DecisionProv{{
			Controller: "Mistral/L2",
			Predict: &PredictProv{
				BandWidth:    8,
				MeasuredSec:  240,
				PredictedSec: 310,
				CWSec:        480,
				Floor:        "min-cw",
				Beta:         0.25,
				ARMAMeasured: []float64{120, 240},
				ARMAErrors:   []float64{30, 10},
			},
			Search: &SearchDigest{
				Termination:       TermEpsilon,
				Utility:           chosen.Utility,
				SearchTimeSec:     0.012,
				SearchCostDollars: 2.5e-7,
				Expanded:          41,
				Generated:         180,
				PrunedChildren:    60,
				PeakFrontier:      25,
				RootDistance:      3.5,
				Chosen:            chosen,
				Rejected: []Alternative{{
					Depth:    1,
					F:        altLedger.Utility + 0.05,
					G:        altLedger.TransientDollars,
					H:        altLedger.Utility + 0.05 - altLedger.TransientDollars,
					Distance: 2.5,
					Ledger:   altLedger,
				}},
				Vertices: []VertexProv{
					{Seq: 1, Depth: 0, F: 1.2, G: 0, H: 1.2, Distance: 3.5, Frontier: 0},
					{Seq: 2, Depth: 1, F: 1.1, G: -0.05, H: 1.15, Distance: 2.5, Frontier: 9},
				},
				DroppedVertices: 39,
				Events: []EventProv{
					{Expansion: 12, Kind: EventWidthPrune, Reason: ReasonDelayThreshold, Dropped: 11, ElapsedSec: 0.006},
				},
			},
		}},
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if err := r.Append(sampleRecord()); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if r.Count() != 0 || r.Err() != nil {
		t.Error("nil recorder has state")
	}
}

func TestRecorderAppendAndReadAll(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	rec := sampleRecord()
	rec.Schema = "" // Append must stamp it
	if err := r.Append(rec); err != nil {
		t.Fatal(err)
	}
	empty := &Record{Window: 8, TimeSec: 1080, Strategy: "Mistral", Busy: true}
	if err := r.Append(empty); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d, want 2", r.Count())
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("output has %d newlines, want 2 (one JSON object per line)", got)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ReadAll = %d records", len(recs))
	}
	if recs[0].Schema != SchemaV1 {
		t.Errorf("schema not stamped: %q", recs[0].Schema)
	}
	if !recs[1].Busy || recs[1].Window != 8 {
		t.Errorf("round-trip lost fields: %+v", recs[1])
	}
	if err := CheckStream(recs); err != nil {
		t.Errorf("CheckStream: %v", err)
	}
}

// TestRecorderDeterministicBytes guards the determinism contract: the same
// record serializes to the same bytes every time.
func TestRecorderDeterministicBytes(t *testing.T) {
	serialize := func() string {
		var buf bytes.Buffer
		r := NewRecorder(&buf)
		if err := r.Append(sampleRecord()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := serialize(), serialize()
	if a != b {
		t.Fatalf("serialization is not deterministic:\n%s\nvs\n%s", a, b)
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestRecorderStickyError(t *testing.T) {
	r := NewRecorder(&failingWriter{})
	if err := r.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(sampleRecord()); err == nil {
		t.Fatal("want write error")
	}
	if r.Err() == nil {
		t.Error("error not sticky")
	}
	if err := r.Append(sampleRecord()); err == nil {
		t.Error("append after error must keep failing")
	}
	if r.Count() != 1 {
		t.Errorf("Count = %d, want 1", r.Count())
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Record)
	}{
		{"bad schema", func(r *Record) { r.Schema = "bogus/v0" }},
		{"ledger sum mismatch", func(r *Record) { r.Decisions[0].Search.Chosen.TransientDollars += 1e-6 }},
		{"utility mismatch", func(r *Record) { r.Decisions[0].Search.Utility += 1e-6 }},
		{"action cost mismatch", func(r *Record) { r.Decisions[0].Search.Chosen.Actions[0].CostDollars += 1e-6 }},
		{"steady mismatch", func(r *Record) { r.Decisions[0].Search.Chosen.SteadyDollars += 1e-6 }},
		{"unknown termination", func(r *Record) { r.Decisions[0].Search.Termination = "gave-up" }},
		{"fgh mismatch", func(r *Record) { r.Decisions[0].Search.Rejected[0].H += 1e-6 }},
		{"degraded without reason", func(r *Record) { r.Decisions[0].Degraded = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := sampleRecord()
			if err := rec.Validate(); err != nil {
				t.Fatalf("sample record must validate before corruption: %v", err)
			}
			tc.break_(rec)
			if err := rec.Validate(); err == nil {
				t.Error("corrupted record validated")
			}
		})
	}
}

func TestValidateToleratesFloatNoise(t *testing.T) {
	rec := sampleRecord()
	rec.Decisions[0].Search.Utility += 1e-12 // below Tolerance
	if err := rec.Validate(); err != nil {
		t.Errorf("sub-tolerance noise rejected: %v", err)
	}
}

func TestValidateSkipsErroredLedgers(t *testing.T) {
	rec := sampleRecord()
	rec.Decisions[0].Search.Chosen.Error = "replay failed"
	rec.Decisions[0].Search.Chosen.TransientDollars = math.Inf(1) // would fail checks
	rec.Decisions[0].Search.Chosen.Utility = 0
	if err := rec.Validate(); err != nil {
		t.Errorf("errored ledger must be skipped: %v", err)
	}
}

func TestCheckStreamSequencing(t *testing.T) {
	mk := func(w int) Record { return Record{Schema: SchemaV1, Window: w} }
	if err := CheckStream([]Record{mk(0), mk(1), mk(2), mk(0), mk(1)}); err != nil {
		t.Errorf("segment reset rejected: %v", err)
	}
	if err := CheckStream([]Record{mk(0), mk(2)}); err == nil {
		t.Error("gap accepted")
	}
}

// TestGoldenRecordSchema pins the JSONL wire format: any schema change
// must be deliberate (run with -update and bump SchemaV1 if the change is
// incompatible).
func TestGoldenRecordSchema(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	if err := r.Append(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(&Record{Window: 8, TimeSec: 1080, Strategy: "Mistral", Busy: true}); err != nil {
		t.Fatal(err)
	}
	degraded := &Record{
		Window: 9, TimeSec: 1200, Strategy: "Mistral", Invoked: true,
		Degraded: true, DegradedReason: "decide: perfpwr: no feasible packing",
		Decisions: []*DecisionProv{{
			Controller: "Mistral/L2", Degraded: true,
			DegradedReason: "perfpwr: no feasible packing",
		}},
	}
	if err := r.Append(degraded); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "record_v1.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/provenance -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("record serialization diverged from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	recs, err := ReadAll(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStream(recs); err != nil {
		t.Errorf("golden stream fails its own check: %v", err)
	}
}
