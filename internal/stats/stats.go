// Package stats provides small statistical helpers shared by the simulators,
// models, and experiment harness: streaming moments, time-weighted averages,
// percentiles, and error metrics.
package stats

import (
	"math"
	"sort"
	"time"
)

// Welford accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or zero when empty.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or zero for fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset discards all observations.
func (w *Welford) Reset() { *w = Welford{} }

// TimeWeighted accumulates a time-weighted average of a piecewise-constant
// signal, e.g. the number of jobs in a queue or instantaneous watts. Call
// Set every time the signal changes; the value in effect between two Set
// calls is weighted by the elapsed virtual time.
type TimeWeighted struct {
	started  bool
	lastAt   time.Duration
	lastVal  float64
	weighted float64
	elapsed  time.Duration
}

// Set records that the signal takes value v from time at onward.
func (t *TimeWeighted) Set(at time.Duration, v float64) {
	if t.started && at > t.lastAt {
		dt := at - t.lastAt
		t.weighted += t.lastVal * dt.Seconds()
		t.elapsed += dt
	}
	if !t.started || at >= t.lastAt {
		t.lastAt = at
		t.lastVal = v
		t.started = true
	}
}

// Mean returns the time-weighted mean up to (and including) the instant
// flushed by the most recent Set call, or up to now if provided via Flush.
func (t *TimeWeighted) Mean() float64 {
	if t.elapsed <= 0 {
		return t.lastVal
	}
	return t.weighted / t.elapsed.Seconds()
}

// Flush extends the accumulation to time at without changing the value.
func (t *TimeWeighted) Flush(at time.Duration) { t.Set(at, t.lastVal) }

// Last returns the most recently set value.
func (t *TimeWeighted) Last() float64 { return t.lastVal }

// Reset restarts the accumulator at time at with value v.
func (t *TimeWeighted) Reset(at time.Duration, v float64) {
	*t = TimeWeighted{}
	t.Set(at, v)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns zero for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or zero when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanAbsPctError returns the mean absolute percentage error of predictions
// vs actuals, in percent. Pairs whose actual value is zero are skipped. The
// slices must have equal length.
func MeanAbsPctError(actual, predicted []float64) float64 {
	if len(actual) != len(predicted) {
		panic("stats: MeanAbsPctError length mismatch")
	}
	var sum float64
	var n int
	for i, a := range actual {
		if a == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-a) / math.Abs(a)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// NormMeanAbsError returns the mean absolute error normalized by the mean
// magnitude of the actual series, in percent. Unlike MeanAbsPctError it is
// not dominated by near-zero actual values. It returns zero when the actual
// series has zero mean magnitude.
func NormMeanAbsError(actual, predicted []float64) float64 {
	if len(actual) != len(predicted) {
		panic("stats: NormMeanAbsError length mismatch")
	}
	var errSum, magSum float64
	for i, a := range actual {
		errSum += math.Abs(predicted[i] - a)
		magSum += math.Abs(a)
	}
	if magSum == 0 {
		return 0
	}
	return 100 * errSum / magSum
}

// RMSE returns the root-mean-square error between two equal-length series.
func RMSE(actual, predicted []float64) float64 {
	if len(actual) != len(predicted) {
		panic("stats: RMSE length mismatch")
	}
	if len(actual) == 0 {
		return 0
	}
	var sum float64
	for i := range actual {
		d := predicted[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(actual)))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
