package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Count() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	w.Reset()
	if w.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return w.Mean() == 0
		}
		naive := sum / float64(len(xs))
		return math.Abs(w.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 10)
	tw.Set(2*time.Second, 20) // 10 held for 2s
	tw.Set(4*time.Second, 0)  // 20 held for 2s
	if got := tw.Mean(); math.Abs(got-15) > 1e-9 {
		t.Errorf("Mean = %v, want 15", got)
	}
	tw.Flush(8 * time.Second) // 0 held for 4s -> mean (20+40)/8 = 7.5
	if got := tw.Mean(); math.Abs(got-7.5) > 1e-9 {
		t.Errorf("Mean after flush = %v, want 7.5", got)
	}
	if tw.Last() != 0 {
		t.Errorf("Last = %v, want 0", tw.Last())
	}
}

func TestTimeWeightedBeforeAnyElapsed(t *testing.T) {
	var tw TimeWeighted
	tw.Set(5*time.Second, 42)
	if tw.Mean() != 42 {
		t.Errorf("Mean with no elapsed time = %v, want last value 42", tw.Mean())
	}
}

func TestTimeWeightedIgnoresPastSets(t *testing.T) {
	var tw TimeWeighted
	tw.Set(10*time.Second, 1)
	tw.Set(5*time.Second, 99) // in the past: ignored
	tw.Flush(20 * time.Second)
	if got := tw.Mean(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Mean = %v, want 1 (past set ignored)", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 100)
	tw.Flush(10 * time.Second)
	tw.Reset(10*time.Second, 5)
	tw.Flush(20 * time.Second)
	if got := tw.Mean(); math.Abs(got-5) > 1e-9 {
		t.Errorf("Mean after reset = %v, want 5", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-9 {
		t.Errorf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	actual := []float64{100, 200, 0}
	pred := []float64{110, 180, 5}
	// zero actual skipped; errors are 10% and 10% -> 10%.
	if got := MeanAbsPctError(actual, pred); math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if MeanAbsPctError([]float64{0}, []float64{1}) != 0 {
		t.Error("MAPE with all-zero actuals should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MeanAbsPctError([]float64{1}, []float64{1, 2})
}

func TestRMSE(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Error("RMSE of empty should be 0")
	}
	got := RMSE([]float64{0, 0}, []float64{3, 4})
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestQuantileSortedProperty(t *testing.T) {
	prop := func(xs []float64, q float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if math.IsNaN(q) {
			return true
		}
		qq := math.Mod(math.Abs(q), 1)
		got := Quantile(xs, qq)
		if len(xs) == 0 {
			return got == 0
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
