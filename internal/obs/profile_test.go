package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestProfilerBreachWritesHeapAndArmsCPU walks the arming protocol: a
// budget breach writes a heap profile immediately and schedules a CPU
// profile bracketing the next decide, with trace IDs in the file names.
func TestProfilerBreachWritesHeapAndArmsCPU(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(dir, 10*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.BeginDecide(0) // nothing armed yet
	if got := p.EndDecide(0, time.Millisecond); len(got) != 0 {
		t.Fatalf("under-budget decide wrote %v", got)
	}

	p.BeginDecide(1)
	wrote := p.EndDecide(1, 50*time.Millisecond) // breach: heap now, CPU armed
	if len(wrote) != 1 || filepath.Base(wrote[0]) != "heap_w000001.pprof" {
		t.Fatalf("breach wrote %v", wrote)
	}

	p.BeginDecide(2) // armed: CPU profile brackets this decide
	wrote = p.EndDecide(2, time.Millisecond)
	if len(wrote) != 1 || filepath.Base(wrote[0]) != "cpu_w000002.pprof" {
		t.Fatalf("armed decide wrote %v", wrote)
	}

	arts := p.Artifacts()
	if len(arts) != 2 {
		t.Fatalf("artifacts %v", arts)
	}
	for _, a := range arts {
		if !strings.HasPrefix(a, dir) {
			t.Fatalf("artifact %s escaped %s", a, dir)
		}
	}
}

// TestProfilerArtifactCap proves a persistently slow run stops writing
// at the cap instead of filling the disk.
func TestProfilerArtifactCap(t *testing.T) {
	p, err := NewProfiler(t.TempDir(), time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for w := 0; w < 10; w++ {
		p.BeginDecide(w)
		p.EndDecide(w, time.Second) // every decide breaches
	}
	if got := len(p.Artifacts()); got != 2 {
		t.Fatalf("wrote %d artifacts past cap 2", got)
	}
}

// TestProfilerConfig pins the constructor's validation and nil safety.
func TestProfilerConfig(t *testing.T) {
	if _, err := NewProfiler("", time.Second, 1); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := NewProfiler(t.TempDir(), 0, 1); err == nil {
		t.Fatal("zero budget accepted")
	}
	var p *Profiler
	p.BeginDecide(0)
	if p.EndDecide(0, time.Hour) != nil || p.Artifacts() != nil || p.Budget() != 0 {
		t.Fatal("nil profiler not inert")
	}
	p.Close()
}
