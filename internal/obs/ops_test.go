package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestOpsStateFold feeds windows through the state and checks the
// aggregates, the slowest-window leaderboard ordering and cap, and the
// snapshot's copy semantics.
func TestOpsStateFold(t *testing.T) {
	s := NewOpsState()
	s.BeginRun("Mistral", 2*time.Minute)
	for i := 0; i < DefaultSlowWindows+5; i++ {
		s.RecordWindow(OpsWindow{
			Window:     i,
			Trace:      TraceID(i),
			TimeSec:    float64(i) * 120,
			CumUtility: float64(i),
			Degraded:   i == 3,
			Error:      i == 3,
			Retries:    i % 2,
			Crashes:    btoi(i == 7),
			WallMS:     float64(100 - i), // strictly decreasing: window 0 slowest
		})
	}
	snap := s.Snapshot()
	if snap.Schema != OpsSchema || snap.Strategy != "Mistral" || snap.IntervalSec != 120 {
		t.Fatalf("header %+v", snap)
	}
	if snap.Windows != DefaultSlowWindows+5 || snap.Window != DefaultSlowWindows+4 {
		t.Fatalf("windows %d current %d", snap.Windows, snap.Window)
	}
	if snap.DegradedWindows != 1 || snap.DecideErrors != 1 || snap.HostCrashes != 1 {
		t.Fatalf("aggregates %+v", snap)
	}
	if len(snap.SlowestWindows) != DefaultSlowWindows {
		t.Fatalf("leaderboard len %d", len(snap.SlowestWindows))
	}
	for i, sw := range snap.SlowestWindows {
		if sw.Window != i { // wall decreases with index, so slowest-first = index order
			t.Fatalf("leaderboard[%d] = window %d", i, sw.Window)
		}
	}
	if snap.UpdatedUnixMS == 0 {
		t.Fatal("snapshot missing update stamp")
	}

	// Mutating the returned slice must not reach the live state.
	snap.SlowestWindows[0].Window = -99
	if s.Snapshot().SlowestWindows[0].Window == -99 {
		t.Fatal("snapshot shares leaderboard backing array with state")
	}

	// BeginRun resets per-run aggregates (experiment grids reuse one state).
	s.BeginRun("Naive", time.Minute)
	if got := s.Snapshot(); got.Windows != 0 || got.Strategy != "Naive" || len(got.SlowestWindows) != 0 {
		t.Fatalf("BeginRun did not reset: %+v", got)
	}
}

// TestInsertSlowWindowMatchesSort proves the O(topN) leaderboard insertion
// reproduces the old sort-per-window implementation exactly: same
// descending order, same stable tie-breaking (first arrival wins), same
// truncation — checked after every single insertion, not just at the end.
func TestInsertSlowWindowMatchesSort(t *testing.T) {
	const topN = 5
	// Plenty of duplicates so ties exercise the stable ordering.
	walls := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6, 4, 3}
	var fast, ref []SlowWindow
	for i, wall := range walls {
		sw := SlowWindow{Window: i, Trace: TraceID(i), WallMS: wall}
		fast = insertSlowWindow(fast, sw, topN)
		ref = append(ref, sw)
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].WallMS > ref[b].WallMS })
		if len(ref) > topN {
			ref = ref[:topN]
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("after window %d:\nfast %+v\nref  %+v", i, fast, ref)
		}
	}
	if len(fast) != topN {
		t.Fatalf("leaderboard length %d, want %d", len(fast), topN)
	}
	// topN <= 0 disables the leaderboard outright.
	if got := insertSlowWindow(nil, SlowWindow{WallMS: 1}, 0); got != nil {
		t.Fatalf("topN=0 retained %+v", got)
	}
}

// TestOpsNilSafe proves the nil state is fully inert and its handler
// still serves the empty document, so /ops can always be mounted.
func TestOpsNilSafe(t *testing.T) {
	var s *OpsState
	s.BeginRun("x", time.Minute)
	s.RecordWindow(OpsWindow{Window: 1})
	s.SetSLO([]byte(`{}`))
	if snap := s.Snapshot(); snap.Schema != OpsSchema || snap.Window != -1 {
		t.Fatalf("nil snapshot %+v", snap)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/ops", nil))
	var doc OpsSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil || doc.Schema != OpsSchema {
		t.Fatalf("nil handler served %q (err %v)", rr.Body.String(), err)
	}
	var o *Observer
	if o.OpsState() != nil {
		t.Fatal("nil observer returned ops state")
	}
}

// TestOpsSLOAttachment checks the raw SLO document rides the snapshot.
func TestOpsSLOAttachment(t *testing.T) {
	s := NewOpsState()
	s.SetSLO(json.RawMessage(`{"schema":"mistral.slo/v1"}`))
	if got := string(s.Snapshot().SLO); got != `{"schema":"mistral.slo/v1"}` {
		t.Fatalf("slo %q", got)
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
