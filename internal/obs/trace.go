package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Format selects the tracer's on-disk encoding.
type Format int

const (
	// FormatJSONL streams one JSON span record per line as each span
	// ends. Crash-safe and greppable; the primary format.
	FormatJSONL Format = iota
	// FormatChrome buffers events and writes a single Chrome
	// trace_event JSON object on Close, loadable in Perfetto
	// (ui.perfetto.dev) or chrome://tracing. Timestamps are virtual
	// (simulation-clock) microseconds; each span's wall-clock duration
	// rides along in args.
	FormatChrome
)

// Attr is one key/value span attribute.
type Attr struct {
	Key   string
	Value any
}

// spanRecord is the JSONL encoding of one completed span. Virtual
// (simulation-clock) start/end are microseconds; WallUS is how long the
// instrumented code ran on the wall clock.
type spanRecord struct {
	Name     string         `json:"name"`
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	VStartUS int64          `json:"v_start_us"`
	VEndUS   int64          `json:"v_end_us"`
	WallUS   int64          `json:"wall_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// chromeEvent is one trace_event record ("X" = complete event). The tid
// encodes span depth so sibling spans that overlap on the virtual clock
// (parallel 1st-level searches, plans running while the search is
// charged) render on separate tracks; args carry the true parent id.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer writes hierarchical spans keyed to both the simulation clock
// (Start/End take virtual timestamps) and the wall clock (the tracer
// measures how long the instrumented code really ran). Parentage is
// implicit: a span started while another is open becomes its child, so
// single-threaded control loops need no context threading. A mutex
// guards the stack for safety, but interleaving Start/End across
// goroutines scrambles parentage — use one tracer per logical timeline.
//
// A nil *Tracer is a valid disabled tracer: Start returns a nil *Span
// and every method returns immediately.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	format Format
	nextID uint64
	stack  []uint64
	events []chromeEvent
	spans  int
	err    error
}

// NewTracer builds a tracer over w. For FormatChrome the document is
// buffered and written by Close; FormatJSONL streams as spans end. The
// tracer never closes w.
func NewTracer(w io.Writer, format Format) *Tracer {
	return &Tracer{w: w, format: format}
}

// Span is one open span; End completes it. A nil *Span is a valid
// disabled span.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	depth  int
	name   string
	vstart time.Duration
	wstart time.Time
	attrs  []Attr
}

// Start opens a span at virtual time vnow, parented to the innermost
// open span.
func (t *Tracer) Start(name string, vnow time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	var parent uint64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.stack = append(t.stack, id)
	depth := len(t.stack)
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: parent, depth: depth, name: name, vstart: vnow, wstart: time.Now(), attrs: attrs}
}

// End completes the span at virtual time vend, merging any extra
// attributes, and pops it (plus any descendants leaked open) off the
// tracer's stack.
func (s *Span) End(vend time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	wall := time.Since(s.wstart)
	t := s.tr
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s.id {
			t.stack = t.stack[:i]
			break
		}
	}
	all := s.attrs
	if len(attrs) > 0 {
		all = append(append([]Attr(nil), s.attrs...), attrs...)
	}
	t.emitLocked(s.name, s.id, s.parent, s.depth, s.vstart, vend, wall, all)
	t.mu.Unlock()
}

// Event records an already-completed span — both virtual endpoints
// known up front, e.g. a scheduled testbed phase — parented to the
// innermost open span, without opening anything.
func (t *Tracer) Event(name string, vstart, vend time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	var parent uint64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.emitLocked(name, id, parent, len(t.stack)+1, vstart, vend, 0, attrs)
	t.mu.Unlock()
}

func (t *Tracer) emitLocked(name string, id, parent uint64, depth int, vstart, vend, wall time.Duration, attrs []Attr) {
	t.spans++
	var am map[string]any
	if len(attrs) > 0 {
		am = make(map[string]any, len(attrs))
		for _, a := range attrs {
			am[a.Key] = a.Value
		}
	}
	if t.format == FormatChrome {
		args := am
		if args == nil {
			args = make(map[string]any, 3)
		}
		args["id"] = id
		if parent != 0 {
			args["parent"] = parent
		}
		args["wall_us"] = wall.Microseconds()
		t.events = append(t.events, chromeEvent{
			Name: name, Ph: "X", PID: 1, TID: depth,
			TS: float64(vstart.Microseconds()), Dur: float64((vend - vstart).Microseconds()),
			Args: args,
		})
		return
	}
	b, err := json.Marshal(spanRecord{
		Name: name, ID: id, Parent: parent,
		VStartUS: vstart.Microseconds(), VEndUS: vend.Microseconds(),
		WallUS: wall.Microseconds(), Attrs: am,
	})
	if err == nil {
		_, err = t.w.Write(append(b, '\n'))
	}
	if err != nil && t.err == nil {
		t.err = err
	}
}

// Spans returns how many completed spans have been recorded.
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Close flushes the buffered Chrome document (a no-op for JSONL) and
// returns the first write error. The underlying writer is not closed.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.format == FormatChrome {
		doc := struct {
			TraceEvents     []chromeEvent `json:"traceEvents"`
			DisplayTimeUnit string        `json:"displayTimeUnit"`
		}{t.events, "ms"}
		if doc.TraceEvents == nil {
			doc.TraceEvents = []chromeEvent{}
		}
		b, err := json.Marshal(doc)
		if err == nil {
			_, err = t.w.Write(append(b, '\n'))
		}
		if err != nil && t.err == nil {
			t.err = err
		}
		t.events = nil
	}
	return t.err
}
