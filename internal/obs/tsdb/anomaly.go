package tsdb

import "sort"

// Anomaly detection runs online, once per window, over the history store.
//
// Two regimes, matched to the two series classes:
//
//   - Virtual series (deterministic at fixed seed/workers) are scored with
//     a rolling median/MAD z-score over the trailing raw window. The
//     scoring is stateless — it reads the store's retained samples — so a
//     restored daemon flags exactly the anomalies an uninterrupted one
//     would, and the verdicts themselves are deterministic and safe to
//     feed into the SLO engine.
//   - Wall-clock series (decide latency) are scored with an EWMA
//     mean/variance drift detector. Those verdicts depend on the machine
//     the process runs on, so they are surfaced as warnings and counters
//     only, never folded into deterministic state.
type DetectorConfig struct {
	// Trailing is how many prior samples form the robust baseline
	// (default 32).
	Trailing int
	// MinSamples is the minimum baseline size before scoring (default 12):
	// below it every window is "anomalous vs nothing".
	MinSamples int
	// ZThreshold is the |robust z| above which a virtual sample is
	// anomalous (default 6; MAD z-scores are tight, so this is a loud
	// signal, not a tuning knob).
	ZThreshold float64
	// Alpha is the EWMA smoothing factor for wall series (default 0.1).
	Alpha float64
	// DriftThreshold is the |sample − ewma| / stddev ratio above which a
	// wall sample is drifting (default 8).
	DriftThreshold float64
	// MinWallMS floors the wall-series deviation (default 5ms): sub-floor
	// jitter on a fast machine is noise, not drift.
	MinWallMS float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Trailing <= 0 {
		c.Trailing = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 12
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 6
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.1
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 8
	}
	if c.MinWallMS <= 0 {
		c.MinWallMS = 5
	}
	return c
}

// Anomaly is one flagged observation.
type Anomaly struct {
	Series string `json:"series"`
	Window int    `json:"window"`
	// Kind is "mad-z" for virtual series, "ewma-drift" for wall series.
	Kind     string  `json:"kind"`
	Value    float64 `json:"value"`
	Score    float64 `json:"score"`
	Baseline float64 `json:"baseline"`
}

// EWMAState is one wall series' running estimate. It is persisted through
// checkpoints so a restarted daemon's drift baseline does not reset to
// cold (which would re-arm the MinSamples grace and hide a slow machine).
type EWMAState struct {
	Mean float64 `json:"mean"`
	Var  float64 `json:"var"`
	N    int     `json:"n"`
}

// DetectorState is the detector's persistable state. Only the EWMA
// estimates need carrying: the MAD path is stateless over the store.
type DetectorState struct {
	EWMA map[string]EWMAState `json:"ewma,omitempty"`
}

// Detector scores samples against history. It is driven by the engine's
// single-threaded step loop and needs no locking of its own.
type Detector struct {
	cfg  DetectorConfig
	ewma map[string]*EWMAState
}

// NewDetector builds a detector; zero config fields take defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), ewma: make(map[string]*EWMAState)}
}

// ScoreVirtual scores one virtual-series sample against its trailing
// baseline (read from the store, windows strictly before the sample's).
// It returns a non-nil Anomaly when the robust z-score breaches the
// threshold. A zero MAD (flat baseline) yields no verdict rather than an
// infinite score: flag-like series that sit at 0 forever must not page on
// their first nonzero window via division by zero — the caller chooses
// which series are worth monitoring.
func (d *Detector) ScoreVirtual(s *Store, name string, window int, value float64) *Anomaly {
	if d == nil {
		return nil
	}
	base := s.TrailingBefore(name, window, d.cfg.Trailing)
	if len(base) < d.cfg.MinSamples {
		return nil
	}
	med := median(base)
	dev := make([]float64, len(base))
	for i, v := range base {
		dev[i] = abs(v - med)
	}
	mad := median(dev)
	if mad == 0 {
		return nil
	}
	// 0.6745 ≈ Φ⁻¹(3/4): scales MAD to the stddev of a normal
	// distribution, making ZThreshold comparable to a plain z-score.
	z := 0.6745 * (value - med) / mad
	if abs(z) < d.cfg.ZThreshold {
		return nil
	}
	return &Anomaly{Series: name, Window: window, Kind: "mad-z", Value: value, Score: z, Baseline: med}
}

// ScoreWall folds one wall-clock sample into the series' EWMA estimate and
// returns a non-nil Anomaly when the sample drifts past the threshold.
// The sample is folded whether or not it is flagged, so a sustained shift
// becomes the new baseline instead of paging forever.
func (d *Detector) ScoreWall(name string, window int, value float64) *Anomaly {
	if d == nil {
		return nil
	}
	st := d.ewma[name]
	if st == nil {
		st = &EWMAState{}
		d.ewma[name] = st
	}
	var out *Anomaly
	if st.N >= d.cfg.MinSamples {
		dev := abs(value - st.Mean)
		sd := sqrt(st.Var)
		if sd < d.cfg.MinWallMS {
			sd = d.cfg.MinWallMS
		}
		if score := dev / sd; score >= d.cfg.DriftThreshold {
			out = &Anomaly{Series: name, Window: window, Kind: "ewma-drift", Value: value, Score: score, Baseline: st.Mean}
		}
	}
	if st.N == 0 {
		st.Mean = value
	} else {
		delta := value - st.Mean
		st.Mean += d.cfg.Alpha * delta
		st.Var = (1 - d.cfg.Alpha) * (st.Var + d.cfg.Alpha*delta*delta)
	}
	st.N++
	return out
}

// State captures the detector's persistable state; nil detector → nil.
func (d *Detector) State() *DetectorState {
	if d == nil || len(d.ewma) == 0 {
		return nil
	}
	out := &DetectorState{EWMA: make(map[string]EWMAState, len(d.ewma))}
	for name, st := range d.ewma {
		out.EWMA[name] = *st
	}
	return out
}

// Restore overwrites the detector's EWMA estimates; nil state resets.
func (d *Detector) Restore(st *DetectorState) {
	if d == nil {
		return
	}
	d.ewma = make(map[string]*EWMAState)
	if st == nil {
		return
	}
	for name, e := range st.EWMA {
		cp := e
		d.ewma[name] = &cp
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// sqrt is Newton's method on float64 — keeps the package free of even a
// math import so its determinism surface is arithmetic we fully control.
func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 64; i++ {
		nx := (x + v/x) / 2
		if nx == x {
			break
		}
		x = nx
	}
	return x
}
