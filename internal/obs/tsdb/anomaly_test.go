package tsdb

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestScoreVirtualFlagsSpike(t *testing.T) {
	s := New(Options{})
	d := NewDetector(DetectorConfig{Trailing: 16, MinSamples: 8, ZThreshold: 6})
	// A noisy-but-bounded baseline.
	vals := []float64{10, 11, 10, 12, 11, 10, 11, 12, 10, 11, 12, 10, 11, 10, 12, 11}
	for w, v := range vals {
		if a := d.ScoreVirtual(s, "util", w, v); a != nil {
			t.Fatalf("baseline window %d flagged: %+v", w, a)
		}
		s.Append("util", ClassVirtual, w, v)
	}
	// In-band sample: no verdict.
	if a := d.ScoreVirtual(s, "util", 16, 12); a != nil {
		t.Fatalf("in-band sample flagged: %+v", a)
	}
	// A 10x spike must flag.
	a := d.ScoreVirtual(s, "util", 16, 110)
	if a == nil {
		t.Fatal("spike not flagged")
	}
	if a.Kind != "mad-z" || a.Series != "util" || a.Window != 16 || a.Score <= 6 {
		t.Fatalf("anomaly = %+v", a)
	}
}

func TestScoreVirtualColdStartAndFlatBaseline(t *testing.T) {
	s := New(Options{})
	d := NewDetector(DetectorConfig{MinSamples: 8})
	// Under MinSamples: never flags, even on wild values.
	s.Append("x", ClassVirtual, 0, 1)
	s.Append("x", ClassVirtual, 1, 1)
	if a := d.ScoreVirtual(s, "x", 2, 1e9); a != nil {
		t.Fatalf("cold start flagged: %+v", a)
	}
	// Flat baseline (MAD == 0): never flags — no division-by-zero pages
	// from flag-like series that sit at a constant.
	for w := 0; w < 20; w++ {
		s.Append("flat", ClassVirtual, w, 5)
	}
	if a := d.ScoreVirtual(s, "flat", 20, 500); a != nil {
		t.Fatalf("flat baseline flagged: %+v", a)
	}
}

func TestScoreVirtualDeterministic(t *testing.T) {
	run := func() []Anomaly {
		s := New(Options{})
		d := NewDetector(DetectorConfig{})
		var out []Anomaly
		for w := 0; w < 100; w++ {
			v := float64((w*37)%11) * 0.5
			if w == 60 || w == 80 {
				v = 1000
			}
			if a := d.ScoreVirtual(s, "u", w, v); a != nil {
				out = append(out, *a)
			}
			s.Append("u", ClassVirtual, w, v)
		}
		return out
	}
	a, _ := json.Marshal(run())
	b, _ := json.Marshal(run())
	if !bytes.Equal(a, b) {
		t.Fatalf("verdicts differ across identical runs:\n%s\n%s", a, b)
	}
	var got []Anomaly
	json.Unmarshal(a, &got)
	if len(got) != 2 || got[0].Window != 60 || got[1].Window != 80 {
		t.Fatalf("verdicts = %+v", got)
	}
}

func TestScoreWallDrift(t *testing.T) {
	d := NewDetector(DetectorConfig{MinSamples: 8, Alpha: 0.2, DriftThreshold: 8, MinWallMS: 1})
	// Stable ~50ms decides.
	for w := 0; w < 20; w++ {
		if a := d.ScoreWall("decide_wall_ms", w, 50+float64(w%3)); a != nil {
			t.Fatalf("stable wall flagged at %d: %+v", w, a)
		}
	}
	a := d.ScoreWall("decide_wall_ms", 20, 5000)
	if a == nil {
		t.Fatal("wall spike not flagged")
	}
	if a.Kind != "ewma-drift" || a.Score < 8 {
		t.Fatalf("anomaly = %+v", a)
	}
	// Sustained shift becomes the new baseline: keep feeding 5000 and the
	// detector must eventually stop flagging.
	flagged := 0
	for w := 21; w < 120; w++ {
		if d.ScoreWall("decide_wall_ms", w, 5000) != nil {
			flagged++
		}
	}
	if flagged == 99 {
		t.Fatal("EWMA never adapted to the sustained shift")
	}
}

func TestDetectorStateRoundTrip(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	for w := 0; w < 30; w++ {
		d.ScoreWall("wall_a", w, float64(50+w%5))
		d.ScoreWall("wall_b", w, float64(200+w%9))
	}
	st := d.State()
	if st == nil || len(st.EWMA) != 2 {
		t.Fatalf("state = %+v", st)
	}
	raw, _ := json.Marshal(st)
	var decoded DetectorState
	json.Unmarshal(raw, &decoded)
	d2 := NewDetector(DetectorConfig{})
	d2.Restore(&decoded)
	// Both detectors must produce identical verdicts from here on.
	for w := 30; w < 40; w++ {
		a1 := d.ScoreWall("wall_a", w, 50)
		a2 := d2.ScoreWall("wall_a", w, 50)
		if (a1 == nil) != (a2 == nil) {
			t.Fatalf("window %d: verdicts diverge (%v vs %v)", w, a1, a2)
		}
	}
	j1, _ := json.Marshal(d.State())
	j2, _ := json.Marshal(d2.State())
	if !bytes.Equal(j1, j2) {
		t.Fatalf("post-restore states diverge:\n%s\n%s", j1, j2)
	}
	// Nil detector is safe.
	var nd *Detector
	if nd.ScoreVirtual(nil, "a", 0, 1) != nil || nd.ScoreWall("a", 0, 1) != nil || nd.State() != nil {
		t.Fatal("nil detector leaked verdicts")
	}
	nd.Restore(nil)
}

func TestMedianAndSqrt(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("median empty = %v", m)
	}
	if s := sqrt(0); s != 0 {
		t.Fatalf("sqrt(0) = %v", s)
	}
	if s := sqrt(16); s < 3.999999 || s > 4.000001 {
		t.Fatalf("sqrt(16) = %v", s)
	}
}
