// Package tsdb is Mistral's embedded telemetry history plane: a
// zero-dependency, deterministic, windowed time-series store. Every series
// is a fixed-capacity ring keyed by monitoring-window index — virtual
// time, never wall clock — with tiered downsampling behind it: the raw
// tier keeps the last RawWindows samples exactly, and each coarser tier
// keeps min/max/sum/count aggregates over Factors[i]-window buckets, so
// "how did cache hit rate evolve over the last 5,000 windows" is one
// in-process query instead of an offline provenance replay.
//
// Determinism is the design constraint the whole control plane already
// lives under: appends are keyed by window index, aggregation is plain
// float64 arithmetic in append order, and every query renders series in
// sorted-name order, so two runs with the same seed and workers produce
// byte-identical query responses and State documents. Wall-clock-valued
// series (decide wall latency) are carried with Class ClassWall so
// consumers can tell the observational series from the reproducible ones.
//
// A nil *Store is a valid disabled store: every method returns
// immediately, so instrumented paths pay only a nil check when history is
// off.
package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Schema versions the query responses and the persisted State document.
const Schema = "mistral.tsdb/v1"

// Class distinguishes reproducible series from observational ones.
type Class int

const (
	// ClassVirtual marks a series whose values are deterministic at a
	// fixed seed and worker setting (virtual-time quantities and counts).
	ClassVirtual Class = iota
	// ClassWall marks a series carrying wall-clock measurements
	// (observational only; never byte-stable across runs).
	ClassWall
)

// String renders the class for JSON documents.
func (c Class) String() string {
	if c == ClassWall {
		return "wall"
	}
	return "virtual"
}

// classFromString inverts String for State restore.
func classFromString(s string) Class {
	if s == "wall" {
		return ClassWall
	}
	return ClassVirtual
}

// Options sizes the store. Zero fields take defaults.
type Options struct {
	// RawWindows is the raw tier's ring capacity (default 512): the last
	// RawWindows samples are kept exactly.
	RawWindows int
	// AggBuckets is each coarse tier's bucket-ring capacity (default 256).
	AggBuckets int
	// Factors are the coarsening factors of the downsampled tiers
	// (default 8, 64): one bucket aggregates Factors[i] consecutive
	// windows.
	Factors []int
}

func (o Options) withDefaults() Options {
	if o.RawWindows <= 0 {
		o.RawWindows = 512
	}
	if o.AggBuckets <= 0 {
		o.AggBuckets = 256
	}
	if len(o.Factors) == 0 {
		o.Factors = []int{8, 64}
	}
	return o
}

// Sample is one raw observation: a value at a window index.
type Sample struct {
	Window int     `json:"w"`
	Value  float64 `json:"v"`
}

// Agg is one downsampled bucket: min/max/sum/count over the windows in
// [Window, Window+factor). Mean is Sum/Count; Sum is stored (not the mean)
// so the aggregate round-trips through JSON bit-exactly.
type Agg struct {
	Window int     `json:"w"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sum    float64 `json:"sum"`
	Count  int     `json:"n"`
}

// Mean is the bucket's arithmetic mean.
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// ring is a fixed-capacity circular buffer; index 0 is the oldest entry.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func newRing[T any](capacity int) *ring[T] {
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)%len(r.buf)] }

func (r *ring[T]) last() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.at(r.n - 1), true
}

// slice returns the ring contents oldest-first as a fresh slice.
func (r *ring[T]) slice() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.at(i)
	}
	return out
}

// tier is one downsampled resolution of a series.
type tier struct {
	factor  int
	buckets *ring[Agg]
}

// fold merges a raw sample into the tier's current bucket, opening a new
// bucket when the sample crosses a factor boundary.
func (t *tier) fold(window int, value float64) {
	start := window - window%t.factor
	if last, ok := t.buckets.last(); ok && last.Window == start {
		i := (t.buckets.head + t.buckets.n - 1) % len(t.buckets.buf)
		b := &t.buckets.buf[i]
		if value < b.Min {
			b.Min = value
		}
		if value > b.Max {
			b.Max = value
		}
		b.Sum += value
		b.Count++
		return
	}
	t.buckets.push(Agg{Window: start, Min: value, Max: value, Sum: value, Count: 1})
}

// series is one named time series with its raw ring and coarse tiers.
type series struct {
	name  string
	class Class
	raw   *ring[Sample]
	tiers []*tier
	// total counts every sample ever appended, including evicted ones.
	total int
}

// Store is the telemetry history plane: one writer (the scenario engine,
// once per window) plus concurrent readers (the /v1/query handler, /ops
// summaries, mistral-top). A nil *Store is a valid disabled store.
type Store struct {
	mu     sync.RWMutex
	opts   Options
	series map[string]*series
	names  []string // sorted
	last   int      // highest window appended, -1 before the first
}

// New builds an empty store.
func New(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), series: make(map[string]*series), last: -1}
}

// Reset drops every series, returning the store to its freshly built
// state. Sequential runs over a shared observer each re-begin.
func (s *Store) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series = make(map[string]*series)
	s.names = nil
	s.last = -1
}

func (s *Store) newSeries(name string, class Class) *series {
	se := &series{
		name:  name,
		class: class,
		raw:   newRing[Sample](s.opts.RawWindows),
	}
	for _, f := range s.opts.Factors {
		se.tiers = append(se.tiers, &tier{factor: f, buckets: newRing[Agg](s.opts.AggBuckets)})
	}
	s.series[name] = se
	i := sort.SearchStrings(s.names, name)
	s.names = append(s.names, "")
	copy(s.names[i+1:], s.names[i:])
	s.names[i] = name
	return se
}

// Append records one sample. The series is created on first use; within a
// series, windows must be strictly increasing — a stale or duplicate
// window is ignored rather than corrupting the ring order.
func (s *Store) Append(name string, class Class, window int, value float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.series[name]
	if se == nil {
		se = s.newSeries(name, class)
	}
	if last, ok := se.raw.last(); ok && window <= last.Window {
		return
	}
	se.raw.push(Sample{Window: window, Value: value})
	se.total++
	for _, t := range se.tiers {
		t.fold(window, value)
	}
	if window > s.last {
		s.last = window
	}
}

// Names returns the series names in sorted order.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.names...)
}

// LastWindow returns the highest window index appended (-1 when empty).
func (s *Store) LastWindow() int {
	if s == nil {
		return -1
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.last
}

// Steps returns the query resolutions the store serves: 1 (raw) followed
// by the configured coarsening factors.
func (s *Store) Steps() []int {
	if s == nil {
		return nil
	}
	return append([]int{1}, s.opts.Factors...)
}

// Range returns the raw samples of one series with Window in [from, to].
// to < 0 means "through the latest window".
func (s *Store) Range(name string, from, to int) []Sample {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	se := s.series[name]
	if se == nil {
		return nil
	}
	var out []Sample
	for i := 0; i < se.raw.n; i++ {
		p := se.raw.at(i)
		if p.Window < from || (to >= 0 && p.Window > to) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// RangeAgg returns one series' downsampled buckets whose start window
// falls in [from, to] at the given coarsening factor. The factor must be
// one of the configured Factors.
func (s *Store) RangeAgg(name string, from, to, factor int) ([]Agg, error) {
	if s == nil {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	se := s.series[name]
	if se == nil {
		return nil, nil
	}
	for _, t := range se.tiers {
		if t.factor != factor {
			continue
		}
		var out []Agg
		for i := 0; i < t.buckets.n; i++ {
			b := t.buckets.at(i)
			if b.Window < from || (to >= 0 && b.Window > to) {
				continue
			}
			out = append(out, b)
		}
		return out, nil
	}
	return nil, fmt.Errorf("tsdb: no %dx tier (have %v)", factor, s.opts.Factors)
}

// LatestK returns the newest k raw samples of one series, oldest first.
func (s *Store) LatestK(name string, k int) []Sample {
	if s == nil || k <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	se := s.series[name]
	if se == nil {
		return nil
	}
	n := se.raw.n
	if k > n {
		k = n
	}
	out := make([]Sample, 0, k)
	for i := n - k; i < n; i++ {
		out = append(out, se.raw.at(i))
	}
	return out
}

// TrailingBefore returns up to n raw values of one series with Window
// strictly below the given window, oldest first — the anomaly detector's
// baseline view.
func (s *Store) TrailingBefore(name string, window, n int) []float64 {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	se := s.series[name]
	if se == nil {
		return nil
	}
	end := se.raw.n
	for end > 0 && se.raw.at(end-1).Window >= window {
		end--
	}
	start := end - n
	if start < 0 {
		start = 0
	}
	out := make([]float64, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, se.raw.at(i).Value)
	}
	return out
}

// Aligned intersects the raw tiers of several series over [from, to]:
// it returns the window indices present in every series, plus one value
// column per series in the order the names were given.
func (s *Store) Aligned(names []string, from, to int) (windows []int, values [][]float64) {
	if s == nil || len(names) == 0 {
		return nil, nil
	}
	cols := make([][]Sample, len(names))
	for i, n := range names {
		cols[i] = s.Range(n, from, to)
		if len(cols[i]) == 0 {
			return nil, nil
		}
	}
	values = make([][]float64, len(names))
	pos := make([]int, len(names))
	for _, p := range cols[0] {
		w := p.Window
		row := make([]float64, 0, len(names))
		ok := true
		for i := range cols {
			for pos[i] < len(cols[i]) && cols[i][pos[i]].Window < w {
				pos[i]++
			}
			if pos[i] >= len(cols[i]) || cols[i][pos[i]].Window != w {
				ok = false
				break
			}
			row = append(row, cols[i][pos[i]].Value)
		}
		if ok {
			windows = append(windows, w)
			for i := range values {
				values[i] = append(values[i], row[i])
			}
		}
	}
	return windows, values
}

// Summary is one series' digest for the /ops snapshot and mistral-top:
// per-series min/max/last over the retained raw tier plus an optional
// sparkline vector of the newest values.
type Summary struct {
	Name    string    `json:"name"`
	Class   string    `json:"class"`
	Windows int       `json:"windows"`
	Last    float64   `json:"last"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Spark   []float64 `json:"spark,omitempty"`
}

// Summaries digests every series in sorted-name order; sparkN > 0 attaches
// the newest sparkN raw values as the sparkline vector.
func (s *Store) Summaries(sparkN int) []Summary {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Summary, 0, len(s.names))
	for _, name := range s.names {
		se := s.series[name]
		if se.raw.n == 0 {
			continue
		}
		first := se.raw.at(0)
		sum := Summary{
			Name:    name,
			Class:   se.class.String(),
			Windows: se.total,
			Min:     first.Value,
			Max:     first.Value,
		}
		for i := 0; i < se.raw.n; i++ {
			v := se.raw.at(i).Value
			if v < sum.Min {
				sum.Min = v
			}
			if v > sum.Max {
				sum.Max = v
			}
			sum.Last = v
		}
		if sparkN > 0 {
			k := sparkN
			if k > se.raw.n {
				k = se.raw.n
			}
			sum.Spark = make([]float64, 0, k)
			for i := se.raw.n - k; i < se.raw.n; i++ {
				sum.Spark = append(sum.Spark, se.raw.at(i).Value)
			}
		}
		out = append(out, sum)
	}
	return out
}

// SeriesState is one series' complete ring contents in serializable form.
type SeriesState struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	Total int    `json:"total"`
	// Raw holds the retained raw samples oldest-first.
	Raw []Sample `json:"raw,omitempty"`
	// Tiers holds each downsampled tier's retained buckets oldest-first,
	// in Factors order.
	Tiers []TierState `json:"tiers,omitempty"`
}

// TierState is one downsampled tier in serializable form.
type TierState struct {
	Factor  int   `json:"factor"`
	Buckets []Agg `json:"buckets,omitempty"`
}

// State is the store's complete contents for checkpoint/restore. Floats
// round-trip through JSON via shortest representation, so a restored
// store answers queries byte-identically to the one that was captured.
type State struct {
	Schema     string        `json:"schema"`
	LastWindow int           `json:"last_window"`
	Series     []SeriesState `json:"series,omitempty"`
}

// State captures the store's contents; a nil store yields nil.
func (s *Store) State() *State {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := &State{Schema: Schema, LastWindow: s.last}
	for _, name := range s.names {
		se := s.series[name]
		ss := SeriesState{
			Name:  name,
			Class: se.class.String(),
			Total: se.total,
			Raw:   se.raw.slice(),
		}
		for _, t := range se.tiers {
			ss.Tiers = append(ss.Tiers, TierState{Factor: t.factor, Buckets: t.buckets.slice()})
		}
		st.Series = append(st.Series, ss)
	}
	return st
}

// Restore overwrites the store's contents with a captured State. Rings are
// refilled newest-last; contents beyond the store's configured capacities
// keep only the newest entries. A nil state just resets the store.
func (s *Store) Restore(st *State) error {
	if s == nil {
		return nil
	}
	if st == nil {
		s.Reset()
		return nil
	}
	if st.Schema != Schema {
		return fmt.Errorf("tsdb: unsupported history schema %q (want %q)", st.Schema, Schema)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series = make(map[string]*series)
	s.names = nil
	s.last = st.LastWindow
	for _, ss := range st.Series {
		se := s.newSeries(ss.Name, classFromString(ss.Class))
		se.total = ss.Total
		for _, p := range ss.Raw {
			se.raw.push(p)
		}
		for _, ts := range ss.Tiers {
			for _, t := range se.tiers {
				if t.factor != ts.Factor {
					continue
				}
				for _, b := range ts.Buckets {
					t.buckets.push(b)
				}
			}
		}
	}
	return nil
}

// FromState builds a default-sized store holding a captured State —
// the checkpoint reader's path (mistral-explain -series).
func FromState(st *State) (*Store, error) {
	s := New(Options{})
	if err := s.Restore(st); err != nil {
		return nil, err
	}
	return s, nil
}

// QuerySeries is one series' slice of a /v1/query response: raw points at
// step 1, downsampled buckets (with their means materialized) otherwise.
type QuerySeries struct {
	Name   string     `json:"name"`
	Class  string     `json:"class"`
	Points []Sample   `json:"points,omitempty"`
	Aggs   []AggPoint `json:"aggs,omitempty"`
}

// AggPoint is one downsampled bucket in query-response form.
type AggPoint struct {
	Window int     `json:"w"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Count  int     `json:"n"`
}

// QueryResponse is the /v1/query document. It carries no wall-clock or
// store-global fields, so the same query over the same windows renders
// byte-identically — the CI contract across a checkpoint/restore cycle.
type QueryResponse struct {
	Schema string        `json:"schema"`
	From   int           `json:"from"`
	To     int           `json:"to"`
	Step   int           `json:"step"`
	Series []QuerySeries `json:"series"`
}

// ListResponse is the /v1/query document served without a series
// parameter: the store's catalog.
type ListResponse struct {
	Schema     string    `json:"schema"`
	LastWindow int       `json:"last_window"`
	Steps      []int     `json:"steps"`
	Series     []Summary `json:"series"`
}

// Query answers one range query over several series. step 1 returns raw
// samples; a configured factor returns that tier's buckets; step 0 picks
// the finest resolution whose retention still covers from. to < 0 means
// "through the latest appended window".
func (s *Store) Query(names []string, from, to, step int) (*QueryResponse, error) {
	if s == nil {
		return nil, fmt.Errorf("tsdb: history disabled")
	}
	if from < 0 {
		from = 0
	}
	if to < 0 {
		to = s.LastWindow()
	}
	if step == 0 {
		step = s.autoStep(from)
	}
	resp := &QueryResponse{Schema: Schema, From: from, To: to, Step: step}
	for _, name := range names {
		s.mu.RLock()
		se := s.series[name]
		s.mu.RUnlock()
		if se == nil {
			return nil, fmt.Errorf("tsdb: unknown series %q", name)
		}
		qs := QuerySeries{Name: name, Class: se.class.String()}
		if step == 1 {
			qs.Points = s.Range(name, from, to)
		} else {
			aggs, err := s.RangeAgg(name, from-from%step, to, step)
			if err != nil {
				return nil, err
			}
			qs.Aggs = make([]AggPoint, 0, len(aggs))
			for _, a := range aggs {
				qs.Aggs = append(qs.Aggs, AggPoint{
					Window: a.Window, Mean: a.Mean(), Min: a.Min, Max: a.Max, Count: a.Count,
				})
			}
		}
		resp.Series = append(resp.Series, qs)
	}
	return resp, nil
}

// autoStep picks the finest resolution whose retention reaches back to
// the requested start window.
func (s *Store) autoStep(from int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.last < 0 {
		return 1
	}
	if s.last-s.opts.RawWindows < from {
		return 1
	}
	for _, f := range s.opts.Factors {
		if s.last-f*s.opts.AggBuckets < from {
			return f
		}
	}
	if n := len(s.opts.Factors); n > 0 {
		return s.opts.Factors[n-1]
	}
	return 1
}

// Handler serves the trend-query API:
//
//	GET /v1/query                                  → series catalog
//	GET /v1/query?series=a,b&from=N&to=N&step=N    → range query
//	GET /v1/query?series=a&k=N                     → latest-k raw samples
//
// Works on a nil store (serves an empty catalog), so the route can always
// be mounted.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeErr := func(status int, msg string) {
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": msg})
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeErr(http.StatusMethodNotAllowed, "GET required")
			return
		}
		q := r.URL.Query()
		atoi := func(key string, def int) (int, error) {
			v := q.Get(key)
			if v == "" {
				return def, nil
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return 0, fmt.Errorf("bad %s=%q", key, v)
			}
			return n, nil
		}
		names := q.Get("series")
		if names == "" {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(ListResponse{
				Schema:     Schema,
				LastWindow: s.LastWindow(),
				Steps:      s.Steps(),
				Series:     s.Summaries(0),
			})
			return
		}
		split := strings.Split(names, ",")
		if k, err := atoi("k", 0); err != nil {
			writeErr(http.StatusBadRequest, err.Error())
			return
		} else if k > 0 {
			resp := &QueryResponse{Schema: Schema, From: -1, To: s.LastWindow(), Step: 1}
			for _, name := range split {
				pts := s.LatestK(name, k)
				if pts == nil && s != nil {
					if _, known := s.hasSeries(name); !known {
						writeErr(http.StatusNotFound, fmt.Sprintf("unknown series %q", name))
						return
					}
				}
				if len(pts) > 0 && (resp.From < 0 || pts[0].Window < resp.From) {
					resp.From = pts[0].Window
				}
				resp.Series = append(resp.Series, QuerySeries{Name: name, Class: s.className(name), Points: pts})
			}
			if resp.From < 0 {
				resp.From = 0
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(resp)
			return
		}
		from, err := atoi("from", 0)
		if err != nil {
			writeErr(http.StatusBadRequest, err.Error())
			return
		}
		to, err := atoi("to", -1)
		if err != nil {
			writeErr(http.StatusBadRequest, err.Error())
			return
		}
		step, err := atoi("step", 1)
		if err != nil {
			writeErr(http.StatusBadRequest, err.Error())
			return
		}
		resp, err := s.Query(split, from, to, step)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "unknown series") {
				status = http.StatusNotFound
			}
			writeErr(status, err.Error())
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// hasSeries reports whether the named series exists.
func (s *Store) hasSeries(name string) (*series, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	se, ok := s.series[name]
	return se, ok
}

// className returns the named series' class string ("" when absent).
func (s *Store) className(name string) string {
	se, ok := s.hasSeries(name)
	if !ok {
		return ""
	}
	return se.class.String()
}
