package tsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

func TestAppendRangeAndLatestK(t *testing.T) {
	s := New(Options{RawWindows: 8, AggBuckets: 4, Factors: []int{4}})
	for w := 0; w < 20; w++ {
		s.Append("util", ClassVirtual, w, float64(w)*0.5)
	}
	if got := s.LastWindow(); got != 19 {
		t.Fatalf("LastWindow = %d, want 19", got)
	}
	// Raw ring keeps the newest 8 windows: 12..19.
	all := s.Range("util", 0, -1)
	if len(all) != 8 || all[0].Window != 12 || all[7].Window != 19 {
		t.Fatalf("Range full = %+v", all)
	}
	mid := s.Range("util", 14, 16)
	if len(mid) != 3 || mid[0].Window != 14 || mid[2].Window != 16 {
		t.Fatalf("Range[14,16] = %+v", mid)
	}
	lk := s.LatestK("util", 3)
	if len(lk) != 3 || lk[0].Window != 17 || lk[2].Window != 19 {
		t.Fatalf("LatestK(3) = %+v", lk)
	}
	if got := s.LatestK("util", 100); len(got) != 8 {
		t.Fatalf("LatestK over-ask = %d samples, want 8", len(got))
	}
	if got := s.Range("nosuch", 0, -1); got != nil {
		t.Fatalf("Range on unknown series = %+v, want nil", got)
	}
}

func TestStaleWindowIgnored(t *testing.T) {
	s := New(Options{})
	s.Append("a", ClassVirtual, 5, 1)
	s.Append("a", ClassVirtual, 5, 99) // duplicate
	s.Append("a", ClassVirtual, 3, 99) // stale
	s.Append("a", ClassVirtual, 6, 2)
	got := s.Range("a", 0, -1)
	want := []Sample{{Window: 5, Value: 1}, {Window: 6, Value: 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Range = %+v, want %+v", got, want)
	}
}

func TestDownsamplingTiers(t *testing.T) {
	s := New(Options{RawWindows: 16, AggBuckets: 8, Factors: []int{4}})
	// Windows 0..11, value == window index.
	for w := 0; w < 12; w++ {
		s.Append("x", ClassVirtual, w, float64(w))
	}
	aggs, err := s.RangeAgg("x", 0, -1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 3 {
		t.Fatalf("got %d buckets, want 3: %+v", len(aggs), aggs)
	}
	b := aggs[1] // windows 4..7
	if b.Window != 4 || b.Min != 4 || b.Max != 7 || b.Count != 4 || b.Sum != 22 {
		t.Fatalf("bucket[1] = %+v", b)
	}
	if m := b.Mean(); m != 5.5 {
		t.Fatalf("Mean = %v, want 5.5", m)
	}
	// Gap across a bucket boundary: the partial bucket stays partial.
	s.Append("x", ClassVirtual, 17, 100)
	aggs, _ = s.RangeAgg("x", 0, -1, 4)
	last := aggs[len(aggs)-1]
	if last.Window != 16 || last.Count != 1 || last.Min != 100 {
		t.Fatalf("gap bucket = %+v", last)
	}
	if _, err := s.RangeAgg("x", 0, -1, 5); err == nil {
		t.Fatal("RangeAgg with unknown factor should error")
	}
}

func TestAligned(t *testing.T) {
	s := New(Options{})
	for w := 0; w < 10; w++ {
		s.Append("a", ClassVirtual, w, float64(w))
		if w%2 == 0 {
			s.Append("b", ClassVirtual, w, float64(w * 10))
		}
	}
	wins, vals := s.Aligned([]string{"a", "b"}, 0, -1)
	if len(wins) != 5 || wins[0] != 0 || wins[4] != 8 {
		t.Fatalf("aligned windows = %v", wins)
	}
	if vals[0][2] != 4 || vals[1][2] != 40 {
		t.Fatalf("aligned values = %v", vals)
	}
	if w, _ := s.Aligned([]string{"a", "nosuch"}, 0, -1); w != nil {
		t.Fatalf("aligned with unknown series = %v, want nil", w)
	}
}

func TestTrailingBefore(t *testing.T) {
	s := New(Options{})
	for w := 0; w < 10; w++ {
		s.Append("a", ClassVirtual, w, float64(w))
	}
	got := s.TrailingBefore("a", 7, 3)
	want := []float64{4, 5, 6}
	if len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("TrailingBefore = %v, want %v", got, want)
	}
	if got := s.TrailingBefore("a", 0, 5); len(got) != 0 {
		t.Fatalf("TrailingBefore at window 0 = %v, want empty", got)
	}
}

func TestSummaries(t *testing.T) {
	s := New(Options{RawWindows: 4, AggBuckets: 4, Factors: []int{2}})
	for w := 0; w < 6; w++ {
		s.Append("z", ClassWall, w, float64(w))
		s.Append("a", ClassVirtual, w, float64(-w))
	}
	sums := s.Summaries(2)
	if len(sums) != 2 || sums[0].Name != "a" || sums[1].Name != "z" {
		t.Fatalf("summaries order = %+v", sums)
	}
	a := sums[0]
	// Ring holds windows 2..5 → values -2..-5.
	if a.Min != -5 || a.Max != -2 || a.Last != -5 || a.Windows != 6 || a.Class != "virtual" {
		t.Fatalf("summary a = %+v", a)
	}
	if len(a.Spark) != 2 || a.Spark[1] != -5 {
		t.Fatalf("spark = %v", a.Spark)
	}
	if sums[1].Class != "wall" {
		t.Fatalf("summary z class = %q", sums[1].Class)
	}
}

func TestStateRoundTripByteIdentical(t *testing.T) {
	build := func() *Store {
		s := New(Options{RawWindows: 8, AggBuckets: 4, Factors: []int{2, 4}})
		for w := 0; w < 25; w++ {
			s.Append("util", ClassVirtual, w, 0.1*float64(w*w%17))
			s.Append("watts", ClassVirtual, w, 100+float64(w%7))
			if w%3 == 0 {
				s.Append("wall", ClassWall, w, float64(w)*1.5)
			}
		}
		return s
	}
	orig := build()
	b1, err := json.Marshal(orig.State())
	if err != nil {
		t.Fatal(err)
	}
	// JSON boundary, as a checkpoint file imposes.
	var st State
	if err := json.Unmarshal(b1, &st); err != nil {
		t.Fatal(err)
	}
	restored := New(Options{RawWindows: 8, AggBuckets: 4, Factors: []int{2, 4}})
	if err := restored.Restore(&st); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(restored.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("state round trip not byte-identical:\n%s\n%s", b1, b2)
	}
	// Queries answer identically too.
	q1, _ := orig.Query([]string{"util", "watts"}, 0, -1, 1)
	q2, _ := restored.Query([]string{"util", "watts"}, 0, -1, 1)
	j1, _ := json.Marshal(q1)
	j2, _ := json.Marshal(q2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("query after restore differs:\n%s\n%s", j1, j2)
	}
	// And appends continue from where the original left off.
	restored.Append("util", ClassVirtual, 25, 1)
	if got := restored.LastWindow(); got != 25 {
		t.Fatalf("LastWindow after post-restore append = %d", got)
	}
	if err := restored.Restore(&State{Schema: "bogus/v9"}); err == nil {
		t.Fatal("Restore should reject unknown schema")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.Append("a", ClassVirtual, 0, 1)
	s.Reset()
	if s.Names() != nil || s.LastWindow() != -1 || s.State() != nil {
		t.Fatal("nil store leaked state")
	}
	if s.Range("a", 0, -1) != nil || s.LatestK("a", 3) != nil || s.Summaries(4) != nil {
		t.Fatal("nil store returned data")
	}
	if err := s.Restore(&State{Schema: Schema}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query([]string{"a"}, 0, -1, 1); err == nil {
		t.Fatal("nil store Query should error")
	}
	// The handler still serves the empty catalog.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/query", nil))
	if rr.Code != 200 {
		t.Fatalf("nil handler status %d", rr.Code)
	}
}

func TestQueryAutoStep(t *testing.T) {
	s := New(Options{RawWindows: 8, AggBuckets: 8, Factors: []int{4, 16}})
	for w := 0; w < 100; w++ {
		s.Append("a", ClassVirtual, w, float64(w))
	}
	// from=95 is inside raw retention → step 1.
	q, err := s.Query([]string{"a"}, 95, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Step != 1 || len(q.Points()) == 0 {
		t.Fatalf("auto step near tip = %d", q.Step)
	}
	// from=70 is past raw (92..99) but inside the 4x tier (68..99).
	q, err = s.Query([]string{"a"}, 70, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Step != 4 {
		t.Fatalf("auto step mid = %d, want 4", q.Step)
	}
	// from=0 is only reachable by the 16x tier? 16*8=128 > 100, so yes.
	q, err = s.Query([]string{"a"}, 0, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Step != 16 {
		t.Fatalf("auto step deep = %d, want 16", q.Step)
	}
}

// Points flattens the first series' raw points for test convenience.
func (r *QueryResponse) Points() []Sample {
	if len(r.Series) == 0 {
		return nil
	}
	return r.Series[0].Points
}

func TestHandler(t *testing.T) {
	s := New(Options{RawWindows: 16, AggBuckets: 8, Factors: []int{4}})
	for w := 0; w < 12; w++ {
		s.Append("util", ClassVirtual, w, float64(w))
		s.Append("watts", ClassVirtual, w, 100)
	}
	get := func(url string) (int, []byte) {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		return rr.Code, rr.Body.Bytes()
	}

	// Catalog.
	code, body := get("/v1/query")
	if code != 200 {
		t.Fatalf("catalog status %d: %s", code, body)
	}
	var list ListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Schema != Schema || len(list.Series) != 2 || list.LastWindow != 11 {
		t.Fatalf("catalog = %+v", list)
	}

	// Raw range.
	code, body = get("/v1/query?series=util,watts&from=2&to=5")
	if code != 200 {
		t.Fatalf("range status %d: %s", code, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Series) != 2 || len(qr.Series[0].Points) != 4 || qr.Series[0].Points[0].Window != 2 {
		t.Fatalf("range = %+v", qr)
	}

	// Downsampled range.
	code, body = get("/v1/query?series=util&step=4")
	if code != 200 {
		t.Fatalf("agg status %d: %s", code, body)
	}
	qr = QueryResponse{}
	json.Unmarshal(body, &qr)
	if len(qr.Series[0].Aggs) != 3 || qr.Series[0].Aggs[1].Mean != 5.5 {
		t.Fatalf("aggs = %+v", qr.Series[0].Aggs)
	}

	// Latest-k.
	code, body = get("/v1/query?series=util&k=3")
	if code != 200 {
		t.Fatalf("k status %d: %s", code, body)
	}
	qr = QueryResponse{}
	json.Unmarshal(body, &qr)
	if pts := qr.Series[0].Points; len(pts) != 3 || pts[2].Window != 11 {
		t.Fatalf("latest-k = %+v", qr.Series[0].Points)
	}

	// Errors.
	if code, _ := get("/v1/query?series=nosuch"); code != 404 {
		t.Fatalf("unknown series status %d, want 404", code)
	}
	if code, _ := get("/v1/query?series=util&from=abc"); code != 400 {
		t.Fatalf("bad from status %d, want 400", code)
	}
	if code, _ := get("/v1/query?series=util&step=7"); code != 400 {
		t.Fatalf("bad step status %d, want 400", code)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/query", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status %d, want 405", rr.Code)
	}
}

func TestHandlerDeterministicBytes(t *testing.T) {
	build := func() *Store {
		s := New(Options{})
		for w := 0; w < 40; w++ {
			s.Append("util", ClassVirtual, w, float64(w%7)*0.25)
			s.Append("watts", ClassVirtual, w, 100+float64(w%3))
		}
		return s
	}
	req := func(s *Store) []byte {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/query?series=util,watts&from=0&to=39", nil))
		return rr.Body.Bytes()
	}
	a, b := req(build()), req(build())
	if !bytes.Equal(a, b) {
		t.Fatalf("query responses differ across identical builds:\n%s\n%s", a, b)
	}
}

func TestFromState(t *testing.T) {
	s := New(Options{})
	for w := 0; w < 5; w++ {
		s.Append("a", ClassVirtual, w, float64(w))
	}
	got, err := FromState(s.State())
	if err != nil {
		t.Fatal(err)
	}
	if got.LastWindow() != 4 || len(got.Range("a", 0, -1)) != 5 {
		t.Fatal("FromState lost data")
	}
}

func BenchmarkAppend(b *testing.B) {
	s := New(Options{})
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("series_%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			s.Append(n, ClassVirtual, i, float64(i))
		}
	}
}
