package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

// TestHistogramExemplar checks an exemplar-tagged observation lands in
// the JSON snapshot (value + trace join key) but stays out of the
// Prometheus text exposition, which the 0.0.4 format cannot carry.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("window_utility", []float64{1, 10})
	h.Observe(0.5)
	h.ObserveExemplar(2.5, TraceID(3))
	h.ObserveExemplar(7.5, "") // empty trace: counted, no exemplar update

	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if s.Exemplar == nil || s.Exemplar.Trace != "w000003" || s.Exemplar.Value != 2.5 {
		t.Fatalf("exemplar %+v", s.Exemplar)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if ex := snap.Histograms["window_utility"].Exemplar; ex == nil || ex.Trace != "w000003" {
		t.Fatalf("JSON exemplar %+v", ex)
	}

	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "w000003") {
		t.Fatalf("exemplar leaked into text exposition:\n%s", buf.String())
	}
}

// TestHistogramDuplicateRegistration pins the return-existing guard:
// re-registering a histogram under the same name — even with different
// bounds — hands back the first collector instead of panicking or
// resetting counts.
func TestHistogramDuplicateRegistration(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2, 3})
	h1.Observe(1)
	h2 := r.Histogram("h", []float64{100}) // different bounds: first wins
	if h1 != h2 {
		t.Fatal("duplicate registration returned a different collector")
	}
	if got := len(h2.Snapshot().Bounds); got != 3 {
		t.Fatalf("bounds overwritten: %d", got)
	}
	if c1, c2 := r.Counter("c"), r.Counter("c"); c1 != c2 {
		t.Fatal("duplicate counter registration returned a different collector")
	}
	if g1, g2 := r.Gauge("g"), r.Gauge("g"); g1 != g2 {
		t.Fatal("duplicate gauge registration returned a different collector")
	}
}

// TestPublishConcurrentDuplicate hammers Publish with the same expvar
// name from many goroutines and registries. expvar itself panics on
// re-publication; the registry guard must make every call after the
// first a silent no-op — run with -race this also proves the
// check-then-act window is closed.
func TestPublishConcurrentDuplicate(t *testing.T) {
	const name = "mistral_test_publish_dup"
	regs := []*Registry{NewRegistry(), NewRegistry()}
	regs[0].Counter("who").Add(1)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			regs[i%len(regs)].Publish(name)
		}(i)
	}
	wg.Wait()

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("nothing published")
	}
	// Whichever registry won, the export must serve a valid snapshot.
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("published value is not a snapshot: %v", err)
	}
}
