package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTraceIDScheme pins the canonical window→trace mapping that every
// consumer (provenance readers, SLO alerts, ops plane, profiler file
// names) recomputes independently.
func TestTraceIDScheme(t *testing.T) {
	if got := TraceID(0); got != "w000000" {
		t.Fatalf("TraceID(0) = %q", got)
	}
	if got := TraceID(42); got != "w000042" {
		t.Fatalf("TraceID(42) = %q", got)
	}
	tc := WindowTrace(7)
	if tc.Window != 7 || tc.TraceID != "w000007" || !tc.Enabled() {
		t.Fatalf("WindowTrace(7) = %+v", tc)
	}
	if got := tc.SpanID("mistral/L2", "search"); got != "w000007/mistral/L2/search" {
		t.Fatalf("SpanID = %q", got)
	}
	if got := tc.SpanID(); got != "w000007" {
		t.Fatalf("SpanID() = %q", got)
	}
	if a := tc.Attr(); a.Key != "trace" || a.Value != "w000007" {
		t.Fatalf("Attr = %+v", a)
	}
}

// TestTraceContextZeroValueDisabled proves the zero value is inert —
// the guarantee that lets instrumented code thread contexts without
// checking whether tracing is on.
func TestTraceContextZeroValueDisabled(t *testing.T) {
	var tc TraceContext
	if tc.Enabled() {
		t.Fatal("zero TraceContext reports enabled")
	}
	if tc.ID() != "" || tc.SpanID("a", "b") != "" {
		t.Fatalf("disabled context leaked IDs: %q %q", tc.ID(), tc.SpanID("a", "b"))
	}
}

// TestReadSpansRoundTrip writes spans through the real tracer with
// trace attributes and reads them back, checking the window filter
// reconstructs exactly the traced window's spans.
func TestReadSpansRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatJSONL)

	for win := 0; win < 2; win++ {
		tc := WindowTrace(win)
		base := time.Duration(win) * time.Minute
		sp := tr.Start("decide", base, tc.Attr(), Attr{Key: "span", Value: tc.SpanID("decide")})
		child := tr.Start("search", base, tc.Attr(), Attr{Key: "span", Value: tc.SpanID("L2", "search")})
		child.End(base + time.Second)
		sp.End(base + 2*time.Second)
	}
	tr.Event("untraced", 0, time.Second) // no trace attr: filtered out
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 5 {
		t.Fatalf("read %d spans, want 5", len(spans))
	}
	w1 := SpansForTrace(spans, TraceID(1))
	if len(w1) != 2 {
		t.Fatalf("window 1 has %d spans, want 2", len(w1))
	}
	for _, s := range w1 {
		if s.TraceID() != "w000001" {
			t.Fatalf("span %s carries trace %q", s.Name, s.TraceID())
		}
	}
	// Parent/child linkage survives the round trip: the search span's
	// parent is the decide span of the same window.
	byName := map[string]SpanRecord{}
	for _, s := range w1 {
		byName[s.Name] = s
	}
	if byName["search"].Parent != byName["decide"].ID {
		t.Fatalf("search parent %d, decide id %d", byName["search"].Parent, byName["decide"].ID)
	}
}

// TestReadSpansMalformed rejects broken JSONL with the line number.
func TestReadSpansMalformed(t *testing.T) {
	_, err := ReadSpans(strings.NewReader("{\"name\":\"ok\",\"id\":1,\"v_start_us\":0,\"v_end_us\":1,\"wall_us\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse failure", err)
	}
}
