package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TraceContext is the causal identity of one monitoring window. Every
// observability stream — trace spans, metrics exemplars, provenance
// records, SLO alerts, log lines — carries the same window-derived ID,
// so mistral-explain and the ops plane can stitch one window's story
// across all of them.
//
// The ID is derived deterministically from the window index alone
// (WindowTrace), never from wall clocks or random sources. That keeps
// provenance JSONL byte-identical with tracing on or off: the
// provenance record's Window field already pins the identity, and
// consumers recompute the trace ID from it instead of serializing a
// new field.
//
// The zero value is a valid disabled context: Enabled reports false
// and ID/SpanID return "".
type TraceContext struct {
	// Window is the 0-based monitoring-window index.
	Window int
	// TraceID is the shared identifier, "w%06d" of the window index.
	TraceID string
}

// WindowTrace builds the trace context for the given 0-based window
// index. The mapping is pure: WindowTrace(n).TraceID == TraceID(n) for
// every caller, with no process state involved.
func WindowTrace(window int) TraceContext {
	return TraceContext{Window: window, TraceID: TraceID(window)}
}

// TraceID returns the canonical trace identifier for a window index,
// e.g. TraceID(42) == "w000042". provenance records do not store it;
// readers recompute it from Record.Window with this function.
func TraceID(window int) string { return fmt.Sprintf("w%06d", window) }

// Enabled reports whether the context carries an identity.
func (tc TraceContext) Enabled() bool { return tc.TraceID != "" }

// ID returns the trace identifier ("" when disabled).
func (tc TraceContext) ID() string { return tc.TraceID }

// SpanID composes a deterministic span identifier under this trace by
// joining the trace ID with the given path segments, e.g.
// SpanID("mistral/L2", "search") == "w000042/mistral/L2/search".
// Uniqueness holds as long as the segments name a unique point in the
// decide tree (controller names are unique per hierarchy, stages are
// sequential per controller), so no counters — and therefore no
// cross-goroutine ordering — are involved.
func (tc TraceContext) SpanID(parts ...string) string {
	if tc.TraceID == "" {
		return ""
	}
	if len(parts) == 0 {
		return tc.TraceID
	}
	return tc.TraceID + "/" + strings.Join(parts, "/")
}

// Attr returns the span attribute carrying this trace ID, the join key
// shared with provenance and SLO alerts. A disabled context yields an
// empty-valued attr that filters out naturally.
func (tc TraceContext) Attr() Attr { return Attr{Key: "trace", Value: tc.TraceID} }

// SpanRecord is the exported JSONL encoding of one completed span,
// used by readers (mistral-explain trace stitching). It mirrors the
// tracer's on-disk schema exactly.
type SpanRecord struct {
	Name     string         `json:"name"`
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	VStartUS int64          `json:"v_start_us"`
	VEndUS   int64          `json:"v_end_us"`
	WallUS   int64          `json:"wall_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceID returns the span's trace attribute ("" when the span was
// recorded outside any window trace context).
func (s *SpanRecord) TraceID() string {
	if v, ok := s.Attrs["trace"].(string); ok {
		return v
	}
	return ""
}

// ReadSpans parses a JSONL span stream (the tracer's FormatJSONL
// output). Blank lines are skipped; a malformed line aborts with an
// error naming its line number.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: span stream: %w", err)
	}
	return out, nil
}

// SpansForTrace filters spans carrying the given trace ID, preserving
// input order (the tracer emits in span-end order).
func SpansForTrace(spans []SpanRecord, traceID string) []SpanRecord {
	var out []SpanRecord
	for _, s := range spans {
		if s.TraceID() == traceID {
			out = append(out, s)
		}
	}
	return out
}
