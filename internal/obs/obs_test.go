package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDefaultResolve(t *testing.T) {
	if Default() != nil {
		t.Fatal("initial default must be nil (disabled)")
	}
	o := &Observer{Metrics: NewRegistry()}
	SetDefault(o)
	defer SetDefault(nil)
	if Resolve(nil) != o {
		t.Error("Resolve(nil) must return the default")
	}
	other := &Observer{}
	if Resolve(other) != other {
		t.Error("Resolve(explicit) must return the explicit observer")
	}
}

func TestNopLoggerDisabled(t *testing.T) {
	if Nop().Enabled(context.Background(), slog.LevelError) {
		t.Error("nop logger must report disabled at every level")
	}
	Nop().Info("must not panic", "k", "v")
}

func TestCLIBuild(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	o, closer, err := CLI{TracePath: trace, MetricsPath: metrics, LogLevel: "warn"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Trace == nil || o.Log == nil {
		t.Fatalf("observer incomplete: %+v", o)
	}
	o.Counter("c").Inc()
	o.Tracer().Event("e", 0, time.Second)
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, metrics} {
		b, err := os.ReadFile(p)
		if err != nil || len(b) == 0 {
			t.Errorf("%s: err=%v len=%d", p, err, len(b))
		}
	}

	// Empty CLI: fully disabled.
	o2, closer2, err := CLI{}.Build()
	if err != nil || o2 != nil {
		t.Fatalf("empty CLI: o=%v err=%v", o2, err)
	}
	if err := closer2(); err != nil {
		t.Fatal(err)
	}

	// Bad log level is rejected.
	if _, _, err := (CLI{LogLevel: "shout"}).Build(); err == nil {
		t.Error("bad log level must error")
	}
}

// Disabled-path benchmarks: the cost instrumented hot loops pay when
// observability is off. All should be ~1 ns (a nil check).

func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Start("s", 0).End(0)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledSpanJSONL(b *testing.B) {
	tr := NewTracer(io.Discard, FormatJSONL)
	for i := 0; i < b.N; i++ {
		tr.Start("s", 0).End(time.Duration(i))
	}
}
