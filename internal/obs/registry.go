package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; a nil *Counter is a valid no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the last set value. All methods are
// safe for concurrent use; a nil *Gauge is a valid no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Exemplar ties a single observed value to the trace that produced it,
// so a histogram bucket can answer "which window was that?". Only the
// most recent exemplar is kept — enough to jump from a latency spike to
// its causal trace via mistral-explain.
type Exemplar struct {
	Value float64 `json:"value"`
	Trace string  `json:"trace"`
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds ("le" semantics): an observation lands in the first bucket
// whose bound is >= the value; values above the last bound land in an
// implicit overflow bucket. All methods are safe for concurrent use; a
// nil *Histogram is a valid no-op.
type Histogram struct {
	bounds   []float64 // sorted, finite upper bounds
	counts   []int64   // len(bounds)+1; accessed atomically
	count    atomic.Int64
	sumBits  atomic.Uint64
	exemplar atomic.Pointer[Exemplar]
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	atomic.AddInt64(&h.counts[i], 1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value and remembers the trace ID that
// produced it as the histogram's current exemplar.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if trace != "" {
		h.exemplar.Store(&Exemplar{Value: v, Trace: trace})
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram: Bounds
// holds the finite upper bounds and Counts one extra trailing overflow
// bucket. P50/P90/P99 are bucket-interpolated quantile estimates (see
// Quantile); they are 0 when the histogram is empty. Exemplar is the
// most recent trace-tagged observation, when any.
type HistogramSnapshot struct {
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
	P50      float64   `json:"p50"`
	P90      float64   `json:"p90"`
	P99      float64   `json:"p99"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the target rank and interpolating linearly inside it, the same
// estimate Prometheus's histogram_quantile computes. The first bucket's
// lower edge is taken as 0 (or its own bound when that is negative), and
// ranks landing in the overflow bucket report the last finite bound — the
// estimate cannot exceed what the buckets resolve. An empty histogram
// reports 0 (not NaN, which would poison JSON encoding).
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, bound := range s.Bounds {
		prev := cum
		cum += s.Counts[i]
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		} else if bound < 0 {
			lower = bound
		}
		if s.Counts[i] == 0 {
			return bound
		}
		return lower + (bound-lower)*(rank-float64(prev))/float64(s.Counts[i])
	}
	return s.Bounds[len(s.Bounds)-1] // rank fell in the overflow bucket
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	s.P50, s.P90, s.P99 = s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
	s.Exemplar = h.exemplar.Load()
	return s
}

// Registry is a concurrency-safe namespace of metrics, created on first
// use. A nil *Registry is a valid disabled registry: its accessors
// return nil metrics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// finite bucket bounds on first use. The first registration's bounds
// win; later calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterValue returns the named counter's value without creating it.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name].Value()
}

// WriteJSON dumps the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// publishMu serializes Publish across every registry: expvar panics on
// re-publication, and a bare Get-then-Publish is a check-then-act race
// when two controllers (or two registries sharing an expvar name) start
// concurrently. The mutex closes that window; the first publisher wins
// and later calls are silent no-ops, never panics.
var publishMu sync.Mutex

// Publish exports the registry under the given expvar name (served at
// /debug/vars when an HTTP server runs). Publishing a name twice —
// even concurrently, even from different registries — is ignored:
// expvar itself panics on re-publication, so this is the single safe
// entry point for sharing a registry name across hierarchy or zone
// controllers.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
