package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// Profiler captures pprof artifacts automatically when a decide call
// blows its wall-clock latency budget. The first breach writes a heap
// profile immediately and arms a CPU profile for the *next* decide
// (CPU profiling must bracket the work, so the breach that reveals the
// problem schedules capture of its successor — in a steady-state
// controller loop the successor exhibits the same pathology). Artifact
// count is capped so a persistently slow run cannot fill the disk.
//
// Profiling is wall-clock territory by definition and never touches
// decision state: a nil *Profiler is a valid disabled profiler, and
// an enabled one only reads timings and writes files.
type Profiler struct {
	mu      sync.Mutex
	dir     string
	budget  time.Duration
	max     int
	written []string
	armCPU  bool
	cpuFile *os.File
}

// NewProfiler builds a profiler writing at most maxArtifacts files to
// dir (created if missing), triggering when a decide exceeds budget.
func NewProfiler(dir string, budget time.Duration, maxArtifacts int) (*Profiler, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("obs: profiler budget must be positive, got %v", budget)
	}
	if maxArtifacts <= 0 {
		maxArtifacts = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profiler dir: %w", err)
	}
	return &Profiler{dir: dir, budget: budget, max: maxArtifacts}, nil
}

// BeginDecide starts a CPU profile for this window when the previous
// window's breach armed one. The trace ID lands in the file name so the
// artifact joins the causal record.
func (p *Profiler) BeginDecide(window int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.armCPU || len(p.written) >= p.max {
		p.armCPU = false
		return
	}
	p.armCPU = false
	path := filepath.Join(p.dir, fmt.Sprintf("cpu_%s.pprof", TraceID(window)))
	f, err := os.Create(path)
	if err != nil {
		return
	}
	// StartCPUProfile fails if another CPU profile is already running
	// (e.g. the binary's own -cpuprofile flag); just drop ours.
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return
	}
	p.cpuFile = f
	p.written = append(p.written, path)
}

// EndDecide finishes an in-flight CPU profile and, when the decide's
// wall duration exceeded the budget, writes a heap profile and arms CPU
// capture for the next decide. Returns the paths written this call.
func (p *Profiler) EndDecide(window int, wall time.Duration) []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		out = append(out, p.written[len(p.written)-1])
		p.cpuFile = nil
	}
	if wall <= p.budget {
		return out
	}
	if len(p.written) < p.max {
		path := filepath.Join(p.dir, fmt.Sprintf("heap_%s.pprof", TraceID(window)))
		if f, err := os.Create(path); err == nil {
			if err := pprof.WriteHeapProfile(f); err == nil {
				p.written = append(p.written, path)
				out = append(out, path)
			}
			f.Close()
		}
	}
	if len(p.written) < p.max {
		p.armCPU = true
	}
	return out
}

// Close stops any in-flight CPU profile (a breach on the final window
// arms one that never gets an EndDecide).
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// Artifacts lists every profile path written so far.
func (p *Profiler) Artifacts() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.written...)
}

// Budget returns the configured wall-clock decide budget.
func (p *Profiler) Budget() time.Duration {
	if p == nil {
		return 0
	}
	return p.budget
}
