package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
)

// CLI carries the observability flags shared by the cmd/ binaries.
type CLI struct {
	// TracePath receives the span trace; a ".json" suffix selects Chrome
	// trace_event format (open in Perfetto), anything else JSONL.
	TracePath string
	// MetricsPath receives the end-of-run metrics registry dump as
	// indented JSON ("-" for stderr).
	MetricsPath string
	// LogLevel enables structured logging to stderr at debug, info,
	// warn, or error.
	LogLevel string
	// PprofAddr serves net/http/pprof, expvar (/debug/vars), and the live
	// Prometheus exposition (/metrics) on this address, e.g.
	// "localhost:6060".
	PprofAddr string
}

// Build assembles an Observer from the CLI knobs plus a close function
// that flushes the trace and writes the metrics dump. When every knob is
// empty it returns (nil, no-op, nil): observability fully disabled.
func (c CLI) Build() (*Observer, func() error, error) {
	nop := func() error { return nil }
	if c.TracePath == "" && c.MetricsPath == "" && c.LogLevel == "" && c.PprofAddr == "" {
		return nil, nop, nil
	}
	o := &Observer{Metrics: NewRegistry()}
	o.Metrics.Publish("mistral")

	var traceFile *os.File
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, nop, fmt.Errorf("obs: %w", err)
		}
		traceFile = f
		format := FormatJSONL
		if strings.HasSuffix(c.TracePath, ".json") {
			format = FormatChrome
		}
		o.Trace = NewTracer(f, format)
	}
	if c.LogLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(c.LogLevel)); err != nil {
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, nop, fmt.Errorf("obs: bad log level %q: %w", c.LogLevel, err)
		}
		o.Log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	if c.PprofAddr != "" {
		// pprof and expvar register on the default mux; wrap it so the
		// Prometheus endpoint rides the same listener.
		mux := http.NewServeMux()
		mux.Handle("/metrics", o.Metrics.MetricsHandler())
		mux.Handle("/", http.DefaultServeMux)
		go func() {
			if err := http.ListenAndServe(c.PprofAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
			}
		}()
	}

	closer := func() error {
		var first error
		if o.Trace != nil {
			if err := o.Trace.Close(); err != nil {
				first = err
			}
			if err := traceFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if c.MetricsPath != "" {
			w := io.Writer(os.Stderr)
			if c.MetricsPath != "-" {
				f, err := os.Create(c.MetricsPath)
				if err != nil {
					if first == nil {
						first = err
					}
					return first
				}
				defer f.Close()
				w = f
			}
			if err := o.Metrics.WriteJSON(w); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return o, closer, nil
}
