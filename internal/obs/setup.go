package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
	"time"

	"github.com/mistralcloud/mistral/internal/obs/tsdb"
)

// CLI carries the observability flags shared by the cmd/ binaries.
type CLI struct {
	// TracePath receives the span trace; a ".json" suffix selects Chrome
	// trace_event format (open in Perfetto), anything else JSONL.
	TracePath string
	// MetricsPath receives the end-of-run metrics registry dump as
	// indented JSON ("-" for stderr).
	MetricsPath string
	// LogLevel enables structured logging to stderr at debug, info,
	// warn, or error.
	LogLevel string
	// PprofAddr serves net/http/pprof, expvar (/debug/vars), the live
	// Prometheus exposition (/metrics), and the ops-plane snapshot
	// (/ops) on this address, e.g. "localhost:6060". Use ":0" forms to
	// bind an ephemeral port; the bound address lands in
	// Observer.HTTPAddr.
	PprofAddr string
	// Handlers mounts extra endpoints on the same listener as /metrics
	// and /ops (mistral-serve rides its control API here). Patterns use
	// net/http.ServeMux syntax; ignored unless PprofAddr is set.
	Handlers map[string]http.Handler
}

// shutdownTimeout bounds how long the closer waits for in-flight HTTP
// requests before forcing the listener shut.
const shutdownTimeout = 2 * time.Second

// Build assembles an Observer from the CLI knobs plus a close function
// that flushes the trace, shuts the HTTP server down gracefully, and
// writes the metrics dump. When every knob is empty it returns
// (nil, no-op, nil): observability fully disabled.
//
// The HTTP listener is bound synchronously, so an unusable PprofAddr
// (port in use, bad host) surfaces as an error here instead of a
// stray goroutine log line after the run already started.
func (c CLI) Build() (*Observer, func() error, error) {
	nop := func() error { return nil }
	if c.TracePath == "" && c.MetricsPath == "" && c.LogLevel == "" && c.PprofAddr == "" {
		return nil, nop, nil
	}
	o := &Observer{Metrics: NewRegistry()}
	o.Metrics.Publish("mistral")

	var traceFile *os.File
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, nop, fmt.Errorf("obs: %w", err)
		}
		traceFile = f
		format := FormatJSONL
		if strings.HasSuffix(c.TracePath, ".json") {
			format = FormatChrome
		}
		o.Trace = NewTracer(f, format)
	}
	if c.LogLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(c.LogLevel)); err != nil {
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, nop, fmt.Errorf("obs: bad log level %q: %w", c.LogLevel, err)
		}
		o.Log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	var srv *http.Server
	var serveErr chan error
	if c.PprofAddr != "" {
		o.Ops = NewOpsState()
		o.History = tsdb.New(tsdb.Options{})
		// pprof and expvar register on the default mux; wrap it so the
		// Prometheus, ops, and trend-query endpoints ride the same
		// listener.
		mux := http.NewServeMux()
		mux.Handle("/metrics", o.Metrics.MetricsHandler())
		mux.Handle("/ops", o.Ops.Handler())
		mux.Handle("/v1/query", o.History.Handler())
		for pattern, h := range c.Handlers {
			mux.Handle(pattern, h)
		}
		mux.Handle("/", http.DefaultServeMux)
		ln, err := net.Listen("tcp", c.PprofAddr)
		if err != nil {
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, nop, fmt.Errorf("obs: http listen %s: %w", c.PprofAddr, err)
		}
		o.HTTPAddr = ln.Addr().String()
		// The listener fronts a long-lived daemon, so a stalled or
		// malicious client must not pin a connection forever. Write stays
		// generous: /debug/pprof/profile?seconds=30 legitimately streams
		// for half a minute.
		srv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       time.Minute,
			WriteTimeout:      5 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		serveErr = make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
	}

	closer := func() error {
		var first error
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				err = srv.Close()
			}
			if err != nil && first == nil {
				first = err
			}
			if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && first == nil {
				first = err
			}
		}
		if o.Trace != nil {
			if err := o.Trace.Close(); err != nil && first == nil {
				first = err
			}
			if err := traceFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if c.MetricsPath != "" {
			w := io.Writer(os.Stderr)
			if c.MetricsPath != "-" {
				f, err := os.Create(c.MetricsPath)
				if err != nil {
					if first == nil {
						first = err
					}
					return first
				}
				defer f.Close()
				w = f
			}
			if err := o.Metrics.WriteJSON(w); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return o, closer, nil
}
