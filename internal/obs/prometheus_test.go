package obs

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusExposition scrapes a populated registry over HTTP and
// parses the exposition back, checking sample values, cumulative bucket
// semantics, and the deterministic sorted ordering.
func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("decisions.total").Add(7)
	r.Counter("actions.total").Add(3)
	r.Gauge("power.watts").Set(82.5)
	h := r.Histogram("search.seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples := map[string]float64{}
	types := map[string]string{}
	var order []string
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			types[name] = typ
			order = append(order, name)
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		samples[key] = f
	}

	for name, typ := range map[string]string{
		"decisions_total": "counter",
		"actions_total":   "counter",
		"power_watts":     "gauge",
		"search_seconds":  "histogram",
	} {
		if types[name] != typ {
			t.Errorf("%s: type %q, want %q", name, types[name], typ)
		}
	}
	// Counters sort before each other, gauges after, histograms last; names
	// within a kind are sorted.
	want := []string{"actions_total", "decisions_total", "power_watts", "search_seconds"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("metric order %v, want %v", order, want)
	}

	if samples["decisions_total"] != 7 || samples["actions_total"] != 3 {
		t.Errorf("counter samples wrong: %v", samples)
	}
	if samples["power_watts"] != 82.5 {
		t.Errorf("gauge sample %v", samples["power_watts"])
	}
	// Buckets are cumulative: 1 obs <= 0.01, 3 <= 0.1, 4 <= 1, 5 total.
	for le, want := range map[string]float64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5} {
		key := `search_seconds_bucket{le="` + le + `"}`
		if samples[key] != want {
			t.Errorf("%s = %v, want %v", key, samples[key], want)
		}
	}
	if samples["search_seconds_count"] != 5 {
		t.Errorf("histogram count %v", samples["search_seconds_count"])
	}
	if got := samples["search_seconds_sum"]; math.Abs(got-5.605) > 1e-12 {
		t.Errorf("histogram sum %v", got)
	}
}

// TestMetricsHandlerNilRegistry checks the endpoint stays mountable with
// observability disabled: an empty exposition, not an error.
func TestMetricsHandlerNilRegistry(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body := rec.Body.String(); body != "" {
		t.Errorf("nil registry served %q", body)
	}
}

// TestPromName checks the metric-name sanitization.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"search.seconds":   "search_seconds",
		"l1/decide-time":   "l1_decide_time",
		"9lives":           "_9lives",
		"already_ok:total": "already_ok:total",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromNameFastPath pins the zero-allocation shortcut: a name that is
// already exposition-legal comes back unchanged without ever touching the
// builder, while names needing rewrites — leading digits, dotted names,
// multi-byte runes — still take the slow path and produce the historical
// output.
func TestPromNameFastPath(t *testing.T) {
	// Clean names — every canonical metric the registry emits — must be
	// returned verbatim.
	for _, name := range []string{"up", "search_expansions_total", "l1:decide_seconds", "Z_09_total"} {
		if got := promName(name); got != name {
			t.Errorf("promName(%q) = %q, want unchanged", name, got)
		}
	}
	if n := testing.AllocsPerRun(100, func() { _ = promName("eval_cache_hits_total") }); n != 0 {
		t.Errorf("clean name allocated %.1f times per call, want 0", n)
	}
	// Dirty names still go through the rewriter byte-for-byte as before.
	for in, want := range map[string]string{
		"9lives":         "_9lives",
		"0":              "_0",
		"search.seconds": "search_seconds",
		"a.b.c":          "a_b_c",
		"µs.total":       "_s_total",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestHistogramQuantiles checks the bucket-interpolated estimates against
// hand-computed values.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20], none higher.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	// p50: rank 10 lands exactly at the first bucket's upper edge.
	if got := s.Quantile(0.50); math.Abs(got-10) > 1e-12 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// p90: rank 18 is 8/10 into the (10,20] bucket -> 18.
	if got := s.Quantile(0.90); math.Abs(got-18) > 1e-12 {
		t.Errorf("p90 = %v, want 18", got)
	}
	if s.P50 != s.Quantile(0.50) || s.P90 != s.Quantile(0.90) || s.P99 != s.Quantile(0.99) {
		t.Error("snapshot P50/P90/P99 disagree with Quantile")
	}

	// Ranks past the last finite bound clamp to it.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want last bound 1", got)
	}

	// Empty histograms report 0, keeping snapshots JSON-encodable.
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	if s := new(Histogram).Snapshot(); s.P99 != 0 {
		t.Errorf("empty snapshot P99 = %v", s.P99)
	}
}
