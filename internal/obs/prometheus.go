package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket` series with `le` labels plus `_sum` and `_count`.
// Metric names are emitted in sorted order so the output is deterministic,
// and characters outside the Prometheus name alphabet are mapped to '_'.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler serves the registry at a Prometheus scrape endpoint. A nil
// registry serves empty exposition (no series), not an error, so the
// endpoint can be mounted unconditionally.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// promFloat formats a float the way Prometheus parsers expect: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a registry name into the Prometheus metric-name alphabet
// [a-zA-Z0-9_:], replacing everything else (dots, slashes, dashes) with
// '_' and prefixing a '_' when the name would start with a digit.
//
// Nearly every registered name is already clean, and every scrape renders
// every name, so the common case returns the input without allocating; a
// byte scan suffices because any non-ASCII rune's UTF-8 bytes all fail
// the alphabet check and route to the rune-wise slow path.
func promName(name string) string {
	clean := len(name) > 0 && !(name[0] >= '0' && name[0] <= '9')
	for i := 0; clean && i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
			clean = false
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
