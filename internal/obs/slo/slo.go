// Package slo is Mistral's self-monitoring engine: declarative service
// level objectives over the controller's own behavior — decision
// latency budget per window, degraded-window burn rate, eval-cache hit
// floor, fault-retry ceiling — evaluated online with SRE-style error
// budget accounting.
//
// Determinism is a design constraint, not an accident: every input the
// engine folds into its state is virtual-time or a deterministic count
// (search time on the simulation clock, degraded flags, retry counts,
// cache counters that are scheduling-independent at a fixed worker
// setting). Wall-clock latency never enters; the Profiler in package
// obs owns that side. Two runs with the same seed and workers produce
// byte-identical Snapshots, which the determinism test asserts.
package slo

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/mistralcloud/mistral/internal/obs"
)

// Schema versions the Snapshot JSON for consumers (ops plane,
// mistral-top, CI golden-schema validation).
const Schema = "mistral.slo/v1"

// Severity levels for alerts.
const (
	// SeverityWarn marks a single objective breach.
	SeverityWarn = "warn"
	// SeverityPage marks an exhausted error budget — the objective has
	// breached more often than its budget allows.
	SeverityPage = "page"
)

// Config declares the objectives. Zero fields take defaults derived
// from the monitoring interval.
type Config struct {
	// Interval is the monitoring interval M (required; used to derive
	// the default decide budget).
	Interval time.Duration
	// DecideBudget is the virtual-time budget for one decide
	// (search+plan on the simulation clock). Default Interval/4.
	DecideBudget time.Duration
	// DecideBudgetFrac is the allowed fraction of invoked windows that
	// may exceed DecideBudget. Default 0.10.
	DecideBudgetFrac float64
	// DegradedFrac is the allowed fraction of windows that may run
	// degraded (fallback decisions). Default 0.05.
	DegradedFrac float64
	// CacheHitFloor is the minimum per-window eval-cache hit rate.
	// The evaluator cache is a within-search dedup structure, so healthy
	// hit rates are low single digits; the floor catches pathological
	// cold-cache windows, not cache inefficiency. Default 0.001 (0.1%).
	CacheHitFloor float64
	// CacheHitFrac is the allowed fraction of measurable windows below
	// the floor. Default 0.50.
	CacheHitFrac float64
	// RetryCeiling is the maximum fault retries per window before the
	// objective breaches. Default 2.
	RetryCeiling int
	// RetryFrac is the allowed fraction of windows above the ceiling.
	// Default 0.10.
	RetryFrac float64
	// GuardRejectFrac is the allowed fraction of guard-checked windows
	// whose plan the admission guard rejected. A guard that refuses most
	// plans means the controller and the safety envelope disagree — the
	// run is technically safe but no longer adapting. Default 0.25.
	GuardRejectFrac float64
	// AnomalyFrac is the allowed fraction of history-checked windows in
	// which the telemetry anomaly detector flagged a deterministic
	// (virtual-time) series. Default 0.10.
	AnomalyFrac float64
	// BurnWindows is the trailing-window span for burn-rate estimation.
	// Default 16.
	BurnWindows int
	// AlertCap bounds the in-memory alert ring. Default 64.
	AlertCap int
}

func (c Config) withDefaults() Config {
	if c.DecideBudget <= 0 {
		if c.Interval > 0 {
			c.DecideBudget = c.Interval / 4
		} else {
			c.DecideBudget = 30 * time.Second
		}
	}
	if c.DecideBudgetFrac <= 0 {
		c.DecideBudgetFrac = 0.10
	}
	if c.DegradedFrac <= 0 {
		c.DegradedFrac = 0.05
	}
	if c.CacheHitFloor <= 0 {
		c.CacheHitFloor = 0.001
	}
	if c.CacheHitFrac <= 0 {
		c.CacheHitFrac = 0.50
	}
	if c.RetryCeiling <= 0 {
		c.RetryCeiling = 2
	}
	if c.RetryFrac <= 0 {
		c.RetryFrac = 0.10
	}
	if c.GuardRejectFrac <= 0 {
		c.GuardRejectFrac = 0.25
	}
	if c.AnomalyFrac <= 0 {
		c.AnomalyFrac = 0.10
	}
	if c.BurnWindows <= 0 {
		c.BurnWindows = 16
	}
	if c.AlertCap <= 0 {
		c.AlertCap = 64
	}
	return c
}

// WindowObs is one completed monitoring window's observations. All
// fields are virtual-time or deterministic counts.
type WindowObs struct {
	// Window is the 0-based window index (the trace identity).
	Window int
	// Time is the virtual timestamp of the window start.
	Time time.Duration
	// Invoked reports whether the controller actually ran (adaptive
	// strategies may skip stable windows).
	Invoked bool
	// Degraded reports a fallback decision (search failed or panicked).
	Degraded bool
	// SearchTime is the decide duration on the simulation clock.
	SearchTime time.Duration
	// Retries is how many queued fault retries executed this window.
	Retries int
	// CacheHits/CacheMisses are cumulative evaluator cache counters;
	// the engine diffs them per window. Zero deltas mark the window
	// unmeasurable for the cache objective (skipped, not breached).
	CacheHits, CacheMisses int64
	// GuardChecked marks a window whose proposed plan went through the
	// admission guard; GuardRejected reports the guard refused it.
	// Windows without a guard (or without a plan) are unmeasurable for
	// the guard-reject objective — runs predating the guard keep their
	// SLO accounting unchanged.
	GuardChecked, GuardRejected bool
	// HistoryChecked marks a window the telemetry history plane scored
	// for anomalies; Anomalies counts the deterministic (virtual-time)
	// series the detector flagged. Windows without a history store are
	// unmeasurable for the history-anomaly objective, so runs predating
	// the telemetry plane keep their SLO accounting unchanged.
	HistoryChecked bool
	Anomalies      int
}

// ObjectiveState is one objective's error-budget accounting.
type ObjectiveState struct {
	Name string `json:"name"`
	// Windows is how many windows were measurable for this objective.
	Windows int `json:"windows"`
	// Breaches is how many measurable windows violated it.
	Breaches int `json:"breaches"`
	// Budget is the allowed breaching fraction.
	Budget float64 `json:"budget"`
	// BudgetUsed is Breaches / (Budget * Windows): 1.0 = budget
	// exhausted.
	BudgetUsed float64 `json:"budget_used"`
	// BurnRate is the trailing-window breach fraction divided by the
	// budget (SRE burn rate: sustained >1 exhausts the budget).
	BurnRate float64 `json:"burn_rate"`
	// Healthy is false while the budget is exhausted (it recovers as
	// clean windows dilute the breach fraction).
	Healthy bool `json:"healthy"`
	// LastBreachWindow is the most recent breaching window (-1 never),
	// i.e. the trace to pull up first.
	LastBreachWindow int    `json:"last_breach_window"`
	LastBreachTrace  string `json:"last_breach_trace,omitempty"`
}

// Alert is one ring entry. TimeSec is virtual; the Trace field joins
// the alert to spans and the provenance record of the same window.
type Alert struct {
	Window    int     `json:"window"`
	Trace     string  `json:"trace"`
	TimeSec   float64 `json:"t_sec"`
	Objective string  `json:"objective"`
	Severity  string  `json:"severity"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// Snapshot is the engine's full serialized state.
type Snapshot struct {
	Schema      string           `json:"schema"`
	Windows     int              `json:"windows"`
	Objectives  []ObjectiveState `json:"objectives"`
	Alerts      []Alert          `json:"alerts"`
	TotalAlerts int              `json:"total_alerts"`
}

// objective is one declarative rule: measure extracts (value,
// threshold, measurable); breach is value vs threshold in the rule's
// direction.
type objective struct {
	name    string
	budget  float64
	measure func(e *Engine, w WindowObs) (value, threshold float64, measurable bool)
	breach  func(value, threshold float64) bool
	format  func(value, threshold float64) string

	windows, breaches int
	lastBreach        int
	ring              []bool // trailing breach flags, BurnWindows cap
	paged             bool
}

// Engine evaluates the objectives window by window. Safe for one
// writer (the scenario loop) plus concurrent Snapshot readers (the ops
// endpoint). A nil *Engine is valid and inert.
type Engine struct {
	mu         sync.Mutex
	cfg        Config
	objectives []*objective
	windows    int
	alerts     []Alert
	total      int
	lastHits   int64
	lastMisses int64

	breachCount *obs.Counter
	alertCount  *obs.Counter
	reg         *obs.Registry
}

// New builds an engine over cfg, registering its metrics on the
// observer's registry (nil-safe).
func New(cfg Config, o *obs.Observer) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg}
	if o != nil {
		e.reg = o.Metrics
	}
	e.breachCount = e.reg.Counter("slo_breaches_total")
	e.alertCount = e.reg.Counter("slo_alerts_total")
	e.objectives = []*objective{
		{
			name:   "decide-latency",
			budget: cfg.DecideBudgetFrac,
			measure: func(_ *Engine, w WindowObs) (float64, float64, bool) {
				return w.SearchTime.Seconds(), cfg.DecideBudget.Seconds(), w.Invoked
			},
			breach: func(v, t float64) bool { return v > t },
			format: func(v, t float64) string {
				return fmt.Sprintf("decide took %.2fs virtual, budget %.2fs", v, t)
			},
		},
		{
			name:   "degraded-burn",
			budget: cfg.DegradedFrac,
			measure: func(_ *Engine, w WindowObs) (float64, float64, bool) {
				v := 0.0
				if w.Degraded {
					v = 1
				}
				return v, 0.5, true
			},
			breach: func(v, t float64) bool { return v > t },
			format: func(_, _ float64) string { return "window ran degraded (fallback decision)" },
		},
		{
			name:   "eval-cache-hit",
			budget: cfg.CacheHitFrac,
			measure: func(e *Engine, w WindowObs) (float64, float64, bool) {
				dh := w.CacheHits - e.lastHits
				dm := w.CacheMisses - e.lastMisses
				if dh+dm <= 0 {
					return 0, cfg.CacheHitFloor, false
				}
				return float64(dh) / float64(dh+dm), cfg.CacheHitFloor, true
			},
			breach: func(v, t float64) bool { return v < t },
			format: func(v, t float64) string {
				return fmt.Sprintf("eval-cache hit rate %.1f%%, floor %.1f%%", v*100, t*100)
			},
		},
		{
			name:   "fault-retry",
			budget: cfg.RetryFrac,
			measure: func(_ *Engine, w WindowObs) (float64, float64, bool) {
				return float64(w.Retries), float64(cfg.RetryCeiling), true
			},
			breach: func(v, t float64) bool { return v > t },
			format: func(v, t float64) string {
				return fmt.Sprintf("%d fault retries, ceiling %d", int(v), int(t))
			},
		},
		{
			name:   "guard-reject",
			budget: cfg.GuardRejectFrac,
			measure: func(_ *Engine, w WindowObs) (float64, float64, bool) {
				v := 0.0
				if w.GuardRejected {
					v = 1
				}
				return v, 0.5, w.GuardChecked
			},
			breach: func(v, t float64) bool { return v > t },
			format: func(_, _ float64) string {
				return "admission guard rejected the window's plan"
			},
		},
		{
			name:   "history-anomaly",
			budget: cfg.AnomalyFrac,
			measure: func(_ *Engine, w WindowObs) (float64, float64, bool) {
				return float64(w.Anomalies), 0.5, w.HistoryChecked
			},
			breach: func(v, t float64) bool { return v > t },
			format: func(v, _ float64) string {
				return fmt.Sprintf("telemetry history flagged %d anomalous series", int(v))
			},
		},
	}
	for _, ob := range e.objectives {
		ob.lastBreach = -1
	}
	return e
}

// ObserveWindow folds one window into every objective and returns the
// alerts it raised (already appended to the ring).
func (e *Engine) ObserveWindow(w WindowObs) []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.windows++
	var fired []Alert
	for _, ob := range e.objectives {
		value, threshold, measurable := ob.measure(e, w)
		if !measurable {
			continue
		}
		ob.windows++
		bad := ob.breach(value, threshold)
		ob.ring = append(ob.ring, bad)
		if len(ob.ring) > e.cfg.BurnWindows {
			ob.ring = ob.ring[1:]
		}
		if bad {
			ob.breaches++
			ob.lastBreach = w.Window
			e.breachCount.Inc()
			e.reg.Counter("slo_breach_" + metricName(ob.name) + "_total").Inc()
			fired = append(fired, e.alertLocked(ob, w, SeverityWarn, value, threshold))
		}
		// Page on sustained exhaustion, evaluated every measurable window:
		// a grace period of BurnWindows keeps a single cold-start breach
		// (1 breach / budget*1 window always exceeds 1) from latching the
		// page, and a budget that recovers below 1 re-arms it.
		switch used := budgetUsed(ob); {
		case used >= 1 && !ob.paged && ob.windows >= e.cfg.BurnWindows:
			ob.paged = true
			fired = append(fired, e.alertLocked(ob, w, SeverityPage, value, threshold))
		case used < 1:
			ob.paged = false
		}
	}
	e.lastHits, e.lastMisses = w.CacheHits, w.CacheMisses
	e.publishGaugesLocked()
	return fired
}

func (e *Engine) alertLocked(ob *objective, w WindowObs, severity string, value, threshold float64) Alert {
	msg := ob.format(value, threshold)
	if severity == SeverityPage {
		msg = fmt.Sprintf("error budget exhausted (%d/%d windows breached, budget %.0f%%)",
			ob.breaches, ob.windows, ob.budget*100)
	}
	a := Alert{
		Window:    w.Window,
		Trace:     obs.TraceID(w.Window),
		TimeSec:   w.Time.Seconds(),
		Objective: ob.name,
		Severity:  severity,
		Value:     value,
		Threshold: threshold,
		Message:   msg,
	}
	e.alerts = append(e.alerts, a)
	if len(e.alerts) > e.cfg.AlertCap {
		e.alerts = e.alerts[len(e.alerts)-e.cfg.AlertCap:]
	}
	e.total++
	e.alertCount.Inc()
	return a
}

func budgetUsed(ob *objective) float64 {
	allowed := ob.budget * float64(ob.windows)
	if allowed <= 0 {
		if ob.breaches > 0 {
			return float64(ob.breaches)
		}
		return 0
	}
	return float64(ob.breaches) / allowed
}

func burnRate(ob *objective) float64 {
	if len(ob.ring) == 0 || ob.budget <= 0 {
		return 0
	}
	bad := 0
	for _, b := range ob.ring {
		if b {
			bad++
		}
	}
	return (float64(bad) / float64(len(ob.ring))) / ob.budget
}

// metricName maps an objective name into the metric-name alphabet.
func metricName(s string) string { return strings.ReplaceAll(s, "-", "_") }

func (e *Engine) publishGaugesLocked() {
	if e.reg == nil {
		return
	}
	for _, ob := range e.objectives {
		n := metricName(ob.name)
		e.reg.Gauge("slo_budget_used_" + n).Set(budgetUsed(ob))
		e.reg.Gauge("slo_burn_rate_" + n).Set(burnRate(ob))
	}
}

// ObjectivePersist is one objective's mutable accounting in serializable
// form.
type ObjectivePersist struct {
	Name       string `json:"name"`
	Windows    int    `json:"windows"`
	Breaches   int    `json:"breaches"`
	LastBreach int    `json:"last_breach"`
	Ring       []bool `json:"ring,omitempty"`
	Paged      bool   `json:"paged,omitempty"`
}

// PersistState is the engine's complete mutable state in serializable
// form, for checkpoint/restore. Unlike Snapshot — a derived reporting view
// — it carries the raw accounting ObserveWindow folds into, including the
// cumulative cache-counter baseline the eval-cache objective diffs
// against. Configuration is not included: state is restored into an engine
// freshly built with the same Config.
type PersistState struct {
	Windows    int                `json:"windows"`
	Alerts     []Alert            `json:"alerts,omitempty"`
	Total      int                `json:"total"`
	LastHits   int64              `json:"last_hits"`
	LastMisses int64              `json:"last_misses"`
	Objectives []ObjectivePersist `json:"objectives"`
}

// Persist captures the engine's mutable state; a nil engine yields a nil
// pointer.
func (e *Engine) Persist() *PersistState {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &PersistState{
		Windows:    e.windows,
		Alerts:     append([]Alert(nil), e.alerts...),
		Total:      e.total,
		LastHits:   e.lastHits,
		LastMisses: e.lastMisses,
	}
	for _, ob := range e.objectives {
		s.Objectives = append(s.Objectives, ObjectivePersist{
			Name:       ob.name,
			Windows:    ob.windows,
			Breaches:   ob.breaches,
			LastBreach: ob.lastBreach,
			Ring:       append([]bool(nil), ob.ring...),
			Paged:      ob.paged,
		})
	}
	return s
}

// Restore overwrites the engine's mutable state with a captured one,
// matching objectives by name (unknown names are ignored). Nil engine or
// nil state is a no-op.
func (e *Engine) Restore(s *PersistState) {
	if e == nil || s == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.windows = s.Windows
	e.alerts = append([]Alert(nil), s.Alerts...)
	e.total = s.Total
	e.lastHits = s.LastHits
	e.lastMisses = s.LastMisses
	byName := make(map[string]*objective, len(e.objectives))
	for _, ob := range e.objectives {
		byName[ob.name] = ob
	}
	for _, os := range s.Objectives {
		ob := byName[os.Name]
		if ob == nil {
			continue
		}
		ob.windows = os.Windows
		ob.breaches = os.Breaches
		ob.lastBreach = os.LastBreach
		ob.ring = append([]bool(nil), os.Ring...)
		ob.paged = os.Paged
	}
	e.publishGaugesLocked()
}

// Snapshot returns the engine's deterministic serialized state.
func (e *Engine) Snapshot() Snapshot {
	if e == nil {
		return Snapshot{Schema: Schema, Objectives: []ObjectiveState{}, Alerts: []Alert{}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Snapshot{
		Schema:      Schema,
		Windows:     e.windows,
		Objectives:  make([]ObjectiveState, 0, len(e.objectives)),
		Alerts:      append([]Alert{}, e.alerts...),
		TotalAlerts: e.total,
	}
	for _, ob := range e.objectives {
		st := ObjectiveState{
			Name:             ob.name,
			Windows:          ob.windows,
			Breaches:         ob.breaches,
			Budget:           ob.budget,
			BudgetUsed:       budgetUsed(ob),
			BurnRate:         burnRate(ob),
			Healthy:          budgetUsed(ob) < 1,
			LastBreachWindow: ob.lastBreach,
		}
		if ob.lastBreach >= 0 {
			st.LastBreachTrace = obs.TraceID(ob.lastBreach)
		}
		s.Objectives = append(s.Objectives, st)
	}
	return s
}
