package slo

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/obs"
)

// windows synthesizes a deterministic observation stream: mostly
// healthy, with latency breaches, degraded windows, retry storms, and
// evolving cache counters at fixed indices.
func windows(n int) []WindowObs {
	var out []WindowObs
	hits, misses := int64(0), int64(0)
	for i := 0; i < n; i++ {
		w := WindowObs{
			Window:     i,
			Time:       time.Duration(i) * 2 * time.Minute,
			Invoked:    i%4 != 3,
			SearchTime: 5 * time.Second,
		}
		if i%7 == 2 {
			w.SearchTime = 45 * time.Second // breaches the 30s budget
		}
		if i%11 == 5 {
			w.Degraded = true
		}
		if i%13 == 6 {
			w.Retries = 4
		}
		if w.Invoked {
			hits += int64(10 + i%3)
			misses += int64(i % 4)
		}
		w.CacheHits, w.CacheMisses = hits, misses
		out = append(out, w)
	}
	return out
}

// TestEngineDeterminism is the contract the package doc promises: two
// engines fed the same observation stream produce deeply equal
// snapshots — same breaches, budgets, burn rates, and alert rings.
func TestEngineDeterminism(t *testing.T) {
	run := func() Snapshot {
		e := New(Config{}, nil)
		for _, w := range windows(100) {
			e.ObserveWindow(w)
		}
		return e.Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical streams diverged:\n%+v\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("serialized snapshots differ")
	}
	if a.Schema != Schema || a.Windows != 100 || len(a.Objectives) != 6 {
		t.Fatalf("snapshot shape %+v", a)
	}
}

// TestDecideLatencyObjective pins the budget accounting on the latency
// objective: breaches only on invoked windows over budget, warn alerts
// per breach, and a single page once the error budget exhausts.
func TestDecideLatencyObjective(t *testing.T) {
	e := New(Config{DecideBudget: 30 * time.Second, DecideBudgetFrac: 0.10}, nil)
	var pages, warns int
	for i := 0; i < 20; i++ {
		w := WindowObs{Window: i, Invoked: true, SearchTime: 5 * time.Second}
		if i < 3 {
			w.SearchTime = time.Minute // breach 3 of 20
		}
		for _, a := range e.ObserveWindow(w) {
			if a.Objective != "decide-latency" {
				continue
			}
			switch a.Severity {
			case SeverityWarn:
				warns++
			case SeverityPage:
				pages++
			}
			if a.Trace != obs.TraceID(a.Window) {
				t.Fatalf("alert trace %q for window %d", a.Trace, a.Window)
			}
		}
	}
	if warns != 3 {
		t.Fatalf("%d warns, want 3", warns)
	}
	// 3 breaches vs a budget of 0.10*N: exhausted well before window 20,
	// and the page must fire exactly once.
	if pages != 1 {
		t.Fatalf("%d pages, want 1", pages)
	}
	var st *ObjectiveState
	snap := e.Snapshot()
	for i := range snap.Objectives {
		if snap.Objectives[i].Name == "decide-latency" {
			st = &snap.Objectives[i]
		}
	}
	if st == nil || st.Healthy || st.Breaches != 3 || st.Windows != 20 {
		t.Fatalf("state %+v", st)
	}
	if st.LastBreachWindow != 2 || st.LastBreachTrace != "w000002" {
		t.Fatalf("last breach %d %q", st.LastBreachWindow, st.LastBreachTrace)
	}
	if st.BudgetUsed <= 1 {
		t.Fatalf("budget used %v, want >1 (exhausted)", st.BudgetUsed)
	}
}

// TestCacheObjectiveMeasurability: zero counter deltas mark a window
// unmeasurable (skipped, not breached); a low-hit window breaches.
func TestCacheObjectiveMeasurability(t *testing.T) {
	e := New(Config{CacheHitFloor: 0.60}, nil)
	e.ObserveWindow(WindowObs{Window: 0})                                  // no delta: skip
	e.ObserveWindow(WindowObs{Window: 1, CacheHits: 90, CacheMisses: 10})  // 90%: ok
	e.ObserveWindow(WindowObs{Window: 2, CacheHits: 91, CacheMisses: 109}) // 1/100: breach
	e.ObserveWindow(WindowObs{Window: 3, CacheHits: 91, CacheMisses: 109}) // no delta: skip
	for _, st := range e.Snapshot().Objectives {
		if st.Name != "eval-cache-hit" {
			continue
		}
		if st.Windows != 2 || st.Breaches != 1 || st.LastBreachWindow != 2 {
			t.Fatalf("cache objective %+v", st)
		}
		return
	}
	t.Fatal("eval-cache-hit objective missing")
}

// TestAlertRingCap bounds the in-memory ring while TotalAlerts keeps
// the true count.
func TestAlertRingCap(t *testing.T) {
	e := New(Config{AlertCap: 5, DegradedFrac: 0.9}, nil)
	for i := 0; i < 30; i++ {
		e.ObserveWindow(WindowObs{Window: i, Degraded: true})
	}
	s := e.Snapshot()
	if len(s.Alerts) != 5 {
		t.Fatalf("ring %d, want 5", len(s.Alerts))
	}
	if s.TotalAlerts < 30 {
		t.Fatalf("total %d, want >=30", s.TotalAlerts)
	}
	// The ring keeps the most recent alerts.
	if got := s.Alerts[len(s.Alerts)-1].Window; got != 29 {
		t.Fatalf("newest ring alert window %d", got)
	}
}

// TestEngineMetrics checks breaches land on the observer's registry
// under per-objective names.
func TestEngineMetrics(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	e := New(Config{}, o)
	e.ObserveWindow(WindowObs{Window: 0, Degraded: true})
	if got := o.Metrics.CounterValue("slo_breach_degraded_burn_total"); got != 1 {
		t.Fatalf("breach counter %d", got)
	}
	if got := o.Metrics.CounterValue("slo_breaches_total"); got != 1 {
		t.Fatalf("total breach counter %d", got)
	}
	if got := o.Metrics.CounterValue("slo_alerts_total"); got < 1 {
		t.Fatalf("alert counter %d", got)
	}
}

// TestNilEngine proves the disabled engine is inert.
func TestNilEngine(t *testing.T) {
	var e *Engine
	if e.ObserveWindow(WindowObs{}) != nil {
		t.Fatal("nil engine fired alerts")
	}
	s := e.Snapshot()
	if s.Schema != Schema || s.Objectives == nil || s.Alerts == nil {
		t.Fatalf("nil snapshot %+v", s)
	}
}
