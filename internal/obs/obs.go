// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms) exported
// via expvar and dumpable as JSON, hierarchical virtual-time trace spans
// written as JSONL or Chrome trace_event JSON (openable in Perfetto), and
// structured logging over log/slog with a no-op default.
//
// Everything is nil-safe: a nil *Observer, *Registry, *Counter, *Gauge,
// *Histogram, *Tracer, or *Span is a valid disabled instance whose
// methods return immediately. Instrumented hot paths therefore pay only
// a nil check when observability is off — the default — so replay and
// benchmark numbers are unperturbed.
//
// Components resolve their observer once at construction: an explicit
// observer in their options wins, otherwise the process default
// installed with SetDefault. Install the default before building
// evaluators, controllers, testbeds, or scenarios.
package obs

import (
	"context"
	"log/slog"
	"sync/atomic"

	"github.com/mistralcloud/mistral/internal/obs/tsdb"
)

// Observer bundles the three observability sinks threaded through the
// controller stack. Any field may be nil to disable that sink; a nil
// *Observer disables all three.
type Observer struct {
	// Metrics receives counters, gauges, and histograms.
	Metrics *Registry
	// Trace receives hierarchical virtual-time spans.
	Trace *Tracer
	// Log receives structured log records; nil means the no-op logger.
	Log *slog.Logger
	// Ops is the live controller-health surface served at /ops; nil
	// disables it.
	Ops *OpsState
	// History is the windowed telemetry store behind /v1/query; nil
	// disables per-window history retention.
	History *tsdb.Store
	// HTTPAddr is the bound address of the pprof/metrics/ops HTTP
	// server when one is running ("" otherwise). Informational only.
	HTTPAddr string
}

// HistoryStore returns the observer's telemetry history store, or nil (a
// valid disabled store).
func (o *Observer) HistoryStore() *tsdb.Store {
	if o == nil {
		return nil
	}
	return o.History
}

// Counter returns the named counter from the observer's registry, or nil
// (a valid no-op counter) when metrics are disabled.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil when metrics are disabled.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram with the given finite bucket
// bounds, or nil when metrics are disabled. The bounds of the first
// registration win.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, bounds)
}

// Logger returns the observer's logger, or the shared no-op logger.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return nopLogger
	}
	return o.Log
}

// Tracer returns the observer's tracer (possibly nil, a valid disabled
// tracer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

var defaultObserver atomic.Pointer[Observer]

// SetDefault installs the process-wide observer picked up by components
// whose options carry no explicit one. Pass nil to disable (the initial
// state). Components resolve the default once at construction, so
// install it before building them.
func SetDefault(o *Observer) { defaultObserver.Store(o) }

// Default returns the process-wide observer (nil when disabled).
func Default() *Observer { return defaultObserver.Load() }

// Resolve returns explicit when non-nil, otherwise the process default.
func Resolve(explicit *Observer) *Observer {
	if explicit != nil {
		return explicit
	}
	return Default()
}

// nopHandler discards every record. (slog.DiscardHandler only exists
// from Go 1.24; the module targets 1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// Nop returns the shared no-op logger. Its Enabled reports false for
// every level, so callers can gate expensive attribute computation.
func Nop() *slog.Logger { return nopLogger }
