package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/mistralcloud/mistral/internal/obs/tsdb"
)

// OpsSchema versions the /ops JSON snapshot so consumers (mistral-top,
// CI scrapes) can reject incompatible payloads.
const OpsSchema = "mistral.ops/v1"

// DefaultSlowWindows is how many slowest windows an OpsState retains.
const DefaultSlowWindows = 10

// SlowWindow is one entry in the top-N slowest-decide leaderboard.
// WallMS is explicitly wall-clock (observational); everything else is
// virtual-time or count data.
type SlowWindow struct {
	Window        int     `json:"window"`
	Trace         string  `json:"trace"`
	WallMS        float64 `json:"wall_ms"`
	SearchTimeSec float64 `json:"search_time_sec"`
	Degraded      bool    `json:"degraded,omitempty"`
}

// OpsSnapshot is the controller-health document served at /ops. Wall
// clock appears only in the explicitly-labeled *_ms / *_unix_ms fields;
// all other quantities are virtual-time or deterministic counts.
type OpsSnapshot struct {
	Schema      string  `json:"schema"`
	Strategy    string  `json:"strategy,omitempty"`
	IntervalSec float64 `json:"interval_sec,omitempty"`
	// Window/Trace identify the most recently completed window.
	Window           int             `json:"window"`
	Trace            string          `json:"trace,omitempty"`
	TimeSec          float64         `json:"t_sec"`
	Windows          int             `json:"windows"`
	CumUtility       float64         `json:"cum_utility_dollars"`
	DegradedWindows  int             `json:"degraded_windows"`
	DecideErrors     int             `json:"decide_errors"`
	Retries          int             `json:"retries"`
	HostCrashes      int             `json:"host_crashes"`
	LastDecideWallMS float64         `json:"last_decide_wall_ms"`
	SLO              json.RawMessage `json:"slo,omitempty"`
	SlowestWindows   []SlowWindow    `json:"slowest_windows,omitempty"`
	// History digests the telemetry store's retained series (per-series
	// min/max/last plus a sparkline vector of the newest values),
	// refreshed by the scenario loop after each window.
	History       []tsdb.Summary `json:"history,omitempty"`
	UpdatedUnixMS int64          `json:"updated_unix_ms,omitempty"`
}

// OpsWindow is one completed window's contribution to the ops state.
type OpsWindow struct {
	Window     int
	Trace      string
	TimeSec    float64
	CumUtility float64
	Degraded   bool
	Error      bool
	Retries    int
	Crashes    int
	// WallMS is the decide call's wall-clock duration in milliseconds
	// (observational only).
	WallMS        float64
	SearchTimeSec float64
}

// OpsState is the live controller-health surface behind /ops. The
// scenario loop updates it once per window; the HTTP handler and
// mistral-top read snapshots concurrently. A nil *OpsState is a valid
// disabled state: every method returns immediately, so the default
// (observability off) path pays only a nil check.
type OpsState struct {
	mu   sync.Mutex
	snap OpsSnapshot
	topN int
}

// NewOpsState builds an ops state keeping the DefaultSlowWindows
// slowest windows.
func NewOpsState() *OpsState {
	return &OpsState{snap: OpsSnapshot{Schema: OpsSchema, Window: -1}, topN: DefaultSlowWindows}
}

// BeginRun resets per-run aggregates and records the strategy under
// observation. Sequential runs (experiment grids) each re-begin.
func (s *OpsState) BeginRun(strategy string, interval time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap = OpsSnapshot{
		Schema:      OpsSchema,
		Strategy:    strategy,
		IntervalSec: interval.Seconds(),
		Window:      -1,
	}
}

// RecordWindow folds one completed window into the state.
func (s *OpsState) RecordWindow(w OpsWindow) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := &s.snap
	sn.Window = w.Window
	sn.Trace = w.Trace
	sn.TimeSec = w.TimeSec
	sn.Windows++
	sn.CumUtility = w.CumUtility
	if w.Degraded {
		sn.DegradedWindows++
	}
	if w.Error {
		sn.DecideErrors++
	}
	sn.Retries += w.Retries
	sn.HostCrashes += w.Crashes
	sn.LastDecideWallMS = w.WallMS
	sn.SlowestWindows = insertSlowWindow(sn.SlowestWindows, SlowWindow{
		Window:        w.Window,
		Trace:         w.Trace,
		WallMS:        w.WallMS,
		SearchTimeSec: w.SearchTimeSec,
		Degraded:      w.Degraded,
	}, s.topN)
}

// insertSlowWindow places one window into the descending-WallMS top-N
// leaderboard: O(topN) per window instead of re-sorting the whole slice.
// Ties keep arrival order (the stable-sort semantics the leaderboard
// always had): a new entry goes after existing entries of equal WallMS.
func insertSlowWindow(top []SlowWindow, w SlowWindow, topN int) []SlowWindow {
	if topN <= 0 {
		return top
	}
	if len(top) >= topN && w.WallMS <= top[len(top)-1].WallMS {
		return top // below (or tied with) the cut line: stable order drops it
	}
	i := len(top)
	for i > 0 && top[i-1].WallMS < w.WallMS {
		i--
	}
	top = append(top, SlowWindow{})
	copy(top[i+1:], top[i:])
	top[i] = w
	if len(top) > topN {
		top = top[:topN]
	}
	return top
}

// SetSLO attaches the SLO engine's marshaled snapshot, refreshed by
// the scenario loop after each window.
func (s *OpsState) SetSLO(raw json.RawMessage) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap.SLO = raw
}

// SetHistory attaches the telemetry store's per-series digests,
// refreshed by the scenario loop after each window.
func (s *OpsState) SetHistory(sums []tsdb.Summary) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap.History = sums
}

// Snapshot returns a copy of the current state, stamping the wall-clock
// update time (the one intentionally nondeterministic field, labeled as
// such).
func (s *OpsState) Snapshot() OpsSnapshot {
	if s == nil {
		return OpsSnapshot{Schema: OpsSchema, Window: -1}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := s.snap
	sn.SlowestWindows = append([]SlowWindow(nil), s.snap.SlowestWindows...)
	sn.SLO = append(json.RawMessage(nil), s.snap.SLO...)
	sn.History = append([]tsdb.Summary(nil), s.snap.History...)
	sn.UpdatedUnixMS = time.Now().UnixMilli()
	return sn
}

// Handler serves the snapshot as JSON — the /ops endpoint mounted next
// to /metrics. Works on a nil state (serves the empty document), so the
// route can always be mounted.
func (s *OpsState) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
}

// OpsState returns the observer's ops surface, or nil (a valid
// disabled state).
func (o *Observer) OpsState() *OpsState {
	if o == nil {
		return nil
	}
	return o.Ops
}
