package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerJSONLNesting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatJSONL)
	root := tr.Start("decide", 0, Attr{"strategy", "Mistral"})
	pp := tr.Start("perfpwr", 0)
	pp.End(0, Attr{"ideal_net_rate", 0.01})
	search := tr.Start("search", 0)
	search.End(5*time.Second, Attr{"expanded", 42})
	tr.Event("action:migrate", 0, 30*time.Second, Attr{"vm", "web-0"})
	root.End(30 * time.Second)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Spans() != 4 {
		t.Fatalf("spans = %d, want 4", tr.Spans())
	}

	byName := map[string]spanRecord{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec spanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		byName[rec.Name] = rec
	}
	dec := byName["decide"]
	if dec.ID == 0 || dec.Parent != 0 {
		t.Fatalf("decide span = %+v, want root", dec)
	}
	for _, name := range []string{"perfpwr", "search", "action:migrate"} {
		if byName[name].Parent != dec.ID {
			t.Errorf("%s parent = %d, want decide id %d", name, byName[name].Parent, dec.ID)
		}
	}
	if got := byName["search"].VEndUS; got != 5_000_000 {
		t.Errorf("search v_end_us = %d, want 5000000", got)
	}
	if byName["search"].Attrs["expanded"].(float64) != 42 {
		t.Errorf("search attrs = %v", byName["search"].Attrs)
	}
}

func TestTracerChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatChrome)
	root := tr.Start("decide", time.Minute)
	s := tr.Start("search", time.Minute)
	s.End(time.Minute + 2*time.Second)
	tr.Event("action:increase-cpu", time.Minute, time.Minute+10*time.Second)
	root.End(time.Minute + 10*time.Second)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	var decideID float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "decide" {
			decideID = ev.Args["id"].(float64)
			if ev.TS != 60_000_000 || ev.Dur != 10_000_000 {
				t.Errorf("decide ts/dur = %v/%v", ev.TS, ev.Dur)
			}
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "decide" {
			continue
		}
		if ev.Args["parent"].(float64) != decideID {
			t.Errorf("%s parent = %v, want %v", ev.Name, ev.Args["parent"], decideID)
		}
		// Children must be temporally contained in the parent.
		if ev.TS < 60_000_000 || ev.TS+ev.Dur > 70_000_000 {
			t.Errorf("%s [%v, %v] escapes parent [6e7, 7e7]", ev.Name, ev.TS, ev.TS+ev.Dur)
		}
	}
}

func TestTracerEmptyChromeClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatChrome)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace invalid: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents missing or not an array: %v", doc)
	}
}

func TestTracerOutOfOrderEnd(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatJSONL)
	a := tr.Start("a", 0)
	b := tr.Start("b", 0)
	a.End(time.Second) // ends before b: b is popped along with it
	b.End(2 * time.Second)
	c := tr.Start("c", 2*time.Second)
	c.End(3 * time.Second)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec spanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Name == "c" && rec.Parent != 0 {
			t.Errorf("c parent = %d, want 0 (stack should be clean)", rec.Parent)
		}
	}
}
