package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestBuildHTTPGracefulShutdown exercises the full HTTP life cycle: an
// ephemeral-port bind lands the real address in Observer.HTTPAddr, the
// /metrics and /ops endpoints serve while the run is live, and the
// closer shuts the listener down cleanly (no leaked serve goroutine,
// no error from the drained channel).
func TestBuildHTTPGracefulShutdown(t *testing.T) {
	ob, closer, err := CLI{PprofAddr: "127.0.0.1:0"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ob == nil || ob.HTTPAddr == "" {
		t.Fatalf("observer %v addr %q", ob, ob.HTTPAddr)
	}
	if ob.OpsState() == nil {
		t.Fatal("PprofAddr set but no ops state")
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + ob.HTTPAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	ob.Metrics.Counter("windows_total").Inc()
	if body := get("/metrics"); !strings.Contains(body, "windows_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	var snap OpsSnapshot
	if err := json.Unmarshal([]byte(get("/ops")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != OpsSchema {
		t.Fatalf("/ops schema %q, want %q", snap.Schema, OpsSchema)
	}

	if err := closer(); err != nil {
		t.Fatalf("closer: %v", err)
	}
	// The listener must actually be gone, not just draining.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := http.Get("http://" + ob.HTTPAddr + "/ops")
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/ops still serving after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBuildHTTPListenError pins the fix for the silent-failure mode:
// binding a port that is already taken must surface as an error from
// Build, not a log line from a goroutine after the run started.
func TestBuildHTTPListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ob, closer, err := CLI{PprofAddr: ln.Addr().String()}.Build()
	if err == nil {
		closer()
		t.Fatalf("Build bound an occupied port, observer %+v", ob)
	}
	if ob != nil {
		t.Fatalf("error path returned observer %+v", ob)
	}
	if closer == nil || closer() != nil {
		t.Fatal("error path must return a working no-op closer")
	}
}
