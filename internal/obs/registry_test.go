package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one counter, gauge, and histogram from
// many goroutines; run under -race it proves the registry needs no
// external locking.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", []float64{10, 100}).Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	h := r.Histogram("h", nil).Snapshot()
	if h.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != count %d", sum, h.Count)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	// Exactly on a bound lands in that bound's bucket (inclusive "le").
	for _, v := range []float64{-5, 0.5, 1, 1.5, 10, 99.9, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{3, 2, 2, 2} // le1: {-5,0.5,1}; le10: {1.5,10}; le100: {99.9,100}; overflow: {101,1e9}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram([]float64{100, 1, 10})
	h.Observe(5)
	s := h.Snapshot()
	if s.Bounds[0] != 1 || s.Bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", s.Bounds)
	}
	if s.Counts[1] != 1 { // 5 <= 10
		t.Errorf("counts = %v, want observation in bucket 1", s.Counts)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("temp").Set(1.5)
	r.Histogram("lat", []float64{1, 2}).Observe(1.2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["reqs"] != 3 || s.Gauges["temp"] != 1.5 || s.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot mismatch: %+v", s)
	}
}

func TestRegistryPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Publish("obs_test_registry")
	r.Publish("obs_test_registry") // second publish must not panic
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value is not valid JSON: %v", err)
	}
	if s.Counters["x"] != 1 {
		t.Errorf("expvar snapshot = %+v", s)
	}
}

// TestNilSafety exercises every nil fast path the hot loops rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	if r.CounterValue("c") != 0 || r.Snapshot().Counters == nil {
		t.Error("nil registry must snapshot empty")
	}
	var o *Observer
	o.Counter("c").Add(2)
	o.Gauge("g").Set(2)
	o.Histogram("h", nil).Observe(2)
	if o.Logger() == nil || o.Logger().Enabled(nil, 0) {
		t.Error("nil observer logger must be the disabled nop")
	}
	o.Tracer().Event("e", 0, 1)
	o.Tracer().Start("s", 0).End(1)
	if err := o.Tracer().Close(); err != nil {
		t.Error(err)
	}
}
