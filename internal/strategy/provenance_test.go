package strategy

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/testbed"
)

// replayMistralProvenance runs the seeded scenario under a fresh hierarchy
// with the flight recorder on, returning the raw JSONL bytes it produced.
func replayMistralProvenance(t *testing.T, seed uint64, workers int) []byte {
	t.Helper()
	l := newLab(t)
	m, err := NewMistral(l.eval, MistralConfig{
		HostGroups: [][]string{l.cat.HostNames()[:2], l.cat.HostNames()[2:]},
		Search:     core.SearchOptions{MaxExpansions: 800, TimePerChild: time.Millisecond},
		Workers:    workers,
		Provenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := seededTraces(l, seed)
	tb, err := testbed.New(l.cat, l.apps, l.cfg, traces.At(0), nil, testbed.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = scenario.Run(tb, m, scenario.RunConfig{
		Traces:     traces,
		Duration:   45 * time.Minute,
		Utility:    l.util,
		Workers:    workers,
		Provenance: provenance.NewRecorder(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProvenanceWorkersDeterminism is the acceptance gate for the flight
// recorder under the concurrent evaluation plane: a full hierarchy replay
// must serialize byte-identical provenance streams at every Workers
// setting — vertex digests, rejected-alternative order, and ledger floats
// included — and the streams must pass the mistral-explain --check
// validation.
func TestProvenanceWorkersDeterminism(t *testing.T) {
	for _, seed := range []uint64{7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref := replayMistralProvenance(t, seed, 1)
			if len(ref) == 0 {
				t.Fatal("no provenance recorded")
			}
			for _, workers := range []int{4, 8} {
				got := replayMistralProvenance(t, seed, workers)
				if !bytes.Equal(ref, got) {
					t.Fatalf("provenance stream diverges between Workers=1 and Workers=%d:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, firstDiff(ref, got), firstDiff(got, ref))
				}
			}
			recs, err := provenance.ReadAll(bytes.NewReader(ref))
			if err != nil {
				t.Fatal(err)
			}
			if err := provenance.CheckStream(recs); err != nil {
				t.Errorf("stream fails validation: %v", err)
			}
		})
	}
}

// firstDiff returns the line of a where a and b first disagree.
func firstDiff(a, b []byte) []byte {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range la {
		if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
			return la[i]
		}
	}
	return nil
}
