package strategy

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
)

func TestPwrCostScalesUpWhenTargetsViolated(t *testing.T) {
	l := newLab(t)
	pc := NewPwrCost(l.eval)
	rates := map[string]float64{"rubis1": 70, "rubis2": 30}
	// Default 40% allocations violate targets at these rates: the baseline
	// must act regardless of cost.
	d, err := pc.Decide(0, l.cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Invoked {
		t.Fatal("not invoked on first call")
	}
	if len(d.Plan) == 0 {
		t.Fatal("no plan despite violated targets")
	}
	final, _, err := cluster.ApplyAll(l.cat, l.cfg, d.Plan)
	if err != nil {
		t.Fatalf("plan infeasible: %v", err)
	}
	st, err := l.eval.Steady(final, rates)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range l.eval.Utility().Apps {
		if st.RTSec[name] > a.TargetRT.Seconds() {
			t.Errorf("%s still violates after Pwr-Cost plan: %v > %v", name, st.RTSec[name], a.TargetRT.Seconds())
		}
	}
}

func TestPwrCostSkipsUnprofitableConsolidation(t *testing.T) {
	l := newLab(t)
	pc := NewPwrCost(l.eval)
	rates := map[string]float64{"rubis1": 20, "rubis2": 20}
	// First decision establishes the target-meeting configuration.
	d1, err := pc.Decide(0, l.cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	cfg := l.cfg
	if len(d1.Plan) > 0 {
		cfg, _, err = cluster.ApplyAll(l.cat, l.cfg, d1.Plan)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Identical rates: gated by RateEpsilon, no re-invocation.
	d2, err := pc.Decide(2*time.Minute, cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Invoked {
		t.Error("re-invoked without a workload change")
	}
	// A tiny change within epsilon also skips.
	d3, err := pc.Decide(4*time.Minute, cfg, map[string]float64{"rubis1": 20.2, "rubis2": 20.1})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Invoked {
		t.Error("re-invoked within the rate epsilon")
	}
}

func TestControllerAppHostPoolsConstrainPlans(t *testing.T) {
	l := newLab(t)
	pools := map[string][]string{
		"rubis1": {"h0", "h1"},
		"rubis2": {"h2", "h3"},
	}
	ctrl, err := core.NewController(l.eval, core.ControllerOptions{
		Name:  "pooled",
		Scope: core.ScopeFull,
		Space: cluster.ActionSpace{Kinds: []cluster.ActionKind{
			cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU,
			cluster.ActionAddReplica, cluster.ActionRemoveReplica,
			cluster.ActionMigrate,
		}},
		AppHostPools: pools,
		Search:       core.SearchOptions{MaxExpansions: 400, TimePerChild: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every migration or replica addition a pooled controller plans must
	// target the acting application's pool. (Pre-existing out-of-pool
	// placements may persist: repatriating them costs transients a
	// cost-aware controller rightly refuses to pay without benefit.)
	inPool := func(appName, host string) bool {
		for _, h := range pools[appName] {
			if h == host {
				return true
			}
		}
		return false
	}
	cfg := l.cfg
	for i, r := range []float64{30, 70, 45} {
		d, err := ctrl.Decide(time.Duration(i)*2*time.Minute, cfg, map[string]float64{"rubis1": r, "rubis2": r - 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range d.Plan {
			if a.Kind != cluster.ActionMigrate && a.Kind != cluster.ActionAddReplica {
				continue
			}
			vm, _ := l.cat.VM(a.VM)
			if !inPool(vm.App, a.Host) {
				t.Errorf("step %d: action %s targets host outside %s's pool", i, a, vm.App)
			}
		}
		if len(d.Plan) == 0 {
			continue
		}
		next, _, err := cluster.ApplyAll(l.cat, cfg, d.Plan)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cfg = next
	}
}

func TestMistralCrisisCWOverride(t *testing.T) {
	l := newLab(t)
	m, err := NewMistral(l.eval, MistralConfig{
		CrisisCW: 30 * time.Minute,
		Search:   core.SearchOptions{MaxExpansions: 100, TimePerChild: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.l2.Options().CrisisCW; got != 30*time.Minute {
		t.Errorf("L2 crisis CW = %v, want 30m", got)
	}
}
