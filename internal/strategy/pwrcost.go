package strategy

import (
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/predict"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// PwrCost is the third baseline of §V-C, inspired by pMapper: response-time
// targets are hard constraints. For each observed request rate it computes,
// via the modified Perf-Pwr optimizer, static VM capacities just large
// enough to meet every target, packed onto as few hosts as possible; it
// then weighs the plan's transient (migration/power-cycling) cost against
// the power saved over the predicted stability interval. It never trades
// response time away — if the current configuration misses a target, the
// plan executes regardless of cost.
type PwrCost struct {
	eval *core.Evaluator
	est  *predict.Estimator
	last map[string]float64
	// RateEpsilon gates re-evaluation, like the Perf-Pwr baseline.
	RateEpsilon float64
	bandStart   time.Duration
	started     bool
}

// NewPwrCost builds the baseline.
func NewPwrCost(eval *core.Evaluator) *PwrCost {
	return &PwrCost{
		eval:        eval,
		est:         predict.NewEstimator(0, 0, 4*time.Minute),
		RateEpsilon: 0.5,
	}
}

// Name implements scenario.Decider.
func (p *PwrCost) Name() string { return "Pwr-Cost" }

// RecordWindow implements scenario.Decider (unused: the baseline carries no
// utility feedback).
func (p *PwrCost) RecordWindow(utilityDollars, perfRate, pwrRate float64) {}

// Decide implements scenario.Decider.
func (p *PwrCost) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (scenario.Decision, error) {
	if !p.changed(rates) {
		return scenario.Decision{}, nil
	}
	if p.started {
		p.est.Observe(now - p.bandStart)
	}
	p.bandStart = now
	p.started = true
	p.remember(rates)
	cw := p.est.Predict()
	if cw < 2*time.Minute {
		cw = 2 * time.Minute
	}

	p.eval.BeginWindow()
	target, err := core.PerfPwrMeetingTargets(p.eval, rates)
	if err != nil {
		// Targets unreachable even at maximum capacity: fall back to the
		// best-performing configuration available.
		target, err = core.PerfPwr(p.eval, rates, core.PerfPwrOptions{})
		if err != nil {
			return scenario.Decision{}, err
		}
	}
	if target.Config.Equal(cfg) {
		return scenario.Decision{Invoked: true}, nil
	}
	plan, err := cluster.Plan(p.eval.Catalog(), cfg, target.Config)
	if err != nil {
		return scenario.Decision{}, err
	}

	// The consolidation tradeoff: power saved over the stability interval
	// must exceed the transient cost — unless the current configuration
	// violates a target, in which case capacity comes first.
	violating, err := p.violatesTargets(cfg, rates)
	if err != nil {
		return scenario.Decision{}, err
	}
	if !violating {
		planUtil, err := core.EvaluatePlan(p.eval, cfg, plan, rates, cw)
		if err != nil {
			return scenario.Decision{}, err
		}
		st, err := p.eval.Steady(cfg, rates)
		if err != nil {
			return scenario.Decision{}, err
		}
		if planUtil <= cw.Seconds()*st.NetRate() {
			return scenario.Decision{Invoked: true}, nil
		}
	}
	return scenario.Decision{Invoked: true, Plan: plan}, nil
}

// violatesTargets reports whether any application's predicted response time
// misses its target in the given configuration.
func (p *PwrCost) violatesTargets(cfg cluster.Config, rates map[string]float64) (bool, error) {
	st, err := p.eval.Steady(cfg, rates)
	if err != nil {
		return false, err
	}
	for name, a := range p.eval.Utility().Apps {
		if rates[name] > 0 && st.RTSec[name] > a.TargetRT.Seconds() {
			return true, nil
		}
	}
	return false, nil
}

func (p *PwrCost) changed(rates map[string]float64) bool {
	if p.last == nil {
		return true
	}
	for name, r := range rates {
		if math.Abs(r-p.last[name]) > p.RateEpsilon {
			return true
		}
	}
	return false
}

func (p *PwrCost) remember(rates map[string]float64) {
	p.last = make(map[string]float64, len(rates))
	for k, v := range rates {
		p.last[k] = v
	}
}
