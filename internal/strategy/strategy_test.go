package strategy

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// lab bundles a calibrated 2-app/4-host environment.
type lab struct {
	cat   *cluster.Catalog
	apps  []*app.Spec
	eval  *core.Evaluator
	util  *utility.Params
	cfg   cluster.Config
	names []string
}

func newLab(t *testing.T) *lab {
	t.Helper()
	names := []string{"rubis1", "rubis2"}
	apps := []*app.Spec{app.RUBiS("rubis1"), app.RUBiS("rubis2")}
	hosts := make([]cluster.HostSpec, 4)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec("h" + string(rune('0'+i)))
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, map[string]float64{"rubis1": 50, "rubis2": 50}, "rubis1"); err != nil {
		t.Fatal(err)
	}
	model, err := lqn.NewModel(cat, apps, lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	costMgr, err := cost.NewManager(cat, cost.PaperTable(), 8)
	if err != nil {
		t.Fatal(err)
	}
	util := utility.PaperParams(names)
	eval, err := core.NewEvaluator(cat, model, util, costMgr)
	if err != nil {
		t.Fatal(err)
	}
	return &lab{cat: cat, apps: apps, eval: eval, util: util, cfg: cfg, names: names}
}

// shortTraces builds one-hour traces with a mid-run shift (so every
// strategy has something to react to) plus the small minute-scale jitter
// real traffic always carries (so zero-band controllers keep engaging).
func shortTraces(l *lab) workload.Set {
	set := make(workload.Set, len(l.names))
	for i, n := range l.names {
		rng := sim.NewRNG(99, uint64(i))
		rates := make([]float64, 61)
		for j := range rates {
			var base float64
			switch {
			case j < 20:
				base = 20 + float64(5*i)
			case j < 40:
				base = 70 - float64(10*i)
			default:
				base = 35
			}
			rates[j] = base + rng.Normal(0, 1)
		}
		set[n] = &workload.Trace{Step: time.Minute, Rates: rates}
	}
	return set
}

func (l *lab) run(t *testing.T, d scenario.Decider) *scenario.Result {
	t.Helper()
	tb, err := testbed.New(l.cat, l.apps, l.cfg, shortTraces(l).At(0), nil, testbed.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(tb, d, scenario.RunConfig{
		Traces:   shortTraces(l),
		Duration: time.Hour,
		Utility:  l.util,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkResult(t *testing.T, res *scenario.Result) {
	t.Helper()
	if len(res.Windows) != 30 {
		t.Fatalf("%s: windows = %d, want 30", res.Strategy, len(res.Windows))
	}
	for _, w := range res.Windows {
		if w.Watts <= 0 {
			t.Fatalf("%s: window at %v has no power", res.Strategy, w.Time)
		}
		for _, n := range []string{"rubis1", "rubis2"} {
			if w.RTSec[n] <= 0 {
				t.Fatalf("%s: window at %v has no RT for %s", res.Strategy, w.Time, n)
			}
		}
	}
	if res.Windows[len(res.Windows)-1].CumUtility != res.CumUtility {
		t.Errorf("%s: cumulative utility mismatch", res.Strategy)
	}
}

func TestMistralStrategyRuns(t *testing.T) {
	l := newLab(t)
	m, err := NewMistral(l.eval, MistralConfig{
		HostGroups: [][]string{l.cat.HostNames()[:2], l.cat.HostNames()[2:]},
		Search:     core.SearchOptions{MaxExpansions: 1500, TimePerChild: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := l.run(t, m)
	checkResult(t, res)
	if res.Invocations == 0 {
		t.Error("Mistral never invoked")
	}
	l1, l2 := m.Stats()
	if l1.Invocations+l2.Invocations == 0 {
		t.Error("no level stats recorded")
	}
	if l2.Invocations == 0 {
		t.Error("L2 never ran despite band-escaping workload shifts")
	}
	if res.MeanSearchTime <= 0 {
		t.Error("no search time accounted")
	}
}

func TestPerfPwrStrategyAdaptsAggressively(t *testing.T) {
	l := newLab(t)
	res := l.run(t, NewPerfPwr(l.eval))
	checkResult(t, res)
	if res.TotalActions == 0 {
		t.Error("Perf-Pwr executed no actions despite workload changes")
	}
}

func TestPerfCostStrategyKeepsRTWithoutConsolidating(t *testing.T) {
	l := newLab(t)
	pc, err := NewPerfCost(l.eval, l.util)
	if err != nil {
		t.Fatal(err)
	}
	res := l.run(t, pc)
	checkResult(t, res)
	// The fixed pool never powers hosts off: power stays at 4-host levels.
	for _, w := range res.Windows {
		if w.Watts < 4*55 {
			t.Errorf("Perf-Cost window at %v draws %v W: consolidation should not happen", w.Time, w.Watts)
		}
	}
}

func TestPwrCostStrategyMeetsTargetsMostly(t *testing.T) {
	l := newLab(t)
	res := l.run(t, NewPwrCost(l.eval))
	checkResult(t, res)
	// Hard performance constraints: violations only from transients, so
	// well under half of all app-windows.
	if res.TargetViolations > len(res.Windows) {
		t.Errorf("Pwr-Cost violations = %d over %d windows", res.TargetViolations, len(res.Windows))
	}
}

func TestStrategiesUtilityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy comparison is slow")
	}
	l := newLab(t)
	m, err := NewMistral(l.eval, MistralConfig{
		Search: core.SearchOptions{MaxExpansions: 1500, TimePerChild: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	mistral := l.run(t, m)
	perfPwr := l.run(t, NewPerfPwr(l.eval))
	t.Logf("utility: Mistral=%.1f Perf-Pwr=%.1f", mistral.CumUtility, perfPwr.CumUtility)
	if mistral.CumUtility <= perfPwr.CumUtility {
		t.Errorf("Mistral (%.2f) did not beat cost-blind Perf-Pwr (%.2f)", mistral.CumUtility, perfPwr.CumUtility)
	}
}
