package strategy

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/predict"
)

// Every strategy implements scenario.Snapshotter: SnapshotState serializes
// its complete mutable decision state — controller band/history/estimator
// state, last-seen rates, per-level stats, and the contents of the
// evaluator cache(s) it drives — and RestoreState rebuilds it in a freshly
// constructed strategy so a checkpointed run resumes with zero decision
// drift. Construction inputs (catalog, search options, host groups) are
// not serialized; state restores into a strategy built from the same
// configuration.

// mistralState is the Mistral hierarchy's serialized form.
type mistralState struct {
	L3    *core.ControllerState  `json:"l3,omitempty"`
	L2    core.ControllerState   `json:"l2"`
	L1    []core.ControllerState `json:"l1"`
	Stats [3]LevelStats          `json:"stats"`
	Eval  core.CacheSnapshot     `json:"eval"`
}

// SnapshotState implements scenario.Snapshotter.
func (m *Mistral) SnapshotState() (json.RawMessage, error) {
	m.statsMu.Lock()
	stats := m.stats
	m.statsMu.Unlock()
	s := mistralState{
		L2:    m.l2.Persist(),
		Stats: stats,
		Eval:  m.eval.SnapshotCache(),
	}
	if m.l3 != nil {
		l3 := m.l3.Persist()
		s.L3 = &l3
	}
	for _, l1 := range m.l1 {
		s.L1 = append(s.L1, l1.Persist())
	}
	return json.Marshal(s)
}

// RestoreState implements scenario.Snapshotter.
func (m *Mistral) RestoreState(raw json.RawMessage) error {
	var s mistralState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("strategy: mistral state: %w", err)
	}
	if (s.L3 != nil) != (m.l3 != nil) {
		return fmt.Errorf("strategy: mistral state has 3rd level %v, hierarchy %v", s.L3 != nil, m.l3 != nil)
	}
	if len(s.L1) != len(m.l1) {
		return fmt.Errorf("strategy: mistral state has %d 1st-level controllers, hierarchy has %d", len(s.L1), len(m.l1))
	}
	if s.L3 != nil {
		m.l3.Restore(*s.L3)
	}
	m.l2.Restore(s.L2)
	for i, cs := range s.L1 {
		m.l1[i].Restore(cs)
	}
	m.statsMu.Lock()
	m.stats = s.Stats
	m.statsMu.Unlock()
	m.eval.RestoreCache(s.Eval)
	return nil
}

// perfPwrState is the Perf-Pwr baseline's serialized form.
type perfPwrState struct {
	Last map[string]float64 `json:"last,omitempty"`
	Eval core.CacheSnapshot `json:"eval"`
}

// SnapshotState implements scenario.Snapshotter.
func (p *PerfPwr) SnapshotState() (json.RawMessage, error) {
	s := perfPwrState{Eval: p.eval.SnapshotCache()}
	if p.last != nil {
		s.Last = make(map[string]float64, len(p.last))
		for k, v := range p.last {
			s.Last[k] = v
		}
	}
	return json.Marshal(s)
}

// RestoreState implements scenario.Snapshotter.
func (p *PerfPwr) RestoreState(raw json.RawMessage) error {
	var s perfPwrState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("strategy: perf-pwr state: %w", err)
	}
	p.last = nil
	if s.Last != nil {
		p.last = make(map[string]float64, len(s.Last))
		for k, v := range s.Last {
			p.last[k] = v
		}
	}
	p.eval.RestoreCache(s.Eval)
	return nil
}

// perfCostState is the Perf-Cost baseline's serialized form. Eval is the
// baseline's private power-blind evaluator, not the shared one.
type perfCostState struct {
	Ctrl core.ControllerState `json:"ctrl"`
	Eval core.CacheSnapshot   `json:"eval"`
}

// SnapshotState implements scenario.Snapshotter.
func (p *PerfCost) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(perfCostState{
		Ctrl: p.ctrl.Persist(),
		Eval: p.eval.SnapshotCache(),
	})
}

// RestoreState implements scenario.Snapshotter.
func (p *PerfCost) RestoreState(raw json.RawMessage) error {
	var s perfCostState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("strategy: perf-cost state: %w", err)
	}
	p.ctrl.Restore(s.Ctrl)
	p.eval.RestoreCache(s.Eval)
	return nil
}

// pwrCostState is the Pwr-Cost baseline's serialized form.
type pwrCostState struct {
	Est         predict.PersistState `json:"est"`
	Last        map[string]float64   `json:"last,omitempty"`
	BandStartNS int64                `json:"band_start_ns"`
	Started     bool                 `json:"started"`
	Eval        core.CacheSnapshot   `json:"eval"`
}

// SnapshotState implements scenario.Snapshotter.
func (p *PwrCost) SnapshotState() (json.RawMessage, error) {
	s := pwrCostState{
		Est:         p.est.Persist(),
		BandStartNS: int64(p.bandStart),
		Started:     p.started,
		Eval:        p.eval.SnapshotCache(),
	}
	if p.last != nil {
		s.Last = make(map[string]float64, len(p.last))
		for k, v := range p.last {
			s.Last[k] = v
		}
	}
	return json.Marshal(s)
}

// RestoreState implements scenario.Snapshotter.
func (p *PwrCost) RestoreState(raw json.RawMessage) error {
	var s pwrCostState
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("strategy: pwr-cost state: %w", err)
	}
	p.est.Restore(s.Est)
	p.bandStart = time.Duration(s.BandStartNS)
	p.started = s.Started
	p.last = nil
	if s.Last != nil {
		p.last = make(map[string]float64, len(s.Last))
		for k, v := range s.Last {
			p.last[k] = v
		}
	}
	p.eval.RestoreCache(s.Eval)
	return nil
}
