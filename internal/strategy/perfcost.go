package strategy

import (
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/utility"
)

// PerfCost is the second baseline of §V-C: it multiplexes a fixed pool of
// always-on hosts to maximize performance utility, incorporating adaptation
// durations and performance overheads into each control window's
// optimization — but it considers neither consolidation onto fewer hosts
// nor any power term, steady or transient.
//
// It is built as a Mistral-style controller whose utility model prices
// power at zero and whose action space excludes host power cycling; its
// cost tables still charge response-time transients, so it is cost-aware
// on the performance axis exactly as the paper describes.
type PerfCost struct {
	ctrl *core.Controller
	eval *core.Evaluator
}

// NewPerfCost builds the baseline over the shared catalog/model/cost
// manager but a power-blind utility. baseUtil provides the applications and
// monitoring interval; its power price is ignored.
func NewPerfCost(eval *core.Evaluator, baseUtil *utility.Params) (*PerfCost, error) {
	blind := &utility.Params{
		MonitoringInterval:       baseUtil.MonitoringInterval,
		PowerCostPerWattInterval: 0, // power is free: a fixed pool is paid for anyway
		Apps:                     baseUtil.Apps,
	}
	blindEval, err := core.NewEvaluator(eval.Catalog(), eval.Model(), blind, eval.Costs())
	if err != nil {
		return nil, err
	}

	// The paper allots 2 hosts per application, sized so each pool handles
	// its app's peak. Under this reproduction's capacity calibration a
	// strict 2-host allotment cannot serve the synthetic 100 req/s peaks
	// (see DESIGN.md §2), so the fixed pool is interpreted as the whole
	// always-on cluster: the baseline keeps its §V-C role — performance-
	// and cost-aware, power-blind, never consolidating — without being
	// crippled by an allotment the calibration cannot honor. Hard per-app
	// pools remain available via core.ControllerOptions.AppHostPools.
	ctrl, err := core.NewController(blindEval, core.ControllerOptions{
		Name:      "Perf-Cost",
		BandWidth: 0, // react to any workload change
		Scope:     core.ScopeFull,
		Space: cluster.ActionSpace{Kinds: []cluster.ActionKind{
			cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU,
			cluster.ActionAddReplica, cluster.ActionRemoveReplica,
			cluster.ActionMigrate,
		}},
		Search:             core.SearchOptions{SelfAware: true},
		MonitoringInterval: baseUtil.MonitoringInterval,
	})
	if err != nil {
		return nil, err
	}
	return &PerfCost{ctrl: ctrl, eval: blindEval}, nil
}

// Name implements scenario.Decider.
func (p *PerfCost) Name() string { return "Perf-Cost" }

// Decide implements scenario.Decider.
func (p *PerfCost) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (scenario.Decision, error) {
	d, err := p.ctrl.Decide(now, cfg, rates)
	if err != nil {
		return scenario.Decision{}, err
	}
	out := scenario.Decision{
		Invoked:        d.Invoked,
		Plan:           d.Plan,
		SearchTime:     d.Search.SearchTime,
		SearchCost:     d.Search.SearchCost,
		Degraded:       d.Degraded,
		DegradedReason: d.DegradedReason,
	}
	if d.Prov != nil {
		out.Provs = []*provenance.DecisionProv{d.Prov}
	}
	return out, nil
}

// RecordWindow implements scenario.Decider.
func (p *PerfCost) RecordWindow(utilityDollars, perfRate, pwrRate float64) {
	// The baseline is power-blind: strip the power component (pwrRate is
	// non-positive) from the window's dollars before feeding its UH.
	m := p.ctrl.Options().MonitoringInterval.Seconds()
	p.ctrl.RecordWindow(utilityDollars-pwrRate*m, perfRate, 0)
}
