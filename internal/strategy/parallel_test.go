package strategy

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/sim"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/workload"
)

// seededTraces is shortTraces with a caller-chosen jitter seed, so the
// determinism test can cover several workload realizations.
func seededTraces(l *lab, seed uint64) workload.Set {
	set := make(workload.Set, len(l.names))
	for i, n := range l.names {
		rng := sim.NewRNG(seed, uint64(i))
		rates := make([]float64, 61)
		for j := range rates {
			var base float64
			switch {
			case j < 20:
				base = 20 + float64(5*i)
			case j < 40:
				base = 70 - float64(10*i)
			default:
				base = 35
			}
			rates[j] = base + rng.Normal(0, 1)
		}
		set[n] = &workload.Trace{Step: time.Minute, Rates: rates}
	}
	return set
}

// fingerprintingDecider wraps the hierarchy and records every decision's
// observable surface, exact to the last bit via %v on the floats.
type fingerprintingDecider struct {
	scenario.Decider
	log []string
}

func (f *fingerprintingDecider) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (scenario.Decision, error) {
	d, err := f.Decider.Decide(now, cfg, rates)
	if err == nil {
		f.log = append(f.log, fmt.Sprintf("%v st=%v cost=%v plan=%v", now, d.SearchTime, d.SearchCost, d.Plan))
	}
	return d, err
}

// replayMistral runs the seeded scenario under a fresh hierarchy with the
// given worker count and process observer, returning the replay result and
// the per-decision fingerprints.
func replayMistral(t *testing.T, seed uint64, workers int, o *obs.Observer) (*scenario.Result, []string) {
	t.Helper()
	obs.SetDefault(o)
	defer obs.SetDefault(nil)
	l := newLab(t)
	m, err := NewMistral(l.eval, MistralConfig{
		HostGroups: [][]string{l.cat.HostNames()[:2], l.cat.HostNames()[2:]},
		Search:     core.SearchOptions{MaxExpansions: 800, TimePerChild: time.Millisecond},
		Workers:    workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := seededTraces(l, seed)
	tb, err := testbed.New(l.cat, l.apps, l.cfg, traces.At(0), nil, testbed.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rec := &fingerprintingDecider{Decider: m}
	res, err := scenario.Run(tb, rec, scenario.RunConfig{
		Traces:   traces,
		Duration: 45 * time.Minute,
		Utility:  l.util,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.log
}

// TestMistralWorkersDeterminism is the acceptance gate for the concurrent
// evaluation plane at the whole-hierarchy level: a full scenario replay
// must produce byte-identical decision fingerprints and cumulative utility
// at Workers=1 and Workers=8, with observability both disabled and fully
// enabled (metrics + spans + debug logs), across multiple seeds.
func TestMistralWorkersDeterminism(t *testing.T) {
	for _, seed := range []uint64{7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			refRes, refLog := replayMistral(t, seed, 1, nil)
			parRes, parLog := replayMistral(t, seed, 8, nil)
			if a, b := strings.Join(refLog, "\n"), strings.Join(parLog, "\n"); a != b {
				t.Fatalf("decisions diverge between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
			}
			if refRes.CumUtility != parRes.CumUtility {
				t.Errorf("cumulative utility diverged: %v vs %v", refRes.CumUtility, parRes.CumUtility)
			}
			if refRes.TotalActions != parRes.TotalActions {
				t.Errorf("action count diverged: %d vs %d", refRes.TotalActions, parRes.TotalActions)
			}

			var trace bytes.Buffer
			full := &obs.Observer{
				Metrics: obs.NewRegistry(),
				Trace:   obs.NewTracer(&trace, obs.FormatJSONL),
				Log:     slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
			}
			obsRes, obsLog := replayMistral(t, seed, 8, full)
			if err := full.Trace.Close(); err != nil {
				t.Fatal(err)
			}
			if a, b := strings.Join(refLog, "\n"), strings.Join(obsLog, "\n"); a != b {
				t.Fatalf("decisions diverge with tracing enabled at Workers=8:\n--- serial ---\n%s\n--- traced ---\n%s", a, b)
			}
			if refRes.CumUtility != obsRes.CumUtility {
				t.Errorf("cumulative utility diverged with tracing: %v vs %v", refRes.CumUtility, obsRes.CumUtility)
			}
			if trace.Len() == 0 {
				t.Error("tracing produced no spans")
			}
		})
	}
}
