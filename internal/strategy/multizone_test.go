package strategy

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/utility"
)

// zonedLab builds a 2-app environment across two data centers.
func zonedLab(t *testing.T) *lab {
	t.Helper()
	names := []string{"rubis1", "rubis2"}
	apps := []*app.Spec{app.RUBiS("rubis1"), app.RUBiS("rubis2")}
	hosts := make([]cluster.HostSpec, 4)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec("h" + string(rune('0'+i)))
		if i < 2 {
			hosts[i].Zone = "east"
		} else {
			hosts[i].Zone = "west"
		}
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := app.DefaultConfig(cat, apps, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, map[string]float64{"rubis1": 50, "rubis2": 50}, "rubis1"); err != nil {
		t.Fatal(err)
	}
	model, err := lqn.NewModel(cat, apps, lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	costMgr, err := cost.NewManager(cat, cost.PaperTable(), 8)
	if err != nil {
		t.Fatal(err)
	}
	util := utility.PaperParams(names)
	eval, err := core.NewEvaluator(cat, model, util, costMgr)
	if err != nil {
		t.Fatal(err)
	}
	return &lab{cat: cat, apps: apps, eval: eval, util: util, cfg: cfg, names: names}
}

func TestMistralMultiZoneHierarchy(t *testing.T) {
	l := zonedLab(t)
	m, err := NewMistral(l.eval, MistralConfig{
		HostGroups: [][]string{l.cat.HostsInZone("east"), l.cat.HostsInZone("west")},
		Search:     core.SearchOptions{MaxExpansions: 800, TimePerChild: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.l3 == nil {
		t.Fatal("multi-zone deployment did not create a 3rd-level controller")
	}
	res := l.run(t, m)
	checkResult(t, res)
	l3 := m.StatsL3()
	if l3.Invocations == 0 {
		t.Error("3rd level never invoked despite band-escaping shifts")
	}
}

func TestSingleZoneHasNoL3(t *testing.T) {
	l := newLab(t)
	m, err := NewMistral(l.eval, MistralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.l3 != nil {
		t.Error("single-zone deployment created a 3rd-level controller")
	}
	if got := m.StatsL3(); got.Invocations != 0 {
		t.Error("phantom L3 stats")
	}
}

func TestWANMigrationCostsExceedLAN(t *testing.T) {
	tbl := cost.PaperTable()
	for _, tier := range []string{"db", "app", "web"} {
		for s := 100.0; s <= 800; s += 100 {
			wan, ok := tbl.Lookup(cost.Key{Kind: cluster.ActionWANMigrate, Tier: tier}, s)
			if !ok {
				t.Fatalf("no WAN entry for %s", tier)
			}
			lan, _ := tbl.Lookup(cost.Key{Kind: cluster.ActionMigrate, Tier: tier}, s)
			if wan.Duration <= lan.Duration {
				t.Errorf("%s@%v: WAN duration %v not above LAN %v", tier, s, wan.Duration, lan.Duration)
			}
			if wan.DeltaRTTargetSec <= lan.DeltaRTTargetSec {
				t.Errorf("%s@%v: WAN ΔRT not above LAN", tier, s)
			}
		}
	}
}
