package strategy

import (
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// PerfPwr is the first baseline of §V-C: it optimizes the steady-state
// performance/power tradeoff with the Perf-Pwr optimizer and executes the
// plan to the resulting configuration whenever the workload changes,
// entirely ignoring transient adaptation costs.
type PerfPwr struct {
	eval *core.Evaluator
	last map[string]float64
	// RateEpsilon is the minimum per-app rate change (req/s) treated as "a
	// workload change was observed" (default 0.5 — essentially any change
	// at the monitoring granularity).
	RateEpsilon float64
}

// NewPerfPwr builds the baseline.
func NewPerfPwr(eval *core.Evaluator) *PerfPwr {
	return &PerfPwr{eval: eval, RateEpsilon: 0.5}
}

// Name implements scenario.Decider.
func (p *PerfPwr) Name() string { return "Perf-Pwr" }

// Decide implements scenario.Decider.
func (p *PerfPwr) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (scenario.Decision, error) {
	if !p.changed(rates) {
		return scenario.Decision{}, nil
	}
	p.remember(rates)

	p.eval.BeginWindow()
	ideal, err := core.PerfPwr(p.eval, rates, core.PerfPwrOptions{})
	if err != nil {
		return scenario.Decision{}, err
	}
	if ideal.Config.Equal(cfg) {
		return scenario.Decision{Invoked: true}, nil
	}
	plan, err := cluster.Plan(p.eval.Catalog(), cfg, ideal.Config)
	if err != nil {
		return scenario.Decision{}, err
	}
	return scenario.Decision{Invoked: true, Plan: plan}, nil
}

func (p *PerfPwr) changed(rates map[string]float64) bool {
	if p.last == nil {
		return true
	}
	for name, r := range rates {
		if math.Abs(r-p.last[name]) > p.RateEpsilon {
			return true
		}
	}
	return false
}

func (p *PerfPwr) remember(rates map[string]float64) {
	p.last = make(map[string]float64, len(rates))
	for k, v := range rates {
		p.last[k] = v
	}
}

// RecordWindow implements scenario.Decider (unused by this baseline).
func (p *PerfPwr) RecordWindow(utilityDollars, perfRate, pwrRate float64) {}
