// Package strategy implements the four control strategies compared in §V-C:
// the Mistral multi-level hierarchy and the three baselines that each trade
// off only two of the three objectives — Perf-Pwr (performance vs power, no
// transient costs), Perf-Cost (performance vs adaptation cost on a fixed
// power budget), and Pwr-Cost (power vs adaptation cost under hard
// performance constraints, after pMapper).
//
// Every strategy satisfies the scenario.Decider interface structurally.
package strategy

import (
	"fmt"
	"sync"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/par"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/scenario"
)

// MistralConfig configures the hierarchical Mistral strategy.
type MistralConfig struct {
	// HostGroups are the 1st-level controllers' host scopes; nil creates a
	// single group containing every host.
	HostGroups [][]string
	// L2Band is the 2nd-level controller's workload band width in req/s
	// (default 8, the paper's setting). 1st-level bands are always 0.
	L2Band float64
	// L3Band is the 3rd-level (cross-data-center) controller's band width
	// (default 20 req/s). The 3rd level exists only when the catalog spans
	// more than one zone; it alone wields WAN migration (§VI extension)
	// and plans over much longer control windows.
	L3Band float64
	// Search configures the A* search; its SelfAware flag is overridden by
	// Naive below.
	Search core.SearchOptions
	// Naive selects the naive search for both levels (the Fig. 10
	// comparison); the default is the Self-Aware search.
	Naive bool
	// MonitoringInterval is M (default 2 minutes).
	MonitoringInterval time.Duration
	// CrisisCW overrides the 2nd-level controller's crisis control-window
	// floor (default 12×M; see core.ControllerOptions.CrisisCW).
	CrisisCW time.Duration
	// Workers bounds the hierarchy's evaluation concurrency: each
	// controller's Perf-Pwr sweep and search fan-out, and how many
	// 1st-level controllers decide concurrently over the shared evaluator
	// (default min(GOMAXPROCS, 8); 1 is fully serial). Decisions are
	// byte-identical at every setting — 1st-level results merge in
	// controller order.
	Workers int
	// Obs overrides the process-default observer (obs.SetDefault) for
	// every controller in the hierarchy; nil resolves the default.
	Obs *obs.Observer
	// Provenance enables the decision flight recorder on every controller
	// in the hierarchy: Decide returns scenario.Decision.Provs entries in
	// controller order. Off by default; decisions are identical either way.
	Provenance bool
}

// LevelStats aggregates search activity per hierarchy level (Table I).
type LevelStats struct {
	Invocations int
	TotalSearch time.Duration
}

// MeanSearch is the average search duration per invocation.
func (s LevelStats) MeanSearch() time.Duration {
	if s.Invocations == 0 {
		return 0
	}
	return s.TotalSearch / time.Duration(s.Invocations)
}

// Mistral is the paper's controller arranged as a two-level hierarchy: fast
// 1st-level controllers with zero-width bands that tune CPU and migrate
// within their host group, and a 2nd-level controller with a wider band and
// the full action set over all hosts.
type Mistral struct {
	name    string
	eval    *core.Evaluator
	workers int
	l3      *core.Controller // nil in single-zone deployments
	l2      *core.Controller
	l1      []*core.Controller

	// statsMu guards stats: Decide mutates them only from its own
	// goroutine (1st-level results are merged serially after the fan-out),
	// but the lock keeps Stats/StatsL3 safe to poll concurrently.
	statsMu sync.Mutex
	stats   [3]LevelStats // [0] = level 1 aggregate, [1] = level 2, [2] = level 3
}

// NewMistral builds the hierarchy over a shared evaluator.
func NewMistral(eval *core.Evaluator, cfg MistralConfig) (*Mistral, error) {
	if cfg.L2Band <= 0 {
		cfg.L2Band = 8
	}
	if cfg.MonitoringInterval <= 0 {
		cfg.MonitoringInterval = 2 * time.Minute
	}
	search := cfg.Search
	search.SelfAware = !cfg.Naive

	groups := cfg.HostGroups
	if len(groups) == 0 {
		groups = [][]string{eval.Catalog().HostNames()}
	}
	name := "Mistral"
	if cfg.Naive {
		name = "Mistral-Naive"
	}

	multiZone := len(eval.Catalog().Zones()) > 1
	l2Space := cluster.ActionSpace{}
	if multiZone {
		// WAN migration belongs to the 3rd level only.
		l2Space.Kinds = []cluster.ActionKind{
			cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU,
			cluster.ActionAddReplica, cluster.ActionRemoveReplica,
			cluster.ActionMigrate, cluster.ActionStartHost,
			cluster.ActionStopHost, cluster.ActionSetDVFS,
		}
	}
	l2, err := core.NewController(eval, core.ControllerOptions{
		Name:               name + "/L2",
		BandWidth:          cfg.L2Band,
		Scope:              core.ScopeFull,
		Space:              l2Space,
		PinAppsToZones:     multiZone, // WAN moves belong to the 3rd level
		Search:             search,
		MonitoringInterval: cfg.MonitoringInterval,
		CrisisCW:           cfg.CrisisCW,
		Workers:            cfg.Workers,
		Obs:                cfg.Obs,
		Provenance:         cfg.Provenance,
	})
	if err != nil {
		return nil, err
	}
	m := &Mistral{name: name, eval: eval, workers: par.Workers(cfg.Workers), l2: l2}
	if multiZone {
		if cfg.L3Band <= 0 {
			cfg.L3Band = 20
		}
		l3, err := core.NewController(eval, core.ControllerOptions{
			Name:               name + "/L3",
			BandWidth:          cfg.L3Band,
			Scope:              core.ScopeFull,
			Search:             search,
			MonitoringInterval: cfg.MonitoringInterval,
			// WAN migrations take tens of minutes: plan over hour-scale
			// windows or they can never pay off.
			MinCW:      30 * time.Minute,
			Workers:    cfg.Workers,
			Obs:        cfg.Obs,
			Provenance: cfg.Provenance,
		})
		if err != nil {
			return nil, err
		}
		m.l3 = l3
	}
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("strategy: empty host group %d", i)
		}
		l1, err := core.NewController(eval, core.ControllerOptions{
			Name:      fmt.Sprintf("%s/L1-%d", name, i),
			BandWidth: 0,
			Hosts:     g,
			Scope:     core.ScopeSubset,
			Space: cluster.ActionSpace{
				// The quickest knobs: CPU tuning, local migration, and (on
				// hosts that support it) DVFS — the §VI extension.
				Kinds: []cluster.ActionKind{
					cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU,
					cluster.ActionMigrate, cluster.ActionSetDVFS,
				},
				Hosts: g,
			},
			Search:             search,
			MonitoringInterval: cfg.MonitoringInterval,
			Workers:            cfg.Workers,
			// The hierarchy resets the shared evaluator's cache once per
			// control opportunity before fanning the 1st level out;
			// per-controller resets would thrash it mid-flight.
			RetainCache: true,
			Obs:         cfg.Obs,
			Provenance:  cfg.Provenance,
		})
		if err != nil {
			return nil, err
		}
		m.l1 = append(m.l1, l1)
	}
	return m, nil
}

// Name implements scenario.Decider.
func (m *Mistral) Name() string { return m.name }

// SetTraceContext implements scenario.TraceAware: the window's causal
// identity fans out to every controller in the hierarchy, so their
// spans — including parallel 1st-level searches — carry the same trace
// ID as the scenario's root decide span and the window's provenance
// record. Called once per window before Decide, never concurrently
// with it.
func (m *Mistral) SetTraceContext(tc obs.TraceContext) {
	if m.l3 != nil {
		m.l3.SetTraceContext(tc)
	}
	m.l2.SetTraceContext(tc)
	for _, l1 := range m.l1 {
		l1.SetTraceContext(tc)
	}
}

// Stats returns per-level search statistics: level 1 (aggregated across its
// controllers) and level 2.
func (m *Mistral) Stats() (l1, l2 LevelStats) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats[0], m.stats[1]
}

// StatsL3 returns the 3rd-level controller's statistics (zero when the
// deployment spans a single zone).
func (m *Mistral) StatsL3() LevelStats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats[2]
}

// addStats accumulates one decision into a level's statistics.
func (m *Mistral) addStats(level int, searchTime time.Duration) {
	m.statsMu.Lock()
	m.stats[level].Invocations++
	m.stats[level].TotalSearch += searchTime
	m.statsMu.Unlock()
}

// Decide implements scenario.Decider: if the 2nd-level band is violated the
// 2nd-level controller decides with the full action set; otherwise every
// 1st-level controller refines its own host group. 1st-level decisions on
// disjoint host groups concatenate into one plan; their controllers run in
// parallel, so the decision delay is the slowest of them.
func (m *Mistral) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (scenario.Decision, error) {
	// Provenance entries accumulate across the levels consulted this
	// opportunity, in controller order (L3 first when it ran, even if its
	// empty plan fell through to the lower levels).
	var provs []*provenance.DecisionProv
	if m.l3 != nil && m.l3.ShouldRun(rates) {
		d, err := m.l3.Decide(now, cfg, rates)
		if err != nil {
			return scenario.Decision{}, err
		}
		m.addStats(2, d.Search.SearchTime)
		if d.Prov != nil {
			provs = append(provs, d.Prov)
		}
		if len(d.Plan) > 0 {
			return scenario.Decision{
				Invoked:        d.Invoked,
				Plan:           d.Plan,
				SearchTime:     d.Search.SearchTime,
				SearchCost:     d.Search.SearchCost,
				Degraded:       d.Degraded,
				DegradedReason: d.DegradedReason,
				Provs:          provs,
			}, nil
		}
		// An empty 3rd-level plan falls through: the lower levels refine.
	}
	if m.l2.ShouldRun(rates) {
		d, err := m.l2.Decide(now, cfg, rates)
		if err != nil {
			return scenario.Decision{}, err
		}
		m.addStats(1, d.Search.SearchTime)
		if d.Prov != nil {
			provs = append(provs, d.Prov)
		}
		return scenario.Decision{
			Invoked:        d.Invoked,
			Plan:           d.Plan,
			SearchTime:     d.Search.SearchTime,
			SearchCost:     d.Search.SearchCost,
			Degraded:       d.Degraded,
			DegradedReason: d.DegradedReason,
			Provs:          provs,
		}, nil
	}
	// 1st-level controllers own disjoint host groups and share the
	// thread-safe evaluator: reset the memo cache once for this control
	// opportunity (their per-decision reset is disabled via RetainCache),
	// then let them decide concurrently. Results land in per-controller
	// slots and merge in controller order, so plans, the SearchCost sum
	// (float addition is order-sensitive), and the returned error are
	// byte-identical to the serial path.
	m.eval.BeginWindow()
	type l1Result struct {
		d   core.Decision
		err error
	}
	results := make([]l1Result, len(m.l1))
	par.For(len(m.l1), m.workers, func(i int) {
		d, err := m.l1[i].Decide(now, cfg, rates)
		results[i] = l1Result{d: d, err: err}
	})
	out := scenario.Decision{Provs: provs}
	for i, r := range results {
		if r.err != nil {
			return scenario.Decision{}, r.err
		}
		d := r.d
		if !d.Invoked {
			continue
		}
		m.addStats(0, d.Search.SearchTime)
		out.Invoked = true
		if d.Degraded {
			out.Degraded = true
			reason := d.DegradedReason
			if reason == "" {
				reason = "fallback"
			}
			if out.DegradedReason != "" {
				out.DegradedReason += "; "
			}
			out.DegradedReason += m.l1[i].Name() + ": " + reason
		}
		if d.Prov != nil {
			out.Provs = append(out.Provs, d.Prov)
		}
		out.SearchCost += d.Search.SearchCost
		if d.Search.SearchTime > out.SearchTime {
			out.SearchTime = d.Search.SearchTime
		}
		out.Plan = append(out.Plan, d.Plan...)
	}
	return out, nil
}

// RecordWindow implements scenario.Decider: every controller sees realized
// window utilities for its UH estimate.
func (m *Mistral) RecordWindow(utilityDollars, perfRate, pwrRate float64) {
	if m.l3 != nil {
		m.l3.RecordWindow(utilityDollars, perfRate, pwrRate)
	}
	m.l2.RecordWindow(utilityDollars, perfRate, pwrRate)
	for _, l1 := range m.l1 {
		l1.RecordWindow(utilityDollars, perfRate, pwrRate)
	}
}
