package cluster

import (
	"strings"
	"testing"
)

func TestNewCatalogValidation(t *testing.T) {
	host := DefaultHostSpec("h0")
	vm := VMSpec{ID: "v0", App: "a", Tier: "web", MemoryMB: 200}
	cases := []struct {
		name string
		cfg  CatalogConfig
		want string
	}{
		{"no hosts", CatalogConfig{VMs: []VMSpec{vm}}, "at least one host"},
		{"no vms", CatalogConfig{Hosts: []HostSpec{host}}, "at least one VM"},
		{"dup host", CatalogConfig{Hosts: []HostSpec{host, host}, VMs: []VMSpec{vm}}, "duplicate host"},
		{"dup vm", CatalogConfig{Hosts: []HostSpec{host}, VMs: []VMSpec{vm, vm}}, "duplicate VM"},
		{"bad usable", CatalogConfig{Hosts: []HostSpec{{Name: "h", TotalCPUPct: 100, UsableCPUPct: 120, MaxVMs: 4}}, VMs: []VMSpec{vm}}, "invalid usable CPU"},
		{"bad maxvms", CatalogConfig{Hosts: []HostSpec{{Name: "h", TotalCPUPct: 100, UsableCPUPct: 80}}, VMs: []VMSpec{vm}}, "MaxVMs"},
		{"bad vm mem", CatalogConfig{Hosts: []HostSpec{host}, VMs: []VMSpec{{ID: "v", App: "a", Tier: "t"}}}, "memory"},
		{"unknown optional tier", CatalogConfig{Hosts: []HostSpec{host}, VMs: []VMSpec{vm}, OptionalTiers: []TierKey{{App: "x", Tier: "y"}}}, "optional tier"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewCatalog(c.cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestCatalogAccessors(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	if got := len(cat.HostNames()); got != 4 {
		t.Errorf("hosts = %d, want 4", got)
	}
	if got := len(cat.VMIDs()); got != 10 {
		t.Errorf("VMs = %d, want 10", got)
	}
	if got := len(cat.Tiers()); got != 6 {
		t.Errorf("tiers = %d, want 6", got)
	}
	apps := cat.Apps()
	if len(apps) != 2 || apps[0] != "rubis1" || apps[1] != "rubis2" {
		t.Errorf("apps = %v", apps)
	}
	ids := cat.TierVMs(TierKey{App: "rubis1", Tier: "db"})
	if len(ids) != 2 {
		t.Errorf("db replicas = %d, want 2", len(ids))
	}
	if _, ok := cat.Host("nope"); ok {
		t.Error("unknown host resolved")
	}
	if _, ok := cat.VM("nope"); ok {
		t.Error("unknown VM resolved")
	}
	if cat.MaxVMCPUPct() != 80 {
		t.Errorf("MaxVMCPUPct = %v, want 80", cat.MaxVMCPUPct())
	}
	if cat.MinCPUPct != 20 || cat.CPUStepPct != 10 {
		t.Errorf("defaults = %v/%v, want 20/10", cat.MinCPUPct, cat.CPUStepPct)
	}
}

func TestConfigCloneIndependence(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)
	clone := cfg.Clone()
	clone.Place("rubis1-web-0", "host1", 50)
	clone.SetHostOn("host0", false)
	if p, _ := cfg.PlacementOf("rubis1-web-0"); p.CPUPct == 50 {
		t.Error("mutating clone changed original placement")
	}
	if !cfg.HostOn("host0") {
		t.Error("mutating clone changed original host power")
	}
}

func TestConfigKeyStableAndDistinct(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	a := baseConfig(t, cat, 2, 25)
	b := a.Clone()
	if a.Key() != b.Key() {
		t.Error("identical configs have different keys")
	}
	if !a.Equal(b) {
		t.Error("Equal false for identical configs")
	}
	b.Place("rubis1-web-0", "host1", 25)
	if a.Key() == b.Key() {
		t.Error("different placements share a key")
	}
	c := a.Clone()
	c.Place("rubis1-web-0", "host0", 25.004) // within rounding resolution
	_ = c
}

func TestConfigAccounting(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := NewConfig()
	cfg.SetHostOn("host0", true)
	cfg.Place("rubis1-web-0", "host0", 30)
	cfg.Place("rubis1-app-0", "host0", 25)
	if got := cfg.AllocatedCPU("host0"); got != 55 {
		t.Errorf("AllocatedCPU = %v, want 55", got)
	}
	if got := cfg.AllocatedCPU("host1"); got != 0 {
		t.Errorf("AllocatedCPU empty host = %v, want 0", got)
	}
	if got := cfg.VMsOnHost("host0"); len(got) != 2 {
		t.Errorf("VMsOnHost = %v", got)
	}
	if cfg.NumActiveHosts() != 1 {
		t.Errorf("NumActiveHosts = %d, want 1", cfg.NumActiveHosts())
	}
	reps := cfg.ActiveReplicas(cat, TierKey{App: "rubis1", Tier: "web"})
	if len(reps) != 1 || reps[0] != "rubis1-web-0" {
		t.Errorf("ActiveReplicas = %v", reps)
	}
	cfg.Unplace("rubis1-web-0")
	if cfg.Active("rubis1-web-0") {
		t.Error("Unplace did not deactivate")
	}
}

func TestValidateViolations(t *testing.T) {
	cat := testCatalog(t, 2, 1)

	t.Run("candidate", func(t *testing.T) {
		cfg := baseConfig(t, cat, 2, 25)
		if vs := cfg.Validate(cat); len(vs) != 0 {
			t.Errorf("unexpected violations: %v", vs)
		}
	})

	t.Run("cpu oversubscription", func(t *testing.T) {
		cfg := baseConfig(t, cat, 2, 25)
		cfg.Place("rubis1-web-0", "host0", 70)
		cfg.Place("rubis1-app-0", "host0", 70)
		found := false
		for _, v := range cfg.Validate(cat) {
			if strings.Contains(v.Msg, "oversubscribed") {
				found = true
			}
		}
		if !found {
			t.Error("CPU oversubscription not detected")
		}
		if cfg.IsCandidate(cat) {
			t.Error("oversubscribed config reported as candidate")
		}
	})

	t.Run("below min cpu", func(t *testing.T) {
		cfg := baseConfig(t, cat, 2, 25)
		cfg.Place("rubis1-web-0", "host0", 10)
		if cfg.IsCandidate(cat) {
			t.Error("below-min CPU accepted")
		}
	})

	t.Run("vm on off host", func(t *testing.T) {
		cfg := baseConfig(t, cat, 2, 25)
		cfg.SetHostOn("host1", false)
		found := false
		for _, v := range cfg.Validate(cat) {
			if strings.Contains(v.Msg, "powered-off") {
				found = true
			}
		}
		if !found {
			t.Error("VM on powered-off host not detected")
		}
	})

	t.Run("too many vms", func(t *testing.T) {
		cfg := NewConfig()
		cfg.SetHostOn("host0", true)
		for _, id := range []VMID{"rubis1-web-0", "rubis1-app-0", "rubis1-app-1", "rubis1-db-0", "rubis1-db-1"} {
			cfg.Place(id, "host0", 20) // 5 VMs > MaxVMs 4; memory 5*200+200 > 1024 too
		}
		var haveCount, haveMem bool
		for _, v := range cfg.Validate(cat) {
			if strings.Contains(v.Msg, "VMs, max") {
				haveCount = true
			}
			if strings.Contains(v.Msg, "memory oversubscribed") {
				haveMem = true
			}
		}
		if !haveCount || !haveMem {
			t.Errorf("missing violations: count=%v mem=%v", haveCount, haveMem)
		}
	})

	t.Run("missing required tier", func(t *testing.T) {
		cfg := baseConfig(t, cat, 2, 25)
		cfg.Unplace("rubis1-db-0")
		found := false
		for _, v := range cfg.Validate(cat) {
			if strings.Contains(v.Msg, "no active replica") {
				found = true
			}
		}
		if !found {
			t.Error("missing required tier not detected")
		}
	})

	t.Run("unknown vm and host", func(t *testing.T) {
		cfg := NewConfig()
		cfg.Place("ghost", "host0", 20)
		cfg.SetHostOn("host0", true)
		vs := cfg.Validate(cat)
		found := false
		for _, v := range vs {
			if strings.Contains(v.Msg, "unknown VM") {
				found = true
			}
		}
		if !found {
			t.Errorf("unknown VM not detected: %v", vs)
		}
		cfg2 := NewConfig()
		cfg2.Place("rubis1-web-0", "ghosthost", 20)
		found = false
		for _, v := range cfg2.Validate(cat) {
			if strings.Contains(v.Msg, "unknown host") {
				found = true
			}
		}
		if !found {
			t.Error("unknown host not detected")
		}
	})
}

func TestOptionalTierMayScaleToZero(t *testing.T) {
	host := DefaultHostSpec("h0")
	cat, err := NewCatalog(CatalogConfig{
		Hosts: []HostSpec{host},
		VMs: []VMSpec{
			{ID: "a-web-0", App: "a", Tier: "web", MemoryMB: 200},
			{ID: "a-cache-0", App: "a", Tier: "cache", MemoryMB: 200},
		},
		OptionalTiers: []TierKey{{App: "a", Tier: "cache"}},
	})
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	cfg := NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.Place("a-web-0", "h0", 40)
	if !cfg.IsCandidate(cat) {
		t.Errorf("config with empty optional tier rejected: %v", cfg.Validate(cat))
	}
}

func TestConfigString(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)
	s := cfg.String()
	if !strings.Contains(s, "host0") || !strings.Contains(s, "rubis1-web-0") {
		t.Errorf("String() = %q missing expected elements", s)
	}
}
