package cluster

import "sort"

// PlacementState is one active VM's placement in serializable form.
type PlacementState struct {
	VM     VMID    `json:"vm"`
	Host   string  `json:"host"`
	CPUPct float64 `json:"cpu_pct"`
}

// HostFreqState is one host's non-nominal DVFS level in serializable form.
type HostFreqState struct {
	Host string  `json:"host"`
	Freq float64 `json:"freq"`
}

// ConfigState is a Config's complete serializable state, in deterministic
// sorted order. RestoreConfig rebuilds the configuration through the
// fingerprint-maintaining mutators, so the restored fingerprint is
// identical to the original's (the fingerprint is an XOR fold of content
// tokens — order-independent and free of construction history).
type ConfigState struct {
	HostsOn    []string         `json:"hosts_on,omitempty"`
	Placements []PlacementState `json:"placements,omitempty"`
	HostFreq   []HostFreqState  `json:"host_freq,omitempty"`
}

// Snapshot captures the configuration.
func (c Config) Snapshot() ConfigState {
	var s ConfigState
	s.HostsOn = c.ActiveHosts()
	for _, id := range c.ActiveVMs() {
		p := c.placements[id]
		s.Placements = append(s.Placements, PlacementState{VM: id, Host: p.Host, CPUPct: p.CPUPct})
	}
	if len(c.hostFreq) > 0 {
		hosts := make([]string, 0, len(c.hostFreq))
		for h := range c.hostFreq {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			s.HostFreq = append(s.HostFreq, HostFreqState{Host: h, Freq: c.hostFreq[h]})
		}
	}
	return s
}

// RestoreConfig rebuilds a Config from a captured state.
func RestoreConfig(s ConfigState) Config {
	c := NewConfig()
	for _, h := range s.HostsOn {
		c.SetHostOn(h, true)
	}
	for _, p := range s.Placements {
		c.Place(p.VM, p.Host, p.CPUPct)
	}
	for _, f := range s.HostFreq {
		c.SetHostFreq(f.Host, f.Freq)
	}
	return c
}
