// Package cluster models the managed infrastructure of the Mistral paper:
// physical hosts, virtual machines, their placement and CPU allocations, and
// the six adaptation actions that transform one configuration into another
// (increase/decrease a VM's CPU capacity, add/remove a replica, live-migrate
// a VM, and start/stop a host).
//
// A Catalog describes what exists (host specs, the universe of VMs including
// dormant replicas kept in the cold-store pool, and allocation constraints).
// A Config describes the current assignment: which hosts are powered on,
// which VMs are active, where each active VM is placed, and how much CPU it
// is allocated. Configs are immutable values from the caller's perspective:
// every transformation returns a fresh Config.
package cluster

import (
	"fmt"
	"sort"
	"time"
)

// VMID uniquely identifies a virtual machine within a Catalog.
type VMID string

// HostSpec describes a physical machine. The defaults mirror the paper's
// testbed: Pentium-4 class hosts with 1 GB of memory, 200 MB reserved for
// Dom-0, at most 4 VMs per host, and 80% of CPU available to guest VMs.
type HostSpec struct {
	// Name is the unique host identifier.
	Name string
	// TotalCPUPct is the full capacity of the host in percent (100 for a
	// single core at reference speed).
	TotalCPUPct float64
	// UsableCPUPct caps the sum of VM CPU allocations, reserving headroom
	// for Dom-0 (80 in the paper).
	UsableCPUPct float64
	// MemoryMB is total physical memory.
	MemoryMB int
	// Dom0MemoryMB is reserved for the hypervisor's control domain.
	Dom0MemoryMB int
	// MaxVMs limits how many VMs may be placed on the host.
	MaxVMs int

	// IdleWatts and BusyWatts anchor the utilization-based power model.
	IdleWatts float64
	BusyWatts float64
	// PowerExponent is the calibrated exponent r in
	// pwr = idle + (busy-idle)*(2ρ − ρ^r).
	PowerExponent float64

	// BootDuration/BootWatts and ShutdownDuration/ShutdownWatts are the
	// transient costs of power cycling (90 s / 80 W and 30 s / 20 W in the
	// paper).
	BootDuration     time.Duration
	BootWatts        float64
	ShutdownDuration time.Duration
	ShutdownWatts    float64

	// Zone names the data center the host lives in (empty = the single
	// default zone). Cross-zone moves use the WANMigrate action — the §VI
	// "migration over WAN ... between data centers" extension — and
	// cross-zone tier traffic pays a WAN latency penalty.
	Zone string

	// DVFSLevels lists the host's available frequency levels as fractions
	// of nominal speed, ascending, each in (0,1]. Empty means the host has
	// no frequency scaling. DVFS is the paper's §VI "complementary
	// technique for the lowest level controllers", implemented here as an
	// extension: the SetDVFS action trades compute capacity for power.
	DVFSLevels []float64
}

// SupportsDVFS reports whether the host exposes frequency levels.
func (h HostSpec) SupportsDVFS() bool { return len(h.DVFSLevels) > 0 }

// HasDVFSLevel reports whether f is one of the host's levels (nominal 1.0
// is always legal).
func (h HostSpec) HasDVFSLevel(f float64) bool {
	if f == 1 {
		return true
	}
	for _, l := range h.DVFSLevels {
		if l == f {
			return true
		}
	}
	return false
}

// DefaultHostSpec returns a host spec matching the paper's testbed machines.
func DefaultHostSpec(name string) HostSpec {
	return HostSpec{
		Name:             name,
		TotalCPUPct:      100,
		UsableCPUPct:     80,
		MemoryMB:         1024,
		Dom0MemoryMB:     200,
		MaxVMs:           4,
		IdleWatts:        60,
		BusyWatts:        95,
		PowerExponent:    1.4,
		BootDuration:     90 * time.Second,
		BootWatts:        80,
		ShutdownDuration: 30 * time.Second,
		ShutdownWatts:    20,
	}
}

// VMSpec describes a virtual machine: which application tier replica it
// hosts and its fixed memory requirement. VMs not placed in a Config are
// dormant (parked in the cold-store pool).
type VMSpec struct {
	ID       VMID
	App      string
	Tier     string
	Replica  int
	MemoryMB int
}

// TierKey identifies one tier of one application.
type TierKey struct {
	App  string
	Tier string
}

// Catalog is the immutable description of everything the controller may
// manage. Construct with NewCatalog, which validates internal consistency.
type Catalog struct {
	hosts     map[string]HostSpec
	hostNames []string // sorted
	vms       map[VMID]VMSpec
	vmIDs     []VMID // sorted
	byTier    map[TierKey][]VMID

	// MinCPUPct is the smallest allocation any active VM may have (20 in
	// the paper, to avoid request errors at low rates).
	MinCPUPct float64
	// CPUStepPct is the fixed amount by which the increase/decrease CPU
	// actions change an allocation.
	CPUStepPct float64
	// requiredTiers lists tiers that must keep at least one active replica.
	requiredTiers map[TierKey]bool
}

// CatalogConfig carries the tunables for NewCatalog.
type CatalogConfig struct {
	Hosts      []HostSpec
	VMs        []VMSpec
	MinCPUPct  float64 // default 20
	CPUStepPct float64 // default 10
	// OptionalTiers lists tiers allowed to scale to zero replicas. All
	// other tiers must retain at least one active replica.
	OptionalTiers []TierKey
}

// NewCatalog validates and builds a Catalog.
func NewCatalog(cfg CatalogConfig) (*Catalog, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("cluster: catalog needs at least one host")
	}
	if len(cfg.VMs) == 0 {
		return nil, fmt.Errorf("cluster: catalog needs at least one VM")
	}
	c := &Catalog{
		hosts:         make(map[string]HostSpec, len(cfg.Hosts)),
		vms:           make(map[VMID]VMSpec, len(cfg.VMs)),
		byTier:        make(map[TierKey][]VMID),
		MinCPUPct:     cfg.MinCPUPct,
		CPUStepPct:    cfg.CPUStepPct,
		requiredTiers: make(map[TierKey]bool),
	}
	if c.MinCPUPct <= 0 {
		c.MinCPUPct = 20
	}
	if c.CPUStepPct <= 0 {
		c.CPUStepPct = 10
	}
	for _, h := range cfg.Hosts {
		if h.Name == "" {
			return nil, fmt.Errorf("cluster: host with empty name")
		}
		if _, dup := c.hosts[h.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate host %q", h.Name)
		}
		if h.UsableCPUPct <= 0 || h.UsableCPUPct > h.TotalCPUPct {
			return nil, fmt.Errorf("cluster: host %q has invalid usable CPU %v/%v", h.Name, h.UsableCPUPct, h.TotalCPUPct)
		}
		if h.MaxVMs <= 0 {
			return nil, fmt.Errorf("cluster: host %q has MaxVMs %d", h.Name, h.MaxVMs)
		}
		for i, f := range h.DVFSLevels {
			if f <= 0 || f > 1 {
				return nil, fmt.Errorf("cluster: host %q DVFS level %v outside (0,1]", h.Name, f)
			}
			if i > 0 && f <= h.DVFSLevels[i-1] {
				return nil, fmt.Errorf("cluster: host %q DVFS levels not ascending", h.Name)
			}
		}
		c.hosts[h.Name] = h
		c.hostNames = append(c.hostNames, h.Name)
	}
	sort.Strings(c.hostNames)
	for _, vm := range cfg.VMs {
		if vm.ID == "" {
			return nil, fmt.Errorf("cluster: VM with empty ID")
		}
		if _, dup := c.vms[vm.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate VM %q", vm.ID)
		}
		if vm.MemoryMB <= 0 {
			return nil, fmt.Errorf("cluster: VM %q has memory %d MB", vm.ID, vm.MemoryMB)
		}
		c.vms[vm.ID] = vm
		c.vmIDs = append(c.vmIDs, vm.ID)
		k := TierKey{App: vm.App, Tier: vm.Tier}
		c.byTier[k] = append(c.byTier[k], vm.ID)
		c.requiredTiers[k] = true
	}
	sort.Slice(c.vmIDs, func(i, j int) bool { return c.vmIDs[i] < c.vmIDs[j] })
	for k := range c.byTier {
		ids := c.byTier[k]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	for _, k := range cfg.OptionalTiers {
		if _, ok := c.byTier[k]; !ok {
			return nil, fmt.Errorf("cluster: optional tier %v has no VMs", k)
		}
		c.requiredTiers[k] = false
	}
	return c, nil
}

// Host returns the spec for a host name.
func (c *Catalog) Host(name string) (HostSpec, bool) {
	h, ok := c.hosts[name]
	return h, ok
}

// HostNames returns all host names in sorted order. The slice is shared;
// callers must not mutate it.
func (c *Catalog) HostNames() []string { return c.hostNames }

// VM returns the spec for a VM ID.
func (c *Catalog) VM(id VMID) (VMSpec, bool) {
	vm, ok := c.vms[id]
	return vm, ok
}

// VMIDs returns all VM IDs (active and dormant) in sorted order. The slice
// is shared; callers must not mutate it.
func (c *Catalog) VMIDs() []VMID { return c.vmIDs }

// TierVMs returns the IDs of all VMs (replicas) belonging to a tier, sorted.
// The slice is shared; callers must not mutate it.
func (c *Catalog) TierVMs(k TierKey) []VMID { return c.byTier[k] }

// Tiers returns all tier keys in deterministic order.
func (c *Catalog) Tiers() []TierKey {
	keys := make([]TierKey, 0, len(c.byTier))
	for k := range c.byTier {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].App != keys[j].App {
			return keys[i].App < keys[j].App
		}
		return keys[i].Tier < keys[j].Tier
	})
	return keys
}

// Apps returns the distinct application names in sorted order.
func (c *Catalog) Apps() []string {
	seen := make(map[string]bool)
	var apps []string
	for _, k := range c.Tiers() {
		if !seen[k.App] {
			seen[k.App] = true
			apps = append(apps, k.App)
		}
	}
	return apps
}

// TierRequired reports whether the tier must keep at least one active
// replica in any candidate configuration.
func (c *Catalog) TierRequired(k TierKey) bool { return c.requiredTiers[k] }

// Zones returns the distinct zone names in sorted order (the empty default
// zone is listed as "" when any host uses it).
func (c *Catalog) Zones() []string {
	seen := make(map[string]bool)
	var zones []string
	for _, name := range c.hostNames {
		z := c.hosts[name].Zone
		if !seen[z] {
			seen[z] = true
			zones = append(zones, z)
		}
	}
	sort.Strings(zones)
	return zones
}

// ZoneOf returns the zone of a host (empty for unknown hosts).
func (c *Catalog) ZoneOf(host string) string {
	return c.hosts[host].Zone
}

// HostsInZone returns the sorted host names belonging to a zone.
func (c *Catalog) HostsInZone(zone string) []string {
	var out []string
	for _, name := range c.hostNames {
		if c.hosts[name].Zone == zone {
			out = append(out, name)
		}
	}
	return out
}

// MaxVMCPUPct returns the largest CPU allocation any single VM may hold,
// which is the largest usable capacity across hosts.
func (c *Catalog) MaxVMCPUPct() float64 {
	var maxCPU float64
	for _, h := range c.hosts {
		if h.UsableCPUPct > maxCPU {
			maxCPU = h.UsableCPUPct
		}
	}
	return maxCPU
}
