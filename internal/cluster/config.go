package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Placement records where an active VM runs and how much CPU it is
// allocated, in percent of the reference host capacity.
type Placement struct {
	Host   string
	CPUPct float64
}

// Config is a complete assignment of the managed infrastructure: the power
// state of every host and the placement/allocation of every active VM.
// VMs in the catalog that do not appear in the config are dormant.
//
// Treat Config values as immutable: derive new ones with Clone or by
// applying Actions. The zero value is an empty configuration.
//
// A Config carries an incrementally maintained 128-bit Fingerprint (see
// fingerprint.go) kept in sync by the four mutators; all mutation must go
// through Place/Unplace/SetHostOn/SetHostFreq (everything in this package
// does).
type Config struct {
	// hostOn marks powered-on hosts. Hosts absent from the map are off.
	hostOn map[string]bool
	// placements maps active VM -> placement.
	placements map[VMID]Placement
	// hostFreq holds DVFS frequency fractions; hosts absent from the map
	// run at nominal speed (1.0).
	hostFreq map[string]float64

	// fp is the XOR-folded structural hash of the three maps.
	fp Fingerprint

	// shared* mark maps borrowed from another Config via CloneShared; the
	// mutators copy-on-write a shared map before touching it.
	sharedOn, sharedPl, sharedFq bool
}

// NewConfig returns an empty configuration (all hosts off, all VMs dormant).
func NewConfig() Config {
	return Config{
		hostOn:     make(map[string]bool),
		placements: make(map[VMID]Placement),
	}
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	n := Config{
		hostOn:     make(map[string]bool, len(c.hostOn)),
		placements: make(map[VMID]Placement, len(c.placements)),
		fp:         c.fp,
	}
	for h, on := range c.hostOn {
		if on {
			n.hostOn[h] = true
		}
	}
	for id, p := range c.placements {
		n.placements[id] = p
	}
	if len(c.hostFreq) > 0 {
		n.hostFreq = make(map[string]float64, len(c.hostFreq))
		for h, f := range c.hostFreq {
			n.hostFreq[h] = f
		}
	}
	return n
}

// CloneShared returns a copy-on-write copy: the three maps are shared with
// the receiver and copied lazily by the first mutator that touches each.
// The receiver must be treated as frozen (never mutated in place) for as
// long as shared copies are live — the adaptation search satisfies this by
// construction (vertex configurations are only read after creation). For a
// copy that stays independent no matter what, use Clone.
func (c Config) CloneShared() Config {
	c.sharedOn, c.sharedPl, c.sharedFq = true, true, true
	return c
}

// ownHostOn, ownPlacements, and ownHostFreq are the copy-on-write barriers:
// each makes the corresponding map private (and non-nil) before a mutation.
func (c *Config) ownHostOn() {
	if !c.sharedOn {
		if c.hostOn == nil {
			c.hostOn = make(map[string]bool)
		}
		return
	}
	n := make(map[string]bool, len(c.hostOn)+1)
	for h, on := range c.hostOn {
		n[h] = on
	}
	c.hostOn = n
	c.sharedOn = false
}

func (c *Config) ownPlacements() {
	if !c.sharedPl {
		if c.placements == nil {
			c.placements = make(map[VMID]Placement)
		}
		return
	}
	n := make(map[VMID]Placement, len(c.placements)+1)
	for id, p := range c.placements {
		n[id] = p
	}
	c.placements = n
	c.sharedPl = false
}

func (c *Config) ownHostFreq() {
	if !c.sharedFq {
		if c.hostFreq == nil {
			c.hostFreq = make(map[string]float64)
		}
		return
	}
	n := make(map[string]float64, len(c.hostFreq)+1)
	for h, f := range c.hostFreq {
		n[h] = f
	}
	c.hostFreq = n
	c.sharedFq = false
}

// SetHostFreq sets a host's DVFS frequency fraction; 1 restores nominal
// speed. It does not check the host supports the level; use Validate.
func (c *Config) SetHostFreq(host string, f float64) {
	old, had := c.hostFreq[host]
	if had && old == f {
		return
	}
	if f == 1 && !had {
		return
	}
	c.ownHostFreq()
	if had {
		c.fp.xor(tokFreq(host, freqBucket(old)))
	}
	if f == 1 {
		delete(c.hostFreq, host)
		return
	}
	c.fp.xor(tokFreq(host, freqBucket(f)))
	c.hostFreq[host] = f
}

// HostFreq returns the host's DVFS frequency fraction (1 = nominal).
func (c Config) HostFreq(host string) float64 {
	if f, ok := c.hostFreq[host]; ok {
		return f
	}
	return 1
}

// SetHostOn powers a host on or off in the configuration. It does not check
// constraints; use Validate.
func (c *Config) SetHostOn(host string, on bool) {
	if c.hostOn[host] == on {
		return
	}
	c.ownHostOn()
	c.fp.xor(tokHostOn(host))
	if on {
		c.hostOn[host] = true
	} else {
		delete(c.hostOn, host)
	}
}

// HostOn reports whether a host is powered on.
func (c Config) HostOn(host string) bool { return c.hostOn[host] }

// ActiveHosts returns the sorted names of powered-on hosts.
func (c Config) ActiveHosts() []string {
	hosts := make([]string, 0, len(c.hostOn))
	for h, on := range c.hostOn {
		if on {
			hosts = append(hosts, h)
		}
	}
	sort.Strings(hosts)
	return hosts
}

// NumActiveHosts returns the count of powered-on hosts.
func (c Config) NumActiveHosts() int {
	n := 0
	for _, on := range c.hostOn {
		if on {
			n++
		}
	}
	return n
}

// Place activates a VM on a host with the given CPU allocation (or updates
// its placement if already active). It does not check constraints.
func (c *Config) Place(id VMID, host string, cpuPct float64) {
	c.ownPlacements()
	if old, ok := c.placements[id]; ok {
		c.fp.xor(tokPlacement(id, old.Host, cpuBucket(old.CPUPct)))
	}
	c.fp.xor(tokPlacement(id, host, cpuBucket(cpuPct)))
	c.placements[id] = Placement{Host: host, CPUPct: cpuPct}
}

// Unplace deactivates a VM (returns it to the dormant pool).
func (c *Config) Unplace(id VMID) {
	old, ok := c.placements[id]
	if !ok {
		return
	}
	c.ownPlacements()
	c.fp.xor(tokPlacement(id, old.Host, cpuBucket(old.CPUPct)))
	delete(c.placements, id)
}

// PlacementOf returns the placement of a VM and whether it is active.
func (c Config) PlacementOf(id VMID) (Placement, bool) {
	p, ok := c.placements[id]
	return p, ok
}

// Active reports whether the VM is placed.
func (c Config) Active(id VMID) bool {
	_, ok := c.placements[id]
	return ok
}

// ActiveVMs returns the sorted IDs of all active VMs.
func (c Config) ActiveVMs() []VMID {
	ids := make([]VMID, 0, len(c.placements))
	for id := range c.placements {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// VMsOnHost returns the sorted IDs of VMs placed on the host.
func (c Config) VMsOnHost(host string) []VMID {
	var ids []VMID
	for id, p := range c.placements {
		if p.Host == host {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AllocatedCPU returns the sum of CPU allocations on the host, folded in
// sorted VM order so the floating-point result is bit-identical across
// runs (map iteration order would perturb its last bits).
func (c Config) AllocatedCPU(host string) float64 {
	var sum float64
	for _, id := range c.VMsOnHost(host) {
		sum += c.placements[id].CPUPct
	}
	return sum
}

// ActiveReplicas returns the sorted IDs of active VMs in the given tier,
// using cat to resolve tier membership.
func (c Config) ActiveReplicas(cat *Catalog, k TierKey) []VMID {
	var ids []VMID
	for _, id := range cat.TierVMs(k) {
		if c.Active(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// Key returns a canonical string identity for the configuration, suitable
// for deduplication in graph search. CPU allocations are rounded to 0.01%.
func (c Config) Key() string {
	var b strings.Builder
	hosts := c.ActiveHosts()
	b.Grow(16 * (len(hosts) + len(c.placements)))
	b.WriteString("H:")
	for _, h := range hosts {
		b.WriteString(h)
		b.WriteByte(',')
	}
	b.WriteString("|V:")
	for _, id := range c.ActiveVMs() {
		p := c.placements[id]
		b.WriteString(string(id))
		b.WriteByte('@')
		b.WriteString(p.Host)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(int64(p.CPUPct*100+0.5), 10))
		b.WriteByte(';')
	}
	if len(c.hostFreq) > 0 {
		b.WriteString("|F:")
		hosts := make([]string, 0, len(c.hostFreq))
		for h := range c.hostFreq {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			b.WriteString(h)
			b.WriteByte('=')
			b.WriteString(strconv.FormatInt(int64(c.hostFreq[h]*1000+0.5), 10))
			b.WriteByte(';')
		}
	}
	return b.String()
}

// Equal reports whether two configurations are identical under Key. It
// compares the incrementally maintained fingerprints — two word compares —
// rather than building two sorted key strings.
func (c Config) Equal(o Config) bool { return c.fp == o.fp }

// Violation describes one violated constraint found by Validate.
type Violation struct {
	Host string
	VM   VMID
	Tier TierKey
	Msg  string
}

func (v Violation) String() string { return v.Msg }

// Validate checks all allocation constraints against the catalog and
// returns every violation found. A configuration with no violations is a
// "candidate" in the paper's terminology; one with violations is an
// "intermediate".
func (c Config) Validate(cat *Catalog) []Violation {
	var out []Violation
	type hostLoad struct {
		cpu float64
		mem int
		n   int
	}
	loads := make(map[string]*hostLoad)
	for id, p := range c.placements {
		vm, ok := cat.VM(id)
		if !ok {
			out = append(out, Violation{VM: id, Msg: fmt.Sprintf("unknown VM %q placed", id)})
			continue
		}
		spec, ok := cat.Host(p.Host)
		if !ok {
			out = append(out, Violation{VM: id, Host: p.Host, Msg: fmt.Sprintf("VM %q placed on unknown host %q", id, p.Host)})
			continue
		}
		if !c.HostOn(p.Host) {
			out = append(out, Violation{VM: id, Host: p.Host, Msg: fmt.Sprintf("VM %q placed on powered-off host %q", id, p.Host)})
		}
		if p.CPUPct < cat.MinCPUPct-1e-9 {
			out = append(out, Violation{VM: id, Msg: fmt.Sprintf("VM %q CPU %.1f%% below minimum %.1f%%", id, p.CPUPct, cat.MinCPUPct)})
		}
		if p.CPUPct > spec.UsableCPUPct+1e-9 {
			out = append(out, Violation{VM: id, Msg: fmt.Sprintf("VM %q CPU %.1f%% above host usable %.1f%%", id, p.CPUPct, spec.UsableCPUPct)})
		}
		l := loads[p.Host]
		if l == nil {
			l = &hostLoad{}
			loads[p.Host] = l
		}
		l.cpu += p.CPUPct
		l.mem += vm.MemoryMB
		l.n++
	}
	hosts := make([]string, 0, len(loads))
	for h := range loads {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		l := loads[h]
		spec, ok := cat.Host(h)
		if !ok {
			continue
		}
		if l.cpu > spec.UsableCPUPct+1e-9 {
			out = append(out, Violation{Host: h, Msg: fmt.Sprintf("host %q CPU oversubscribed: %.1f%% > %.1f%%", h, l.cpu, spec.UsableCPUPct)})
		}
		if l.mem+spec.Dom0MemoryMB > spec.MemoryMB {
			out = append(out, Violation{Host: h, Msg: fmt.Sprintf("host %q memory oversubscribed: %d+%d MB > %d MB", h, l.mem, spec.Dom0MemoryMB, spec.MemoryMB)})
		}
		if l.n > spec.MaxVMs {
			out = append(out, Violation{Host: h, Msg: fmt.Sprintf("host %q has %d VMs, max %d", h, l.n, spec.MaxVMs)})
		}
	}
	for _, k := range cat.Tiers() {
		if !cat.TierRequired(k) {
			continue
		}
		if len(c.ActiveReplicas(cat, k)) == 0 {
			out = append(out, Violation{Tier: k, Msg: fmt.Sprintf("tier %s/%s has no active replica", k.App, k.Tier)})
		}
	}
	freqHosts := make([]string, 0, len(c.hostFreq))
	for h := range c.hostFreq {
		freqHosts = append(freqHosts, h)
	}
	sort.Strings(freqHosts)
	for _, h := range freqHosts {
		spec, ok := cat.Host(h)
		if !ok {
			out = append(out, Violation{Host: h, Msg: fmt.Sprintf("DVFS level set on unknown host %q", h)})
			continue
		}
		if !spec.HasDVFSLevel(c.hostFreq[h]) {
			out = append(out, Violation{Host: h, Msg: fmt.Sprintf("host %q does not support DVFS level %v", h, c.hostFreq[h])})
		}
	}
	return out
}

// IsCandidate reports whether the configuration satisfies all constraints.
func (c Config) IsCandidate(cat *Catalog) bool { return len(c.Validate(cat)) == 0 }

// String renders a compact human-readable description.
func (c Config) String() string {
	var b strings.Builder
	b.WriteString("hosts{")
	for i, h := range c.ActiveHosts() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(h)
	}
	b.WriteString("} vms{")
	for i, id := range c.ActiveVMs() {
		if i > 0 {
			b.WriteByte(' ')
		}
		p := c.placements[id]
		fmt.Fprintf(&b, "%s@%s:%.0f%%", id, p.Host, p.CPUPct)
	}
	b.WriteString("}")
	return b.String()
}
