package cluster

import (
	"strings"
	"testing"
)

// zonedCatalog builds two hosts per zone across two zones.
func zonedCatalog(t *testing.T) *Catalog {
	t.Helper()
	mk := func(name, zone string) HostSpec {
		h := DefaultHostSpec(name)
		h.Zone = zone
		return h
	}
	cat, err := NewCatalog(CatalogConfig{
		Hosts: []HostSpec{mk("east0", "east"), mk("east1", "east"), mk("west0", "west"), mk("west1", "west")},
		VMs: []VMSpec{
			{ID: "a-web-0", App: "a", Tier: "web", MemoryMB: 200},
			{ID: "a-db-0", App: "a", Tier: "db", MemoryMB: 200},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCatalogZones(t *testing.T) {
	cat := zonedCatalog(t)
	zones := cat.Zones()
	if len(zones) != 2 || zones[0] != "east" || zones[1] != "west" {
		t.Errorf("Zones = %v", zones)
	}
	if got := cat.ZoneOf("west1"); got != "west" {
		t.Errorf("ZoneOf(west1) = %q", got)
	}
	if got := cat.ZoneOf("ghost"); got != "" {
		t.Errorf("ZoneOf(ghost) = %q", got)
	}
	if got := cat.HostsInZone("east"); len(got) != 2 || got[0] != "east0" {
		t.Errorf("HostsInZone(east) = %v", got)
	}
	// Single-zone catalogs report one (empty) zone.
	single := testCatalog(t, 2, 1)
	if got := single.Zones(); len(got) != 1 || got[0] != "" {
		t.Errorf("single-zone Zones = %v", got)
	}
}

func TestMigrateVsWANMigrate(t *testing.T) {
	cat := zonedCatalog(t)
	cfg := NewConfig()
	for _, h := range cat.HostNames() {
		cfg.SetHostOn(h, true)
	}
	cfg.Place("a-web-0", "east0", 40)
	cfg.Place("a-db-0", "east1", 40)

	// Same-zone move: migrate works, wan-migrate refuses.
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionMigrate, VM: "a-db-0", Host: "east0"}); err != nil {
		t.Errorf("same-zone migrate rejected: %v", err)
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionWANMigrate, VM: "a-db-0", Host: "east0"}); err == nil {
		t.Error("same-zone wan-migrate accepted")
	}
	// Cross-zone move: wan-migrate works, migrate refuses.
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionMigrate, VM: "a-db-0", Host: "west0"}); err == nil {
		t.Error("cross-zone migrate accepted")
	}
	next, filled, err := Apply(cat, cfg, Action{Kind: ActionWANMigrate, VM: "a-db-0", Host: "west0"})
	if err != nil {
		t.Fatalf("cross-zone wan-migrate rejected: %v", err)
	}
	if p, _ := next.PlacementOf("a-db-0"); p.Host != "west0" {
		t.Errorf("VM on %s after wan-migrate", p.Host)
	}
	if filled.FromHost != "east1" {
		t.Errorf("FromHost = %q", filled.FromHost)
	}
	if !strings.Contains(filled.String(), "wan-migrate") {
		t.Errorf("String = %q", filled.String())
	}
}

func TestEnumerateSplitsMigrationsByZone(t *testing.T) {
	cat := zonedCatalog(t)
	cfg := NewConfig()
	for _, h := range cat.HostNames() {
		cfg.SetHostOn(h, true)
	}
	cfg.Place("a-web-0", "east0", 40)
	cfg.Place("a-db-0", "east1", 40)

	lan := Enumerate(cat, cfg, ActionSpace{Kinds: []ActionKind{ActionMigrate}})
	for _, a := range lan {
		if cat.ZoneOf(a.Host) != "east" {
			t.Errorf("LAN migration to foreign zone: %v", a)
		}
	}
	if len(lan) == 0 {
		t.Error("no LAN migrations enumerated")
	}
	wan := Enumerate(cat, cfg, ActionSpace{Kinds: []ActionKind{ActionWANMigrate}})
	for _, a := range wan {
		if a.Kind != ActionWANMigrate || cat.ZoneOf(a.Host) != "west" {
			t.Errorf("unexpected WAN enumeration: %v", a)
		}
	}
	if len(wan) != 4 { // 2 VMs x 2 west hosts
		t.Errorf("WAN migrations = %d, want 4", len(wan))
	}
}

func TestPlanUsesWANMigrateAcrossZones(t *testing.T) {
	cat := zonedCatalog(t)
	from := NewConfig()
	for _, h := range cat.HostNames() {
		from.SetHostOn(h, true)
	}
	from.Place("a-web-0", "east0", 40)
	from.Place("a-db-0", "east1", 40)

	to := from.Clone()
	to.Place("a-db-0", "west0", 40)

	plan, err := Plan(cat, from, to)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(plan) != 1 || plan[0].Kind != ActionWANMigrate {
		t.Errorf("plan = %v, want one wan-migrate", plan)
	}
	got, _, err := ApplyAll(cat, from, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(to) {
		t.Error("plan did not reach target")
	}
}
