package cluster

import (
	"strings"
	"testing"
)

// dvfsCatalog builds a 2-host catalog whose first host supports DVFS.
func dvfsCatalog(t *testing.T) *Catalog {
	t.Helper()
	h0 := DefaultHostSpec("h0")
	h0.DVFSLevels = []float64{0.6, 0.8}
	cat, err := NewCatalog(CatalogConfig{
		Hosts: []HostSpec{h0, DefaultHostSpec("h1")},
		VMs: []VMSpec{
			{ID: "a-web-0", App: "a", Tier: "web", MemoryMB: 200},
			{ID: "a-db-0", App: "a", Tier: "db", MemoryMB: 200},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func dvfsConfig(t *testing.T, cat *Catalog) Config {
	t.Helper()
	cfg := NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.SetHostOn("h1", true)
	cfg.Place("a-web-0", "h0", 40)
	cfg.Place("a-db-0", "h1", 40)
	if !cfg.IsCandidate(cat) {
		t.Fatalf("base config invalid: %v", cfg.Validate(cat))
	}
	return cfg
}

func TestDVFSLevelValidation(t *testing.T) {
	bad := DefaultHostSpec("h")
	bad.DVFSLevels = []float64{0.8, 0.6}
	if _, err := NewCatalog(CatalogConfig{Hosts: []HostSpec{bad}, VMs: []VMSpec{{ID: "v", App: "a", Tier: "t", MemoryMB: 100}}}); err == nil {
		t.Error("descending levels accepted")
	}
	bad.DVFSLevels = []float64{0, 0.5}
	if _, err := NewCatalog(CatalogConfig{Hosts: []HostSpec{bad}, VMs: []VMSpec{{ID: "v", App: "a", Tier: "t", MemoryMB: 100}}}); err == nil {
		t.Error("zero level accepted")
	}
	ok := DefaultHostSpec("h")
	if ok.SupportsDVFS() {
		t.Error("default host should not support DVFS")
	}
	ok.DVFSLevels = []float64{0.6}
	if !ok.SupportsDVFS() || !ok.HasDVFSLevel(0.6) || !ok.HasDVFSLevel(1) || ok.HasDVFSLevel(0.7) {
		t.Error("level queries broken")
	}
}

func TestApplySetDVFS(t *testing.T) {
	cat := dvfsCatalog(t)
	cfg := dvfsConfig(t, cat)

	next, _, err := Apply(cat, cfg, Action{Kind: ActionSetDVFS, Host: "h0", Freq: 0.8})
	if err != nil {
		t.Fatalf("set-dvfs: %v", err)
	}
	if got := next.HostFreq("h0"); got != 0.8 {
		t.Errorf("freq = %v, want 0.8", got)
	}
	if cfg.HostFreq("h0") != 1 {
		t.Error("Apply mutated input config")
	}
	if !next.IsCandidate(cat) {
		t.Errorf("DVFS config invalid: %v", next.Validate(cat))
	}
	// Key distinguishes frequencies.
	if cfg.Key() == next.Key() {
		t.Error("frequency change not reflected in Key")
	}
	// Back to nominal.
	back, _, err := Apply(cat, next, Action{Kind: ActionSetDVFS, Host: "h0", Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(cfg) {
		t.Error("restoring nominal frequency did not restore the config")
	}

	// Errors: unsupported level, unknown/off host, already-at-level.
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionSetDVFS, Host: "h0", Freq: 0.7}); err == nil {
		t.Error("unsupported level accepted")
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionSetDVFS, Host: "ghost", Freq: 0.8}); err == nil {
		t.Error("unknown host accepted")
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionSetDVFS, Host: "h0", Freq: 1}); err == nil {
		t.Error("no-op transition accepted")
	}
	if _, _, err := Apply(cat, next, Action{Kind: ActionSetDVFS, Host: "h1", Freq: 0.8}); err == nil {
		t.Error("level on non-DVFS host accepted")
	}
}

func TestValidateRejectsUnsupportedFreq(t *testing.T) {
	cat := dvfsCatalog(t)
	cfg := dvfsConfig(t, cat)
	cfg.SetHostFreq("h1", 0.8) // h1 has no DVFS
	found := false
	for _, v := range cfg.Validate(cat) {
		if strings.Contains(v.Msg, "DVFS") || strings.Contains(v.Msg, "does not support") {
			found = true
		}
	}
	if !found {
		t.Error("unsupported frequency not flagged")
	}
}

func TestEnumerateDVFSActions(t *testing.T) {
	cat := dvfsCatalog(t)
	cfg := dvfsConfig(t, cat)
	actions := Enumerate(cat, cfg, ActionSpace{Kinds: []ActionKind{ActionSetDVFS}})
	// h0 at nominal: levels 0.6 and 0.8 offered; h1 has none.
	if len(actions) != 2 {
		t.Fatalf("actions = %v, want 2 DVFS transitions", actions)
	}
	for _, a := range actions {
		if a.Host != "h0" {
			t.Errorf("DVFS offered on non-DVFS host: %v", a)
		}
	}
	// From a reduced level, returning to nominal is offered.
	low, _, err := Apply(cat, cfg, Action{Kind: ActionSetDVFS, Host: "h0", Freq: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	actions = Enumerate(cat, low, ActionSpace{Kinds: []ActionKind{ActionSetDVFS}})
	var hasNominal bool
	for _, a := range actions {
		if a.Freq == 1 {
			hasNominal = true
		}
	}
	if !hasNominal {
		t.Errorf("return to nominal not offered: %v", actions)
	}
}

func TestPlanHandlesDVFS(t *testing.T) {
	cat := dvfsCatalog(t)
	from := dvfsConfig(t, cat)
	to := from.Clone()
	to.SetHostFreq("h0", 0.6)
	plan, err := Plan(cat, from, to)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	got, _, err := ApplyAll(cat, from, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(to) {
		t.Errorf("plan result %s != target %s", got, to)
	}
	if len(plan) != 1 || plan[0].Kind != ActionSetDVFS {
		t.Errorf("plan = %v, want single set-dvfs", plan)
	}
}
