package cluster

import "testing"

func TestEnumerateRespectsAppPools(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	cfg := baseConfig(t, cat, 4, 25)
	pools := map[string][]string{
		"rubis1": {"host0", "host1"},
		"rubis2": {"host2", "host3"},
	}
	actions := Enumerate(cat, cfg, ActionSpace{
		Kinds:    []ActionKind{ActionMigrate, ActionAddReplica},
		AppPools: pools,
	})
	if len(actions) == 0 {
		t.Fatal("no actions enumerated")
	}
	for _, a := range actions {
		vm, _ := cat.VM(a.VM)
		pool := pools[vm.App]
		found := false
		for _, h := range pool {
			if a.Host == h {
				found = true
			}
		}
		if !found {
			t.Errorf("action %s targets host outside %s's pool %v", a, vm.App, pool)
		}
	}
	// Unpooled apps stay unconstrained.
	free := Enumerate(cat, cfg, ActionSpace{
		Kinds:    []ActionKind{ActionMigrate},
		AppPools: map[string][]string{"rubis1": {"host0", "host1"}},
	})
	cross := false
	for _, a := range free {
		vm, _ := cat.VM(a.VM)
		if vm.App == "rubis2" && (a.Host == "host0" || a.Host == "host1") {
			cross = true
		}
	}
	if !cross {
		t.Error("unpooled app unexpectedly constrained")
	}
}
