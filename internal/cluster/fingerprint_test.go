package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// randMutate applies one random mutation through the fingerprint-maintaining
// mutators and returns a description for failure messages.
func randMutate(rng *rand.Rand, cat *Catalog, cfg *Config) string {
	hosts := cat.HostNames()
	vms := cat.VMIDs()
	switch rng.Intn(5) {
	case 0: // place (or re-place) a VM
		id := vms[rng.Intn(len(vms))]
		h := hosts[rng.Intn(len(hosts))]
		cpu := 10 + 10*float64(rng.Intn(7)) + rng.Float64()*0.004
		cfg.Place(id, h, cpu)
		return fmt.Sprintf("place %s on %s at %.4f", id, h, cpu)
	case 1: // unplace
		id := vms[rng.Intn(len(vms))]
		cfg.Unplace(id)
		return fmt.Sprintf("unplace %s", id)
	case 2: // host power
		h := hosts[rng.Intn(len(hosts))]
		on := rng.Intn(2) == 0
		cfg.SetHostOn(h, on)
		return fmt.Sprintf("set %s on=%v", h, on)
	case 3: // DVFS, including restores to full speed
		h := hosts[rng.Intn(len(hosts))]
		f := []float64{0.6, 0.733, 0.867, 1.0}[rng.Intn(4)]
		cfg.SetHostFreq(h, f)
		return fmt.Sprintf("set %s freq=%g", h, f)
	default: // crash re-placement: tear a VM down and restore it verbatim
		id := vms[rng.Intn(len(vms))]
		p, ok := cfg.PlacementOf(id)
		if !ok {
			return "noop"
		}
		cfg.Unplace(id)
		cfg.Place(id, p.Host, p.CPUPct)
		return fmt.Sprintf("re-place %s", id)
	}
}

// TestFingerprintMatchesRecompute drives long random mutation sequences
// through every mutator and checks after each step that the incrementally
// maintained fingerprint equals the from-scratch fold.
func TestFingerprintMatchesRecompute(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		cfg := baseConfig(t, cat, 4, 40)
		if got, want := cfg.Fingerprint(), cfg.RecomputeFingerprint(); got != want {
			t.Fatalf("trial %d: base fingerprint %v != recompute %v", trial, got, want)
		}
		for step := 0; step < 200; step++ {
			desc := randMutate(rng, cat, &cfg)
			if got, want := cfg.Fingerprint(), cfg.RecomputeFingerprint(); got != want {
				t.Fatalf("trial %d step %d (%s): fingerprint %v != recompute %v", trial, step, desc, got, want)
			}
		}
	}
}

// TestFingerprintEqualIffKeyEqual checks the identity contract on random
// configuration pairs: equal fingerprints exactly when equal Key() strings.
func TestFingerprintEqualIffKeyEqual(t *testing.T) {
	cat := testCatalog(t, 3, 2)
	rng := rand.New(rand.NewSource(11))
	var cfgs []Config
	for i := 0; i < 60; i++ {
		cfg := baseConfig(t, cat, 3, 40)
		for step := 0; step < rng.Intn(10); step++ {
			randMutate(rng, cat, &cfg)
		}
		cfgs = append(cfgs, cfg)
	}
	for i := range cfgs {
		for j := range cfgs {
			fpEq := cfgs[i].Fingerprint() == cfgs[j].Fingerprint()
			keyEq := cfgs[i].Key() == cfgs[j].Key()
			if fpEq != keyEq {
				t.Fatalf("configs %d,%d: fp-equal=%v key-equal=%v\nkey i: %s\nkey j: %s",
					i, j, fpEq, keyEq, cfgs[i].Key(), cfgs[j].Key())
			}
			if eq := cfgs[i].Equal(cfgs[j]); eq != keyEq {
				t.Fatalf("configs %d,%d: Equal=%v key-equal=%v", i, j, eq, keyEq)
			}
		}
	}
}

// TestFingerprintBucketRounding pins the Key()-compatible rounding: CPU
// allocations within one 0.01% bucket and DVFS fractions within one 0.001
// bucket must collide, neighbours must not.
func TestFingerprintBucketRounding(t *testing.T) {
	mk := func(cpu, freq float64) Config {
		cfg := NewConfig()
		cfg.SetHostOn("host0", true)
		cfg.Place("rubis1-web-0", "host0", cpu)
		cfg.SetHostFreq("host0", freq)
		return cfg
	}
	a, b := mk(40.0, 0.8670), mk(40.0012, 0.86701)
	if a.Key() != b.Key() {
		t.Fatalf("expected same-bucket keys, got %q vs %q", a.Key(), b.Key())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same-bucket configs have different fingerprints")
	}
	c := mk(40.02, 0.867)
	if a.Key() == c.Key() || a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("neighbouring CPU buckets collided")
	}
}

// TestFingerprintDeltaMatchesApply stages every enumerable action and
// checks that the O(1) overlay fingerprint equals the materialized child's
// (both incremental and recomputed).
func TestFingerprintDeltaMatchesApply(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	cfg := baseConfig(t, cat, 4, 40)
	cfg.SetHostFreq("host0", 0.867)
	for _, a := range Enumerate(cat, cfg, ActionSpace{}) {
		filled, delta, err := Stage(cat, cfg, a)
		if err != nil {
			t.Fatalf("stage %s: %v", a, err)
		}
		next, _, err := Apply(cat, cfg, a)
		if err != nil {
			t.Fatalf("apply %s: %v", a, err)
		}
		if got, want := cfg.FingerprintWith(delta), next.Fingerprint(); got != want {
			t.Fatalf("action %s: overlay fingerprint %v != applied %v", filled, got, want)
		}
		if got, want := next.Fingerprint(), next.RecomputeFingerprint(); got != want {
			t.Fatalf("action %s: applied fingerprint %v != recompute %v", filled, got, want)
		}
	}
}

// TestCloneSharedCopyOnWrite freezes a parent, mutates shared clones
// through every mutator, and checks the parent is untouched and each clone
// behaves exactly like a deep clone would.
func TestCloneSharedCopyOnWrite(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	parent := baseConfig(t, cat, 4, 40)
	parent.SetHostFreq("host1", 0.867)
	parentKey := parent.Key()

	mutations := []struct {
		name string
		do   func(c *Config)
	}{
		{"place", func(c *Config) { c.Place("rubis1-app-1", "host2", 40) }},
		{"replace", func(c *Config) { c.Place("rubis1-web-0", "host3", 60) }},
		{"unplace", func(c *Config) { c.Unplace("rubis2-db-0") }},
		{"host-on", func(c *Config) { c.SetHostOn("host3", true) }},
		{"host-off", func(c *Config) { c.SetHostOn("host1", false) }},
		{"freq", func(c *Config) { c.SetHostFreq("host0", 0.733) }},
		{"freq-restore", func(c *Config) { c.SetHostFreq("host1", 1.0) }},
	}
	for _, m := range mutations {
		shared := parent.CloneShared()
		deep := parent.Clone()
		m.do(&shared)
		m.do(&deep)
		if parent.Key() != parentKey {
			t.Fatalf("%s: mutating a shared clone changed the parent", m.name)
		}
		if shared.Key() != deep.Key() {
			t.Fatalf("%s: shared clone key %q != deep clone key %q", m.name, shared.Key(), deep.Key())
		}
		if shared.Fingerprint() != deep.Fingerprint() || shared.Fingerprint() != shared.RecomputeFingerprint() {
			t.Fatalf("%s: shared clone fingerprint diverged", m.name)
		}
	}

	// Chained shared clones: grandchildren must not corrupt ancestors.
	c1 := parent.CloneShared()
	c1.Place("rubis1-app-1", "host0", 40)
	c2 := c1.CloneShared()
	c2.SetHostOn("host3", true)
	c2.Place("rubis2-app-1", "host3", 40)
	if parent.Key() != parentKey {
		t.Fatalf("chained shared clones corrupted the root")
	}
	if c2.Fingerprint() != c2.RecomputeFingerprint() {
		t.Fatalf("chained shared clone fingerprint diverged")
	}
}

// FuzzFingerprintOps feeds arbitrary mutation scripts to the mutators and
// checks the incremental/recomputed fingerprint and the fp/Key identity
// invariants hold after every operation.
func FuzzFingerprintOps(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3, 0x14})
	f.Add([]byte{0xff, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Add([]byte("place-unplace-place"))
	f.Fuzz(func(t *testing.T, script []byte) {
		cat := testCatalog(t, 3, 1)
		hosts := cat.HostNames()
		vms := cat.VMIDs()
		cfg := baseConfig(t, cat, 2, 40)
		for i, b := range script {
			switch b % 5 {
			case 0:
				cfg.Place(vms[int(b/5)%len(vms)], hosts[i%len(hosts)], 10+float64(b%8)*10)
			case 1:
				cfg.Unplace(vms[int(b/5)%len(vms)])
			case 2:
				cfg.SetHostOn(hosts[int(b/5)%len(hosts)], b&0x80 == 0)
			case 3:
				cfg.SetHostFreq(hosts[int(b/5)%len(hosts)], []float64{0.6, 0.733, 0.867, 1.0}[int(b>>2)%4])
			case 4:
				if p, ok := cfg.PlacementOf(vms[int(b/5)%len(vms)]); ok {
					cfg.Unplace(vms[int(b/5)%len(vms)])
					cfg.Place(vms[int(b/5)%len(vms)], p.Host, p.CPUPct)
				}
			}
			if cfg.Fingerprint() != cfg.RecomputeFingerprint() {
				t.Fatalf("op %d (byte %#x): incremental fingerprint diverged from recompute", i, b)
			}
		}
		clone := cfg.Clone()
		if !clone.Equal(cfg) || clone.Key() != cfg.Key() {
			t.Fatalf("clone identity broken")
		}
	})
}
