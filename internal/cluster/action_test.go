package cluster

import (
	"strings"
	"testing"
)

func TestApplyIncreaseDecreaseCPU(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 40)

	next, filled, err := Apply(cat, cfg, Action{Kind: ActionIncreaseCPU, VM: "rubis1-web-0"})
	if err != nil {
		t.Fatalf("increase: %v", err)
	}
	if p, _ := next.PlacementOf("rubis1-web-0"); p.CPUPct != 50 {
		t.Errorf("CPU after increase = %v, want 50 (default step)", p.CPUPct)
	}
	if filled.DeltaCPUPct != 10 || filled.Host == "" {
		t.Errorf("filled action = %+v, want delta 10 and host set", filled)
	}
	// Original untouched.
	if p, _ := cfg.PlacementOf("rubis1-web-0"); p.CPUPct != 40 {
		t.Error("Apply mutated input config")
	}

	next2, _, err := Apply(cat, next, Action{Kind: ActionDecreaseCPU, VM: "rubis1-web-0", DeltaCPUPct: 30})
	if err != nil {
		t.Fatalf("decrease: %v", err)
	}
	if p, _ := next2.PlacementOf("rubis1-web-0"); p.CPUPct != 20 {
		t.Errorf("CPU after decrease = %v, want 20", p.CPUPct)
	}

	// Below minimum rejected.
	if _, _, err := Apply(cat, next2, Action{Kind: ActionDecreaseCPU, VM: "rubis1-web-0"}); err == nil {
		t.Error("decrease below minimum accepted")
	}
	// Above usable rejected.
	big := cfg.Clone()
	big.Place("rubis1-web-0", "host0", 80)
	if _, _, err := Apply(cat, big, Action{Kind: ActionIncreaseCPU, VM: "rubis1-web-0"}); err == nil {
		t.Error("increase above usable accepted")
	}
	// Inactive VM rejected.
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionIncreaseCPU, VM: "rubis1-app-1"}); err == nil {
		t.Error("increase on dormant VM accepted")
	}
}

func TestApplyAddRemoveReplica(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)

	next, filled, err := Apply(cat, cfg, Action{Kind: ActionAddReplica, VM: "rubis1-db-1", Host: "host1"})
	if err != nil {
		t.Fatalf("add-replica: %v", err)
	}
	if p, ok := next.PlacementOf("rubis1-db-1"); !ok || p.Host != "host1" || p.CPUPct != cat.MinCPUPct {
		t.Errorf("placement after add = %+v ok=%v", p, ok)
	}
	if filled.CPUPct != cat.MinCPUPct {
		t.Errorf("filled CPUPct = %v, want %v", filled.CPUPct, cat.MinCPUPct)
	}

	// Duplicate add rejected.
	if _, _, err := Apply(cat, next, Action{Kind: ActionAddReplica, VM: "rubis1-db-1", Host: "host0"}); err == nil {
		t.Error("adding already-active VM accepted")
	}
	// Add to off host rejected.
	off := cfg.Clone()
	off.SetHostOn("host1", false)
	if _, _, err := Apply(cat, off, Action{Kind: ActionAddReplica, VM: "rubis1-db-1", Host: "host1"}); err == nil {
		t.Error("add to powered-off host accepted")
	}
	// Unknown VM / host rejected.
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionAddReplica, VM: "ghost", Host: "host0"}); err == nil {
		t.Error("unknown VM accepted")
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionAddReplica, VM: "rubis1-db-1", Host: "ghost"}); err == nil {
		t.Error("unknown host accepted")
	}

	// Remove the second replica: fine. Remove the last one: rejected.
	removed, filledRm, err := Apply(cat, next, Action{Kind: ActionRemoveReplica, VM: "rubis1-db-1"})
	if err != nil {
		t.Fatalf("remove-replica: %v", err)
	}
	if filledRm.FromHost != "host1" {
		t.Errorf("FromHost = %q, want host1", filledRm.FromHost)
	}
	if removed.Active("rubis1-db-1") {
		t.Error("VM still active after removal")
	}
	if _, _, err := Apply(cat, removed, Action{Kind: ActionRemoveReplica, VM: "rubis1-db-0"}); err == nil {
		t.Error("removing last replica of required tier accepted")
	}
	if _, _, err := Apply(cat, removed, Action{Kind: ActionRemoveReplica, VM: "rubis1-db-1"}); err == nil {
		t.Error("removing dormant VM accepted")
	}
}

func TestApplyMigrate(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)
	p0, _ := cfg.PlacementOf("rubis1-web-0")
	dst := "host1"
	if p0.Host == "host1" {
		dst = "host0"
	}

	next, filled, err := Apply(cat, cfg, Action{Kind: ActionMigrate, VM: "rubis1-web-0", Host: dst})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	p, _ := next.PlacementOf("rubis1-web-0")
	if p.Host != dst || p.CPUPct != p0.CPUPct {
		t.Errorf("placement after migrate = %+v, want host %s cpu %v", p, dst, p0.CPUPct)
	}
	if filled.FromHost != p0.Host || filled.CPUPct != p0.CPUPct {
		t.Errorf("filled = %+v", filled)
	}

	if _, _, err := Apply(cat, cfg, Action{Kind: ActionMigrate, VM: "rubis1-web-0", Host: p0.Host}); err == nil {
		t.Error("self-migration accepted")
	}
	off := cfg.Clone()
	off.SetHostOn(dst, false)
	for _, id := range off.VMsOnHost(dst) {
		off.Unplace(id)
	}
	if _, _, err := Apply(cat, off, Action{Kind: ActionMigrate, VM: "rubis1-web-0", Host: dst}); err == nil {
		t.Error("migration to powered-off host accepted")
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionMigrate, VM: "rubis1-app-1", Host: dst}); err == nil {
		t.Error("migrating dormant VM accepted")
	}
}

func TestApplyHostPowerCycling(t *testing.T) {
	cat := testCatalog(t, 3, 1)
	cfg := baseConfig(t, cat, 2, 25)

	next, _, err := Apply(cat, cfg, Action{Kind: ActionStartHost, Host: "host2"})
	if err != nil {
		t.Fatalf("start-host: %v", err)
	}
	if !next.HostOn("host2") {
		t.Error("host2 not on after start")
	}
	if _, _, err := Apply(cat, next, Action{Kind: ActionStartHost, Host: "host2"}); err == nil {
		t.Error("starting already-on host accepted")
	}

	stopped, _, err := Apply(cat, next, Action{Kind: ActionStopHost, Host: "host2"})
	if err != nil {
		t.Fatalf("stop-host: %v", err)
	}
	if stopped.HostOn("host2") {
		t.Error("host2 still on after stop")
	}
	// Stopping a host with VMs rejected.
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionStopHost, Host: "host0"}); err == nil {
		t.Error("stopping non-empty host accepted")
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionStopHost, Host: "host2"}); err == nil {
		t.Error("stopping already-off host accepted")
	}
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionStartHost, Host: "ghost"}); err == nil {
		t.Error("starting unknown host accepted")
	}
}

func TestApplyUnknownKind(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)
	if _, _, err := Apply(cat, cfg, Action{Kind: ActionKind(99)}); err == nil {
		t.Error("unknown action kind accepted")
	}
}

func TestApplyAllRollsForward(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)
	plan := []Action{
		{Kind: ActionIncreaseCPU, VM: "rubis1-web-0"},
		{Kind: ActionAddReplica, VM: "rubis1-app-1", Host: "host1"},
		{Kind: ActionIncreaseCPU, VM: "rubis1-app-1"},
	}
	got, filled, err := ApplyAll(cat, cfg, plan)
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if len(filled) != 3 {
		t.Fatalf("filled = %d actions", len(filled))
	}
	if p, _ := got.PlacementOf("rubis1-app-1"); p.CPUPct != 30 {
		t.Errorf("app-1 CPU = %v, want 30", p.CPUPct)
	}
	// A failing step reports its index.
	bad := append(plan, Action{Kind: ActionMigrate, VM: "ghost", Host: "host0"})
	if _, _, err := ApplyAll(cat, cfg, bad); err == nil || !strings.Contains(err.Error(), "step 3") {
		t.Errorf("ApplyAll error = %v, want step 3 failure", err)
	}
}

func TestEnumerateProducesOnlyFeasibleActions(t *testing.T) {
	cat := testCatalog(t, 3, 2)
	cfg := baseConfig(t, cat, 2, 25)
	actions := Enumerate(cat, cfg, ActionSpace{})
	if len(actions) == 0 {
		t.Fatal("no actions enumerated")
	}
	for _, a := range actions {
		if _, _, err := Apply(cat, cfg, a); err != nil {
			t.Errorf("enumerated infeasible action %s: %v", a, err)
		}
	}
	// Determinism.
	again := Enumerate(cat, cfg, ActionSpace{})
	if len(again) != len(actions) {
		t.Fatalf("non-deterministic enumeration: %d vs %d", len(again), len(actions))
	}
	for i := range actions {
		if actions[i] != again[i] {
			t.Fatalf("non-deterministic enumeration at %d: %v vs %v", i, actions[i], again[i])
		}
	}
}

func TestEnumerateRespectsKindFilter(t *testing.T) {
	cat := testCatalog(t, 3, 1)
	cfg := baseConfig(t, cat, 2, 25)
	actions := Enumerate(cat, cfg, ActionSpace{Kinds: []ActionKind{ActionIncreaseCPU, ActionDecreaseCPU}})
	for _, a := range actions {
		if a.Kind != ActionIncreaseCPU && a.Kind != ActionDecreaseCPU {
			t.Errorf("unexpected action kind %s", a.Kind)
		}
	}
	if len(actions) == 0 {
		t.Error("no CPU actions enumerated")
	}
}

func TestEnumerateRespectsHostScope(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	cfg := baseConfig(t, cat, 4, 25)
	scope := []string{"host0", "host1"}
	actions := Enumerate(cat, cfg, ActionSpace{Hosts: scope})
	inScope := map[string]bool{"host0": true, "host1": true}
	for _, a := range actions {
		if a.Host != "" && !inScope[a.Host] {
			t.Errorf("action %s targets out-of-scope host", a)
		}
		if a.VM != "" {
			if p, ok := cfg.PlacementOf(a.VM); ok && !inScope[p.Host] {
				t.Errorf("action %s touches VM on out-of-scope host %s", a, p.Host)
			}
		}
	}
}

func TestEnumerateIncludesHostCycling(t *testing.T) {
	cat := testCatalog(t, 3, 1)
	cfg := baseConfig(t, cat, 2, 25)
	var haveStart, haveStop bool
	for _, a := range Enumerate(cat, cfg, ActionSpace{}) {
		switch a.Kind {
		case ActionStartHost:
			if a.Host == "host2" {
				haveStart = true
			}
		case ActionStopHost:
			haveStop = true
		}
	}
	if !haveStart {
		t.Error("start-host for off host not enumerated")
	}
	if haveStop {
		t.Error("stop-host enumerated for hosts with VMs")
	}
}

func TestActionStrings(t *testing.T) {
	cases := []struct {
		a    Action
		want string
	}{
		{Action{Kind: ActionIncreaseCPU, VM: "v", DeltaCPUPct: 10}, "increase-cpu"},
		{Action{Kind: ActionDecreaseCPU, VM: "v", DeltaCPUPct: 10}, "decrease-cpu"},
		{Action{Kind: ActionAddReplica, VM: "v", Host: "h"}, "add-replica"},
		{Action{Kind: ActionRemoveReplica, VM: "v"}, "remove-replica"},
		{Action{Kind: ActionMigrate, VM: "v", Host: "h", FromHost: "g"}, "migrate"},
		{Action{Kind: ActionStartHost, Host: "h"}, "start-host"},
		{Action{Kind: ActionStopHost, Host: "h"}, "stop-host"},
	}
	for _, c := range cases {
		if got := c.a.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want containing %q", got, c.want)
		}
		if got := c.a.Kind.String(); !strings.Contains(got, c.want) {
			t.Errorf("Kind.String() = %q, want containing %q", got, c.want)
		}
	}
	if got := PlanString(nil); got != "(no-op)" {
		t.Errorf("PlanString(nil) = %q", got)
	}
	if got := PlanString([]Action{{Kind: ActionStartHost, Host: "h"}}); !strings.Contains(got, "start-host") {
		t.Errorf("PlanString = %q", got)
	}
}
