package cluster

import (
	"testing"
	"testing/quick"

	"github.com/mistralcloud/mistral/internal/sim"
)

func TestPlanReachesTarget(t *testing.T) {
	cat := testCatalog(t, 3, 1)
	from := baseConfig(t, cat, 2, 25)

	// Target: consolidate everything onto host0/host2, scale up web,
	// add a db replica, power host1 down and host2 up.
	to := NewConfig()
	to.SetHostOn("host0", true)
	to.SetHostOn("host2", true)
	to.Place("rubis1-web-0", "host0", 40)
	to.Place("rubis1-app-0", "host0", 30)
	to.Place("rubis1-db-0", "host2", 25)
	to.Place("rubis1-db-1", "host2", 25)
	if !to.IsCandidate(cat) {
		t.Fatalf("target not a candidate: %v", to.Validate(cat))
	}

	plan, err := Plan(cat, from, to)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	got, _, err := ApplyAll(cat, from, plan)
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if !got.Equal(to) {
		t.Errorf("plan result %s != target %s", got, to)
	}
}

func TestPlanNoopForIdenticalConfigs(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	cfg := baseConfig(t, cat, 2, 25)
	plan, err := Plan(cat, cfg, cfg.Clone())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(plan) != 0 {
		t.Errorf("plan for identical configs = %v, want empty", plan)
	}
}

func TestPlanFailsForInvalidTarget(t *testing.T) {
	cat := testCatalog(t, 2, 1)
	from := baseConfig(t, cat, 2, 25)
	// Deactivating every replica of a required tier cannot be planned.
	to := from.Clone()
	to.Unplace("rubis1-db-0")
	if _, err := Plan(cat, from, to); err == nil {
		t.Error("Plan to config with missing required tier succeeded")
	}
}

// randomCandidate builds a random valid configuration over the catalog using
// the RNG, by placing one required replica per tier and then optionally more.
func randomCandidate(cat *Catalog, rng *sim.RNG) (Config, bool) {
	hosts := cat.HostNames()
	cfg := NewConfig()
	nOn := 1 + rng.IntN(len(hosts))
	perm := rng.Perm(len(hosts))
	onHosts := make([]string, 0, nOn)
	for _, i := range perm[:nOn] {
		cfg.SetHostOn(hosts[i], true)
		onHosts = append(onHosts, hosts[i])
	}
	fits := func(h string, cpu float64) bool {
		spec, _ := cat.Host(h)
		return cfg.AllocatedCPU(h)+cpu <= spec.UsableCPUPct &&
			len(cfg.VMsOnHost(h)) < spec.MaxVMs
	}
	place := func(id VMID) bool {
		cpu := cat.MinCPUPct + float64(rng.IntN(3))*cat.CPUStepPct
		start := rng.IntN(len(onHosts))
		for i := 0; i < len(onHosts); i++ {
			h := onHosts[(start+i)%len(onHosts)]
			if fits(h, cpu) {
				cfg.Place(id, h, cpu)
				return true
			}
		}
		return false
	}
	for _, k := range cat.Tiers() {
		ids := cat.TierVMs(k)
		if !place(ids[rng.IntN(len(ids))]) {
			return Config{}, false
		}
		// Possibly activate extra replicas.
		for _, id := range ids {
			if !cfg.Active(id) && rng.Float64() < 0.3 {
				place(id)
			}
		}
	}
	return cfg, cfg.IsCandidate(cat)
}

// Property: for any two random candidate configurations, Plan produces a
// feasible action sequence reaching the target exactly.
func TestPlanProperty(t *testing.T) {
	cat := testCatalog(t, 4, 2)
	rng := sim.NewRNG(42, 7)
	prop := func() bool {
		from, ok1 := randomCandidate(cat, rng)
		to, ok2 := randomCandidate(cat, rng)
		if !ok1 || !ok2 {
			return true // skip unlucky draws
		}
		plan, err := Plan(cat, from, to)
		if err != nil {
			t.Logf("Plan failed: from=%s to=%s err=%v", from, to, err)
			return false
		}
		got, _, err := ApplyAll(cat, from, plan)
		return err == nil && got.Equal(to)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
