package cluster

import (
	"fmt"
	"testing"
)

// testCatalog builds a catalog resembling the paper's testbed: nHosts
// default hosts and, per app, 1 web VM, 2 app-tier VMs, 2 db VMs (the
// paper's maximum replication levels), with app/db tiers' extra replicas
// dormant-capable and web required.
func testCatalog(t *testing.T, nHosts, nApps int) *Catalog {
	t.Helper()
	cfg := CatalogConfig{}
	for i := 0; i < nHosts; i++ {
		cfg.Hosts = append(cfg.Hosts, DefaultHostSpec(fmt.Sprintf("host%d", i)))
	}
	for a := 0; a < nApps; a++ {
		app := fmt.Sprintf("rubis%d", a+1)
		cfg.VMs = append(cfg.VMs,
			VMSpec{ID: VMID(app + "-web-0"), App: app, Tier: "web", Replica: 0, MemoryMB: 200},
			VMSpec{ID: VMID(app + "-app-0"), App: app, Tier: "app", Replica: 0, MemoryMB: 200},
			VMSpec{ID: VMID(app + "-app-1"), App: app, Tier: "app", Replica: 1, MemoryMB: 200},
			VMSpec{ID: VMID(app + "-db-0"), App: app, Tier: "db", Replica: 0, MemoryMB: 200},
			VMSpec{ID: VMID(app + "-db-1"), App: app, Tier: "db", Replica: 1, MemoryMB: 200},
		)
	}
	cat, err := NewCatalog(cfg)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	return cat
}

// baseConfig places one replica of each tier of each app round-robin over
// the first nHostsOn hosts at the given CPU allocation.
func baseConfig(t *testing.T, cat *Catalog, nHostsOn int, cpuPct float64) Config {
	t.Helper()
	cfg := NewConfig()
	hosts := cat.HostNames()
	if nHostsOn > len(hosts) {
		t.Fatalf("nHostsOn %d > hosts %d", nHostsOn, len(hosts))
	}
	for i := 0; i < nHostsOn; i++ {
		cfg.SetHostOn(hosts[i], true)
	}
	i := 0
	for _, k := range cat.Tiers() {
		ids := cat.TierVMs(k)
		cfg.Place(ids[0], hosts[i%nHostsOn], cpuPct)
		i++
	}
	if !cfg.IsCandidate(cat) {
		t.Fatalf("baseConfig is not a candidate: %v", cfg.Validate(cat))
	}
	return cfg
}
