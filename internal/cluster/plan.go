package cluster

import "fmt"

// Plan computes an ordered sequence of adaptation actions that transforms
// configuration from into configuration to. The plan orders actions so that
// every step is feasible under Apply:
//
//  1. start hosts that to powers on,
//  2. decrease CPU allocations (freeing capacity),
//  3. add replicas activated by to,
//  4. migrate VMs whose host changes,
//  5. increase CPU allocations,
//  6. remove replicas deactivated by to,
//  7. stop hosts that to powers off.
//
// The returned plan applied to from yields a configuration equal to to.
func Plan(cat *Catalog, from, to Config) ([]Action, error) {
	var starts, dvfs, decreases, adds, migrates, increases, removes, stops []Action

	for _, h := range cat.HostNames() {
		fromOn, toOn := from.HostOn(h), to.HostOn(h)
		switch {
		case !fromOn && toOn:
			starts = append(starts, Action{Kind: ActionStartHost, Host: h})
		case fromOn && !toOn:
			stops = append(stops, Action{Kind: ActionStopHost, Host: h})
		}
		if toOn && from.HostFreq(h) != to.HostFreq(h) {
			dvfs = append(dvfs, Action{Kind: ActionSetDVFS, Host: h, Freq: to.HostFreq(h)})
		}
	}

	for _, id := range cat.VMIDs() {
		fromP, fromActive := from.PlacementOf(id)
		toP, toActive := to.PlacementOf(id)
		switch {
		case !fromActive && toActive:
			adds = append(adds, Action{Kind: ActionAddReplica, VM: id, Host: toP.Host, CPUPct: toP.CPUPct})
		case fromActive && !toActive:
			removes = append(removes, Action{Kind: ActionRemoveReplica, VM: id})
		case fromActive && toActive:
			if delta := toP.CPUPct - fromP.CPUPct; delta < -1e-9 {
				decreases = append(decreases, Action{Kind: ActionDecreaseCPU, VM: id, DeltaCPUPct: -delta})
			}
			if fromP.Host != toP.Host {
				kind := ActionMigrate
				if cat.ZoneOf(fromP.Host) != cat.ZoneOf(toP.Host) {
					kind = ActionWANMigrate
				}
				migrates = append(migrates, Action{Kind: kind, VM: id, Host: toP.Host})
			}
			if delta := toP.CPUPct - fromP.CPUPct; delta > 1e-9 {
				increases = append(increases, Action{Kind: ActionIncreaseCPU, VM: id, DeltaCPUPct: delta})
			}
		}
	}

	plan := make([]Action, 0, len(starts)+len(dvfs)+len(decreases)+len(adds)+len(migrates)+len(increases)+len(removes)+len(stops))
	plan = append(plan, starts...)
	plan = append(plan, dvfs...)
	plan = append(plan, decreases...)
	plan = append(plan, adds...)
	plan = append(plan, migrates...)
	plan = append(plan, increases...)
	plan = append(plan, removes...)
	plan = append(plan, stops...)

	got, filled, err := ApplyAll(cat, from, plan)
	if err != nil {
		return nil, fmt.Errorf("cluster: plan infeasible: %w", err)
	}
	if !got.Equal(to) {
		return nil, fmt.Errorf("cluster: plan does not reach target: got %s, want %s", got, to)
	}
	return filled, nil
}
