package cluster

import (
	"fmt"
	"strings"
)

// ActionKind enumerates the six adaptation actions of the paper (§III-C).
type ActionKind int

// Adaptation action kinds.
const (
	ActionIncreaseCPU ActionKind = iota + 1
	ActionDecreaseCPU
	ActionAddReplica
	ActionRemoveReplica
	ActionMigrate
	ActionStartHost
	ActionStopHost
	// ActionSetDVFS changes a host's frequency level — the §VI
	// "complementary technique" extension, available to the lowest-level
	// controllers as a near-free power/performance knob.
	ActionSetDVFS
	// ActionWANMigrate moves a VM (memory and disk image) to a host in a
	// different data center — the §VI "migration over WAN" extension,
	// wielded by the top hierarchy level at tens-of-minutes timescales.
	ActionWANMigrate
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActionIncreaseCPU:
		return "increase-cpu"
	case ActionDecreaseCPU:
		return "decrease-cpu"
	case ActionAddReplica:
		return "add-replica"
	case ActionRemoveReplica:
		return "remove-replica"
	case ActionMigrate:
		return "migrate"
	case ActionStartHost:
		return "start-host"
	case ActionStopHost:
		return "stop-host"
	case ActionSetDVFS:
		return "set-dvfs"
	case ActionWANMigrate:
		return "wan-migrate"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one adaptation step. Fields are used according to Kind:
//
//   - ActionIncreaseCPU / ActionDecreaseCPU: VM, DeltaCPUPct
//   - ActionAddReplica: VM (the dormant replica), Host (target), CPUPct
//     (initial allocation; catalog minimum if zero)
//   - ActionRemoveReplica: VM
//   - ActionMigrate: VM, Host (destination); FromHost is filled by Apply
//   - ActionStartHost / ActionStopHost: Host
//   - ActionSetDVFS: Host, Freq (target frequency fraction)
type Action struct {
	Kind        ActionKind
	VM          VMID
	Host        string
	FromHost    string
	DeltaCPUPct float64
	CPUPct      float64
	Freq        float64
}

// String renders a human-readable description.
func (a Action) String() string {
	switch a.Kind {
	case ActionIncreaseCPU:
		return fmt.Sprintf("increase-cpu %s +%.0f%%", a.VM, a.DeltaCPUPct)
	case ActionDecreaseCPU:
		return fmt.Sprintf("decrease-cpu %s -%.0f%%", a.VM, a.DeltaCPUPct)
	case ActionAddReplica:
		return fmt.Sprintf("add-replica %s -> %s", a.VM, a.Host)
	case ActionRemoveReplica:
		return fmt.Sprintf("remove-replica %s", a.VM)
	case ActionMigrate:
		if a.FromHost != "" {
			return fmt.Sprintf("migrate %s %s -> %s", a.VM, a.FromHost, a.Host)
		}
		return fmt.Sprintf("migrate %s -> %s", a.VM, a.Host)
	case ActionStartHost:
		return fmt.Sprintf("start-host %s", a.Host)
	case ActionStopHost:
		return fmt.Sprintf("stop-host %s", a.Host)
	case ActionSetDVFS:
		return fmt.Sprintf("set-dvfs %s %.0f%%", a.Host, a.Freq*100)
	case ActionWANMigrate:
		if a.FromHost != "" {
			return fmt.Sprintf("wan-migrate %s %s -> %s", a.VM, a.FromHost, a.Host)
		}
		return fmt.Sprintf("wan-migrate %s -> %s", a.VM, a.Host)
	default:
		return fmt.Sprintf("unknown-action(%d)", int(a.Kind))
	}
}

// PlanString renders an action sequence as a single line.
func PlanString(plan []Action) string {
	if len(plan) == 0 {
		return "(no-op)"
	}
	parts := make([]string, len(plan))
	for i, a := range plan {
		parts[i] = a.String()
	}
	return strings.Join(parts, "; ")
}

// Stage validates the action against cfg and returns the filled-in Action
// plus the Delta it would make, without cloning or mutating anything. It
// enforces action *feasibility* (the action must make sense in cfg: e.g. a
// migrated VM must be active and the destination powered on) but not
// candidate constraints: the delta may lead to an intermediate configuration
// that oversubscribes a host, as the paper's search deliberately allows.
// The returned Action is the input with derived fields (FromHost, CPUPct)
// filled in for cost accounting.
//
// Stage is the allocation-free core of Apply: search code stages candidate
// children, evaluates them through the delta overlay and FingerprintWith,
// and only materializes survivors.
func Stage(cat *Catalog, cfg Config, a Action) (Action, Delta, error) {
	switch a.Kind {
	case ActionIncreaseCPU:
		p, ok := cfg.PlacementOf(a.VM)
		if !ok {
			return a, Delta{}, fmt.Errorf("cluster: increase-cpu: VM %q not active", a.VM)
		}
		delta := a.DeltaCPUPct
		if delta <= 0 {
			delta = cat.CPUStepPct
			a.DeltaCPUPct = delta
		}
		spec, _ := cat.Host(p.Host)
		if p.CPUPct+delta > spec.UsableCPUPct+1e-9 {
			return a, Delta{}, fmt.Errorf("cluster: increase-cpu: VM %q would exceed host usable capacity (%.1f+%.1f > %.1f)", a.VM, p.CPUPct, delta, spec.UsableCPUPct)
		}
		a.Host = p.Host
		return a, Delta{VM: a.VM, OldPlaced: true, Old: p, NewPlaced: true, New: Placement{Host: p.Host, CPUPct: p.CPUPct + delta}}, nil

	case ActionDecreaseCPU:
		p, ok := cfg.PlacementOf(a.VM)
		if !ok {
			return a, Delta{}, fmt.Errorf("cluster: decrease-cpu: VM %q not active", a.VM)
		}
		delta := a.DeltaCPUPct
		if delta <= 0 {
			delta = cat.CPUStepPct
			a.DeltaCPUPct = delta
		}
		if p.CPUPct-delta < cat.MinCPUPct-1e-9 {
			return a, Delta{}, fmt.Errorf("cluster: decrease-cpu: VM %q would fall below minimum (%.1f-%.1f < %.1f)", a.VM, p.CPUPct, delta, cat.MinCPUPct)
		}
		a.Host = p.Host
		return a, Delta{VM: a.VM, OldPlaced: true, Old: p, NewPlaced: true, New: Placement{Host: p.Host, CPUPct: p.CPUPct - delta}}, nil

	case ActionAddReplica:
		if _, ok := cat.VM(a.VM); !ok {
			return a, Delta{}, fmt.Errorf("cluster: add-replica: unknown VM %q", a.VM)
		}
		if cfg.Active(a.VM) {
			return a, Delta{}, fmt.Errorf("cluster: add-replica: VM %q already active", a.VM)
		}
		if _, ok := cat.Host(a.Host); !ok {
			return a, Delta{}, fmt.Errorf("cluster: add-replica: unknown host %q", a.Host)
		}
		if !cfg.HostOn(a.Host) {
			return a, Delta{}, fmt.Errorf("cluster: add-replica: host %q is off", a.Host)
		}
		cpu := a.CPUPct
		if cpu <= 0 {
			cpu = cat.MinCPUPct
			a.CPUPct = cpu
		}
		return a, Delta{VM: a.VM, NewPlaced: true, New: Placement{Host: a.Host, CPUPct: cpu}}, nil

	case ActionRemoveReplica:
		vm, ok := cat.VM(a.VM)
		if !ok {
			return a, Delta{}, fmt.Errorf("cluster: remove-replica: unknown VM %q", a.VM)
		}
		p, active := cfg.PlacementOf(a.VM)
		if !active {
			return a, Delta{}, fmt.Errorf("cluster: remove-replica: VM %q not active", a.VM)
		}
		k := TierKey{App: vm.App, Tier: vm.Tier}
		if cat.TierRequired(k) && len(cfg.ActiveReplicas(cat, k)) <= 1 {
			return a, Delta{}, fmt.Errorf("cluster: remove-replica: VM %q is the last replica of required tier %s/%s", a.VM, k.App, k.Tier)
		}
		a.FromHost = p.Host
		return a, Delta{VM: a.VM, OldPlaced: true, Old: p}, nil

	case ActionMigrate, ActionWANMigrate:
		p, ok := cfg.PlacementOf(a.VM)
		if !ok {
			return a, Delta{}, fmt.Errorf("cluster: %s: VM %q not active", a.Kind, a.VM)
		}
		if _, ok := cat.Host(a.Host); !ok {
			return a, Delta{}, fmt.Errorf("cluster: %s: unknown host %q", a.Kind, a.Host)
		}
		if a.Host == p.Host {
			return a, Delta{}, fmt.Errorf("cluster: %s: VM %q already on host %q", a.Kind, a.VM, a.Host)
		}
		if !cfg.HostOn(a.Host) {
			return a, Delta{}, fmt.Errorf("cluster: %s: destination host %q is off", a.Kind, a.Host)
		}
		sameZone := cat.ZoneOf(p.Host) == cat.ZoneOf(a.Host)
		if a.Kind == ActionMigrate && !sameZone {
			return a, Delta{}, fmt.Errorf("cluster: migrate: %q and %q are in different zones; use wan-migrate", p.Host, a.Host)
		}
		if a.Kind == ActionWANMigrate && sameZone {
			return a, Delta{}, fmt.Errorf("cluster: wan-migrate: %q and %q share a zone; use migrate", p.Host, a.Host)
		}
		a.FromHost = p.Host
		a.CPUPct = p.CPUPct
		return a, Delta{VM: a.VM, OldPlaced: true, Old: p, NewPlaced: true, New: Placement{Host: a.Host, CPUPct: p.CPUPct}}, nil

	case ActionStartHost:
		if _, ok := cat.Host(a.Host); !ok {
			return a, Delta{}, fmt.Errorf("cluster: start-host: unknown host %q", a.Host)
		}
		if cfg.HostOn(a.Host) {
			return a, Delta{}, fmt.Errorf("cluster: start-host: host %q already on", a.Host)
		}
		return a, Delta{Host: a.Host, On: true}, nil

	case ActionStopHost:
		if _, ok := cat.Host(a.Host); !ok {
			return a, Delta{}, fmt.Errorf("cluster: stop-host: unknown host %q", a.Host)
		}
		if !cfg.HostOn(a.Host) {
			return a, Delta{}, fmt.Errorf("cluster: stop-host: host %q already off", a.Host)
		}
		if n := cfg.VMsOnHost(a.Host); len(n) > 0 {
			return a, Delta{}, fmt.Errorf("cluster: stop-host: host %q still has %d VMs", a.Host, len(n))
		}
		return a, Delta{Host: a.Host, On: false}, nil

	case ActionSetDVFS:
		spec, ok := cat.Host(a.Host)
		if !ok {
			return a, Delta{}, fmt.Errorf("cluster: set-dvfs: unknown host %q", a.Host)
		}
		if !cfg.HostOn(a.Host) {
			return a, Delta{}, fmt.Errorf("cluster: set-dvfs: host %q is off", a.Host)
		}
		if !spec.HasDVFSLevel(a.Freq) {
			return a, Delta{}, fmt.Errorf("cluster: set-dvfs: host %q has no level %v", a.Host, a.Freq)
		}
		if cfg.HostFreq(a.Host) == a.Freq {
			return a, Delta{}, fmt.Errorf("cluster: set-dvfs: host %q already at %v", a.Host, a.Freq)
		}
		return a, Delta{FreqHost: a.Host, NewFreq: a.Freq}, nil

	default:
		return a, Delta{}, fmt.Errorf("cluster: unknown action kind %d", int(a.Kind))
	}
}

// Apply executes the action on cfg and returns the resulting configuration.
// It is Stage followed by a deep clone and the staged delta; hot paths that
// expand many candidates should Stage and materialize survivors themselves.
func Apply(cat *Catalog, cfg Config, a Action) (Config, Action, error) {
	filled, d, err := Stage(cat, cfg, a)
	if err != nil {
		return Config{}, filled, err
	}
	n := cfg.Clone()
	n.ApplyDelta(d)
	return n, filled, nil
}

// ApplyAll applies a sequence of actions, returning the final configuration
// and the sequence with derived fields filled in.
func ApplyAll(cat *Catalog, cfg Config, plan []Action) (Config, []Action, error) {
	out := make([]Action, 0, len(plan))
	cur := cfg
	for i, a := range plan {
		next, filled, err := Apply(cat, cur, a)
		if err != nil {
			return Config{}, nil, fmt.Errorf("cluster: applying step %d (%s): %w", i, a, err)
		}
		out = append(out, filled)
		cur = next
	}
	return cur, out, nil
}

// ActionSpace restricts which actions Enumerate generates. The zero value
// allows everything on all hosts and VMs.
type ActionSpace struct {
	// Kinds restricts the generated action kinds; empty means all six.
	Kinds []ActionKind
	// Hosts restricts target hosts (migration destinations, replica
	// targets, power cycling) and the VMs considered (only VMs currently
	// placed within Hosts); empty means all hosts.
	Hosts []string
	// AppPools confines each application's VMs to a fixed host pool (the
	// Perf-Cost baseline's "2 hosts per application"): migrations and
	// replica additions for a pooled app only target its pool. Apps absent
	// from the map are unconstrained.
	AppPools map[string][]string
}

func (s ActionSpace) allowsKind(k ActionKind) bool {
	if len(s.Kinds) == 0 {
		return true
	}
	for _, allowed := range s.Kinds {
		if allowed == k {
			return true
		}
	}
	return false
}

func (s ActionSpace) hostSet() map[string]bool {
	if len(s.Hosts) == 0 {
		return nil
	}
	set := make(map[string]bool, len(s.Hosts))
	for _, h := range s.Hosts {
		set[h] = true
	}
	return set
}

// allowsAppHost reports whether app may use host under the pools.
func (s ActionSpace) allowsAppHost(appName, host string) bool {
	pool, pooled := s.AppPools[appName]
	if !pooled {
		return true
	}
	for _, h := range pool {
		if h == host {
			return true
		}
	}
	return false
}

// Enumerate generates every feasible single action from cfg within the
// action space. The result is deterministic (sorted by VM/host iteration
// order). Infeasible actions are filtered by attempting Stage, which
// validates without cloning the configuration.
func Enumerate(cat *Catalog, cfg Config, space ActionSpace) []Action {
	hosts := space.hostSet()
	inScope := func(h string) bool { return hosts == nil || hosts[h] }

	var out []Action
	tryAppend := func(a Action) {
		if _, _, err := Stage(cat, cfg, a); err == nil {
			out = append(out, a)
		}
	}

	for _, id := range cat.VMIDs() {
		p, active := cfg.PlacementOf(id)
		if active && !inScope(p.Host) {
			continue
		}
		if active {
			if space.allowsKind(ActionIncreaseCPU) {
				tryAppend(Action{Kind: ActionIncreaseCPU, VM: id, DeltaCPUPct: cat.CPUStepPct})
			}
			if space.allowsKind(ActionDecreaseCPU) {
				tryAppend(Action{Kind: ActionDecreaseCPU, VM: id, DeltaCPUPct: cat.CPUStepPct})
			}
			if space.allowsKind(ActionMigrate) || space.allowsKind(ActionWANMigrate) {
				vm, _ := cat.VM(id)
				srcZone := cat.ZoneOf(p.Host)
				for _, h := range cat.HostNames() {
					if h == p.Host || !inScope(h) || !cfg.HostOn(h) || !space.allowsAppHost(vm.App, h) {
						continue
					}
					kind := ActionMigrate
					if cat.ZoneOf(h) != srcZone {
						kind = ActionWANMigrate
					}
					if space.allowsKind(kind) {
						tryAppend(Action{Kind: kind, VM: id, Host: h})
					}
				}
			}
			if space.allowsKind(ActionRemoveReplica) {
				tryAppend(Action{Kind: ActionRemoveReplica, VM: id})
			}
		} else if space.allowsKind(ActionAddReplica) {
			vm, _ := cat.VM(id)
			for _, h := range cat.HostNames() {
				if !inScope(h) || !cfg.HostOn(h) || !space.allowsAppHost(vm.App, h) {
					continue
				}
				tryAppend(Action{Kind: ActionAddReplica, VM: id, Host: h, CPUPct: cat.MinCPUPct})
			}
		}
	}
	for _, h := range cat.HostNames() {
		if !inScope(h) {
			continue
		}
		if cfg.HostOn(h) {
			if space.allowsKind(ActionStopHost) {
				tryAppend(Action{Kind: ActionStopHost, Host: h})
			}
			if space.allowsKind(ActionSetDVFS) {
				spec, _ := cat.Host(h)
				hasNominal := false
				for _, f := range spec.DVFSLevels {
					if f == 1 {
						hasNominal = true
					}
					if f != cfg.HostFreq(h) {
						tryAppend(Action{Kind: ActionSetDVFS, Host: h, Freq: f})
					}
				}
				// Returning to nominal speed is always available.
				if !hasNominal && spec.SupportsDVFS() && cfg.HostFreq(h) != 1 {
					tryAppend(Action{Kind: ActionSetDVFS, Host: h, Freq: 1})
				}
			}
		} else if space.allowsKind(ActionStartHost) {
			tryAppend(Action{Kind: ActionStartHost, Host: h})
		}
	}
	return out
}

// Inverse synthesizes the compensating action that undoes a previously
// applied (filled) action, given the configuration the action was applied
// to. The inverse of a filled inverse round-trips: applying the action and
// then its inverse restores the original configuration and fingerprint.
// The returned action has its derived fields (FromHost, CPUPct, Freq)
// filled directly from the forward action and the pre-step configuration,
// so callers may cost or record it without staging it again.
func Inverse(filled Action, before Config) (Action, error) {
	switch filled.Kind {
	case ActionIncreaseCPU:
		return Action{Kind: ActionDecreaseCPU, VM: filled.VM, Host: filled.Host, DeltaCPUPct: filled.DeltaCPUPct}, nil
	case ActionDecreaseCPU:
		return Action{Kind: ActionIncreaseCPU, VM: filled.VM, Host: filled.Host, DeltaCPUPct: filled.DeltaCPUPct}, nil
	case ActionAddReplica:
		return Action{Kind: ActionRemoveReplica, VM: filled.VM, FromHost: filled.Host}, nil
	case ActionRemoveReplica:
		p, ok := before.PlacementOf(filled.VM)
		if !ok {
			return Action{}, fmt.Errorf("cluster: inverse of remove-replica %s: VM not placed in pre-step config", filled.VM)
		}
		return Action{Kind: ActionAddReplica, VM: filled.VM, Host: p.Host, CPUPct: p.CPUPct}, nil
	case ActionMigrate:
		return Action{Kind: ActionMigrate, VM: filled.VM, Host: filled.FromHost, FromHost: filled.Host, CPUPct: filled.CPUPct}, nil
	case ActionWANMigrate:
		return Action{Kind: ActionWANMigrate, VM: filled.VM, Host: filled.FromHost, FromHost: filled.Host, CPUPct: filled.CPUPct}, nil
	case ActionStartHost:
		return Action{Kind: ActionStopHost, Host: filled.Host}, nil
	case ActionStopHost:
		return Action{Kind: ActionStartHost, Host: filled.Host}, nil
	case ActionSetDVFS:
		return Action{Kind: ActionSetDVFS, Host: filled.Host, Freq: before.HostFreq(filled.Host)}, nil
	}
	return Action{}, fmt.Errorf("cluster: no inverse for action kind %v", filled.Kind)
}
