package cluster

import "fmt"

// Fingerprint is a 128-bit structural identity of a Config, maintained
// incrementally (Zobrist-style) by the mutators: every (VM, host,
// CPU-bucket) placement, every powered-on host, and every (host,
// freq-bucket) DVFS setting contributes an independent pseudo-random
// 128-bit token, and the fingerprint is the XOR-fold of the tokens. Two
// configurations have equal fingerprints iff they have equal Key() strings
// (up to a ~2^-128 collision probability), but comparing fingerprints is
// two word compares instead of building and comparing two sorted strings.
// The bucket rounding deliberately mirrors Key(): CPU allocations at 0.01%
// and DVFS fractions at 0.001, so the fingerprint and the string key
// induce the same identity on configurations.
//
// Fingerprints are comparable and usable as map keys; the zero Fingerprint
// is the empty configuration (all hosts off, all VMs dormant).
type Fingerprint [2]uint64

// IsZero reports whether the fingerprint is the empty configuration's.
func (f Fingerprint) IsZero() bool { return f[0] == 0 && f[1] == 0 }

// String renders the fingerprint as 32 hex digits for display/provenance.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f[0], f[1]) }

func (f *Fingerprint) xor(o Fingerprint) {
	f[0] ^= o[0]
	f[1] ^= o[1]
}

// Key()-compatible bucket rounding. These MUST stay in lockstep with the
// formatting in Config.Key: the property tests enforce fp-equal ⇔ Key-equal.
func cpuBucket(cpuPct float64) int64 { return int64(cpuPct*100 + 0.5) }
func freqBucket(f float64) int64     { return int64(f*1000 + 0.5) }

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// allocation-free bijective mixer with good avalanche behaviour.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tokenHash folds a token's byte encoding with FNV-1a 64, then derives two
// independently mixed 64-bit lanes. Deterministic across runs and
// platforms, so fingerprints are stable identities for provenance.
type tokenHash uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211

	// Per-lane whitening seeds; arbitrary odd constants.
	laneSeed0 = 0x8e5b3c7d1a2f9e45
	laneSeed1 = 0x3c6ef372fe94f82b
)

func newTokenHash(kind byte) tokenHash {
	h := tokenHash(fnvOffset)
	return h.byte(kind)
}

func (h tokenHash) byte(b byte) tokenHash {
	return (h ^ tokenHash(b)) * fnvPrime
}

func (h tokenHash) string(s string) tokenHash {
	for i := 0; i < len(s); i++ {
		h = h.byte(s[i])
	}
	// Length-prefix-free separator: 0xff never appears in the names used
	// here (host names and VM IDs are ASCII), so "ab"+"c" != "a"+"bc".
	return h.byte(0xff)
}

func (h tokenHash) int64(v int64) tokenHash {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h = h.byte(byte(u >> (8 * i)))
	}
	return h
}

func (h tokenHash) fingerprint() Fingerprint {
	return Fingerprint{splitmix64(uint64(h) ^ laneSeed0), splitmix64(uint64(h) ^ laneSeed1)}
}

// Token kinds.
const (
	tokKindPlacement = 'P'
	tokKindHostOn    = 'H'
	tokKindFreq      = 'F'
)

func tokPlacement(id VMID, host string, cpu int64) Fingerprint {
	return newTokenHash(tokKindPlacement).string(string(id)).string(host).int64(cpu).fingerprint()
}

func tokHostOn(host string) Fingerprint {
	return newTokenHash(tokKindHostOn).string(host).fingerprint()
}

func tokFreq(host string, freq int64) Fingerprint {
	return newTokenHash(tokKindFreq).string(host).int64(freq).fingerprint()
}

// Fingerprint returns the configuration's incrementally maintained
// structural hash. O(1): the mutators keep it in sync.
func (c Config) Fingerprint() Fingerprint { return c.fp }

// RecomputeFingerprint folds the fingerprint from scratch, ignoring the
// incrementally maintained value. It exists for tests and debug assertions;
// the property suite proves it always equals Fingerprint().
func (c Config) RecomputeFingerprint() Fingerprint {
	var fp Fingerprint
	for h, on := range c.hostOn {
		if on {
			fp.xor(tokHostOn(h))
		}
	}
	for id, p := range c.placements {
		fp.xor(tokPlacement(id, p.Host, cpuBucket(p.CPUPct)))
	}
	for h, f := range c.hostFreq {
		fp.xor(tokFreq(h, freqBucket(f)))
	}
	return fp
}

// Delta describes the single mutation one adaptation action makes to a
// configuration: at most one VM placement change, one host power change,
// and one DVFS change. Stage produces it without cloning the configuration;
// FingerprintWith and ApplyDelta consume it.
type Delta struct {
	// VM placement change; empty VM means none.
	VM        VMID
	OldPlaced bool
	Old       Placement
	NewPlaced bool
	New       Placement
	// Host power change; empty Host means none.
	Host string
	On   bool
	// DVFS change; empty FreqHost means none.
	FreqHost string
	NewFreq  float64
}

// FingerprintWith returns the fingerprint the configuration would have
// after applying the delta, in O(1), without materializing the child.
func (c Config) FingerprintWith(d Delta) Fingerprint {
	fp := c.fp
	if d.VM != "" {
		if d.OldPlaced {
			fp.xor(tokPlacement(d.VM, d.Old.Host, cpuBucket(d.Old.CPUPct)))
		}
		if d.NewPlaced {
			fp.xor(tokPlacement(d.VM, d.New.Host, cpuBucket(d.New.CPUPct)))
		}
	}
	if d.Host != "" && c.HostOn(d.Host) != d.On {
		fp.xor(tokHostOn(d.Host))
	}
	if d.FreqHost != "" {
		if old, ok := c.hostFreq[d.FreqHost]; ok {
			fp.xor(tokFreq(d.FreqHost, freqBucket(old)))
		}
		if d.NewFreq != 1 {
			fp.xor(tokFreq(d.FreqHost, freqBucket(d.NewFreq)))
		}
	}
	return fp
}

// ApplyDelta mutates the configuration through the fingerprint-maintaining
// mutators. The delta must have been staged against this configuration (or
// one with identical relevant state).
func (c *Config) ApplyDelta(d Delta) {
	if d.VM != "" {
		if d.NewPlaced {
			c.Place(d.VM, d.New.Host, d.New.CPUPct)
		} else {
			c.Unplace(d.VM)
		}
	}
	if d.Host != "" {
		c.SetHostOn(d.Host, d.On)
	}
	if d.FreqHost != "" {
		c.SetHostFreq(d.FreqHost, d.NewFreq)
	}
}

// PlacementOver reads a VM's placement as it would be after the delta:
// the overlay view search code uses to evaluate a child without
// materializing it.
func (c Config) PlacementOver(d *Delta, id VMID) (Placement, bool) {
	if d != nil && d.VM == id {
		return d.New, d.NewPlaced
	}
	return c.PlacementOf(id)
}

// HostOnOver reads a host's power state through the delta overlay.
func (c Config) HostOnOver(d *Delta, host string) bool {
	if d != nil && d.Host == host {
		return d.On
	}
	return c.HostOn(host)
}

// HostFreqOver reads a host's DVFS fraction through the delta overlay.
func (c Config) HostFreqOver(d *Delta, host string) float64 {
	if d != nil && d.FreqHost == host {
		return d.NewFreq
	}
	return c.HostFreq(host)
}
