package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted explicitly
// via Engine.Stop rather than by exhausting its event queue or reaching the
// run horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a callback scheduled to execute at a virtual time instant.
type Event func()

// scheduledEvent is an entry in the event heap. Events at the same instant
// execute in scheduling order (seq breaks ties) so simulations remain
// deterministic regardless of heap internals.
type scheduledEvent struct {
	at   time.Duration
	seq  uint64
	fn   Event
	heap int // index within the heap, maintained by heap.Interface
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heap = i
	q[j].heap = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.heap = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heap = -1
	*q = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation engine. The zero value
// is not usable; construct one with NewEngine.
//
// Engine is not safe for concurrent use: a simulation is a single logical
// thread of control and all events execute on the caller's goroutine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts events executed since construction; useful for
	// progress assertions in tests and for search-cost accounting.
	processed uint64
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Handle identifies a scheduled event so it can be cancelled before firing.
type Handle struct {
	ev *scheduledEvent
}

// Schedule enqueues fn to run after delay relative to the current virtual
// time. A negative delay is treated as zero (run at the current instant,
// after already-queued events for that instant). It returns a Handle that
// can be passed to Cancel.
func (e *Engine) Schedule(delay time.Duration, fn Event) Handle {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	ev := &scheduledEvent{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}
}

// ScheduleAt enqueues fn at an absolute virtual time. Times in the past are
// clamped to the current instant.
func (e *Engine) ScheduleAt(at time.Duration, fn Event) Handle {
	return e.Schedule(at-e.now, fn)
}

// Cancel removes a previously scheduled event. Cancelling an event that has
// already fired or been cancelled is a no-op and returns false.
func (e *Engine) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.heap < 0 {
		return false
	}
	heap.Remove(&e.queue, h.ev.heap)
	h.ev.heap = -1
	return true
}

// Stop halts the currently executing Run after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*scheduledEvent)
	if ev.at < e.now {
		// Guarded by Schedule's clamping; kept as an invariant check.
		panic(fmt.Sprintf("sim: event time %v before now %v", ev.at, e.now))
	}
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty, the horizon is reached, or
// Stop is called. A zero horizon means "no horizon" (run to exhaustion).
// When the horizon is reached, the clock is advanced exactly to the horizon
// and any events scheduled beyond it remain pending.
func (e *Engine) Run(horizon time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0].at
		if horizon > 0 && next > horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	if horizon > 0 && e.now < horizon {
		e.now = horizon
	}
	return nil
}

// RunUntil executes events while cond keeps returning true, stopping before
// the first event for which cond reports false, or when the queue drains.
func (e *Engine) RunUntil(cond func() bool) {
	for len(e.queue) > 0 && cond() {
		e.Step()
	}
}
