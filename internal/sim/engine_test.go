package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v, want [1s 2s]", fired)
	}
}

func TestEngineHorizonStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10*time.Second, func() { ran = true })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("event beyond horizon executed")
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	// Resuming past the event must run it.
	if err := e.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("event not executed after resuming")
	}
	if e.Now() != 20*time.Second {
		t.Errorf("Now() = %v, want 20s", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	err := e.Run(0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.Schedule(time.Second, func() { ran = true })
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(h) {
		t.Error("Cancel returned true for already-cancelled event")
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("cancelled event executed")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var handles []Handle
	for i := 0; i < 20; i++ {
		i := i
		handles = append(handles, e.Schedule(time.Duration(i)*time.Second, func() {
			fired = append(fired, i)
		}))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		if !e.Cancel(handles[i]) {
			t.Fatalf("Cancel(%d) failed", i)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range fired {
		if v%3 == 0 {
			t.Errorf("cancelled event %d executed", v)
		}
	}
	if len(fired) != 20-7 {
		t.Errorf("fired %d events, want 13", len(fired))
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != time.Second {
				t.Errorf("negative-delay event at %v, want 1s", e.Now())
			}
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineScheduleAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.ScheduleAt(7*time.Second, func() { at = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 7*time.Second {
		t.Errorf("event at %v, want 7s", at)
	}
}

func TestEngineScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	NewEngine().Schedule(time.Second, nil)
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the processed count matches.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var times []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, e.Now())
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return e.Processed() == uint64(len(delays))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFixedClock(t *testing.T) {
	c := FixedClock(42 * time.Second)
	if c.Now() != 42*time.Second {
		t.Errorf("Now() = %v, want 42s", c.Now())
	}
}
