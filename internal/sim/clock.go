// Package sim provides a deterministic discrete-event simulation kernel used
// by the request-level queueing simulator and the virtual testbed.
//
// The kernel is deliberately small: a virtual clock, a priority queue of
// timestamped events, and seeded random-number streams. All higher-level
// behaviour (queueing stations, adaptation transients, monitoring windows)
// is layered on top in other packages.
package sim

import "time"

// Clock exposes the current virtual time of a simulation. It is implemented
// by *Engine and by testing fakes.
type Clock interface {
	// Now returns the current virtual time measured from the start of the
	// simulation.
	Now() time.Duration
}

// FixedClock is a Clock that always reports the same instant. It is useful
// in unit tests and in components that are configured once and never advance
// time themselves.
type FixedClock time.Duration

// Now implements Clock.
func (c FixedClock) Now() time.Duration { return time.Duration(c) }

var _ Clock = FixedClock(0)
