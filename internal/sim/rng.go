package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream with the distributions the simulators
// need. Distinct subsystems should use distinct streams (derived via Split)
// so that adding draws in one subsystem does not perturb another.
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns a stream seeded from the two words. The same seed pair
// always yields the same sequence.
func NewRNG(seed1, seed2 uint64) *RNG {
	pcg := rand.NewPCG(seed1, seed2)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// Snapshot serializes the stream's current position (the underlying PCG
// state). Restoring it resumes the draw sequence exactly where it left
// off; rand/v2's distribution methods keep no state of their own, so the
// PCG words are the complete stream identity.
func (r *RNG) Snapshot() ([]byte, error) { return r.pcg.MarshalBinary() }

// Restore rewinds (or fast-forwards) the stream to a position captured by
// Snapshot.
func (r *RNG) Restore(b []byte) error { return r.pcg.UnmarshalBinary(b) }

// Split derives an independent stream from this one. The derived stream is a
// pure function of the parent's current state, preserving determinism.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Uint64(), r.src.Uint64())
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit draw (useful for deriving seeds).
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Exp returns an exponentially distributed draw with the given mean.
// A non-positive mean yields zero.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.src.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normal draw parameterised by the mean and
// coefficient of variation of the resulting distribution (not of the
// underlying normal). This matches how service-time variability is usually
// specified in performance models.
func (r *RNG) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(r.src.NormFloat64()*math.Sqrt(sigma2) + mu)
}

// Jitter returns value perturbed by a multiplicative normal factor with the
// given relative standard deviation, clamped to stay positive.
func (r *RNG) Jitter(value, relStddev float64) float64 {
	if relStddev <= 0 {
		return value
	}
	f := 1 + r.src.NormFloat64()*relStddev
	if f < 0.01 {
		f = 0.01
	}
	return value * f
}
