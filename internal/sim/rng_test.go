package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(1, 2)
	b := NewRNG(1, 2)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7, 9)
	child := parent.Split()
	// Drawing from the child must not change the parent's future relative
	// to a parent that split but never used the child.
	parent2 := NewRNG(7, 9)
	_ = parent2.Split()
	for i := 0; i < 50; i++ {
		child.Float64()
	}
	for i := 0; i < 50; i++ {
		if parent.Float64() != parent2.Float64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3, 4)
	const n = 200000
	const mean = 0.25
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exp mean = %v, want ~%v", got, mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Error("Exp with non-positive mean should be 0")
	}
}

func TestRNGLogNormalMoments(t *testing.T) {
	r := NewRNG(5, 6)
	const n = 200000
	const mean, cv = 2.0, 0.5
	var w Welford
	for i := 0; i < n; i++ {
		w.add(r.LogNormal(mean, cv))
	}
	if math.Abs(w.mean-mean)/mean > 0.03 {
		t.Errorf("LogNormal mean = %v, want ~%v", w.mean, mean)
	}
	gotCV := math.Sqrt(w.m2/float64(n-1)) / w.mean
	if math.Abs(gotCV-cv)/cv > 0.05 {
		t.Errorf("LogNormal cv = %v, want ~%v", gotCV, cv)
	}
	if r.LogNormal(0, 1) != 0 {
		t.Error("LogNormal with zero mean should be 0")
	}
	if got := r.LogNormal(3, 0); got != 3 {
		t.Errorf("LogNormal with zero cv = %v, want deterministic mean", got)
	}
}

// Minimal local Welford so this test does not import internal/stats (keeps
// the dependency direction sim <- stats out of the test).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *Welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func TestRNGJitterPositive(t *testing.T) {
	r := NewRNG(11, 13)
	for i := 0; i < 10000; i++ {
		if v := r.Jitter(1.0, 0.5); v <= 0 {
			t.Fatalf("Jitter produced non-positive value %v", v)
		}
	}
	if r.Jitter(5, 0) != 5 {
		t.Error("Jitter with zero stddev must be identity")
	}
}

func TestRNGNormal(t *testing.T) {
	r := NewRNG(17, 19)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	got := sum / n
	if math.Abs(got-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", got)
	}
}

func TestRNGPermAndIntN(t *testing.T) {
	r := NewRNG(23, 29)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}
