// Package par provides the bounded worker pool behind the concurrent
// evaluation plane. Every parallel site in the controller (A* child
// evaluation, Perf-Pwr sweep arms, 1st-level controller fan-out) runs
// through For, which degenerates to a plain serial loop at one worker so
// Workers=1 reproduces the single-threaded code path exactly. Callers own
// determinism: work functions write only to their own index's result slot
// and the caller merges slots in input order afterwards.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxDefaultWorkers caps the resolved default worker count: the hot loops
// are CPU-bound LQN solves, so parallelism past the core count only adds
// scheduling overhead, and very wide pools inflate per-expansion fan-out
// cost on small child batches.
const MaxDefaultWorkers = 8

// Workers resolves a worker-count option: values above zero are returned
// unchanged; zero and negative resolve to min(GOMAXPROCS, 8).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	w := runtime.GOMAXPROCS(0)
	if w > MaxDefaultWorkers {
		w = MaxDefaultWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For calls fn(i) for every i in [0, n) on at most workers goroutines and
// returns once all calls have completed. workers <= 1 (or n <= 1) runs the
// loop serially on the calling goroutine — byte-identical behaviour to the
// pre-concurrency code, and the reason Workers=1 is the reference path in
// determinism tests. Indices are handed out through a shared atomic
// counter, so call order across goroutines is unspecified; fn must not
// assume any ordering, and panics in fn propagate to the caller only on
// the serial path (a panicking worker goroutine crashes the process, as
// any unrecovered goroutine panic does).
func For(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
