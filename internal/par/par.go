// Package par provides the bounded worker pool behind the concurrent
// evaluation plane. Every parallel site in the controller (A* child
// evaluation, Perf-Pwr sweep arms, 1st-level controller fan-out) runs
// through For, which degenerates to a plain serial loop at one worker so
// Workers=1 reproduces the single-threaded code path exactly. Callers own
// determinism: work functions write only to their own index's result slot
// and the caller merges slots in input order afterwards.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic raised by a work function on a worker
// goroutine. For re-panics with it on the caller's goroutine, so callers
// can recover() parallel-loop panics exactly as they would serial ones —
// a buggy work function degrades one decision, not the whole process.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Index is the loop index whose work function panicked (the lowest
	// one, if several workers panicked concurrently).
	Index int
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic in work function %d: %v", e.Index, e.Value)
}

// MaxDefaultWorkers caps the resolved default worker count: the hot loops
// are CPU-bound LQN solves, so parallelism past the core count only adds
// scheduling overhead, and very wide pools inflate per-expansion fan-out
// cost on small child batches.
const MaxDefaultWorkers = 8

// Workers resolves a worker-count option: values above zero are returned
// unchanged; zero and negative resolve to min(GOMAXPROCS, 8).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	w := runtime.GOMAXPROCS(0)
	if w > MaxDefaultWorkers {
		w = MaxDefaultWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For calls fn(i) for every i in [0, n) on at most workers goroutines and
// returns once all calls have completed. workers <= 1 (or n <= 1) runs the
// loop serially on the calling goroutine — byte-identical behaviour to the
// pre-concurrency code, and the reason Workers=1 is the reference path in
// determinism tests. Indices are handed out through a shared atomic
// counter, so call order across goroutines is unspecified; fn must not
// assume any ordering. A panic in fn propagates to the caller on both
// paths: serially it unwinds as usual, and on the parallel path the worker
// recovers it and For re-panics a *PanicError on the calling goroutine
// (remaining workers finish their current items first, then stop handing
// out new ones). When several workers panic in the same loop, the lowest
// index wins deterministically.
func For(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked *PanicError
	// run executes one index, converting a panic into the loop's pending
	// PanicError and stopping further index hand-out.
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked == nil || i < panicked.Index {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					panicked = &PanicError{Value: r, Index: i, Stack: buf}
				}
				mu.Unlock()
				next.Store(int64(n)) // drain the remaining indices
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
