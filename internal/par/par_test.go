package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForSerialPreservesOrder(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order = %v, want ascending", order)
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n <= 0")
	}
}

func TestForBoundsGoroutines(t *testing.T) {
	var inFlight, peak atomic.Int32
	For(64, 3, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent calls, want <= 3", p)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	def := Workers(0)
	if def < 1 || def > MaxDefaultWorkers {
		t.Fatalf("Workers(0) = %d, want in [1, %d]", def, MaxDefaultWorkers)
	}
	if g := runtime.GOMAXPROCS(0); g < MaxDefaultWorkers && def != g {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", def, g)
	}
	if got := Workers(-1); got != def {
		t.Fatalf("Workers(-1) = %d, want %d", got, def)
	}
}

// TestForPanicSurfacesOnCaller pins the pool's panic contract: a panicking
// work function must re-panic a *PanicError on the calling goroutine, on
// both the serial and parallel paths, instead of crashing the process.
func TestForPanicSurfacesOnCaller(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not surface", workers)
				}
				if workers == 1 {
					// Serial path: the raw panic value unwinds untouched.
					if r != "boom 3" {
						t.Errorf("workers=1: recovered %v, want raw value", r)
					}
					return
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Value != "boom 3" || pe.Index != 3 {
					t.Errorf("PanicError = {Value:%v Index:%d}, want {boom 3, 3}", pe.Value, pe.Index)
				}
				if len(pe.Stack) == 0 {
					t.Error("PanicError carries no stack trace")
				}
				if pe.Error() == "" {
					t.Error("empty Error()")
				}
			}()
			For(64, workers, func(i int) {
				if i == 3 {
					panic("boom 3")
				}
			})
		}()
	}
}

// TestForPanicLowestIndexWins hammers concurrent panics: when every work
// function panics, the reported index must be one that actually ran, and
// the pool must never deadlock or crash the process.
func TestForPanicLowestIndexWins(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok {
					t.Fatal("no PanicError from all-panicking loop")
				}
				if pe.Index < 0 || pe.Index >= 32 {
					t.Errorf("index %d out of range", pe.Index)
				}
			}()
			For(32, 8, func(i int) { panic(i) })
		}()
	}
}

// TestForPanicDoesNotLeakGoroutines: after a parallel panic, the remaining
// workers must wind down before For returns control via panic.
func TestForPanicDoesNotLeakGoroutines(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		For(1000, 8, func(i int) {
			ran.Add(1)
			if i == 0 {
				panic("early")
			}
			// Give the drain time to win the race against trivial items.
			time.Sleep(time.Millisecond)
		})
	}()
	// The drain stops index hand-out: far fewer than n items run.
	if got := ran.Load(); got == 0 || got >= 1000 {
		t.Errorf("ran %d of 1000 work items after early panic", got)
	}
}
