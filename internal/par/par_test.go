package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForSerialPreservesOrder(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order = %v, want ascending", order)
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n <= 0")
	}
}

func TestForBoundsGoroutines(t *testing.T) {
	var inFlight, peak atomic.Int32
	For(64, 3, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent calls, want <= 3", p)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	def := Workers(0)
	if def < 1 || def > MaxDefaultWorkers {
		t.Fatalf("Workers(0) = %d, want in [1, %d]", def, MaxDefaultWorkers)
	}
	if g := runtime.GOMAXPROCS(0); g < MaxDefaultWorkers && def != g {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", def, g)
	}
	if got := Workers(-1); got != def {
		t.Fatalf("Workers(-1) = %d, want %d", got, def)
	}
}
