package app

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

func TestRUBiSSpecIsValid(t *testing.T) {
	s := RUBiS("rubis1")
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Txns) != 9 {
		t.Errorf("transactions = %d, want 9 (browse-only mix)", len(s.Txns))
	}
	if len(s.Tiers) != 3 {
		t.Errorf("tiers = %d, want 3", len(s.Tiers))
	}
	web, ok := s.Tier(TierWeb)
	if !ok || web.MaxReplicas != 1 {
		t.Errorf("web tier = %+v ok=%v, want MaxReplicas 1", web, ok)
	}
	appTier, _ := s.Tier(TierApp)
	db, _ := s.Tier(TierDB)
	if appTier.MaxReplicas != 2 || db.MaxReplicas != 2 {
		t.Errorf("app/db MaxReplicas = %d/%d, want 2/2", appTier.MaxReplicas, db.MaxReplicas)
	}
	if s.TargetRT != 400*time.Millisecond {
		t.Errorf("TargetRT = %v, want 400ms", s.TargetRT)
	}
	if _, ok := s.Tier("nope"); ok {
		t.Error("unknown tier resolved")
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	base := func() *Spec { return RUBiS("a") }
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty name"},
		{"no tiers", func(s *Spec) { s.Tiers = nil }, "no tiers"},
		{"no txns", func(s *Spec) { s.Txns = nil }, "no transactions"},
		{"dup tier", func(s *Spec) { s.Tiers = append(s.Tiers, s.Tiers[0]) }, "duplicate tier"},
		{"bad replicas", func(s *Spec) { s.Tiers[0].MaxReplicas = 0 }, "MaxReplicas"},
		{"bad memory", func(s *Spec) { s.Tiers[0].VMMemoryMB = 0 }, "VM memory"},
		{"negative weight", func(s *Spec) { s.Txns[0].Weight = -1 }, "negative weight"},
		{"unknown tier ref", func(s *Spec) { s.Txns[0].DemandMS = map[string]float64{"ghost": 1} }, "unknown tier"},
		{"zero weights", func(s *Spec) {
			for i := range s.Txns {
				s.Txns[i].Weight = 0
			}
		}, "zero total weight"},
		{"bad target", func(s *Spec) { s.TargetRT = 0 }, "target response time"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base()
			c.mutate(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestMixProbabilitiesNormalized(t *testing.T) {
	s := RUBiS("a")
	probs := s.MixProbabilities()
	var sum float64
	for _, p := range probs {
		if p < 0 {
			t.Errorf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
}

func TestMeanDemandMatchesManualComputation(t *testing.T) {
	s := &Spec{
		Name:     "x",
		Tiers:    []TierSpec{{Name: "t", MaxReplicas: 1, VMMemoryMB: 100}},
		Txns:     []TxnSpec{{Name: "a", Weight: 1, DemandMS: map[string]float64{"t": 10}}, {Name: "b", Weight: 3, DemandMS: map[string]float64{"t": 2}}},
		TargetRT: time.Second,
	}
	want := 0.25*10 + 0.75*2
	if got := s.MeanDemandMS("t"); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanDemandMS = %v, want %v", got, want)
	}
	if got := s.MeanDemandMS("ghost"); got != 0 {
		t.Errorf("MeanDemandMS(ghost) = %v, want 0", got)
	}
}

func TestScaleDemands(t *testing.T) {
	s := RUBiS("a")
	before := s.MeanDemandMS(TierDB)
	s.ScaleDemands(2)
	after := s.MeanDemandMS(TierDB)
	if math.Abs(after-2*before) > 1e-12 {
		t.Errorf("after scale = %v, want %v", after, 2*before)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := RUBiS("a")
	c := s.Clone("b")
	if c.Name != "b" {
		t.Errorf("clone name = %q", c.Name)
	}
	c.ScaleDemands(10)
	if s.MeanDemandMS(TierApp) == c.MeanDemandMS(TierApp) {
		t.Error("scaling clone affected original")
	}
	c.Tiers[0].MaxReplicas = 99
	if s.Tiers[0].MaxReplicas == 99 {
		t.Error("tier slice shared between clone and original")
	}
}

func TestVMIDFor(t *testing.T) {
	s := RUBiS("rubis2")
	if got := s.VMIDFor(TierDB, 1); got != "rubis2-db-1" {
		t.Errorf("VMIDFor = %q", got)
	}
}

func TestBuildCatalog(t *testing.T) {
	hosts := []cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1")}
	apps := []*Spec{RUBiS("rubis1"), RUBiS("rubis2")}
	cat, err := BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatalf("BuildCatalog: %v", err)
	}
	// 1 web + 2 app + 2 db per application.
	if got := len(cat.VMIDs()); got != 10 {
		t.Errorf("VMs = %d, want 10", got)
	}
	if got := len(cat.TierVMs(cluster.TierKey{App: "rubis1", Tier: TierApp})); got != 2 {
		t.Errorf("app tier replicas = %d, want 2", got)
	}
	// Invalid app spec propagates.
	bad := RUBiS("bad")
	bad.Tiers = nil
	if _, err := BuildCatalog(hosts, []*Spec{bad}); err == nil {
		t.Error("BuildCatalog accepted invalid spec")
	}
}

func TestDefaultConfig(t *testing.T) {
	hosts := []cluster.HostSpec{
		cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"),
		cluster.DefaultHostSpec("h2"), cluster.DefaultHostSpec("h3"),
	}
	apps := []*Spec{RUBiS("rubis1"), RUBiS("rubis2")}
	cat, err := BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatalf("BuildCatalog: %v", err)
	}
	cfg, err := DefaultConfig(cat, apps, 4, 40)
	if err != nil {
		t.Fatalf("DefaultConfig: %v", err)
	}
	if !cfg.IsCandidate(cat) {
		t.Errorf("default config invalid: %v", cfg.Validate(cat))
	}
	if got := len(cfg.ActiveVMs()); got != 6 {
		t.Errorf("active VMs = %d, want 6 (one per tier per app)", got)
	}
	if cfg.NumActiveHosts() != 4 {
		t.Errorf("active hosts = %d, want 4", cfg.NumActiveHosts())
	}
	for _, id := range cfg.ActiveVMs() {
		if p, _ := cfg.PlacementOf(id); p.CPUPct != 40 {
			t.Errorf("VM %s CPU = %v, want 40", id, p.CPUPct)
		}
	}
	// Infeasible request fails cleanly.
	if _, err := DefaultConfig(cat, apps, 1, 40); err == nil {
		t.Error("DefaultConfig packed 6 VMs at 40% on one 80% host")
	}
	if _, err := DefaultConfig(cat, apps, 0, 40); err == nil {
		t.Error("DefaultConfig accepted zero hosts")
	}
}
