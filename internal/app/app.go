// Package app models multi-tier distributed applications: tiers, replica
// limits, transaction types with per-tier CPU demands, and transaction
// mixes. It also provides the RUBiS-like "browsing only" application used
// throughout the paper's evaluation and helpers to derive a cluster.Catalog
// from a set of applications.
package app

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

// Standard tier names for three-tier web applications.
const (
	TierWeb = "web"
	TierApp = "app"
	TierDB  = "db"
)

// TierSpec describes one tier of an application.
type TierSpec struct {
	// Name identifies the tier (e.g. "web").
	Name string
	// MaxReplicas bounds the replication level; the catalog contains this
	// many VMs for the tier (active plus dormant).
	MaxReplicas int
	// VMMemoryMB is the fixed memory requirement of each replica VM.
	VMMemoryMB int
}

// TxnSpec describes one transaction type: its relative frequency in the
// workload mix and the total CPU demand it places on each tier per request,
// at reference host speed with 100% CPU allocation.
type TxnSpec struct {
	// Name identifies the transaction (e.g. "browse-items").
	Name string
	// Weight is the relative frequency in the mix; weights are normalized.
	Weight float64
	// DemandMS maps tier name to total CPU milliseconds consumed per
	// request of this type on one replica of that tier.
	DemandMS map[string]float64
	// LatencyMS is the CPU-free portion of the response time in
	// milliseconds — disk and network waits during which the request holds
	// no CPU. For RUBiS's browse mix this dominates the response time,
	// which is why the 400 ms operating point coexists with moderate CPU
	// utilization.
	LatencyMS float64
}

// Spec is a complete application model.
type Spec struct {
	// Name identifies the application (e.g. "rubis1").
	Name string
	// Tiers lists the tiers in call order (front to back).
	Tiers []TierSpec
	// Txns lists the transaction types of the workload mix.
	Txns []TxnSpec
	// TargetRT is the response-time objective (400 ms in the paper).
	TargetRT time.Duration
	// Dom0OverheadMS is the CPU milliseconds consumed in the host's Dom-0
	// per tier visit, modeling Xen's I/O virtualization overhead.
	Dom0OverheadMS float64
}

// Validate checks structural consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("app: spec with empty name")
	}
	if len(s.Tiers) == 0 {
		return fmt.Errorf("app %s: no tiers", s.Name)
	}
	if len(s.Txns) == 0 {
		return fmt.Errorf("app %s: no transactions", s.Name)
	}
	seen := make(map[string]bool, len(s.Tiers))
	for _, t := range s.Tiers {
		if t.Name == "" {
			return fmt.Errorf("app %s: tier with empty name", s.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("app %s: duplicate tier %q", s.Name, t.Name)
		}
		seen[t.Name] = true
		if t.MaxReplicas <= 0 {
			return fmt.Errorf("app %s: tier %q has MaxReplicas %d", s.Name, t.Name, t.MaxReplicas)
		}
		if t.VMMemoryMB <= 0 {
			return fmt.Errorf("app %s: tier %q has VM memory %d", s.Name, t.Name, t.VMMemoryMB)
		}
	}
	var totalWeight float64
	for _, txn := range s.Txns {
		if txn.Weight < 0 {
			return fmt.Errorf("app %s: transaction %q has negative weight", s.Name, txn.Name)
		}
		if txn.LatencyMS < 0 {
			return fmt.Errorf("app %s: transaction %q has negative latency", s.Name, txn.Name)
		}
		totalWeight += txn.Weight
		for tier := range txn.DemandMS {
			if !seen[tier] {
				return fmt.Errorf("app %s: transaction %q references unknown tier %q", s.Name, txn.Name, tier)
			}
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("app %s: transaction mix has zero total weight", s.Name)
	}
	if s.TargetRT <= 0 {
		return fmt.Errorf("app %s: non-positive target response time", s.Name)
	}
	return nil
}

// Tier returns the tier spec by name.
func (s *Spec) Tier(name string) (TierSpec, bool) {
	for _, t := range s.Tiers {
		if t.Name == name {
			return t, true
		}
	}
	return TierSpec{}, false
}

// MixProbabilities returns the normalized transaction mix, aligned with
// s.Txns.
func (s *Spec) MixProbabilities() []float64 {
	var total float64
	for _, txn := range s.Txns {
		total += txn.Weight
	}
	probs := make([]float64, len(s.Txns))
	for i, txn := range s.Txns {
		probs[i] = txn.Weight / total
	}
	return probs
}

// MeanDemandMS returns the mix-weighted mean CPU demand per request on the
// given tier, in milliseconds at reference speed.
func (s *Spec) MeanDemandMS(tier string) float64 {
	probs := s.MixProbabilities()
	var demand float64
	for i, txn := range s.Txns {
		demand += probs[i] * txn.DemandMS[tier]
	}
	return demand
}

// MeanLatencyMS returns the mix-weighted mean CPU-free latency per request
// in milliseconds.
func (s *Spec) MeanLatencyMS() float64 {
	probs := s.MixProbabilities()
	var lat float64
	for i, txn := range s.Txns {
		lat += probs[i] * txn.LatencyMS
	}
	return lat
}

// ScaleDemands multiplies every transaction's per-tier demand by factor.
// It is used by model calibration to pin the default operating point.
// CPU-free latencies are left untouched.
func (s *Spec) ScaleDemands(factor float64) {
	for i := range s.Txns {
		scaled := make(map[string]float64, len(s.Txns[i].DemandMS))
		for tier, d := range s.Txns[i].DemandMS {
			scaled[tier] = d * factor
		}
		s.Txns[i].DemandMS = scaled
	}
}

// Clone returns a deep copy of the spec, optionally renamed. Cloning lets
// experiments instantiate several identical applications (RUBiS-1..4).
func (s *Spec) Clone(name string) *Spec {
	n := &Spec{
		Name:           name,
		Tiers:          make([]TierSpec, len(s.Tiers)),
		Txns:           make([]TxnSpec, len(s.Txns)),
		TargetRT:       s.TargetRT,
		Dom0OverheadMS: s.Dom0OverheadMS,
	}
	copy(n.Tiers, s.Tiers)
	for i, txn := range s.Txns {
		demands := make(map[string]float64, len(txn.DemandMS))
		for tier, d := range txn.DemandMS {
			demands[tier] = d
		}
		n.Txns[i] = TxnSpec{Name: txn.Name, Weight: txn.Weight, DemandMS: demands, LatencyMS: txn.LatencyMS}
	}
	return n
}

// VMIDFor returns the canonical VM identifier for a tier replica of this
// application, shared with catalogs built by BuildCatalog.
func (s *Spec) VMIDFor(tier string, replica int) cluster.VMID {
	return cluster.VMID(fmt.Sprintf("%s-%s-%d", s.Name, tier, replica))
}

// RUBiS returns the paper's test application: a three-tier servlet RUBiS
// running the "browsing only" mix of 9 read-only transaction types. Demands
// are relative; calibrate them against a performance model (see lqn.Calibrate)
// so that the default configuration — every tier at 40% CPU, 50 req/s —
// meets the 400 ms target response time, mirroring how the paper derived
// its target.
//
// Replication limits follow §V-A: Apache is never replicated; Tomcat and
// MySQL replicate up to 2.
func RUBiS(name string) *Spec {
	// Relative per-tier demands per transaction (milliseconds at reference
	// speed). The browse mix leans on the database; search transactions are
	// the most app/db intensive, the home page is nearly static.
	txns := []TxnSpec{
		{Name: "home", Weight: 8, DemandMS: map[string]float64{TierWeb: 1.6, TierApp: 1.2, TierDB: 0.4}, LatencyMS: 18},
		{Name: "browse", Weight: 12, DemandMS: map[string]float64{TierWeb: 1.2, TierApp: 2.4, TierDB: 1.6}, LatencyMS: 39},
		{Name: "browse-categories", Weight: 14, DemandMS: map[string]float64{TierWeb: 1.2, TierApp: 3.2, TierDB: 3.0}, LatencyMS: 51},
		{Name: "browse-regions", Weight: 8, DemandMS: map[string]float64{TierWeb: 1.2, TierApp: 3.0, TierDB: 2.6}, LatencyMS: 48},
		{Name: "browse-items-in-category", Weight: 18, DemandMS: map[string]float64{TierWeb: 1.4, TierApp: 4.4, TierDB: 4.6}, LatencyMS: 62},
		{Name: "browse-items-in-region", Weight: 10, DemandMS: map[string]float64{TierWeb: 1.4, TierApp: 4.2, TierDB: 4.4}, LatencyMS: 61},
		{Name: "view-item", Weight: 16, DemandMS: map[string]float64{TierWeb: 1.4, TierApp: 3.6, TierDB: 3.4}, LatencyMS: 54},
		{Name: "view-user-info", Weight: 6, DemandMS: map[string]float64{TierWeb: 1.2, TierApp: 3.0, TierDB: 3.2}, LatencyMS: 45},
		{Name: "view-bid-history", Weight: 8, DemandMS: map[string]float64{TierWeb: 1.4, TierApp: 3.8, TierDB: 4.2}, LatencyMS: 56},
	}
	return &Spec{
		Name: name,
		Tiers: []TierSpec{
			{Name: TierWeb, MaxReplicas: 1, VMMemoryMB: 200},
			{Name: TierApp, MaxReplicas: 2, VMMemoryMB: 200},
			{Name: TierDB, MaxReplicas: 2, VMMemoryMB: 200},
		},
		Txns:           txns,
		TargetRT:       400 * time.Millisecond,
		Dom0OverheadMS: 0.3,
	}
}

// BuildCatalog derives a cluster catalog from host specs and application
// specs: one VM per tier replica (active ones chosen later by configs).
func BuildCatalog(hosts []cluster.HostSpec, apps []*Spec) (*cluster.Catalog, error) {
	cfg := cluster.CatalogConfig{Hosts: hosts}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("app: building catalog: %w", err)
		}
		for _, t := range a.Tiers {
			for r := 0; r < t.MaxReplicas; r++ {
				cfg.VMs = append(cfg.VMs, cluster.VMSpec{
					ID:       a.VMIDFor(t.Name, r),
					App:      a.Name,
					Tier:     t.Name,
					Replica:  r,
					MemoryMB: t.VMMemoryMB,
				})
			}
		}
	}
	cat, err := cluster.NewCatalog(cfg)
	if err != nil {
		return nil, fmt.Errorf("app: building catalog: %w", err)
	}
	return cat, nil
}

// DefaultConfig places one replica of every tier of every application
// round-robin across the first n hosts at the given CPU allocation, powering
// exactly those hosts on. It mirrors the paper's "default configuration"
// (all tiers at 40%).
func DefaultConfig(cat *cluster.Catalog, apps []*Spec, nHosts int, cpuPct float64) (cluster.Config, error) {
	hosts := cat.HostNames()
	if nHosts <= 0 || nHosts > len(hosts) {
		return cluster.Config{}, fmt.Errorf("app: DefaultConfig with %d hosts, have %d", nHosts, len(hosts))
	}
	cfg := cluster.NewConfig()
	for i := 0; i < nHosts; i++ {
		cfg.SetHostOn(hosts[i], true)
	}
	i := 0
	for _, a := range apps {
		for _, t := range a.Tiers {
			// Greedily pick the host with the most free capacity among the
			// powered-on set, keeping the default placement feasible.
			best := ""
			var bestFree float64
			for j := 0; j < nHosts; j++ {
				h := hosts[(i+j)%nHosts]
				spec, _ := cat.Host(h)
				free := spec.UsableCPUPct - cfg.AllocatedCPU(h)
				if free >= cpuPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs && free > bestFree {
					best, bestFree = h, free
				}
			}
			if best == "" {
				return cluster.Config{}, fmt.Errorf("app: DefaultConfig cannot place %s/%s at %.0f%% on %d hosts", a.Name, t.Name, cpuPct, nHosts)
			}
			cfg.Place(a.VMIDFor(t.Name, 0), best, cpuPct)
			i++
		}
	}
	if vs := cfg.Validate(cat); len(vs) > 0 {
		return cluster.Config{}, fmt.Errorf("app: DefaultConfig invalid: %v", vs[0])
	}
	return cfg, nil
}
