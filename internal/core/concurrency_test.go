package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

// TestEvaluatorConcurrentAccess hammers Steady, CacheStats, and ResetCache
// from many goroutines under -race, pinning the Evaluator's thread-safety
// contract: concurrent callers must neither race nor observe results that
// differ from the serially computed ones, even while the cache is being
// reset underneath them.
func TestEvaluatorConcurrentAccess(t *testing.T) {
	e := newEnv(t, 4, 2)
	loads := []float64{10, 30, 50, 70}
	inputs := make([]map[string]float64, len(loads))
	want := make([]Steady, len(loads))
	for i, r := range loads {
		inputs[i] = rates(e, r)
		s, err := e.eval.Steady(e.cfg, inputs[i])
		if err != nil {
			t.Fatalf("serial Steady(%v): %v", r, err)
		}
		want[i] = s
	}

	const goroutines = 16
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(inputs)
				got, err := e.eval.Steady(e.cfg, inputs[i])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent Steady(%v) diverged from serial result", loads[i])
					return
				}
				switch {
				case g%4 == 0 && it%10 == 9:
					e.eval.ResetCache()
				case it%5 == 0:
					_ = e.eval.CacheStats()
					_ = e.eval.Evals()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Steady: %v", err)
	}
}

// TestEvaluatorSingleflight pins the dedup accounting: N goroutines racing
// on the same fresh key must trigger exactly one model solve; everyone
// else either joins the in-flight solve or hits the cache afterwards.
func TestEvaluatorSingleflight(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 50)
	want, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	e.eval.ResetCache()

	const goroutines = 16
	start := make(chan struct{})
	results := make([]Steady, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[g], errs[g] = e.eval.Steady(e.cfg, w)
		}()
	}
	close(start)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], want) {
			t.Errorf("goroutine %d got a different steady state", g)
		}
	}
	st := e.eval.CacheStats()
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (singleflight must collapse concurrent solves)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("Hits = %d, want %d", st.Hits, goroutines-1)
	}
	if st.Dedups > st.Hits {
		t.Errorf("Dedups = %d exceeds Hits = %d", st.Dedups, st.Hits)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1", st.Entries)
	}
}

// TestSearchWorkersDeterminism pins the central promise of the concurrent
// evaluation plane: the full SearchResult — plan, utility, virtual search
// time, cost, and every counter — is byte-identical whether children are
// evaluated serially or on 8 workers.
func TestSearchWorkersDeterminism(t *testing.T) {
	e := newEnv(t, 4, 2)
	for _, load := range []float64{10, 40, 70} {
		w := rates(e, load)
		e.eval.ResetCache()
		ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		idealPar, err := PerfPwr(e.eval, w, PerfPwrOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ideal, idealPar) {
			t.Fatalf("load %v: PerfPwr diverges between Workers=1 and Workers=8", load)
		}

		run := func(workers int) SearchResult {
			e.eval.ResetCache()
			s := NewSearcher(e.eval, SearchOptions{SelfAware: true, MaxExpansions: 600, Workers: workers})
			res, err := s.Search(e.cfg, w, time.Hour, ideal, ExpectedUtility{}, cluster.ActionSpace{})
			if err != nil {
				t.Fatalf("load %v workers %d: %v", load, workers, err)
			}
			return res
		}
		serial := run(1)
		parallel := run(8)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("load %v: SearchResult diverges between Workers=1 and Workers=8:\n serial: %+v\nparallel: %+v",
				load, serial, parallel)
		}
	}
}

// TestControllerDecideWorkersDeterminism runs a full controller decision at
// both ends of the Workers range and requires identical Decisions.
func TestControllerDecideWorkersDeterminism(t *testing.T) {
	decide := func(workers int) Decision {
		e := newEnv(t, 4, 2)
		ctrl, err := NewController(e.eval, ControllerOptions{
			Name:    "L2",
			Search:  SearchOptions{MaxExpansions: 400},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := ctrl.Decide(0, e.cfg, rates(e, 20))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	serial := decide(1)
	parallel := decide(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Decision diverges between Workers=1 and Workers=8:\n serial: %+v\nparallel: %+v", serial, parallel)
	}
}

// TestControllerDecideFallsBackOnEvalError: a workload naming an unknown
// application cannot be evaluated, and the controller must not silently
// report a zero baseline — but neither may it wedge the control loop. It
// degrades to a no-adaptation decision and retries next window.
func TestControllerDecideFallsBackOnEvalError(t *testing.T) {
	e := newEnv(t, 4, 1)
	ctrl, err := NewController(e.eval, ControllerOptions{Name: "L2-err"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Decide(0, e.cfg, map[string]float64{"ghost": 50})
	if err != nil {
		t.Fatalf("eval error aborted the decision: %v", err)
	}
	if !d.Degraded || !d.Invoked {
		t.Errorf("decision = %+v, want invoked degraded fallback", d)
	}
	if len(d.Plan) != 0 {
		t.Errorf("fallback decision carries a plan: %v", d.Plan)
	}
	// The bands were not re-seeded, so the controller still runs next time.
	if !ctrl.ShouldRun(map[string]float64{"ghost": 50}) {
		t.Error("controller stopped running after a degraded decision")
	}
}
