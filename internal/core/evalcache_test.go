package core

import (
	"testing"
)

// TestEvaluatorCrossWindowCache pins the cache lifecycle: BeginWindow keeps
// memoized solves warm across control windows, ResetCache drops them.
func TestEvaluatorCrossWindowCache(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 50)

	if _, err := e.eval.Steady(e.cfg, w); err != nil {
		t.Fatal(err)
	}
	if got := e.eval.Evals(); got != 1 {
		t.Fatalf("first lookup: %d solves, want 1", got)
	}

	e.eval.BeginWindow()
	if _, err := e.eval.Steady(e.cfg, w); err != nil {
		t.Fatal(err)
	}
	if got := e.eval.Evals(); got != 0 {
		t.Fatalf("lookup after BeginWindow re-solved (%d solves); cache should persist across windows", got)
	}
	if st := e.eval.CacheStats(); st.Hits != 1 {
		t.Fatalf("lookup after BeginWindow: %d hits, want 1", st.Hits)
	}

	e.eval.ResetCache()
	if _, err := e.eval.Steady(e.cfg, w); err != nil {
		t.Fatal(err)
	}
	if got := e.eval.Evals(); got != 1 {
		t.Fatalf("lookup after ResetCache: %d solves, want 1 (full drop)", got)
	}

	// A workload outside the fingerprint band must miss even on a warm
	// cache; one inside the band (same 0.01 req/s bucket) must hit.
	w2 := rates(e, 50.004)
	if _, err := e.eval.Steady(e.cfg, w2); err != nil {
		t.Fatal(err)
	}
	if got := e.eval.Evals(); got != 1 {
		t.Fatalf("same-band workload re-solved (%d solves)", got)
	}
	w3 := rates(e, 51)
	if _, err := e.eval.Steady(e.cfg, w3); err != nil {
		t.Fatal(err)
	}
	if got := e.eval.Evals(); got != 2 {
		t.Fatalf("different workload did not solve (%d solves, want 2)", got)
	}

	// The struct key must distinguish configurations too.
	other := e.cfg.Clone()
	other.SetHostFreq(e.cat.HostNames()[0], 0.867)
	if _, err := e.eval.Steady(other, w3); err != nil {
		t.Fatal(err)
	}
	if got := e.eval.Evals(); got != 3 {
		t.Fatalf("different configuration did not solve (%d solves, want 3)", got)
	}
}
