package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

// BenchmarkSearchWorkers measures the A* hot path the way the controller
// drives it in production: a cycle of control windows with drifting
// workload, each starting with the per-window cache boundary
// (Evaluator.BeginWindow) and then a Self-Aware search from the default
// configuration. One op is a full cycle over the workload points, so the
// reported metrics average over both band-change re-solves and warm
// repeats — the mix the cross-window cache is designed for.
//
// Beyond the standard ns/op and allocs/op, three custom metrics make runs
// comparable across fixtures: expansions/s (search throughput),
// ns/expansion, and expansions/op (divide allocs/op by it for
// allocs/expansion).
func BenchmarkSearchWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			e := newEnv(b, 8, 3)
			points := []float64{10, 25, 40, 55, 70, 55, 40, 25}
			type window struct {
				rates map[string]float64
				ideal Ideal
			}
			wins := make([]window, len(points))
			for i, r := range points {
				w := rates(e, r)
				ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
				if err != nil {
					b.Fatal(err)
				}
				wins[i] = window{rates: w, ideal: ideal}
			}
			s := NewSearcher(e.eval, SearchOptions{SelfAware: true, MaxExpansions: 2000, Workers: workers})
			run := func() int {
				expanded := 0
				for _, win := range wins {
					e.eval.BeginWindow()
					res, err := s.Search(e.cfg, win.rates, 2*time.Hour, win.ideal, ExpectedUtility{}, cluster.ActionSpace{})
					if err != nil {
						b.Fatal(err)
					}
					expanded += res.Expanded
				}
				return expanded
			}
			run() // warm the cross-window cache, as consecutive windows would

			b.ReportAllocs()
			b.ResetTimer()
			expanded := 0
			for i := 0; i < b.N; i++ {
				expanded += run()
			}
			b.StopTimer()
			if expanded > 0 {
				b.ReportMetric(float64(expanded)/b.Elapsed().Seconds(), "expansions/s")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(expanded), "ns/expansion")
				b.ReportMetric(float64(expanded)/float64(b.N), "expansions/op")
			}
		})
	}
}
