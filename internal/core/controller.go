package core

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/predict"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/workload"
)

// ControllerOptions configures one Mistral controller instance (one level
// of the hierarchy).
type ControllerOptions struct {
	// Name labels the controller in logs and results (e.g. "L1-rack0").
	Name string
	// BandWidth is the workload band width in req/s (0 for the paper's
	// 1st-level controllers: any workload change triggers re-evaluation).
	BandWidth float64
	// Space restricts the adaptation actions this controller may take.
	Space cluster.ActionSpace
	// Hosts scopes the controller to a host subset; empty means all.
	Hosts []string
	// Scope selects the Perf-Pwr variant used for the ideal configuration:
	// ScopeFull repacks (2nd level), ScopeTune only reallocates CPU within
	// existing placements (1st level).
	Scope PerfPwrScope
	// PinAppsToZones constrains the controller's ideal configuration to
	// keep each application in its current data-center zone. Set it on
	// levels that cannot migrate across the WAN, so their search bound
	// stays reachable.
	PinAppsToZones bool
	// AppHostPools confines each application to a fixed host pool in both
	// the ideal computation and the action space (the Perf-Cost baseline's
	// "2 hosts per application" allotment).
	AppHostPools map[string][]string
	// Search configures the A* search.
	Search SearchOptions
	// MonitoringInterval is the unit monitoring interval M.
	MonitoringInterval time.Duration
	// InitialCW seeds the stability-interval estimator before any
	// measurement (default 2×M).
	InitialCW time.Duration
	// MinCW floors the control window (default 2×M). During steep ramps
	// every monitoring interval crosses the band, driving the ARMA
	// estimate to its minimum; without a floor no adaptation with a
	// minute-scale cost can ever pay off and the controller freezes
	// exactly when action is most needed.
	MinCW time.Duration
	// CrisisCW optionally floors the control window while the current
	// configuration misses a response-time target (default: same as MinCW,
	// i.e. no extra floor). Raising it lets deep recoveries (boots plus
	// replicas, minutes of transients) amortize past the next band escape;
	// empirically the MinCW floor suffices on the paper's scenarios, and
	// larger values over-commit to recoveries just as flash crowds
	// subside.
	CrisisCW time.Duration
	// UtilityHistory is how many recent window utilities feed the
	// pessimistic expected utility UH (default 3).
	UtilityHistory int
	// Workers bounds the controller's evaluation concurrency: the Perf-Pwr
	// sweep arms and the search's per-expansion child evaluation (default
	// min(GOMAXPROCS, 8); 1 reproduces the serial path). An explicit
	// Search.Workers takes precedence for the search.
	Workers int
	// RetainCache skips the per-decision evaluator cache reset. Set it
	// when a coordinator owning the shared evaluator resets the cache once
	// per control opportunity instead — the Mistral hierarchy's parallel
	// 1st level, where concurrent per-controller resets would thrash the
	// shared cache mid-flight.
	RetainCache bool
	// Obs overrides the process-default observer (obs.SetDefault) for this
	// controller and its searcher; nil resolves the default.
	Obs *obs.Observer
	// Provenance enables the decision flight recorder: every Decision
	// carries a provenance.DecisionProv (prediction context plus the search
	// digest; see SearchOptions.Provenance, which this implies). Off by
	// default; decisions are identical either way.
	Provenance bool
}

func (o ControllerOptions) withDefaults() ControllerOptions {
	if o.Scope == 0 {
		o.Scope = ScopeFull
	}
	if o.MonitoringInterval <= 0 {
		o.MonitoringInterval = 2 * time.Minute
	}
	if o.InitialCW <= 0 {
		o.InitialCW = 2 * o.MonitoringInterval
	}
	if o.MinCW <= 0 {
		o.MinCW = 4 * o.MonitoringInterval
	}
	if o.CrisisCW <= 0 {
		o.CrisisCW = o.MinCW
	}
	if o.UtilityHistory <= 0 {
		o.UtilityHistory = 3
	}
	if o.Search.Workers == 0 {
		o.Search.Workers = o.Workers
	}
	if o.Provenance {
		o.Search.Provenance = true
	}
	return o
}

// windowRecord is one past window's realized utility and rates.
type windowRecord struct {
	utility  float64 // dollars over the window
	perfRate float64 // dollars/second
	pwrRate  float64 // dollars/second, non-positive
}

// Controller is one Mistral controller: it tracks workload bands, predicts
// stability intervals with the adaptive ARMA filter, computes the ideal
// configuration via Perf-Pwr, and searches for the optimal adaptation plan.
type Controller struct {
	opts     ControllerOptions
	eval     *Evaluator
	searcher *Searcher
	est      *predict.Estimator

	bands     map[string]workload.Band
	bandsSet  bool
	bandStart time.Duration
	history   []windowRecord

	obsv       *obs.Observer
	log        *slog.Logger
	cDecides   *obs.Counter
	cFallbacks *obs.Counter
	tc         obs.TraceContext
}

// SetTraceContext installs the current monitoring window's trace
// context, shared with the scenario loop's root span and the window's
// provenance record. The controller stamps its spans with the trace ID
// and deterministic span IDs composed from its (unique) name, and
// forwards the context to its searcher so expansion-batch events join
// the same story. Purely observational; decisions are identical with
// or without it.
func (c *Controller) SetTraceContext(tc obs.TraceContext) {
	c.tc = tc
	c.searcher.SetTrace(tc, c.opts.Name)
}

// NewController builds a controller over an evaluator.
func NewController(eval *Evaluator, opts ControllerOptions) (*Controller, error) {
	if eval == nil {
		return nil, fmt.Errorf("core: controller needs an evaluator")
	}
	opts = opts.withDefaults()
	c := &Controller{
		opts:     opts,
		eval:     eval,
		searcher: NewSearcher(eval, opts.Search),
		est:      predict.NewEstimator(0, 0, opts.InitialCW),
	}
	o := obs.Resolve(opts.Obs)
	c.obsv = o
	c.log = o.Logger()
	c.cDecides = o.Counter("controller_decisions_total")
	c.cFallbacks = o.Counter("controller_fallbacks_total")
	c.searcher.SetObserver(o)
	if opts.Obs != nil {
		// An explicit observer also rebinds the shared evaluator, which
		// otherwise keeps whatever default it resolved at construction.
		eval.SetObserver(o)
	}
	return c, nil
}

// Name returns the controller's label.
func (c *Controller) Name() string { return c.opts.Name }

// Options returns the controller's configuration.
func (c *Controller) Options() ControllerOptions { return c.opts }

// Decision is the outcome of one controller invocation.
type Decision struct {
	// Invoked reports whether the workload escaped the band and a search
	// actually ran; when false all other fields are zero.
	Invoked bool
	// Plan is the chosen action sequence (possibly empty).
	Plan []cluster.Action
	// CW is the predicted stability interval used as the control window.
	CW time.Duration
	// MeasuredInterval is the just-completed stability interval.
	MeasuredInterval time.Duration
	// Ideal is the Perf-Pwr result used as the search heuristic.
	Ideal Ideal
	// Search carries the search statistics (time, self-cost, pruning).
	Search SearchResult
	// CurrentNetRate is the steady net utility rate ($/s) of the
	// configuration the controller decided from, kept so observability
	// spans can be populated without re-deriving state.
	CurrentNetRate float64
	// Degraded reports the controller fell back to a no-adaptation
	// decision because evaluating the current configuration, the Perf-Pwr
	// ideal, or the search itself errored. The cluster keeps running on
	// its current configuration and the controller retries next window.
	// DegradedReason names the failing stage and error.
	Degraded       bool
	DegradedReason string
	// Prov is this decision's flight-recorder entry; nil unless
	// ControllerOptions.Provenance is set.
	Prov *provenance.DecisionProv
}

// fallback degrades to the no-adaptation decision: log a warning, count
// the fallback, keep the cluster on its current configuration, and let the
// next window retry.
func (c *Controller) fallback(now time.Duration, stage string, err error) Decision {
	c.cFallbacks.Inc()
	c.log.Warn("controller degrading to no adaptation",
		"controller", c.opts.Name, "t", now, "stage", stage, "err", err)
	d := Decision{Invoked: true, Degraded: true, DegradedReason: stage + ": " + err.Error()}
	if c.opts.Provenance {
		d.Prov = &provenance.DecisionProv{
			Controller:     c.opts.Name,
			Degraded:       true,
			DegradedReason: d.DegradedReason,
		}
	}
	return d
}

// ShouldRun reports whether the current rates escape the controller's
// bands. Before the first decision it is always true. A zero band width
// means the controller is invoked on every unit monitoring interval, the
// paper's 1st-level setting.
func (c *Controller) ShouldRun(rates map[string]float64) bool {
	if !c.bandsSet || c.opts.BandWidth <= 0 {
		return true
	}
	return workload.AnyOutside(c.bands, c.scopedRates(rates))
}

// scopedRates filters rates to the applications this controller can see.
// All applications are visible to every level in this implementation (the
// paper partitions hosts, not applications).
func (c *Controller) scopedRates(rates map[string]float64) map[string]float64 {
	return rates
}

// RecordWindow feeds one completed monitoring window's realized utility so
// the controller can maintain its pessimistic expected utility UH.
func (c *Controller) RecordWindow(utilityDollars, perfRate, pwrRate float64) {
	c.history = append(c.history, windowRecord{utility: utilityDollars, perfRate: perfRate, pwrRate: pwrRate})
	if len(c.history) > c.opts.UtilityHistory {
		c.history = c.history[len(c.history)-c.opts.UtilityHistory:]
	}
}

// expected derives UH for a control window of length cw: the lowest recent
// window utility, scaled from the monitoring interval to the window.
func (c *Controller) expected(cw time.Duration) ExpectedUtility {
	if len(c.history) == 0 {
		return ExpectedUtility{Total: 0}
	}
	low := c.history[0]
	for _, r := range c.history[1:] {
		if r.utility < low.utility {
			low = r
		}
	}
	scale := cw.Seconds() / c.opts.MonitoringInterval.Seconds()
	return ExpectedUtility{
		Total:    low.utility * scale,
		PerfRate: low.perfRate,
		PwrRate:  low.pwrRate,
	}
}

// ControllerState is a controller's complete mutable state in serializable
// form: the workload bands it tracks, the utility history feeding UH, and
// the ARMA estimator internals. Configuration (options, evaluator,
// searcher) is not included — state is restored into a freshly constructed
// controller with the same options.
type ControllerState struct {
	Bands        map[string]workload.Band `json:"bands,omitempty"`
	BandsSet     bool                     `json:"bands_set"`
	BandStartNS  int64                    `json:"band_start_ns"`
	History      []WindowRecordState      `json:"history,omitempty"`
	Estimator    predict.PersistState     `json:"estimator"`
}

// WindowRecordState is one past window's realized utility and rates.
type WindowRecordState struct {
	Utility  float64 `json:"utility"`
	PerfRate float64 `json:"perf_rate"`
	PwrRate  float64 `json:"pwr_rate"`
}

// Persist captures the controller's mutable state (maps and slices are
// copied).
func (c *Controller) Persist() ControllerState {
	s := ControllerState{
		BandsSet:    c.bandsSet,
		BandStartNS: int64(c.bandStart),
		Estimator:   c.est.Persist(),
	}
	if len(c.bands) > 0 {
		s.Bands = make(map[string]workload.Band, len(c.bands))
		for name, b := range c.bands {
			s.Bands[name] = b
		}
	}
	for _, r := range c.history {
		s.History = append(s.History, WindowRecordState{Utility: r.utility, PerfRate: r.perfRate, PwrRate: r.pwrRate})
	}
	return s
}

// Restore overwrites the controller's mutable state with a captured one.
func (c *Controller) Restore(s ControllerState) {
	c.bands = nil
	if len(s.Bands) > 0 {
		c.bands = make(map[string]workload.Band, len(s.Bands))
		for name, b := range s.Bands {
			c.bands[name] = b
		}
	}
	c.bandsSet = s.BandsSet
	c.bandStart = time.Duration(s.BandStartNS)
	c.history = nil
	for _, r := range s.History {
		c.history = append(c.history, windowRecord{utility: r.Utility, perfRate: r.PerfRate, pwrRate: r.PwrRate})
	}
	c.est.Restore(s.Estimator)
}

// Decide runs one control cycle at virtual time now: band check, stability
// interval bookkeeping, Perf-Pwr ideal, and the adaptation search.
func (c *Controller) Decide(now time.Duration, cfg cluster.Config, rates map[string]float64) (Decision, error) {
	if !c.ShouldRun(rates) {
		return Decision{}, nil
	}

	var measured time.Duration
	if c.bandsSet {
		measured = now - c.bandStart
		c.est.Observe(measured)
	}
	predicted := c.est.Predict()
	cw := predicted
	floor := ""
	if cw < c.opts.MinCW {
		cw = c.opts.MinCW
		floor = "min-cw"
	}
	cur, err := c.eval.Steady(cfg, rates)
	if err != nil {
		// Without the current configuration's steady state the decision
		// has no baseline: CurrentNetRate would silently report 0 and the
		// crisis floor could not trigger. Degrade to no adaptation — the
		// bands were not re-seeded, so the controller retries next window.
		return c.fallback(now, "steady", err), nil
	}
	for name, a := range c.eval.Utility().Apps {
		if rates[name] > 0 && cur.RTSec[name] > a.TargetRT.Seconds() && cw < c.opts.CrisisCW {
			cw = c.opts.CrisisCW
			floor = "crisis-cw"
			break
		}
	}
	c.bands = workload.NewBands(c.scopedRates(rates), c.opts.BandWidth)
	c.bandsSet = true
	c.bandStart = now

	if !c.opts.RetainCache {
		c.eval.BeginWindow()
	}
	tr := c.obsv.Tracer()
	pattrs := []obs.Attr{{Key: "controller", Value: c.opts.Name}}
	if c.tc.Enabled() {
		pattrs = append(pattrs, c.tc.Attr(),
			obs.Attr{Key: "span", Value: c.tc.SpanID(c.opts.Name, "perfpwr")})
	}
	psp := tr.Start("perfpwr", now, pattrs...)
	var ideal Ideal
	switch c.opts.Scope {
	case ScopeTune:
		ideal, err = PerfPwrTune(c.eval, cfg, rates, c.opts.Hosts)
	case ScopeSubset:
		ideal, err = PerfPwrSubset(c.eval, cfg, rates, c.opts.Hosts, c.opts.Workers)
	default:
		popts := PerfPwrOptions{Scope: ScopeFull, Hosts: c.opts.Hosts, AppHostPools: c.opts.AppHostPools, Workers: c.opts.Workers}
		if c.opts.PinAppsToZones {
			popts.VMZonePins = VMZonePinsOf(c.eval.cat, cfg)
		}
		ideal, err = PerfPwr(c.eval, rates, popts)
	}
	if err != nil {
		psp.End(now)
		return c.fallback(now, "perfpwr", err), nil
	}
	psp.End(now, obs.Attr{Key: "ideal_net_rate", Value: ideal.Steady.NetRate()})

	space := c.opts.Space
	if c.opts.AppHostPools != nil {
		space.AppPools = c.opts.AppHostPools
	}
	sattrs := []obs.Attr{
		{Key: "controller", Value: c.opts.Name},
		{Key: "cw_s", Value: cw.Seconds()},
	}
	if c.tc.Enabled() {
		sattrs = append(sattrs, c.tc.Attr(),
			obs.Attr{Key: "span", Value: c.tc.SpanID(c.opts.Name, "search")})
	}
	ssp := tr.Start("search", now, sattrs...)
	c.searcher.traceBase = now
	// Snapshot the evaluator's cache counters around the search so the
	// span records this decision's cache behavior (tracer-gated: the
	// snapshot walks the shard locks).
	var st0 CacheStats
	if tr != nil {
		st0 = c.eval.CacheStats()
	}
	sr, err := c.searcher.Search(cfg, rates, cw, ideal, c.expected(cw), space)
	if err != nil {
		ssp.End(now)
		return c.fallback(now, "search", err), nil
	}
	endAttrs := []obs.Attr{
		{Key: "expanded", Value: sr.Expanded},
		{Key: "generated", Value: sr.Generated},
		{Key: "pruned_children", Value: sr.PrunedChildren},
		{Key: "plan_len", Value: len(sr.Plan)},
		{Key: "utility", Value: sr.Utility},
	}
	if tr != nil {
		st1 := c.eval.CacheStats()
		endAttrs = append(endAttrs,
			obs.Attr{Key: "cache_hits", Value: st1.Hits - st0.Hits},
			obs.Attr{Key: "cache_misses", Value: st1.Misses - st0.Misses})
	}
	ssp.End(now+sr.SearchTime, endAttrs...)
	c.cDecides.Inc()
	if c.log.Enabled(context.Background(), slog.LevelDebug) {
		c.log.Debug("decide",
			"controller", c.opts.Name,
			"t", now,
			"cw", cw,
			"cur_net_rate", cur.NetRate(),
			"ideal_net_rate", ideal.Steady.NetRate(),
			"plan_len", len(sr.Plan),
			"expanded", sr.Expanded,
			"search_time", sr.SearchTime)
	}
	d := Decision{
		Invoked:          true,
		Plan:             sr.Plan,
		CW:               cw,
		MeasuredInterval: measured,
		Ideal:            ideal,
		Search:           sr,
		CurrentNetRate:   cur.NetRate(),
	}
	if c.opts.Provenance {
		st := c.est.State()
		d.Prov = &provenance.DecisionProv{
			Controller: c.opts.Name,
			Predict: &provenance.PredictProv{
				BandWidth:    c.opts.BandWidth,
				MeasuredSec:  measured.Seconds(),
				PredictedSec: predicted.Seconds(),
				CWSec:        cw.Seconds(),
				Floor:        floor,
				Beta:         st.Beta,
				ARMAMeasured: st.Measured,
				ARMAErrors:   st.Errors,
			},
			Search: sr.Prov,
		}
	}
	return d, nil
}
